(** Hardening the controller itself (§5 "Surviving deterministic controller
    failures" — the paper's future-work direction).

    Because AppVisor already separates application state from the platform,
    the platform becomes disposable: a standby can take over after a
    controller-process crash by re-handshaking with the switches and
    re-seeding each sandbox from the latest shipped snapshot. Applications
    lose at most the events since the last {!sync} — they do not lose their
    accumulated state, unlike a monolithic cold restart.

    The controller-process crash itself is injected with {!fail_primary}
    (our runtime cannot crash from application failures — by design). *)

type t

val create :
  ?config:Runtime.config ->
  ?sync_interval:float ->
  Netsim.Net.t ->
  Controller.App_sig.app list ->
  t
(** A primary runtime plus standby bookkeeping. [sync_interval] (default
    1 s of virtual time) controls how often {!maybe_sync} actually ships
    snapshots. *)

val runtime : t -> Runtime.t
(** The currently active runtime. *)

val step : t -> unit
(** Step the active runtime, then {!maybe_sync}. *)

val sync : t -> unit
(** Ship every application's current snapshot to the standby now. *)

val maybe_sync : t -> unit
(** {!sync} if the virtual clock has reached the next sync deadline. The
    deadline advances in whole [sync_interval] steps anchored to the
    virtual clock (never to wall time or to when the driver happened to
    call {!step}), so the sync schedule is a deterministic function of
    the clock and survives replay byte-for-byte. *)

val last_sync_at : t -> float option

val fail_primary : t -> t
(** The controller process dies. A fresh runtime takes over: switches
    re-handshake, sandboxes are re-created and restored from the last
    shipped snapshots (apps that were never synced start from [init]).
    Returns the same [t] with the new active runtime installed. *)

val failovers : t -> int

val shipped_bytes : t -> int
(** Cumulative bytes actually shipped to the standby: snapshots are
    content-chunked against the standby's store, so steady-state syncs
    ship only changed chunks plus manifest overhead. *)

val chunk_store : t -> Checkpoint.Chunk_store.t
(** The standby's chunk store (hit/miss/dedup accounting). *)
