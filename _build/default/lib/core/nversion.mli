(** Software and data diversity (§3.4): run independently developed
    versions of the same application side by side and emit the
    majority-vote output.

    The combinators produce an ordinary {!Controller.App_sig.APP}, so a
    diversity bundle drops into any runtime — monolithic or LegoSDN —
    unchanged. A variant that crashes on an event simply loses its vote
    (its state is untouched); a byzantine variant is out-voted. *)

open Controller

module Make2 (A : App_sig.APP) (B : App_sig.APP) : App_sig.APP
(** Two-version comparison: outputs are used only when both versions agree;
    disagreement emits version A's output plus a [Log] command flagging the
    divergence (there is no majority with two voters). *)

module Make3 (A : App_sig.APP) (B : App_sig.APP) (C : App_sig.APP) :
  App_sig.APP
(** Three-version majority voting: the command list emitted by at least two
    live versions wins; with no majority, the first live version's output
    is used and the divergence is logged. If every version crashes, the
    bundle crashes (there is nothing left to vote). *)
