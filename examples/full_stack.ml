module App_sig = Controller.App_sig
(* The realistic deployment: a whole application suite on a data-center
   fabric, with failures everywhere.

   Runs spanning-tree (flood pruning), proxy-ARP, a shortest-path router,
   a firewall and a monitor together on a k=4 fat-tree under LegoSDN, then
   injects the works: a data-dependent crash bug in the router, poisoned
   packets, a link failure and a switch reboot. The controller and every
   other app shrug it all off.

   Run with: dune exec examples/full_stack.exe *)

open Netsim
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Metrics = Legosdn.Metrics
module Event = Controller.Event

let apps () : Controller.App_sig.app list =
  [
    (App_sig.app (module Apps.Spanning_tree));
    (App_sig.app (module Apps.Arp_responder));
    Apps.Faulty.wrap
      ~bug:(Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash)
      (App_sig.app (module Apps.Router));
    (App_sig.app (module Apps.Firewall));
    (App_sig.app (module Apps.Monitor));
  ]

let () =
  Printf.printf "=== Full stack on a fat-tree (k=4): 20 switches, 16 hosts ===\n\n";
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree 4) in
  let rt = Runtime.create net (apps ()) in
  Runtime.step rt;

  let send src dst dport =
    Clock.advance_by clock 0.05;
    Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ~dport ());
    Runtime.step rt
  in

  (* ARP warm-up then cross-pod traffic. *)
  for h = 1 to 16 do
    Clock.advance_by clock 0.01;
    Net.inject net h (Openflow.Packet.arp_request ~src_host:h ~dst_host:((h mod 16) + 1));
    Runtime.step rt
  done;
  let active_pairs =
    [ (1, 9); (9, 1); (2, 14); (14, 2); (3, 7); (7, 3); (5, 16); (16, 5) ]
  in
  List.iter (fun (src, dst) -> send src dst 80) active_pairs;
  let served () =
    List.length (List.filter (fun (s, d) -> Net.reachable net s d) active_pairs)
  in
  Printf.printf "traffic flowing; %d/%d active flows pinned in hardware\n"
    (served ()) (List.length active_pairs);

  (* Chaos. *)
  send 1 9 6666 (* poisoned packet crashes the learning switch *);
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 5));
  Runtime.step rt;
  Net.apply_fault net (Net.Switch_down 6);
  Runtime.step rt;
  send 2 14 6666;
  Net.apply_fault net (Net.Switch_up 6);
  Runtime.step rt;
  (* Rules now pointing at dead ports black-hole their flows until they
     idle out — let virtual time pass, then re-drive the flows so fresh
     paths pin along the repaired fabric. *)
  Clock.advance_by clock 61.;
  Net.tick net;
  Runtime.step rt;
  List.iter (fun (src, dst) -> send src dst 80) active_pairs;
  List.iter (fun (src, dst) -> send src dst 80) active_pairs;

  Printf.printf "\nafter one poisoned flow, a link failure and a switch reboot:\n";
  let m = Runtime.metrics rt in
  Printf.printf "  crashes absorbed      : %d\n" (Metrics.crashes m);
  Printf.printf "  events ignored        : %d\n" (Metrics.ignored m);
  Printf.printf "  events transformed    : %d\n" (Metrics.transformed m);
  Printf.printf "  tickets filed         : %d\n" (List.length (Runtime.tickets rt));
  Printf.printf "  storm events shed     : %d (spanning tree at work)\n"
    (Runtime.events_shed rt);
  List.iter
    (fun box ->
      Printf.printf "  app %-18s alive=%b events=%d crashes=%d\n"
        (Sandbox.name box) (Sandbox.alive box) (Sandbox.events_handled box)
        (Sandbox.crash_count box))
    (Runtime.sandboxes rt);
  Printf.printf "  active flows served   : %d/%d\n" (served ())
    (List.length active_pairs);
  Printf.printf "\nThe controller never went down. That is the paper.\n"
