lib/core/atomic_update.ml: Controller Format Invariants List Message Openflow Txn_engine Types
