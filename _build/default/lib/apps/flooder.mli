(** The Flooder: like {!Hub} but it also installs a flood rule per
    (switch, ingress port, destination), so subsequent packets of the flow
    stay out of the control loop. The second of the paper's ported
    applications (§4.1). *)

include Controller.App_sig.APP

val rules_installed : state -> int
