module App_sig = Controller.App_sig
(* Cross-layer consistency properties under random fault sequences: the
   controller's discovered view must track the physical truth, and the
   atomic-update screen must work on either transaction engine. *)

open Netsim
module Services = Controller.Services
module Event = Controller.Event

let fault_gen =
  QCheck2.Gen.(
    let* a = int_range 1 4 and* b = int_range 1 4 in
    oneof
      [
        return (Net.Link_down (Topology.Switch a, Topology.Switch b));
        return (Net.Link_up (Topology.Switch a, Topology.Switch b));
        map (fun s -> Net.Switch_down s) (int_range 1 4);
        map (fun s -> Net.Switch_up s) (int_range 1 4);
      ])

(* The physical truth: inter-switch links that are up and whose both
   endpoints are alive switches. *)
let physical_live_links net =
  let topo = Net.topology net in
  Topology.links topo
  |> List.filter_map (fun (l : Topology.link) ->
         match (l.a.node, l.b.node) with
         | Topology.Switch s1, Topology.Switch s2
           when l.up && (Net.switch net s1).Sw.up && (Net.switch net s2).Sw.up
           ->
             Some (min s1 s2, max s1 s2)
         | _ -> None)
  |> List.sort_uniq compare

let discovered_links services =
  Services.live_links services
  |> List.map (fun (l : Event.link) ->
         (min l.src_switch l.dst_switch, max l.src_switch l.dst_switch))
  |> List.sort_uniq compare

let prop_services_track_topology =
  QCheck2.Test.make
    ~name:"link discovery tracks physical truth under any fault sequence"
    ~count:150
    QCheck2.Gen.(list_size (int_range 1 15) fault_gen)
    (fun faults ->
      let clock = Clock.create () in
      let net = Net.create clock (Topo_gen.ring ~hosts_per_switch:1 4) in
      let services = Services.create clock (Net.topology net) in
      let drain () =
        ignore (Net.poll net |> List.concat_map (Services.ingest services))
      in
      drain ();
      List.for_all
        (fun fault ->
          Net.apply_fault net fault;
          drain ();
          discovered_links services = physical_live_links net)
        faults)

let prop_connected_switch_registry =
  QCheck2.Test.make ~name:"switch registry tracks liveness" ~count:150
    QCheck2.Gen.(list_size (int_range 1 12) fault_gen)
    (fun faults ->
      let clock = Clock.create () in
      let net = Net.create clock (Topo_gen.ring ~hosts_per_switch:1 4) in
      let services = Services.create clock (Net.topology net) in
      let drain () =
        ignore (Net.poll net |> List.concat_map (Services.ingest services))
      in
      drain ();
      List.for_all
        (fun fault ->
          Net.apply_fault net fault;
          drain ();
          let alive =
            List.filter
              (fun sid -> (Net.switch net sid).Sw.up)
              (Topology.switches (Net.topology net))
          in
          Services.connected_switches services = alive)
        faults)

let test_atomic_update_on_delay_buffer () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  let engine = Legosdn.Delay_buffer.engine (Legosdn.Delay_buffer.create net) in
  let mac h = Openflow.Types.mac_of_host h in
  let good =
    [
      (1, Openflow.Message.flow_add
            (Openflow.Ofp_match.make ~dl_dst:(mac 2) ())
            [ Openflow.Action.Output 1 ]);
      (2, Openflow.Message.flow_add
            (Openflow.Ofp_match.make ~dl_dst:(mac 2) ())
            [ Openflow.Action.Output 100 ]);
    ]
  in
  (match Legosdn.Atomic_update.apply ~net ~engine ~app:"op" good with
  | Legosdn.Atomic_update.Committed -> ()
  | other ->
      Alcotest.failf "buffered commit failed: %s"
        (Legosdn.Atomic_update.describe other));
  T_util.checkb "rules flushed at commit" true (Net.reachable net 1 2);
  (* The hypothetical screen vetoes bad batches before buffering flushes. *)
  let bad =
    (3, Openflow.Message.flow_add
          (Openflow.Ofp_match.make ~dl_dst:(mac 1) ())
          [ Openflow.Action.Output 88 ])
    :: good
  in
  match Legosdn.Atomic_update.apply ~net ~engine ~app:"op" bad with
  | Legosdn.Atomic_update.Rolled_back (Legosdn.Atomic_update.Invariant_broken _) ->
      T_util.checki "nothing new installed" 0
        (Flow_table.size (Net.switch net 3).Sw.table)
  | other ->
      Alcotest.failf "expected veto, got %s" (Legosdn.Atomic_update.describe other)

let test_standby_under_live_faults () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.ring ~hosts_per_switch:1 4) in
  let sb =
    Legosdn.Standby.create ~sync_interval:0.2 net
      [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Router)) ]
  in
  Legosdn.Standby.step sb;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.2;
      Net.inject net src (T_util.tcp_packet src dst);
      Legosdn.Standby.step sb)
    [ (1, 3); (3, 1); (2, 4) ];
  (* A network fault and a controller death back to back. *)
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  Legosdn.Standby.step sb;
  let sb = Legosdn.Standby.fail_primary sb in
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.2;
      Net.inject net src (T_util.tcp_packet src dst);
      Legosdn.Standby.step sb)
    [ (1, 3); (3, 1); (1, 3); (3, 1) ];
  let rt = Legosdn.Standby.runtime sb in
  T_util.checkb "new controller keeps serving" true
    (Legosdn.Runtime.events_processed rt > 0);
  T_util.checkb "traffic still flows" true (Net.reachable net 1 3)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_services_track_topology;
    QCheck_alcotest.to_alcotest prop_connected_switch_registry;
    Alcotest.test_case "atomic update on delay buffer" `Quick
      test_atomic_update_on_delay_buffer;
    Alcotest.test_case "standby under live faults" `Quick
      test_standby_under_live_faults;
  ]
