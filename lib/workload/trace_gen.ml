(* Trace-driven workload synthesis. Three ingredients of production
   traffic that the fixed generators (all_pairs_once / uniform_pairs) miss:

   - heavy-tailed flow inter-arrivals: a Pareto(alpha, xm) renewal process
     whose mean matches the requested peak rate, so load arrives in bursts
     separated by long gaps instead of evenly spaced;
   - a diurnal load curve: candidate arrivals are thinned with probability
     following a raised cosine over [w_period], the standard trick for
     turning a constant-rate process into an inhomogeneous one without
     changing the inter-arrival law inside a short window;
   - host churn: hosts leave and later rejoin, modeled at the workload
     level (an offline host neither sends nor receives) so the topology
     stays fixed and reproducers replay byte-for-byte.

   Everything is drawn from one [Random.State] seeded by [w_seed], so a
   (config, hosts, duration) triple always yields the identical trace. *)

module Runtime = Legosdn.Runtime

type plan = {
  flows : Traffic.flow_spec list;
  offline : (Netsim.Topology.host * (float * float)) list;
}

(* Inverse-CDF Pareto sample: xm * (1-u)^(-1/alpha), u uniform in [0,1).
   Finite mean needs alpha > 1 (Config_lang enforces it); the scale xm is
   chosen so the mean inter-arrival alpha*xm/(alpha-1) equals 1/rate. *)
let pareto_interval rng ~alpha ~rate =
  let xm = (alpha -. 1.) /. (alpha *. rate) in
  let u = Random.State.float rng 1. in
  xm *. ((1. -. u) ** (-1. /. alpha))

(* Raised-cosine load factor in [1 - depth, 1]: peak at t = 0 (and every
   full period), trough half a period in. *)
let diurnal_factor ~depth ~period t =
  1. -. (depth *. (1. -. cos (2. *. Float.pi *. t /. period)) /. 2.)

let churn_plan rng (w : Runtime.workload_config) ~hosts ~duration =
  let n_events =
    int_of_float (Float.round (w.Runtime.w_churn *. duration))
  in
  let host_array = Array.of_list hosts in
  if Array.length host_array = 0 || n_events = 0 then []
  else
    List.init n_events (fun _ ->
        let h = host_array.(Random.State.int rng (Array.length host_array)) in
        let leave = Random.State.float rng duration in
        (* Outages between 5% and 20% of the horizon: long enough to shift
           traffic off the host, short enough that it usually returns. *)
        let span = duration *. (0.05 +. Random.State.float rng 0.15) in
        (h, (leave, leave +. span)))
    |> List.sort compare

let active offline t h =
  not
    (List.exists
       (fun (h', (leave, rejoin)) -> h' = h && t >= leave && t < rejoin)
       offline)

let plan ~config:(w : Runtime.workload_config) ~hosts ~duration ?(dport = 80)
    () =
  let rng = Random.State.make [| w.Runtime.w_seed; 0x7ace |] in
  let offline = churn_plan rng w ~hosts ~duration in
  let host_array = Array.of_list hosts in
  let n = Array.length host_array in
  let flows = ref [] in
  if n >= 2 then begin
    let t = ref 0. in
    let continue = ref true in
    while !continue do
      t :=
        !t
        +. pareto_interval rng ~alpha:w.Runtime.w_alpha ~rate:w.Runtime.w_rate;
      if !t >= duration then continue := false
      else if
        (* Thinning: keep the candidate with the diurnal probability. *)
        Random.State.float rng 1.
        <= diurnal_factor ~depth:w.Runtime.w_diurnal ~period:w.Runtime.w_period
             !t
      then begin
        (* Uniform src/dst among hosts active now; bounded retries so a
           churn spike cannot loop forever when almost everyone is away. *)
        let pick () = host_array.(Random.State.int rng n) in
        let rec try_pair attempts =
          if attempts = 0 then None
          else
            let src = pick () and dst = pick () in
            if src <> dst && active offline !t src && active offline !t dst
            then Some (src, dst)
            else try_pair (attempts - 1)
        in
        match try_pair 8 with
        | None -> ()
        | Some (src_host, dst_host) ->
            (* Flow sizes are heavy-tailed too (mice and elephants), capped
               so one elephant cannot dominate a short campaign. *)
            let packets =
              min 20
                (1
                + int_of_float
                    (pareto_interval rng ~alpha:w.Runtime.w_alpha ~rate:1.))
            in
            flows :=
              {
                Traffic.src_host;
                dst_host;
                start = !t;
                packets;
                interval = 0.01;
                dport;
              }
              :: !flows
      end
    done
  end;
  { flows = List.rev !flows; offline }

let flows ~config ~hosts ~duration ?dport () =
  (plan ~config ~hosts ~duration ?dport ()).flows

let injections ~config ~hosts ~duration ?dport () =
  Traffic.schedule (flows ~config ~hosts ~duration ?dport ())
