lib/apps/learning_switch.ml: Action App_sig Command Controller Event Map Message Ofp_match Openflow Packet Printf Types
