open Openflow
module Trace_io = Workload.Trace_io
module Event = Controller.Event

let sample_trace =
  [
    Event.Switch_down 3;
    Event.Packet_in
      ( 1,
        {
          Message.pi_buffer_id = Some 4;
          pi_in_port = 2;
          pi_reason = Message.No_match;
          pi_packet = T_util.tcp_packet 1 2;
        } );
    Event.Tick 3.25;
    Event.Link_down
      { Event.src_switch = 1; src_port = 1; dst_switch = 2; dst_port = 1 };
  ]

let test_encode_decode () =
  Alcotest.(check (list T_util.event_t)) "roundtrip" sample_trace
    (Trace_io.decode (Trace_io.encode sample_trace))

let test_empty_trace () =
  Alcotest.(check (list T_util.event_t)) "empty roundtrip" []
    (Trace_io.decode (Trace_io.encode []))

let test_file_roundtrip () =
  let path = Filename.temp_file "legosdn" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path sample_trace;
      Alcotest.(check (list T_util.event_t)) "file roundtrip" sample_trace
        (Trace_io.load path))

let test_bad_magic () =
  T_util.checkb "garbage rejected" true
    (try
       ignore (Trace_io.decode (Bytes.of_string "NOTATRACE_______"));
       false
     with Failure _ -> true)

let test_truncation () =
  let b = Trace_io.encode sample_trace in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  T_util.checkb "truncation rejected" true
    (try
       ignore (Trace_io.decode cut);
       false
     with Failure _ -> true)

let test_recorder () =
  let r = Trace_io.recorder () in
  List.iter (Trace_io.record r) sample_trace;
  T_util.checki "length" 4 (Trace_io.length r);
  Alcotest.(check (list T_util.event_t)) "order preserved" sample_trace
    (Trace_io.recorded r)

let test_recorded_trace_feeds_sts () =
  (* The intended workflow: record a crashing trace, minimize it offline. *)
  let module Bug = struct
    type state = unit

    let name = "bug"
    let subscriptions = [ Event.K_switch_down ]
    let init () = ()

    let handle _ () = function
      | Event.Switch_down 3 -> failwith "boom"
      | _ -> ((), ([] : Controller.Command.t list))
  end in
  let loaded = Trace_io.decode (Trace_io.encode sample_trace) in
  let minimal, _ =
    Legosdn.Sts.minimize (module Bug) T_util.null_context loaded
  in
  Alcotest.(check (list T_util.event_t)) "culprit recovered from disk format"
    [ Event.Switch_down 3 ] minimal

let suite =
  [
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "recorder" `Quick test_recorder;
    Alcotest.test_case "trace feeds STS" `Quick test_recorded_trace_feeds_sts;
  ]
