lib/netsim/topo_gen.ml: Array Hashtbl Random Topology
