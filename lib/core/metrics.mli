(** Availability and recovery accounting for the LegoSDN runtime.

    Virtual-time bookkeeping: how long was the controller up, how long was
    each application usable, how many failures were subverted and by which
    compromise. The availability experiment (E7) reads these. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr_events : t -> unit
val incr_crash : t -> unit
val incr_hang : t -> unit
val incr_byzantine : t -> unit
val incr_ignored : t -> unit
val incr_transformed : t -> unit
val incr_disabled : t -> unit
val incr_replayed : t -> int -> unit
val incr_dropped_in_replay : t -> int -> unit
val incr_resource_breach : t -> unit
val incr_quarantined : t -> unit
val incr_suppressed : t -> unit
val incr_retransmits : t -> unit
val incr_barrier_acks : t -> unit
val incr_resyncs : t -> unit
val incr_resynced_rules : t -> int -> unit
val incr_unreachable : t -> unit
val incr_inv_trace_hit : t -> unit
val incr_inv_trace_miss : t -> unit
val incr_inv_invalidation : t -> unit
val incr_inv_recapture : t -> unit
val incr_inv_memoized : t -> unit

val events : t -> int
val crashes : t -> int
val hangs : t -> int
val byzantine_blocked : t -> int
val ignored : t -> int
val transformed : t -> int
val disabled : t -> int
val replayed : t -> int
val dropped_in_replay : t -> int
val resource_breaches : t -> int

val quarantined : t -> int
(** Event signatures blacklisted after repeated failures (§5). *)

val suppressed : t -> int
(** Deliveries filtered out because their signature is quarantined. *)

val retransmits : t -> int
(** State-altering messages re-sent after a missing barrier ack. *)

val barrier_acks : t -> int
(** Barrier replies confirming delivery of a state-altering message. *)

val resyncs : t -> int
(** Reconnected switches whose tables were rebuilt from intended state. *)

val resynced_rules : t -> int
(** Rules replayed across all resynchronizations. *)

val unreachable : t -> int
(** Switches declared unreachable after the retry budget ran out. *)

val inv_trace_hits : t -> int
(** Cached traces the incremental invariant checker reused. *)

val inv_trace_misses : t -> int
(** Pairs the incremental checker had to trace from scratch. *)

val inv_invalidations : t -> int
(** Cached traces discarded because a visited switch changed. *)

val inv_recaptures : t -> int
(** Switch states re-frozen into the incremental checker's snapshot. *)

val inv_memoized_checks : t -> int
(** Whole checks answered from the previous result (nothing changed). *)

(** {1 Per-app downtime} *)

val add_app_downtime : t -> app:string -> float -> unit
(** Charge [seconds] of virtual unavailability to an application (detection
    delay + recovery work). *)

val mark_app_down_from : t -> app:string -> float -> unit
(** The app went down for good at this time (No-Compromise outcome). *)

val app_downtime : t -> app:string -> until:float -> float
(** Total downtime up to [until], including an open-ended outage. *)

val availability : t -> app:string -> until:float -> float
(** [1 - downtime/until]; 1.0 for an app never charged. *)

val pp : Format.formatter -> t -> unit
