(** Core identifier types shared by every layer of the stack.

    OpenFlow 1.0 uses a 64-bit datapath id, 16-bit port numbers, 48-bit MAC
    addresses and 32-bit IPv4 addresses. The simulator never exceeds the
    63-bit OCaml [int] range, so all of these are plain [int]s with
    formatting helpers; cookies stay [int64] as in the wire format. *)

type switch_id = int
(** Datapath identifier. *)

type port_no = int
(** Physical port number, 1-based. Reserved values from the OF 1.0 spec are
    exposed as constants below. *)

type mac = int
(** 48-bit MAC address packed in an [int]. *)

type ip = int
(** 32-bit IPv4 address packed in an [int]. *)

type xid = int
(** OpenFlow transaction id carried in every message header. *)

type queue_id = int

(** {1 Reserved port numbers (OF 1.0 §5.2.1)} *)

val port_max : port_no
(** Highest usable physical port number (0xff00). *)

val port_in_port : port_no
val port_flood : port_no
val port_all : port_no
val port_controller : port_no
val port_local : port_no
val port_none : port_no

(** {1 Address helpers} *)

val mac_of_octets : int -> int -> int -> int -> int -> int -> mac
val mac_broadcast : mac
val mac_is_broadcast : mac -> bool
val mac_of_host : int -> mac
(** Deterministic MAC for simulated host [i] (vendor prefix 02:00:00). *)

val ip_of_octets : int -> int -> int -> int -> ip
val ip_of_host : int -> ip
(** Deterministic 10.0.x.y address for simulated host [i]. *)

val pp_switch : Format.formatter -> switch_id -> unit
val pp_port : Format.formatter -> port_no -> unit
val pp_mac : Format.formatter -> mac -> unit
val pp_ip : Format.formatter -> ip -> unit

val mac_to_string : mac -> string
val ip_to_string : ip -> string
