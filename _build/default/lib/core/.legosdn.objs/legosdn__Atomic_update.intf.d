lib/core/atomic_update.mli: Invariants Message Netsim Openflow Txn_engine Types
