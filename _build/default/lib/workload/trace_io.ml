module Event = Controller.Event

let magic = "LSDNTRC1"

let encode events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let add_u32 v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  add_u32 (List.length events);
  List.iter
    (fun ev ->
      let b = Legosdn.Wire.encode_event ev in
      add_u32 (Bytes.length b);
      Buffer.add_bytes buf b)
    events;
  Buffer.to_bytes buf

let decode b =
  let len = Bytes.length b in
  let fail msg = failwith ("Trace_io.decode: " ^ msg) in
  if len < String.length magic + 4 then fail "truncated header";
  if Bytes.sub_string b 0 (String.length magic) <> magic then
    fail "bad magic";
  let pos = ref (String.length magic) in
  let read_u32 () =
    if !pos + 4 > len then fail "truncated length";
    let v =
      (Char.code (Bytes.get b !pos) lsl 24)
      lor (Char.code (Bytes.get b (!pos + 1)) lsl 16)
      lor (Char.code (Bytes.get b (!pos + 2)) lsl 8)
      lor Char.code (Bytes.get b (!pos + 3))
    in
    pos := !pos + 4;
    v
  in
  let count = read_u32 () in
  List.init count (fun _ ->
      let n = read_u32 () in
      if !pos + n > len then fail "truncated event";
      let frame = Bytes.sub b !pos n in
      pos := !pos + n;
      try Legosdn.Wire.decode_event frame
      with Legosdn.Wire.Decode_error e -> fail e)

let save path events =
  let oc = open_out_bin path in
  output_bytes oc (encode events);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  decode b

type recorder = { mutable events : Event.t list (* newest first *) }

let recorder () = { events = [] }
let record r ev = r.events <- ev :: r.events
let recorded r = List.rev r.events
let length r = List.length r.events
