lib/workload/scenario.ml: Controller Failure_schedule Format Hashtbl Legosdn List Netsim Option Traffic
