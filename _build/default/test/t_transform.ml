open Openflow
module Transform = Legosdn.Transform
module Event = Controller.Event

let link a pa b pb =
  { Event.src_switch = a; src_port = pa; dst_switch = b; dst_port = pb }

(* s1 has links to s2 and s3. *)
let links_of sid =
  if sid = 1 then [ link 1 1 2 1; link 1 2 3 1 ]
  else if sid = 2 then [ link 2 1 1 1 ]
  else if sid = 3 then [ link 3 1 1 2 ]
  else []

let test_switch_down_becomes_link_downs () =
  match Transform.equivalents ~links_of (Event.Switch_down 1) with
  | [ alternative ] ->
      Alcotest.(check (list T_util.event_t)) "both links go down"
        [ Event.Link_down (link 1 1 2 1); Event.Link_down (link 1 2 3 1) ]
        alternative
  | other -> Alcotest.failf "expected one alternative, got %d" (List.length other)

let test_switch_down_no_links_no_equivalent () =
  Alcotest.(check int) "isolated switch has no equivalent" 0
    (List.length (Transform.equivalents ~links_of (Event.Switch_down 9)))

let test_link_down_coarsens_to_switch_down () =
  match Transform.equivalents ~links_of (Event.Link_down (link 2 1 1 1)) with
  | [ [ Event.Switch_down 2 ] ] -> ()
  | _ -> Alcotest.fail "expected coarsening to the near-side switch"

let test_port_down_alternatives () =
  let desc =
    { Message.port_no = 1; hw_addr = 0; name = "eth1"; up = false; no_flood = false }
  in
  let alts =
    Transform.equivalents ~links_of (Event.Port_status (2, Message.Port_modify, desc))
  in
  T_util.checki "link-down first, switch-down fallback" 2 (List.length alts);
  (match alts with
  | [ first; second ] ->
      Alcotest.(check (list T_util.event_t)) "first is the matching link down"
        [ Event.Link_down (link 2 1 1 1) ] first;
      Alcotest.(check (list T_util.event_t)) "second coarsens"
        [ Event.Switch_down 2 ] second
  | _ -> Alcotest.fail "two alternatives expected")

let test_port_up_has_no_equivalent () =
  let desc = { Message.port_no = 1; hw_addr = 0; name = "eth1"; up = true; no_flood = false } in
  T_util.checki "port-up has no transformation" 0
    (List.length
       (Transform.equivalents ~links_of (Event.Port_status (2, Message.Port_modify, desc))))

let test_packet_in_minimised () =
  let pi =
    {
      Message.pi_buffer_id = Some 3;
      pi_in_port = 7;
      pi_reason = Message.Action_to_controller;
      pi_packet = T_util.tcp_packet 1 2;
    }
  in
  match Transform.equivalents ~links_of (Event.Packet_in (4, pi)) with
  | [ [ Event.Packet_in (4, minimal) ] ] ->
      T_util.checkb "payload shed" true
        (minimal.Message.pi_packet.Packet.payload_len = 0);
      T_util.checkb "buffer reference dropped" true
        (minimal.Message.pi_buffer_id = None);
      T_util.checkb "reason normalised" true
        (minimal.Message.pi_reason = Message.No_match);
      T_util.checki "ingress preserved" 7 minimal.Message.pi_in_port
  | _ -> Alcotest.fail "one minimal packet_in expected"

let test_already_minimal_packet_in () =
  let pi =
    {
      Message.pi_buffer_id = None;
      pi_in_port = 1;
      pi_reason = Message.No_match;
      pi_packet = { (T_util.tcp_packet 1 2) with Packet.payload_len = 0 };
    }
  in
  T_util.checki "no self-transformation loop" 0
    (List.length (Transform.equivalents ~links_of (Event.Packet_in (1, pi))))

let test_switch_up_decomposes_to_ports () =
  let features =
    {
      Message.datapath_id = 5;
      n_buffers = 0;
      n_tables = 1;
      ports =
        [
          { Message.port_no = 1; hw_addr = 0; name = "eth1"; up = true; no_flood = false };
          { Message.port_no = 2; hw_addr = 0; name = "eth2"; up = true; no_flood = false };
        ];
    }
  in
  match Transform.equivalents ~links_of (Event.Switch_up (5, features)) with
  | [ alternative ] -> T_util.checki "one port_status per port" 2 (List.length alternative)
  | _ -> Alcotest.fail "one alternative expected"

let test_tick_and_stats_have_none () =
  T_util.checki "tick" 0 (List.length (Transform.equivalents ~links_of (Event.Tick 1.)));
  T_util.checki "flow_removed" 0
    (List.length
       (Transform.equivalents ~links_of
          (Event.Flow_removed
             ( 1,
               {
                 Message.fr_pattern = Ofp_match.any;
                 fr_cookie = 0L;
                 fr_priority = 0;
                 fr_reason = Message.Removed_idle;
                 fr_duration = 0;
                 fr_idle_timeout = 0;
                 fr_packet_count = 0;
                 fr_byte_count = 0;
               } ))))

let suite =
  [
    Alcotest.test_case "switch_down -> link_downs" `Quick test_switch_down_becomes_link_downs;
    Alcotest.test_case "isolated switch" `Quick test_switch_down_no_links_no_equivalent;
    Alcotest.test_case "link_down -> switch_down" `Quick test_link_down_coarsens_to_switch_down;
    Alcotest.test_case "port_down alternatives" `Quick test_port_down_alternatives;
    Alcotest.test_case "port_up untransformed" `Quick test_port_up_has_no_equivalent;
    Alcotest.test_case "packet_in minimised" `Quick test_packet_in_minimised;
    Alcotest.test_case "minimal packet_in fixpoint" `Quick test_already_minimal_packet_in;
    Alcotest.test_case "switch_up decomposition" `Quick test_switch_up_decomposes_to_ports;
    Alcotest.test_case "events without equivalents" `Quick test_tick_and_stats_have_none;
  ]
