(** OpenFlow 1.0 flow match structure (ofp_match).

    Each field is either a wildcard ([None]) or an exact value ([Some v]).
    This is the OF 1.0 subset without CIDR-prefix IP masks: exact-or-wild per
    field, which is what the LegoSDN applications and experiments need. *)

type t = {
  in_port : Types.port_no option;
  dl_src : Types.mac option;
  dl_dst : Types.mac option;
  dl_vlan : int option option;  (** [Some None] matches untagged explicitly. *)
  dl_type : int option;
  nw_src : Types.ip option;
  nw_dst : Types.ip option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

val any : t
(** The all-wildcard match. *)

val make :
  ?in_port:Types.port_no ->
  ?dl_src:Types.mac ->
  ?dl_dst:Types.mac ->
  ?dl_vlan:int option ->
  ?dl_type:int ->
  ?nw_src:Types.ip ->
  ?nw_dst:Types.ip ->
  ?nw_proto:int ->
  ?nw_tos:int ->
  ?tp_src:int ->
  ?tp_dst:int ->
  unit ->
  t
(** A match with the given exact fields; everything omitted is wildcarded. *)

val exact : in_port:Types.port_no -> Packet.t -> t
(** The fully-specified match extracted from a packet, as a learning switch
    would install it. *)

val matches : t -> in_port:Types.port_no -> Packet.t -> bool
(** Does the packet arriving on [in_port] satisfy this match? *)

val subsumes : t -> t -> bool
(** [subsumes pat m] is true when every packet matched by [m] is also
    matched by [pat] — the OF 1.0 non-strict delete/modify semantics:
    [pat] must be equal or strictly wilder on every field. *)

val overlaps : t -> t -> bool
(** Two matches overlap when some packet could satisfy both (fields conflict
    nowhere). Used for overlap checking on flow insertion. *)

val wildcard_count : t -> int
(** Number of wildcarded fields; 0 means fully exact. *)

val equal : t -> t -> bool
(** Structural equality with a pointer-equality fast path, so interned
    patterns compare in O(1). *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val hash : t -> int
(** FNV-1a 64-bit hash over the fields (same constants as the checkpoint
    chunk digest), folded to a non-negative OCaml int. Structurally equal
    matches hash identically; used to key the intern pool and
    {!Flow_table}'s exact-match index. *)

val encode : Buf.writer -> t -> unit
val decode : Buf.reader -> t

(** {1 Hash-consing}

    Identical match patterns recur across every flow table in a fabric
    (one learning-switch rule shape × thousands of switches). [intern]
    maps a pattern to a single canonical block held in a hashed weak set:
    tables that intern on insert store each distinct pattern once
    fabric-wide, and {!equal}/{!subsumes} short-circuit on pointer
    equality. The pool is weak — patterns no longer referenced by any
    table are reclaimed by the GC. *)

val intern : t -> t
(** The canonical shared copy of this pattern (inserting it if new).
    Behaviorally the identity function: the result is structurally equal
    to the argument. When interning is disabled, returns the argument
    unchanged. *)

val set_interning : bool -> unit
(** Toggle interning globally (default [true]). Disabling makes [intern]
    the identity — used to build non-interned baselines for memory benches
    and differential tests. Already-interned values stay shared. *)

val interning_enabled : unit -> bool

type intern_stats = {
  hits : int;  (** [intern] calls answered by an existing pool entry. *)
  inserts : int;  (** [intern] calls that added a new pattern. *)
  live : int;  (** Distinct patterns currently alive in the pool. *)
}

val intern_stats : unit -> intern_stats
val reset_intern_stats : unit -> unit
