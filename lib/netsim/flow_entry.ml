open Openflow

type t = {
  pattern : Ofp_match.t;
  priority : int;
  actions : Action.t list;
  cookie : int64;
  idle_timeout : int;
  hard_timeout : int;
  notify_when_removed : bool;
  installed_at : float;
  mutable last_used : float;
  mutable packet_count : int;
  mutable byte_count : int;
}

(* Patterns are interned at entry creation: every identical wildcard shape
   installed anywhere in the fabric shares one heap block, and downstream
   equality/subsume checks hit the pointer fast path. *)
let of_flow_mod ~now (fm : Message.flow_mod) =
  {
    pattern = Ofp_match.intern fm.pattern;
    priority = fm.priority;
    actions = fm.actions;
    cookie = fm.cookie;
    idle_timeout = fm.idle_timeout;
    hard_timeout = fm.hard_timeout;
    notify_when_removed = fm.notify_when_removed;
    installed_at = now;
    last_used = now;
    packet_count = 0;
    byte_count = 0;
  }

let make ?(cookie = 0L) ?(idle_timeout = 0) ?(hard_timeout = 0)
    ?(priority = Message.default_priority) ?(notify_when_removed = false) ~now
    pattern actions =
  {
    pattern = Ofp_match.intern pattern;
    priority;
    actions;
    cookie;
    idle_timeout;
    hard_timeout;
    notify_when_removed;
    installed_at = now;
    last_used = now;
    packet_count = 0;
    byte_count = 0;
  }

let matches e ~in_port pkt = Ofp_match.matches e.pattern ~in_port pkt

let account e ~now pkt =
  e.packet_count <- e.packet_count + 1;
  e.byte_count <- e.byte_count + Packet.size pkt;
  e.last_used <- now

let expiry_reason e ~now =
  if e.hard_timeout > 0 && now -. e.installed_at >= float e.hard_timeout then
    Some Message.Removed_hard
  else if e.idle_timeout > 0 && now -. e.last_used >= float e.idle_timeout
  then Some Message.Removed_idle
  else None

let duration e ~now = int_of_float (now -. e.installed_at)

let to_flow_stat ~now e : Message.flow_stat =
  {
    fs_pattern = e.pattern;
    fs_priority = e.priority;
    fs_cookie = e.cookie;
    fs_duration = duration e ~now;
    fs_idle_timeout = e.idle_timeout;
    fs_hard_timeout = e.hard_timeout;
    fs_packet_count = e.packet_count;
    fs_byte_count = e.byte_count;
    fs_actions = e.actions;
  }

let to_flow_removed ~now reason e : Message.flow_removed =
  {
    fr_pattern = e.pattern;
    fr_cookie = e.cookie;
    fr_priority = e.priority;
    fr_reason = reason;
    fr_duration = duration e ~now;
    fr_idle_timeout = e.idle_timeout;
    fr_packet_count = e.packet_count;
    fr_byte_count = e.byte_count;
  }

let same_rule a b =
  a.priority = b.priority && Ofp_match.equal a.pattern b.pattern

let restore e ~remaining_idle ~remaining_hard ~now ~packet_count ~byte_count =
  {
    e with
    idle_timeout = remaining_idle;
    hard_timeout = remaining_hard;
    installed_at = now;
    last_used = now;
    packet_count;
    byte_count;
  }

let pp fmt e =
  Format.fprintf fmt "[prio=%d %a -> %a pkts=%d bytes=%d idle=%d hard=%d]"
    e.priority Ofp_match.pp e.pattern Action.pp_list e.actions e.packet_count
    e.byte_count e.idle_timeout e.hard_timeout
