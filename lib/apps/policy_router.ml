open Openflow
open Controller

(* Destination-MAC routing declared as intent. [handle] only *observes*:
   it records which MACs exist and floods the triggering packet so nothing
   blackholes while tables converge. All rule installation happens through
   the declared policy — per-switch shortest-path routes recompiled by the
   runtime after every event (and by Crash-Pad during recovery). *)

type state = Types.mac list  (* destinations seen, sorted *)

let name = "policy_router"
(* Packet-ins only: the routes themselves are derived from the *live*
   topology (ctx links) at every reconcile, so the app has no need to
   watch link or switch events — a punted packet is precisely the signal
   that the compiled tables no longer cover the network. *)
let subscriptions = [ Event.K_packet_in ]
let init () = []

let hosts_known st = List.length st

(* BFS first-hop port from [src] towards [dst] over the live links. *)
let first_hop links src dst =
  let adjacency = Hashtbl.create 16 in
  List.iter
    (fun (l : Event.link) ->
      let existing =
        Option.value (Hashtbl.find_opt adjacency l.Event.src_switch) ~default:[]
      in
      Hashtbl.replace adjacency l.Event.src_switch
        ((l.Event.src_port, l.Event.dst_switch) :: existing))
    links;
  let neighbors sid =
    Option.value (Hashtbl.find_opt adjacency sid) ~default:[]
    |> List.sort compare
  in
  let visited = Hashtbl.create 16 in
  Hashtbl.replace visited src ();
  let queue = Queue.create () in
  List.iter
    (fun (port, next) ->
      if not (Hashtbl.mem visited next) then begin
        Hashtbl.replace visited next ();
        Queue.push (next, port) queue
      end)
    (neighbors src);
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let sid, port = Queue.pop queue in
    if sid = dst then result := Some port
    else
      List.iter
        (fun (_, next) ->
          if not (Hashtbl.mem visited next) then begin
            Hashtbl.replace visited next ();
            Queue.push (next, port) queue
          end)
        (neighbors sid)
  done;
  !result

let flood_out sid (pi : Message.packet_in) =
  Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
    ~in_port:pi.Message.pi_in_port sid
    [ Action.Output Types.port_flood ]
    (match pi.Message.pi_buffer_id with
    | Some _ -> None
    | None -> Some pi.Message.pi_packet)

let handle _ctx (st : state) = function
  | Event.Packet_in (sid, pi) ->
      let src = pi.Message.pi_packet.Packet.dl_src in
      let st' =
        if List.mem src st then st else List.sort compare (src :: st)
      in
      (st', [ flood_out sid pi ])
  | _ -> (st, [])

(* One route bundle per known destination: every switch forwards matching
   traffic out its shortest-path port (the attachment port on the last
   hop). Unknown destinations fall off the compiled table and punt to the
   controller, where [handle] floods them. *)
let policy ctx (st : state) =
  let links = App_sig.links ctx in
  let switches = App_sig.switches ctx in
  let routes =
    List.filter_map
      (fun mac ->
        match App_sig.host_location ctx mac with
        | None -> None
        | Some (dst_sid, dst_port) ->
            let per_switch =
              List.filter_map
                (fun sw ->
                  let out =
                    if sw = dst_sid then Some dst_port
                    else first_hop links sw dst_sid
                  in
                  Option.map
                    (fun port ->
                      Policy.at sw
                        (Policy.seq
                           (Policy.filter (Policy.Test (Policy.Dl_dst mac)))
                           (Policy.forward port)))
                    out)
                switches
            in
            (match per_switch with
            | [] -> None
            | l -> Some (Policy.union_all l)))
      st
  in
  Some (Policy.union_all routes)
