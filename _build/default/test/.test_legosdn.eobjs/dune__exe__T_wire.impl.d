test/t_wire.ml: Action Alcotest Bytes Controller Legosdn List Message Ofp_match Openflow QCheck2 QCheck_alcotest T_util Types
