(** NetLog's counter-cache (§3.2).

    OpenFlow cannot install a flow with non-zero counters, so when NetLog
    restores a deleted flow it re-adds it with zeroed counters and banks the
    old values here; statistics replies that pass through NetLog are then
    corrected by adding the banked base back, so applications never observe
    the counter reset.

    The bank is bounded: when an application deliberately reinstalls a rule
    (a fresh Add is a legitimate counter reset) NetLog {!consume}s the
    credit, and identities beyond [capacity] are evicted least-recently-used
    so churn cannot grow the cache without bound. *)

open Openflow

type t

val create : ?capacity:int -> ?on_evict:(unit -> unit) -> unit -> t
(** [capacity] (default 1024) bounds the number of banked identities; the
    least-recently-touched one is dropped (and [on_evict] called) when an
    insert would exceed it. Raises [Invalid_argument] if [capacity < 1]. *)

val credit :
  t ->
  Types.switch_id ->
  Ofp_match.t ->
  priority:int ->
  packets:int ->
  bytes:int ->
  unit
(** Bank counters for a rule identity (accumulates across repeated
    restores). *)

val base : t -> Types.switch_id -> Ofp_match.t -> priority:int -> int * int
(** Banked (packets, bytes) for the rule; (0, 0) if never credited. *)

val consume :
  t -> Types.switch_id -> Ofp_match.t -> priority:int -> (int * int) option
(** Remove and return the banked counters for a rule identity — called when
    the application itself reinstalls the rule, which legitimately resets
    its counters. [None] if nothing was banked. *)

val adjust_reply :
  t ->
  Types.switch_id ->
  request:Message.stats_request ->
  Message.stats_reply ->
  Message.stats_reply
(** Correct a statistics reply from the given switch: per-flow stats get
    their banked base added; aggregate stats get the sum of the bases of
    rules subsumed by the request pattern, but only when the request was a
    flow or aggregate request — on a request/reply kind mismatch the reply
    is returned unchanged. Port and description replies are returned
    unchanged. *)

val entries : t -> int
(** Number of banked rule identities. *)

val evictions : t -> int
(** Identities dropped by the LRU capacity bound. *)
