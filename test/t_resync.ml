module App_sig = Controller.App_sig
(* Reliable delivery and switch resynchronization: retransmission over a
   lossy channel, the unreachable circuit breaker, duplicate suppression,
   and shadow-table replay after a reboot. *)

open Openflow
open Netsim
module Runtime = Legosdn.Runtime
module Reliable = Legosdn.Reliable
module Metrics = Legosdn.Metrics

let flow_msg ~xid =
  Message.message ~xid
    (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output 2 ]))

(* Direct Reliable-over-Net use, no runtime: a dropped flow-mod is
   retransmitted once the channel works again, ending with the rule
   installed exactly once. *)
let test_retransmission_recovers_lost_message () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  let rel = Reliable.create net in
  Channel.set_loss (Net.channel net 1) 1.0;
  ignore (Reliable.send rel 1 (flow_msg ~xid:1));
  T_util.checki "rule lost in transit" 0
    (Flow_table.size (Net.switch net 1).Sw.table);
  T_util.checki "one message pending" 1 (Reliable.pending_count rel);
  Channel.set_loss (Net.channel net 1) 0.;
  Clock.advance_by clock 0.1;
  Reliable.tick rel;
  T_util.checki "rule installed by retransmission" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  T_util.checki "nothing pending" 0 (Reliable.pending_count rel);
  T_util.checki "one retransmit" 1 (Reliable.retransmits rel);
  T_util.checki "converged" 0 (Reliable.divergence rel)

let test_retry_budget_degrades_then_probe_heals () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  let config = { Reliable.default_config with Reliable.max_retries = 3 } in
  let rel = Reliable.create ~config net in
  Net.apply_fault net (Net.Channel_partition 1);
  ignore (Reliable.send rel 1 (flow_msg ~xid:1));
  for _ = 1 to 10 do
    Clock.advance_by clock 1.0;
    Reliable.tick rel
  done;
  T_util.checkb "retry budget exhausted" true (Reliable.is_degraded rel 1);
  T_util.checki "queue abandoned" 0 (Reliable.pending_count rel);
  T_util.checki "one degradation" 1 (Reliable.degraded_count rel);
  (* Sends to a degraded switch are swallowed, but intent is recorded. *)
  ignore (Reliable.send rel 1 (flow_msg ~xid:2));
  T_util.checki "swallowed, not queued" 0 (Reliable.pending_count rel);
  (* Heal the partition: the next half-open probe resynchronizes. *)
  Net.apply_fault net (Net.Channel_heal 1);
  for _ = 1 to 5 do
    Clock.advance_by clock 1.0;
    Reliable.tick rel
  done;
  T_util.checkb "probe healed the breaker" false (Reliable.is_degraded rel 1);
  T_util.checki "intended rule replayed" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  T_util.checki "one resync" 1 (Reliable.resyncs rel);
  T_util.checki "converged after heal" 0 (Reliable.divergence rel)

(* A duplicating channel delivers the same flow-mod twice; xid dedup makes
   the second application a no-op. *)
let test_duplicate_suppression () =
  let clock = Clock.create () in
  let net =
    Net.create ~channel:{ Channel.perfect with Channel.duplicate = 1.0 } clock
      (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll net);
  ignore (Net.send net 1 (flow_msg ~xid:3));
  T_util.checki "rule installed once" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  T_util.checkb "duplicate suppressed" true (Net.dups_suppressed net >= 1)

(* Full stack: a mid-path switch reboots after traffic has pinned flows.
   Without fresh traffic, only shadow-table replay can repair the path. *)
let reboot_scenario ~reliable_on =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let config =
    {
      Runtime.default_config with
      Runtime.reliable =
        { Reliable.default_config with Reliable.enabled = reliable_on };
    }
  in
  (* Learning switch: rules survive topology events in the shadow (unlike
     Router, which proactively tears routes down on Switch_down), so a
     reboot cleanly isolates resynchronization. *)
  let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step rt;
  List.iter
    (fun (src, dst) ->
      Clock.advance_by clock 0.05;
      Net.inject net src (Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt)
    [ (1, 3); (3, 1); (1, 3); (3, 1) ];
  T_util.checkb "path warmed" true (Net.reachable net 1 3);
  Net.apply_fault net (Net.Switch_down 2);
  Runtime.step rt;
  Net.apply_fault net (Net.Switch_up 2);
  (* The rebooted switch is empty: the old rules are gone and no new
     packet has arrived to re-trigger the applications. *)
  T_util.checkb "reboot blackholes the path" false (Net.reachable net 1 3);
  Runtime.step rt;
  (clock, net, rt)

let test_resync_repairs_rebooted_switch () =
  let _, net, rt = reboot_scenario ~reliable_on:true in
  T_util.checkb "resync repaired forwarding without new traffic" true
    (Net.reachable net 1 3);
  let m = Runtime.metrics rt in
  T_util.checkb "resync counted" true (Metrics.resyncs m >= 1);
  T_util.checkb "rules replayed" true (Metrics.resynced_rules m >= 1)

let test_no_resync_without_reliable_layer () =
  let _, net, rt = reboot_scenario ~reliable_on:false in
  T_util.checkb "disabled layer leaves the path black-holed" false
    (Net.reachable net 1 3);
  T_util.checki "no resyncs" 0 (Metrics.resyncs (Runtime.metrics rt))

(* Transactions against a degraded switch abort cleanly: the crashpad
   screen turns them into Unreachable failures before anything is sent. *)
let test_unreachable_screen_aborts_transactions () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let config =
    {
      Runtime.default_config with
      Runtime.reliable =
        { Reliable.default_config with Reliable.max_retries = 2 };
    }
  in
  let rt =
    Runtime.create ~config net
      [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Router)) ]
  in
  Runtime.step rt;
  Net.apply_fault net (Net.Channel_partition 2);
  (* Bidirectional traffic so host locations get learned and the router
     keeps trying to program a path through the partitioned switch 2. *)
  for i = 1 to 12 do
    Clock.advance_by clock 0.5;
    let src, dst = if i mod 2 = 0 then (1, 3) else (3, 1) in
    Net.inject net src (Packet.tcp ~src_host:src ~dst_host:dst ());
    Runtime.step rt
  done;
  let rel = Option.get (Runtime.reliable rt) in
  T_util.checkb "switch 2 degraded" true (Reliable.is_degraded rel 2);
  T_util.checkb "unreachable aborts counted" true
    (Metrics.unreachable (Runtime.metrics rt) >= 1)

let suite =
  [
    Alcotest.test_case "retransmission recovers a lost message" `Quick
      test_retransmission_recovers_lost_message;
    Alcotest.test_case "retry budget degrades, probe heals" `Quick
      test_retry_budget_degrades_then_probe_heals;
    Alcotest.test_case "duplicate suppression" `Quick test_duplicate_suppression;
    Alcotest.test_case "resync repairs a rebooted switch" `Quick
      test_resync_repairs_rebooted_switch;
    Alcotest.test_case "no resync when disabled" `Quick
      test_no_resync_without_reliable_layer;
    Alcotest.test_case "unreachable screen aborts transactions" `Quick
      test_unreachable_screen_aborts_transactions;
  ]
