(** Trace-driven workload generator for long-horizon, big-topology
    campaigns.

    Unlike the fixed generators in {!Traffic} (every pair once, uniform
    random pairs), this synthesizes the statistical shape of production
    traffic from a {!Legosdn.Runtime.workload_config}:

    - flow inter-arrivals follow a Pareto([w_alpha]) renewal process whose
      mean matches [w_rate] flows per virtual second at peak — load comes
      in heavy-tailed bursts;
    - arrivals are thinned along a raised-cosine diurnal curve of depth
      [w_diurnal] and period [w_period];
    - hosts churn: [w_churn] leave(+rejoin) events per virtual second take
      hosts offline for 5–20% of the horizon, during which they neither
      send nor receive. Churn is modeled at the workload level — the
      topology object never mutates, so runs replay deterministically;
    - flow sizes (packet counts) are heavy-tailed with the same shape,
      capped at 20 packets.

    All draws come from one RNG seeded by [w_seed]: the same (config,
    hosts, duration) always produces the identical trace, which is what
    lets {!Runner}/[Fuzz] campaigns and reproducers use generated load. *)

type plan = {
  flows : Traffic.flow_spec list;  (** Time-ordered by [start]. *)
  offline : (Netsim.Topology.host * (float * float)) list;
      (** Churn outages: host with its [leave, rejoin) interval, sorted. *)
}

val plan :
  config:Legosdn.Runtime.workload_config ->
  hosts:Netsim.Topology.host list ->
  duration:float ->
  ?dport:int ->
  unit ->
  plan
(** The full synthesis: generated flows plus the churn schedule they were
    filtered against. [dport] defaults to 80 (the canonical port exact
    rules and reachability probes use). *)

val flows :
  config:Legosdn.Runtime.workload_config ->
  hosts:Netsim.Topology.host list ->
  duration:float ->
  ?dport:int ->
  unit ->
  Traffic.flow_spec list
(** [(plan ...).flows] — drop-in wherever {!Traffic.uniform_pairs} fits. *)

val injections :
  config:Legosdn.Runtime.workload_config ->
  hosts:Netsim.Topology.host list ->
  duration:float ->
  ?dport:int ->
  unit ->
  Traffic.injection list
(** The scheduled packet train ({!Traffic.schedule} of [flows]). *)
