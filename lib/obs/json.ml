type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c < ' ' || c >= '\x7f' ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail (Printf.sprintf "bad \\u escape %S" h)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
                 advance ();
                 let c = hex4 () in
                 if c < 256 then Buffer.add_char buf (Char.chr c)
                 else fail "\\u escape above \\u00ff unsupported"
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at byte %d" !pos)
    else Ok v
  with Bad (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
