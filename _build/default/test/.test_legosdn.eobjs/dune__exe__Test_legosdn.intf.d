test/test_legosdn.mli:
