(** Clone-based tolerance of non-deterministic bugs (§5).

    LegoSDN feeds both an application and a clone of it the same event
    stream, processes only the primary's responses, and switches over to
    the clone when the primary fails. Because the bug is assumed
    non-deterministic, the clone — despite having seen the same events —
    is unlikely to be in the crashing execution.

    Implemented as an APP combinator so it composes with everything else;
    only when primary {e and} clone fail on the same event does the failure
    escape to Crash-Pad. *)

open Controller

module Make (A : App_sig.APP) : sig
  include App_sig.APP

  val switchovers : state -> int
  (** How many times the clone took over. *)

  val clone_resyncs : state -> int
  (** How many times a crashed clone was re-seeded from the primary. *)
end
