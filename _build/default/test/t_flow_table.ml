open Openflow
open Netsim

let pkt = Packet.tcp ~src_host:1 ~dst_host:2 ()

let entry ?(priority = 100) ?(idle = 0) ?(hard = 0) ?(now = 0.) pattern actions
    =
  Flow_entry.make ~idle_timeout:idle ~hard_timeout:hard ~priority ~now pattern
    actions

let test_priority_order () =
  let t = Flow_table.create () in
  Flow_table.add t (entry ~priority:10 Ofp_match.any [ Action.Output 1 ]);
  Flow_table.add t (entry ~priority:200 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 2 ]);
  Flow_table.add t (entry ~priority:50 Ofp_match.any [ Action.Output 3 ]);
  match Flow_table.lookup t ~now:0. ~in_port:1 pkt with
  | Some e ->
      Alcotest.(check (list int)) "highest priority wins" [ 2 ]
        (Action.outputs e.Flow_entry.actions)
  | None -> Alcotest.fail "expected a match"

let test_add_replaces_twin () =
  let t = Flow_table.create () in
  let m = Ofp_match.make ~tp_dst:80 () in
  Flow_table.add t (entry ~priority:10 m [ Action.Output 1 ]);
  Flow_table.add t (entry ~priority:10 m [ Action.Output 9 ]);
  T_util.checki "one entry" 1 (Flow_table.size t);
  match Flow_table.entries t with
  | [ e ] ->
      Alcotest.(check (list int)) "replaced actions" [ 9 ]
        (Action.outputs e.Flow_entry.actions)
  | _ -> Alcotest.fail "expected exactly one entry"

let test_same_match_different_priority_coexist () =
  let t = Flow_table.create () in
  let m = Ofp_match.make ~tp_dst:80 () in
  Flow_table.add t (entry ~priority:10 m [ Action.Output 1 ]);
  Flow_table.add t (entry ~priority:20 m [ Action.Output 2 ]);
  T_util.checki "two entries" 2 (Flow_table.size t)

let test_modify_nonstrict_rewrites_subsumed () =
  let t = Flow_table.create () in
  Flow_table.add t
    (entry ~priority:10 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ]);
  Flow_table.add t
    (entry ~priority:20 (Ofp_match.make ~tp_dst:443 ()) [ Action.Output 1 ]);
  let hit =
    Flow_table.modify t ~strict:false
      (Ofp_match.make ~tp_dst:80 ())
      ~priority:0 [ Action.Output 7 ]
  in
  T_util.checkb "modify hit" true hit;
  let outs =
    List.map
      (fun (e : Flow_entry.t) -> Action.outputs e.actions)
      (Flow_table.entries t)
  in
  Alcotest.(check (list (list int))) "only the port-80 entry rewritten"
    [ [ 1 ]; [ 7 ] ] outs

let test_modify_strict_needs_exact () =
  let t = Flow_table.create () in
  Flow_table.add t
    (entry ~priority:10 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ]);
  T_util.checkb "strict with wrong priority misses" false
    (Flow_table.modify t ~strict:true
       (Ofp_match.make ~tp_dst:80 ())
       ~priority:11 [ Action.Output 2 ]);
  T_util.checkb "strict with exact identity hits" true
    (Flow_table.modify t ~strict:true
       (Ofp_match.make ~tp_dst:80 ())
       ~priority:10 [ Action.Output 2 ])

let test_modify_preserves_counters () =
  let t = Flow_table.create () in
  let e = entry ~priority:10 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ] in
  Flow_table.add t e;
  Flow_entry.account e ~now:1. pkt;
  ignore
    (Flow_table.modify t ~strict:true
       (Ofp_match.make ~tp_dst:80 ())
       ~priority:10 [ Action.Output 2 ]);
  match Flow_table.entries t with
  | [ e' ] -> T_util.checki "counters preserved" 1 e'.Flow_entry.packet_count
  | _ -> Alcotest.fail "expected one entry"

let test_delete_nonstrict_wildcard () =
  let t = Flow_table.create () in
  Flow_table.add t (entry ~priority:10 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ]);
  Flow_table.add t (entry ~priority:20 (Ofp_match.make ~tp_dst:443 ()) [ Action.Output 2 ]);
  Flow_table.add t (entry ~priority:30 (Ofp_match.make ~nw_proto:17 ()) [ Action.Output 3 ]);
  let gone = Flow_table.delete t ~strict:false Ofp_match.any ~priority:0 in
  T_util.checki "all three removed" 3 (List.length gone);
  T_util.checki "table empty" 0 (Flow_table.size t)

let test_delete_out_port_filter () =
  let t = Flow_table.create () in
  Flow_table.add t (entry ~priority:10 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ]);
  Flow_table.add t (entry ~priority:20 (Ofp_match.make ~tp_dst:443 ()) [ Action.Output 2 ]);
  let gone = Flow_table.delete t ~strict:false ~out_port:2 Ofp_match.any ~priority:0 in
  T_util.checki "only the port-2 rule removed" 1 (List.length gone);
  T_util.checki "one rule left" 1 (Flow_table.size t)

let test_hard_timeout_expiry () =
  let t = Flow_table.create () in
  Flow_table.add t (entry ~hard:10 ~now:0. Ofp_match.any [ Action.Output 1 ]);
  T_util.checki "live before timeout" 0 (List.length (Flow_table.expire t ~now:9.9));
  let expired = Flow_table.expire t ~now:10. in
  T_util.checki "expired at timeout" 1 (List.length expired);
  (match expired with
  | [ (_, reason) ] ->
      T_util.checkb "hard reason" true (reason = Message.Removed_hard)
  | _ -> Alcotest.fail "one expiry expected");
  T_util.checki "gone from table" 0 (Flow_table.size t)

let test_idle_timeout_refreshes () =
  let t = Flow_table.create () in
  let e = entry ~idle:5 ~now:0. Ofp_match.any [ Action.Output 1 ] in
  Flow_table.add t e;
  (* Traffic at t=4 refreshes the idle timer. *)
  Flow_entry.account e ~now:4. pkt;
  T_util.checki "still live at t=8 (refreshed)" 0
    (List.length (Flow_table.expire t ~now:8.));
  T_util.checki "expired at t=9" 1 (List.length (Flow_table.expire t ~now:9.))

let test_expired_entries_do_not_match () =
  let t = Flow_table.create () in
  Flow_table.add t (entry ~hard:5 ~now:0. Ofp_match.any [ Action.Output 1 ]);
  T_util.checkb "matches while live" true
    (Flow_table.lookup t ~now:1. ~in_port:1 pkt <> None);
  T_util.checkb "dead entry ignored by lookup" true
    (Flow_table.lookup t ~now:10. ~in_port:1 pkt = None)

let prop_lookup_respects_priority =
  QCheck2.Test.make ~name:"lookup returns a maximal-priority match" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10) (pair T_util.Gen.ofp_match (int_range 0 100)))
        (pair T_util.Gen.packet (int_range 1 8)))
    (fun (rules, (p, in_port)) ->
      let t = Flow_table.create () in
      List.iter
        (fun (m, priority) ->
          Flow_table.add t (entry ~priority m [ Action.Output 1 ]))
        rules;
      match Flow_table.lookup t ~now:0. ~in_port p with
      | None ->
          (* Then no rule matches at all. *)
          List.for_all
            (fun (e : Flow_entry.t) ->
              not (Flow_entry.matches e ~in_port p))
            (Flow_table.entries t)
      | Some e ->
          Flow_entry.matches e ~in_port p
          && List.for_all
               (fun (o : Flow_entry.t) ->
                 (not (Flow_entry.matches o ~in_port p))
                 || o.priority <= e.priority)
               (Flow_table.entries t))

let prop_delete_then_absent =
  QCheck2.Test.make ~name:"deleted rules stop matching" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) T_util.Gen.ofp_match)
    (fun patterns ->
      let t = Flow_table.create () in
      List.iteri
        (fun i m -> Flow_table.add t (entry ~priority:i m [ Action.Output 1 ]))
        patterns;
      ignore (Flow_table.delete t ~strict:false Ofp_match.any ~priority:0);
      Flow_table.size t = 0)

let suite =
  [
    Alcotest.test_case "priority ordering" `Quick test_priority_order;
    Alcotest.test_case "add replaces identical rule" `Quick test_add_replaces_twin;
    Alcotest.test_case "priorities coexist" `Quick test_same_match_different_priority_coexist;
    Alcotest.test_case "non-strict modify" `Quick test_modify_nonstrict_rewrites_subsumed;
    Alcotest.test_case "strict modify" `Quick test_modify_strict_needs_exact;
    Alcotest.test_case "modify keeps counters" `Quick test_modify_preserves_counters;
    Alcotest.test_case "wildcard delete" `Quick test_delete_nonstrict_wildcard;
    Alcotest.test_case "delete out_port filter" `Quick test_delete_out_port_filter;
    Alcotest.test_case "hard timeout" `Quick test_hard_timeout_expiry;
    Alcotest.test_case "idle timeout refresh" `Quick test_idle_timeout_refreshes;
    Alcotest.test_case "expired entries don't match" `Quick test_expired_entries_do_not_match;
    QCheck_alcotest.to_alcotest prop_lookup_respects_priority;
    QCheck_alcotest.to_alcotest prop_delete_then_absent;
  ]
