lib/core/netlog.ml: Action Controller Counter_cache List Message Netsim Ofp_match Openflow Txn_engine Types
