lib/controller/services.ml: App_sig Event Hashtbl List Message Netsim Openflow Packet Types
