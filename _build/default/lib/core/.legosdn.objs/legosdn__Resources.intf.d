lib/core/resources.mli:
