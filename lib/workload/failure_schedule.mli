(** Timed network-fault schedules for experiments. *)

type timed_fault = float * Netsim.Net.fault

val link_flap :
  a:Netsim.Topology.node ->
  b:Netsim.Topology.node ->
  down_at:float ->
  up_at:float ->
  timed_fault list

val switch_outage :
  Openflow.Types.switch_id -> down_at:float -> up_at:float -> timed_fault list

val channel_partition :
  Openflow.Types.switch_id -> start:float -> stop:float -> timed_fault list
(** Cut one switch's control channel (data plane untouched) for
    [stop - start] seconds, then heal it. *)

val loss_burst :
  Openflow.Types.switch_id ->
  loss:float ->
  start:float ->
  stop:float ->
  timed_fault list
(** Raise one switch's control-channel loss probability to [loss] for the
    window, then back to zero. *)

val inter_switch_links : Netsim.Topology.t -> Netsim.Topology.link list
(** The links whose both endpoints are switches — the ones worth flapping
    (host links kill connectivity trivially). Deterministic order. *)

val periodic_link_flaps :
  Netsim.Topology.t ->
  seed:int ->
  period:float ->
  downtime:float ->
  duration:float ->
  timed_fault list
(** Every [period] seconds, flap one random inter-switch link for
    [downtime] seconds. *)

val sorted : timed_fault list -> timed_fault list
