lib/apps/monitor.mli: Controller Openflow
