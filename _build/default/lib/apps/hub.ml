open Openflow
open Controller

type state = int  (* packets processed *)

let name = "hub"
let subscriptions = [ Event.K_packet_in ]
let init () = 0
let packets_seen st = st

let handle _ctx st = function
  | Event.Packet_in (sid, pi) ->
      let out =
        Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
          ~in_port:pi.Message.pi_in_port sid
          [ Action.Output Types.port_flood ]
          (match pi.Message.pi_buffer_id with
          | Some _ -> None
          | None -> Some pi.Message.pi_packet)
      in
      (st + 1, [ out ])
  | _ -> (st, [])
