(** A parsed packet header: the fields an OpenFlow 1.0 switch can match on,
    plus an opaque payload length.

    The simulator forwards header records rather than raw frames, but every
    packet that crosses a controller boundary (packet-in, packet-out) is
    serialized to a wire frame and re-parsed, so header/frame round-tripping
    is exercised on every control-plane hop. *)

type t = {
  dl_src : Types.mac;
  dl_dst : Types.mac;
  dl_vlan : int option;      (** VLAN id, if tagged. *)
  dl_type : int;             (** EtherType, e.g. 0x0800 (IPv4), 0x0806 (ARP). *)
  nw_src : Types.ip;
  nw_dst : Types.ip;
  nw_proto : int;            (** IP protocol (6 TCP, 17 UDP, 1 ICMP); for ARP,
                                 the opcode. *)
  nw_tos : int;
  tp_src : int;              (** Transport source port (or ICMP type). *)
  tp_dst : int;              (** Transport destination port (or ICMP code). *)
  payload_len : int;         (** Opaque payload byte count. *)
}

val ethertype_ip : int
val ethertype_arp : int
val proto_tcp : int
val proto_udp : int
val proto_icmp : int

val make :
  ?dl_vlan:int option ->
  ?dl_type:int ->
  ?nw_proto:int ->
  ?nw_tos:int ->
  ?tp_src:int ->
  ?tp_dst:int ->
  ?payload_len:int ->
  dl_src:Types.mac ->
  dl_dst:Types.mac ->
  nw_src:Types.ip ->
  nw_dst:Types.ip ->
  unit ->
  t
(** A packet with sensible defaults: untagged IPv4/TCP, 64-byte payload. *)

val tcp :
  src_host:int -> dst_host:int -> ?sport:int -> ?dport:int -> unit -> t
(** Convenience: a TCP packet between simulated hosts, with deterministic
    host-derived MAC and IP addresses. *)

val arp_request : src_host:int -> dst_host:int -> t
(** An ARP request from [src_host] looking for [dst_host]; broadcast at L2. *)

val size : t -> int
(** Total frame size in bytes (headers + payload), used for byte counters. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_frame : t -> bytes
(** Serialize to a pseudo-Ethernet frame. *)

val of_frame : bytes -> t
(** Parse a frame produced by {!to_frame}. Raises [Failure] on garbage. *)
