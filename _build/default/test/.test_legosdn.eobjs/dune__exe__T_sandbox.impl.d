test/t_sandbox.ml: Alcotest Apps Controller Legosdn List Message Openflow String T_util
