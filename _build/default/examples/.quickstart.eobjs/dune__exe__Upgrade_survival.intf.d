examples/upgrade_survival.mli:
