(** Application checkpoint store: the CRIU analogue.

    The proxy checkpoints an application before dispatching events to it.
    Checkpointing every event is the paper's §4.1 baseline; §5 proposes
    checkpointing every k events and replaying the journal on recovery —
    both supported here via [every]. *)

type t

val create : every:int -> t
(** [every] = k: a new snapshot is due once k events have been applied since
    the last one (k = 1 reproduces checkpoint-before-every-event).
    Raises [Invalid_argument] if [k < 1]. *)

val every : t -> int

val due : t -> bool
(** Is a snapshot due before the next event? (Always true before the first
    event.) *)

val take : t -> Controller.App_sig.instance -> unit
(** Snapshot the instance's state now and clear the replay journal. *)

val record_applied : t -> Controller.Event.t -> unit
(** Note that the application successfully processed this event after the
    last snapshot; it becomes part of the replay journal. *)

val restore_point : t -> (bytes * Controller.Event.t list) option
(** The latest snapshot and the journal of events applied since (oldest
    first); [None] before any snapshot was taken. *)

val journal_length : t -> int

val snapshots_taken : t -> int
val bytes_written : t -> int
(** Cumulative snapshot bytes — the checkpoint overhead metric. *)

val last_snapshot_bytes : t -> int
