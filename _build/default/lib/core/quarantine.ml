open Controller

type t = {
  threshold : int;
  failures : (string * Event.t, int) Hashtbl.t;
  blocked_events : (string, Event.t list) Hashtbl.t;
}

let create ?(threshold = 2) () =
  if threshold < 1 then invalid_arg "Quarantine.create: threshold must be >= 1";
  {
    threshold;
    failures = Hashtbl.create 32;
    blocked_events = Hashtbl.create 8;
  }

let threshold t = t.threshold

let quarantined t ~app =
  Option.value (Hashtbl.find_opt t.blocked_events app) ~default:[]

let blocked t ~app ev = List.exists (Event.equal ev) (quarantined t ~app)

let add t ~app ev =
  if not (blocked t ~app ev) then
    Hashtbl.replace t.blocked_events app (ev :: quarantined t ~app)

let note_failure t ~app ev =
  let key = (app, ev) in
  let n = 1 + Option.value (Hashtbl.find_opt t.failures key) ~default:0 in
  Hashtbl.replace t.failures key n;
  if n >= t.threshold && not (blocked t ~app ev) then begin
    add t ~app ev;
    `Quarantined
  end
  else `Recorded

let total_quarantined t =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) t.blocked_events 0

let deep_analyze t ~app m ctx ~history =
  if not (Sts.crashes_on m ctx history) then ([], 0)
  else begin
    let minimal, calls = Sts.minimize m ctx history in
    List.iter (fun ev -> add t ~app ev) minimal;
    (minimal, calls)
  end
