lib/openflow/message.mli: Action Format Ofp_match Packet Types
