test/t_extensions.ml: Action Alcotest Apps Controller Fun Legosdn List Message Ofp_match Openflow Packet QCheck2 QCheck_alcotest T_util
