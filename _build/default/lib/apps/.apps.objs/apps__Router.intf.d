lib/apps/router.mli: Controller
