(** Fault injection: wrap any application with a {!Bug_model} bug.

    The wrapper is transparent until the trigger fires; then it produces
    the configured failure exactly as a buggy application would — raising
    through the handler, raising with partially emitted commands, "hanging"
    (raising {!Controller.App_sig.App_hang}, which runtimes interpret as
    heart-beat loss), emitting byzantine rules, or leaking state. *)

val wrap :
  bug:Bug_model.t -> Controller.App_sig.app -> Controller.App_sig.app
(** The wrapped application keeps the inner application's name,
    subscriptions and declared intent, so runtimes and recovery policies
    are none the wiser. *)

exception Injected_crash of string
(** The exception thrown by [Crash]-effect bugs. *)
