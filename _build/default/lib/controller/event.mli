(** Controller-level events delivered to SDN applications.

    These are the northbound face of the switch notifications: raw OpenFlow
    messages plus the link-level events the controller's topology service
    derives from them. *)

open Openflow

type t =
  | Switch_up of Types.switch_id * Message.features
  | Switch_down of Types.switch_id
  | Port_status of Types.switch_id * Message.port_status_reason * Message.port_desc
  | Link_up of link
  | Link_down of link
  | Packet_in of Types.switch_id * Message.packet_in
  | Flow_removed of Types.switch_id * Message.flow_removed
  | Stats_reply of Types.switch_id * Types.xid * Message.stats_reply
  | Tick of float  (** Periodic timer carrying the current virtual time. *)

and link = {
  src_switch : Types.switch_id;
  src_port : Types.port_no;
  dst_switch : Types.switch_id;
  dst_port : Types.port_no;
}

(** Subscription keys, one per constructor. *)
type kind =
  | K_switch_up
  | K_switch_down
  | K_port_status
  | K_link_up
  | K_link_down
  | K_packet_in
  | K_flow_removed
  | K_stats_reply
  | K_tick

val kind_of : t -> kind
val all_kinds : kind list
val kind_name : kind -> string

val switch_of : t -> Types.switch_id option
(** The switch an event concerns, when there is exactly one. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
