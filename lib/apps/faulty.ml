open Openflow
module Event = Controller.Event
module App_sig = Controller.App_sig
module Command = Controller.Command

exception Injected_crash of string

(* A tiny self-contained LCG so that bug state marshals cleanly and two
   instances of the same module can flip different coins. *)
let lcg_next s = (s * 2862933555777941757) + 3037000493

let lcg_float s =
  let x = (s lsr 11) land 0xFFFFFFFF in
  float_of_int x /. 4294967296.0

(* Distinct instances of the same wrapped module (e.g. a primary and its
   clone) draw different seeds, which is what makes probabilistic bugs
   genuinely non-deterministic across replicas. *)
let instance_counter = ref 0

(* Non-determinism has to live OUTSIDE the application state: state is
   checkpointed and rolled back, and a coin stored there would come up the
   same way on every replay — turning the bug deterministic. This counter
   plays the role of the environment (timing, scheduling) that makes real
   non-deterministic bugs non-reproducible. *)
let environment_clock = ref 0

let wrap ~bug ((module A : App_sig.INTENT_APP) : App_sig.app) : App_sig.app =
  (module struct
    type state = {
      inner : A.state;
      total : int;
      kind_counts : (Event.kind * int) list;
      leaked : string list;
      rng : int;
    }

    let name = A.name
    let subscriptions = A.subscriptions

    (* Intent passes through untouched: the bug corrupts behavior, not the
       declared policy — which is exactly what lets Crash-Pad recover the
       app from its own intent. *)
    let policy ctx st = A.policy ctx st.inner

    let init () =
      incr instance_counter;
      let seed_base =
        match bug.Bug_model.trigger with
        | Bug_model.With_probability (_, seed) -> seed
        | _ -> 0
      in
      {
        inner = A.init ();
        total = 0;
        kind_counts = [];
        leaked = [];
        rng = lcg_next ((seed_base * 1_000_003) + !instance_counter);
      }

    let bump_kind counts kind =
      let n = Option.value (List.assoc_opt kind counts) ~default:0 in
      (kind, n + 1) :: List.remove_assoc kind counts

    let triggered st ev =
      let kind = Event.kind_of ev in
      let kind_count =
        Option.value (List.assoc_opt kind st.kind_counts) ~default:0
      in
      match bug.Bug_model.trigger with
      | Bug_model.Never -> false
      | Bug_model.On_kind k -> k = kind
      | Bug_model.On_nth_of_kind (k, n) -> k = kind && kind_count = n - 1
      | Bug_model.On_switch sid -> Event.switch_of ev = Some sid
      | Bug_model.After_events n -> st.total > n
      | Bug_model.On_tp_dst p -> (
          match ev with
          | Event.Packet_in (_, pi) ->
              pi.Message.pi_packet.Packet.tp_dst = p
          | _ -> false)
      | Bug_model.With_probability (p, _) ->
          incr environment_clock;
          lcg_float (lcg_next (st.rng + (!environment_clock * 0x9E3779B9))) < p

    (* Rules a byzantine bug emits. *)
    let byzantine_priority = 65000

    let loop_commands (ctx : App_sig.context) =
      match App_sig.links ctx with
      | [] -> None
      | (l : Event.link) :: _ ->
          Some
            [
              Command.install ~priority:byzantine_priority l.src_switch
                (Ofp_match.make ~dl_type:Packet.ethertype_ip ())
                [ Action.Output l.src_port ];
              Command.install ~priority:byzantine_priority l.dst_switch
                (Ofp_match.make ~dl_type:Packet.ethertype_ip ())
                [ Action.Output l.dst_port ];
            ]

    let blackhole_commands (ctx : App_sig.context) =
      match App_sig.switches ctx with
      | [] -> None
      | sid :: _ ->
          (* Port 9999 is never wired: traffic vanishes silently. *)
          Some
            [
              Command.install ~priority:byzantine_priority sid
                (Ofp_match.make ~dl_type:Packet.ethertype_ip ())
                [ Action.Output 9999 ];
            ]

    let handle ctx st ev =
      let fire = triggered st ev in
      let st =
        {
          st with
          total = st.total + 1;
          kind_counts = bump_kind st.kind_counts (Event.kind_of ev);
          rng = lcg_next st.rng;
        }
      in
      if not fire then begin
        let inner', commands = A.handle ctx st.inner ev in
        ({ st with inner = inner' }, commands)
      end
      else
        match bug.Bug_model.effect_ with
        | Bug_model.Crash ->
            raise (Injected_crash (Bug_model.describe bug))
        | Bug_model.Hang -> raise App_sig.App_hang
        | Bug_model.Crash_partial fraction ->
            let _inner', commands = A.handle ctx st.inner ev in
            let keep =
              int_of_float (ceil (fraction *. float (List.length commands)))
            in
            let partial = List.filteri (fun i _ -> i < keep) commands in
            raise (App_sig.Crash_with_partial partial)
        | Bug_model.Byzantine_loop -> (
            match loop_commands ctx with
            | Some commands -> (st, commands)
            | None -> raise (Injected_crash "byzantine loop (no links)"))
        | Bug_model.Byzantine_blackhole -> (
            match blackhole_commands ctx with
            | Some commands -> (st, commands)
            | None -> raise (Injected_crash "byzantine blackhole (no switches)"))
        | Bug_model.Leak n ->
            let inner', commands = A.handle ctx st.inner ev in
            ( { st with inner = inner'; leaked = String.make n 'x' :: st.leaked },
              commands )
  end)
