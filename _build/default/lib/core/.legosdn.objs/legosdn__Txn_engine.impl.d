lib/core/txn_engine.ml: Controller Message Openflow
