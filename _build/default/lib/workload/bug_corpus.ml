module Bug_model = Apps.Bug_model
module Event = Controller.Event

type severity = Catastrophic | Degraded | Cosmetic

type entry = {
  id : int;
  summary : string;
  severity : severity;
  bug : Bug_model.t option;
}

(* 8 catastrophic out of 50 = 16%, matching the paper's tracker survey. *)
let catastrophic_entries =
  [
    ( "NullPointerException parsing packet-in with truncated payload",
      Bug_model.make (Bug_model.On_tp_dst 0) Bug_model.Crash );
    ( "ArrayIndexOutOfBounds on port-status for port not in port map",
      Bug_model.crash_on Event.K_port_status );
    ( "Unhandled exception when switch disconnects mid-rebalance",
      Bug_model.crash_on Event.K_switch_down );
    ( "Divide-by-zero computing per-port load with zero active uplinks",
      Bug_model.crash_on_nth Event.K_packet_in 5 );
    ( "Crash after partial rule push when flow table iterator invalidated",
      Bug_model.make (Bug_model.On_nth_of_kind (Event.K_packet_in, 4))
        (Bug_model.Crash_partial 0.5) );
    ( "Thread deadlock between stats poller and rebalancer",
      Bug_model.make (Bug_model.On_kind Event.K_stats_reply) Bug_model.Hang );
    ( "State accumulation in flow cache never evicted (OOM after hours)",
      Bug_model.make (Bug_model.On_kind Event.K_packet_in)
        (Bug_model.Leak 4096) );
    ( "Race: rules installed pointing at removed port, traffic black-holed",
      Bug_model.make (Bug_model.On_nth_of_kind (Event.K_packet_in, 3))
        Bug_model.Byzantine_blackhole );
  ]

let degraded_summaries =
  [
    "Rebalance oscillates between two uplinks under symmetric load";
    "Stats polling interval ignores config value, hardcoded 10s";
    "Flow migration leaves stale low-priority duplicate rules";
    "Uneven distribution when host count is prime";
    "LLDP neighbor timeout too aggressive on slow links";
    "Rules installed with idle timeout 0 never expire";
    "Port speed read as 100Mbps on 10G interfaces";
    "Config reload drops active flow assignments";
    "IPv6 traffic silently ignored by classifier";
    "Duplicate packet-out when buffer id also carries payload";
    "Counters wrap at 32 bits on long-lived flows";
    "Header space overlap check skipped for VLAN-tagged flows";
    "Backup uplink not used until primary fully saturated";
    "Flow table usage metric counts deleted entries";
    "Rebalance triggered by echo replies, not data traffic";
    "Priority inversion between monitor rules and forwarding rules";
    "Graceful shutdown leaves rules installed with no owner";
    "Pause frames misinterpreted as port-down";
    "ARP replies forwarded to all uplinks causing duplicates";
    "Host move not detected until old flow idles out";
    "Statistics aggregation double-counts multi-action rules";
  ]

let cosmetic_summaries =
  [
    "Log spam: one INFO line per packet-in at default level";
    "CLI help text lists removed --threads option";
    "Uptime display overflows after 25 days";
    "Typos in REST API error messages";
    "Version string reports SNAPSHOT in release builds";
    "Web UI port utilisation bars unsorted";
    "Metric names use camelCase and snake_case inconsistently";
    "README quickstart references renamed jar";
    "Debug dump prints MAC addresses without leading zeros";
    "Startup banner shows wrong copyright year";
    "Unused import warnings in build";
    "Config parser accepts trailing garbage silently";
    "Thread names not set, hard to profile";
    "Misleading DEBUG message on normal barrier reply";
    "REST endpoint returns 200 for unknown switch (empty body)";
    "Exception stack traces logged twice";
    "Stats CSV export uses locale-dependent decimal separator";
    "Port description truncated at 16 characters in UI";
    "Redundant barrier after every single flow-mod";
    "Source tarball contains editor backup files";
    "Javadoc missing for public API";
  ]

let flowscale_like =
  let catastrophic =
    List.map
      (fun (summary, bug) -> (summary, Catastrophic, Some bug))
      catastrophic_entries
  in
  let degraded =
    List.map (fun s -> (s, Degraded, None)) degraded_summaries
  in
  let cosmetic = List.map (fun s -> (s, Cosmetic, None)) cosmetic_summaries in
  List.mapi
    (fun i (summary, severity, bug) -> { id = i + 1; summary; severity; bug })
    (catastrophic @ degraded @ cosmetic)

let stats entries =
  List.map
    (fun severity ->
      ( severity,
        List.length (List.filter (fun e -> e.severity = severity) entries) ))
    [ Catastrophic; Degraded; Cosmetic ]

let catastrophic_fraction entries =
  if entries = [] then 0.
  else
    float (List.length (List.filter (fun e -> e.severity = Catastrophic) entries))
    /. float (List.length entries)

let severity_name = function
  | Catastrophic -> "catastrophic"
  | Degraded -> "degraded"
  | Cosmetic -> "cosmetic"

let executable_bugs entries = List.filter_map (fun e -> e.bug) entries
