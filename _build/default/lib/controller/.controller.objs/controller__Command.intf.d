lib/controller/command.mli: Action Format Message Ofp_match Openflow Packet Types
