let all : (string * (module Controller.App_sig.APP)) list =
  [
    ("learning_switch", (module Learning_switch));
    ("hub", (module Hub));
    ("flooder", (module Flooder));
    ("router", (module Router));
    ("load_balancer", (module Load_balancer));
    ("firewall", (module Firewall));
    ("monitor", (module Monitor));
    ("spanning_tree", (module Spanning_tree));
    ("arp_responder", (module Arp_responder));
  ]

let names = List.map fst all

let find name = List.assoc_opt name all

let table2 =
  [
    ("router", "third-party", "Routing (RouteFlow analogue)");
    ("load_balancer", "third-party", "Traffic engineering (FlowScale)");
    ("firewall", "vendor", "Security (BigTap analogue)");
    ("monitor", "third-party", "Monitoring/provisioning (Stratos)");
    ("learning_switch", "bundled", "L2 forwarding (FloodLight port)");
    ("hub", "bundled", "Flood forwarding (FloodLight port)");
    ("flooder", "bundled", "Flood + rule install (FloodLight port)");
    ("spanning_tree", "bundled", "Flood pruning via OFPPC_NO_FLOOD");
    ("arp_responder", "bundled", "Proxy ARP");
  ]
