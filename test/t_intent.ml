(* Intent reconciliation and policy-derived Equivalence compromises:
   the runtime keeps hardware synchronized with each app's declared
   policy, refuses intents whose compiled tables would violate safety
   invariants, and — when an app crashes — Crash-Pad recompiles the
   declared intent into a verified rule-set instead of guessing. *)

open Netsim
module App_sig = Controller.App_sig
module Event = Controller.Event
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Metrics = Legosdn.Metrics
module Spec = Check.Spec
module Runner = Check.Runner

let table_size net sid = Flow_table.size (Net.switch net sid).Sw.table

(* ---------------- reconciliation ---------------- *)

(* A healthy policy_firewall never emits a command, yet after its first
   delivery the switches are programmed from its compiled intent: telnet
   dies in hardware, everything else floods in hardware. *)
let test_reconcile_programs_switches () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  let rt =
    Runtime.create net [ App_sig.intent (module Apps.Policy_firewall) ]
  in
  Runtime.step rt;
  let m = Runtime.metrics rt in
  T_util.checkb "intent reconciled at least once" true
    (Metrics.policy_reconciles m >= 1);
  T_util.checkb "rules installed on switch 1" true (table_size net 1 > 0);
  T_util.checkb "rules installed on switch 2" true (table_size net 2 > 0);
  (match Runtime.sandboxes rt with
  | [ box ] ->
      T_util.checkb "sandbox tracks installed intent" true
        (Sandbox.intent_tables box <> [])
  | _ -> Alcotest.fail "expected exactly one sandbox");
  (* Telnet is dropped by the compiled tables... *)
  let delivered_before = (Net.stats net).Net.delivered in
  Clock.advance_by clock 0.05;
  Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ~dport:23 ());
  Runtime.step rt;
  T_util.checki "telnet blocked in hardware" delivered_before
    (Net.stats net).Net.delivered;
  (* ...while web traffic floods through without ever punting. *)
  let events_before = Metrics.events m in
  Clock.advance_by clock 0.05;
  Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ~dport:80 ());
  Runtime.step rt;
  T_util.checkb "http delivered" true
    ((Net.stats net).Net.delivered > delivered_before);
  T_util.checki "no punt: table covered the packet" events_before
    (Metrics.events m)

(* ---------------- rejection ---------------- *)

(* An intent that compiles to a forwarding loop: every switch blasts all
   traffic out its first inter-switch port. The compiler is happy, the
   differential check agrees — and the invariant engine refuses to let a
   single rule reach the network. *)
module Loopy = struct
  type state = int

  let name = "loopy"
  let subscriptions = [ Event.K_switch_up ]
  let init () = 0
  let handle _ctx st _ev = (st + 1, [])

  let policy ctx _st =
    match App_sig.links ctx with
    | [] -> None
    | links ->
        Some
          (Policy.union_all
             (List.map
                (fun (l : Event.link) ->
                  Policy.at l.Event.src_switch
                    (Policy.forward l.Event.src_port))
                links))
end

let test_looping_intent_rejected () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  let rt = Runtime.create net [ App_sig.intent (module Loopy) ] in
  Runtime.step rt;
  let m = Runtime.metrics rt in
  T_util.checkb "looping intent rejected" true (Metrics.policy_rejected m >= 1);
  T_util.checki "no reconcile recorded" 0 (Metrics.policy_reconciles m);
  T_util.checki "switch 1 table untouched" 0 (table_size net 1);
  T_util.checki "switch 2 table untouched" 0 (table_size net 2);
  match Runtime.sandboxes rt with
  | [ box ] ->
      T_util.checkb "no intent recorded as installed" true
        (Sandbox.intent_tables box = [])
  | _ -> Alcotest.fail "expected exactly one sandbox"

(* ---------------- policy-derived compromise ---------------- *)

(* policy_router on a full mesh with a poison-packet bug. Hosts 1-3 get
   learned and routed; then a link dies *silently* (the app only watches
   packet-ins), and the very packet that punts to tell the app about the
   stale tables crashes it — deterministically, on every retry. Crash-Pad's
   Equivalence compromise recompiles the declared intent against the
   post-failure topology and installs the verified diff: traffic keeps
   flowing across a path the crashed app never computed. *)
let test_compromise_reroutes_after_crash () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.mesh ~hosts_per_switch:1 4) in
  let bug =
    Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 7) Apps.Bug_model.Crash
  in
  let app =
    Apps.Faulty.wrap ~bug (App_sig.intent (module Apps.Policy_router))
  in
  let rt = Runtime.create net [ app ] in
  Runtime.step rt;
  (* Hosts 1-3 each send towards the never-speaking host 4: every packet
     punts, so their MACs get learned and routed. *)
  for h = 1 to 3 do
    Clock.advance_by clock 0.05;
    Net.inject net h (Openflow.Packet.tcp ~src_host:h ~dst_host:4 ());
    Runtime.step rt
  done;
  let m = Runtime.metrics rt in
  T_util.checkb "routes installed before the failure" true
    (Metrics.policy_reconciles m >= 1);
  T_util.checki "no compromise yet" 0 (Metrics.policy_compromises m);
  T_util.checki "no crash yet" 0 (Metrics.crashes m);
  (* Cut the 1<->2 link. The app subscribes to no topology event, so the
     routes through it simply went stale. *)
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  Runtime.step rt;
  (* The next punt carries the poison port: delivery crashes, retries
     crash, and the compromise recompiles the declared intent against the
     live links instead. *)
  Clock.advance_by clock 0.05;
  Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:4 ~dport:7 ());
  Runtime.step rt;
  T_util.checkb "crash absorbed" true (Metrics.crashes m >= 1);
  T_util.checkb "compromise derived from compiled policy" true
    (Metrics.policy_compromises m >= 1);
  List.iter
    (fun box -> T_util.checkb "app still alive" true (Sandbox.alive box))
    (Runtime.sandboxes rt);
  (* The recompiled routes steer around the dead link in hardware. *)
  Clock.advance_by clock 0.05;
  Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ());
  Runtime.step rt;
  T_util.checkb "traffic rerouted around the dead link" true
    (Net.reachable net 1 2)

(* ---------------- end-to-end fuzzer scenario ---------------- *)

(* The same story through the fuzz harness: a hand-authored spec running
   policy_router with corpus bug #0 — "NullPointerException parsing
   packet-in with truncated payload", which crashes on any packet with
   tp_dst 0. Routes get learned, the middle switch of a linear topology
   reboots (silently, for a packet-in-only app), and then a dport-0
   packet punts: the delivery crashes on every retry, and Crash-Pad's
   only way out is recompiling the declared intent against the shrunken
   topology. The runner must finish with no oracle finding and at least
   one policy-derived compromise in its final state. *)
let test_fuzzer_scenario_derives_compromise () =
  let spec =
    {
      Spec.seed = 0;
      topo = Spec.Linear 3;
      apps = [ "policy_router" ];
      base_loss = 0.0;
      duplicate = 0.0;
      delay = 0.0;
      reliable = true;
      base_timeout = 0.05;
      max_retries = 6;
      checkpoint_every = 1;
      policy = Legosdn.Recovery_policy.Equivalence;
      duration = 8.0;
      replicas = 1;
      election_lo = 0.15;
      election_hi = 0.3;
      nversion = 1;
      elements =
        [
          (* Learn host 1 end-to-end before the failure. *)
          Spec.Flow { src = 0; dst = 2; start = 1.0; packets = 2; dport = 80 };
          Spec.Flow { src = 2; dst = 0; start = 1.5; packets = 2; dport = 80 };
          (* Reboot the middle switch; its routes are now stale. *)
          Spec.Switch_reboot { sw = 1; down_at = 4.0; downtime = 1.5 };
          (* A dport-0 punt while the switch is down crashes the app
             (corpus bug 0): the compromise withdraws the routes through
             the dead switch from declared intent. *)
          Spec.Flow { src = 0; dst = 2; start = 4.5; packets = 1; dport = 0 };
          Spec.Inject_bug { slot = 0; bug = 0 };
          (* Traffic after the switch returns re-drives reconciliation. *)
          Spec.Flow { src = 0; dst = 2; start = 6.5; packets = 2; dport = 80 };
        ];
    }
  in
  let r = Runner.run spec in
  (match r.Runner.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "unexpected oracle finding: %s: %s" f.Runner.oracle
        f.Runner.detail);
  T_util.checkb "run survived its oracles" true (r.Runner.failure = None);
  T_util.checkb "crash observed" true (r.Runner.final.Runner.f_crashes >= 1);
  T_util.checkb "fuzzer scenario derived a verified compromise" true
    (r.Runner.final.Runner.f_policy_compromises >= 1)

let suite =
  [
    Alcotest.test_case "reconcile programs switches" `Quick
      test_reconcile_programs_switches;
    Alcotest.test_case "looping intent rejected" `Quick
      test_looping_intent_rejected;
    Alcotest.test_case "compromise reroutes after crash" `Quick
      test_compromise_reroutes_after_crash;
    Alcotest.test_case "fuzzer scenario derives compromise" `Quick
      test_fuzzer_scenario_derives_compromise;
  ]
