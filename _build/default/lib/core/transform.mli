(** Event transformations for the Equivalence-Compromise policy (§3.3).

    The domain knowledge the paper exploits: certain events are supersets
    of others. A switch-down is equivalent to the set of link-downs of its
    attached links; a link-down can be coarsened into a switch-down; a
    packet-in can be retargeted as a plain table-miss replay. When an event
    crashes an application, Crash-Pad replays an equivalent form instead. *)

open Controller

val equivalents :
  links_of:(Openflow.Types.switch_id -> Event.link list) ->
  Event.t ->
  Event.t list list
(** Alternative event sequences to try, best first. Each alternative is a
    {e sequence} (a switch-down expands to several link-downs). The empty
    outer list means the event has no usable equivalent and the caller
    should fall back to ignoring it. [links_of] reports the live links
    around a switch (from the controller's topology service). *)

val describe : Event.t list -> string
(** Render an alternative for tickets and logs. *)
