open Openflow
module Checkpoint = Legosdn.Checkpoint
module App_sig = Controller.App_sig
module Event = Controller.Event

let instance () = App_sig.instantiate (App_sig.app (module Apps.Learning_switch))

let tick t = Event.Tick t

let packet_in ?(sid = 1) ?(in_port = 100) src dst =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Message.No_match;
        pi_packet = T_util.tcp_packet src dst;
      } )

(* An instance with some learned state, so snapshots are a few chunks
   long rather than a near-empty Marshal header. *)
let warmed_instance () =
  let inst = ref (instance ()) in
  for src = 1 to 8 do
    for dst = 1 to 8 do
      let updated, _ =
        App_sig.handle !inst T_util.null_context (packet_in src dst)
      in
      inst := updated
    done
  done;
  !inst

let test_due_before_first_event () =
  let c = Checkpoint.create ~every:5 in
  T_util.checkb "due initially" true (Checkpoint.due c);
  Checkpoint.take c (instance ());
  T_util.checkb "not due right after" false (Checkpoint.due c)

let test_every_one () =
  let c = Checkpoint.create ~every:1 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  T_util.checkb "due after each event with k=1" true (Checkpoint.due c)

let test_every_k () =
  let c = Checkpoint.create ~every:3 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  T_util.checkb "not due after 1 of 3" false (Checkpoint.due c);
  Checkpoint.record_applied c (tick 2.);
  Checkpoint.record_applied c (tick 3.);
  T_util.checkb "due after 3 of 3" true (Checkpoint.due c)

let test_restore_point_carries_journal () =
  let c = Checkpoint.create ~every:10 in
  T_util.checkb "no restore point yet" true (Checkpoint.restore_point c = None);
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  Checkpoint.record_applied c (tick 2.);
  match Checkpoint.restore_point c with
  | Some (_, journal) ->
      Alcotest.(check (list T_util.event_t)) "journal order oldest-first"
        [ tick 1.; tick 2. ] journal
  | None -> Alcotest.fail "restore point expected"

let test_take_clears_journal () =
  let c = Checkpoint.create ~every:2 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  Checkpoint.take c (instance ());
  T_util.checki "journal cleared" 0 (Checkpoint.journal_length c);
  T_util.checki "two snapshots accounted" 2 (Checkpoint.snapshots_taken c)

let test_bytes_accounting () =
  let c = Checkpoint.create ~every:1 in
  Checkpoint.take c (instance ());
  let first = Checkpoint.bytes_written c in
  T_util.checkb "bytes counted" true (first > 0);
  T_util.checki "last snapshot size" first (Checkpoint.last_snapshot_bytes c);
  Checkpoint.take c (instance ());
  T_util.checki "bytes accumulate" (2 * first) (Checkpoint.bytes_written c)

let test_invalid_k () =
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Checkpoint.create: every must be >= 1") (fun () ->
      ignore (Checkpoint.create ~every:0))

(* ---- delta storage ---- *)

let test_delta_vs_full_bytes () =
  let full = Checkpoint.create ~every:1 in
  let delta = Checkpoint.create_delta ~cadence:(Checkpoint.Every 1) () in
  let inst = warmed_instance () in
  Checkpoint.take full inst;
  Checkpoint.take delta inst;
  Checkpoint.take full inst;
  Checkpoint.take delta inst;
  let logical = Checkpoint.last_snapshot_bytes full in
  T_util.checki "full pays the whole blob each time" (2 * logical)
    (Checkpoint.bytes_written full);
  (* Unchanged state: the second delta take hits on every chunk and pays
     only manifest overhead. *)
  T_util.checkb "second delta take is manifest-only" true
    (Checkpoint.last_write_bytes delta < logical);
  T_util.checkb "delta cheaper than full overall" true
    (Checkpoint.bytes_written delta < Checkpoint.bytes_written full);
  T_util.checkb "dedup accounted" true
    (Checkpoint.chunk_bytes_deduped delta > 0);
  T_util.checkb "chunk hits accounted" true (Checkpoint.chunk_hits delta > 0);
  match Checkpoint.restore_point delta with
  | Some (snap, _) ->
      T_util.checkb "materialization is byte-exact" true
        (Bytes.equal snap (App_sig.snapshot inst))
  | None -> Alcotest.fail "restore point expected"

let test_adaptive_cadence () =
  (* Astronomic replay cost: due exactly when min_events is reached. *)
  let eager =
    Checkpoint.create_delta
      ~cadence:
        (Checkpoint.Adaptive
           { replay_cost_per_event = 1_000_000; min_events = 2; max_events = 8 })
      ()
  in
  Checkpoint.take eager (warmed_instance ());
  Checkpoint.record_applied eager (tick 1.);
  T_util.checkb "below min_events" false (Checkpoint.due eager);
  Checkpoint.record_applied eager (tick 2.);
  T_util.checkb "due at min_events under huge replay cost" true
    (Checkpoint.due eager);
  (* Negligible replay cost: only the max_events ceiling triggers. *)
  let lazy_c =
    Checkpoint.create_delta
      ~cadence:
        (Checkpoint.Adaptive
           { replay_cost_per_event = 1; min_events = 1; max_events = 3 })
      ()
  in
  Checkpoint.take lazy_c (warmed_instance ());
  Checkpoint.record_applied lazy_c (tick 1.);
  T_util.checkb "cheap replay defers" false (Checkpoint.due lazy_c);
  Checkpoint.record_applied lazy_c (tick 2.);
  Checkpoint.record_applied lazy_c (tick 3.);
  T_util.checkb "max_events bounds the journal" true (Checkpoint.due lazy_c)

(* The tentpole's correctness property: restoring from a chunked snapshot
   plus journal replay reproduces the live application state byte-for-byte,
   whatever the event sequence, cadence or chunk size. *)
let prop_restore_equivalence =
  QCheck2.Test.make ~name:"delta restore + replay = live state" ~count:100
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 40)
           (oneof
              [
                map2 (fun a b -> `Pkt (a, b)) (int_range 1 6) (int_range 1 6);
                map (fun t -> `Tick (float_of_int t)) (int_range 1 100);
              ]))
        (oneofl [ 1; 2; 5 ])
        (oneofl [ 1; 7; 64 ]))
    (fun (events, k, chunk_size) ->
      let c =
        Checkpoint.create_delta ~chunk_size ~cadence:(Checkpoint.Every k) ()
      in
      let ctx = T_util.null_context in
      let live = ref (instance ()) in
      List.iter
        (fun e ->
          let ev =
            match e with
            | `Pkt (src, dst) -> packet_in src dst
            | `Tick t -> Event.Tick t
          in
          (* The sandbox protocol: checkpoint when due, deliver, journal. *)
          if Checkpoint.due c then Checkpoint.take c !live;
          let updated, _ = App_sig.handle !live ctx ev in
          live := updated;
          Checkpoint.record_applied c ev)
        events;
      match Checkpoint.restore_point c with
      | None -> false
      | Some (snap, journal) ->
          let restored = ref (App_sig.restore !live snap) in
          List.iter
            (fun ev ->
              let updated, _ = App_sig.handle !restored ctx ev in
              restored := updated)
            journal;
          Bytes.equal (App_sig.snapshot !restored) (App_sig.snapshot !live))

let suite =
  [
    Alcotest.test_case "due before first event" `Quick test_due_before_first_event;
    Alcotest.test_case "k=1 cadence" `Quick test_every_one;
    Alcotest.test_case "k=3 cadence" `Quick test_every_k;
    Alcotest.test_case "restore point journal" `Quick test_restore_point_carries_journal;
    Alcotest.test_case "take clears journal" `Quick test_take_clears_journal;
    Alcotest.test_case "byte accounting" `Quick test_bytes_accounting;
    Alcotest.test_case "invalid k" `Quick test_invalid_k;
    Alcotest.test_case "delta vs full bytes" `Quick test_delta_vs_full_bytes;
    Alcotest.test_case "adaptive cadence" `Quick test_adaptive_cadence;
    QCheck_alcotest.to_alcotest prop_restore_equivalence;
  ]
