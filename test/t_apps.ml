module App_sig = Controller.App_sig
open Openflow
open Netsim
module Runtime = Legosdn.Runtime
module Event = Controller.Event
module Monolithic = Controller.Monolithic

(* Most app behaviour is observed end-to-end through a runtime over a real
   simulated network: inject traffic, step, inspect the data plane. *)

let drive net step pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (T_util.tcp_packet src dst);
      step ())
    pairs

let runtime_over topo apps =
  let clock = Clock.create () in
  let net = Net.create clock topo in
  let rt = Runtime.create net apps in
  Runtime.step rt;
  (net, rt)

let test_hub_floods_but_never_installs () =
  let net, rt = runtime_over (Topo_gen.linear ~hosts_per_switch:1 3) [ (App_sig.app (module Apps.Hub)) ] in
  drive net (fun () -> Runtime.step rt) [ (1, 2); (1, 2); (1, 2) ];
  List.iter
    (fun sid ->
      T_util.checki "hub installs nothing" 0
        (Flow_table.size (Net.switch net sid).Sw.table))
    [ 1; 2; 3 ];
  (* Every packet is still delivered — through the controller each time. *)
  T_util.checkb "traffic delivered by flooding" true
    ((Net.stats net).Net.delivered >= 3)

let test_flooder_installs_flood_rules () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2) [ (App_sig.app (module Apps.Flooder)) ]
  in
  drive net (fun () -> Runtime.step rt) [ (1, 2) ];
  T_util.checkb "flood rule installed at ingress" true
    (Flow_table.size (Net.switch net 1).Sw.table >= 1);
  (* Second packet of the same flow is forwarded in hardware: no new
     packet-in from s1. *)
  let before = (Net.stats net).Net.packet_ins in
  Net.inject net 1 (T_util.tcp_packet 1 2);
  Runtime.step rt;
  let after = (Net.stats net).Net.packet_ins in
  T_util.checkb "subsequent packets skip the controller at s1" true
    (after - before < 2)

let test_learning_switch_converges () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 3)
      [ (App_sig.app (module Apps.Learning_switch)) ]
  in
  drive net (fun () -> Runtime.step rt) [ (1, 2); (2, 1); (1, 2) ];
  T_util.checkb "forward path pinned" true (Net.reachable net 1 2);
  T_util.checkb "reverse path pinned" true (Net.reachable net 2 1)

let test_learning_switch_forgets_on_switch_down () =
  let _, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2)
      [ (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (Event.Switch_down 1);
  (* No assertion on internals — just that the handler runs clean. *)
  T_util.checki "no crashes" 0 (Legosdn.Metrics.crashes (Runtime.metrics rt))

let test_router_installs_path_rules () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 3) [ (App_sig.app (module Apps.Router)) ]
  in
  (* First exchange seeds the device manager (flooding), second installs. *)
  drive net (fun () -> Runtime.step rt) [ (1, 3); (3, 1); (1, 3) ];
  T_util.checkb "end-to-end path programmed" true (Net.reachable net 1 3);
  (* Path rules exist on the transit switch too. *)
  T_util.checkb "transit switch programmed" true
    (Flow_table.size (Net.switch net 2).Sw.table >= 1)

let test_router_tears_down_on_link_failure () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 3) [ (App_sig.app (module Apps.Router)) ]
  in
  drive net (fun () -> Runtime.step rt) [ (1, 3); (3, 1); (1, 3) ];
  T_util.checkb "programmed" true (Net.reachable net 1 3);
  Net.apply_fault net (Net.Link_down (Topology.Switch 2, Topology.Switch 3));
  Runtime.step rt;
  (* Routes through the dead link were withdrawn, not left black-holing. *)
  let snap = Invariants.Snapshot.of_net net in
  Alcotest.(check (list string)) "no black holes after withdrawal" []
    (List.map Invariants.Checker.violation_kind
       (Invariants.Checker.check
          ~invariants:[ Invariants.Checker.Black_hole_freedom ] snap))

let test_firewall_blocks_telnet () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2)
      [ (App_sig.app (module Apps.Firewall)); (App_sig.app (module Apps.Learning_switch)) ]
  in
  (* ACL rules pushed at handshake. *)
  T_util.checkb "ACLs installed" true
    (Flow_table.size (Net.switch net 1).Sw.table >= 2);
  (* Telnet never arrives even though the learning switch would route it. *)
  drive net (fun () -> Runtime.step rt) [ (1, 2); (2, 1) ];
  let delivered_before = (Net.stats net).Net.delivered in
  Net.inject net 1
    (Packet.tcp ~src_host:1 ~dst_host:2 ~dport:23 ());
  Runtime.step rt;
  T_util.checki "telnet dropped in hardware" delivered_before
    (Net.stats net).Net.delivered

let test_firewall_web_unaffected () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2)
      [ (App_sig.app (module Apps.Firewall)); (App_sig.app (module Apps.Learning_switch)) ]
  in
  drive net (fun () -> Runtime.step rt) [ (1, 2); (2, 1); (1, 2) ];
  T_util.checkb "web traffic still flows" true (Net.reachable net 1 2)

let test_load_balancer_spreads_flows () =
  (* Star: leaves s2..s4 each hang off hub s1; hub has 3 uplinks. Traffic
     entering the hub from different flows should spread. *)
  let net, rt =
    runtime_over (Topo_gen.star ~hosts_per_switch:1 3) [ (App_sig.app (module Apps.Load_balancer)) ]
  in
  (* Hosts live on leaves; drive distinct flows through the hub. *)
  List.iteri
    (fun i dst ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net 1 (Packet.tcp ~src_host:1 ~dst_host:dst ~sport:(2000 + i) ());
      Runtime.step rt)
    [ 2; 3; 2; 3 ];
  (* The hub's assignments must use more than one uplink. *)
  let hub_rules = Flow_table.entries (Net.switch net 1).Sw.table in
  let ports_used =
    hub_rules
    |> List.concat_map (fun (e : Flow_entry.t) -> Action.outputs e.actions)
    |> List.sort_uniq compare
  in
  T_util.checkb "more than one uplink used" true (List.length ports_used > 1)

let test_monitor_counts_and_never_regresses () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2)
      [ (App_sig.app (module Apps.Learning_switch)); (App_sig.app (module Apps.Monitor)) ]
  in
  drive net (fun () -> Runtime.step rt) [ (1, 2); (2, 1); (1, 2) ];
  Runtime.tick rt;
  Runtime.tick rt;
  let monitor = Option.get (Runtime.sandbox rt "monitor") in
  T_util.checkb "monitor polled" true (Legosdn.Sandbox.events_handled monitor > 2)

let test_faulty_wrapper_transparent_until_trigger () =
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 100 in
  let net, mono =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
    let mono =
      Monolithic.create net [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
    in
    Monolithic.step mono;
    (net, mono)
  in
  drive net (fun () -> Monolithic.step mono) [ (1, 2); (2, 1); (1, 2) ];
  T_util.checkb "wrapped app behaves identically below trigger" true
    (Monolithic.status mono = Monolithic.Running && Net.reachable net 1 2)

let test_bug_probability_is_seed_deterministic () =
  let trigger p seed =
    let bug = Apps.Bug_model.make (Apps.Bug_model.With_probability (p, seed)) Apps.Bug_model.Crash in
    let m = Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Hub)) in
    let module M = (val m : Controller.App_sig.INTENT_APP) in
    let crashes = ref 0 in
    let st = ref (M.init ()) in
    for i = 1 to 50 do
      match
        M.handle T_util.null_context !st
          (Event.Packet_in
             ( 1,
               {
                 Message.pi_buffer_id = None;
                 pi_in_port = 1;
                 pi_reason = Message.No_match;
                 pi_packet = T_util.tcp_packet 1 (1 + (i mod 3));
               } ))
      with
      | st', _ -> st := st'
      | exception _ -> incr crashes
    done;
    !crashes
  in
  let a = trigger 0.3 42 in
  T_util.checkb "p=0.3 crashes sometimes" true (a > 0 && a < 50);
  T_util.checki "p=0 never crashes" 0 (trigger 0.0 42)

let suite =
  [
    Alcotest.test_case "hub floods, never installs" `Quick test_hub_floods_but_never_installs;
    Alcotest.test_case "flooder installs flood rules" `Quick test_flooder_installs_flood_rules;
    Alcotest.test_case "learning switch converges" `Quick test_learning_switch_converges;
    Alcotest.test_case "learning switch handles switch_down" `Quick
      test_learning_switch_forgets_on_switch_down;
    Alcotest.test_case "router installs path rules" `Quick test_router_installs_path_rules;
    Alcotest.test_case "router withdraws on link failure" `Quick
      test_router_tears_down_on_link_failure;
    Alcotest.test_case "firewall blocks telnet" `Quick test_firewall_blocks_telnet;
    Alcotest.test_case "firewall passes web" `Quick test_firewall_web_unaffected;
    Alcotest.test_case "load balancer spreads flows" `Quick test_load_balancer_spreads_flows;
    Alcotest.test_case "monitor polls" `Quick test_monitor_counts_and_never_regresses;
    Alcotest.test_case "faulty wrapper transparent" `Quick
      test_faulty_wrapper_transparent_until_trigger;
    Alcotest.test_case "probabilistic bug determinism" `Quick
      test_bug_probability_is_seed_deterministic;
  ]
