lib/apps/learning_switch.mli: Controller Openflow
