examples/diverse_voting.ml: Apps Clock Controller Legosdn List Net Netsim Openflow Printf Topo_gen
