(** The replicated controller cluster: 2f+1 simulated controllers on one
    southbound network, replicating the runtime's event log through
    {!Raft} over seeded controller-to-controller channels.

    Core invariant: {e dispatched implies committed}. The leader polls
    the network, appends each translated event to the log, replicates,
    and only dispatches majority-committed entries. Fail-over restores
    the newest {!Legosdn.State_transfer} snapshot and re-dispatches the
    committed suffix with byte-identical xids (switch-side dedup absorbs
    the commands the dead leader already sent), so a leader killed
    mid-transaction is invisible to the network-facing oracles. *)

module Raft = Raft
(** The consensus core, re-exported: this module is the library's
    interface, so [Cluster.Raft] is the only path to it from outside. *)

type t

val create :
  ?config:Legosdn.Runtime.config ->
  ?sync_every:int ->
  ?peer_channel:Netsim.Channel.config ->
  ?on_runtime:(Legosdn.Runtime.t -> unit) ->
  seed:int ->
  Netsim.Net.t ->
  Controller.App_sig.app list ->
  t
(** [config.cluster] fixes the replica count and election-timeout range.
    [sync_every] (default 8) ships a state transfer every that many
    dispatched entries. [peer_channel] (default {!Netsim.Channel.perfect})
    is the fault model for controller-to-controller links — the fuzzer's
    runner keeps it perfect (southbound faults are the subject under
    test); [t_cluster] exercises lossy ones. [on_runtime] fires each time
    a leader builds its runtime (initial election and every fail-over) so
    the driver can re-attach taps and tracers. *)

val set_tracer : t -> Obs.Tracer.t -> unit
(** Cluster-level instants: [Election], [Replicate] (per appended batch),
    [State_transfer] (per ship), [Failover] (per takeover, with the
    kill-to-leader latency). Runtime-level tracing is attached per-leader
    through [on_runtime]. *)

val step : t -> unit
(** One duty cycle at the current virtual time: deliver due peer
    messages, run election timers (in deadline order), install any new
    leader, then the leader's I/O — poll, append, replicate, dispatch
    committed entries. *)

val tick : t -> unit
(** {!step} plus the periodic [Tick] event, which goes through the log
    like any other event so followers replay the exact sequence. *)

val arm_kill : t -> unit
(** Arm the leader kill: the next state-altering southbound send passes
    (half the transaction is then on the wire) and the leader dies —
    every later send is black-holed, no exception raised. *)

(** {1 Observation} *)

val nodes : t -> int
val node_alive : t -> int -> bool
val node_role : t -> int -> Raft.role
val node_term : t -> int -> int
val node_commit : t -> int -> int
val node_last_dispatched : t -> int -> int

val node_log : t -> int -> Raft.entry list
(** Node [i]'s full log, index 1 first — the qcheck replay property feeds
    a follower's committed prefix through fresh sandboxes. *)

val alive_leaders : t -> int list
(** Ids of live nodes currently in the [Leader] role. The fail-over
    oracle demands exactly one after healing. *)

val leader : t -> int option
(** The unique live leader, or under a transient multi-leader view the
    one with the highest term. *)

val leader_runtime : t -> Legosdn.Runtime.t option

val active_runtime : t -> Legosdn.Runtime.t option
(** The leader's runtime, falling back to the most recently installed
    one during a leaderless gap — what oracles and metrics should read. *)

val commit_index : t -> int
(** Highest commit index across live nodes. *)

val converged : t -> bool
(** Every live node agrees on term and commit index. *)

val kills : t -> int
val failovers : t -> int

val failover_latencies : t -> float list
(** Kill-to-new-leader virtual latencies, oldest first. *)

val elections : t -> int
(** Election rounds started, summed over nodes. *)

val replication_msgs : t -> int

val replication_bytes : t -> int
(** Peer-channel traffic priced at the AppVisor wire encoding of the
    replicated events plus fixed per-message headers — the numerator of
    the replication-overhead metric. *)

val transfer_bytes : t -> int
(** Cumulative state-transfer bytes (chunk-deduplicated). *)

val transfers_shipped : t -> int
