lib/netsim/topology.mli: Format Openflow Types
