type t = { mutable now : float }

let create ?(start = 0.) () = { now = start }
let now c = c.now

let advance_to c t =
  if t < c.now then
    invalid_arg
      (Printf.sprintf "Clock.advance_to: %g is before current time %g" t c.now);
  c.now <- t

let advance_by c d =
  if d < 0. then invalid_arg "Clock.advance_by: negative delta";
  c.now <- c.now +. d
