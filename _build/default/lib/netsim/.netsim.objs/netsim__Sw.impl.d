lib/netsim/sw.ml: Action Flow_entry Flow_table Format Hashtbl List Message Ofp_match Openflow Option Packet Printf Types
