lib/workload/traffic.ml: Array List Netsim Openflow Packet Random
