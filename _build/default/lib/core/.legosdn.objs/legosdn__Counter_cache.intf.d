lib/core/counter_cache.mli: Message Ofp_match Openflow Types
