test/t_apps.ml: Action Alcotest Apps Clock Controller Flow_entry Flow_table Invariants Legosdn List Message Net Netsim Openflow Option Packet Sw T_util Topo_gen Topology
