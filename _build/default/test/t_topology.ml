open Netsim

let test_linear_shape () =
  let topo = Topo_gen.linear ~hosts_per_switch:2 4 in
  T_util.checki "switches" 4 (List.length (Topology.switches topo));
  T_util.checki "hosts" 8 (List.length (Topology.hosts topo));
  (* 3 inter-switch + 8 host links *)
  T_util.checki "links" 11 (List.length (Topology.links topo));
  T_util.checki "middle switch has 2 switch neighbors" 2
    (List.length (Topology.neighbor_switches topo 2));
  T_util.checki "end switch has 1" 1
    (List.length (Topology.neighbor_switches topo 1))

let test_ring_shape () =
  let topo = Topo_gen.ring 5 in
  List.iter
    (fun sid ->
      T_util.checki "every ring switch has 2 neighbors" 2
        (List.length (Topology.neighbor_switches topo sid)))
    (Topology.switches topo)

let test_star_shape () =
  let topo = Topo_gen.star 6 in
  T_util.checki "hub plus leaves" 7 (List.length (Topology.switches topo));
  T_util.checki "hub degree" 6 (List.length (Topology.neighbor_switches topo 1))

let test_tree_shape () =
  let topo = Topo_gen.tree ~depth:2 ~fanout:2 () in
  T_util.checki "1+2+4 switches" 7 (List.length (Topology.switches topo));
  T_util.checki "4 leaf hosts" 4 (List.length (Topology.hosts topo));
  T_util.checki "root degree 2" 2 (List.length (Topology.neighbor_switches topo 1))

let test_mesh_shape () =
  let topo = Topo_gen.mesh 4 in
  List.iter
    (fun sid ->
      T_util.checki "full mesh degree" 3
        (List.length (Topology.neighbor_switches topo sid)))
    (Topology.switches topo)

let test_peer_symmetry () =
  let topo = Topo_gen.linear 3 in
  List.iter
    (fun (l : Topology.link) ->
      (match Topology.peer topo l.a.node l.a.port with
      | Some e ->
          T_util.checkb "a's peer is b" true (e.node = l.b.node && e.port = l.b.port)
      | None -> Alcotest.fail "live link must have a peer");
      match Topology.peer topo l.b.node l.b.port with
      | Some e ->
          T_util.checkb "b's peer is a" true (e.node = l.a.node && e.port = l.a.port)
      | None -> Alcotest.fail "live link must have a peer")
    (Topology.links topo)

let test_link_state () =
  let topo = Topo_gen.linear 2 in
  let l = Option.get (Topology.link_between topo (Topology.Switch 1) (Topology.Switch 2)) in
  Topology.set_link l ~up:false;
  T_util.checkb "down link has no peer" true
    (Topology.peer topo (Topology.Switch 1) l.a.port = None
     || Topology.peer topo (Topology.Switch 2) l.a.port = None);
  T_util.checkb "peer_even_if_down still resolves" true
    (Topology.peer_even_if_down topo l.a.node l.a.port <> None);
  T_util.checki "no neighbors over dead link" 0
    (List.length (Topology.neighbor_switches topo 1))

let test_host_attachment () =
  let topo = Topo_gen.linear ~hosts_per_switch:1 3 in
  List.iter
    (fun h ->
      match Topology.host_attachment topo h with
      | Some (sid, port) ->
          T_util.checkb "host port is in host range" true (port >= 100);
          T_util.checkb "attached to its own switch" true (sid = h)
      | None -> Alcotest.fail "every host is attached")
    (Topology.hosts topo)

let test_duplicate_rejection () =
  let topo = Topology.create () in
  Topology.add_switch topo 1;
  Alcotest.check_raises "duplicate switch"
    (Invalid_argument "Topology.add_switch: duplicate switch 1") (fun () ->
      Topology.add_switch topo 1)

let test_double_wire_rejection () =
  let topo = Topology.create () in
  Topology.add_switch topo 1;
  Topology.add_switch topo 2;
  Topology.add_switch topo 3;
  ignore
    (Topology.connect topo
       { node = Switch 1; port = 1 }
       { node = Switch 2; port = 1 });
  T_util.checkb "port reuse rejected" true
    (try
       ignore
         (Topology.connect topo
            { node = Switch 1; port = 1 }
            { node = Switch 3; port = 1 });
       false
     with Invalid_argument _ -> true)

(* Random topologies are connected by construction: verify with BFS. *)
let connected topo =
  match Topology.switches topo with
  | [] -> true
  | first :: _ as all ->
      let visited = Hashtbl.create 16 in
      let rec bfs frontier =
        match frontier with
        | [] -> ()
        | sid :: rest ->
            if Hashtbl.mem visited sid then bfs rest
            else begin
              Hashtbl.replace visited sid ();
              let next =
                List.map (fun (nb, _, _) -> nb)
                  (Topology.neighbor_switches topo sid)
              in
              bfs (next @ rest)
            end
      in
      bfs [ first ];
      List.for_all (Hashtbl.mem visited) all

let prop_random_connected =
  QCheck2.Test.make ~name:"random topologies are connected" ~count:50
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 15))
    (fun (switches, extra) ->
      connected
        (Topo_gen.random ~seed:(switches + (extra * 31)) ~switches
           ~extra_links:extra ()))

let prop_generators_deterministic =
  QCheck2.Test.make ~name:"same seed, same random topology" ~count:20
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let t1 = Topo_gen.random ~seed ~switches:8 ~extra_links:4 () in
      let t2 = Topo_gen.random ~seed ~switches:8 ~extra_links:4 () in
      let shape t =
        List.map
          (fun (l : Topology.link) -> (l.a.node, l.a.port, l.b.node, l.b.port))
          (Topology.links t)
      in
      shape t1 = shape t2)

let suite =
  [
    Alcotest.test_case "linear generator" `Quick test_linear_shape;
    Alcotest.test_case "ring generator" `Quick test_ring_shape;
    Alcotest.test_case "star generator" `Quick test_star_shape;
    Alcotest.test_case "tree generator" `Quick test_tree_shape;
    Alcotest.test_case "mesh generator" `Quick test_mesh_shape;
    Alcotest.test_case "peer symmetry" `Quick test_peer_symmetry;
    Alcotest.test_case "link state changes" `Quick test_link_state;
    Alcotest.test_case "host attachments" `Quick test_host_attachment;
    Alcotest.test_case "duplicate switch rejected" `Quick test_duplicate_rejection;
    Alcotest.test_case "port double-wire rejected" `Quick test_double_wire_rejection;
    QCheck_alcotest.to_alcotest prop_random_connected;
    QCheck_alcotest.to_alcotest prop_generators_deterministic;
  ]
