lib/core/clone_runner.ml: App_sig Command Controller
