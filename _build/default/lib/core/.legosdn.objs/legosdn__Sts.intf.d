lib/core/sts.mli: App_sig Controller Event
