test/t_atomic_update.ml: Action Alcotest Clock Flow_table Invariants Legosdn List Message Net Netsim Ofp_match Openflow Sw T_util Topo_gen Types
