lib/apps/router.ml: Action App_sig Command Controller Event Hashtbl List Message Ofp_match Openflow Option Packet Queue Types
