type switch_id = int
type port_no = int
type mac = int
type ip = int
type xid = int
type queue_id = int

let port_max = 0xff00
let port_in_port = 0xfff8
let port_flood = 0xfffb
let port_all = 0xfffc
let port_controller = 0xfffd
let port_local = 0xfffe
let port_none = 0xffff

let mac_of_octets a b c d e f =
  let byte v = v land 0xff in
  (byte a lsl 40) lor (byte b lsl 32) lor (byte c lsl 24)
  lor (byte d lsl 16) lor (byte e lsl 8) lor byte f

let mac_broadcast = mac_of_octets 0xff 0xff 0xff 0xff 0xff 0xff
let mac_is_broadcast m = m = mac_broadcast

let mac_of_host i =
  mac_of_octets 0x02 0x00 0x00 ((i lsr 16) land 0xff) ((i lsr 8) land 0xff)
    (i land 0xff)

let ip_of_octets a b c d =
  let byte v = v land 0xff in
  (byte a lsl 24) lor (byte b lsl 16) lor (byte c lsl 8) lor byte d

let ip_of_host i = ip_of_octets 10 0 ((i lsr 8) land 0xff) (i land 0xff)

let pp_switch fmt s = Format.fprintf fmt "s%d" s

let pp_port fmt p =
  if p = port_in_port then Format.pp_print_string fmt "IN_PORT"
  else if p = port_flood then Format.pp_print_string fmt "FLOOD"
  else if p = port_all then Format.pp_print_string fmt "ALL"
  else if p = port_controller then Format.pp_print_string fmt "CONTROLLER"
  else if p = port_local then Format.pp_print_string fmt "LOCAL"
  else if p = port_none then Format.pp_print_string fmt "NONE"
  else Format.fprintf fmt "p%d" p

let pp_mac fmt m =
  Format.fprintf fmt "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xff) ((m lsr 32) land 0xff) ((m lsr 24) land 0xff)
    ((m lsr 16) land 0xff) ((m lsr 8) land 0xff) (m land 0xff)

let pp_ip fmt ip =
  Format.fprintf fmt "%d.%d.%d.%d"
    ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff) ((ip lsr 8) land 0xff)
    (ip land 0xff)

let mac_to_string m = Format.asprintf "%a" pp_mac m
let ip_to_string ip = Format.asprintf "%a" pp_ip ip
