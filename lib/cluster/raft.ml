(* A Raft-shaped consensus core for the simulated controller cluster:
   term-based leader election with randomized-but-seeded timeouts, log
   replication with the standard consistency check, and the current-term
   commit rule. Deliberately message-passing and side-effect free at the
   edges: [tick] and [receive] return the messages to transmit, and the
   cluster layer owns delivery (through the seeded channel fault model),
   so a whole election is a deterministic function of (seeds, virtual
   clock).

   Differences from full Raft, justified by the simulation setting: no
   persistence (a killed controller never rejoins — crash-stop, not
   crash-recovery), and no membership changes. *)

type entry = { term : int; event : Controller.Event.t }

type role = Follower | Candidate | Leader

type msg =
  | Request_vote of {
      term : int;
      candidate : int;
      last_index : int;
      last_term : int;
    }
  | Vote of { term : int; voter : int; granted : bool }
  | Append_entries of {
      term : int;
      leader : int;
      prev_index : int;
      prev_term : int;
      entries : entry list;
      commit : int;
    }
  | Append_reply of {
      term : int;
      follower : int;
      success : bool;
      match_index : int;
    }

type t = {
  id : int;
  peers : int list;  (* every other node *)
  quorum : int;  (* majority of the full cluster, self included *)
  (* 1-based log in a growable array; log.(i-1) is entry i. *)
  mutable log : entry array;
  mutable len : int;
  mutable current_term : int;
  mutable voted_for : int option;
  mutable state : role;
  mutable commit : int;
  (* Election timer: expired when [now - last_contact >= timeout]. The
     timeout is redrawn from the seeded rng on every reset, so election
     races resolve the same way on every replay. *)
  mutable last_contact : float;
  mutable timeout : float;
  rng : Random.State.t;
  lo : float;
  hi : float;
  next_index : (int, int) Hashtbl.t;
  match_index : (int, int) Hashtbl.t;
  mutable votes : int list;
  mutable n_elections : int;
}

let draw_timeout t = t.lo +. Random.State.float t.rng (t.hi -. t.lo)

let reset_timer t ~now =
  t.last_contact <- now;
  t.timeout <- draw_timeout t

let create ~id ~peers ~seed ~lo ~hi ~now =
  if hi <= lo || lo <= 0. then
    invalid_arg "Raft.create: need 0 < election_lo < election_hi";
  let t =
    {
      id;
      peers = List.filter (fun p -> p <> id) peers;
      quorum = (List.length peers / 2) + 1;
      log = [||];
      len = 0;
      current_term = 0;
      voted_for = None;
      state = Follower;
      commit = 0;
      last_contact = now;
      timeout = 0.;
      rng = Random.State.make [| 0xC10; seed; id |];
      lo;
      hi;
      next_index = Hashtbl.create 8;
      match_index = Hashtbl.create 8;
      votes = [];
      n_elections = 0;
    }
  in
  t.timeout <- draw_timeout t;
  t

let id t = t.id
let role t = t.state
let term t = t.current_term
let commit_index t = t.commit
let last_index t = t.len
let quorum t = t.quorum
let elections_started t = t.n_elections
let deadline t = t.last_contact +. t.timeout

let entry t i =
  if i < 1 || i > t.len then
    invalid_arg (Printf.sprintf "Raft.entry: index %d outside [1, %d]" i t.len);
  t.log.(i - 1)

let last_term t = if t.len = 0 then 0 else t.log.(t.len - 1).term

let push t e =
  if t.len = Array.length t.log then begin
    let grown = Array.make (max 16 (2 * t.len)) e in
    Array.blit t.log 0 grown 0 t.len;
    t.log <- grown
  end;
  t.log.(t.len) <- e;
  t.len <- t.len + 1

let entries_from t i =
  let rec take k acc = if k < i then acc else take (k - 1) (entry t k :: acc) in
  take t.len []

let append t event =
  if t.state <> Leader then invalid_arg "Raft.append: not leader";
  push t { term = t.current_term; event };
  t.len

(* One Append_entries for one peer, from its next_index. *)
let append_for t peer =
  let next = try Hashtbl.find t.next_index peer with Not_found -> t.len + 1 in
  let prev_index = next - 1 in
  let prev_term = if prev_index = 0 then 0 else (entry t prev_index).term in
  Append_entries
    {
      term = t.current_term;
      leader = t.id;
      prev_index;
      prev_term;
      entries = entries_from t next;
      commit = t.commit;
    }

let heartbeats t = List.map (fun p -> (p, append_for t p)) t.peers

let become_follower t term =
  t.current_term <- term;
  t.state <- Follower;
  t.voted_for <- None;
  t.votes <- []

let become_leader t =
  t.state <- Leader;
  List.iter
    (fun p ->
      Hashtbl.replace t.next_index p (t.len + 1);
      Hashtbl.replace t.match_index p 0)
    t.peers;
  heartbeats t

(* Majority-replicated and of the current term: the Raft commit rule —
   a leader never commits a previous-term entry directly, only by
   committing one of its own term past it. *)
let advance_commit t =
  let n = ref t.len in
  let committed = ref false in
  while (not !committed) && !n > t.commit do
    let replicas =
      1
      + List.length
          (List.filter
             (fun p ->
               match Hashtbl.find_opt t.match_index p with
               | Some m -> m >= !n
               | None -> false)
             t.peers)
    in
    if replicas >= t.quorum && (entry t !n).term = t.current_term then begin
      t.commit <- !n;
      committed := true
    end
    else decr n
  done

let start_election t ~now =
  t.n_elections <- t.n_elections + 1;
  t.current_term <- t.current_term + 1;
  t.state <- Candidate;
  t.voted_for <- Some t.id;
  t.votes <- [ t.id ];
  reset_timer t ~now;
  if t.quorum <= 1 then become_leader t
  else
    List.map
      (fun p ->
        ( p,
          Request_vote
            {
              term = t.current_term;
              candidate = t.id;
              last_index = t.len;
              last_term = last_term t;
            } ))
      t.peers

let tick t ~now =
  match t.state with
  | Leader -> heartbeats t
  | Follower | Candidate ->
      if now -. t.last_contact >= t.timeout then start_election t ~now else []

let receive t ~now msg =
  match msg with
  | Request_vote { term; candidate; last_index; last_term = cand_last_term } ->
      if term > t.current_term then become_follower t term;
      let up_to_date =
        cand_last_term > last_term t
        || (cand_last_term = last_term t && last_index >= t.len)
      in
      let granted =
        term = t.current_term && up_to_date
        && (match t.voted_for with None -> true | Some v -> v = candidate)
        && t.state = Follower
      in
      if granted then begin
        t.voted_for <- Some candidate;
        reset_timer t ~now
      end;
      [ (candidate, Vote { term = t.current_term; voter = t.id; granted }) ]
  | Vote { term; voter; granted } ->
      if term > t.current_term then begin
        become_follower t term;
        []
      end
      else if
        t.state = Candidate && term = t.current_term && granted
        && not (List.mem voter t.votes)
      then begin
        t.votes <- voter :: t.votes;
        if List.length t.votes >= t.quorum then become_leader t else []
      end
      else []
  | Append_entries { term; leader; prev_index; prev_term; entries; commit } ->
      if term < t.current_term then
        [
          ( leader,
            Append_reply
              {
                term = t.current_term;
                follower = t.id;
                success = false;
                match_index = 0;
              } );
        ]
      else begin
        if term > t.current_term || t.state <> Follower then
          become_follower t term;
        reset_timer t ~now;
        let consistent =
          prev_index = 0
          || (prev_index <= t.len && (entry t prev_index).term = prev_term)
        in
        if not consistent then
          [
            ( leader,
              Append_reply
                {
                  term = t.current_term;
                  follower = t.id;
                  success = false;
                  match_index = 0;
                } );
          ]
        else begin
          (* Append, truncating at the first conflicting entry. Entries
             already present with matching terms are left alone — never
             truncate what an older message merely fails to mention. *)
          List.iteri
            (fun k e ->
              let i = prev_index + 1 + k in
              if i <= t.len && (entry t i).term <> e.term then t.len <- i - 1;
              if i > t.len then push t e)
            entries;
          let last_new = prev_index + List.length entries in
          if commit > t.commit then t.commit <- max t.commit (min commit last_new);
          [
            ( leader,
              Append_reply
                {
                  term = t.current_term;
                  follower = t.id;
                  success = true;
                  match_index = last_new;
                } );
          ]
        end
      end
  | Append_reply { term; follower; success; match_index } ->
      if term > t.current_term then become_follower t term
      else if t.state = Leader && term = t.current_term then
        if success then begin
          let prev =
            match Hashtbl.find_opt t.match_index follower with
            | Some m -> m
            | None -> 0
          in
          Hashtbl.replace t.match_index follower (max prev match_index);
          Hashtbl.replace t.next_index follower (max prev match_index + 1);
          advance_commit t
        end
        else begin
          let next =
            match Hashtbl.find_opt t.next_index follower with
            | Some n -> n
            | None -> t.len + 1
          in
          Hashtbl.replace t.next_index follower (max 1 (next - 1))
        end;
      []
