open Openflow
open Controller

type item = { seq : int; ev : Event.t }

type t = {
  shards : int;
  queues : item Queue.t array;
  mutable next_seq : int;
  mutable len : int;
}

let create ~shards =
  if shards <= 0 then invalid_arg "Dispatch.create: shards <= 0";
  {
    shards;
    queues = Array.init shards (fun _ -> Queue.create ());
    next_seq = 0;
    len = 0;
  }

let shards t = t.shards

let shard_of t (ev : Event.t) =
  if t.shards = 1 then 0
  else
    match ev with
    | Event.Tick _ -> 0
    | Event.Packet_in (sid, pi) ->
        (* Flow-level affinity: packets of one (switch, src, dst) flow land
           on one shard, so per-flow learning state is never split. *)
        let p = pi.Message.pi_packet in
        Hashtbl.hash (sid, p.Packet.dl_src, p.Packet.dl_dst) mod t.shards
    | Event.Link_up l | Event.Link_down l ->
        Hashtbl.hash
          (l.Event.src_switch, l.Event.src_port, l.Event.dst_switch,
           l.Event.dst_port)
        mod t.shards
    | ev -> (
        match Event.switch_of ev with
        | Some sid -> Hashtbl.hash sid mod t.shards
        | None -> 0)

let push t ev =
  let s = shard_of t ev in
  Queue.add { seq = t.next_seq; ev } t.queues.(s);
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1

let length t = t.len

let clear t =
  Array.iter Queue.clear t.queues;
  t.len <- 0

(* The head of each shard queue is that shard's oldest event; the
   globally oldest event is therefore always some queue's head. Scanning
   the heads for the minimum sequence number yields events in exact
   arrival order — which is why the shard count can never change
   dispatch order. *)
let min_head t =
  let best = ref None in
  for i = 0 to t.shards - 1 do
    match Queue.peek_opt t.queues.(i) with
    | None -> ()
    | Some it -> (
        match !best with
        | Some (_, b) when b.seq <= it.seq -> ()
        | _ -> best := Some (i, it))
  done;
  !best

let next_batch t ~max_batch =
  if max_batch <= 0 then invalid_arg "Dispatch.next_batch: max_batch <= 0";
  let rec take acc n =
    if n >= max_batch then List.rev acc
    else
      match min_head t with
      | None -> List.rev acc
      | Some (shard, it) -> (
          match it.ev with
          | Event.Tick _ when acc <> [] ->
              (* A Tick is a batch barrier: everything before it must be
                 fully dispatched (and its deferred barriers settled)
                 before time advances. Cut here; the Tick opens the next
                 batch. *)
              List.rev acc
          | Event.Tick _ ->
              ignore (Queue.pop t.queues.(shard));
              t.len <- t.len - 1;
              [ (shard, it.ev) ]
          | _ ->
              ignore (Queue.pop t.queues.(shard));
              t.len <- t.len - 1;
              take ((shard, it.ev) :: acc) (n + 1))
  in
  take [] 0
