open Openflow

type host = int

type node = Switch of Types.switch_id | Host of host

type endpoint = { node : node; port : Types.port_no }

type link = {
  link_id : int;
  a : endpoint;
  b : endpoint;
  mutable up : bool;
}

type t = {
  mutable switch_ids : Types.switch_id list;  (* sorted ascending *)
  mutable host_ids : host list;  (* sorted ascending *)
  mutable link_list : link list;  (* reverse creation order *)
  mutable next_link_id : int;
}

let create () =
  { switch_ids = []; host_ids = []; link_list = []; next_link_id = 0 }

let insert_sorted x l =
  let rec go = function
    | [] -> [ x ]
    | y :: rest as all -> if x < y then x :: all else y :: go rest
  in
  go l

let add_switch t sid =
  if List.mem sid t.switch_ids then
    invalid_arg (Printf.sprintf "Topology.add_switch: duplicate switch %d" sid);
  t.switch_ids <- insert_sorted sid t.switch_ids

let add_host t hid =
  if List.mem hid t.host_ids then
    invalid_arg (Printf.sprintf "Topology.add_host: duplicate host %d" hid);
  t.host_ids <- insert_sorted hid t.host_ids

let node_exists t = function
  | Switch sid -> List.mem sid t.switch_ids
  | Host h -> List.mem h t.host_ids

let endpoint_eq e node port = e.node = node && e.port = port

let link_at t node port =
  List.find_opt
    (fun l -> endpoint_eq l.a node port || endpoint_eq l.b node port)
    t.link_list

let pp_node fmt = function
  | Switch sid -> Types.pp_switch fmt sid
  | Host h -> Format.fprintf fmt "h%d" h

let connect t ea eb =
  let check e =
    if not (node_exists t e.node) then
      invalid_arg
        (Format.asprintf "Topology.connect: undeclared node %a" pp_node e.node);
    if link_at t e.node e.port <> None then
      invalid_arg
        (Format.asprintf "Topology.connect: %a port %d already wired" pp_node
           e.node e.port)
  in
  check ea;
  check eb;
  let link = { link_id = t.next_link_id; a = ea; b = eb; up = true } in
  t.next_link_id <- t.next_link_id + 1;
  t.link_list <- link :: t.link_list;
  link

let attach_host t h sid port =
  connect t { node = Host h; port = 1 } { node = Switch sid; port }

let switches t = t.switch_ids
let hosts t = t.host_ids
let links t = List.rev t.link_list

let far_end l node port =
  if endpoint_eq l.a node port then Some l.b
  else if endpoint_eq l.b node port then Some l.a
  else None

let peer t node port =
  match link_at t node port with
  | Some l when l.up -> far_end l node port
  | Some _ | None -> None

let peer_even_if_down t node port =
  match link_at t node port with
  | Some l -> far_end l node port
  | None -> None

let link_between t na nb =
  let joins l =
    (l.a.node = na && l.b.node = nb) || (l.a.node = nb && l.b.node = na)
  in
  List.find_opt joins (links t)

let switch_ports t sid =
  let node = Switch sid in
  links t
  |> List.filter_map (fun l ->
         if l.a.node = node then Some (l.a.port, l)
         else if l.b.node = node then Some (l.b.port, l)
         else None)
  |> List.sort (fun (p, _) (q, _) -> compare p q)

let host_attachment t h =
  match link_at t (Host h) 1 with
  | None -> None
  | Some l -> (
      match far_end l (Host h) 1 with
      | Some { node = Switch sid; port } -> Some (sid, port)
      | Some { node = Host _; _ } | None -> None)

let hosts_on t sid =
  switch_ports t sid
  |> List.filter_map (fun (port, l) ->
         match far_end l (Switch sid) port with
         | Some { node = Host h; _ } -> Some (h, port)
         | Some { node = Switch _; _ } | None -> None)

let neighbor_switches t sid =
  switch_ports t sid
  |> List.filter_map (fun (port, l) ->
         if not l.up then None
         else
           match far_end l (Switch sid) port with
           | Some { node = Switch nb; port = remote } -> Some (nb, port, remote)
           | Some { node = Host _; _ } | None -> None)
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let set_link l ~up = l.up <- up

let pp fmt t =
  Format.fprintf fmt "@[<v>switches: %a@,hosts: %a@,links:@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Types.pp_switch)
    t.switch_ids
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    t.host_ids
    (Format.pp_print_list (fun f l ->
         Format.fprintf f "  %a:%d <-%s-> %a:%d" pp_node l.a.node l.a.port
           (if l.up then "" else "X")
           pp_node l.b.node l.b.port))
    (links t)
