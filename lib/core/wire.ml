open Openflow
module Event = Controller.Event
module Command = Controller.Command

exception Decode_error of string

let fail fmt = Format.ksprintf (fun s -> raise (Decode_error s)) fmt

let put_message w msg =
  let b = Codec.encode msg in
  Buf.u16 w (Bytes.length b);
  Buf.raw w b

(* Scratch-path twin of [put_message]: same bytes (length prefix then
   frame), no intermediate buffer. The length is back-patched once the
   frame is in place. *)
let put_message_into w msg =
  let lenpos = Buf.length w in
  Buf.u16 w 0;
  Codec.encode_into w msg;
  Buf.patch_u16 w ~pos:lenpos (Buf.length w - lenpos - 2)

let get_message r =
  let n = Buf.read_u16 r in
  let b = Buf.read_raw r n in
  try Codec.decode b
  with Codec.Decode_error e -> fail "embedded message: %s" e

(* Scratch-path twin of [get_message]: the embedded frame is decoded
   through a shared-store window instead of a copied sub-buffer. Torn
   frames surface identically: a short window raises [Buf.Underflow] from
   [sub_reader] exactly where [read_raw] would, and an internally
   truncated frame yields the same [Decode_error] text. *)
let get_message_at r =
  let n = Buf.read_u16 r in
  let sub = Buf.sub_reader r n in
  try Codec.decode_at sub
  with Codec.Decode_error e -> fail "embedded message: %s" e

let put_link w (l : Event.link) =
  Buf.u32 w l.src_switch;
  Buf.u16 w l.src_port;
  Buf.u32 w l.dst_switch;
  Buf.u16 w l.dst_port

let get_link r : Event.link =
  let src_switch = Buf.read_u32 r in
  let src_port = Buf.read_u16 r in
  let dst_switch = Buf.read_u32 r in
  let dst_port = Buf.read_u16 r in
  { src_switch; src_port; dst_switch; dst_port }

(* [embed] is how message-shaped payloads reach the buffer: the fresh
   path encodes to an intermediate [bytes], the scratch path appends in
   place. Both produce the same stream. *)
let put_event ~embed w (ev : Event.t) =
  match ev with
  | Event.Switch_up (sid, features) ->
      Buf.u8 w 0;
      Buf.u32 w sid;
      embed w (Message.message (Message.Features_reply features))
  | Event.Switch_down sid ->
      Buf.u8 w 1;
      Buf.u32 w sid
  | Event.Port_status (sid, reason, desc) ->
      Buf.u8 w 2;
      Buf.u32 w sid;
      embed w (Message.message (Message.Port_status (reason, desc)))
  | Event.Link_up l ->
      Buf.u8 w 3;
      put_link w l
  | Event.Link_down l ->
      Buf.u8 w 4;
      put_link w l
  | Event.Packet_in (sid, pi) ->
      Buf.u8 w 5;
      Buf.u32 w sid;
      embed w (Message.message (Message.Packet_in pi))
  | Event.Flow_removed (sid, fr) ->
      Buf.u8 w 6;
      Buf.u32 w sid;
      embed w (Message.message (Message.Flow_removed fr))
  | Event.Stats_reply (sid, xid, sr) ->
      Buf.u8 w 7;
      Buf.u32 w sid;
      embed w (Message.message ~xid (Message.Stats_reply sr))
  | Event.Tick now ->
      Buf.u8 w 8;
      Buf.u64 w (Int64.bits_of_float now)

let encode_event (ev : Event.t) =
  let w = Buf.writer ~capacity:64 () in
  put_event ~embed:put_message w ev;
  Buf.contents w

let get_event ~get_msg r =
  try
    match Buf.read_u8 r with
    | 0 -> (
        let sid = Buf.read_u32 r in
        match (get_msg r).Message.payload with
        | Message.Features_reply f -> Event.Switch_up (sid, f)
        | _ -> fail "switch_up: embedded message is not features_reply")
    | 1 -> Event.Switch_down (Buf.read_u32 r)
    | 2 -> (
        let sid = Buf.read_u32 r in
        match (get_msg r).Message.payload with
        | Message.Port_status (reason, desc) ->
            Event.Port_status (sid, reason, desc)
        | _ -> fail "port_status: bad embedded message")
    | 3 -> Event.Link_up (get_link r)
    | 4 -> Event.Link_down (get_link r)
    | 5 -> (
        let sid = Buf.read_u32 r in
        match (get_msg r).Message.payload with
        | Message.Packet_in pi -> Event.Packet_in (sid, pi)
        | _ -> fail "packet_in: bad embedded message")
    | 6 -> (
        let sid = Buf.read_u32 r in
        match (get_msg r).Message.payload with
        | Message.Flow_removed fr -> Event.Flow_removed (sid, fr)
        | _ -> fail "flow_removed: bad embedded message")
    | 7 -> (
        let sid = Buf.read_u32 r in
        let msg = get_msg r in
        match msg.Message.payload with
        | Message.Stats_reply sr -> Event.Stats_reply (sid, msg.Message.xid, sr)
        | _ -> fail "stats_reply: bad embedded message")
    | 8 -> Event.Tick (Int64.float_of_bits (Buf.read_u64 r))
    | n -> fail "unknown event tag %d" n
  with Buf.Underflow -> fail "truncated event"

let decode_event b = get_event ~get_msg:get_message (Buf.reader b)

let decode_event_at r = get_event ~get_msg:get_message_at r

let put_command ~embed w (cmd : Command.t) =
  match cmd with
  | Command.Flow (sid, fm) ->
      Buf.u8 w 0;
      Buf.u32 w sid;
      embed w (Message.message (Message.Flow_mod fm))
  | Command.Packet (sid, po) ->
      Buf.u8 w 1;
      Buf.u32 w sid;
      embed w (Message.message (Message.Packet_out po))
  | Command.Stats (sid, sr) ->
      Buf.u8 w 2;
      Buf.u32 w sid;
      embed w (Message.message (Message.Stats_request sr))
  | Command.Log s ->
      Buf.u8 w 3;
      Buf.u16 w (String.length s);
      Buf.raw w (Bytes.of_string s)
  | Command.Port (sid, pm) ->
      Buf.u8 w 4;
      Buf.u32 w sid;
      embed w (Message.message (Message.Port_mod pm))

let get_command ~get_msg r : Command.t =
  match Buf.read_u8 r with
  | 0 -> (
      let sid = Buf.read_u32 r in
      match (get_msg r).Message.payload with
      | Message.Flow_mod fm -> Command.Flow (sid, fm)
      | _ -> fail "flow command: bad embedded message")
  | 1 -> (
      let sid = Buf.read_u32 r in
      match (get_msg r).Message.payload with
      | Message.Packet_out po -> Command.Packet (sid, po)
      | _ -> fail "packet command: bad embedded message")
  | 2 -> (
      let sid = Buf.read_u32 r in
      match (get_msg r).Message.payload with
      | Message.Stats_request sr -> Command.Stats (sid, sr)
      | _ -> fail "stats command: bad embedded message")
  | 3 ->
      let n = Buf.read_u16 r in
      Command.Log (Bytes.to_string (Buf.read_raw r n))
  | 4 -> (
      let sid = Buf.read_u32 r in
      match (get_msg r).Message.payload with
      | Message.Port_mod pm -> Command.Port (sid, pm)
      | _ -> fail "port command: bad embedded message")
  | n -> fail "unknown command tag %d" n

let encode_command cmd =
  let w = Buf.writer ~capacity:64 () in
  put_command ~embed:put_message w cmd;
  Buf.contents w

let decode_command b =
  try get_command ~get_msg:get_message (Buf.reader b)
  with Buf.Underflow -> fail "truncated command"

let encode_commands cmds =
  let w = Buf.writer ~capacity:128 () in
  Buf.u16 w (List.length cmds);
  List.iter (put_command ~embed:put_message w) cmds;
  Buf.contents w

let decode_commands b =
  try
    let r = Buf.reader b in
    let n = Buf.read_u16 r in
    List.init n (fun _ -> get_command ~get_msg:get_message r)
  with Buf.Underflow -> fail "truncated command list"

let decode_commands_at r =
  try
    let n = Buf.read_u16 r in
    List.init n (fun _ -> get_command ~get_msg:get_message_at r)
  with Buf.Underflow -> fail "truncated command list"

let event_size ev = Bytes.length (encode_event ev)
let commands_size cmds = Bytes.length (encode_commands cmds)

let roundtrip_event ev = decode_event (encode_event ev)
let roundtrip_commands cmds = decode_commands (encode_commands cmds)

(* The allocation-free hot path: one scratch buffer per RPC channel,
   rewound (not reallocated) per message. After warm-up the only
   allocations left in a ship are the decoded values themselves. *)
type scratch = { sw : Buf.writer }

let scratch ?(capacity = 512) () = { sw = Buf.writer ~capacity () }

let encode_event_into s ev =
  Buf.reset s.sw;
  put_event ~embed:put_message_into s.sw ev;
  Buf.length s.sw

let encode_commands_into s cmds =
  Buf.reset s.sw;
  Buf.u16 s.sw (List.length cmds);
  List.iter (put_command ~embed:put_message_into s.sw) cmds;
  Buf.length s.sw

let roundtrip_event_scratch s ev =
  let n = encode_event_into s ev in
  (decode_event_at (Buf.reader_of_writer s.sw), n)

let roundtrip_commands_scratch s cmds =
  let n = encode_commands_into s cmds in
  (decode_commands_at (Buf.reader_of_writer s.sw), n)

(* Test hook: the exact bytes the scratch path produced, as a copy. *)
let scratch_contents s = Buf.contents s.sw
