open Openflow
open Controller

module Port_set = Set.Make (struct
  type t = Types.switch_id * Types.port_no

  let compare = compare
end)

type state = Port_set.t  (* ports currently set no_flood *)

let name = "spanning_tree"

let subscriptions =
  [
    Event.K_switch_up;
    Event.K_switch_down;
    Event.K_link_up;
    Event.K_link_down;
  ]

let init () = Port_set.empty

let blocked_ports st = Port_set.elements st

(* BFS tree over the live links, rooted at the lowest switch id; returns
   the set of unordered switch pairs forming tree edges. *)
let tree_edges links =
  let switches =
    List.sort_uniq compare
      (List.concat_map
         (fun (l : Event.link) -> [ l.src_switch; l.dst_switch ])
         links)
  in
  match switches with
  | [] -> []
  | root :: _ ->
      let adjacency = Hashtbl.create 16 in
      List.iter
        (fun (l : Event.link) ->
          let existing =
            Option.value (Hashtbl.find_opt adjacency l.src_switch) ~default:[]
          in
          Hashtbl.replace adjacency l.src_switch (l.dst_switch :: existing))
        links;
      let visited = Hashtbl.create 16 in
      Hashtbl.replace visited root ();
      let edges = ref [] in
      let queue = Queue.create () in
      Queue.push root queue;
      while not (Queue.is_empty queue) do
        let sid = Queue.pop queue in
        let neighbors =
          Option.value (Hashtbl.find_opt adjacency sid) ~default:[]
          |> List.sort compare
        in
        List.iter
          (fun nb ->
            if not (Hashtbl.mem visited nb) then begin
              Hashtbl.replace visited nb ();
              edges := (min sid nb, max sid nb) :: !edges;
              Queue.push nb queue
            end)
          neighbors
      done;
      !edges

let handle (ctx : App_sig.context) st event =
  match event with
  | Event.Switch_up _ | Event.Switch_down _ | Event.Link_up _
  | Event.Link_down _ ->
      let links = App_sig.links ctx in
      let tree = tree_edges links in
      let on_tree (l : Event.link) =
        List.mem (min l.src_switch l.dst_switch, max l.src_switch l.dst_switch) tree
      in
      (* Every inter-switch endpoint of an off-tree link gets pruned; links
         carry both directions, so each physical link contributes its two
         endpoints. *)
      let desired =
        links
        |> List.filter (fun l -> not (on_tree l))
        |> List.map (fun (l : Event.link) -> (l.src_switch, l.src_port))
        |> Port_set.of_list
      in
      let to_block = Port_set.diff desired st in
      let to_unblock = Port_set.diff st desired in
      let commands =
        Port_set.fold
          (fun (sid, port) acc -> Command.set_no_flood sid port true :: acc)
          to_block []
        @ Port_set.fold
            (fun (sid, port) acc -> Command.set_no_flood sid port false :: acc)
            to_unblock []
      in
      (desired, commands)
  | _ -> (st, [])
