test/t_stp_arp.ml: Action Alcotest Apps Clock Codec Controller Legosdn List Message Net Netsim Openflow Packet Sw T_util Topo_gen Topology Types
