open Openflow
open Controller

module Flow_key = Map.Make (struct
  type t = Types.switch_id * Types.mac * Types.mac * int * int

  let compare = compare
end)

module Sid_map = Map.Make (Int)

type state = {
  cursor : int Sid_map.t;  (* per-switch round-robin position *)
  assigned : Types.port_no Flow_key.t;  (* flow -> chosen uplink *)
}

let name = "load_balancer"
let subscriptions = [ Event.K_packet_in ]
let init () = { cursor = Sid_map.empty; assigned = Flow_key.empty }

let flows_assigned st = Flow_key.cardinal st.assigned

let lb_priority = Message.default_priority + 5
let lb_idle_timeout = 120

(* Uplinks of a switch = its live inter-switch ports. *)
let uplinks (ctx : App_sig.context) sid =
  App_sig.links ctx
  |> List.filter_map (fun (l : Event.link) ->
         if l.src_switch = sid then Some l.src_port else None)
  |> List.sort_uniq compare

let handle (ctx : App_sig.context) st = function
  | Event.Packet_in (sid, pi) -> (
      let pkt = pi.Message.pi_packet in
      let key =
        (sid, pkt.Packet.dl_src, pkt.Packet.dl_dst, pkt.Packet.tp_src,
         pkt.Packet.tp_dst)
      in
      let release out =
        Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
          ~in_port:pi.Message.pi_in_port sid [ Action.Output out ]
          (match pi.Message.pi_buffer_id with
          | Some _ -> None
          | None -> Some pkt)
      in
      match uplinks ctx sid with
      | [] ->
          (* Pure edge switch: nothing to balance over; flood. *)
          ( st,
            [
              Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
                ~in_port:pi.Message.pi_in_port sid
                [ Action.Output Types.port_flood ]
                (match pi.Message.pi_buffer_id with
                | Some _ -> None
                | None -> Some pkt);
            ] )
      | ports -> (
          match Flow_key.find_opt key st.assigned with
          | Some out -> (st, [ release out ])
          | None ->
              let cur = Option.value (Sid_map.find_opt sid st.cursor) ~default:0 in
              let out = List.nth ports (cur mod List.length ports) in
              let st =
                {
                  cursor = Sid_map.add sid (cur + 1) st.cursor;
                  assigned = Flow_key.add key out st.assigned;
                }
              in
              let pattern = Ofp_match.exact ~in_port:pi.Message.pi_in_port pkt in
              ( st,
                [
                  Command.install ~idle_timeout:lb_idle_timeout
                    ~priority:lb_priority sid pattern
                    [ Action.Output out ];
                  release out;
                ] )))
  | _ -> (st, [])
