(** Deterministic traffic generators.

    A workload is a list of timed packet injections; generators are seeded
    so that every run of an experiment sees the identical packet
    sequence. *)

open Openflow

type injection = {
  at : float;
  src : Netsim.Topology.host;
  packet : Packet.t;
}

type flow_spec = {
  src_host : Netsim.Topology.host;
  dst_host : Netsim.Topology.host;
  start : float;
  packets : int;
  interval : float;
  dport : int;
}

val flow_injections : flow_spec -> injection list
(** The packet train of one flow ([packets] packets, [interval] apart). *)

val uniform_pairs :
  seed:int ->
  hosts:Netsim.Topology.host list ->
  flows:int ->
  duration:float ->
  ?packets_per_flow:int ->
  ?dport:int ->
  unit ->
  flow_spec list
(** [flows] random ordered host pairs with start times uniform in
    [0, duration). *)

val all_pairs_once : hosts:Netsim.Topology.host list -> start:float
  -> spacing:float -> flow_spec list
(** One single-packet flow per ordered host pair, [spacing] apart —
    the deterministic "warm up every path" workload. *)

val schedule : flow_spec list -> injection list
(** All injections of all flows, sorted by time (stable). *)
