open Openflow
module Trace_io = Workload.Trace_io
module Event = Controller.Event

let sample_trace =
  [
    Event.Switch_down 3;
    Event.Packet_in
      ( 1,
        {
          Message.pi_buffer_id = Some 4;
          pi_in_port = 2;
          pi_reason = Message.No_match;
          pi_packet = T_util.tcp_packet 1 2;
        } );
    Event.Tick 3.25;
    Event.Link_down
      { Event.src_switch = 1; src_port = 1; dst_switch = 2; dst_port = 1 };
  ]

let test_encode_decode () =
  Alcotest.(check (list T_util.event_t)) "roundtrip" sample_trace
    (Trace_io.decode (Trace_io.encode sample_trace))

let test_empty_trace () =
  Alcotest.(check (list T_util.event_t)) "empty roundtrip" []
    (Trace_io.decode (Trace_io.encode []))

let test_file_roundtrip () =
  let path = Filename.temp_file "legosdn" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path sample_trace;
      Alcotest.(check (list T_util.event_t)) "file roundtrip" sample_trace
        (Trace_io.load path))

let test_bad_magic () =
  T_util.checkb "garbage rejected" true
    (try
       ignore (Trace_io.decode (Bytes.of_string "NOTATRACE_______"));
       false
     with Failure _ -> true)

let test_truncation () =
  let b = Trace_io.encode sample_trace in
  let cut = Bytes.sub b 0 (Bytes.length b - 3) in
  T_util.checkb "truncation rejected" true
    (try
       ignore (Trace_io.decode cut);
       false
     with Failure _ -> true)

let test_recorder () =
  let r = Trace_io.recorder () in
  List.iter (Trace_io.record r) sample_trace;
  T_util.checki "length" 4 (Trace_io.length r);
  Alcotest.(check (list T_util.event_t)) "order preserved" sample_trace
    (Trace_io.recorded r)

let test_recorded_trace_feeds_sts () =
  (* The intended workflow: record a crashing trace, minimize it offline. *)
  let module Bug = struct
    type state = unit

    let name = "bug"
    let subscriptions = [ Event.K_switch_down ]
    let init () = ()

    let handle _ () = function
      | Event.Switch_down 3 -> failwith "boom"
      | _ -> ((), ([] : Controller.Command.t list))
  end in
  let loaded = Trace_io.decode (Trace_io.encode sample_trace) in
  let minimal, _ =
    Legosdn.Sts.minimize (module Bug) T_util.null_context loaded
  in
  Alcotest.(check (list T_util.event_t)) "culprit recovered from disk format"
    [ Event.Switch_down 3 ] minimal

(* Property: write → read is the identity for arbitrary traces covering
   all nine event constructors — the trust anchor for fuzzer reproducer
   files, which embed traces in this format. *)
module G = struct
  open QCheck2.Gen

  let sid = int_range 1 64
  let port_no = int_range 1 48
  let name_string = string_size ~gen:(char_range 'a' 'z') (int_bound 12)

  (* Exact-roundtrip floats: Tick encodes via Int64.bits_of_float, so any
     finite float works; quarters keep failures readable. *)
  let finite_float = map (fun i -> float_of_int i /. 4.) (int_bound 400_000)

  let port_desc =
    let* port_no = port_no in
    let* hw_addr = T_util.Gen.mac in
    let* name = name_string in
    let* up = bool and* no_flood = bool in
    return { Message.port_no; hw_addr; name; up; no_flood }

  let features =
    let* datapath_id = sid in
    let* n_buffers = int_bound 256 and* n_tables = int_range 1 16 in
    let* ports = list_size (int_bound 4) port_desc in
    return { Message.datapath_id; n_buffers; n_tables; ports }

  let packet_in =
    let* pi_buffer_id = opt (int_bound 0xFFFF) in
    let* pi_in_port = port_no in
    let* pi_reason = oneofl Message.[ No_match; Action_to_controller ] in
    let* pi_packet = T_util.Gen.packet in
    return { Message.pi_buffer_id; pi_in_port; pi_reason; pi_packet }

  let flow_removed =
    let* fr_pattern = T_util.Gen.ofp_match in
    let* fr_cookie = map Int64.of_int (int_bound 1_000_000) in
    let* fr_priority = int_bound 0xFFFF in
    let* fr_reason =
      oneofl Message.[ Removed_idle; Removed_hard; Removed_delete ]
    in
    let* fr_duration = int_bound 0xFFFF in
    let* fr_idle_timeout = int_bound 300 in
    let* fr_packet_count = int_bound 1_000_000 in
    let* fr_byte_count = int_bound 1_000_000 in
    return
      {
        Message.fr_pattern;
        fr_cookie;
        fr_priority;
        fr_reason;
        fr_duration;
        fr_idle_timeout;
        fr_packet_count;
        fr_byte_count;
      }

  let flow_stat =
    let* fs_pattern = T_util.Gen.ofp_match in
    let* fs_priority = int_bound 0xFFFF in
    let* fs_cookie = map Int64.of_int (int_bound 1_000_000) in
    let* fs_duration = int_bound 0xFFFF in
    let* fs_idle_timeout = int_bound 300 and* fs_hard_timeout = int_bound 300 in
    let* fs_packet_count = int_bound 1_000_000 in
    let* fs_byte_count = int_bound 1_000_000 in
    let* fs_actions = T_util.Gen.actions in
    return
      {
        Message.fs_pattern;
        fs_priority;
        fs_cookie;
        fs_duration;
        fs_idle_timeout;
        fs_hard_timeout;
        fs_packet_count;
        fs_byte_count;
        fs_actions;
      }

  let port_stat =
    let* ps_port_no = port_no in
    let* ps_rx_packets = int_bound 1_000_000 in
    let* ps_tx_packets = int_bound 1_000_000 in
    let* ps_rx_bytes = int_bound 1_000_000 in
    let* ps_tx_bytes = int_bound 1_000_000 in
    let* ps_rx_dropped = int_bound 1_000 in
    let* ps_tx_dropped = int_bound 1_000 in
    return
      {
        Message.ps_port_no;
        ps_rx_packets;
        ps_tx_packets;
        ps_rx_bytes;
        ps_tx_bytes;
        ps_rx_dropped;
        ps_tx_dropped;
      }

  let stats_reply =
    oneof
      [
        map
          (fun l -> Message.Flow_stats_reply l)
          (list_size (int_bound 3) flow_stat);
        (let* packets = int_bound 1_000_000 in
         let* bytes = int_bound 1_000_000 in
         let* flows = int_bound 1_000 in
         return (Message.Aggregate_stats_reply { packets; bytes; flows }));
        map
          (fun l -> Message.Port_stats_reply l)
          (list_size (int_bound 3) port_stat);
        map (fun s -> Message.Description_reply s) name_string;
      ]

  let link =
    let* src_switch = sid and* dst_switch = sid in
    let* src_port = port_no and* dst_port = port_no in
    return { Event.src_switch; src_port; dst_switch; dst_port }

  let event =
    oneof
      [
        map2 (fun s f -> Event.Switch_up (s, f)) sid features;
        map (fun s -> Event.Switch_down s) sid;
        (let* s = sid in
         let* reason =
           oneofl Message.[ Port_add; Port_delete; Port_modify ]
         in
         let* desc = port_desc in
         return (Event.Port_status (s, reason, desc)));
        map (fun l -> Event.Link_up l) link;
        map (fun l -> Event.Link_down l) link;
        map2 (fun s pi -> Event.Packet_in (s, pi)) sid packet_in;
        map2 (fun s fr -> Event.Flow_removed (s, fr)) sid flow_removed;
        (let* s = sid and* xid = int_bound 0xFFFF and* sr = stats_reply in
         return (Event.Stats_reply (s, xid, sr)));
        map (fun t -> Event.Tick t) finite_float;
      ]

  let trace = list_size (int_bound 16) event
end

let prop_roundtrip_identity =
  QCheck2.Test.make ~name:"arbitrary trace write/read identity" ~count:200
    G.trace (fun trace -> Trace_io.decode (Trace_io.encode trace) = trace)

let suite =
  [
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "recorder" `Quick test_recorder;
    Alcotest.test_case "trace feeds STS" `Quick test_recorded_trace_feeds_sts;
    QCheck_alcotest.to_alcotest prop_roundtrip_identity;
  ]
