lib/controller/monolithic.ml: App_sig Command Event List Message Netsim Openflow Printexc Services
