module App_sig = Controller.App_sig
(* Resilient routing: the Equivalence-Compromise policy in action.

   A shortest-path router on a ring has a bug: it crashes when handling
   link-down events. On a monolithic controller that is fatal for the
   whole stack at the first link failure. Under LegoSDN, Crash-Pad
   transforms the poisoned link-down into the equivalent switch-down
   (which the router handles fine — it tears down its routes and lets
   traffic re-trigger path computation over the surviving ring arc).

   Run with: dune exec examples/resilient_routing.exe *)

open Netsim
module Event = Controller.Event
module Runtime = Legosdn.Runtime
module Monolithic = Controller.Monolithic

let buggy_router () =
  Apps.Faulty.wrap
    ~bug:(Apps.Bug_model.crash_on Event.K_link_down)
    (App_sig.app (module Apps.Router))

let drive net step pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      step ())
    pairs

(* Warm up the device manager and pin h1 <-> h3 paths. *)
let warmup = [ (1, 3); (3, 1); (1, 3); (3, 1) ]

let () =
  Printf.printf "=== Resilient routing under link failure ===\n\n";

  (* Monolithic: the first link-down kills everything. *)
  let net = Net.create (Clock.create ()) (Topo_gen.ring ~hosts_per_switch:1 4) in
  let mono = Monolithic.create net [ buggy_router () ] in
  Monolithic.step mono;
  drive net (fun () -> Monolithic.step mono) warmup;
  Printf.printf "monolithic: h1->h3 reachable before failure: %b\n"
    (Net.reachable net 1 3);
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  Monolithic.step mono;
  (match Monolithic.status mono with
  | Monolithic.Crashed info ->
      Printf.printf "monolithic: controller DEAD on link failure (%s)\n"
        info.Monolithic.detail
  | Monolithic.Running -> Printf.printf "monolithic: survived?!\n");
  drive net (fun () -> Monolithic.step mono) [ (1, 3) ];
  Printf.printf "monolithic: network can no longer adapt.\n\n";

  (* LegoSDN: same bug, same failure. *)
  let net = Net.create (Clock.create ()) (Topo_gen.ring ~hosts_per_switch:1 4) in
  let lego = Runtime.create net [ buggy_router () ] in
  Runtime.step lego;
  drive net (fun () -> Runtime.step lego) warmup;
  Printf.printf "legosdn: h1->h3 reachable before failure: %b\n"
    (Net.reachable net 1 3);
  Net.apply_fault net (Net.Link_down (Topology.Switch 1, Topology.Switch 2));
  Runtime.step lego;
  let m = Runtime.metrics lego in
  Printf.printf
    "legosdn: link failed; router crash transformed (%d transformation(s), %d crash(es) absorbed)\n"
    (Legosdn.Metrics.transformed m)
    (Legosdn.Metrics.crashes m);
  (* Traffic re-triggers routing around the surviving arc of the ring. *)
  drive net (fun () -> Runtime.step lego) [ (1, 3); (3, 1); (1, 3) ];
  Printf.printf "legosdn: h1->h3 reachable after re-routing: %b\n"
    (Net.reachable net 1 3);
  Printf.printf "\nTickets:\n";
  List.iter
    (fun t -> Format.printf "%a@." Legosdn.Ticket.pp t)
    (Runtime.tickets lego)
