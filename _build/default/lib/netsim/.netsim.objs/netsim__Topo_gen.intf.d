lib/netsim/topo_gen.mli: Topology
