type t =
  | Output of Types.port_no
  | Enqueue of Types.port_no * Types.queue_id
  | Set_dl_src of Types.mac
  | Set_dl_dst of Types.mac
  | Set_vlan of int
  | Strip_vlan
  | Set_nw_src of Types.ip
  | Set_nw_dst of Types.ip
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int

let rewrite (p : Packet.t) = function
  | Output _ | Enqueue _ -> p
  | Set_dl_src m -> { p with dl_src = m }
  | Set_dl_dst m -> { p with dl_dst = m }
  | Set_vlan vid -> { p with dl_vlan = Some vid }
  | Strip_vlan -> { p with dl_vlan = None }
  | Set_nw_src ip -> { p with nw_src = ip }
  | Set_nw_dst ip -> { p with nw_dst = ip }
  | Set_nw_tos tos -> { p with nw_tos = tos }
  | Set_tp_src tp -> { p with tp_src = tp }
  | Set_tp_dst tp -> { p with tp_dst = tp }

let apply_staged actions pkt =
  let final, emitted =
    List.fold_left
      (fun (p, acc) a ->
        match a with
        | Output port | Enqueue (port, _) -> (p, (p, port) :: acc)
        | _ -> (rewrite p a, acc))
      (pkt, []) actions
  in
  ignore final;
  List.rev emitted

let apply actions pkt =
  let final =
    List.fold_left (fun p a -> rewrite p a) pkt actions
  in
  (final, List.map snd (apply_staged actions pkt))

let outputs actions =
  List.filter_map
    (function Output p | Enqueue (p, _) -> Some p | _ -> None)
    actions

let is_drop actions = outputs actions = []

let equal a b = a = b

let pp fmt = function
  | Output p -> Format.fprintf fmt "output(%a)" Types.pp_port p
  | Enqueue (p, q) -> Format.fprintf fmt "enqueue(%a,q%d)" Types.pp_port p q
  | Set_dl_src m -> Format.fprintf fmt "set_dl_src(%a)" Types.pp_mac m
  | Set_dl_dst m -> Format.fprintf fmt "set_dl_dst(%a)" Types.pp_mac m
  | Set_vlan v -> Format.fprintf fmt "set_vlan(%d)" v
  | Strip_vlan -> Format.pp_print_string fmt "strip_vlan"
  | Set_nw_src ip -> Format.fprintf fmt "set_nw_src(%a)" Types.pp_ip ip
  | Set_nw_dst ip -> Format.fprintf fmt "set_nw_dst(%a)" Types.pp_ip ip
  | Set_nw_tos t -> Format.fprintf fmt "set_nw_tos(%d)" t
  | Set_tp_src t -> Format.fprintf fmt "set_tp_src(%d)" t
  | Set_tp_dst t -> Format.fprintf fmt "set_tp_dst(%d)" t

let pp_list fmt actions =
  if actions = [] then Format.pp_print_string fmt "drop"
  else
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f ";")
      pp fmt actions

(* Wire tags follow the OFPAT_* numbering where one exists. *)
let tag = function
  | Output _ -> 0
  | Set_vlan _ -> 1
  | Strip_vlan -> 3
  | Set_dl_src _ -> 4
  | Set_dl_dst _ -> 5
  | Set_nw_src _ -> 6
  | Set_nw_dst _ -> 7
  | Set_nw_tos _ -> 8
  | Set_tp_src _ -> 9
  | Set_tp_dst _ -> 10
  | Enqueue _ -> 11

let encode w a =
  Buf.u16 w (tag a);
  match a with
  | Output p -> Buf.u16 w p
  | Enqueue (p, q) ->
      Buf.u16 w p;
      Buf.u32 w q
  | Set_dl_src m | Set_dl_dst m -> Buf.u48 w m
  | Set_vlan v -> Buf.u16 w v
  | Strip_vlan -> ()
  | Set_nw_src ip | Set_nw_dst ip -> Buf.u32 w ip
  | Set_nw_tos v -> Buf.u8 w v
  | Set_tp_src v | Set_tp_dst v -> Buf.u16 w v

let decode r =
  match Buf.read_u16 r with
  | 0 -> Output (Buf.read_u16 r)
  | 1 -> Set_vlan (Buf.read_u16 r)
  | 3 -> Strip_vlan
  | 4 -> Set_dl_src (Buf.read_u48 r)
  | 5 -> Set_dl_dst (Buf.read_u48 r)
  | 6 -> Set_nw_src (Buf.read_u32 r)
  | 7 -> Set_nw_dst (Buf.read_u32 r)
  | 8 -> Set_nw_tos (Buf.read_u8 r)
  | 9 -> Set_tp_src (Buf.read_u16 r)
  | 10 -> Set_tp_dst (Buf.read_u16 r)
  | 11 ->
      let p = Buf.read_u16 r in
      let q = Buf.read_u32 r in
      Enqueue (p, q)
  | n -> Format.ksprintf failwith "Action.decode: unknown action type %d" n

let encode_list w actions =
  Buf.u16 w (List.length actions);
  List.iter (encode w) actions

let decode_list r =
  let n = Buf.read_u16 r in
  List.init n (fun _ -> decode r)
