lib/controller/app_sig.ml: Bytes Command Event List Marshal Openflow Types
