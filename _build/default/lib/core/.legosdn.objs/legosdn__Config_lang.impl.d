lib/core/config_lang.ml: Buffer Controller Crashpad Detector Format Invariants List Option Policy Printf Quarantine Resources Runtime String
