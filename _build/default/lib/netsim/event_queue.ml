(* Binary min-heap over (time, sequence) pairs in a growable array. The
   sequence number breaks ties so that same-time events are FIFO. *)

type 'a cell = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time value =
  let cell = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.heap then begin
    let cap = max 8 (2 * t.len) in
    let fresh = Array.make cap cell in
    Array.blit t.heap 0 fresh 0 t.len;
    t.heap <- fresh
  end;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let is_empty t = t.len = 0
let size t = t.len

let drain_until t ~time =
  let rec go acc =
    match peek_time t with
    | Some ts when ts <= time -> (
        match pop t with Some ev -> go (ev :: acc) | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (go [])
