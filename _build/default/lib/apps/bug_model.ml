open Openflow
module Event = Controller.Event

type trigger =
  | Never
  | On_kind of Event.kind
  | On_nth_of_kind of Event.kind * int
  | On_switch of Types.switch_id
  | After_events of int
  | On_tp_dst of int
  | With_probability of float * int

type effect_ =
  | Crash
  | Crash_partial of float
  | Hang
  | Byzantine_loop
  | Byzantine_blackhole
  | Leak of int

type t = { trigger : trigger; effect_ : effect_ }

let make trigger effect_ = { trigger; effect_ }
let crash_on kind = make (On_kind kind) Crash
let crash_on_nth kind n = make (On_nth_of_kind (kind, n)) Crash

let describe_trigger = function
  | Never -> "never"
  | On_kind k -> Printf.sprintf "on %s" (Event.kind_name k)
  | On_nth_of_kind (k, n) -> Printf.sprintf "on %s #%d" (Event.kind_name k) n
  | On_switch sid -> Printf.sprintf "on events about s%d" sid
  | After_events n -> Printf.sprintf "after %d events" n
  | On_tp_dst p -> Printf.sprintf "on packets to port %d" p
  | With_probability (p, seed) -> Printf.sprintf "p=%g (seed %d)" p seed

let describe_effect = function
  | Crash -> "crash"
  | Crash_partial f -> Printf.sprintf "crash mid-emission (%.0f%%)" (f *. 100.)
  | Hang -> "hang"
  | Byzantine_loop -> "byzantine loop"
  | Byzantine_blackhole -> "byzantine black hole"
  | Leak n -> Printf.sprintf "leak %dB/event" n

let describe t =
  Printf.sprintf "%s %s" (describe_effect t.effect_) (describe_trigger t.trigger)
