test/t_consistency.ml: Alcotest Apps Clock Controller Flow_table Legosdn List Net Netsim Openflow QCheck2 QCheck_alcotest Sw T_util Topo_gen Topology
