(* The fuzz campaign: generate a scenario per seed, run it under the
   oracle suite, and delta-debug any failure down to a minimal element
   list with the existing Sts machinery. Because elements are resolved
   modulo the sets they index, every sublist Sts proposes is a valid
   scenario — the shrink oracle is simply "does the same oracle still
   fail". *)

module Sts = Legosdn.Sts

(* Deliberate defect injection for validating the fuzzer itself: the
   campaign must find a planted bug, not just pass vacuously.
   [No_retransmit] pushes the retransmission timer out to never-fires —
   spec-level, so the emitted reproducer is self-contained and replays the
   broken configuration byte-for-byte. *)
type plant = No_plant | No_retransmit | Kill_leader_plant | Byz_variant_plant

let plant_name = function
  | No_plant -> "none"
  | No_retransmit -> "no-retransmit"
  | Kill_leader_plant -> "kill-leader"
  | Byz_variant_plant -> "byz-variant"

let plant_of_name = function
  | "none" -> Some No_plant
  | "no-retransmit" -> Some No_retransmit
  | "kill-leader" -> Some Kill_leader_plant
  | "byz-variant" -> Some Byz_variant_plant
  | _ -> None

(* The kill-leader plant turns a generated scenario into a fail-over
   trial: three replicas, traffic-only elements, and a [Kill_leader]
   armed just before the last flow starts so the kill is guaranteed to
   fire on a state-altering send (the flow's punt forces one). Loss and
   duplication are pinned to zero because the runner's differential
   check — kill run delivers exactly what a never-killed run delivers —
   is only sound when every packet reaches its destination exactly once
   in both runs; channel delay stays as generated. *)
let kill_leader spec =
  let flows =
    List.filter (function Spec.Flow _ -> true | _ -> false) spec.Spec.elements
  in
  let flows =
    if flows <> [] then flows
    else
      [
        (* A scenario with no traffic cannot exercise a mid-transaction
           kill: synthesize one deterministic flow. *)
        Spec.Flow
          { src = spec.Spec.seed; dst = spec.Spec.seed + 1; start = 1.0;
            packets = 6; dport = 80 };
      ]
  in
  let last_start =
    List.fold_left
      (fun acc -> function
        | Spec.Flow { start; _ } -> Float.max acc start
        | _ -> acc)
      0. flows
  in
  let at = Float.max 0.05 (last_start -. 0.01) in
  {
    spec with
    Spec.base_loss = 0.;
    duplicate = 0.;
    replicas = 3;
    duration = Float.max spec.Spec.duration (at +. 2.);
    elements = flows @ [ Spec.Kill_leader { at } ];
  }

(* The byz-variant plant turns a generated scenario into a voting trial:
   a single learning_switch slot becomes a 3-variant panel whose third
   seat is a byzantine-blackhole variant (seated by the runner), with the
   scenario's flows kept as the packet-ins that make the panel vote. Loss
   and duplication are pinned to zero so the masking assertion is sound:
   with traffic guaranteed to punt, the byzantine seat must cast at least
   one divergent ballot, and the oracle demands it was outvoted. *)
let byz_variant spec =
  let flows =
    List.filter (function Spec.Flow _ -> true | _ -> false) spec.Spec.elements
  in
  let flows =
    if flows <> [] then flows
    else
      [
        Spec.Flow
          { src = spec.Spec.seed; dst = spec.Spec.seed + 1; start = 1.0;
            packets = 4; dport = 80 };
      ]
  in
  let last_start =
    List.fold_left
      (fun acc -> function
        | Spec.Flow { start; _ } -> Float.max acc start
        | _ -> acc)
      0. flows
  in
  {
    spec with
    Spec.apps = [ "learning_switch" ];
    base_loss = 0.;
    duplicate = 0.;
    replicas = 1;
    nversion = 3;
    duration = Float.max spec.Spec.duration (last_start +. 2.);
    elements = flows @ [ Spec.Byz_variant { slot = 0 } ];
  }

let apply_plant plant spec =
  match plant with
  | No_plant -> spec
  | No_retransmit -> { spec with Spec.base_timeout = 1.0e9 }
  | Kill_leader_plant -> kill_leader spec
  | Byz_variant_plant -> byz_variant spec

type finding = {
  seed : int;
  oracle : string;
  detail : string;
  minimal : Spec.element list;
  shrink_runs : int;  (* scenario executions the minimization cost *)
  minimized : Spec.t;
  result : Runner.result;  (* the minimized spec's failing run *)
}

let shrink ?oracles ?dispatch spec (failure : Runner.failure) =
  let failing elements =
    match
      (Runner.run ?oracles ?dispatch { spec with Spec.elements = elements })
        .Runner.failure
    with
    | Some f -> f.Runner.oracle = failure.Runner.oracle
    | None -> false
  in
  Sts.minimize_with_oracle failing spec.Spec.elements

(* Run one seed; on failure, minimize and re-run the minimized spec so the
   finding carries the trace that belongs to the reproducer. Only that
   final run is traced ([trace_buffer]): the scan and the shrink loop stay
   untraced — spans would describe runs the reproducer doesn't contain. *)
let run_seed ?oracles ?(plant = No_plant) ?trace_buffer ?dispatch ?apps seed =
  let spec = apply_plant plant (Gen.scenario seed) in
  (* App-suite override: same seeded topology/faults/traffic, fixed apps —
     how the CI policy-smoke job points the whole corpus at intent apps. *)
  let spec =
    match apps with None -> spec | Some apps -> { spec with Spec.apps }
  in
  let r = Runner.run ?oracles ?dispatch spec in
  match r.Runner.failure with
  | None -> None
  | Some f ->
      let minimal, shrink_runs = shrink ?oracles ?dispatch spec f in
      let minimized = { spec with Spec.elements = minimal } in
      let result = Runner.run ?oracles ?trace_buffer ?dispatch minimized in
      let oracle, detail =
        (* The minimized run must fail the same oracle (the shrink oracle
           guaranteed it); keep its detail, which describes the minimal
           scenario rather than the original one. *)
        match result.Runner.failure with
        | Some f' -> (f'.Runner.oracle, f'.Runner.detail)
        | None -> (f.Runner.oracle, f.Runner.detail)
      in
      Some { seed; oracle; detail; minimal; shrink_runs; minimized; result }

let reproducer_of (f : finding) =
  {
    Repro.spec = f.minimized;
    oracle = f.oracle;
    detail = f.detail;
    trace = f.result.Runner.trace;
    spans = f.result.Runner.spans;
  }

type campaign_result = {
  seeds_run : int;
  findings : finding list;  (* in seed order *)
}

(* [on_finding] fires as findings surface (the CLI streams them);
   [max_findings] bounds the minimization work, not the scan. *)
let campaign ?oracles ?(plant = No_plant) ?trace_buffer ?dispatch ?apps
    ?max_findings ?(on_finding = fun (_ : finding) -> ()) seeds =
  let findings = ref [] in
  let ran = ref 0 in
  let budget_left () =
    match max_findings with
    | None -> true
    | Some k -> List.length !findings < k
  in
  List.iter
    (fun seed ->
      if budget_left () then begin
        incr ran;
        match run_seed ?oracles ~plant ?trace_buffer ?dispatch ?apps seed with
        | None -> ()
        | Some f ->
            findings := f :: !findings;
            on_finding f
      end)
    seeds;
  { seeds_run = !ran; findings = List.rev !findings }
