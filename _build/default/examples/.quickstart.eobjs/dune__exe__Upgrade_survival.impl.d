examples/upgrade_survival.ml: Apps Bytes Clock Controller Legosdn List Net Netsim Openflow Option Printf Topo_gen
