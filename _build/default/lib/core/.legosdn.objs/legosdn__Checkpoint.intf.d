lib/core/checkpoint.mli: Controller
