open Openflow

let test_roundtrip_fixed () =
  let w = Buf.writer () in
  Buf.u8 w 0xab;
  Buf.u16 w 0xbeef;
  Buf.u32 w 0xdeadbeef;
  Buf.u48 w 0x0200deadbeef;
  Buf.u64 w 0x1122334455667788L;
  let r = Buf.reader (Buf.contents w) in
  T_util.checki "u8" 0xab (Buf.read_u8 r);
  T_util.checki "u16" 0xbeef (Buf.read_u16 r);
  T_util.checki "u32" 0xdeadbeef (Buf.read_u32 r);
  T_util.checki "u48" 0x0200deadbeef (Buf.read_u48 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Buf.read_u64 r);
  T_util.checki "fully consumed" 0 (Buf.remaining r)

let test_masking () =
  let w = Buf.writer () in
  Buf.u8 w 0x1ff;
  Buf.u16 w 0x12345;
  let r = Buf.reader (Buf.contents w) in
  T_util.checki "u8 masks to 8 bits" 0xff (Buf.read_u8 r);
  T_util.checki "u16 masks to 16 bits" 0x2345 (Buf.read_u16 r)

let test_growth () =
  let w = Buf.writer ~capacity:1 () in
  for i = 0 to 999 do
    Buf.u16 w i
  done;
  T_util.checki "length after growth" 2000 (Buf.length w);
  let r = Buf.reader (Buf.contents w) in
  for i = 0 to 999 do
    T_util.checki "value survives growth" i (Buf.read_u16 r)
  done

let test_underflow () =
  let r = Buf.reader (Bytes.of_string "ab") in
  Alcotest.check_raises "u32 from 2 bytes underflows" Buf.Underflow (fun () ->
      ignore (Buf.read_u32 r))

let test_raw_and_pad () =
  let w = Buf.writer () in
  Buf.raw w (Bytes.of_string "hello");
  Buf.pad w 3;
  let b = Buf.contents w in
  T_util.checki "length" 8 (Bytes.length b);
  Alcotest.(check string) "payload" "hello\000\000\000" (Bytes.to_string b)

let test_patch () =
  let w = Buf.writer () in
  Buf.u16 w 0;
  Buf.u32 w 42;
  Buf.patch_u16 w ~pos:0 (Buf.length w);
  let r = Buf.reader (Buf.contents w) in
  T_util.checki "patched length field" 6 (Buf.read_u16 r)

let test_reader_window () =
  let b = Bytes.of_string "abcdef" in
  let r = Buf.reader ~pos:2 ~len:3 b in
  T_util.checki "windowed remaining" 3 (Buf.remaining r);
  Alcotest.(check string) "windowed bytes" "cde"
    (Bytes.to_string (Buf.read_raw r 3));
  Alcotest.check_raises "window end enforced" Buf.Underflow (fun () ->
      ignore (Buf.read_u8 r))

let test_skip_and_pos () =
  let r = Buf.reader (Bytes.of_string "abcdef") in
  Buf.skip r 4;
  T_util.checki "pos after skip" 4 (Buf.pos r);
  T_util.checki "remaining after skip" 2 (Buf.remaining r)

let prop_u48_roundtrip =
  QCheck2.Test.make ~name:"u48 roundtrips any 48-bit value" ~count:500
    QCheck2.Gen.(map (fun i -> i land 0xFFFFFFFFFFFF) (int_bound max_int))
    (fun v ->
      let w = Buf.writer () in
      Buf.u48 w v;
      Buf.read_u48 (Buf.reader (Buf.contents w)) = v land 0xFFFFFFFFFFFF)

let prop_mixed_sequence =
  QCheck2.Test.make ~name:"mixed write sequence reads back" ~count:200
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 0xFFFF)))
    (fun ops ->
      let w = Buf.writer () in
      List.iter
        (fun (kind, v) ->
          match kind with
          | 0 -> Buf.u8 w v
          | 1 -> Buf.u16 w v
          | 2 -> Buf.u32 w v
          | _ -> Buf.u48 w v)
        ops;
      let r = Buf.reader (Buf.contents w) in
      List.for_all
        (fun (kind, v) ->
          match kind with
          | 0 -> Buf.read_u8 r = v land 0xff
          | 1 -> Buf.read_u16 r = v land 0xffff
          | 2 -> Buf.read_u32 r = v land 0xffffffff
          | _ -> Buf.read_u48 r = v)
        ops)

let suite =
  [
    Alcotest.test_case "fixed-width roundtrip" `Quick test_roundtrip_fixed;
    Alcotest.test_case "values are masked" `Quick test_masking;
    Alcotest.test_case "buffer growth preserves data" `Quick test_growth;
    Alcotest.test_case "underflow raises" `Quick test_underflow;
    Alcotest.test_case "raw bytes and padding" `Quick test_raw_and_pad;
    Alcotest.test_case "length back-patching" `Quick test_patch;
    Alcotest.test_case "reader window" `Quick test_reader_window;
    Alcotest.test_case "skip and pos" `Quick test_skip_and_pos;
    QCheck_alcotest.to_alcotest prop_u48_roundtrip;
    QCheck_alcotest.to_alcotest prop_mixed_sequence;
  ]
