lib/netsim/topology.ml: Format List Openflow Printf Types
