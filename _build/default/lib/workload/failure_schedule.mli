(** Timed network-fault schedules for experiments. *)

type timed_fault = float * Netsim.Net.fault

val link_flap :
  a:Netsim.Topology.node ->
  b:Netsim.Topology.node ->
  down_at:float ->
  up_at:float ->
  timed_fault list

val switch_outage :
  Openflow.Types.switch_id -> down_at:float -> up_at:float -> timed_fault list

val periodic_link_flaps :
  Netsim.Topology.t ->
  seed:int ->
  period:float ->
  downtime:float ->
  duration:float ->
  timed_fault list
(** Every [period] seconds, flap one random inter-switch link for
    [downtime] seconds. *)

val sorted : timed_fault list -> timed_fault list
