(** Event-trace recording and replay.

    Crash-Pad's tickets and the STS minimizer both work from event traces;
    this module gives traces a durable form: a length-prefixed binary
    framing of {!Legosdn.Wire}-encoded events, so a production incident can
    be captured, shipped to a developer and replayed (or delta-debugged)
    offline. *)

val encode : Controller.Event.t list -> bytes
(** Serialize a trace to a single buffer. *)

val decode : bytes -> Controller.Event.t list
(** Raises [Failure] on malformed input. *)

val save : string -> Controller.Event.t list -> unit
(** Write a trace file. *)

val load : string -> Controller.Event.t list
(** Read a trace file back. *)

(** A live recorder to hang off a runtime's event path. *)
type recorder

val recorder : unit -> recorder
val record : recorder -> Controller.Event.t -> unit
val recorded : recorder -> Controller.Event.t list
(** Oldest first. *)

val length : recorder -> int
