lib/core/delay_buffer.ml: Controller List Message Netsim Openflow Txn_engine
