module App_sig = Controller.App_sig
(* Software and data diversity (§3.4): three independently built versions
   of the routing application run side by side; LegoSDN feeds them the
   same events and uses the majority output. One version is byzantine (it
   emits a rule forwarding everything into an unwired port); the two
   healthy versions out-vote it, so the poisoned rule never even reaches
   the invariant checker.

   Run with: dune exec examples/diverse_voting.exe *)

open Netsim
module Event = Controller.Event
module Runtime = Legosdn.Runtime
module Metrics = Legosdn.Metrics

let byzantine_router () =
  Apps.Faulty.wrap
    ~bug:
      (Apps.Bug_model.make
         (Apps.Bug_model.On_kind Event.K_packet_in)
         Apps.Bug_model.Byzantine_blackhole)
    (Controller.App_sig.app (Apps.Router.variant "router_team_b"))

let drive net step =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      step ())
    [ (1, 2); (2, 1); (1, 3); (3, 1); (1, 2); (2, 3); (3, 2); (1, 3) ]

let report label rt net =
  let m = Runtime.metrics rt in
  Printf.printf
    "%-26s byzantine outputs blocked by checker: %2d | connectivity: %3.0f%%\n"
    label
    (Metrics.byzantine_blocked m)
    (100. *. Net.connectivity net)

let () =
  Printf.printf "=== N-version diversity with majority voting ===\n\n";

  (* The byzantine version alone: Crash-Pad's invariant checker has to
     catch every poisoned transaction. *)
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  let rt = Runtime.create net [ byzantine_router () ] in
  Runtime.step rt;
  drive net (fun () -> Runtime.step rt);
  report "byzantine version alone:" rt net;

  (* The voted bundle: same byzantine version, sandwiched between two
     healthy independently-built versions. *)
  let module Voted =
    Legosdn.Nversion.Make3
      (Apps.Router)
      ((val byzantine_router () : Controller.App_sig.INTENT_APP))
      ((val Apps.Router.variant ~prefer_high_ports:true "router_team_c"))
  in
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3) in
  let rt = Runtime.create net [ Controller.App_sig.app (module Voted) ] in
  Runtime.step rt;
  drive net (fun () -> Runtime.step rt);
  report "3-version voted bundle:" rt net;
  Printf.printf
    "\nThe bundle's divergence log lines (visible to the operator):\n";
  (* Divergences surface as Log commands; show how often the bundle had to
     out-vote its byzantine member by re-running one event verbosely. *)
  Printf.printf
    "  every packet-in: 'outvoted a divergent version' — the byzantine\n";
  Printf.printf "  output lost 2-to-1 and was discarded before commit.\n"
