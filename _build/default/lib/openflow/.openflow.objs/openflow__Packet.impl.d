lib/openflow/packet.ml: Buf Format Types
