(** Serialization of controller events and application commands for the
    AppVisor RPC channel.

    In the paper's prototype the proxy and stub exchange UDP datagrams; here
    every event and command that crosses an isolation boundary is encoded to
    bytes and decoded on the far side through these functions, so the
    serialization cost the paper accepts in §3.1 is actually paid (and
    measurable). Message-shaped payloads reuse the OpenFlow wire codec. *)

exception Decode_error of string

val encode_event : Controller.Event.t -> bytes
val decode_event : bytes -> Controller.Event.t

val encode_command : Controller.Command.t -> bytes
val decode_command : bytes -> Controller.Command.t

val encode_commands : Controller.Command.t list -> bytes
val decode_commands : bytes -> Controller.Command.t list

val event_size : Controller.Event.t -> int
val commands_size : Controller.Command.t list -> int

val roundtrip_event : Controller.Event.t -> Controller.Event.t
(** [decode_event (encode_event e)] — one hop across the boundary. *)

val roundtrip_commands : Controller.Command.t list -> Controller.Command.t list
