type writer = { mutable data : Bytes.t; mutable len : int }

let writer ?(capacity = 64) () =
  { data = Bytes.create (max 1 capacity); len = 0 }

let length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.data then begin
    let cap = ref (Bytes.length w.data) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit w.data 0 fresh 0 w.len;
    w.data <- fresh
  end

let u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.data w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let u16 w v =
  u8 w (v lsr 8);
  u8 w v

let u32 w v =
  u16 w (v lsr 16);
  u16 w v

let u48 w v =
  u16 w (v lsr 32);
  u32 w v

let u64 w v =
  u32 w (Int64.to_int (Int64.shift_right_logical v 32));
  u32 w (Int64.to_int (Int64.logand v 0xffffffffL))

let raw w b =
  let n = Bytes.length b in
  ensure w n;
  Bytes.blit b 0 w.data w.len n;
  w.len <- w.len + n

let pad w n =
  ensure w n;
  Bytes.fill w.data w.len n '\000';
  w.len <- w.len + n

let patch_u16 w ~pos v =
  assert (pos + 2 <= w.len);
  Bytes.set w.data pos (Char.chr ((v lsr 8) land 0xff));
  Bytes.set w.data (pos + 1) (Char.chr (v land 0xff))

let contents w = Bytes.sub w.data 0 w.len

(* Rewind without releasing the backing store: the buffer keeps its
   high-water-mark capacity, so a reused writer stops allocating once it
   has seen its largest frame. *)
let reset w = w.len <- 0

type reader = { src : Bytes.t; limit : int; mutable cur : int; start : int }

exception Underflow

let reader ?(pos = 0) ?len b =
  let limit =
    match len with None -> Bytes.length b | Some n -> min (pos + n) (Bytes.length b)
  in
  { src = b; limit; cur = pos; start = pos }

let pos r = r.cur - r.start
let remaining r = r.limit - r.cur

let check r n = if r.cur + n > r.limit then raise Underflow

let read_u8 r =
  check r 1;
  let v = Char.code (Bytes.unsafe_get r.src r.cur) in
  r.cur <- r.cur + 1;
  v

let read_u16 r =
  let hi = read_u8 r in
  let lo = read_u8 r in
  (hi lsl 8) lor lo

let read_u32 r =
  let hi = read_u16 r in
  let lo = read_u16 r in
  (hi lsl 16) lor lo

let read_u48 r =
  let hi = read_u16 r in
  let lo = read_u32 r in
  (hi lsl 32) lor lo

let read_u64 r =
  let hi = read_u32 r in
  let lo = read_u32 r in
  Int64.logor
    (Int64.shift_left (Int64.of_int hi) 32)
    (Int64.of_int lo)

let read_raw r n =
  check r n;
  let b = Bytes.sub r.src r.cur n in
  r.cur <- r.cur + n;
  b

let skip r n =
  check r n;
  r.cur <- r.cur + n

(* A window over the next [n] bytes, consumed from the parent. Shares the
   parent's backing store — no copy — so embedded length-prefixed frames
   decode without the [read_raw] allocation. *)
let sub_reader r n =
  check r n;
  let s = { src = r.src; limit = r.cur + n; cur = r.cur; start = r.cur } in
  r.cur <- r.cur + n;
  s

(* Zero-copy read-back of a writer: the reader borrows the writer's
   backing store. The borrow is only valid until the next write or
   [reset] — writes can grow (replace) the buffer under the reader. *)
let reader_of_writer w = { src = w.data; limit = w.len; cur = 0; start = 0 }
