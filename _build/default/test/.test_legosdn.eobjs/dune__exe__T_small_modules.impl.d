test/t_small_modules.ml: Action Alcotest Clock Controller Invariants Legosdn List Message Net Netsim Ofp_match Openflow String T_util Topo_gen Topology Types
