test/t_config_lang.ml: Alcotest Apps Controller Invariants Legosdn List Netsim Option QCheck2 QCheck_alcotest T_util
