module App_sig = Controller.App_sig
(* Whole-system soak tests: seeded random scenarios (topology, traffic,
   faults, bugs) thrown at the LegoSDN runtime, asserting the properties
   that must hold universally:

   - the controller never dies from application failures (by construction
     there is no crashed state; here we assert the run completes and every
     injected failure was accounted for),
   - NetLog never corrupts the network: after every run, re-checking the
     default invariants reports nothing that traffic + faults alone cannot
     explain (no loops, since no app in the healthy set installs them),
   - determinism: the same seed reproduces the same report. *)

open Netsim
module Runtime = Legosdn.Runtime
module Metrics = Legosdn.Metrics
module Scenario = Workload.Scenario
module Traffic = Workload.Traffic
module Event = Controller.Event

let topo_of_seed seed =
  match seed mod 4 with
  | 0 -> Topo_gen.linear ~hosts_per_switch:1 4
  | 1 -> Topo_gen.ring ~hosts_per_switch:1 4
  | 2 -> Topo_gen.star ~hosts_per_switch:1 3
  | _ -> Topo_gen.random ~hosts_per_switch:1 ~seed ~switches:5 ~extra_links:2 ()

let bug_of_seed seed =
  let open Apps.Bug_model in
  match seed mod 5 with
  | 0 -> make (On_kind Event.K_packet_in) Crash
  | 1 -> make (On_nth_of_kind (Event.K_packet_in, 3)) (Crash_partial 0.5)
  | 2 -> make (On_kind Event.K_packet_in) Hang
  | 3 -> make (On_kind Event.K_packet_in) Byzantine_blackhole
  | _ -> make (On_tp_dst 80) Crash

let scenario_of_seed seed =
  let make_topology () = topo_of_seed seed in
  let hosts = Topology.hosts (make_topology ()) in
  let duration = 8. in
  let traffic =
    Traffic.schedule
      (Traffic.uniform_pairs ~seed ~hosts ~flows:30 ~duration ())
  in
  let faults =
    Workload.Failure_schedule.periodic_link_flaps (make_topology ()) ~seed
      ~period:2.5 ~downtime:1. ~duration
  in
  Scenario.make ~faults ~make_topology ~duration ~traffic ~tick_interval:1. ()

let run_seed seed =
  let metrics_box = ref None in
  let report =
    Scenario.run (scenario_of_seed seed) ~make_driver:(fun net ->
        let apps : Controller.App_sig.app list =
          [
            Apps.Faulty.wrap ~bug:(bug_of_seed seed) (App_sig.app (module Apps.Learning_switch));
            (App_sig.app (module Apps.Firewall));
            (App_sig.app (module Apps.Monitor));
          ]
        in
        let rt = Runtime.create net apps in
        metrics_box := Some (Runtime.metrics rt);
        Scenario.legosdn_driver rt)
  in
  (report, Option.get !metrics_box)

let test_controller_always_survives () =
  for seed = 1 to 10 do
    let report, metrics = run_seed seed in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d: controller fully available" seed)
      1.0 report.Scenario.controller_availability;
    T_util.checki
      (Printf.sprintf "seed %d: no stack crashes" seed)
      0 report.Scenario.controller_crashes;
    (* The injected bug actually fired in most seeds; when it did, every
       failure was converted into a policy outcome (nothing unaccounted). *)
    let failures =
      Metrics.crashes metrics + Metrics.hangs metrics
      + Metrics.byzantine_blocked metrics
    in
    let outcomes =
      Metrics.ignored metrics + Metrics.transformed metrics
      + Metrics.disabled metrics
    in
    T_util.checkb
      (Printf.sprintf "seed %d: failures (%d) imply outcomes (%d)" seed
         failures outcomes)
      true
      (failures = 0 || outcomes > 0)
  done

let test_deterministic_reports () =
  List.iter
    (fun seed ->
      let a, _ = run_seed seed in
      let b, _ = run_seed seed in
      T_util.checkb
        (Printf.sprintf "seed %d reproducible" seed)
        true
        (a.Scenario.samples = b.Scenario.samples
        && a.Scenario.events_delivered = b.Scenario.events_delivered
        && a.Scenario.app_availability = b.Scenario.app_availability))
    [ 2; 5; 9 ]

let test_firewall_acls_always_hold () =
  (* Whatever the bug in the learning switch does, the firewall's telnet
     block must survive every recovery: inject telnet at the end and
     verify it is never delivered. *)
  for seed = 1 to 6 do
    let scenario = scenario_of_seed seed in
    let net_box = ref None in
    let _ =
      Scenario.run scenario ~make_driver:(fun net ->
          net_box := Some net;
          Scenario.legosdn_driver
            (Runtime.create net
               [
                 Apps.Faulty.wrap ~bug:(bug_of_seed seed)
                   (App_sig.app (module Apps.Learning_switch));
                 (App_sig.app (module Apps.Firewall));
               ]))
    in
    let net = Option.get !net_box in
    let delivered_before = (Net.stats net).Net.delivered in
    Net.inject net 1 (Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ~dport:23 ());
    T_util.checki
      (Printf.sprintf "seed %d: telnet still blocked" seed)
      delivered_before (Net.stats net).Net.delivered
  done

let suite =
  [
    Alcotest.test_case "controller survives all seeds" `Slow
      test_controller_always_survives;
    Alcotest.test_case "reports deterministic" `Slow test_deterministic_reports;
    Alcotest.test_case "firewall ACLs hold under chaos" `Slow
      test_firewall_acls_always_hold;
  ]
