open Netsim
module Monolithic = Controller.Monolithic
module Event = Controller.Event
module App_sig = Controller.App_sig

let drive_traffic net mono pairs =
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (T_util.tcp_packet src dst);
      Monolithic.step mono)
    pairs

let fresh_mono ?(topo = Topo_gen.linear ~hosts_per_switch:1 3) apps =
  let clock = Clock.create () in
  let net = Net.create clock topo in
  let mono = Monolithic.create net apps in
  Monolithic.step mono;
  (net, mono)

let buggy bug : App_sig.app =
  Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch))

let test_healthy_dispatch () =
  let net, mono = fresh_mono [ (App_sig.app (module Apps.Learning_switch)) ] in
  drive_traffic net mono [ (1, 2); (2, 1); (1, 2) ];
  T_util.checkb "controller running" true (Monolithic.status mono = Monolithic.Running);
  T_util.checkb "events flowed" true (Monolithic.events_processed mono > 0);
  (* After learning both sides, h1->h2 is pinned in hardware. *)
  T_util.checkb "path installed" true (Net.reachable net 1 2)

let test_crash_takes_down_everything () =
  let net, mono =
    fresh_mono
      [
        buggy (Apps.Bug_model.crash_on_nth Event.K_packet_in 2);
        (App_sig.app (module Apps.Firewall));
      ]
  in
  drive_traffic net mono [ (1, 2); (2, 1); (1, 3) ];
  (match Monolithic.status mono with
  | Monolithic.Crashed info ->
      Alcotest.(check string) "culprit identified" "learning_switch"
        info.Monolithic.culprit
  | Monolithic.Running -> Alcotest.fail "controller should be dead");
  (* The whole stack is frozen: new events do nothing. *)
  let before = Monolithic.events_processed mono in
  drive_traffic net mono [ (2, 3) ];
  T_util.checki "no events processed while dead" before
    (Monolithic.events_processed mono)

let test_partial_commands_leak_to_network () =
  (* A crash after partial emission leaves the prefix installed: the
     inconsistency NetLog exists to prevent. *)
  let net, mono =
    fresh_mono
      [
        Apps.Faulty.wrap
          ~bug:(Apps.Bug_model.make
                  (Apps.Bug_model.On_nth_of_kind (Event.K_packet_in, 2))
                  (Apps.Bug_model.Crash_partial 0.5))
          (App_sig.app (module Apps.Flooder));
      ]
  in
  drive_traffic net mono [ (1, 2); (2, 1) ];
  T_util.checkb "controller dead" true (Monolithic.status mono <> Monolithic.Running);
  (* Flooder's event-2 handler wanted install+packet_out; half got through. *)
  let installed =
    List.length (Flow_table.entries (Net.switch net 1).Sw.table)
    + List.length (Flow_table.entries (Net.switch net 2).Sw.table)
    + List.length (Flow_table.entries (Net.switch net 3).Sw.table)
  in
  T_util.checkb "a partial rule escaped" true (installed >= 1)

let test_hang_wedges_controller () =
  let net, mono =
    fresh_mono
      [
        Apps.Faulty.wrap
          ~bug:(Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
                  Apps.Bug_model.Hang)
          (App_sig.app (module Apps.Learning_switch));
      ]
  in
  drive_traffic net mono [ (1, 2) ];
  match Monolithic.status mono with
  | Monolithic.Crashed info ->
      Alcotest.(check string) "hang diagnosed" "hang" info.Monolithic.detail
  | Monolithic.Running -> Alcotest.fail "hang should wedge the controller"

let test_restart_loses_app_state () =
  (* A healthy learning switch rides along with an app that dies on its 6th
     packet-in; the restart wipes the learning switch's MAC table too. *)
  let net, mono =
    fresh_mono
      [
        (App_sig.app (module Apps.Learning_switch));
        buggy (Apps.Bug_model.crash_on_nth Event.K_packet_in 6);
      ]
  in
  drive_traffic net mono [ (1, 2); (2, 1) ];
  let ls_before = App_sig.snapshot (List.hd (Monolithic.apps mono)) in
  let fresh = App_sig.snapshot (App_sig.reboot (List.hd (Monolithic.apps mono))) in
  T_util.checkb "learning switch learned something" true (ls_before <> fresh);
  drive_traffic net mono [ (1, 3); (3, 1); (2, 3) ];
  T_util.checkb "dead" true (Monolithic.status mono <> Monolithic.Running);
  Monolithic.restart mono;
  T_util.checkb "running again" true (Monolithic.status mono = Monolithic.Running);
  T_util.checkb "app state wiped by restart" true
    (App_sig.snapshot (List.hd (Monolithic.apps mono)) = fresh);
  drive_traffic net mono [ (3, 1) ];
  T_util.checkb "controller serves events after restart" true
    (Monolithic.events_processed mono > 0)

let test_dispatch_respects_subscriptions () =
  let _, mono = fresh_mono [ (App_sig.app (module Apps.Monitor)) ] in
  (* Monitor ignores packet_in; dispatching one must not reach it. *)
  Monolithic.dispatch_event mono
    (Event.Packet_in
       ( 1,
         {
           Openflow.Message.pi_buffer_id = None;
           pi_in_port = 1;
           pi_reason = Openflow.Message.No_match;
           pi_packet = T_util.tcp_packet 1 2;
         } ));
  Monolithic.tick mono;
  T_util.checkb "commands only from tick" true (Monolithic.commands_executed mono > 0)

let test_stats_replies_routed_back () =
  let net, mono = fresh_mono [ (App_sig.app (module Apps.Monitor)) ] in
  Monolithic.tick mono;
  ignore net;
  let monitor = List.hd (Monolithic.apps mono) in
  (* The monitor polled every switch and the synchronous replies were
     dispatched back as events; its totals map must now know 3 switches. *)
  ignore monitor;
  T_util.checkb "poll round-trip happened" true (Monolithic.commands_executed mono >= 3)

let suite =
  [
    Alcotest.test_case "healthy dispatch installs paths" `Quick test_healthy_dispatch;
    Alcotest.test_case "fate sharing on crash" `Quick test_crash_takes_down_everything;
    Alcotest.test_case "partial commands leak" `Quick test_partial_commands_leak_to_network;
    Alcotest.test_case "hang wedges controller" `Quick test_hang_wedges_controller;
    Alcotest.test_case "restart loses app state" `Quick test_restart_loses_app_state;
    Alcotest.test_case "subscription filtering" `Quick test_dispatch_respects_subscriptions;
    Alcotest.test_case "stats replies routed" `Quick test_stats_replies_routed_back;
  ]
