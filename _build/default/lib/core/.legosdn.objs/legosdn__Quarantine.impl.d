lib/core/quarantine.ml: Controller Event Hashtbl List Option Sts
