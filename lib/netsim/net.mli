(** The live network: a topology instantiated with switch state, a data
    plane that propagates packets across it, and a notification queue
    feeding the controller.

    This is the "southbound" boundary: the controller calls {!send} and
    {!poll}; workloads call {!inject}; failure injection calls
    {!apply_fault}; invariant checkers use the read-only {!probe}. *)

open Openflow

type fault =
  | Link_down of Topology.node * Topology.node
  | Link_up of Topology.node * Topology.node
  | Switch_down of Types.switch_id
  | Switch_up of Types.switch_id
      (** A switch coming back has an empty flow table — reboot semantics. *)
  | Port_down of Types.switch_id * Types.port_no
  | Port_up of Types.switch_id * Types.port_no
  | Channel_partition of Types.switch_id
      (** Cut the control channel silently: the switch keeps forwarding,
          but no control messages cross in either direction. *)
  | Channel_heal of Types.switch_id
  | Channel_loss of Types.switch_id * float
      (** Set the channel's symmetric loss probability (0. clears it). *)

type notification =
  | From_switch of Types.switch_id * Message.t
      (** Asynchronous switch-to-controller message: packet-in,
          flow-removed, port-status. *)
  | Switch_connected of Types.switch_id * Message.features
  | Switch_disconnected of Types.switch_id
  | Delivered of Topology.host * Packet.t
      (** A packet reached a host NIC (visible to workloads, not to the
          controller). *)

type stats = {
  mutable delivered : int;
  mutable delivered_to_dst : int;
      (** Copies delivered to the host the packet was addressed to — the
          useful-work subset of [delivered] (flood copies reaching other
          hosts count only in [delivered]). The fail-over oracle compares
          this across runs: it is invariant to flood-vs-unicast path
          differences, which [delivered] is not. *)
  mutable blackholed : int;  (** Copies dropped with no matching egress. *)
  mutable looped : int;  (** Copies killed by the hop limit. *)
  mutable packet_ins : int;
}

type t

val create :
  ?hop_limit:int ->
  ?channel:Channel.config ->
  ?channel_seed:int ->
  Clock.t ->
  Topology.t ->
  t
(** Instantiate switches for every switch node. A [Switch_connected]
    notification is queued per switch, modelling the initial handshake.
    Every switch gets its own control {!Channel.t}, seeded with
    [channel_seed + switch_id] so runs are deterministic and per-switch
    sequences are independent. The default channel is {!Channel.perfect},
    under which {!send} behaves exactly as a direct call would. *)

val topology : t -> Topology.t
val clock : t -> Clock.t
val switch : t -> Types.switch_id -> Sw.t
(** Raises [Not_found] for unknown ids. *)

val stats : t -> stats

val channel : t -> Types.switch_id -> Channel.t
(** The control channel to one switch. Raises [Not_found] for unknown
    ids. *)

val channel_totals : t -> Channel.stats
(** Fresh record summing the stats of every switch's channel. *)

val dups_suppressed : t -> int
(** Total state-altering retransmissions suppressed by switch-side xid
    dedup, summed over all switches. *)

val send : ?from:int -> t -> Types.switch_id -> Message.t -> Message.t list
(** Deliver a controller-to-switch message through its control channel;
    returns the synchronous replies. The channel may drop the message
    (returns [[]]), duplicate it, or delay it — a delayed copy is
    delivered on a later {!poll}/{!tick} and its replies surface as
    [From_switch] notifications. Data-plane side effects (packet-outs,
    buffered-packet releases) propagate through the network, possibly
    queueing notifications. Sending to a disconnected switch returns a
    single [Error] reply. [from] names the sending controller for the
    switch's master/slave role check (see {!Sw.set_master}). *)

val inject : t -> Topology.host -> Packet.t -> unit
(** A host transmits a packet into its access switch. Effects (deliveries,
    packet-ins) are queued as notifications. *)

val poll : t -> notification list
(** Drain queued notifications, oldest first. *)

val apply_fault : t -> fault -> unit
(** Change topology/switch state and queue the resulting port-status or
    connect/disconnect notifications. *)

val tick : t -> unit
(** Expire flow-table entries against the current clock, queueing
    flow-removed notifications. *)

(** Read-only trace of where a packet would go, given current tables.
    Counters, buffers and notifications are untouched. *)
type probe_result = {
  reached : Topology.host list;
  punted_at : Types.switch_id list;  (** Table misses along the way. *)
  blackholed_at : Types.switch_id list;
  looped : bool;
  path : (Types.switch_id * Types.port_no) list;
      (** (switch, ingress port) in visit order. *)
}

val probe : t -> Topology.host -> Packet.t -> probe_result

val reachable : t -> Topology.host -> Topology.host -> bool
(** Would a canonical TCP packet from one host reach the other right now,
    using only installed rules (no controller help)? *)

val connectivity : t -> float
(** Fraction of ordered host pairs for which {!reachable} holds; 1.0 on a
    fully programmed network. *)
