(** Wire-format debugging: canonical hex+ASCII dumps of frames and
    messages, in the `hexdump -C` layout every network engineer reads. *)

val of_bytes : bytes -> string
(** 16 bytes per line: offset, hex columns (gap after 8), ASCII gutter. *)

val of_message : Message.t -> string
(** The encoded wire frame of a message, dumped. *)

val pp : Format.formatter -> bytes -> unit
