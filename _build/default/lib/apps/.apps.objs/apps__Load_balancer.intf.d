lib/apps/load_balancer.mli: Controller
