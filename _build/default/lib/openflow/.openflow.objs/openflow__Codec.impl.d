lib/openflow/codec.ml: Action Buf Bytes Format Int64 List Message Ofp_match Packet String Types
