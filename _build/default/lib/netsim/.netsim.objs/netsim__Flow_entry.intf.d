lib/netsim/flow_entry.mli: Action Format Message Ofp_match Openflow Packet Types
