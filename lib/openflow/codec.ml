exception Decode_error of string

let fail fmt = Format.ksprintf (fun s -> raise (Decode_error s)) fmt

let version = 0x01

(* OFPT_* message type numbers from the OF 1.0 spec. *)
let t_hello = 0
let t_error = 1
let t_echo_request = 2
let t_echo_reply = 3
let t_features_request = 5
let t_features_reply = 6
let t_packet_in = 10
let t_flow_removed = 11
let t_port_status = 12
let t_packet_out = 13
let t_flow_mod = 14
let t_port_mod = 15
let t_stats_request = 16
let t_stats_reply = 17
let t_barrier_request = 18
let t_barrier_reply = 19

let none_sentinel = 0xffffffff

let put_opt_u32 w = function
  | None -> Buf.u32 w none_sentinel
  | Some v -> Buf.u32 w v

let get_opt_u32 r =
  let v = Buf.read_u32 r in
  if v = none_sentinel then None else Some v

let put_opt_u16 w sentinel = function
  | None -> Buf.u16 w sentinel
  | Some v -> Buf.u16 w v

let get_opt_u16 r sentinel =
  let v = Buf.read_u16 r in
  if v = sentinel then None else Some v

let put_string w s =
  Buf.u16 w (String.length s);
  Buf.raw w (Bytes.of_string s)

let get_string r =
  let n = Buf.read_u16 r in
  Bytes.to_string (Buf.read_raw r n)

let put_bytes w b =
  Buf.u16 w (Bytes.length b);
  Buf.raw w b

let get_bytes r =
  let n = Buf.read_u16 r in
  Buf.read_raw r n

let put_packet w p = put_bytes w (Packet.to_frame p)
let get_packet r = Packet.of_frame (get_bytes r)

let put_port_desc w (d : Message.port_desc) =
  Buf.u16 w d.port_no;
  Buf.u48 w d.hw_addr;
  put_string w d.name;
  Buf.u8 w ((if d.up then 1 else 0) lor if d.no_flood then 2 else 0)

let get_port_desc r : Message.port_desc =
  let port_no = Buf.read_u16 r in
  let hw_addr = Buf.read_u48 r in
  let name = get_string r in
  let flags = Buf.read_u8 r in
  { port_no; hw_addr; name; up = flags land 1 = 1; no_flood = flags land 2 = 2 }

let command_code : Message.flow_mod_command -> int = function
  | Add -> 0
  | Modify -> 1
  | Modify_strict -> 2
  | Delete -> 3
  | Delete_strict -> 4

let command_of_code = function
  | 0 -> Message.Add
  | 1 -> Message.Modify
  | 2 -> Message.Modify_strict
  | 3 -> Message.Delete
  | 4 -> Message.Delete_strict
  | n -> fail "unknown flow_mod command %d" n

let put_flow_mod w (fm : Message.flow_mod) =
  Ofp_match.encode w fm.pattern;
  Buf.u64 w fm.cookie;
  Buf.u16 w (command_code fm.command);
  Buf.u16 w fm.idle_timeout;
  Buf.u16 w fm.hard_timeout;
  Buf.u16 w fm.priority;
  put_opt_u32 w fm.buffer_id;
  put_opt_u16 w Types.port_none fm.out_port;
  Buf.u8 w (if fm.notify_when_removed then 1 else 0);
  Action.encode_list w fm.actions

let get_flow_mod r : Message.flow_mod =
  let pattern = Ofp_match.decode r in
  let cookie = Buf.read_u64 r in
  let command = command_of_code (Buf.read_u16 r) in
  let idle_timeout = Buf.read_u16 r in
  let hard_timeout = Buf.read_u16 r in
  let priority = Buf.read_u16 r in
  let buffer_id = get_opt_u32 r in
  let out_port = get_opt_u16 r Types.port_none in
  let notify_when_removed = Buf.read_u8 r = 1 in
  let actions = Action.decode_list r in
  {
    pattern;
    cookie;
    command;
    idle_timeout;
    hard_timeout;
    priority;
    buffer_id;
    out_port;
    notify_when_removed;
    actions;
  }

let flow_removed_reason_code : Message.flow_removed_reason -> int = function
  | Removed_idle -> 0
  | Removed_hard -> 1
  | Removed_delete -> 2

let flow_removed_reason_of_code = function
  | 0 -> Message.Removed_idle
  | 1 -> Message.Removed_hard
  | 2 -> Message.Removed_delete
  | n -> fail "unknown flow_removed reason %d" n

let stats_kind_flow = 1
let stats_kind_aggregate = 2
let stats_kind_port = 4
let stats_kind_desc = 0

let put_stats_request w : Message.stats_request -> unit = function
  | Flow_stats_request m ->
      Buf.u16 w stats_kind_flow;
      Ofp_match.encode w m
  | Aggregate_stats_request m ->
      Buf.u16 w stats_kind_aggregate;
      Ofp_match.encode w m
  | Port_stats_request p ->
      Buf.u16 w stats_kind_port;
      put_opt_u16 w Types.port_none p
  | Description_request -> Buf.u16 w stats_kind_desc

let get_stats_request r : Message.stats_request =
  match Buf.read_u16 r with
  | k when k = stats_kind_flow -> Flow_stats_request (Ofp_match.decode r)
  | k when k = stats_kind_aggregate ->
      Aggregate_stats_request (Ofp_match.decode r)
  | k when k = stats_kind_port ->
      Port_stats_request (get_opt_u16 r Types.port_none)
  | k when k = stats_kind_desc -> Description_request
  | k -> fail "unknown stats request kind %d" k

let put_flow_stat w (fs : Message.flow_stat) =
  Ofp_match.encode w fs.fs_pattern;
  Buf.u16 w fs.fs_priority;
  Buf.u64 w fs.fs_cookie;
  Buf.u32 w fs.fs_duration;
  Buf.u16 w fs.fs_idle_timeout;
  Buf.u16 w fs.fs_hard_timeout;
  Buf.u64 w (Int64.of_int fs.fs_packet_count);
  Buf.u64 w (Int64.of_int fs.fs_byte_count);
  Action.encode_list w fs.fs_actions

let get_flow_stat r : Message.flow_stat =
  let fs_pattern = Ofp_match.decode r in
  let fs_priority = Buf.read_u16 r in
  let fs_cookie = Buf.read_u64 r in
  let fs_duration = Buf.read_u32 r in
  let fs_idle_timeout = Buf.read_u16 r in
  let fs_hard_timeout = Buf.read_u16 r in
  let fs_packet_count = Int64.to_int (Buf.read_u64 r) in
  let fs_byte_count = Int64.to_int (Buf.read_u64 r) in
  let fs_actions = Action.decode_list r in
  {
    fs_pattern;
    fs_priority;
    fs_cookie;
    fs_duration;
    fs_idle_timeout;
    fs_hard_timeout;
    fs_packet_count;
    fs_byte_count;
    fs_actions;
  }

let put_port_stat w (ps : Message.port_stat) =
  Buf.u16 w ps.ps_port_no;
  Buf.u64 w (Int64.of_int ps.ps_rx_packets);
  Buf.u64 w (Int64.of_int ps.ps_tx_packets);
  Buf.u64 w (Int64.of_int ps.ps_rx_bytes);
  Buf.u64 w (Int64.of_int ps.ps_tx_bytes);
  Buf.u64 w (Int64.of_int ps.ps_rx_dropped);
  Buf.u64 w (Int64.of_int ps.ps_tx_dropped)

let get_port_stat r : Message.port_stat =
  let ps_port_no = Buf.read_u16 r in
  let ps_rx_packets = Int64.to_int (Buf.read_u64 r) in
  let ps_tx_packets = Int64.to_int (Buf.read_u64 r) in
  let ps_rx_bytes = Int64.to_int (Buf.read_u64 r) in
  let ps_tx_bytes = Int64.to_int (Buf.read_u64 r) in
  let ps_rx_dropped = Int64.to_int (Buf.read_u64 r) in
  let ps_tx_dropped = Int64.to_int (Buf.read_u64 r) in
  {
    ps_port_no;
    ps_rx_packets;
    ps_tx_packets;
    ps_rx_bytes;
    ps_tx_bytes;
    ps_rx_dropped;
    ps_tx_dropped;
  }

let put_stats_reply w : Message.stats_reply -> unit = function
  | Flow_stats_reply stats ->
      Buf.u16 w stats_kind_flow;
      Buf.u16 w (List.length stats);
      List.iter (put_flow_stat w) stats
  | Aggregate_stats_reply { packets; bytes; flows } ->
      Buf.u16 w stats_kind_aggregate;
      Buf.u64 w (Int64.of_int packets);
      Buf.u64 w (Int64.of_int bytes);
      Buf.u32 w flows
  | Port_stats_reply stats ->
      Buf.u16 w stats_kind_port;
      Buf.u16 w (List.length stats);
      List.iter (put_port_stat w) stats
  | Description_reply s ->
      Buf.u16 w stats_kind_desc;
      put_string w s

let get_stats_reply r : Message.stats_reply =
  match Buf.read_u16 r with
  | k when k = stats_kind_flow ->
      let n = Buf.read_u16 r in
      Flow_stats_reply (List.init n (fun _ -> get_flow_stat r))
  | k when k = stats_kind_aggregate ->
      let packets = Int64.to_int (Buf.read_u64 r) in
      let bytes = Int64.to_int (Buf.read_u64 r) in
      let flows = Buf.read_u32 r in
      Aggregate_stats_reply { packets; bytes; flows }
  | k when k = stats_kind_port ->
      let n = Buf.read_u16 r in
      Port_stats_reply (List.init n (fun _ -> get_port_stat r))
  | k when k = stats_kind_desc -> Description_reply (get_string r)
  | k -> fail "unknown stats reply kind %d" k

let error_kind_code : Message.error_kind -> int = function
  | Bad_request -> 1
  | Bad_action -> 2
  | Flow_mod_failed -> 3
  | Port_mod_failed -> 4

let error_kind_of_code = function
  | 1 -> Message.Bad_request
  | 2 -> Message.Bad_action
  | 3 -> Message.Flow_mod_failed
  | 4 -> Message.Port_mod_failed
  | n -> fail "unknown error kind %d" n

let type_of_payload : Message.payload -> int = function
  | Hello -> t_hello
  | Error _ -> t_error
  | Echo_request _ -> t_echo_request
  | Echo_reply _ -> t_echo_reply
  | Features_request -> t_features_request
  | Features_reply _ -> t_features_reply
  | Packet_in _ -> t_packet_in
  | Flow_removed _ -> t_flow_removed
  | Port_status _ -> t_port_status
  | Packet_out _ -> t_packet_out
  | Flow_mod _ -> t_flow_mod
  | Port_mod _ -> t_port_mod
  | Stats_request _ -> t_stats_request
  | Stats_reply _ -> t_stats_reply
  | Barrier_request -> t_barrier_request
  | Barrier_reply -> t_barrier_reply

let put_body w : Message.payload -> unit = function
  | Hello | Features_request | Barrier_request | Barrier_reply -> ()
  | Echo_request b | Echo_reply b -> put_bytes w b
  | Error (kind, msg) ->
      Buf.u16 w (error_kind_code kind);
      put_string w msg
  | Features_reply f ->
      Buf.u64 w (Int64.of_int f.datapath_id);
      Buf.u32 w f.n_buffers;
      Buf.u8 w f.n_tables;
      Buf.u16 w (List.length f.ports);
      List.iter (put_port_desc w) f.ports
  | Packet_in pi ->
      put_opt_u32 w pi.pi_buffer_id;
      Buf.u16 w pi.pi_in_port;
      Buf.u8 w (match pi.pi_reason with No_match -> 0 | Action_to_controller -> 1);
      put_packet w pi.pi_packet
  | Packet_out po ->
      put_opt_u32 w po.po_buffer_id;
      put_opt_u16 w Types.port_none po.po_in_port;
      Action.encode_list w po.po_actions;
      (match po.po_packet with
      | None -> Buf.u8 w 0
      | Some p ->
          Buf.u8 w 1;
          put_packet w p)
  | Flow_mod fm -> put_flow_mod w fm
  | Port_mod pm ->
      Buf.u16 w pm.pm_port_no;
      Buf.u8 w (if pm.pm_no_flood then 1 else 0)
  | Flow_removed fr ->
      Ofp_match.encode w fr.fr_pattern;
      Buf.u64 w fr.fr_cookie;
      Buf.u16 w fr.fr_priority;
      Buf.u8 w (flow_removed_reason_code fr.fr_reason);
      Buf.u32 w fr.fr_duration;
      Buf.u16 w fr.fr_idle_timeout;
      Buf.u64 w (Int64.of_int fr.fr_packet_count);
      Buf.u64 w (Int64.of_int fr.fr_byte_count)
  | Port_status (reason, desc) ->
      Buf.u8 w
        (match reason with Port_add -> 0 | Port_delete -> 1 | Port_modify -> 2);
      put_port_desc w desc
  | Stats_request sr -> put_stats_request w sr
  | Stats_reply sr -> put_stats_reply w sr

let get_body typ r : Message.payload =
  if typ = t_hello then Hello
  else if typ = t_echo_request then Echo_request (get_bytes r)
  else if typ = t_echo_reply then Echo_reply (get_bytes r)
  else if typ = t_features_request then Features_request
  else if typ = t_features_reply then begin
    let datapath_id = Int64.to_int (Buf.read_u64 r) in
    let n_buffers = Buf.read_u32 r in
    let n_tables = Buf.read_u8 r in
    let n = Buf.read_u16 r in
    let ports = List.init n (fun _ -> get_port_desc r) in
    Features_reply { datapath_id; n_buffers; n_tables; ports }
  end
  else if typ = t_packet_in then begin
    let pi_buffer_id = get_opt_u32 r in
    let pi_in_port = Buf.read_u16 r in
    let pi_reason =
      match Buf.read_u8 r with
      | 0 -> Message.No_match
      | 1 -> Message.Action_to_controller
      | n -> fail "unknown packet_in reason %d" n
    in
    let pi_packet = get_packet r in
    Packet_in { pi_buffer_id; pi_in_port; pi_reason; pi_packet }
  end
  else if typ = t_packet_out then begin
    let po_buffer_id = get_opt_u32 r in
    let po_in_port = get_opt_u16 r Types.port_none in
    let po_actions = Action.decode_list r in
    let po_packet =
      match Buf.read_u8 r with
      | 0 -> None
      | 1 -> Some (get_packet r)
      | n -> fail "bad packet_out payload flag %d" n
    in
    Packet_out { po_buffer_id; po_in_port; po_actions; po_packet }
  end
  else if typ = t_flow_mod then Flow_mod (get_flow_mod r)
  else if typ = t_port_mod then begin
    let pm_port_no = Buf.read_u16 r in
    let pm_no_flood = Buf.read_u8 r = 1 in
    Port_mod { pm_port_no; pm_no_flood }
  end
  else if typ = t_flow_removed then begin
    let fr_pattern = Ofp_match.decode r in
    let fr_cookie = Buf.read_u64 r in
    let fr_priority = Buf.read_u16 r in
    let fr_reason = flow_removed_reason_of_code (Buf.read_u8 r) in
    let fr_duration = Buf.read_u32 r in
    let fr_idle_timeout = Buf.read_u16 r in
    let fr_packet_count = Int64.to_int (Buf.read_u64 r) in
    let fr_byte_count = Int64.to_int (Buf.read_u64 r) in
    Flow_removed
      {
        fr_pattern;
        fr_cookie;
        fr_priority;
        fr_reason;
        fr_duration;
        fr_idle_timeout;
        fr_packet_count;
        fr_byte_count;
      }
  end
  else if typ = t_port_status then begin
    let reason =
      match Buf.read_u8 r with
      | 0 -> Message.Port_add
      | 1 -> Message.Port_delete
      | 2 -> Message.Port_modify
      | n -> fail "unknown port_status reason %d" n
    in
    let desc = get_port_desc r in
    Port_status (reason, desc)
  end
  else if typ = t_stats_request then Stats_request (get_stats_request r)
  else if typ = t_stats_reply then Stats_reply (get_stats_reply r)
  else if typ = t_barrier_request then Barrier_request
  else if typ = t_barrier_reply then Barrier_reply
  else if typ = t_error then begin
    let kind = error_kind_of_code (Buf.read_u16 r) in
    let msg = get_string r in
    Error (kind, msg)
  end
  else fail "unknown message type %d" typ

(* Append one frame at the writer's current position. The header length
   field is relative to the frame start, so frames embedded mid-buffer
   carry the same bytes a standalone [encode] would produce. *)
let encode_into w (m : Message.t) =
  let base = Buf.length w in
  Buf.u8 w version;
  Buf.u8 w (type_of_payload m.payload);
  Buf.u16 w 0 (* length, patched below *);
  Buf.u32 w m.xid;
  put_body w m.payload;
  Buf.patch_u16 w ~pos:(base + 2) (Buf.length w - base)

let encode (m : Message.t) =
  let w = Buf.writer ~capacity:128 () in
  encode_into w m;
  Buf.contents w

let decode_at r : Message.t =
  try
    let v = Buf.read_u8 r in
    if v <> version then fail "bad OpenFlow version %d" v;
    let typ = Buf.read_u8 r in
    let _len = Buf.read_u16 r in
    let xid = Buf.read_u32 r in
    let payload = get_body typ r in
    { xid; payload }
  with Buf.Underflow -> fail "truncated message"

let decode b = decode_at (Buf.reader b)

let encoded_size m = Bytes.length (encode m)
