(** Reliable southbound delivery over a lossy control channel.

    The channel model ({!Netsim.Channel}) may drop, duplicate or delay any
    control message. This layer restores exactly-once semantics for
    state-altering messages the way a real controller must: every
    [Flow_mod]/[Packet_out]/[Port_mod] is chased by a [Barrier_request]
    whose reply acknowledges everything before it; a missing ack triggers
    retransmission with exponential backoff; the switch suppresses
    duplicate applications by xid ({!Netsim.Sw}); and a switch that
    exhausts the retry budget is declared {e degraded} so transactions
    touching it abort cleanly instead of half-committing.

    The layer also keeps a per-switch {e shadow table} — the rules the
    controller intends the switch to hold. When a switch reconnects after
    a reboot (empty table) or a healed partition, {!observe} replays the
    shadow delta so the data plane converges back to intended state
    without waiting for fresh traffic. *)

open Openflow

type config = {
  enabled : bool;
      (** When [false] the layer is a transparent pass-through: intent is
          still recorded (so divergence can be measured) but nothing is
          acked, retransmitted or resynchronized. *)
  base_timeout : float;
      (** Virtual seconds before the first retransmission; attempt [n]
          waits [base_timeout * 2^n]. *)
  max_retries : int;
      (** Retransmissions per message before the switch is declared
          degraded. *)
}

val default_config : config
(** Enabled; 50 ms base timeout; 8 retries. *)

val backoff_delay : config -> int -> float
(** [backoff_delay cfg n] is how long a message waits after its [n]-th
    transmission: [base_timeout * 2^n]. Exposed so tests and checkers can
    state the schedule without re-deriving it. *)

val barrier_xid_base : int
(** First xid of the barrier range (1_000_000_000). Barrier xids live in
    their own range so they can never collide with NetLog's transaction
    xids; exposed so tests can forge barrier replies. *)

type health = Healthy | Degraded

type t

val create :
  ?config:config ->
  ?controller_id:int ->
  ?metrics:Metrics.t ->
  ?notify:(Obs.Hub.delivery -> unit) ->
  Netsim.Net.t ->
  t
(** Counters are mirrored into [metrics] when given. [notify] is invoked
    synchronously on every delivery-lifecycle step (sent, queued behind
    the head of line, retransmitted, acked, degraded, resynced) — the
    runtime routes it onto its {!Obs.Hub}. [controller_id] stamps every
    southbound send for the switches' master/slave role check
    ({!Netsim.Sw.set_master}). *)

val config : t -> config

val send : t -> Types.switch_id -> Message.t -> Message.t list
(** Transmit one controller-to-switch message; drop-in for [Net.send] (the
    intended use is [Netlog.create ~transport:(send t)]). State-altering
    messages are recorded in the shadow table and chased with a barrier;
    unacknowledged ones enter the retransmission queue. Delivery is FIFO
    per switch: while a message to a switch awaits its ack, later
    state-altering messages to the same switch are held back (returning
    no replies) so a retransmission can never overtake a logically later
    state change. Sends to a degraded switch are swallowed (intent
    recorded, nothing transmitted, no replies). *)

val tick : t -> unit
(** Retransmit every pending message whose backoff deadline has passed,
    against the network clock. Call once per scheduler step. *)

(** {1 Batched barrier coalescing}

    Between {!begin_batch} and {!end_batch}, a state-altering send whose
    channel is fault-free (no loss, no reply loss, no duplication, no
    delay, not partitioned) and whose delivery is verified on the switch
    skips its per-message barrier chase; {!end_batch} closes all such
    deferred messages with one barrier per touched switch (ascending
    switch order). On any other channel the send follows the exact
    sequential protocol — same bytes, same RNG draws, same pending-queue
    transitions — so batching is observationally invisible except for the
    number of barrier messages on fault-free channels. *)

val begin_batch : t -> unit
(** Enter batch mode. Idempotent; no effect if already in a batch. *)

val end_batch : t -> unit
(** Leave batch mode and settle every deferred message: one
    [Barrier_request] per touched switch acknowledges them all; any
    message the probe cannot confirm (switch vanished mid-batch) is
    handed to the ordinary retransmission queue. No-op outside a
    batch. *)

val observe : t -> Netsim.Net.notification -> unit
(** Feed every polled notification through here (before or after normal
    ingestion — the layer only reads). Barrier replies acknowledge pending
    messages; [Switch_connected] triggers resynchronization. *)

val health : t -> Types.switch_id -> health
val is_degraded : t -> Types.switch_id -> bool

val pending_count : t -> int
(** Messages awaiting acknowledgement (drain loops poll this). *)

val shadow : t -> Types.switch_id -> Netsim.Flow_table.t option
(** The intended rule set for one switch, if any intent was recorded. *)

val export_shadows : t -> (Types.switch_id * Netsim.Flow_entry.t list) list
(** All shadow tables as entry lists, sorted by switch id — the portable
    form replica state transfer ships to a standby controller. *)

val import_shadows :
  t -> (Types.switch_id * Netsim.Flow_entry.t list) list -> unit
(** Replace the shadow tables wholesale with a previously exported set. A
    fail-over controller calls this before serving traffic so resync and
    {!divergence} reason about the rules its predecessor installed. *)

val export_pending : t -> (Types.switch_id * Message.t) list
(** The un-acked send queue in FIFO order — commands whose wire delivery
    is still outstanding. Ships with replica state transfer: a command
    can be held back or awaiting retransmission long after the log entry
    that produced it was snapshotted, and a successor without the queue
    would lose it forever. *)

val import_pending : t -> (Types.switch_id * Message.t) list -> unit
(** Replace the un-acked queue with a previously exported one. Each
    message is re-injected un-sent with its original xid, so switch-side
    dedup suppresses replays of copies that did arrive. *)

val divergence : t -> int
(** Rules present in exactly one of (shadow, actual) summed over switches
    with recorded intent — 0 when the data plane matches controller
    intent. Compares (pattern, priority, actions); timeout-expired rules
    count as divergence, so measure with permanent rules. *)

(** {1 Lifetime counters} *)

val retransmits : t -> int
val acks : t -> int
val resyncs : t -> int
val resynced_rules : t -> int
val degraded_count : t -> int
(** Times any switch was declared degraded. *)
