type t = {
  in_port : Types.port_no option;
  dl_src : Types.mac option;
  dl_dst : Types.mac option;
  dl_vlan : int option option;
  dl_type : int option;
  nw_src : Types.ip option;
  nw_dst : Types.ip option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

let any =
  {
    in_port = None;
    dl_src = None;
    dl_dst = None;
    dl_vlan = None;
    dl_type = None;
    nw_src = None;
    nw_dst = None;
    nw_proto = None;
    nw_tos = None;
    tp_src = None;
    tp_dst = None;
  }

let make ?in_port ?dl_src ?dl_dst ?dl_vlan ?dl_type ?nw_src ?nw_dst ?nw_proto
    ?nw_tos ?tp_src ?tp_dst () =
  {
    in_port;
    dl_src;
    dl_dst;
    dl_vlan;
    dl_type;
    nw_src;
    nw_dst;
    nw_proto;
    nw_tos;
    tp_src;
    tp_dst;
  }

let exact ~in_port (p : Packet.t) =
  {
    in_port = Some in_port;
    dl_src = Some p.dl_src;
    dl_dst = Some p.dl_dst;
    dl_vlan = Some p.dl_vlan;
    dl_type = Some p.dl_type;
    nw_src = Some p.nw_src;
    nw_dst = Some p.nw_dst;
    nw_proto = Some p.nw_proto;
    nw_tos = Some p.nw_tos;
    tp_src = Some p.tp_src;
    tp_dst = Some p.tp_dst;
  }

(* FNV-1a over the fields, same constants as [Checkpoint]'s chunk digest.
   Every field is an int under the type aliases, so folding (presence tag,
   value) pairs is a canonical serialization: two structurally-equal matches
   always fold the same stream. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 m =
  let h = ref fnv_offset in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) fnv_prime in
  let field = function
    | None -> mix 0
    | Some v ->
        mix 1;
        mix v
  in
  field m.in_port;
  field m.dl_src;
  field m.dl_dst;
  (match m.dl_vlan with
  | None -> mix 0
  | Some None ->
      mix 1;
      mix (-1)
  | Some (Some vid) ->
      mix 2;
      mix vid);
  field m.dl_type;
  field m.nw_src;
  field m.nw_dst;
  field m.nw_proto;
  field m.nw_tos;
  field m.tp_src;
  field m.tp_dst;
  !h

let hash m = Int64.to_int (hash64 m) land max_int

let field_ok pattern value =
  match pattern with None -> true | Some v -> v = value

let matches m ~in_port (p : Packet.t) =
  field_ok m.in_port in_port
  && field_ok m.dl_src p.dl_src
  && field_ok m.dl_dst p.dl_dst
  && field_ok m.dl_vlan p.dl_vlan
  && field_ok m.dl_type p.dl_type
  && field_ok m.nw_src p.nw_src
  && field_ok m.nw_dst p.nw_dst
  && field_ok m.nw_proto p.nw_proto
  && field_ok m.nw_tos p.nw_tos
  && field_ok m.tp_src p.tp_src
  && field_ok m.tp_dst p.tp_dst

(* [wider pat sub]: pattern field [pat] covers everything [sub] covers. *)
let wider pat sub =
  match (pat, sub) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> a = b

let subsumes pat m =
  pat == m
  || wider pat.in_port m.in_port
  && wider pat.dl_src m.dl_src
  && wider pat.dl_dst m.dl_dst
  && wider pat.dl_vlan m.dl_vlan
  && wider pat.dl_type m.dl_type
  && wider pat.nw_src m.nw_src
  && wider pat.nw_dst m.nw_dst
  && wider pat.nw_proto m.nw_proto
  && wider pat.nw_tos m.nw_tos
  && wider pat.tp_src m.tp_src
  && wider pat.tp_dst m.tp_dst

let compatible a b =
  match (a, b) with Some x, Some y -> x = y | _ -> true

let overlaps a b =
  compatible a.in_port b.in_port
  && compatible a.dl_src b.dl_src
  && compatible a.dl_dst b.dl_dst
  && compatible a.dl_vlan b.dl_vlan
  && compatible a.dl_type b.dl_type
  && compatible a.nw_src b.nw_src
  && compatible a.nw_dst b.nw_dst
  && compatible a.nw_proto b.nw_proto
  && compatible a.nw_tos b.nw_tos
  && compatible a.tp_src b.tp_src
  && compatible a.tp_dst b.tp_dst

let wildcard_count m =
  let w = function None -> 1 | Some _ -> 0 in
  w m.in_port + w m.dl_src + w m.dl_dst + w m.dl_vlan + w m.dl_type
  + w m.nw_src + w m.nw_dst + w m.nw_proto + w m.nw_tos + w m.tp_src
  + w m.tp_dst

(* Interned patterns make the pointer-equality fast path hit on the hot
   subsume/lookup loops; the structural fallback keeps un-interned values
   (codec output, probe keys) fully interoperable. *)
let equal a b = a == b || a = b
let compare = Stdlib.compare

let pp fmt m =
  let any_field = ref true in
  let field name pp_v = function
    | None -> ()
    | Some v ->
        if not !any_field then Format.pp_print_string fmt ",";
        any_field := false;
        Format.fprintf fmt "%s=%a" name pp_v v
  in
  let pp_int f v = Format.pp_print_int f v in
  let pp_vlan f = function
    | None -> Format.pp_print_string f "untagged"
    | Some vid -> Format.pp_print_int f vid
  in
  Format.pp_print_string fmt "{";
  field "in_port" Types.pp_port m.in_port;
  field "dl_src" Types.pp_mac m.dl_src;
  field "dl_dst" Types.pp_mac m.dl_dst;
  field "dl_vlan" pp_vlan m.dl_vlan;
  field "dl_type" (fun f v -> Format.fprintf f "0x%04x" v) m.dl_type;
  field "nw_src" Types.pp_ip m.nw_src;
  field "nw_dst" Types.pp_ip m.nw_dst;
  field "nw_proto" pp_int m.nw_proto;
  field "nw_tos" pp_int m.nw_tos;
  field "tp_src" pp_int m.tp_src;
  field "tp_dst" pp_int m.tp_dst;
  if !any_field then Format.pp_print_string fmt "*";
  Format.pp_print_string fmt "}"

(* Wire layout: a wildcard bitmap followed by all field values (zero when
   wildcarded), mirroring the fixed-size OF 1.0 ofp_match struct. Bit i set
   in the bitmap means field i is WILDCARDED, as in the spec. *)

let bit_in_port = 1 lsl 0
let bit_dl_src = 1 lsl 1
let bit_dl_dst = 1 lsl 2
let bit_dl_vlan = 1 lsl 3
let bit_dl_type = 1 lsl 4
let bit_nw_src = 1 lsl 5
let bit_nw_dst = 1 lsl 6
let bit_nw_proto = 1 lsl 7
let bit_nw_tos = 1 lsl 8
let bit_tp_src = 1 lsl 9
let bit_tp_dst = 1 lsl 10

(* dl_vlan encodes [Some None] (explicitly untagged) as 0xffff, like the
   OFP_VLAN_NONE sentinel. *)
let vlan_none_sentinel = 0xffff

let encode w m =
  let wild = ref 0 in
  let mark bit = function None -> wild := !wild lor bit | Some _ -> () in
  mark bit_in_port m.in_port;
  mark bit_dl_src m.dl_src;
  mark bit_dl_dst m.dl_dst;
  mark bit_dl_vlan m.dl_vlan;
  mark bit_dl_type m.dl_type;
  mark bit_nw_src m.nw_src;
  mark bit_nw_dst m.nw_dst;
  mark bit_nw_proto m.nw_proto;
  mark bit_nw_tos m.nw_tos;
  mark bit_tp_src m.tp_src;
  mark bit_tp_dst m.tp_dst;
  Buf.u32 w !wild;
  Buf.u16 w (Option.value m.in_port ~default:0);
  Buf.u48 w (Option.value m.dl_src ~default:0);
  Buf.u48 w (Option.value m.dl_dst ~default:0);
  (let vlan =
     match m.dl_vlan with
     | None | Some None -> vlan_none_sentinel
     | Some (Some vid) -> vid
   in
   Buf.u16 w vlan);
  Buf.u16 w (Option.value m.dl_type ~default:0);
  Buf.u32 w (Option.value m.nw_src ~default:0);
  Buf.u32 w (Option.value m.nw_dst ~default:0);
  Buf.u8 w (Option.value m.nw_proto ~default:0);
  Buf.u8 w (Option.value m.nw_tos ~default:0);
  Buf.u16 w (Option.value m.tp_src ~default:0);
  Buf.u16 w (Option.value m.tp_dst ~default:0)

let decode r =
  let wild = Buf.read_u32 r in
  let keep bit v = if wild land bit <> 0 then None else Some v in
  let in_port = keep bit_in_port (Buf.read_u16 r) in
  let dl_src = keep bit_dl_src (Buf.read_u48 r) in
  let dl_dst = keep bit_dl_dst (Buf.read_u48 r) in
  let raw_vlan = Buf.read_u16 r in
  let dl_vlan =
    if wild land bit_dl_vlan <> 0 then None
    else if raw_vlan = vlan_none_sentinel then Some None
    else Some (Some raw_vlan)
  in
  let dl_type = keep bit_dl_type (Buf.read_u16 r) in
  let nw_src = keep bit_nw_src (Buf.read_u32 r) in
  let nw_dst = keep bit_nw_dst (Buf.read_u32 r) in
  let nw_proto = keep bit_nw_proto (Buf.read_u8 r) in
  let nw_tos = keep bit_nw_tos (Buf.read_u8 r) in
  let tp_src = keep bit_tp_src (Buf.read_u16 r) in
  let tp_dst = keep bit_tp_dst (Buf.read_u16 r) in
  {
    in_port;
    dl_src;
    dl_dst;
    dl_vlan;
    dl_type;
    nw_src;
    nw_dst;
    nw_proto;
    nw_tos;
    tp_src;
    tp_dst;
  }

(* --- Hash-consing -------------------------------------------------------

   A fabric of ~1k switches stores the same handful of wildcard patterns in
   every flow table; interning collapses those copies to one block each.
   The pool is a hashed weak set so patterns dropped from every table are
   reclaimed by the GC — live-heap measurements stay honest. Interning can
   be switched off to build non-interned baselines for benches and
   differential tests. *)

module Pool = Weak.Make (struct
  type nonrec t = t

  let equal a b = a == b || a = b
  let hash = hash
end)

let pool = Pool.create 4096
let interning = ref true
let intern_hits = ref 0
let intern_inserts = ref 0

let set_interning on = interning := on
let interning_enabled () = !interning

let intern m =
  if not !interning then m
  else
    match Pool.find_opt pool m with
    | Some shared ->
        incr intern_hits;
        shared
    | None ->
        Pool.add pool m;
        incr intern_inserts;
        m

type intern_stats = { hits : int; inserts : int; live : int }

let intern_stats () =
  { hits = !intern_hits; inserts = !intern_inserts; live = Pool.count pool }

let reset_intern_stats () =
  intern_hits := 0;
  intern_inserts := 0
