open Openflow
open Controller

type config = {
  policy : Recovery_policy.t;
  invariants : Invariants.Checker.invariant list;
  timing : Detector.timing;
  limits : Resources.limits;
  quarantine : Quarantine.t option;
  intent : bool;
      (* When on, apps that declare a policy get (a) their compiled tables
         kept in sync with the network after healthy deliveries and (b) a
         policy-derived candidate rule-set tried first under an Equivalence
         compromise — installed only if it provably preserves the declared
         forwarding relation and the configured invariants. *)
  batched_checkpoints : bool;
      (* The batch engine checkpoints every sandbox at batch entry and
         journals within the batch; the per-event prepare here is then
         redundant work, not a correctness requirement (recovery replays
         the intra-batch journal under the same frozen context the events
         were first delivered with). *)
}

let default_config =
  {
    policy = Recovery_policy.uniform Recovery_policy.Equivalence;
    invariants = Invariants.Checker.default;
    timing = Detector.default_timing;
    limits = Resources.unlimited;
    quarantine = None;
    intent = true;
    batched_checkpoints = false;
  }

type deps = {
  engine : Txn_engine.t;
  incremental : Invariants.Incremental.t option;
  net : Netsim.Net.t;
  context : unit -> App_sig.context;
  links_of : Types.switch_id -> Event.link list;
  metrics : Metrics.t;
  tickets : Ticket.store;
  now : unit -> float;
  enqueue_reply : string -> Event.t -> unit;
  unreachable : Types.switch_id -> bool;
  tracer : Obs.Tracer.t;
}

let file_ticket deps sandbox ~event ~diagnosis ~resolution ~rolled_back =
  ignore
    (Ticket.file deps.tickets ~now:(deps.now ()) ~app:(Sandbox.name sandbox)
       ~event ~diagnosis ~resolution ~rolled_back_ops:rolled_back ())

let count_failure deps = function
  | Detector.Fail_stop _ -> Metrics.incr_crash deps.metrics
  | Detector.Hang -> Metrics.incr_hang deps.metrics
  | Detector.Byzantine _ -> Metrics.incr_byzantine deps.metrics
  | Detector.Unreachable _ -> Metrics.incr_unreachable deps.metrics

let failure_kind = function
  | Detector.Fail_stop _ -> "fail-stop"
  | Detector.Hang -> "hang"
  | Detector.Byzantine _ -> "byzantine"
  | Detector.Unreachable _ -> "unreachable"

(* Reply events (statistics) produced while applying commands go back to the
   issuing application as ordinary events. *)
let route_replies deps sandbox sid replies =
  List.iter
    (fun (reply : Message.t) ->
      match reply.payload with
      | Message.Stats_reply sr ->
          deps.enqueue_reply (Sandbox.name sandbox)
            (Event.Stats_reply (sid, reply.xid, sr))
      | Message.Flow_removed fr ->
          deps.enqueue_reply (Sandbox.name sandbox) (Event.Flow_removed (sid, fr))
      | _ -> ())
    replies

let switch_of_command = function
  | Command.Flow (sid, _) | Command.Packet (sid, _) | Command.Port (sid, _)
  | Command.Stats (sid, _) ->
      Some sid
  | Command.Log _ -> None

(* ---------------- declarative intent ---------------- *)

(* Recompile the app's declared policy against the current network view and
   diff it against what the network holds. The candidate diff is installed
   only after two independent checks: the compiled tables must agree with
   the policy's denotation on a probe set covering every rule (forwarding
   relation preserved), and the flow-mods must not introduce an invariant
   violation (incremental engine when available). *)
let sync_intent config deps sandbox =
  if not config.intent then `No_intent
  else
    let ctx = deps.context () in
    match Sandbox.declared_policy sandbox ctx with
    | None -> `No_intent
    | Some pol -> (
        let switches = App_sig.switches ctx in
        match Policy.compile ~switches pol with
        | exception Policy.Uncompilable _ -> `Rejected
        | tables -> (
            let mods =
              Policy.flow_mods ~prev:(Sandbox.intent_tables sandbox)
                ~next:tables
              (* Tables are declarative, idempotent state, so mods aimed at
                 switches that left the network (or whose channel is given
                 up on) are simply dropped — typically strict deletes for a
                 dead switch's rows, moot because its table died with it.
                 Unlike an app transaction there is no atomicity to lose:
                 the next reconciliation re-derives whatever remains. *)
              |> List.filter (fun (sid, _) ->
                     List.mem sid switches && not (deps.unreachable sid))
            in
            if mods = [] then begin
              (* Network already reflects the intent (or intent is empty). *)
              Sandbox.set_intent_tables sandbox tables;
              `Noop
            end
            else
              let ports sid = App_sig.switch_ports ctx sid in
              let probes = Policy.probes ~ports tables in
              if not (Policy.agrees ~ports ~switches pol tables ~probes) then
                `Rejected
              else
                let violations =
                  match deps.incremental with
                  | Some engine ->
                      Invariants.Incremental.check_flow_mods
                        ~invariants:config.invariants engine mods
                  | None ->
                      Invariants.Checker.check_flow_mods
                        ~invariants:config.invariants
                        (Invariants.Snapshot.of_net deps.net)
                        mods
                in
                match violations with
                | _ :: _ -> `Rejected
                | [] ->
                    let txn =
                      deps.engine.Txn_engine.begin_txn
                        ~app:(Sandbox.name sandbox)
                    in
                    List.iter
                      (fun (sid, fm) ->
                        ignore (txn.Txn_engine.apply (Command.Flow (sid, fm))))
                      mods;
                    txn.Txn_engine.commit ();
                    Sandbox.set_intent_tables sandbox tables;
                    `Installed (List.length mods)))

(* After a healthy commit: if the delivery moved the app's declared intent,
   push the (verified) diff out so hardware tracks intent continuously. *)
let reconcile_intent config deps sandbox =
  match sync_intent config deps sandbox with
  | `Installed _ -> Metrics.incr_policy_reconcile deps.metrics
  | `Rejected -> Metrics.incr_policy_rejected deps.metrics
  | `Noop | `No_intent -> ()

(* Deliver one event inside a fresh transaction. Returns [Ok ()] on commit,
   [Error (failure, rolled_back)] after an abort. The sandbox state has
   already been repaired (restore + replay) when [Error] is returned. *)
let attempt config deps sandbox event : (unit, Detector.failure * int) result =
  if not config.batched_checkpoints then Sandbox.prepare ~tracer:deps.tracer sandbox;
  let txn = deps.engine.Txn_engine.begin_txn ~app:(Sandbox.name sandbox) in
  let fail_and_recover failure ~partial =
    let attrs =
      if Obs.Tracer.enabled deps.tracer then
        [ ("phase", "replay"); ("failure", failure_kind failure) ]
      else []
    in
    Obs.Tracer.with_span deps.tracer ~attrs Obs.Span.Recovery (fun () ->
        (* Partial output escaped before the crash: it reached the network,
           so it must be in the transaction to be rolled back with it. *)
        List.iter (fun cmd -> ignore (txn.Txn_engine.apply cmd)) partial;
        let rolled_back = List.length (txn.Txn_engine.issued ()) in
        txn.Txn_engine.abort ();
        count_failure deps failure;
        Metrics.add_app_downtime deps.metrics ~app:(Sandbox.name sandbox)
          (Detector.detection_delay config.timing failure);
        let recovery = Sandbox.recover ~tracer:deps.tracer sandbox (deps.context ()) in
        Metrics.incr_replayed deps.metrics recovery.Sandbox.replayed;
        Metrics.incr_dropped_in_replay deps.metrics
          recovery.Sandbox.dropped_in_replay;
        Error (failure, rolled_back))
  in
  let verdict =
    let attrs =
      if Obs.Tracer.enabled deps.tracer then
        [ ("app", Sandbox.name sandbox) ]
      else []
    in
    Obs.Tracer.with_span deps.tracer ~attrs Obs.Span.App_handle (fun () ->
        Sandbox.deliver sandbox (deps.context ()) event)
  in
  match verdict with
  | Sandbox.Done commands -> (
      (* Screen before commit: resource limits, then byzantine output. *)
      let breaches =
        Resources.check config.limits
          ~state_bytes:(fun () -> Sandbox.state_size sandbox)
          ~commands_emitted:(List.length commands)
      in
      if breaches <> [] then begin
        txn.Txn_engine.abort ();
        Sandbox.revert_last sandbox;
        Metrics.incr_resource_breach deps.metrics;
        file_ticket deps sandbox ~event
          ~diagnosis:
            (String.concat "; " (List.map Resources.describe breaches))
          ~resolution:Ticket.Blocked ~rolled_back:0;
        (* Contain the rogue app: restart it with fresh state. *)
        Sandbox.reboot sandbox;
        Sandbox.checkpoint_now sandbox;
        Ok ()
      end
      else
        match
          Detector.check_byzantine ~tracer:deps.tracer
            ?engine:deps.incremental ~invariants:config.invariants deps.net
            commands
        with
        | Some failure ->
            txn.Txn_engine.abort ();
            Sandbox.revert_last sandbox;
            count_failure deps failure;
            Error (failure, 0)
        | None ->
        (* Screen for dead control channels: a transaction that would touch
           a switch the reliable layer has given up on must abort before
           anything reaches the network, or it can never fully commit. *)
        match
          List.find_map
            (fun cmd ->
              match switch_of_command cmd with
              | Some sid when deps.unreachable sid -> Some sid
              | Some _ | None -> None)
            commands
        with
        | Some sid ->
            let failure = Detector.Unreachable { switch = sid } in
            txn.Txn_engine.abort ();
            Sandbox.revert_last sandbox;
            count_failure deps failure;
            Error (failure, 0)
        | None ->
            let attrs =
              if Obs.Tracer.enabled deps.tracer then
                [
                  ("app", Sandbox.name sandbox);
                  ("commands", string_of_int (List.length commands));
                ]
              else []
            in
            Obs.Tracer.with_span deps.tracer ~attrs Obs.Span.Txn_commit
              (fun () ->
                List.iter
                  (fun cmd ->
                    let replies = txn.Txn_engine.apply cmd in
                    match switch_of_command cmd with
                    | Some sid -> route_replies deps sandbox sid replies
                    | None -> ())
                  commands;
                txn.Txn_engine.commit ());
            Sandbox.confirm sandbox event;
            reconcile_intent config deps sandbox;
            Ok ())
  | Sandbox.Crashed { partial; detail } ->
      fail_and_recover (Detector.Fail_stop { detail; partial }) ~partial
  | Sandbox.Hung -> fail_and_recover Detector.Hang ~partial:[]

(* Try the equivalence alternatives in order; an alternative succeeds when
   every event in its sequence commits. No second-level transformation: a
   crash inside an alternative falls through to the next one. *)
let rec try_alternatives config deps sandbox = function
  | [] -> None
  | alternative :: rest ->
      let ok =
        List.for_all
          (fun ev ->
            match attempt config deps sandbox ev with
            | Ok () -> true
            | Error _ -> false)
          alternative
      in
      if ok then Some alternative
      else try_alternatives config deps sandbox rest

let compromise_name = function
  | Recovery_policy.No_compromise -> "no-compromise"
  | Recovery_policy.Absolute -> "absolute"
  | Recovery_policy.Equivalence -> "equivalence"

let apply_policy config deps sandbox event failure ~rolled_back =
  let diagnosis = Detector.describe failure in
  let compromise =
    Recovery_policy.decide config.policy ~app:(Sandbox.name sandbox)
      (Event.kind_of event)
  in
  let attrs =
    if Obs.Tracer.enabled deps.tracer then
      [
        ("phase", "policy");
        ("failure", failure_kind failure);
        ("compromise", compromise_name compromise);
      ]
    else []
  in
  Obs.Tracer.with_span deps.tracer ~attrs Obs.Span.Recovery @@ fun () ->
  match compromise with
  | Recovery_policy.No_compromise ->
      Sandbox.disable sandbox;
      Metrics.incr_disabled deps.metrics;
      Metrics.mark_app_down_from deps.metrics ~app:(Sandbox.name sandbox)
        (deps.now ());
      file_ticket deps sandbox ~event ~diagnosis ~resolution:Ticket.Disabled
        ~rolled_back
  | Recovery_policy.Absolute ->
      Metrics.incr_ignored deps.metrics;
      file_ticket deps sandbox ~event ~diagnosis ~resolution:Ticket.Ignored
        ~rolled_back
  | Recovery_policy.Equivalence -> (
      (* A declared policy is the strongest equivalence witness we have:
         recompile the intent from the recovered state and install the
         verified diff, compensating for the crashed delivery without
         replaying anything through the faulty code path. *)
      match sync_intent config deps sandbox with
      | `Installed n ->
          Metrics.incr_policy_compromise deps.metrics;
          Metrics.incr_transformed deps.metrics;
          file_ticket deps sandbox ~event ~diagnosis
            ~resolution:
              (Ticket.Transformed
                 (Printf.sprintf "policy-recompile(%s, %d flow-mods)"
                    (Sandbox.name sandbox) n))
            ~rolled_back
      | (`Rejected | `Noop | `No_intent) as r -> (
          if r = `Rejected then Metrics.incr_policy_rejected deps.metrics;
          (* Fall back to hand-coded event transformations. *)
          let alternatives =
            Transform.equivalents ~links_of:deps.links_of event
          in
          match try_alternatives config deps sandbox alternatives with
          | Some alternative ->
              Metrics.incr_transformed deps.metrics;
              file_ticket deps sandbox ~event ~diagnosis
                ~resolution:
                  (Ticket.Transformed (Transform.describe alternative))
                ~rolled_back
          | None ->
              (* No equivalent worked: fall back to ignoring the event. *)
              Metrics.incr_ignored deps.metrics;
              file_ticket deps sandbox ~event ~diagnosis
                ~resolution:Ticket.Ignored ~rolled_back))

let quarantine_blocked config deps sandbox event =
  match config.quarantine with
  | None -> false
  | Some q ->
      let hit = Quarantine.blocked q ~app:(Sandbox.name sandbox) event in
      if hit then Metrics.incr_suppressed deps.metrics;
      hit

let note_quarantine config deps sandbox event =
  match config.quarantine with
  | None -> ()
  | Some q -> (
      match Quarantine.note_failure q ~app:(Sandbox.name sandbox) event with
      | `Quarantined -> Metrics.incr_quarantined deps.metrics
      | `Recorded -> ())

let dispatch config deps sandbox event =
  if
    Sandbox.alive sandbox
    && Sandbox.subscribes_to sandbox (Event.kind_of event)
    && not (quarantine_blocked config deps sandbox event)
  then
    match attempt config deps sandbox event with
    | Ok () -> ()
    | Error (failure, rolled_back) ->
        note_quarantine config deps sandbox event;
        apply_policy config deps sandbox event failure ~rolled_back
