lib/core/sandbox.mli: App_sig Checkpoint Command Controller Event
