module App_sig = Controller.App_sig
open Openflow
open Netsim
module Quarantine = Legosdn.Quarantine
module Runtime = Legosdn.Runtime
module Crashpad = Legosdn.Crashpad
module Recovery_policy = Legosdn.Recovery_policy
module Metrics = Legosdn.Metrics
module Sandbox = Legosdn.Sandbox
module Event = Controller.Event

let packet_in ?(dport = 80) src dst =
  Event.Packet_in
    ( 1,
      {
        Message.pi_buffer_id = None;
        pi_in_port = 100;
        pi_reason = Message.No_match;
        pi_packet = Packet.tcp ~src_host:src ~dst_host:dst ~dport ();
      } )

let test_threshold_quarantines () =
  let q = Quarantine.create ~threshold:2 () in
  let ev = packet_in 1 2 in
  T_util.checkb "clean initially" false (Quarantine.blocked q ~app:"a" ev);
  T_util.checkb "first failure recorded" true
    (Quarantine.note_failure q ~app:"a" ev = `Recorded);
  T_util.checkb "second failure quarantines" true
    (Quarantine.note_failure q ~app:"a" ev = `Quarantined);
  T_util.checkb "now blocked" true (Quarantine.blocked q ~app:"a" ev);
  T_util.checkb "other apps unaffected" false (Quarantine.blocked q ~app:"b" ev);
  T_util.checkb "other events unaffected" false
    (Quarantine.blocked q ~app:"a" (packet_in 2 1))

let test_counts () =
  let q = Quarantine.create ~threshold:1 () in
  ignore (Quarantine.note_failure q ~app:"a" (packet_in 1 2));
  ignore (Quarantine.note_failure q ~app:"a" (packet_in 2 1));
  ignore (Quarantine.note_failure q ~app:"b" (packet_in 1 2));
  T_util.checki "three signatures quarantined" 3 (Quarantine.total_quarantined q);
  T_util.checki "two for app a" 2 (List.length (Quarantine.quarantined q ~app:"a"))

let test_invalid_threshold () =
  Alcotest.check_raises "threshold 0 rejected"
    (Invalid_argument "Quarantine.create: threshold must be >= 1") (fun () ->
      ignore (Quarantine.create ~threshold:0 ()))

let test_deep_analyze_quarantines_causal_set () =
  let module Cumulative = struct
    type state = { saw80 : bool; saw443 : bool }

    let name = "cumulative"
    let subscriptions = [ Event.K_packet_in ]
    let init () = { saw80 = false; saw443 = false }

    let handle _ st = function
      | Event.Packet_in (_, pi) ->
          let st =
            match pi.Message.pi_packet.Packet.tp_dst with
            | 80 -> { st with saw80 = true }
            | 443 -> { st with saw443 = true }
            | _ -> st
          in
          if st.saw80 && st.saw443 then failwith "cumulative";
          (st, [])
      | _ -> (st, [])
  end in
  let q = Quarantine.create () in
  let history =
    [ packet_in ~dport:22 1 2; packet_in ~dport:80 1 2; packet_in ~dport:443 1 2 ]
  in
  let minimal, calls =
    Quarantine.deep_analyze q ~app:"cumulative" (module Cumulative)
      T_util.null_context ~history
  in
  T_util.checki "two causal events found" 2 (List.length minimal);
  T_util.checkb "oracle was consulted" true (calls > 0);
  List.iter
    (fun ev ->
      T_util.checkb "causal event quarantined" true
        (Quarantine.blocked q ~app:"cumulative" ev))
    minimal;
  T_util.checkb "innocent event untouched" false
    (Quarantine.blocked q ~app:"cumulative" (packet_in ~dport:22 1 2))

let test_deep_analyze_benign_history () =
  let q = Quarantine.create () in
  let minimal, calls =
    Quarantine.deep_analyze q ~app:"learning_switch"
      (module Apps.Learning_switch : Controller.App_sig.APP) T_util.null_context
      ~history:[ packet_in 1 2 ]
  in
  T_util.checki "nothing found" 0 (List.length minimal);
  T_util.checki "no oracle effort" 0 calls

(* End to end: a deterministic bug that re-fires on the same event stops
   churning once the signature is quarantined. *)
let test_runtime_integration () =
  let q = Quarantine.create ~threshold:2 () in
  let config =
    {
      Runtime.default_config with
      Runtime.crashpad =
        {
          Crashpad.default_config with
          Crashpad.policy = Recovery_policy.uniform Recovery_policy.Absolute;
          Crashpad.quarantine = Some q;
        };
    }
  in
  let bug = Apps.Bug_model.make (Apps.Bug_model.On_tp_dst 6666) Apps.Bug_model.Crash in
  let net = Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2) in
  let rt = Runtime.create ~config net [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.step rt;
  let poisoned = packet_in ~dport:6666 1 2 in
  for _ = 1 to 6 do
    Runtime.dispatch_event rt poisoned
  done;
  let m = Runtime.metrics rt in
  (* Crashes stop at the threshold; the remaining four deliveries are
     suppressed without ever reaching the app. *)
  T_util.checki "crash churn capped at threshold" 2 (Metrics.crashes m);
  T_util.checki "signature quarantined once" 1 (Metrics.quarantined m);
  T_util.checki "subsequent deliveries suppressed" 4 (Metrics.suppressed m);
  (* Healthy traffic still flows to the app. *)
  Runtime.dispatch_event rt (packet_in 1 2);
  let box = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "app still serving" true (Sandbox.events_handled box > 0)

let suite =
  [
    Alcotest.test_case "threshold quarantines" `Quick test_threshold_quarantines;
    Alcotest.test_case "counting" `Quick test_counts;
    Alcotest.test_case "invalid threshold" `Quick test_invalid_threshold;
    Alcotest.test_case "deep analyze finds causal set" `Quick
      test_deep_analyze_quarantines_causal_set;
    Alcotest.test_case "deep analyze on benign history" `Quick
      test_deep_analyze_benign_history;
    Alcotest.test_case "runtime integration stops churn" `Quick test_runtime_integration;
  ]
