lib/apps/faulty.ml: Action Bug_model Controller List Message Ofp_match Openflow Option Packet String
