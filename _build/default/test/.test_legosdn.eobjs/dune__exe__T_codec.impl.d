test/t_codec.ml: Action Alcotest Bytes Char Codec Message Ofp_match Openflow Packet QCheck2 QCheck_alcotest T_util Types
