(** The application registry: every bundled application by name.

    One place for tools (CLI, experiments, scenario builders) to resolve
    application names, instead of each keeping its own list. *)

val all : (string * Controller.App_sig.app) list
(** (name, module) for every bundled application, in a stable order. *)

val names : string list

val find : string -> Controller.App_sig.app option
(** Resolve by registered name. *)

val table2 : (string * string * string) list
(** The Table-2 survey rows: (name, developer, purpose). *)
