lib/workload/trace_io.ml: Buffer Bytes Char Controller Legosdn List String
