(** Commands an SDN application issues back to the controller.

    Each command maps to one controller-to-switch OpenFlow message; this is
    the unit NetLog logs, inverts and rolls back. *)

open Openflow

type t =
  | Flow of Types.switch_id * Message.flow_mod
  | Packet of Types.switch_id * Message.packet_out
  | Port of Types.switch_id * Message.port_mod
      (** Port configuration (OFPPC_NO_FLOOD) — how a spanning-tree app
          prunes flooding. *)
  | Stats of Types.switch_id * Message.stats_request
  | Log of string  (** Free-form note; no network effect. *)

val to_message : xid:Types.xid -> t -> (Types.switch_id * Message.t) option
(** The wire message a command becomes; [None] for [Log]. *)

val install :
  ?idle_timeout:int ->
  ?hard_timeout:int ->
  ?priority:int ->
  ?notify_when_removed:bool ->
  Types.switch_id ->
  Ofp_match.t ->
  Action.t list ->
  t
(** Shorthand for a [Flow] add. *)

val uninstall : ?strict:bool -> ?priority:int -> Types.switch_id
  -> Ofp_match.t -> t

val set_no_flood : Types.switch_id -> Types.port_no -> bool -> t
(** Shorthand for a [Port] command setting OFPPC_NO_FLOOD. *)

val packet_out :
  ?buffer_id:int ->
  ?in_port:Types.port_no ->
  Types.switch_id ->
  Action.t list ->
  Packet.t option ->
  t

val is_state_altering : t -> bool
(** Commands NetLog must be able to undo or compensate. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
