lib/workload/bug_corpus.ml: Apps Controller List
