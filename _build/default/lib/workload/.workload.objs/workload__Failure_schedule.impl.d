lib/workload/failure_schedule.ml: Array List Netsim Random
