(* Direct unit tests for the Reliable layer: the exponential-backoff
   schedule, the two-sided acknowledgement rule (barrier reply AND
   per-xid receive record), and the degraded → half-open → healed
   circuit breaker. t_channel/t_resync cover it end-to-end; these pin the
   mechanism itself. *)

open Openflow
open Netsim
module Reliable = Legosdn.Reliable

let flow_msg ~xid =
  Message.message ~xid
    (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output 2 ]))

let fresh ?config () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  (clock, net, Reliable.create ?config net)

(* ---- backoff schedule ---- *)

let test_backoff_schedule_values () =
  let cfg = Reliable.default_config in
  List.iteri
    (fun n expected ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "delay after attempt %d" n)
        expected
        (Reliable.backoff_delay cfg n))
    [ 0.05; 0.1; 0.2; 0.4; 0.8 ];
  let custom = { cfg with Reliable.base_timeout = 0.3 } in
  Alcotest.(check (float 1e-12)) "scales with base" 1.2
    (Reliable.backoff_delay custom 2)

let test_backoff_schedule_drives_retransmission () =
  let config =
    { Reliable.default_config with Reliable.base_timeout = 0.1 }
  in
  let clock, net, rel = fresh ~config () in
  Channel.set_loss (Net.channel net 1) 1.0;
  ignore (Reliable.send rel 1 (flow_msg ~xid:7));
  T_util.checki "queued, not retransmitted yet" 0 (Reliable.retransmits rel);
  (* The n-th retransmission waits base * 2^n after the previous
     transmission. Probe each deadline from both sides, using relative
     advances with a margin well above float noise. *)
  for n = 0 to 3 do
    let delay = Reliable.backoff_delay config n in
    Clock.advance_by clock (delay -. 0.004);
    Reliable.tick rel;
    T_util.checki
      (Printf.sprintf "still %d just before deadline %d" n n)
      n (Reliable.retransmits rel);
    Clock.advance_by clock 0.008;
    Reliable.tick rel;
    T_util.checki
      (Printf.sprintf "retransmission %d fired at its deadline" (n + 1))
      (n + 1) (Reliable.retransmits rel)
  done

(* ---- acknowledgement needs barrier reply AND receive record ---- *)

let test_barrier_reply_alone_does_not_ack () =
  let _clock, net, rel = fresh () in
  Channel.set_loss (Net.channel net 1) 1.0;
  ignore (Reliable.send rel 1 (flow_msg ~xid:42));
  T_util.checki "pending after lossy send" 1 (Reliable.pending_count rel);
  (* Forge the barrier reply the switch would have sent if only the
     barrier had made it through: the flow-mod itself was lost, so the
     switch has no record of xid 42 and the layer must not ack. *)
  let forged =
    Net.From_switch
      ( 1,
        Message.message ~xid:Reliable.barrier_xid_base Message.Barrier_reply )
  in
  Reliable.observe rel forged;
  T_util.checki "barrier reply alone does not ack" 1
    (Reliable.pending_count rel);
  T_util.checki "no ack counted" 0 (Reliable.acks rel);
  (* Now let the flow-mod actually arrive (same xid — the switch's dedup
     window makes redelivery harmless), and replay the same barrier
     reply: both conditions hold, so it acks. *)
  Channel.set_loss (Net.channel net 1) 0.;
  ignore (Net.send net 1 (flow_msg ~xid:42));
  Reliable.observe rel forged;
  T_util.checki "acked once the switch has seen the xid" 0
    (Reliable.pending_count rel);
  T_util.checki "one ack counted" 1 (Reliable.acks rel)

let test_synchronous_ack_needs_delivery_record () =
  (* With a perfect channel the send itself is acked synchronously:
     barrier reply comes back and the switch recorded the xid. *)
  let _clock, net, rel = fresh () in
  ignore (Reliable.send rel 1 (flow_msg ~xid:5));
  T_util.checki "nothing pending on a perfect channel" 0
    (Reliable.pending_count rel);
  T_util.checki "one ack" 1 (Reliable.acks rel);
  T_util.checkb "switch has the xid" true
    (Sw.has_seen_xid (Net.switch net 1) 5)

(* ---- circuit breaker: degraded -> half-open -> healed ---- *)

let test_circuit_breaker_transitions () =
  let config =
    { Reliable.default_config with Reliable.max_retries = 2 }
  in
  let clock, net, rel = fresh ~config () in
  Net.apply_fault net (Net.Channel_partition 1);
  ignore (Reliable.send rel 1 (flow_msg ~xid:9));
  T_util.checkb "healthy while retrying" false (Reliable.is_degraded rel 1);
  (* Exhaust the retry budget. *)
  for _ = 1 to 6 do
    Clock.advance_by clock 0.2;
    Reliable.tick rel
  done;
  T_util.checkb "breaker open after retry budget" true
    (Reliable.is_degraded rel 1);
  T_util.checki "queue abandoned" 0 (Reliable.pending_count rel);
  let degraded_at_probes = Reliable.retransmits rel in
  (* Half-open: probes fire while the partition persists, the breaker
     stays open and nothing is retransmitted. *)
  for _ = 1 to 4 do
    Clock.advance_by clock 0.5;
    Reliable.tick rel
  done;
  T_util.checkb "probe against dead channel keeps breaker open" true
    (Reliable.is_degraded rel 1);
  T_util.checki "probes are barriers, not retransmissions"
    degraded_at_probes (Reliable.retransmits rel);
  T_util.checki "no resync while degraded" 0 (Reliable.resyncs rel);
  (* Heal: the next half-open probe succeeds, triggers resync, and the
     switch converges to the shadow intent. *)
  Net.apply_fault net (Net.Channel_heal 1);
  for _ = 1 to 3 do
    Clock.advance_by clock 0.5;
    Reliable.tick rel
  done;
  T_util.checkb "healed after successful probe" false
    (Reliable.is_degraded rel 1);
  T_util.checki "one resync" 1 (Reliable.resyncs rel);
  T_util.checki "intent replayed" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  T_util.checki "converged" 0 (Reliable.divergence rel)

let test_probe_waits_full_interval () =
  let clock, net, rel = fresh () in
  Net.apply_fault net (Net.Channel_partition 1);
  ignore (Reliable.send rel 1 (flow_msg ~xid:3));
  (* Drive just past the full backoff ladder so the breaker opens. *)
  let rec open_breaker budget =
    if budget > 0 && not (Reliable.is_degraded rel 1) then begin
      Clock.advance_by clock 0.5;
      Reliable.tick rel;
      open_breaker (budget - 1)
    end
  in
  open_breaker 100;
  T_util.checkb "breaker open" true (Reliable.is_degraded rel 1);
  Net.apply_fault net (Net.Channel_heal 1);
  let opened_at = Clock.now clock in
  (* The half-open probe interval is 8 * base_timeout = 0.4s: healing the
     channel is not noticed before the next probe is due. *)
  Clock.advance_to clock (opened_at +. 0.2);
  Reliable.tick rel;
  T_util.checkb "not yet probed" true (Reliable.is_degraded rel 1);
  Clock.advance_to clock (opened_at +. 0.45);
  Reliable.tick rel;
  T_util.checkb "probed and healed" false (Reliable.is_degraded rel 1)

let suite =
  [
    Alcotest.test_case "backoff schedule values" `Quick
      test_backoff_schedule_values;
    Alcotest.test_case "backoff drives retransmission timing" `Quick
      test_backoff_schedule_drives_retransmission;
    Alcotest.test_case "barrier reply alone does not ack" `Quick
      test_barrier_reply_alone_does_not_ack;
    Alcotest.test_case "synchronous ack has delivery record" `Quick
      test_synchronous_ack_needs_delivery_record;
    Alcotest.test_case "circuit breaker degraded/half-open/healed" `Quick
      test_circuit_breaker_transitions;
    Alcotest.test_case "half-open probe waits its interval" `Quick
      test_probe_waits_full_interval;
  ]
