module App_sig = Controller.App_sig
module Event = Controller.Event

type t = {
  k : int;
  mutable latest : bytes option;
  mutable journal : Event.t list;  (* newest first *)
  mutable taken : int;
  mutable total_bytes : int;
  mutable last_bytes : int;
}

let create ~every =
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  {
    k = every;
    latest = None;
    journal = [];
    taken = 0;
    total_bytes = 0;
    last_bytes = 0;
  }

let every t = t.k

let due t =
  match t.latest with
  | None -> true
  | Some _ -> List.length t.journal >= t.k

let take t inst =
  let snap = App_sig.snapshot inst in
  t.latest <- Some snap;
  t.journal <- [];
  t.taken <- t.taken + 1;
  t.last_bytes <- Bytes.length snap;
  t.total_bytes <- t.total_bytes + Bytes.length snap

let record_applied t ev = t.journal <- ev :: t.journal

let restore_point t =
  match t.latest with
  | None -> None
  | Some snap -> Some (snap, List.rev t.journal)

let journal_length t = List.length t.journal

let snapshots_taken t = t.taken
let bytes_written t = t.total_bytes
let last_snapshot_bytes t = t.last_bytes
