lib/core/delay_buffer.mli: Netsim Txn_engine
