open Controller

type 'a outcome =
  | Voted of 'a * Command.t list
  | Abstained of 'a  (* not subscribed to this event *)
  | Dead of 'a  (* crashed on this event; state restored to pre-event *)

let run (type s) (module A : App_sig.APP with type state = s) ctx (st : s) ev =
  if not (List.mem (Event.kind_of ev) A.subscriptions) then Abstained st
  else
    (* Mutable (hashtable-backed) states keep whatever the handler mutated
       before raising, so "state unchanged" needs an actual snapshot — the
       same Marshal representation the sandbox checkpoints use. States
       that cannot be marshalled (none of the shipped apps) fall back to
       the raw reference. *)
    let saved = try Some (Marshal.to_bytes st []) with _ -> None in
    match A.handle ctx st ev with
    | st', commands -> Voted (st', commands)
    | exception _ ->
        Dead
          (match saved with
          | Some bytes -> (Marshal.from_bytes bytes 0 : s)
          | None -> st)

let union_subscriptions lists = List.sort_uniq compare (List.concat lists)

(* Vote among the live voters with the runtime voter's election rule:
   ballots keyed by their network-effecting commands (Log stripped), the
   largest group winning, ties broken by first-arrival order. *)
let resolve name ~dead ~total ballots =
  match Voter.elect ballots with
  | None ->
      if dead > 0 && dead = total then
        failwith (name ^ ": every version crashed on this event")
      else [] (* live variants exist; none of the subscribed ones voted *)
  | Some e ->
      let winner = (List.hd e.Voter.winners).Voter.commands in
      let commands =
        if e.Voter.losers <> [] then
          if e.Voter.majority then
            winner @ [ Command.Log (name ^ ": outvoted a divergent version") ]
          else winner @ [ Command.Log (name ^ ": versions diverged") ]
        else winner
      in
      if dead > 0 then
        commands
        @ [
            Command.Log (Printf.sprintf "%s: %d version(s) crashed" name dead);
          ]
      else commands

module Make3 (A : App_sig.APP) (B : App_sig.APP) (C : App_sig.APP) :
  App_sig.APP = struct
  type state = { a : A.state; b : B.state; c : C.state }

  let name = Printf.sprintf "nversion(%s|%s|%s)" A.name B.name C.name

  let subscriptions =
    union_subscriptions [ A.subscriptions; B.subscriptions; C.subscriptions ]

  let init () = { a = A.init (); b = B.init (); c = C.init () }

  let handle ctx st ev =
    let ra = run (module A) ctx st.a ev in
    let rb = run (module B) ctx st.b ev in
    let rc = run (module C) ctx st.c ev in
    let state' =
      {
        a = (match ra with Voted (s, _) | Abstained s | Dead s -> s);
        b = (match rb with Voted (s, _) | Abstained s | Dead s -> s);
        c = (match rc with Voted (s, _) | Abstained s | Dead s -> s);
      }
    in
    let vote_of : type s. s outcome -> Command.t list option = function
      | Voted (_, cmds) -> Some cmds
      | Abstained _ | Dead _ -> None
    in
    let dead_of : type s. s outcome -> bool = function
      | Dead _ -> true
      | Voted _ | Abstained _ -> false
    in
    let ballots =
      List.filter_map
        (fun (tag, vote) ->
          Option.map (fun commands -> { Voter.voter = tag; commands }) vote)
        [ (0, vote_of ra); (1, vote_of rb); (2, vote_of rc) ]
    in
    let dead =
      List.length (List.filter Fun.id [ dead_of ra; dead_of rb; dead_of rc ])
    in
    (state', resolve name ~dead ~total:3 ballots)
end

module Make2 (A : App_sig.APP) (B : App_sig.APP) : App_sig.APP = struct
  type state = { a : A.state; b : B.state }

  let name = Printf.sprintf "nversion(%s|%s)" A.name B.name

  let subscriptions = union_subscriptions [ A.subscriptions; B.subscriptions ]

  let init () = { a = A.init (); b = B.init () }

  let handle ctx st ev =
    let ra = run (module A) ctx st.a ev in
    let rb = run (module B) ctx st.b ev in
    let state' =
      {
        a = (match ra with Voted (s, _) | Abstained s | Dead s -> s);
        b = (match rb with Voted (s, _) | Abstained s | Dead s -> s);
      }
    in
    let vote_of : type s. s outcome -> Command.t list option = function
      | Voted (_, cmds) -> Some cmds
      | Abstained _ | Dead _ -> None
    in
    let dead_of : type s. s outcome -> bool = function
      | Dead _ -> true
      | Voted _ | Abstained _ -> false
    in
    let ballots =
      List.filter_map
        (fun (tag, vote) ->
          Option.map (fun commands -> { Voter.voter = tag; commands }) vote)
        [ (0, vote_of ra); (1, vote_of rb) ]
    in
    let dead =
      List.length (List.filter Fun.id [ dead_of ra; dead_of rb ])
    in
    (state', resolve name ~dead ~total:2 ballots)
end
