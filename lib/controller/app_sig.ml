open Openflow

type context = {
  now : unit -> float;
  switches : unit -> Types.switch_id list;
  switch_ports : Types.switch_id -> Types.port_no list;
  links : unit -> Event.link list;
  host_location : Types.mac -> (Types.switch_id * Types.port_no) option;
}

let now (c : context) = c.now ()
let switches (c : context) = c.switches ()
let switch_ports (c : context) sw = c.switch_ports sw
let links (c : context) = c.links ()
let host_location (c : context) mac = c.host_location mac

let flood_ports ctx ~sw ~in_port =
  List.filter (fun p -> p <> in_port) (switch_ports ctx sw)

module type APP = sig
  type state

  val name : string
  val subscriptions : Event.kind list
  val init : unit -> state
  val handle : context -> state -> Event.t -> state * Command.t list
end

module type INTENT_APP = sig
  include APP

  val policy : context -> state -> Policy.t option
end

module Of_legacy (A : APP) : INTENT_APP with type state = A.state = struct
  include A

  let policy _ _ = None
end

type app = (module INTENT_APP)

let app (module A : APP) : app =
  let module L = Of_legacy (A) in
  (module L : INTENT_APP)

let intent (module A : INTENT_APP) : app = (module A)
let app_name ((module A) : app) = A.name

let to_legacy ((module A) : app) : (module APP) = (module A : APP)

exception Crash_with_partial of Command.t list
exception App_hang

type instance =
  | Instance : (module INTENT_APP with type state = 's) * 's -> instance

let instantiate (module A : INTENT_APP) =
  Instance ((module A : INTENT_APP with type state = A.state), A.init ())

let instantiate_legacy m = instantiate (app m)

let module_of (Instance ((module A), _)) = (module A : APP)
let app_of (Instance ((module A), _)) = (module A : INTENT_APP)

let name (Instance ((module A), _)) = A.name
let subscriptions (Instance ((module A), _)) = A.subscriptions
let subscribes_to inst kind = List.mem kind (subscriptions inst)

let handle (Instance ((module A), st)) ctx event =
  let st', commands = A.handle ctx st event in
  (Instance ((module A), st'), commands)

let policy_of (Instance ((module A), st)) ctx = A.policy ctx st

let reboot (Instance ((module A), _)) = Instance ((module A), A.init ())

let snapshot (Instance ((module A), st)) = Marshal.to_bytes st []

let restore (Instance ((module A), _)) bytes =
  (* The state type is fixed by the module; a snapshot taken from the same
     module unmarshals to exactly that type. *)
  Instance ((module A), (Marshal.from_bytes bytes 0 : A.state))

let state_size inst = Bytes.length (snapshot inst)
