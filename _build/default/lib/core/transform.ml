open Openflow
open Controller

let link_downs_of_switch ~links_of sid =
  links_of sid
  |> List.filter (fun (l : Event.link) -> l.src_switch = sid)
  |> List.map (fun l -> Event.Link_down l)

let equivalents ~links_of (ev : Event.t) =
  match ev with
  | Event.Switch_down sid -> (
      (* A switch-down is the union of the downs of its links. *)
      match link_downs_of_switch ~links_of sid with
      | [] -> []
      | downs -> [ downs ])
  | Event.Link_down l ->
      (* Coarsen: declare the whole near-side switch down. Over-reacting,
         but strictly a superset of the lost connectivity. *)
      [ [ Event.Switch_down l.src_switch ] ]
  | Event.Port_status (sid, _reason, desc) when not desc.Message.up ->
      let via_link =
        links_of sid
        |> List.filter (fun (l : Event.link) ->
               l.src_switch = sid && l.src_port = desc.Message.port_no)
        |> List.map (fun l -> [ Event.Link_down l ])
      in
      via_link @ [ [ Event.Switch_down sid ] ]
  | Event.Packet_in (sid, pi) ->
      (* Replay a minimal form: headers only, no buffer reference, plain
         table-miss reason — sheds whatever payload detail crashed the
         parser. *)
      let minimal =
        {
          Message.pi_buffer_id = None;
          pi_in_port = pi.Message.pi_in_port;
          pi_reason = Message.No_match;
          pi_packet = { pi.Message.pi_packet with Packet.payload_len = 0 };
        }
      in
      if minimal = pi then [] else [ [ Event.Packet_in (sid, minimal) ] ]
  | Event.Switch_up (sid, features) ->
      (* Decompose into per-port notifications. *)
      let ports =
        List.map
          (fun desc -> Event.Port_status (sid, Message.Port_add, desc))
          features.Message.ports
      in
      if ports = [] then [] else [ ports ]
  | Event.Port_status _ | Event.Link_up _ | Event.Flow_removed _
  | Event.Stats_reply _ | Event.Tick _ ->
      []

let describe alternative =
  Format.asprintf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       Event.pp)
    alternative
