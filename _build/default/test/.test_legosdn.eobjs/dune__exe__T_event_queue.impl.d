test/t_event_queue.ml: Alcotest Event_queue List Netsim Option QCheck2 QCheck_alcotest T_util
