open Openflow

(* Entries live in priority buckets (descending priority). Within a bucket,
   fully-specified patterns sit in an exact-match hash table and wildcarded
   patterns in an insertion-ordered list; a per-table sequence number stamps
   every entry so the first-inserted-wins tie rule of the old flat list is
   preserved exactly. The flattened priority-ordered view (what [entries]
   returns and [Snapshot.of_net] copies) is memoized and invalidated on
   mutation, and [generation] counts mutations so snapshot/cache layers can
   detect change without diffing rules. *)

type slot = { seq : int; entry : Flow_entry.t }

(* The exact-match index hashes with [Ofp_match.hash] (FNV over the fields)
   rather than the polymorphic hash, and probes through [Ofp_match.equal]'s
   pointer-equality fast path — stored keys are interned, so twin
   replacement and [find_exact] on interned probes are pointer compares. *)
module Mtbl = Hashtbl.Make (struct
  type t = Ofp_match.t

  let equal = Ofp_match.equal
  let hash = Ofp_match.hash
end)

type bucket = {
  prio : int;
  exact : slot Mtbl.t;
      (* fully-specified patterns: at most one entry per pattern *)
  mutable wild : slot list;  (* wildcarded patterns, insertion order *)
}

type t = {
  mutable buckets : bucket list;  (* descending priority *)
  mutable count : int;
  mutable next_seq : int;
  mutable gen : int;
  mutable flat : Flow_entry.t list option;  (* memoized [entries] view *)
}

let create () =
  { buckets = []; count = 0; next_seq = 0; gen = 0; flat = None }

let size t = t.count
let generation t = t.gen

let touch t =
  t.gen <- t.gen + 1;
  t.flat <- None

let is_exact pattern = Ofp_match.wildcard_count pattern = 0

let bucket_slots b =
  Mtbl.fold (fun _ s acc -> s :: acc) b.exact b.wild
  |> List.sort (fun a b -> compare a.seq b.seq)

let entries t =
  match t.flat with
  | Some l -> l
  | None ->
      let l =
        List.concat_map
          (fun b -> List.map (fun s -> s.entry) (bucket_slots b))
          t.buckets
      in
      t.flat <- Some l;
      l

let clear t =
  t.buckets <- [];
  t.count <- 0;
  touch t

let find_bucket t prio = List.find_opt (fun b -> b.prio = prio) t.buckets

let add_bucket t prio =
  let b = { prio; exact = Mtbl.create 8; wild = [] } in
  let rec go = function
    | [] -> [ b ]
    | b' :: rest as all -> if prio > b'.prio then b :: all else b' :: go rest
  in
  t.buckets <- go t.buckets;
  b

let drop_empty t =
  t.buckets <-
    List.filter (fun b -> Mtbl.length b.exact > 0 || b.wild <> []) t.buckets

let stamp t entry =
  let s = { seq = t.next_seq; entry } in
  t.next_seq <- t.next_seq + 1;
  s

let add t (entry : Flow_entry.t) =
  (* [entry.pattern] is already interned ({!Flow_entry.of_flow_mod}/[make]
     intern at creation), so the exact index stores shared keys and twin
     replacement below is a pointer compare. The entry record itself is
     stored as given — callers alias its mutable counters. *)
  let b =
    match find_bucket t entry.priority with
    | Some b -> b
    | None -> add_bucket t entry.priority
  in
  (* OF 1.0 Add semantics: an identical match+priority twin is replaced. The
     bucket bounds the search; the exact hash makes the common
     (fully-specified) case O(1). *)
  if is_exact entry.pattern then begin
    if Mtbl.mem b.exact entry.pattern then begin
      Mtbl.remove b.exact entry.pattern;
      t.count <- t.count - 1
    end;
    Mtbl.replace b.exact entry.pattern (stamp t entry)
  end
  else begin
    let dup, kept =
      List.partition
        (fun s -> Ofp_match.equal s.entry.Flow_entry.pattern entry.pattern)
        b.wild
    in
    t.count <- t.count - List.length dup;
    b.wild <- kept @ [ stamp t entry ]
  end;
  t.count <- t.count + 1;
  touch t

let touches ~strict pattern ~priority (e : Flow_entry.t) =
  if strict then priority = e.priority && Ofp_match.equal pattern e.pattern
  else Ofp_match.subsumes pattern e.pattern

let modify t ~strict pattern ~priority actions =
  let hit = ref false in
  let rewrite b =
    let keys =
      Mtbl.fold
        (fun key s acc ->
          if touches ~strict pattern ~priority s.entry then (key, s) :: acc
          else acc)
        b.exact []
    in
    List.iter
      (fun (key, s) ->
        hit := true;
        Mtbl.replace b.exact key
          { s with entry = { s.entry with Flow_entry.actions } })
      keys;
    b.wild <-
      List.map
        (fun s ->
          if touches ~strict pattern ~priority s.entry then begin
            hit := true;
            { s with entry = { s.entry with Flow_entry.actions } }
          end
          else s)
        b.wild
  in
  (if strict then
     match find_bucket t priority with
     | Some b -> rewrite b
     | None -> ()
   else List.iter rewrite t.buckets);
  if !hit then touch t;
  !hit

let delete t ~strict ?out_port pattern ~priority =
  let port_ok (e : Flow_entry.t) =
    match out_port with
    | None -> true
    | Some p -> List.mem p (Action.outputs e.actions)
  in
  let condemned (e : Flow_entry.t) =
    touches ~strict pattern ~priority e && port_ok e
  in
  let gone = ref [] in
  List.iter
    (fun b ->
      if (not strict) || b.prio = priority then begin
        let dead =
          Mtbl.fold
            (fun key s acc -> if condemned s.entry then (key, s) :: acc else acc)
            b.exact []
        in
        List.iter (fun (key, _) -> Mtbl.remove b.exact key) dead;
        let dead_wild, kept =
          List.partition (fun s -> condemned s.entry) b.wild
        in
        b.wild <- kept;
        (* buckets iterate in priority order; seq restores insertion order
           within the bucket, matching the old flat-list partition *)
        gone :=
          !gone
          @ List.sort
              (fun a b -> compare a.seq b.seq)
              (List.map snd dead @ dead_wild)
      end)
    t.buckets;
  let removed = List.map (fun s -> s.entry) !gone in
  if removed <> [] then begin
    t.count <- t.count - List.length removed;
    drop_empty t;
    touch t
  end;
  removed

let lookup t ~now ~in_port pkt =
  let live (e : Flow_entry.t) = Flow_entry.expiry_reason e ~now = None in
  (* The only fully-specified pattern a packet can match is its own exact
     header, so one hash probe per bucket replaces the scan for the common
     learning-switch/router rules. *)
  let exact_key = Ofp_match.exact ~in_port pkt in
  let rec over_buckets = function
    | [] -> None
    | b :: rest -> (
        let exact_hit =
          match Mtbl.find_opt b.exact exact_key with
          | Some s when live s.entry -> Some s
          | Some _ | None -> None
        in
        let wild_hit =
          List.find_opt
            (fun s -> live s.entry && Flow_entry.matches s.entry ~in_port pkt)
            b.wild
        in
        match (exact_hit, wild_hit) with
        | None, None -> over_buckets rest
        | Some s, None | None, Some s -> Some s.entry
        | Some a, Some b -> Some (if a.seq <= b.seq then a.entry else b.entry))
  in
  over_buckets t.buckets

let expire t ~now =
  let expired = ref [] in
  List.iter
    (fun b ->
      let dead =
        Mtbl.fold
          (fun key s acc ->
            match Flow_entry.expiry_reason s.entry ~now with
            | Some reason -> (key, s, reason) :: acc
            | None -> acc)
          b.exact []
      in
      List.iter (fun (key, _, _) -> Mtbl.remove b.exact key) dead;
      let dead_wild, kept =
        List.partition_map
          (fun s ->
            match Flow_entry.expiry_reason s.entry ~now with
            | Some reason -> Left (s, reason)
            | None -> Right s)
          b.wild
      in
      b.wild <- kept;
      expired :=
        !expired
        @ List.sort
            (fun (a, _) (b, _) -> compare a.seq b.seq)
            (List.map (fun (_, s, r) -> (s, r)) dead @ dead_wild))
    t.buckets;
  let removed = List.map (fun (s, r) -> (s.entry, r)) !expired in
  if removed <> [] then begin
    t.count <- t.count - List.length removed;
    drop_empty t;
    touch t
  end;
  removed

let find_exact t pattern ~priority =
  match find_bucket t priority with
  | None -> None
  | Some b ->
      if is_exact pattern then
        Option.map (fun s -> s.entry) (Mtbl.find_opt b.exact pattern)
      else
        Option.map
          (fun s -> s.entry)
          (List.find_opt
             (fun s -> Ofp_match.equal s.entry.Flow_entry.pattern pattern)
             b.wild)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Flow_entry.pp)
    (entries t)
