(** Descriptive statistics for experiment output: summaries of sample
    series (availability over runs, connectivity over time, latencies). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : float list -> summary option
(** [None] on an empty series. Percentiles by nearest-rank. *)

val percentile : float list -> float -> float
(** [percentile samples q] for q in [0, 1] (nearest-rank; raises
    [Invalid_argument] on an empty list or q outside the range). *)

val mean : float list -> float
(** 0 on an empty list. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** Equal-width buckets over [min, max] as (lo, hi, count); [] on empty
    input. The last bucket is closed on both ends. *)

val pp_summary : Format.formatter -> summary -> unit
