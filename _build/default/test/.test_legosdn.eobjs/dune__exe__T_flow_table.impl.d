test/t_flow_table.ml: Action Alcotest Flow_entry Flow_table List Message Netsim Ofp_match Openflow Packet QCheck2 QCheck_alcotest T_util
