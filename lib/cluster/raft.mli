(** A Raft-shaped consensus core for the simulated controller cluster.

    Pure message-passing: {!tick} and {!receive} return the messages to
    transmit and never deliver anything themselves — the cluster layer
    owns delivery through the seeded {!Netsim.Channel} fault model, so
    elections and replication are deterministic functions of (seeds,
    virtual clock). Crash-stop, no persistence, no membership changes:
    a killed controller never rejoins. *)

type entry = { term : int; event : Controller.Event.t }

type role = Follower | Candidate | Leader

type msg =
  | Request_vote of {
      term : int;
      candidate : int;
      last_index : int;
      last_term : int;
    }
  | Vote of { term : int; voter : int; granted : bool }
  | Append_entries of {
      term : int;
      leader : int;
      prev_index : int;
      prev_term : int;
      entries : entry list;
      commit : int;
    }
  | Append_reply of {
      term : int;
      follower : int;
      success : bool;
      match_index : int;
    }

type t

val create :
  id:int -> peers:int list -> seed:int -> lo:float -> hi:float -> now:float -> t
(** [peers] is the full membership (self included — it is filtered out).
    Election timeouts are drawn uniformly from [lo, hi) with an rng seeded
    by [(seed, id)], and redrawn on every timer reset. Raises
    [Invalid_argument] unless [0 < lo < hi]. *)

val id : t -> int
val role : t -> role
val term : t -> int

val commit_index : t -> int
(** Highest log index known committed (majority-replicated under the
    current-term commit rule). *)

val last_index : t -> int
val quorum : t -> int
val elections_started : t -> int

val deadline : t -> float
(** Virtual time at which this node's election timer expires. The cluster
    layer processes expirations in deadline order so simultaneous-looking
    timeouts (after a large clock jump) resolve deterministically. *)

val entry : t -> int -> entry
(** 1-based. Raises [Invalid_argument] outside [1, last_index]. *)

val append : t -> Controller.Event.t -> int
(** Leader-only: append an entry under the current term; returns its
    index. Raises [Invalid_argument] on a non-leader. *)

val heartbeats : t -> (int * msg) list
(** Leader-only duty cycle: one [Append_entries] per peer from its
    next-index (empty entry list when the peer is up to date). Also the
    replication path — freshly appended entries travel in these. *)

val tick : t -> now:float -> (int * msg) list
(** Time-driven duties: a leader emits {!heartbeats}; a follower or
    candidate whose election timer has expired starts an election. *)

val receive : t -> now:float -> msg -> (int * msg) list
(** Handle one incoming message; returns the replies/broadcasts it
    provokes (including the initial heartbeat burst when a vote makes
    this node leader). *)
