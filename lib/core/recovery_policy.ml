module Event = Controller.Event

type compromise = No_compromise | Absolute | Equivalence

type rule = {
  app : string option;
  kind : Event.kind option;
  action : compromise;
}

type t = { rule_list : rule list; default : compromise }

let make ?(default = Equivalence) rule_list = { rule_list; default }

let rules t = t.rule_list
let default_action t = t.default

let rule_matches ~app ~kind rule =
  (match rule.app with None -> true | Some a -> a = app)
  && match rule.kind with None -> true | Some k -> k = kind

let decide t ~app kind =
  match List.find_opt (rule_matches ~app ~kind) t.rule_list with
  | Some rule -> rule.action
  | None -> t.default

let uniform compromise = make ~default:compromise []

let compromise_name = function
  | No_compromise -> "no-compromise"
  | Absolute -> "absolute"
  | Equivalence -> "equivalence"

let compromise_of_name = function
  | "no-compromise" -> Some No_compromise
  | "absolute" -> Some Absolute
  | "equivalence" -> Some Equivalence
  | _ -> None

let equal a b = a = b

let pp_rule fmt rule =
  Format.fprintf fmt "app %s event %s => %s"
    (Option.value rule.app ~default:"*")
    (match rule.kind with None -> "*" | Some k -> Event.kind_name k)
    (compromise_name rule.action)

let pp fmt t =
  List.iter (fun rule -> Format.fprintf fmt "%a@." pp_rule rule) t.rule_list;
  Format.fprintf fmt "default => %s" (compromise_name t.default)
