lib/core/sandbox.ml: App_sig Bytes Checkpoint Command Controller List Printexc Wire
