module App_sig = Controller.App_sig

let all : (string * App_sig.app) list =
  [
    ("learning_switch", App_sig.app (module Learning_switch));
    ("hub", App_sig.app (module Hub));
    ("flooder", App_sig.app (module Flooder));
    ("router", App_sig.app (module Router));
    ("load_balancer", App_sig.app (module Load_balancer));
    ("firewall", App_sig.app (module Firewall));
    ("monitor", App_sig.app (module Monitor));
    ("spanning_tree", App_sig.app (module Spanning_tree));
    ("arp_responder", App_sig.app (module Arp_responder));
    ("policy_firewall", App_sig.intent (module Policy_firewall));
    ("policy_router", App_sig.intent (module Policy_router));
  ]

let names = List.map fst all

let find name = List.assoc_opt name all

let table2 =
  [
    ("router", "third-party", "Routing (RouteFlow analogue)");
    ("load_balancer", "third-party", "Traffic engineering (FlowScale)");
    ("firewall", "vendor", "Security (BigTap analogue)");
    ("monitor", "third-party", "Monitoring/provisioning (Stratos)");
    ("learning_switch", "bundled", "L2 forwarding (FloodLight port)");
    ("hub", "bundled", "Flood forwarding (FloodLight port)");
    ("flooder", "bundled", "Flood + rule install (FloodLight port)");
    ("spanning_tree", "bundled", "Flood pruning via OFPPC_NO_FLOOD");
    ("arp_responder", "bundled", "Proxy ARP");
    ("policy_firewall", "bundled", "Security, declared as intent (PR 9)");
    ("policy_router", "bundled", "Routing, declared as intent (PR 9)");
  ]
