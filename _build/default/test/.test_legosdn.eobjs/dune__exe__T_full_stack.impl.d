test/t_full_stack.ml: Alcotest Apps Clock Controller Invariants Legosdn List Net Netsim Openflow T_util Topo_gen Topology
