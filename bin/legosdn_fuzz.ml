(* legosdn_fuzz — deterministic whole-system scenario fuzzing.

   Examples:
     dune exec bin/legosdn_fuzz.exe -- --seeds 0-200
     dune exec bin/legosdn_fuzz.exe -- --seeds 0-40 --plant no-retransmit \
        --out fuzz-repros
     dune exec bin/legosdn_fuzz.exe -- --replay fuzz-repros/seed-17.lsdnrep

   Every seed maps to exactly one scenario (topology, apps, channel fault
   model, traffic, faults, injected app bugs) executed on the virtual
   clock, so a clean run is a regression guarantee, not a statistical
   statement. Failing seeds are delta-debugged to a minimal element list
   and written out as self-contained reproducer files. *)

open Cmdliner

let parse_seeds s =
  match String.split_on_char '-' s with
  | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when 0 <= lo && lo <= hi ->
          `Ok (List.init (hi - lo + 1) (fun i -> lo + i))
      | _ -> `Error (false, Printf.sprintf "bad seed range %S" s))
  | [ one ] -> (
      match int_of_string_opt one with
      | Some n when n >= 0 -> `Ok [ n ]
      | _ -> `Error (false, Printf.sprintf "bad seed %S" s))
  | _ -> `Error (false, Printf.sprintf "bad seed range %S (want A-B)" s)

let seeds_conv =
  Arg.conv
    ( (fun s ->
        match parse_seeds s with
        | `Ok v -> Ok v
        | `Error (_, msg) -> Error (`Msg msg)),
      fun fmt seeds ->
        match (seeds, List.rev seeds) with
        | lo :: _, hi :: _ -> Format.fprintf fmt "%d-%d" lo hi
        | _ -> Format.fprintf fmt "<empty>" )

let plant_conv =
  Arg.conv
    ( (fun s ->
        match Check.Fuzz.plant_of_name s with
        | Some p -> Ok p
        | None -> Error (`Msg (Printf.sprintf "unknown plant %S" s))),
      fun fmt p -> Format.fprintf fmt "%s" (Check.Fuzz.plant_name p) )

let seeds_arg =
  let doc = "Seed range to fuzz, inclusive (e.g. 0-200 or a single seed)." in
  Arg.(value & opt seeds_conv (List.init 101 Fun.id)
       & info [ "seeds" ] ~docv:"A-B" ~doc)

let budget_arg =
  let doc =
    "Stop after this many findings (minimization is the expensive part); \
     the seed scan itself always completes."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let oracles_arg =
  let doc =
    Printf.sprintf "Comma-separated oracle subset to check (default all: %s)."
      (String.concat ", " Check.Oracle.names)
  in
  Arg.(value & opt (some string) None & info [ "oracles" ] ~docv:"NAMES" ~doc)

let out_arg =
  let doc = "Directory for reproducer files (created on first finding)." in
  Arg.(value & opt string "fuzz-repros" & info [ "out" ] ~docv:"DIR" ~doc)

let plant_arg =
  let doc =
    "Deliberately planted defect for self-validation: 'no-retransmit' \
     disables the reliable layer's retransmission timer, which the \
     convergence/atomicity oracles must catch; 'kill-leader' turns each \
     scenario into a replicated fail-over trial (see --kill-leader); \
     'byz-variant' runs each scenario as a 3-variant voting panel with a \
     seated byzantine variant, checked by the nversion-masking oracle (the \
     byzantine output must be outvoted before it reaches the network)."
  in
  Arg.(value & opt plant_conv Check.Fuzz.No_plant
       & info [ "plant" ] ~docv:"PLANT" ~doc)

let kill_leader_arg =
  let doc =
    "Shorthand for --plant kill-leader: run every seed as a 3-replica \
     cluster with traffic-only elements and a leader kill armed \
     mid-transaction, checked by the leader-failover oracle (single live \
     leader, converged replicas, and delivery parity with a never-killed \
     run of the same scenario)."
  in
  Arg.(value & flag & info [ "kill-leader" ] ~doc)

let dispatch_conv =
  Arg.conv
    ( (fun s ->
        match s with
        | "seq" -> Ok Legosdn.Runtime.Sequential
        | "sharded" -> Ok Legosdn.Runtime.default_sharded
        | _ -> Error (`Msg (Printf.sprintf "unknown dispatch mode %S" s))),
      fun fmt d ->
        Format.fprintf fmt "%s"
          (match d with
          | Legosdn.Runtime.Sequential -> "seq"
          | Legosdn.Runtime.Sharded _ -> "sharded") )

let dispatch_arg =
  let doc =
    "Event-dispatch engine: 'seq' (the sequential specification) or \
     'sharded' (the batched engine). An execution parameter, not part of \
     the scenario: the same seeds and reproducers run under either, and \
     must behave identically."
  in
  Arg.(value & opt dispatch_conv Legosdn.Runtime.Sequential
       & info [ "dispatch" ] ~docv:"MODE" ~doc)

let apps_arg =
  let doc =
    "Comma-separated app suite overriding each scenario's generated menu \
     (e.g. 'policy_router,policy_firewall'); topology, faults and traffic \
     stay seed-determined."
  in
  Arg.(value & opt (some string) None & info [ "apps" ] ~docv:"NAMES" ~doc)

let replay_arg =
  let doc = "Replay a reproducer file instead of fuzzing." in
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Span-trace the minimized run of every finding with a ring buffer of \
     $(docv) spans; the trace is embedded in the reproducer file as \
     Chrome-trace JSON."
  in
  Arg.(value & opt (some int) None & info [ "trace-buffer" ] ~docv:"N" ~doc)

let select_oracles = function
  | None -> Check.Oracle.all
  | Some csv ->
      Check.Oracle.select
        (List.filter
           (fun s -> s <> "")
           (List.map String.trim (String.split_on_char ',' csv)))

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let repro_path dir (f : Check.Fuzz.finding) =
  Filename.concat dir (Printf.sprintf "seed-%d.lsdnrep" f.Check.Fuzz.seed)

let do_replay oracles dispatch path =
  let repro = Check.Repro.load path in
  Printf.printf "replaying %s\n  spec: %s\n  expected failure: %s (%s)\n%!"
    path
    (Check.Spec.summary repro.Check.Repro.spec)
    repro.Check.Repro.oracle repro.Check.Repro.detail;
  let spans_ok =
    match repro.Check.Repro.spans with
    | [] -> true
    | spans -> (
        match Obs.Export.validate spans with
        | Ok () ->
            Printf.printf "  embedded span trace: %d span(s), well-formed\n%!"
              (List.length spans);
            true
        | Error e ->
            Printf.printf "  embedded span trace: INVALID (%s)\n%!" e;
            false)
  in
  let r = Check.Repro.replay ~oracles ~dispatch repro in
  Printf.printf "  reproduced: %b\n  trace byte-identical: %b\n%!"
    r.Check.Repro.reproduced r.Check.Repro.same_trace;
  if r.Check.Repro.reproduced && r.Check.Repro.same_trace && spans_ok then begin
    Printf.printf "replay OK\n%!";
    0
  end
  else begin
    Printf.printf "replay FAILED to reproduce\n%!";
    2
  end

let do_fuzz oracles dispatch seeds budget plant trace_buffer apps out =
  Printf.printf "fuzzing %d seed(s), oracles: %s, plant: %s, dispatch: %s\n%!"
    (List.length seeds)
    (String.concat "," (List.map (fun o -> o.Check.Oracle.name) oracles))
    (Check.Fuzz.plant_name plant)
    (match dispatch with
    | Legosdn.Runtime.Sequential -> "seq"
    | Legosdn.Runtime.Sharded { shards; max_batch } ->
        Printf.sprintf "sharded(%d,%d)" shards max_batch);
  let on_finding (f : Check.Fuzz.finding) =
    ensure_dir out;
    let path = repro_path out f in
    Check.Repro.save path (Check.Fuzz.reproducer_of f);
    Printf.printf
      "FINDING seed=%d oracle=%s\n  %s\n  minimized to %d element(s) in %d \
       runs:\n"
      f.Check.Fuzz.seed f.Check.Fuzz.oracle f.Check.Fuzz.detail
      (List.length f.Check.Fuzz.minimal)
      f.Check.Fuzz.shrink_runs;
    List.iter
      (fun el -> Printf.printf "    %s\n" (Check.Spec.element_summary el))
      f.Check.Fuzz.minimal;
    Printf.printf "  reproducer: %s\n%!" path
  in
  let result =
    Check.Fuzz.campaign ~oracles ~plant ?trace_buffer ~dispatch ?apps
      ?max_findings:budget ~on_finding seeds
  in
  Printf.printf "%d seed(s) run, %d finding(s)\n%!"
    result.Check.Fuzz.seeds_run
    (List.length result.Check.Fuzz.findings);
  if result.Check.Fuzz.findings = [] then 0 else 2

let main seeds budget oracles_csv out plant kill_leader trace_buffer dispatch
    apps_csv replay =
  let plant = if kill_leader then Check.Fuzz.Kill_leader_plant else plant in
  let apps =
    Option.map
      (fun csv ->
        List.filter
          (fun s -> s <> "")
          (List.map String.trim (String.split_on_char ',' csv)))
      apps_csv
  in
  match
    (try Ok (select_oracles oracles_csv)
     with Invalid_argument msg -> Error msg)
  with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok oracles -> (
      match replay with
      | Some path -> do_replay oracles dispatch path
      | None -> do_fuzz oracles dispatch seeds budget plant trace_buffer apps out)

let cmd =
  let doc = "deterministic scenario fuzzer for the LegoSDN stack" in
  Cmd.v
    (Cmd.info "legosdn_fuzz" ~doc)
    Term.(
      const main $ seeds_arg $ budget_arg $ oracles_arg $ out_arg $ plant_arg
      $ kill_leader_arg $ trace_arg $ dispatch_arg $ apps_arg $ replay_arg)

let () = exit (Cmd.eval' cmd)
