lib/apps/suite.mli: Controller
