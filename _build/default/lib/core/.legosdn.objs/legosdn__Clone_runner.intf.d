lib/core/clone_runner.mli: App_sig Controller
