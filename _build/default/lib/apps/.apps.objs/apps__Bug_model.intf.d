lib/apps/bug_model.mli: Controller Openflow Types
