(** The operator configuration language: one text file describing a whole
    LegoSDN runtime configuration.

    This grows the paper's per-app compromise policy language (§3.3, see
    {!Recovery_policy_lang}) into the full set of operator-tunable knobs the paper
    discusses: the checkpoint cadence (§5), the quarantine threshold for
    multi-transaction failures (§5), the transaction engine (§4.1),
    detection timing, per-app resource limits (§3.4) and the set of
    "No-Compromise" network invariants (§5).

    Grammar — one directive per line, [#] starts a comment; every directive
    is optional and defaults to {!Runtime.default_config}:

    {v
    checkpoint every 5
    checkpoint mode delta                # or: full | delta-adaptive
    engine netlog                        # or: delay-buffer
    dispatch sharded shards 8 batch 64   # or: dispatch seq | dispatch sharded
    trace-cache budget 1048576           # bytes; or: trace-cache unbounded
    workload trace seed 7 rate 40 alpha 1.5 diurnal 0.5 period 60 churn 0.1
                                         # or bare: workload trace (defaults)
    nversion 3                           # N-version voting panels; or:
    nversion 3 adaptive shed-after 8     # MORPH shed/grow; or: nversion off
    quarantine threshold 2               # absent = quarantine off
    heartbeat interval 0.1 misses 3
    rpc timeout 0.05
    limit state-bytes 100000
    limit commands-per-event 64
    invariant loop-freedom               # first 'invariant' line resets the
    invariant black-hole-freedom         # default set; list what you want
    invariant no-drop-all
    invariant reachability 1:2,3:4       # src:dst pairs
    invariant isolation 1,2|3,4          # group A | group B
    invariant waypoint via 2 pairs 1:3,4:3
    app firewall event * => no-compromise
    default => equivalence
    v} *)

type error = { line : int; message : string }

val parse : string -> (Runtime.config, error) result

val parse_exn : string -> Runtime.config
(** Raises [Failure] with a located message. *)

val print : Runtime.config -> string
(** Render a configuration back to the language. [parse (print c)] yields a
    configuration equivalent to [c] (the quarantine store itself is fresh:
    only its threshold survives the round-trip). *)

val pp_error : Format.formatter -> error -> unit
