open Openflow
module Net = Netsim.Net
module Clock = Netsim.Clock
module Flow_table = Netsim.Flow_table
module Flow_entry = Netsim.Flow_entry
module Command = Controller.Command

type saved_flow = {
  switch : Types.switch_id;
  entry : Flow_entry.t;  (* a private copy, counters frozen *)
  saved_at : float;
}

type undo =
  | Undo_add of Types.switch_id * Ofp_match.t * int
      (** Remove a rule the transaction installed. *)
  | Undo_restore of saved_flow
      (** Re-install a rule the transaction destroyed. *)
  | Undo_modify of Types.switch_id * Ofp_match.t * int * Action.t list
      (** Put a rewritten action list back. *)
  | Undo_port_mod of Types.switch_id * Message.port_mod
      (** Put a port's previous OFPPC_NO_FLOOD setting back. *)
  | Undo_recredit of Types.switch_id * Ofp_match.t * int * int * int
      (** Re-bank counter-cache credits an Add consumed (switch, pattern,
          priority, packets, bytes). *)

type txn = {
  app : string;
  mutable undos : undo list;  (* newest first: rollback order *)
  mutable applied : Command.t list;  (* newest first *)
  mutable closed : bool;
}

(* One closed transaction, as the journal remembers it. Commands are kept
   structurally (not re-encoded) so the record is cheap to take on the
   commit path and still byte-comparable across runs. *)
type journal_entry = {
  je_app : string;
  je_committed : bool;
  je_ops : Command.t list;  (** in application order *)
  je_rolled_back : int;  (** undos executed; 0 for commits *)
}

type t = {
  network : Net.t;
  send : Types.switch_id -> Message.t -> Message.t list;
  counter_cache : Counter_cache.t;
  mutable next_xid : int;
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_ops : int;
  mutable n_rolled_back : int;
  mutable history : journal_entry list;  (* newest first *)
  mutable tracer : Obs.Tracer.t;
}

let create ?transport ?(xid_base = 1) ?metrics network =
  {
    network;
    send =
      (match transport with
      | Some f -> f
      | None -> Net.send network);
    counter_cache =
      Counter_cache.create
        ~on_evict:
          (match metrics with
          | Some m -> fun () -> Metrics.incr_counter_cache_eviction m
          | None -> fun () -> ())
        ();
    next_xid = xid_base;
    n_committed = 0;
    n_aborted = 0;
    n_ops = 0;
    n_rolled_back = 0;
    history = [];
    tracer = Obs.Tracer.noop;
  }

let set_tracer t tracer = t.tracer <- tracer

let net t = t.network
let cache t = t.counter_cache
let next_xid t = t.next_xid
let committed t = t.n_committed
let aborted t = t.n_aborted
let ops_applied t = t.n_ops
let ops_rolled_back t = t.n_rolled_back
let journal t = List.rev t.history

let begin_txn _t ~app = { app; undos = []; applied = []; closed = false }

let now t = Clock.now (Net.clock t.network)

let fresh_xid t =
  let x = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  x

let copy_entry (e : Flow_entry.t) = { e with Flow_entry.priority = e.priority }

let table_of t sid =
  try Some (Net.switch t.network sid).Netsim.Sw.table with Not_found -> None

(* Entries a modify/delete with these parameters will touch, mirroring the
   switch's own matching rule. *)
let touched_entries t sid ~strict ?out_port pattern ~priority =
  match table_of t sid with
  | None -> []
  | Some table ->
      Flow_table.entries table
      |> List.filter (fun (e : Flow_entry.t) ->
             let match_ok =
               if strict then
                 e.priority = priority && Ofp_match.equal e.pattern pattern
               else Ofp_match.subsumes pattern e.pattern
             in
             let port_ok =
               match out_port with
               | None -> true
               | Some p -> List.mem p (Action.outputs e.actions)
             in
             match_ok && port_ok)

(* The undo list for one flow-mod, in the order the undos must run. *)
let flow_mod_undos t sid (fm : Message.flow_mod) =
  match fm.command with
  | Message.Add ->
      let replaced =
        match table_of t sid with
        | None -> None
        | Some table -> Flow_table.find_exact table fm.pattern ~priority:fm.priority
      in
      let base = [ Undo_add (sid, fm.pattern, fm.priority) ] in
      (match replaced with
      | None -> base
      | Some e ->
          base
          @ [ Undo_restore { switch = sid; entry = copy_entry e; saved_at = now t } ])
  | Message.Modify | Message.Modify_strict ->
      let strict = fm.command = Message.Modify_strict in
      let touched =
        touched_entries t sid ~strict fm.pattern ~priority:fm.priority
      in
      if touched = [] then
        (* Modify with no match adds a rule: undo is a removal. *)
        [ Undo_add (sid, fm.pattern, fm.priority) ]
      else
        List.map
          (fun (e : Flow_entry.t) ->
            Undo_modify (sid, e.pattern, e.priority, e.actions))
          touched
  | Message.Delete | Message.Delete_strict ->
      let strict = fm.command = Message.Delete_strict in
      touched_entries t sid ~strict ?out_port:fm.out_port fm.pattern
        ~priority:fm.priority
      |> List.map (fun e ->
             Undo_restore
               { switch = sid; entry = copy_entry e; saved_at = now t })

let apply t txn cmd =
  if txn.closed then invalid_arg "Netlog.apply: transaction already closed";
  t.n_ops <- t.n_ops + 1;
  let xid = fresh_xid t in
  let replies =
    match cmd with
    | Command.Flow (sid, fm) ->
        let undos = flow_mod_undos t sid fm in
        (* An application reinstalling a rule is a legitimate counter
           reset: the banked base must go, or later stats would resurrect
           pre-reset traffic. Consumption is transactional — abort
           re-credits. *)
        let undos =
          if fm.command = Message.Add then
            match
              Counter_cache.consume t.counter_cache sid fm.pattern
                ~priority:fm.priority
            with
            | Some (packets, bytes) ->
                Undo_recredit (sid, fm.pattern, fm.priority, packets, bytes)
                :: undos
            | None -> undos
          else undos
        in
        txn.undos <- undos @ txn.undos;
        t.send sid (Message.message ~xid (Message.Flow_mod fm))
    | Command.Packet (sid, po) ->
        (* Packets already on the wire cannot be recalled; no inverse. *)
        t.send sid (Message.message ~xid (Message.Packet_out po))
    | Command.Port (sid, pm) ->
        (* Capture the previous flag to restore it on abort. *)
        (try
           let sw = Net.switch t.network sid in
           match Netsim.Sw.port sw pm.Message.pm_port_no with
           | Some p ->
               txn.undos <-
                 Undo_port_mod
                   ( sid,
                     {
                       Message.pm_port_no = pm.Message.pm_port_no;
                       pm_no_flood = p.Netsim.Sw.no_flood;
                     } )
                 :: txn.undos
           | None -> ()
         with Not_found -> ());
        t.send sid (Message.message ~xid (Message.Port_mod pm))
    | Command.Stats (sid, req) ->
        t.send sid (Message.message ~xid (Message.Stats_request req))
        |> List.map (fun (reply : Message.t) ->
               match reply.payload with
               | Message.Stats_reply sr ->
                   {
                     reply with
                     payload =
                       Message.Stats_reply
                         (Counter_cache.adjust_reply t.counter_cache sid
                            ~request:req sr);
                   }
               | _ -> reply)
    | Command.Log _ -> []
  in
  txn.applied <- cmd :: txn.applied;
  replies

let run_undo t = function
  | Undo_recredit (sid, pattern, priority, packets, bytes) ->
      Counter_cache.credit t.counter_cache sid pattern ~priority ~packets
        ~bytes
  | Undo_port_mod (sid, pm) ->
      ignore
        (t.send sid
           (Message.message ~xid:(fresh_xid t) (Message.Port_mod pm)))
  | Undo_add (sid, pattern, priority) ->
      ignore
        (t.send sid
           (Message.message ~xid:(fresh_xid t)
              (Message.Flow_mod (Message.flow_delete ~strict:true ~priority pattern))))
  | Undo_modify (sid, pattern, priority, actions) ->
      let fm =
        {
          (Message.flow_add ~priority pattern actions) with
          Message.command = Message.Modify_strict;
        }
      in
      ignore
        (t.send sid
           (Message.message ~xid:(fresh_xid t) (Message.Flow_mod fm)))
  | Undo_restore { switch = sid; entry = e; saved_at } ->
      (* Remaining lifetime as of the moment the rule was destroyed; a rule
         whose hard timeout had (almost) elapsed is not resurrected. *)
      let elapsed = int_of_float (saved_at -. e.installed_at) in
      let remaining_hard =
        if e.hard_timeout = 0 then 0 else e.hard_timeout - elapsed
      in
      if e.hard_timeout > 0 && remaining_hard <= 0 then ()
      else begin
        (* OpenFlow cannot install non-zero counters: bank them. *)
        if e.packet_count > 0 || e.byte_count > 0 then
          Counter_cache.credit t.counter_cache sid e.pattern
            ~priority:e.priority ~packets:e.packet_count ~bytes:e.byte_count;
        let fm =
          Message.flow_add ~cookie:e.cookie ~idle_timeout:e.idle_timeout
            ~hard_timeout:remaining_hard ~priority:e.priority
            ~notify_when_removed:e.notify_when_removed e.pattern e.actions
        in
        ignore
          (t.send sid
             (Message.message ~xid:(fresh_xid t) (Message.Flow_mod fm)))
      end

let commit t txn =
  if not txn.closed then begin
    txn.closed <- true;
    t.n_committed <- t.n_committed + 1;
    t.history <-
      {
        je_app = txn.app;
        je_committed = true;
        je_ops = List.rev txn.applied;
        je_rolled_back = 0;
      }
      :: t.history
  end

let abort t txn =
  if not txn.closed then begin
    txn.closed <- true;
    t.n_aborted <- t.n_aborted + 1;
    let attrs =
      if Obs.Tracer.enabled t.tracer then
        [ ("app", txn.app); ("undos", string_of_int (List.length txn.undos)) ]
      else []
    in
    Obs.Tracer.with_span t.tracer ~attrs Obs.Span.Txn_rollback (fun () ->
        List.iter
          (fun undo ->
            t.n_rolled_back <- t.n_rolled_back + 1;
            run_undo t undo)
          txn.undos);
    t.history <-
      {
        je_app = txn.app;
        je_committed = false;
        je_ops = List.rev txn.applied;
        je_rolled_back = List.length txn.undos;
      }
      :: t.history;
    txn.undos <- []
  end

let issued txn = List.rev txn.applied

let engine t : Txn_engine.t =
  {
    engine_name = "netlog";
    begin_txn =
      (fun ~app ->
        let txn = begin_txn t ~app in
        {
          Txn_engine.apply = (fun cmd -> apply t txn cmd);
          commit = (fun () -> commit t txn);
          abort = (fun () -> abort t txn);
          issued = (fun () -> issued txn);
        });
  }
