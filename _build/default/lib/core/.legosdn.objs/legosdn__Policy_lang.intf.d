lib/core/policy_lang.mli: Format Policy
