lib/netsim/net.ml: Action Clock Flow_table Hashtbl List Message Openflow Packet Sw Topology Types
