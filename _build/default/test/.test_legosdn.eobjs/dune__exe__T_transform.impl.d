test/t_transform.ml: Alcotest Controller Legosdn List Message Ofp_match Openflow Packet T_util
