lib/apps/hub.ml: Action Command Controller Event Message Openflow Types
