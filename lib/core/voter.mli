(** Sandboxed N-version voting (§3.4 + MORPH).

    The in-process {!Nversion} functors vote inside one application: a
    byzantine variant is out-voted, but a crashing variant takes the whole
    bundle down with it and every variant shares one sandbox, one
    checkpoint stream and one address space. This module moves the vote
    into the runtime: each variant runs in its {e own} {!Sandbox} with its
    own (delta) checkpoint store, every delivery's emitted command set is
    held in a NetLog transaction until the election, and only the majority
    command set is committed to the network. A disagreeing or crashed
    replica is repaired from the majority's snapshot, shipped through a
    content-addressed {!Checkpoint.Chunk_store} manifest exactly like a
    standby's state transfer.

    MORPH-style adaptation: after enough consecutive clean, unanimous
    elections the panel sheds to its primary variant alone (solo Crash-Pad
    dispatch, no voting overhead); the first failure in shed mode re-spins
    the full panel, re-synchronised from the recovered primary. *)

open Controller

(** {1 Elections}

    The pure voting rule, shared with the {!Nversion} functor adapters. *)

val canonical : Command.t list -> Command.t list
(** The vote key: only network-effecting commands. [Log] commands carry
    diagnostics, not forwarding behaviour — two variants that differ only
    in logging emit the {e same} vote. *)

type 'v ballot = { voter : 'v; commands : Command.t list }
(** One live variant's emitted commands for the event, in arrival order. *)

type 'v election = {
  winners : 'v ballot list;
      (** The winning vote group, first-arrival order; never empty. *)
  losers : 'v ballot list;  (** Out-voted live ballots, first-arrival order. *)
  majority : bool;
      (** [2 * |winners| > |ballots|]: a strict majority of the live
          variants agree. Without one, the first-arrival group wins
          deterministically (ties broken by arrival order, never by state
          comparison). *)
}

val elect : 'v ballot list -> 'v election option
(** [None] iff no ballots were cast. Ballots are grouped by
    {!canonical} command set; the largest group wins, with ties broken in
    favour of the group whose first ballot arrived earliest. *)

(** {1 The sandboxed panel} *)

type config = {
  nv_replicas : int;  (** Panel size; 2f+1 masks f byzantine variants. *)
  nv_adaptive : bool;  (** MORPH shed/grow. *)
  nv_shed_after : int;
      (** Consecutive clean unanimous elections before shedding to the
          primary alone. *)
}

val default_config : config
(** 3 replicas, adaptive on, shed after 8 clean elections. *)

type t

val create :
  ?config:config ->
  make_ckpt:(unit -> Checkpoint.t) ->
  checkpoint_every:int ->
  (App_sig.app * bool) list ->
  t
(** One panel over the given variants (primary first). The [bool] marks a
    variant as {e re-syncable}: its state representation is that of the
    primary's module, so a majority snapshot may be restored into it.
    Variants wrapping a different state type (e.g. a fault-injection
    wrapper) must pass [false] — they are still voted and out-voted, but
    repaired only from their own checkpoints. Each variant gets its own
    sandbox and its own checkpoint store from [make_ckpt]. Raises
    [Invalid_argument] on an empty variant list or mismatched names. *)

val replicate :
  ?config:config ->
  make_ckpt:(unit -> Checkpoint.t) ->
  checkpoint_every:int ->
  App_sig.app ->
  t
(** [create] over [nv_replicas] copies of one module — independent states,
    identical code (data diversity rather than design diversity). *)

val name : t -> string
(** The application name (shared by every variant). *)

val config : t -> config
val sandboxes : t -> Sandbox.t list
(** Every variant's sandbox, primary first. *)

val primary : t -> Sandbox.t
val panel_active : t -> bool
(** [false] while shed to the primary alone. *)

val dispatch : Crashpad.config -> Crashpad.deps -> t -> Event.t -> unit
(** Deliver one event through the panel. Never raises on variant failure.

    Panel mode: deliver to every live variant (outputs held), elect, screen
    the winning command set exactly as Crash-Pad screens a solo app
    (resource limits, byzantine check, unreachable switches), commit it in
    one transaction, confirm the agreeing variants, revert and re-sync the
    out-voted ones. The bundle fails — one counted failure, one compromise,
    one ticket — only when {e every} subscribed variant dies on the event.

    Shed mode: solo Crash-Pad dispatch of the primary; a failure re-spins
    the panel when adaptive. *)
