(* The N-version voting layer: election rules (canonical vote keys,
   first-arrival tie-break), the Nversion functor seed fixes (Dead vs
   Abstained, state really unchanged on crash), the runtime-level
   sandboxed panel (byzantine output masked before it reaches the
   network, MORPH-style adaptive shed/grow), and the differential
   property: a panel of three identical healthy variants is
   observationally equivalent to the solo app. *)

open Openflow
module App_sig = Controller.App_sig
module Event = Controller.Event
module Command = Controller.Command
module Runtime = Legosdn.Runtime
module Voter = Legosdn.Voter
module Nversion = Legosdn.Nversion
module Metrics = Legosdn.Metrics
module Runner = Check.Runner
module Spec = Check.Spec
module SGen = Check.Gen
module Clock = Netsim.Clock
module Net = Netsim.Net
module Topo_gen = Netsim.Topo_gen
module Topology = Netsim.Topology

let packet_in ?(sid = 1) src dst =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = 100;
        pi_reason = Message.No_match;
        pi_packet = T_util.tcp_packet src dst;
      } )

let ctx = T_util.null_context

let flow sid out =
  Command.install sid (Ofp_match.make ~tp_dst:80 ()) [ Action.Output out ]

let flows_only cmds =
  List.filter (function Command.Flow _ -> true | _ -> false) cmds

(* ------------------------------------------------------------------ *)
(* Election rules *)

let test_canonical_strips_log () =
  let cmds = [ Command.Log "diag"; flow 1 2; Command.Log "more" ] in
  Alcotest.(check int) "only the flow survives" 1
    (List.length (Voter.canonical cmds));
  T_util.checkb "pure-log ballot has an empty key" true
    (Voter.canonical [ Command.Log "x" ] = [])

let ballot voter commands = { Voter.voter; commands }

let test_first_arrival_tie_break () =
  (* Two equal-sized groups: the earliest-arrived group must win. *)
  let e =
    match
      Voter.elect
        [
          ballot 1 [ flow 1 2 ];
          ballot 2 [ flow 1 9 ];
          ballot 3 [ flow 1 9 ];
          ballot 4 [ flow 1 2 ];
        ]
    with
    | Some e -> e
    | None -> Alcotest.fail "election expected"
  in
  Alcotest.(check (list int)) "first-arrived group wins the tie" [ 1; 4 ]
    (List.map (fun b -> b.Voter.voter) e.Voter.winners);
  T_util.checkb "a 2-of-4 tie is not a majority" false e.Voter.majority

let test_log_only_divergence_is_unanimous () =
  (* Variants that differ only in diagnostics cast the same vote. *)
  let e =
    match
      Voter.elect
        [
          ballot 1 [ flow 1 2 ];
          ballot 2 [ Command.Log "chatty"; flow 1 2 ];
        ]
    with
    | Some e -> e
    | None -> Alcotest.fail "election expected"
  in
  T_util.checkb "no losers" true (e.Voter.losers = []);
  T_util.checkb "unanimous majority" true e.Voter.majority

let test_majority_wins () =
  let e =
    match
      Voter.elect
        [ ballot 1 [ flow 1 9 ]; ballot 2 [ flow 1 2 ]; ballot 3 [ flow 1 2 ] ]
    with
    | Some e -> e
    | None -> Alcotest.fail "election expected"
  in
  Alcotest.(check (list int)) "2-of-3 wins" [ 2; 3 ]
    (List.map (fun b -> b.Voter.voter) e.Voter.winners);
  Alcotest.(check (list int)) "divergent voter loses" [ 1 ]
    (List.map (fun b -> b.Voter.voter) e.Voter.losers);
  T_util.checkb "majority" true e.Voter.majority

(* ------------------------------------------------------------------ *)
(* The Nversion functor: seed fixes *)

let voter name out : (module App_sig.APP) =
  (module struct
    type state = int

    let name = name
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    let handle _ st = function
      | Event.Packet_in (sid, _) -> (st + 1, [ flow sid out ])
      | _ -> (st, [])
  end)

let crasher name : (module App_sig.APP) =
  (module struct
    type state = int

    let name = name
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0
    let handle _ _ _ : int * Command.t list = failwith (name ^ " dies")
  end)

(* Subscribed to nothing the test sends: a healthy non-voter. *)
let bystander name : (module App_sig.APP) =
  (module struct
    type state = int

    let name = name
    let subscriptions = [ Event.K_switch_up ]
    let init () = 0
    let handle _ st _ = (st, [])
  end)

(* One crash among variants that merely did not subscribe must NOT kill
   the bundle: the non-subscribers are healthy. The seed raised here. *)
let test_dead_plus_abstained_survives () =
  let module V =
    (val (module Nversion.Make3
                   ((val crasher "v1")) ((val bystander "v1"))
                   ((val bystander "v1"))
           : App_sig.APP))
  in
  match V.handle ctx (V.init ()) (packet_in 1 2) with
  | _, cmds -> T_util.checkb "no commands, no crash" true (flows_only cmds = [])
  | exception _ ->
      Alcotest.fail "bundle crashed while healthy variants existed"

(* Mutable (hashtable-backed) state must really be unchanged when a
   version dies mid-handler: without the snapshot/restore in [run], the
   partial mutation leaks, and on the next event the poisoned version
   outvotes the healthy one by arriving first. *)
module Mut = struct
  type state = (string, int) Hashtbl.t

  let name = "v1"
  let subscriptions = [ Event.K_packet_in ]
  let init () = Hashtbl.create 4

  let handle _ st = function
    | Event.Packet_in (sid, _) ->
        if Hashtbl.mem st "poison" then (st, [ flow sid 9 ])
        else begin
          Hashtbl.add st "poison" 1;
          failwith "mut dies"
        end
    | _ -> (st, [])
end

let test_dead_state_really_unchanged () =
  let module V =
    (val (module Nversion.Make2 (Mut) ((val voter "v1" 2))) : App_sig.APP)
  in
  let st = ref (V.init ()) in
  let all = ref [] in
  for _ = 1 to 2 do
    let st', cmds = V.handle ctx !st (packet_in 1 2) in
    st := st';
    all := !all @ cmds
  done;
  List.iter
    (function
      | Command.Flow (_, fm) ->
          Alcotest.(check (list int)) "healthy output on every event" [ 2 ]
            (Action.outputs fm.Message.actions)
      | _ -> ())
    !all;
  T_util.checkb "no divergence: the crash never leaked state" false
    (List.exists
       (function
         | Command.Log s -> s = "nversion(v1|v2): versions diverged"
         | _ -> false)
       !all)

(* Log-only divergence through the functor: no spurious outvoting. *)
let test_functor_ignores_log_divergence () =
  let chatty name out : (module App_sig.APP) =
    (module struct
      type state = int

      let name = name
      let subscriptions = [ Event.K_packet_in ]
      let init () = 0

      let handle _ st = function
        | Event.Packet_in (sid, _) ->
            (st + 1, [ Command.Log "debug"; flow sid out ])
        | _ -> (st, [])
    end)
  in
  let module V =
    (val (module Nversion.Make2 ((val voter "v1" 2)) ((val chatty "v2" 2)))
       : App_sig.APP)
  in
  let _, cmds = V.handle ctx (V.init ()) (packet_in 1 2) in
  T_util.checkb "no divergence logged for log-only difference" false
    (List.exists
       (function
         | Command.Log s -> s = "nversion(v1|v2): versions diverged"
         | _ -> false)
       cmds)

(* ------------------------------------------------------------------ *)
(* The runtime-level sandboxed panel *)

let byz_bug =
  Apps.Bug_model.make
    (Apps.Bug_model.On_kind Event.K_packet_in)
    Apps.Bug_model.Byzantine_blackhole

let panel_config ?(adaptive = false) ?(shed_after = 8) n =
  {
    Runtime.default_config with
    Runtime.nversion =
      Some
        {
          Voter.nv_replicas = n;
          nv_adaptive = adaptive;
          nv_shed_after = shed_after;
        };
  }

let inject_pairs net clock rt n =
  let hosts = Topology.hosts (Net.topology net) in
  let k = List.length hosts in
  for i = 0 to n - 1 do
    Clock.advance_by clock 0.05;
    let src = List.nth hosts (i mod k) in
    let dst = List.nth hosts ((i + 1) mod k) in
    Net.inject net src (Packet.tcp ~src_host:src ~dst_host:dst ~dport:80 ());
    Runtime.step rt
  done

(* A seated byzantine variant is outvoted on every packet-in, its
   blackhole rule never reaches a switch, and no failure is counted —
   masking is silent, not a Crash-Pad resolution. *)
let test_byzantine_variant_masked () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let base = App_sig.app (module Apps.Hub) in
  let byz = Apps.Faulty.wrap ~bug:byz_bug base in
  let nv_variants name =
    if name = "hub" then Some [ (base, true); (base, true); (byz, false) ]
    else None
  in
  let rt = Runtime.create ~config:(panel_config 3) ~nv_variants net [ base ] in
  Runtime.step rt;
  inject_pairs net clock rt 6;
  let m = Runtime.metrics rt in
  T_util.checkb "panel voted" true (Metrics.nv_events m >= 6);
  T_util.checkb "byzantine output masked" true (Metrics.nv_masked m >= 1);
  T_util.checkb "outvoted at least once per masked event" true
    (Metrics.nv_outvoted m >= Metrics.nv_masked m);
  T_util.checki "masking is not a counted failure" 0 (Metrics.crashes m);
  T_util.checki "masking files no ticket" 0
    (List.length (Runtime.tickets rt));
  List.iter
    (fun sid ->
      List.iter
        (fun (e : Netsim.Flow_entry.t) ->
          T_util.checkb "no byzantine rule reached the network" true
            (e.Netsim.Flow_entry.priority <> 65000))
        (Netsim.Flow_table.entries (Net.switch net sid).Netsim.Sw.table))
    (Topology.switches (Net.topology net))

(* A crashing variant is a casualty, not a bundle failure: the healthy
   majority commits, the casualty is recovered and re-synced. *)
let test_variant_crash_is_masked () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let base = App_sig.app (module Apps.Hub) in
  let crash =
    Apps.Faulty.wrap
      ~bug:(Apps.Bug_model.make
              (Apps.Bug_model.On_kind Event.K_packet_in)
              Apps.Bug_model.Crash)
      base
  in
  let nv_variants name =
    if name = "hub" then Some [ (base, true); (base, true); (crash, false) ]
    else None
  in
  let rt = Runtime.create ~config:(panel_config 3) ~nv_variants net [ base ] in
  Runtime.step rt;
  inject_pairs net clock rt 4;
  let m = Runtime.metrics rt in
  T_util.checkb "variant crashes recorded" true
    (Metrics.nv_variant_crashes m >= 1);
  T_util.checki "no bundle failure" 0 (Metrics.crashes m);
  T_util.checkb "hub still forwarded traffic" true
    ((Net.stats net).Net.delivered > 0)

(* MORPH: a clean panel sheds to the primary; a failure in shed mode
   re-spins the full panel. *)
let test_adaptive_shed_and_grow () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let base = App_sig.app (module Apps.Hub) in
  (* Healthy for the first three packet-ins, then crashes once: the
     panel sheds after two clean votes, so the 4th packet-in crashes the
     primary while it runs alone. *)
  let flaky =
    Apps.Faulty.wrap
      ~bug:(Apps.Bug_model.make
              (Apps.Bug_model.On_nth_of_kind (Event.K_packet_in, 4))
              Apps.Bug_model.Crash)
      base
  in
  let nv_variants name =
    if name = "hub" then Some [ (flaky, false); (base, true); (base, true) ]
    else None
  in
  let rt =
    Runtime.create
      ~config:(panel_config ~adaptive:true ~shed_after:2 3)
      ~nv_variants net [ base ]
  in
  Runtime.step rt;
  (match Runtime.voters rt with
  | [ v ] -> T_util.checkb "panel starts full" true (Voter.panel_active v)
  | _ -> Alcotest.fail "expected exactly one panel");
  inject_pairs net clock rt 8;
  let m = Runtime.metrics rt in
  T_util.checkb "panel shed while clean" true (Metrics.nv_sheds m >= 1);
  T_util.checkb "panel re-grown on the shed-mode failure" true
    (Metrics.nv_grows m >= 1);
  match Runtime.voters rt with
  | [ v ] -> T_util.checkb "panel active again" true (Voter.panel_active v)
  | _ -> Alcotest.fail "expected exactly one panel"

(* ------------------------------------------------------------------ *)
(* Differential: 3 identical healthy variants == the solo app *)

let verdict_of (r : Runner.result) =
  match r.Runner.failure with
  | Some f -> f.Runner.oracle
  | None -> "none"

let equivalent (a : Runner.result) (b : Runner.result) =
  verdict_of a = verdict_of b
  && a.Runner.trace = b.Runner.trace
  && a.Runner.final = b.Runner.final

let explain spec (a : Runner.result) (b : Runner.result) =
  let af = a.Runner.final and bf = b.Runner.final in
  let part name eq = if eq then None else Some name in
  let diffs =
    List.filter_map Fun.id
      [
        part "verdict" (verdict_of a = verdict_of b);
        part "event-trace" (a.Runner.trace = b.Runner.trace);
        part "flow-tables" (af.Runner.tables = bf.Runner.tables);
        part "shadow-intent" (af.Runner.shadows = bf.Runner.shadows);
        part "netlog-journal" (af.Runner.journal = bf.Runner.journal);
        part "metrics"
          ((af.Runner.f_events, af.Runner.f_crashes, af.Runner.f_committed,
            af.Runner.f_aborted)
          = (bf.Runner.f_events, bf.Runner.f_crashes, bf.Runner.f_committed,
             bf.Runner.f_aborted));
      ]
  in
  Printf.sprintf "spec %s: %s diverge(s)" (Check.Spec.summary spec)
    (String.concat ", " diffs)

(* Identical healthy variants vote unanimously on every event, so the
   panel must be invisible on the whole equivalence surface. Injected
   bugs are filtered out: a crashing app crashes all three variants
   identically, but the bundle's rollback accounting (one repair of
   three sandboxes vs. one of one) legitimately differs. *)
let healthy spec =
  {
    spec with
    Spec.elements =
      List.filter
        (function Spec.Inject_bug _ -> false | _ -> true)
        spec.Spec.elements;
  }

let solo_cache : (int, Runner.result) Hashtbl.t = Hashtbl.create 64

let solo seed =
  match Hashtbl.find_opt solo_cache seed with
  | Some r -> r
  | None ->
      let r = Runner.run (healthy (SGen.scenario seed)) in
      Hashtbl.add solo_cache seed r;
      r

let prop_panel_differential =
  QCheck2.Test.make
    ~name:"3-identical-healthy panel == solo app" ~count:60
    QCheck2.Gen.(int_bound 120)
    (fun seed ->
      let spec = healthy (SGen.scenario seed) in
      let a = solo seed in
      let b = Runner.run { spec with Spec.nversion = 3 } in
      if equivalent a b then true
      else QCheck2.Test.fail_report (explain spec a b))

let suite =
  [
    Alcotest.test_case "canonical strips Log" `Quick test_canonical_strips_log;
    Alcotest.test_case "first-arrival tie-break" `Quick
      test_first_arrival_tie_break;
    Alcotest.test_case "log-only divergence is unanimous" `Quick
      test_log_only_divergence_is_unanimous;
    Alcotest.test_case "majority wins" `Quick test_majority_wins;
    Alcotest.test_case "dead + abstained survives" `Quick
      test_dead_plus_abstained_survives;
    Alcotest.test_case "dead state really unchanged" `Quick
      test_dead_state_really_unchanged;
    Alcotest.test_case "functor ignores log divergence" `Quick
      test_functor_ignores_log_divergence;
    Alcotest.test_case "byzantine variant masked" `Quick
      test_byzantine_variant_masked;
    Alcotest.test_case "variant crash is masked" `Quick
      test_variant_crash_is_masked;
    Alcotest.test_case "adaptive shed and grow" `Quick
      test_adaptive_shed_and_grow;
    QCheck_alcotest.to_alcotest prop_panel_differential;
  ]
