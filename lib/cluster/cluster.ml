(* The replicated controller cluster: 2f+1 simulated controller instances
   sharing one southbound network, with the Runtime event log replicated
   through a Raft core over controller-to-controller channels that use
   the same seeded fault model as the southbound ones.

   The invariant the whole layer is built around: *dispatched implies
   committed*. The leader polls the network, appends each translated
   event to the Raft log, and only hands it to [Runtime.dispatch_event]
   once a majority has replicated it. A leader killed mid-transaction
   therefore only leaves effects of committed entries on the wire, and
   its successor — restored from the last shipped state transfer and
   re-dispatching the committed suffix with the same xid sequence —
   completes the interrupted transaction invisibly: switch-side xid
   dedup absorbs the commands that already landed, the rest apply
   fresh. *)

module Raft = Raft
module Net = Netsim.Net
module Clock = Netsim.Clock
module Sw = Netsim.Sw
module Channel = Netsim.Channel
module Event_queue = Netsim.Event_queue
module Topology = Netsim.Topology
module Event = Controller.Event
module Services = Controller.Services
module Message = Openflow.Message
module Runtime = Legosdn.Runtime
module Reliable = Legosdn.Reliable
module Netlog = Legosdn.Netlog
module Wire = Legosdn.Wire
module State_transfer = Legosdn.State_transfer

type node = {
  node_id : int;
  raft : Raft.t;
  mutable alive : bool;
  (* [Some] only while (or after) this node has led: followers keep
     sandboxes warm through state transfers, not live runtimes. *)
  mutable runtime : Runtime.t option;
  (* Context replica: advanced by [Services.observe] entry-by-entry just
     before dispatch, so the context apps consult depends only on the log
     prefix — identical on whichever leader dispatches the entry. *)
  mutable ctx_services : Services.t option;
  mutable last_dispatched : int;
}

type link = { ch : Channel.t; inflight : Raft.msg Event_queue.t }

type t = {
  net : Net.t;
  modules : Controller.App_sig.app list;
  config : Runtime.config;
  nodes : node array;
  (* (src, dst) directed links in a fixed iteration order: hashtable
     iteration order must never decide delivery order. *)
  links : ((int * int) * link) list;
  xfer : State_transfer.t;
  mutable latest : State_transfer.snapshot option;
  sync_every : int;
  on_runtime : Runtime.t -> unit;
  mutable tracer : Obs.Tracer.t;
  mutable kill_armed : bool;
  mutable kill_time : float option;
  mutable n_kills : int;
  mutable n_failovers : int;
  mutable had_leader : bool;
  mutable replication_msgs : int;
  mutable replication_bytes : int;
  mutable failover_latencies : float list;
  mutable last_runtime : Runtime.t option;
}

let now t = Clock.now (Net.clock t.net)

(* Byte cost of one peer message, for the replication-overhead metric:
   replicated events are priced at their AppVisor wire encoding (the
   bytes a real deployment would ship), plus a small fixed header per
   message. *)
let msg_bytes = function
  | Raft.Request_vote _ | Raft.Vote _ | Raft.Append_reply _ -> 16
  | Raft.Append_entries { entries; _ } ->
      32
      + List.fold_left
          (fun acc (e : Raft.entry) -> acc + Wire.event_size e.Raft.event)
          0 entries

let create ?(config = Runtime.default_config) ?(sync_every = 8)
    ?(peer_channel = Channel.perfect) ?(on_runtime = fun _ -> ()) ~seed net
    modules =
  let replicas = max 1 config.Runtime.cluster.Runtime.replicas in
  let lo = config.Runtime.cluster.Runtime.election_lo in
  let hi = config.Runtime.cluster.Runtime.election_hi in
  let t0 = Clock.now (Net.clock net) in
  let ids = List.init replicas (fun i -> i) in
  let nodes =
    Array.init replicas (fun i ->
        {
          node_id = i;
          raft =
            Raft.create ~id:i ~peers:ids
              ~seed:((seed * 8191) + (i * 31) + 5)
              ~lo ~hi ~now:t0;
          alive = true;
          runtime = None;
          ctx_services = None;
          last_dispatched = 0;
        })
  in
  let links =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i = j then None
            else
              Some
                ( (i, j),
                  {
                    ch =
                      Channel.create ~config:peer_channel
                        ~seed:((seed * 65537) + (i * 257) + j)
                        ();
                    inflight = Event_queue.create ();
                  } ))
          ids)
      ids
  in
  {
    net;
    modules;
    config;
    nodes;
    links;
    xfer = State_transfer.create ();
    latest = None;
    sync_every = max 1 sync_every;
    on_runtime;
    tracer = Obs.Tracer.noop;
    kill_armed = false;
    kill_time = None;
    n_kills = 0;
    n_failovers = 0;
    had_leader = false;
    replication_msgs = 0;
    replication_bytes = 0;
    failover_latencies = [];
    last_runtime = None;
  }

let set_tracer t tracer = t.tracer <- tracer

let link t i j = List.assoc (i, j) t.links

(* Offer one peer message to its directed channel: the seeded fault model
   decides loss, duplication and delay, exactly as on the southbound. *)
let transmit t ~now:at src dst msg =
  if t.nodes.(dst).alive then begin
    t.replication_msgs <- t.replication_msgs + 1;
    t.replication_bytes <- t.replication_bytes + msg_bytes msg;
    match Channel.forward (link t src dst).ch with
    | None -> ()
    | Some delays ->
        List.iter
          (fun d ->
            Event_queue.push (link t src dst).inflight ~time:(at +. d) msg)
          delays
  end

let route t ~now src outs =
  List.iter (fun (dst, msg) -> transmit t ~now src dst msg) outs

(* Deliver every due in-flight message, repeatedly, until quiescent:
   zero-delay replies generated during delivery are themselves due. The
   round bound is a safety net — Raft exchanges settle in a handful of
   rounds. *)
let pump t ~now:at =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 64 do
    incr rounds;
    continue_ := false;
    List.iter
      (fun ((_, dst), l) ->
        List.iter
          (fun (_, msg) ->
            continue_ := true;
            let n = t.nodes.(dst) in
            if n.alive then route t ~now:at n.node_id (Raft.receive n.raft ~now:at msg))
          (Event_queue.drain_until l.inflight ~time:at))
      t.links
  done

(* Election timers. The cluster is stepped at the driver's cadence
   (coarser than the election timeout), so by the time a step runs, every
   timer may look expired. A live leader must still suppress elections:
   leaders act first — their heartbeats, delivered at this same virtual
   instant, reset every follower's timer before it is checked. Followers
   and candidates then act in (deadline, id) order, so after a clock jump
   past several deadlines the node whose timer expired first elects
   first, its Request_vote resets the granting peers' timers, and the
   dueling-candidates race resolves identically on every replay. *)
let election_pass t ~now:at =
  Array.iter
    (fun n ->
      if n.alive && Raft.role n.raft = Raft.Leader then begin
        route t ~now:at n.node_id (Raft.tick n.raft ~now:at);
        pump t ~now:at
      end)
    t.nodes;
  let by_deadline =
    List.sort
      (fun a b ->
        compare (Raft.deadline a.raft, a.node_id) (Raft.deadline b.raft, b.node_id))
      (Array.to_list t.nodes)
  in
  List.iter
    (fun n ->
      if n.alive && Raft.role n.raft <> Raft.Leader then begin
        route t ~now:at n.node_id (Raft.tick n.raft ~now:at);
        pump t ~now:at
      end)
    by_deadline

let gate_for t node _sid (msg : Message.t) =
  if not node.alive then false
  else if t.kill_armed && Message.is_state_altering msg.Message.payload then begin
    (* The armed kill fires on the next state-altering send: this one
       copy leaves (the transaction is now half on the wire), everything
       after is black-holed — the controller process is gone. *)
    t.kill_armed <- false;
    t.kill_time <- Some (now t);
    t.n_kills <- t.n_kills + 1;
    node.alive <- false;
    true
  end
  else true

let maybe_ship t node rt =
  if
    node.alive && node.last_dispatched > 0
    && node.last_dispatched mod t.sync_every = 0
  then begin
    let snap = State_transfer.ship t.xfer ~commit_index:node.last_dispatched rt in
    t.latest <- Some snap;
    Obs.Tracer.instant t.tracer
      ~attrs:[ ("commit", string_of_int node.last_dispatched) ]
      Obs.Span.State_transfer
  end

(* Dispatch every committed-but-undispatched entry, in log order. The
   context replica advances first so the app-visible context at entry i
   is a function of the log prefix alone. A node that dies mid-entry
   (the armed kill) stops here; its successor re-dispatches the rest. *)
let dispatch_committed t node =
  match (node.runtime, node.ctx_services) with
  | Some rt, Some ctx ->
      while node.alive && node.last_dispatched < Raft.commit_index node.raft do
        let i = node.last_dispatched + 1 in
        let e = Raft.entry node.raft i in
        Services.observe ctx e.Raft.event;
        Runtime.dispatch_event rt e.Raft.event;
        node.last_dispatched <- i;
        maybe_ship t node rt
      done
  | _ -> ()

(* Replicate the leader's appended suffix and collect the acks; with
   perfect zero-delay peer channels commit advances within the call, so
   dispatch follows at the same virtual instant. *)
let replicate t ~now:at node =
  route t ~now:at node.node_id (Raft.heartbeats node.raft);
  pump t ~now:at

let install_leader t ~now:at node =
  let is_failover = t.had_leader in
  t.had_leader <- true;
  let base, xid_base =
    match t.latest with
    | Some s -> (s.State_transfer.commit_index, s.State_transfer.next_xid)
    | None -> (0, 1)
  in
  let rt =
    Runtime.create ~config:t.config ~xid_base ~controller_id:node.node_id
      ~southbound_gate:(gate_for t node) t.net t.modules
  in
  (match t.latest with
  | Some s -> State_transfer.restore t.xfer s rt
  | None -> ());
  (* Service state is exactly recoverable from the log: every ingest-time
     state change co-emits an event that carries it. The ingesting
     services replay the whole log (they must reflect every notification
     the cluster has consumed from the network); the context replica
     replays only up to the transfer base and then advances per-dispatch. *)
  let ingest_sv = Runtime.services rt in
  for i = 1 to Raft.last_index node.raft do
    Services.observe ingest_sv (Raft.entry node.raft i).Raft.event
  done;
  let ctx = Services.create (Net.clock t.net) (Net.topology t.net) in
  for i = 1 to min base (Raft.last_index node.raft) do
    Services.observe ctx (Raft.entry node.raft i).Raft.event
  done;
  Runtime.set_context_services rt (Some ctx);
  node.runtime <- Some rt;
  node.ctx_services <- Some ctx;
  node.last_dispatched <- base;
  t.last_runtime <- Some rt;
  t.on_runtime rt;
  (* Master/slave roles: switches reject state-altering commands from
     anyone but the current leader, so a deposed leader's stale in-flight
     commands can never race its successor's. *)
  List.iter
    (fun sid -> Sw.set_master (Net.switch t.net sid) (Some node.node_id))
    (Topology.switches (Net.topology t.net));
  (* A no-op entry under the new term lets the leader commit (and hence
     re-dispatch) its predecessor's tail — the standard Raft trick. It
     sits after the inherited entries, so re-dispatched xids still line
     up with the predecessor's sequence. *)
  ignore (Raft.append node.raft (Event.Tick at));
  if is_failover then begin
    t.n_failovers <- t.n_failovers + 1;
    match t.kill_time with
    | Some k ->
        t.failover_latencies <- (at -. k) :: t.failover_latencies;
        t.kill_time <- None;
        Obs.Tracer.instant t.tracer
          ~attrs:
            [
              ("leader", string_of_int node.node_id);
              ("latency", Printf.sprintf "%.3f" (at -. k));
            ]
          Obs.Span.Failover
    | None ->
        Obs.Tracer.instant t.tracer
          ~attrs:[ ("leader", string_of_int node.node_id) ]
          Obs.Span.Failover
  end
  else
    Obs.Tracer.instant t.tracer
      ~attrs:[ ("leader", string_of_int node.node_id) ]
      Obs.Span.Election;
  replicate t ~now:at node;
  dispatch_committed t node

let takeover_pass t ~now:at =
  Array.iter
    (fun n ->
      if n.alive && Raft.role n.raft = Raft.Leader && n.runtime = None then
        install_leader t ~now:at n)
    t.nodes

(* The leader's I/O duty: poll the shared network, append each event to
   the log, replicate, and dispatch what committed. Polling re-checks
   after each batch (dispatch provokes replies), bounded by the same
   storm budget the single-controller step uses. *)
let storm_guard_events = 2048

let leader_io t ~now:at =
  Array.iter
    (fun node ->
      if node.alive && Raft.role node.raft = Raft.Leader then
        match node.runtime with
        | None -> ()
        | Some rt ->
            (match Runtime.reliable rt with
            | Some rel -> Reliable.tick rel
            | None -> ());
            let budget = ref storm_guard_events in
            let rec go () =
              if node.alive && !budget > 0 then
                match Runtime.poll_events rt with
                | [] -> ()
                | events ->
                    List.iter
                      (fun ev ->
                        if node.alive && !budget > 0 then begin
                          decr budget;
                          ignore (Raft.append node.raft ev)
                        end)
                      events;
                    Obs.Tracer.instant t.tracer
                      ~attrs:[ ("events", string_of_int (List.length events)) ]
                      Obs.Span.Replicate;
                    replicate t ~now:at node;
                    dispatch_committed t node;
                    go ()
            in
            go ())
    t.nodes

let step t =
  let at = now t in
  pump t ~now:at;
  election_pass t ~now:at;
  takeover_pass t ~now:at;
  leader_io t ~now:at

let tick t =
  let at = now t in
  pump t ~now:at;
  election_pass t ~now:at;
  takeover_pass t ~now:at;
  Array.iter
    (fun node ->
      if node.alive && Raft.role node.raft = Raft.Leader then
        match node.runtime with
        | None -> ()
        | Some rt ->
            (match Runtime.reliable rt with
            | Some rel -> Reliable.tick rel
            | None -> ());
            (* The periodic tick is an event like any other: it goes
               through the log, so followers replay the exact event
               sequence — ticks included — and a run is reproducible
               from the log alone. *)
            ignore (Raft.append node.raft (Event.Tick at));
            replicate t ~now:at node;
            dispatch_committed t node)
    t.nodes;
  leader_io t ~now:at

let arm_kill t = t.kill_armed <- true

(* ---------------- observation ---------------- *)

let nodes t = Array.length t.nodes

let alive_leaders t =
  Array.to_list t.nodes
  |> List.filter (fun n -> n.alive && Raft.role n.raft = Raft.Leader)
  |> List.map (fun n -> n.node_id)

let leader t =
  match alive_leaders t with
  | [ id ] -> Some id
  | [] -> None
  | ids ->
      (* Transient under partitions: prefer the highest term. *)
      List.fold_left
        (fun best id ->
          match best with
          | None -> Some id
          | Some b ->
              if Raft.term t.nodes.(id).raft > Raft.term t.nodes.(b).raft then
                Some id
              else best)
        None ids

let leader_runtime t =
  match leader t with Some id -> t.nodes.(id).runtime | None -> None

let active_runtime t =
  match leader_runtime t with Some rt -> Some rt | None -> t.last_runtime

let node_alive t i = t.nodes.(i).alive
let node_role t i = Raft.role t.nodes.(i).raft
let node_term t i = Raft.term t.nodes.(i).raft
let node_commit t i = Raft.commit_index t.nodes.(i).raft
let node_last_dispatched t i = t.nodes.(i).last_dispatched

let node_log t i =
  let raft = t.nodes.(i).raft in
  List.init (Raft.last_index raft) (fun k -> Raft.entry raft (k + 1))

let commit_index t =
  Array.fold_left
    (fun acc n -> if n.alive then max acc (Raft.commit_index n.raft) else acc)
    0 t.nodes

let kills t = t.n_kills
let failovers t = t.n_failovers
let elections t =
  Array.fold_left (fun acc n -> acc + Raft.elections_started n.raft) 0 t.nodes

let replication_msgs t = t.replication_msgs
let replication_bytes t = t.replication_bytes
let transfer_bytes t = State_transfer.shipped_bytes t.xfer
let transfers_shipped t = State_transfer.ships t.xfer
let failover_latencies t = List.rev t.failover_latencies

(* Every live node agrees on term and commit index — demanded by the
   fail-over oracle once channels are healed and the cluster has
   settled. *)
let converged t =
  let live =
    Array.to_list t.nodes |> List.filter (fun n -> n.alive)
  in
  match live with
  | [] -> false
  | n0 :: rest ->
      List.for_all
        (fun n ->
          Raft.term n.raft = Raft.term n0.raft
          && Raft.commit_index n.raft = Raft.commit_index n0.raft)
        rest
