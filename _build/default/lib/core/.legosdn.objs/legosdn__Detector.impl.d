lib/core/detector.ml: Command Controller Format Invariants List Printf Sandbox
