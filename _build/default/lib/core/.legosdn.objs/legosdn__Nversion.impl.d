lib/core/nversion.ml: App_sig Command Controller Event Fun List Printf
