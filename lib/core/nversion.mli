(** Software and data diversity (§3.4): run independently developed
    versions of the same application side by side and emit the
    majority-vote output.

    The combinators produce an ordinary {!Controller.App_sig.APP}, so a
    diversity bundle drops into any runtime — monolithic or LegoSDN —
    unchanged. A variant that crashes on an event loses its vote and its
    state really is unchanged (snapshotted before delivery, restored on
    the raise — mutable hashtable-backed states included); a byzantine
    variant is out-voted. Votes are keyed by {!Voter.canonical} command
    sets — variants that differ only in [Log] diagnostics agree — and
    ties are broken deterministically by first-arrival order
    ({!Voter.elect}). The bundle crashes only when {e every} variant died
    on the event; as long as any variant is healthy (voting or merely not
    subscribed), the bundle stays up and votes among the live subscribed
    voters.

    These in-process adapters share one sandbox, one checkpoint stream and
    one address space across the variants; {!Voter} is the runtime-level
    version of the same idea with per-variant sandboxes, held-until-
    election transactions and majority-snapshot re-sync. *)

open Controller

module Make2 (A : App_sig.APP) (B : App_sig.APP) : App_sig.APP
(** Two-version comparison: outputs are used only when both versions agree
    on their network-effecting commands; disagreement emits version A's
    output plus a [Log] command flagging the divergence (there is no
    majority with two voters). *)

module Make3 (A : App_sig.APP) (B : App_sig.APP) (C : App_sig.APP) :
  App_sig.APP
(** Three-version majority voting: the command set emitted by at least two
    live versions wins; with no majority, the first live version's output
    is used and the divergence is logged. If every version crashes, the
    bundle crashes (there is nothing left to vote). *)
