test/t_invariants.ml: Action Alcotest Clock Flow_table Invariants List Message Net Netsim Ofp_match Openflow Sw T_util Topo_gen Types
