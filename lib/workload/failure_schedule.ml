module Net = Netsim.Net
module Topology = Netsim.Topology

type timed_fault = float * Net.fault

let link_flap ~a ~b ~down_at ~up_at =
  [ (down_at, Net.Link_down (a, b)); (up_at, Net.Link_up (a, b)) ]

let switch_outage sid ~down_at ~up_at =
  [ (down_at, Net.Switch_down sid); (up_at, Net.Switch_up sid) ]

let channel_partition sid ~start ~stop =
  [ (start, Net.Channel_partition sid); (stop, Net.Channel_heal sid) ]

let loss_burst sid ~loss ~start ~stop =
  [ (start, Net.Channel_loss (sid, loss)); (stop, Net.Channel_loss (sid, 0.)) ]

let inter_switch_links topo =
  Topology.links topo
  |> List.filter (fun (l : Topology.link) ->
         match (l.a.node, l.b.node) with
         | Topology.Switch _, Topology.Switch _ -> true
         | _ -> false)

let periodic_link_flaps topo ~seed ~period ~downtime ~duration =
  let rng = Random.State.make [| seed |] in
  let candidates = Array.of_list (inter_switch_links topo) in
  if Array.length candidates = 0 then []
  else begin
    let rec go t acc =
      if t >= duration then List.rev acc
      else begin
        let l = candidates.(Random.State.int rng (Array.length candidates)) in
        let flap =
          link_flap ~a:l.Topology.a.node ~b:l.Topology.b.node ~down_at:t
            ~up_at:(t +. downtime)
        in
        go (t +. period) (List.rev_append flap acc)
      end
    in
    go period []
  end

let sorted faults = List.stable_sort (fun (a, _) (b, _) -> compare a b) faults
