module App_sig = Controller.App_sig
(* Spanning tree (Port_mod / NO_FLOOD) and ARP responder tests. *)

open Openflow
open Netsim
module Runtime = Legosdn.Runtime
module Netlog = Legosdn.Netlog
module Event = Controller.Event
module Command = Controller.Command

let runtime_over topo apps =
  let clock = Clock.create () in
  let net = Net.create clock topo in
  let rt = Runtime.create net apps in
  Runtime.step rt;
  (net, rt)

let no_flood_ports net sid =
  Sw.port_list (Net.switch net sid)
  |> List.filter (fun (p : Sw.port_state) -> p.no_flood)
  |> List.map (fun (p : Sw.port_state) -> p.port_no)

let total_pruned net sids =
  List.fold_left (fun acc sid -> acc + List.length (no_flood_ports net sid)) 0 sids

let test_port_mod_sets_flag () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  let replies =
    Net.send net 1
      (Message.message (Message.Port_mod { pm_port_no = 1; pm_no_flood = true }))
  in
  T_util.checkb "no error" true (replies = []);
  Alcotest.(check (list int)) "flag set" [ 1 ] (no_flood_ports net 1);
  T_util.checkb "bad port errors" true
    (match
       Net.send net 1
         (Message.message (Message.Port_mod { pm_port_no = 99; pm_no_flood = true }))
     with
    | [ { Message.payload = Message.Error (Message.Port_mod_failed, _); _ } ] -> true
    | _ -> false)

let test_flood_honors_no_flood_all_does_not () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  (* s2 has ports 1 (to s1), 2 (to s3), 100 (host). Prune port 2. *)
  ignore
    (Net.send net 2
       (Message.message (Message.Port_mod { pm_port_no = 2; pm_no_flood = true })));
  let sw = Net.switch net 2 in
  let flood =
    Sw.handle_message sw ~now:0.
      (Message.message
         (Message.Packet_out
            {
              po_buffer_id = None;
              po_in_port = Some 1;
              po_actions = [ Action.Output Types.port_flood ];
              po_packet = Some (T_util.tcp_packet 1 2);
            }))
    |> snd
  in
  Alcotest.(check (list int)) "flood skips pruned port" [ 100 ]
    (List.map snd flood.Sw.transmits);
  let all =
    Sw.handle_message sw ~now:0.
      (Message.message
         (Message.Packet_out
            {
              po_buffer_id = None;
              po_in_port = Some 1;
              po_actions = [ Action.Output Types.port_all ];
              po_packet = Some (T_util.tcp_packet 1 2);
            }))
    |> snd
  in
  Alcotest.(check (list int)) "ALL ignores the flag" [ 2; 100 ]
    (List.sort compare (List.map snd all.Sw.transmits))

let test_stp_prunes_ring () =
  let net, rt = runtime_over (Topo_gen.ring ~hosts_per_switch:1 4) [ (App_sig.app (module Apps.Spanning_tree)) ] in
  ignore rt;
  (* Ring of 4: 4 links, tree has 3 — one link pruned, i.e. both of its
     endpoints have NO_FLOOD. *)
  T_util.checki "exactly one link pruned (2 ports)" 2 (total_pruned net [ 1; 2; 3; 4 ])

let test_stp_keeps_linear_untouched () =
  let net, _ = runtime_over (Topo_gen.linear ~hosts_per_switch:1 4) [ (App_sig.app (module Apps.Spanning_tree)) ] in
  T_util.checki "no redundancy, nothing pruned" 0 (total_pruned net [ 1; 2; 3; 4 ])

let test_stp_stops_broadcast_storm () =
  (* A hub flooding a ring is the storm case the guard sheds; with the
     spanning tree pruning the loop, nothing needs shedding at all. *)
  let storm_shed with_stp =
    let apps : Controller.App_sig.app list =
      if with_stp then [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Hub)) ]
      else [ (App_sig.app (module Apps.Hub)) ]
    in
    let net, rt = runtime_over (Topo_gen.ring ~hosts_per_switch:1 4) apps in
    Net.inject net 1 (T_util.tcp_packet 1 3);
    Runtime.step rt;
    Runtime.events_shed rt
  in
  T_util.checkb "hub alone storms the ring" true (storm_shed false > 0);
  T_util.checki "hub + spanning tree: no storm" 0 (storm_shed true)

let test_stp_repairs_after_tree_link_failure () =
  let net, rt = runtime_over (Topo_gen.ring ~hosts_per_switch:1 4) [ (App_sig.app (module Apps.Spanning_tree)) ] in
  (* Kill a TREE link: the previously pruned link must be re-opened. *)
  let pruned_before =
    List.concat_map (fun sid -> List.map (fun p -> (sid, p)) (no_flood_ports net sid)) [ 1; 2; 3; 4 ]
  in
  T_util.checki "one pruned link before" 2 (List.length pruned_before);
  (* Fail a link that is NOT the pruned one. *)
  let tree_link =
    (* links of ring 4: 1-2, 2-3, 3-4, 4-1. Find one whose endpoints are
       both unpruned. *)
    let is_pruned sid port = List.mem (sid, port) pruned_before in
    List.find
      (fun (l : Topology.link) ->
        match (l.a.node, l.b.node) with
        | Topology.Switch s1, Topology.Switch s2 ->
            not (is_pruned s1 l.a.port || is_pruned s2 l.b.port)
        | _ -> false)
      (Topology.links (Net.topology net))
  in
  Net.apply_fault net
    (Net.Link_down (tree_link.Topology.a.node, tree_link.Topology.b.node));
  Runtime.step rt;
  (* Ring minus one link = a line: spanning tree covers everything, nothing
     stays pruned. *)
  T_util.checki "pruned link reopened after failure" 0 (total_pruned net [ 1; 2; 3; 4 ])

let test_netlog_inverts_port_mod () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  let nl = Netlog.create net in
  let txn = Netlog.begin_txn nl ~app:"stp" in
  ignore (Netlog.apply nl txn (Command.set_no_flood 1 1 true));
  Alcotest.(check (list int)) "flag set inside txn" [ 1 ] (no_flood_ports net 1);
  Netlog.abort nl txn;
  Alcotest.(check (list int)) "flag restored by rollback" [] (no_flood_ports net 1)

let test_netlog_port_mod_rollback_preserves_prior_setting () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  ignore
    (Net.send net 1
       (Message.message (Message.Port_mod { pm_port_no = 1; pm_no_flood = true })));
  let nl = Netlog.create net in
  let txn = Netlog.begin_txn nl ~app:"stp" in
  ignore (Netlog.apply nl txn (Command.set_no_flood 1 1 false));
  Netlog.abort nl txn;
  Alcotest.(check (list int)) "pre-existing no_flood restored" [ 1 ]
    (no_flood_ports net 1)

let test_port_command_wire_roundtrip () =
  let cmd = Command.set_no_flood 3 7 true in
  Alcotest.check T_util.command_t "port command roundtrips" cmd
    (Legosdn.Wire.decode_command (Legosdn.Wire.encode_command cmd))

let test_port_mod_codec_roundtrip () =
  let msg =
    Message.message ~xid:9 (Message.Port_mod { pm_port_no = 2; pm_no_flood = true })
  in
  Alcotest.check T_util.message_t "port_mod roundtrips" msg
    (Codec.decode (Codec.encode msg));
  let desc =
    { Message.port_no = 1; hw_addr = 5; name = "eth1"; up = true; no_flood = true }
  in
  let st = Message.message (Message.Port_status (Message.Port_modify, desc)) in
  Alcotest.check T_util.message_t "no_flood survives port_desc codec" st
    (Codec.decode (Codec.encode st))

(* ---- ARP responder ---- *)

let arp_event sid in_port pkt =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Message.No_match;
        pi_packet = pkt;
      } )

let test_arp_floods_unknown () =
  let st = Apps.Arp_responder.init () in
  let request = Packet.arp_request ~src_host:1 ~dst_host:2 in
  let st, commands =
    Apps.Arp_responder.handle T_util.null_context st (arp_event 1 100 request)
  in
  T_util.checki "learned the requester" 1 (Apps.Arp_responder.bindings st);
  T_util.checki "flooded" 1 (Apps.Arp_responder.floods st);
  T_util.checkb "flood command" true
    (match commands with
    | [ Command.Packet (_, po) ] ->
        po.Message.po_actions = [ Action.Output Types.port_flood ]
    | _ -> false)

let test_arp_answers_known () =
  let st = Apps.Arp_responder.init () in
  (* h2's request teaches the responder h2's binding... *)
  let st, _ =
    Apps.Arp_responder.handle T_util.null_context st
      (arp_event 2 100 (Packet.arp_request ~src_host:2 ~dst_host:1))
  in
  (* ...so h1 asking for h2 gets a direct reply out of its own port. *)
  let st, commands =
    Apps.Arp_responder.handle T_util.null_context st
      (arp_event 1 100 (Packet.arp_request ~src_host:1 ~dst_host:2))
  in
  T_util.checki "reply sent" 1 (Apps.Arp_responder.replies_sent st);
  match commands with
  | [ Command.Packet (1, po) ] -> (
      T_util.checkb "unicast back out of ingress" true
        (po.Message.po_actions = [ Action.Output 100 ]);
      match po.Message.po_packet with
      | Some reply ->
          T_util.checkb "reply claims target's mac" true
            (reply.Packet.dl_src = Types.mac_of_host 2);
          T_util.checkb "addressed to requester" true
            (reply.Packet.dl_dst = Types.mac_of_host 1);
          T_util.checki "arp reply opcode" 2 reply.Packet.nw_proto
      | None -> Alcotest.fail "reply payload expected")
  | _ -> Alcotest.fail "one unicast packet_out expected"

let test_arp_ignores_ip_traffic () =
  let st = Apps.Arp_responder.init () in
  let st, commands =
    Apps.Arp_responder.handle T_util.null_context st
      (arp_event 1 100 (T_util.tcp_packet 1 2))
  in
  T_util.checki "nothing learned from tcp" 0 (Apps.Arp_responder.bindings st);
  T_util.checkb "no commands" true (commands = [])

let test_arp_end_to_end () =
  let net, rt =
    runtime_over (Topo_gen.linear ~hosts_per_switch:1 2)
      [ (App_sig.app (module Apps.Arp_responder)); (App_sig.app (module Apps.Learning_switch)) ]
  in
  (* h2 announces itself, then h1 asks: the reply must be delivered to h1
     without ever flooding past s1. *)
  Net.inject net 2 (Packet.arp_request ~src_host:2 ~dst_host:1);
  Runtime.step rt;
  let delivered_before = (Net.stats net).Net.delivered in
  Net.inject net 1 (Packet.arp_request ~src_host:1 ~dst_host:2);
  Runtime.step rt;
  T_util.checkb "reply delivered to h1" true
    ((Net.stats net).Net.delivered > delivered_before)

let suite =
  [
    Alcotest.test_case "port_mod sets flag" `Quick test_port_mod_sets_flag;
    Alcotest.test_case "FLOOD honors NO_FLOOD, ALL ignores" `Quick
      test_flood_honors_no_flood_all_does_not;
    Alcotest.test_case "stp prunes a ring" `Quick test_stp_prunes_ring;
    Alcotest.test_case "stp leaves trees alone" `Quick test_stp_keeps_linear_untouched;
    Alcotest.test_case "stp stops broadcast storms" `Quick test_stp_stops_broadcast_storm;
    Alcotest.test_case "stp repairs after failure" `Quick
      test_stp_repairs_after_tree_link_failure;
    Alcotest.test_case "netlog inverts port_mod" `Quick test_netlog_inverts_port_mod;
    Alcotest.test_case "port_mod rollback keeps prior flag" `Quick
      test_netlog_port_mod_rollback_preserves_prior_setting;
    Alcotest.test_case "port command wire roundtrip" `Quick test_port_command_wire_roundtrip;
    Alcotest.test_case "port_mod codec roundtrip" `Quick test_port_mod_codec_roundtrip;
    Alcotest.test_case "arp floods unknown" `Quick test_arp_floods_unknown;
    Alcotest.test_case "arp answers known" `Quick test_arp_answers_known;
    Alcotest.test_case "arp ignores ip traffic" `Quick test_arp_ignores_ip_traffic;
    Alcotest.test_case "arp end to end" `Quick test_arp_end_to_end;
  ]
