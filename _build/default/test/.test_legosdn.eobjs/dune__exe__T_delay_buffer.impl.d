test/t_delay_buffer.ml: Action Alcotest Clock Controller Flow_table Legosdn List Message Net Netsim Ofp_match Openflow Sw T_util Topo_gen
