lib/apps/bug_model.ml: Controller Openflow Printf Types
