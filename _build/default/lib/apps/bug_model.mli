(** Injectable application bugs.

    The paper's argument rests on bugs being event-triggered and mostly
    deterministic (§1, §3.3); the FlowScale bug tracker supplies the
    empirical motivation. This model makes every trigger explicit and
    seeded so experiments are reproducible: a bug is a trigger (when)
    paired with an effect (what goes wrong). *)

open Openflow

type trigger =
  | Never
  | On_kind of Controller.Event.kind
      (** Every event of the kind. *)
  | On_nth_of_kind of Controller.Event.kind * int
      (** Only the n-th occurrence (1-based) of the kind. *)
  | On_switch of Types.switch_id
      (** Any event concerning the switch. *)
  | After_events of int
      (** Once more than n events (of any kind) have been handled — the
          cumulative-state bug class of §5. *)
  | On_tp_dst of int
      (** Packet-ins whose packet targets this transport port:
          a data-dependent parser bug. *)
  | With_probability of float * int
      (** Seeded coin flip per delivered event: the non-deterministic bug
          class of §5. *)

type effect_ =
  | Crash  (** Unhandled exception. *)
  | Crash_partial of float
      (** Crash after emitting this fraction of the handler's commands
          (mid-policy failure: the NetLog scenario). *)
  | Hang  (** The handler never returns. *)
  | Byzantine_loop
      (** Emit high-priority rules that forward traffic in a cycle over the
          first live inter-switch link. *)
  | Byzantine_blackhole
      (** Emit a high-priority rule forwarding everything into an unwired
          port. *)
  | Leak of int  (** Grow application state by n bytes per event. *)

type t = { trigger : trigger; effect_ : effect_ }

val crash_on : Controller.Event.kind -> t
val crash_on_nth : Controller.Event.kind -> int -> t
val make : trigger -> effect_ -> t

val describe : t -> string
