(** The live network: a topology instantiated with switch state, a data
    plane that propagates packets across it, and a notification queue
    feeding the controller.

    This is the "southbound" boundary: the controller calls {!send} and
    {!poll}; workloads call {!inject}; failure injection calls
    {!apply_fault}; invariant checkers use the read-only {!probe}. *)

open Openflow

type fault =
  | Link_down of Topology.node * Topology.node
  | Link_up of Topology.node * Topology.node
  | Switch_down of Types.switch_id
  | Switch_up of Types.switch_id
      (** A switch coming back has an empty flow table — reboot semantics. *)
  | Port_down of Types.switch_id * Types.port_no
  | Port_up of Types.switch_id * Types.port_no

type notification =
  | From_switch of Types.switch_id * Message.t
      (** Asynchronous switch-to-controller message: packet-in,
          flow-removed, port-status. *)
  | Switch_connected of Types.switch_id * Message.features
  | Switch_disconnected of Types.switch_id
  | Delivered of Topology.host * Packet.t
      (** A packet reached a host NIC (visible to workloads, not to the
          controller). *)

type stats = {
  mutable delivered : int;
  mutable blackholed : int;  (** Copies dropped with no matching egress. *)
  mutable looped : int;  (** Copies killed by the hop limit. *)
  mutable packet_ins : int;
}

type t

val create : ?hop_limit:int -> Clock.t -> Topology.t -> t
(** Instantiate switches for every switch node. A [Switch_connected]
    notification is queued per switch, modelling the initial handshake. *)

val topology : t -> Topology.t
val clock : t -> Clock.t
val switch : t -> Types.switch_id -> Sw.t
(** Raises [Not_found] for unknown ids. *)

val stats : t -> stats

val send : t -> Types.switch_id -> Message.t -> Message.t list
(** Deliver a controller-to-switch message; returns the synchronous replies.
    Data-plane side effects (packet-outs, buffered-packet releases)
    propagate through the network, possibly queueing notifications. Sending
    to a disconnected switch returns a single [Error] reply. *)

val inject : t -> Topology.host -> Packet.t -> unit
(** A host transmits a packet into its access switch. Effects (deliveries,
    packet-ins) are queued as notifications. *)

val poll : t -> notification list
(** Drain queued notifications, oldest first. *)

val apply_fault : t -> fault -> unit
(** Change topology/switch state and queue the resulting port-status or
    connect/disconnect notifications. *)

val tick : t -> unit
(** Expire flow-table entries against the current clock, queueing
    flow-removed notifications. *)

(** Read-only trace of where a packet would go, given current tables.
    Counters, buffers and notifications are untouched. *)
type probe_result = {
  reached : Topology.host list;
  punted_at : Types.switch_id list;  (** Table misses along the way. *)
  blackholed_at : Types.switch_id list;
  looped : bool;
  path : (Types.switch_id * Types.port_no) list;
      (** (switch, ingress port) in visit order. *)
}

val probe : t -> Topology.host -> Packet.t -> probe_result

val reachable : t -> Topology.host -> Topology.host -> bool
(** Would a canonical TCP packet from one host reach the other right now,
    using only installed rules (no controller help)? *)

val connectivity : t -> float
(** Fraction of ordered host pairs for which {!reachable} holds; 1.0 on a
    fully programmed network. *)
