bin/legosdn_cli.mli:
