(** Serialization of controller events and application commands for the
    AppVisor RPC channel.

    In the paper's prototype the proxy and stub exchange UDP datagrams; here
    every event and command that crosses an isolation boundary is encoded to
    bytes and decoded on the far side through these functions, so the
    serialization cost the paper accepts in §3.1 is actually paid (and
    measurable). Message-shaped payloads reuse the OpenFlow wire codec. *)

exception Decode_error of string

val encode_event : Controller.Event.t -> bytes
val decode_event : bytes -> Controller.Event.t

val encode_command : Controller.Command.t -> bytes
val decode_command : bytes -> Controller.Command.t

val encode_commands : Controller.Command.t list -> bytes
val decode_commands : bytes -> Controller.Command.t list

val event_size : Controller.Event.t -> int
val commands_size : Controller.Command.t list -> int

val roundtrip_event : Controller.Event.t -> Controller.Event.t
(** [decode_event (encode_event e)] — one hop across the boundary. *)

val roundtrip_commands : Controller.Command.t list -> Controller.Command.t list

(** {1 Reusable-buffer path}

    The fresh-allocation functions above allocate a writer, an
    intermediate [bytes] per embedded message, and a copy of the final
    frame — per ship. A {!scratch} carries one writer that is rewound
    (never reallocated, once grown) between ships, and decodes through
    zero-copy windows over the same backing store. The byte stream and
    the decode behaviour (including torn-frame errors) are identical to
    the fresh path; the qcheck equality properties in [test/t_wire.ml]
    and [test/t_codec.ml] are the evidence. *)

type scratch

val scratch : ?capacity:int -> unit -> scratch
(** A fresh scratch buffer (default initial capacity 512 bytes). Not
    shareable across concurrent ships — one per RPC channel. *)

val roundtrip_event_scratch :
  scratch -> Controller.Event.t -> Controller.Event.t * int
(** One hop across the boundary through the scratch buffer; also returns
    the encoded size (the bytes that crossed). *)

val roundtrip_commands_scratch :
  scratch -> Controller.Command.t list -> Controller.Command.t list * int

val decode_event_at : Openflow.Buf.reader -> Controller.Event.t
(** Decode directly from a reader window (no sub-buffer copies). Same
    result and same [Decode_error]s as {!decode_event} on the windowed
    bytes. *)

val decode_commands_at : Openflow.Buf.reader -> Controller.Command.t list

val scratch_contents : scratch -> bytes
(** Copy of the bytes most recently encoded into the scratch — for
    equality tests against the fresh path. *)
