(** Crash-Pad: the fault-tolerance layer built on AppVisor and NetLog
    (§3.3).

    For every (application, event) delivery, Crash-Pad:
    + checkpoints the application if one is due,
    + opens a transaction,
    + delivers the event through the sandbox,
    + screens successful output for byzantine failures and resource
      breaches before committing,
    + and on any failure: aborts (rolling the network back), restores the
      application from its checkpoint, replays the journal, applies the
      operator's compromise policy to the offending event (ignore /
      transform-and-replay / leave down), and files a problem ticket. *)

open Openflow
open Controller

type config = {
  policy : Recovery_policy.t;
  invariants : Invariants.Checker.invariant list;
      (** Checked on every transaction's proposed flow-mods. *)
  timing : Detector.timing;
  limits : Resources.limits;
  quarantine : Quarantine.t option;
      (** When set, repeatedly-failing event signatures are blacklisted and
          filtered before delivery (§5 multi-transaction failures). *)
  intent : bool;
      (** Use declared policies ({!App_sig.INTENT_APP}). When on (the
          default): after a healthy commit the app's recompiled policy is
          diffed against the network and the diff installed (intent
          reconciliation), and an Equivalence compromise first tries a
          policy-derived candidate rule-set — recompile the intent from the
          recovered state, verify the compiled tables against the policy's
          own denotation and the configured invariants, and install the
          flow-mod diff instead of replaying transformed events. A
          candidate failing either check is counted as rejected and the
          hand-coded event transformations are tried next. *)
  batched_checkpoints : bool;
      (** Skip the per-event {!Sandbox.prepare}: the caller checkpoints
          every sandbox at batch entry instead (the sharded dispatch
          engine's amortization). Default [false]. *)
}

val default_config : config
(** Equivalence-compromise policy, default invariants, default timing, no
    resource limits, no quarantine. *)

(** What Crash-Pad needs from its host runtime. *)
type deps = {
  engine : Txn_engine.t;
  incremental : Invariants.Incremental.t option;
      (** When set, byzantine screening runs through this incremental
          checker instead of snapshotting the whole network per
          transaction. Verdicts are identical; only the work is smaller. *)
  net : Netsim.Net.t;
  context : unit -> App_sig.context;
  links_of : Types.switch_id -> Event.link list;
  metrics : Metrics.t;
  tickets : Ticket.store;
  now : unit -> float;
  enqueue_reply : string -> Event.t -> unit;
      (** Queue a synchronous-reply event (statistics) for later dispatch
          to the named application. *)
  unreachable : Types.switch_id -> bool;
      (** Is this switch's control channel currently given up on? A
          transaction touching such a switch aborts cleanly before any
          command reaches the network. *)
  tracer : Obs.Tracer.t;
      (** Records per-stage spans (app delivery, detection, commit,
          recovery). Pass {!Obs.Tracer.noop} to disable. *)
}

val dispatch : config -> deps -> Sandbox.t -> Event.t -> unit
(** Deliver one event to one sandboxed application with full protection.
    Never raises on application failure — that is the contract. *)

(** {1 Pipeline pieces}

    Exposed for the N-version {!Voter}, which runs the same
    screen/commit/recover discipline over a panel of variant sandboxes
    and reuses these rather than re-implementing them. *)

val attempt : config -> deps -> Sandbox.t -> Event.t ->
  (unit, Detector.failure * int) result
(** Deliver one event inside a fresh transaction: prepare (unless
    [batched_checkpoints]), begin, deliver, screen, commit, confirm,
    reconcile intent. [Error (failure, rolled_back)] means the transaction
    aborted and the sandbox state has already been repaired. *)

val apply_policy :
  config -> deps -> Sandbox.t -> Event.t -> Detector.failure ->
  rolled_back:int -> unit
(** Apply the operator's compromise policy to a failed delivery and file
    the problem ticket (exactly one per call). *)

val quarantine_blocked : config -> deps -> Sandbox.t -> Event.t -> bool
(** Is this delivery suppressed by the quarantine store? Counts the
    suppression when it is. *)

val note_quarantine : config -> deps -> Sandbox.t -> Event.t -> unit
(** Record a failure against the (app, event) signature. *)

val count_failure : deps -> Detector.failure -> unit

val reconcile_intent : config -> deps -> Sandbox.t -> unit
(** After a healthy commit: recompile the app's declared policy and install
    the verified diff so hardware tracks intent continuously. *)

val route_replies :
  deps -> Sandbox.t -> Types.switch_id -> Openflow.Message.t list -> unit
(** Convert synchronous replies (statistics, flow-removed) produced while
    applying commands into events queued back to the issuing app. *)

val switch_of_command : Command.t -> Types.switch_id option
(** The switch a command touches; [None] for [Log]. *)
