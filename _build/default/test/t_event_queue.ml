open Netsim

let test_time_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let order =
    List.init 3 (fun _ -> match Event_queue.pop q with
      | Some (_, v) -> v
      | None -> "?")
  in
  Alcotest.(check (list string)) "earliest first" [ "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1. i
  done;
  let order = List.init 10 (fun _ -> Option.get (Event_queue.pop q) |> snd) in
  Alcotest.(check (list int)) "ties are FIFO" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_drain_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 5.; 1.; 3.; 2.; 4. ];
  let drained = Event_queue.drain_until q ~time:3. in
  Alcotest.(check (list (pair (float 0.0001) (float 0.0001))))
    "drained up to time 3" [ (1., 1.); (2., 2.); (3., 3.) ] drained;
  T_util.checki "two left" 2 (Event_queue.size q)

let test_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  T_util.checkb "empty" true (Event_queue.is_empty q);
  T_util.checkb "pop on empty" true (Event_queue.pop q = None);
  T_util.checkb "peek on empty" true (Event_queue.peek_time q = None)

let prop_pop_sorted =
  QCheck2.Test.make ~name:"pops are non-decreasing in time" ~count:300
    QCheck2.Gen.(list (float_bound_exclusive 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_size_conservation =
  QCheck2.Test.make ~name:"everything pushed comes back out" ~count:200
    QCheck2.Gen.(list (pair (float_bound_exclusive 100.) small_int))
    (fun items ->
      let q = Event_queue.create () in
      List.iter (fun (t, v) -> Event_queue.push q ~time:t v) items;
      let rec count n =
        match Event_queue.pop q with None -> n | Some _ -> count (n + 1)
      in
      count 0 = List.length items)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
    Alcotest.test_case "drain_until" `Quick test_drain_until;
    Alcotest.test_case "empty queue" `Quick test_empty;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    QCheck_alcotest.to_alcotest prop_size_conservation;
  ]
