module App_sig = Controller.App_sig
open Netsim
module Traffic = Workload.Traffic
module Failure_schedule = Workload.Failure_schedule
module Scenario = Workload.Scenario
module Bug_corpus = Workload.Bug_corpus
module Event = Controller.Event

let test_flow_injections_shape () =
  let spec =
    {
      Traffic.src_host = 1;
      dst_host = 2;
      start = 5.;
      packets = 3;
      interval = 0.5;
      dport = 80;
    }
  in
  let injections = Traffic.flow_injections spec in
  T_util.checki "packet count" 3 (List.length injections);
  Alcotest.(check (list (float 0.001))) "timing" [ 5.; 5.5; 6. ]
    (List.map (fun i -> i.Traffic.at) injections)

let test_uniform_pairs_deterministic () =
  let gen () =
    Traffic.uniform_pairs ~seed:9 ~hosts:[ 1; 2; 3; 4 ] ~flows:20 ~duration:10. ()
  in
  T_util.checkb "same seed, same workload" true (gen () = gen ());
  List.iter
    (fun (f : Traffic.flow_spec) ->
      T_util.checkb "no self traffic" true (f.src_host <> f.dst_host);
      T_util.checkb "start in range" true (f.start >= 0. && f.start < 10.))
    (gen ())

let test_schedule_sorted () =
  let specs =
    Traffic.uniform_pairs ~seed:3 ~hosts:[ 1; 2; 3 ] ~flows:10 ~duration:5. ()
  in
  let schedule = Traffic.schedule specs in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Traffic.at <= b.Traffic.at && sorted rest
    | _ -> true
  in
  T_util.checkb "sorted by time" true (sorted schedule)

let test_all_pairs_once () =
  let specs = Traffic.all_pairs_once ~hosts:[ 1; 2; 3 ] ~start:1. ~spacing:0.1 in
  T_util.checki "n(n-1) flows" 6 (List.length specs)

let test_failure_schedule () =
  let topo = Topo_gen.linear 4 in
  let faults =
    Failure_schedule.periodic_link_flaps topo ~seed:1 ~period:5. ~downtime:1.
      ~duration:20.
  in
  (* flaps at t=5,10,15 — two faults each. *)
  T_util.checki "three flaps, two faults each" 6 (List.length faults);
  let sorted = Failure_schedule.sorted faults in
  T_util.checkb "sorted ascending" true
    (List.for_all2
       (fun (a, _) (b, _) -> a <= b)
       (List.filteri (fun i _ -> i < 5) sorted)
       (List.tl sorted))

let test_corpus_statistics () =
  let entries = Bug_corpus.flowscale_like in
  T_util.checki "fifty reports" 50 (List.length entries);
  Alcotest.(check (float 0.001)) "16% catastrophic" 0.16
    (Bug_corpus.catastrophic_fraction entries);
  T_util.checki "every catastrophic entry is executable" 8
    (List.length (Bug_corpus.executable_bugs entries));
  (* Ids unique and sequential. *)
  Alcotest.(check (list int)) "ids" (List.init 50 (fun i -> i + 1))
    (List.map (fun e -> e.Bug_corpus.id) entries)

let simple_scenario ?(duration = 5.) ?faults () =
  let traffic =
    Traffic.schedule
      (Traffic.all_pairs_once ~hosts:[ 1; 2; 3 ] ~start:0.5 ~spacing:0.2)
  in
  Scenario.make ?faults
    ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
    ~duration ~traffic ~tick_interval:1.0 ~restart_delay:2.0 ()

let test_scenario_healthy_run () =
  let report =
    Scenario.run (simple_scenario ()) ~make_driver:(fun net ->
        Scenario.legosdn_driver
          (Legosdn.Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ]))
  in
  Alcotest.(check (float 0.0001)) "legosdn controller fully available" 1.0
    report.Scenario.controller_availability;
  T_util.checki "no controller crashes" 0 report.Scenario.controller_crashes;
  T_util.checkb "packets injected" true (report.Scenario.packets_injected > 0);
  T_util.checkb "packets delivered" true (report.Scenario.events_delivered > 0)

let test_scenario_monolithic_crash_and_restart () =
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 2 in
  let report =
    Scenario.run (simple_scenario ~duration:10. ()) ~make_driver:(fun net ->
        Scenario.monolithic_driver
          (Controller.Monolithic.create net
             [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]))
  in
  T_util.checkb "controller crashed at least once" true
    (report.Scenario.controller_crashes >= 1);
  T_util.checkb "downtime accumulated" true
    (report.Scenario.controller_downtime >= 2.);
  T_util.checkb "availability below 1" true
    (report.Scenario.controller_availability < 1.)

let test_scenario_comparison_shape () =
  (* The paper's core claim as an executable assertion: same bug, same
     workload — LegoSDN strictly more available than monolithic. *)
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 3 in
  let apps () : Controller.App_sig.app list =
    [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  let scenario = simple_scenario ~duration:10. () in
  let mono =
    Scenario.run scenario ~make_driver:(fun net ->
        Scenario.monolithic_driver (Controller.Monolithic.create net (apps ())))
  in
  let lego =
    Scenario.run scenario ~make_driver:(fun net ->
        Scenario.legosdn_driver (Legosdn.Runtime.create net (apps ())))
  in
  T_util.checkb "legosdn at least as available" true
    (lego.Scenario.controller_availability
     >= mono.Scenario.controller_availability);
  T_util.checkb "monolithic lost availability" true
    (mono.Scenario.controller_availability < 1.);
  Alcotest.(check (float 0.0001)) "legosdn lost none" 1.0
    lego.Scenario.controller_availability

let test_scenario_deterministic () =
  let run () =
    Scenario.run (simple_scenario ()) ~make_driver:(fun net ->
        Scenario.legosdn_driver
          (Legosdn.Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ]))
  in
  let a = run () and b = run () in
  T_util.checkb "identical reports" true
    (a.Scenario.samples = b.Scenario.samples
     && a.Scenario.events_delivered = b.Scenario.events_delivered)

let test_scenario_with_faults () =
  let faults =
    Failure_schedule.link_flap ~a:(Topology.Switch 1) ~b:(Topology.Switch 2)
      ~down_at:2. ~up_at:4.
  in
  let report =
    Scenario.run (simple_scenario ~duration:6. ~faults ()) ~make_driver:(fun net ->
        Scenario.legosdn_driver
          (Legosdn.Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ]))
  in
  T_util.checkb "connectivity dipped during the flap" true
    (report.Scenario.min_connectivity <= report.Scenario.mean_connectivity)

(* ---- Trace_gen: the trace-driven workload generator ---- *)

module Trace_gen = Workload.Trace_gen
module Runtime = Legosdn.Runtime

let w_config =
  {
    Runtime.default_workload_config with
    Runtime.w_seed = 11;
    Runtime.w_rate = 40.;
    Runtime.w_churn = 0.2;
  }

let hosts = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_trace_gen_deterministic () =
  let gen () = Trace_gen.plan ~config:w_config ~hosts ~duration:20. () in
  T_util.checkb "same config, same plan" true (gen () = gen ());
  let other =
    Trace_gen.plan
      ~config:{ w_config with Runtime.w_seed = 12 }
      ~hosts ~duration:20. ()
  in
  T_util.checkb "different seed, different plan" true (gen () <> other)

let test_trace_gen_shape () =
  let plan = Trace_gen.plan ~config:w_config ~hosts ~duration:20. () in
  let n = List.length plan.Trace_gen.flows in
  (* Mean arrival rate is w_rate at peak, thinned by the diurnal curve
     (average factor 1 - depth/2 = 0.75 here) and churn: expect roughly
     0.5-0.75 * rate * duration flows, with wide slack for the heavy
     tail. *)
  T_util.checkb "enough flows" true (n > 100);
  T_util.checkb "not beyond peak rate" true (n <= 20 * 40);
  List.iter
    (fun (f : Traffic.flow_spec) ->
      T_util.checkb "no self traffic" true (f.src_host <> f.dst_host);
      T_util.checkb "start within horizon" true
        (f.start >= 0. && f.start < 20.);
      T_util.checkb "hosts are real" true
        (List.mem f.src_host hosts && List.mem f.dst_host hosts);
      T_util.checkb "flow sizes bounded" true
        (f.packets >= 1 && f.packets <= 20))
    plan.Trace_gen.flows;
  let rec sorted = function
    | (a : Traffic.flow_spec) :: (b :: _ as rest) ->
        a.start <= b.start && sorted rest
    | _ -> true
  in
  T_util.checkb "flows time-ordered" true (sorted plan.Trace_gen.flows)

let test_trace_gen_churn () =
  let plan = Trace_gen.plan ~config:w_config ~hosts ~duration:20. () in
  (* w_churn * duration = 4 outages requested. *)
  T_util.checki "churn events" 4 (List.length plan.Trace_gen.offline);
  List.iter
    (fun (h, (leave, rejoin)) ->
      T_util.checkb "outage host is real" true (List.mem h hosts);
      T_util.checkb "outage well-formed" true (0. <= leave && leave < rejoin);
      (* No flow touches an offline endpoint during its outage. *)
      List.iter
        (fun (f : Traffic.flow_spec) ->
          if f.start >= leave && f.start < rejoin then
            T_util.checkb "offline host neither sends nor receives" true
              (f.src_host <> h && f.dst_host <> h))
        plan.Trace_gen.flows)
    plan.Trace_gen.offline

let test_trace_gen_no_churn_no_outages () =
  let plan =
    Trace_gen.plan
      ~config:{ w_config with Runtime.w_churn = 0. }
      ~hosts ~duration:20. ()
  in
  T_util.checki "no outages" 0 (List.length plan.Trace_gen.offline)

let test_trace_gen_injections_sorted () =
  let injections =
    Trace_gen.injections ~config:w_config ~hosts ~duration:10. ()
  in
  T_util.checkb "non-empty" true (injections <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Traffic.at <= b.Traffic.at && sorted rest
    | _ -> true
  in
  T_util.checkb "sorted by time" true (sorted injections)

let suite =
  [
    Alcotest.test_case "flow injections" `Quick test_flow_injections_shape;
    Alcotest.test_case "uniform pairs deterministic" `Quick test_uniform_pairs_deterministic;
    Alcotest.test_case "schedule sorted" `Quick test_schedule_sorted;
    Alcotest.test_case "all pairs once" `Quick test_all_pairs_once;
    Alcotest.test_case "failure schedules" `Quick test_failure_schedule;
    Alcotest.test_case "bug corpus statistics" `Quick test_corpus_statistics;
    Alcotest.test_case "healthy scenario" `Quick test_scenario_healthy_run;
    Alcotest.test_case "monolithic crash & restart" `Quick
      test_scenario_monolithic_crash_and_restart;
    Alcotest.test_case "legosdn beats monolithic" `Quick test_scenario_comparison_shape;
    Alcotest.test_case "scenarios deterministic" `Quick test_scenario_deterministic;
    Alcotest.test_case "faulted scenario" `Quick test_scenario_with_faults;
    Alcotest.test_case "trace-gen deterministic" `Quick
      test_trace_gen_deterministic;
    Alcotest.test_case "trace-gen flow shape" `Quick test_trace_gen_shape;
    Alcotest.test_case "trace-gen churn outages" `Quick test_trace_gen_churn;
    Alcotest.test_case "trace-gen zero churn" `Quick
      test_trace_gen_no_churn_no_outages;
    Alcotest.test_case "trace-gen injections sorted" `Quick
      test_trace_gen_injections_sorted;
  ]
