(** The prototype's stand-in for NetLog (§4.1): a buffer that delays an
    application's state-altering actions until its event handler has
    finished without failure, then flushes them.

    Compared with NetLog this is trivially atomic but has real costs the
    paper itself points out: rule installation latency grows by the full
    handler duration, reads (statistics) run against a network that does
    not yet contain the transaction's own writes, and nothing protects
    against byzantine rules that are only detectable after installation.
    Kept as the E9 ablation baseline. *)

type t

val create : Netsim.Net.t -> t

val committed : t -> int
val aborted : t -> int
val ops_buffered : t -> int
val ops_discarded : t -> int

val engine : t -> Txn_engine.t
