lib/apps/arp_responder.ml: Action Command Controller Event Int Map Message Openflow Packet Types
