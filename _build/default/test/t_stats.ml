module Stats = Workload.Stats

let feq = Alcotest.(check (float 1e-9))

let test_summarize_basic () =
  match Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
      T_util.checki "n" 5 s.Stats.n;
      feq "mean" 3. s.Stats.mean;
      feq "min" 1. s.Stats.min;
      feq "max" 5. s.Stats.max;
      feq "p50" 3. s.Stats.p50;
      feq "stddev" (sqrt 2.) s.Stats.stddev

let test_summarize_empty () =
  T_util.checkb "empty is None" true (Stats.summarize [] = None)

let test_percentiles () =
  let samples = List.init 100 (fun i -> float (i + 1)) in
  feq "p50 of 1..100" 50. (Stats.percentile samples 0.5);
  feq "p90" 90. (Stats.percentile samples 0.9);
  feq "p99" 99. (Stats.percentile samples 0.99);
  feq "p100 is max" 100. (Stats.percentile samples 1.0);
  feq "p0 clamps to min" 1. (Stats.percentile samples 0.0);
  feq "single sample" 7. (Stats.percentile [ 7. ] 0.5)

let test_percentile_errors () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile: empty series") (fun () ->
      ignore (Stats.percentile [] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.percentile: q outside [0,1]") (fun () ->
      ignore (Stats.percentile [ 1. ] 1.5))

let test_histogram () =
  let h = Stats.histogram ~buckets:4 [ 0.; 1.; 2.; 3.; 4. ] in
  T_util.checki "bucket count" 4 (List.length h);
  T_util.checki "total preserved" 5
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 h);
  (match List.rev h with
  | (_, hi, last) :: _ ->
      feq "upper bound" 4. hi;
      T_util.checki "max lands in last bucket" 2 last
  | [] -> Alcotest.fail "non-empty");
  T_util.checkb "empty input" true (Stats.histogram ~buckets:3 [] = [])

let test_histogram_constant_series () =
  let h = Stats.histogram ~buckets:3 [ 5.; 5.; 5. ] in
  T_util.checki "all in one bucket" 3
    (List.fold_left (fun acc (_, _, c) -> max acc c) 0 h)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone in q" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.))
    (fun samples ->
      let p q = Stats.percentile samples q in
      p 0.1 <= p 0.5 && p 0.5 <= p 0.9 && p 0.9 <= p 1.0)

let prop_mean_within_bounds =
  QCheck2.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.))
    (fun samples ->
      match Stats.summarize samples with
      | None -> false
      | Some s -> s.Stats.min <= s.Stats.mean && s.Stats.mean <= s.Stats.max)

let suite =
  [
    Alcotest.test_case "summarize" `Quick test_summarize_basic;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant_series;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_within_bounds;
  ]
