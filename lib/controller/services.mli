(** Controller services: switch registry, link discovery and device
    manager — the shared platform state FloodLight keeps below the apps.

    Link discovery consults the simulator topology as an oracle in place of
    LLDP probing (see DESIGN.md substitutions); everything else is learned
    from switch notifications, exactly as a real controller would. *)

open Openflow

type t

val create : Netsim.Clock.t -> Netsim.Topology.t -> t

val ingest : t -> Netsim.Net.notification -> Event.t list
(** Update service state from one southbound notification and return the
    controller events to dispatch to applications (including derived
    link-up/link-down events). Notifications that do not concern
    applications return []. *)

val observe : t -> Event.t -> unit
(** Apply one dispatched event's state effects without emitting anything.
    Events carry everything [ingest] learned when it produced them
    (features, port descs, link endpoints, packet-ins), so replaying a
    dispatched-event log through [observe] on a fresh [t] reconstructs the
    service state the original controller had at dispatch time. The
    cluster layer uses this to give every replica — and a fail-over leader
    re-dispatching committed entries — the same application-visible
    context the original leader saw. *)

val connected_switches : t -> Types.switch_id list
val live_links : t -> Event.link list
(** Both directions of every live inter-switch link. *)

val host_location : t -> Types.mac
  -> (Types.switch_id * Types.port_no) option

val context : t -> App_sig.context
(** The read-only view handed to applications. *)
