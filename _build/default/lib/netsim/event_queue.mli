(** A deterministic discrete-event priority queue keyed by virtual time.

    Events with equal timestamps dequeue in insertion order (FIFO), which
    keeps whole-simulation runs reproducible. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

val is_empty : 'a t -> bool
val size : 'a t -> int

val drain_until : 'a t -> time:float -> (float * 'a) list
(** All events with timestamp [<= time], earliest first. *)
