(** A single OF 1.0 flow table: priority-ordered entries with wildcard
    matching, strict/non-strict modify and delete, and timeout expiry. *)

open Openflow

type t

val create : unit -> t

val size : t -> int
(** Cached entry count; O(1). *)

val generation : t -> int
(** Monotonic mutation counter: bumps whenever the rule set changes
    (add/modify/delete/clear/expire). Snapshot and invariant-cache layers
    compare generations to detect change without diffing rules. *)

val entries : t -> Flow_entry.t list
(** Entries in priority order (highest first); ties in insertion order.
    Memoized between mutations — repeated calls return the same list. *)

val clear : t -> unit

val add : t -> Flow_entry.t -> unit
(** Install an entry. An existing entry with identical match and priority is
    replaced (counters reset), per OF 1.0 Add semantics. Patterns arrive
    {!Ofp_match.intern}ed (see {!Flow_entry.of_flow_mod}), so identical
    patterns across tables share one heap block fabric-wide and the exact
    index probes by pointer. *)

val modify :
  t -> strict:bool -> Ofp_match.t -> priority:int -> Action.t list -> bool
(** Update the action list of matching entries in place (preserving
    counters). Non-strict touches every entry the pattern {!Ofp_match.subsumes};
    strict only an exact match+priority twin. Returns [false] when nothing
    matched — the caller must then fall back to an add, as the spec says. *)

val delete :
  t ->
  strict:bool ->
  ?out_port:Types.port_no ->
  Ofp_match.t ->
  priority:int ->
  Flow_entry.t list
(** Remove matching entries and return them (most recent state first was not
    guaranteed; priority order). [out_port] further restricts to entries
    whose actions output to that port. *)

val lookup : t -> now:float -> in_port:Types.port_no -> Packet.t
  -> Flow_entry.t option
(** Highest-priority live entry matching the packet. Counters are NOT
    touched; callers decide whether the lookup is a forwarding event
    ({!Flow_entry.account}) or a read-only probe. *)

val expire : t -> now:float
  -> (Flow_entry.t * Message.flow_removed_reason) list
(** Remove every timed-out entry, returning each with its reason. *)

val find_exact : t -> Ofp_match.t -> priority:int -> Flow_entry.t option
(** The entry with exactly this match and priority, if present. *)

val pp : Format.formatter -> t -> unit
