open Controller

let crashes_on (module A : App_sig.APP) ctx trace =
  let rec go st = function
    | [] -> false
    | ev :: rest -> (
        if not (List.mem (Event.kind_of ev) A.subscriptions) then go st rest
        else
          match A.handle ctx st ev with
          | st', _commands -> go st' rest
          | exception _ -> true)
  in
  go (A.init ()) trace

(* Split a list into [n] contiguous chunks of near-equal size. *)
let split_chunks lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec go i remaining =
    if i >= n || remaining = [] then []
    else begin
      let size = base + if i < extra then 1 else 0 in
      let rec take k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: xs -> take (k - 1) (x :: acc) xs
      in
      let chunk, rest = take size [] remaining in
      chunk :: go (i + 1) rest
    end
  in
  go 0 lst

let minimize_with_oracle failing trace =
  let calls = ref 0 in
  let test l =
    incr calls;
    failing l
  in
  let rec ddmin trace n =
    let len = List.length trace in
    if len <= 1 then trace
    else begin
      let chunks = split_chunks trace n in
      (* Reduce to a failing chunk, if any. *)
      match List.find_opt (fun c -> c <> [] && test c) chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
          (* Reduce to a failing complement, if any. *)
          let complements =
            List.mapi
              (fun i _ ->
                List.concat
                  (List.filteri (fun j _ -> j <> i) chunks))
              chunks
          in
          match
            List.find_opt (fun c -> List.length c < len && test c) complements
          with
          | Some complement -> ddmin complement (max (n - 1) 2)
          | None ->
              (* Refine granularity. *)
              if n < len then ddmin trace (min len (2 * n))
              else trace)
    end
  in
  let minimal = ddmin trace 2 in
  (minimal, !calls)

let minimize (module A : App_sig.APP) ctx trace =
  let oracle sub = crashes_on (module A) ctx sub in
  if not (oracle trace) then
    invalid_arg "Sts.minimize: the full trace does not crash the application";
  minimize_with_oracle oracle trace

let checkpoint_to_roll_back_to ~trace ~minimal ~checkpoint_every =
  if checkpoint_every < 1 then
    invalid_arg "Sts.checkpoint_to_roll_back_to: checkpoint_every must be >= 1";
  match minimal with
  | [] -> 0
  | first :: _ -> (
      let rec index i = function
        | [] -> None
        | ev :: rest -> if ev = first then Some i else index (i + 1) rest
      in
      match index 0 trace with
      | None -> 0
      | Some idx -> idx / checkpoint_every * checkpoint_every)
