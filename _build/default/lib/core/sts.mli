(** STS-style minimal causal sequences (§5, citing Scott et al. [28]).

    When a failure is induced by an accumulation of events rather than the
    last one alone, LegoSDN needs to know which events to hold responsible
    (and which checkpoint to roll back to). This module implements
    delta-debugging (ddmin) over an event trace: given a trace that makes
    an application crash, it finds a locally-minimal subsequence that still
    triggers the crash. *)

open Controller

val crashes_on : (module App_sig.APP) -> App_sig.context -> Event.t list -> bool
(** Run a fresh instance over the trace (commands discarded); true if any
    handler raises. *)

val minimize_with_oracle :
  ('a list -> bool) -> 'a list -> 'a list * int
(** [minimize_with_oracle failing trace] returns a 1-minimal failing
    subsequence and the number of oracle invocations spent, assuming
    [failing trace = true]. Classic ddmin: split into chunks, try chunks
    and complements, refine granularity. *)

val minimize :
  (module App_sig.APP) ->
  App_sig.context ->
  Event.t list ->
  Event.t list * int
(** {!minimize_with_oracle} with {!crashes_on} as the oracle. Raises
    [Invalid_argument] if the full trace does not crash the app. *)

val checkpoint_to_roll_back_to :
  trace:Event.t list -> minimal:Event.t list -> checkpoint_every:int -> int
(** Given the minimal causal sequence, the index (0-based, in events) of the
    latest k-aligned checkpoint taken before the first culpable event — the
    snapshot LegoSDN should restore. *)
