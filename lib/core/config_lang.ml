module Event = Controller.Event
module Checker = Invariants.Checker

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* "1:2,3:4" -> [(1,2); (3,4)] *)
let parse_pairs s =
  try
    Ok
      (String.split_on_char ',' s
      |> List.map (fun pair ->
             match String.split_on_char ':' pair with
             | [ a; b ] -> (int_of_string a, int_of_string b)
             | _ -> failwith "pair"))
  with _ -> Error (Printf.sprintf "cannot parse host pairs %S" s)

(* "1,2|3,4" -> ([1;2], [3;4]) *)
let parse_groups s =
  try
    match String.split_on_char '|' s with
    | [ a; b ] ->
        let ints x =
          String.split_on_char ',' x |> List.map int_of_string
        in
        Ok (ints a, ints b)
    | _ -> failwith "groups"
  with _ -> Error (Printf.sprintf "cannot parse host groups %S" s)

let kind_of_name name =
  List.find_opt (fun k -> Event.kind_name k = name) Event.all_kinds

(* Mutable accumulation while scanning the file. *)
type builder = {
  mutable checkpoint_every : int;
  mutable checkpoint_mode : Runtime.ckpt_mode;
  mutable engine : Runtime.engine_kind;
  mutable quarantine_threshold : int option;
  mutable timing : Detector.timing;
  mutable limits : Resources.limits;
  mutable invariants : Checker.invariant list option;
      (* None = never touched, keep defaults *)
  mutable rules : Recovery_policy.rule list;  (* reverse order *)
  mutable default : Recovery_policy.compromise option;
  mutable reliable : Reliable.config;
  mutable cluster : Runtime.cluster_config;
  mutable dispatch : Runtime.dispatch_mode;
  mutable trace_cache_budget : int option;
  mutable workload : Runtime.workload_config option;
  mutable intent : bool;
  mutable nversion : Voter.config option;
}

let fresh_builder () =
  {
    checkpoint_every = Runtime.default_config.Runtime.checkpoint_every;
    checkpoint_mode = Runtime.default_config.Runtime.checkpoint_mode;
    engine = Runtime.default_config.Runtime.engine;
    quarantine_threshold = None;
    timing = Detector.default_timing;
    limits = Resources.unlimited;
    invariants = None;
    rules = [];
    default = None;
    reliable = Runtime.default_config.Runtime.reliable;
    cluster = Runtime.default_config.Runtime.cluster;
    dispatch = Runtime.default_config.Runtime.dispatch;
    trace_cache_budget = Runtime.default_config.Runtime.trace_cache_budget;
    workload = Runtime.default_config.Runtime.workload;
    intent = Crashpad.default_config.Crashpad.intent;
    nversion = Runtime.default_config.Runtime.nversion;
  }

let add_invariant b inv =
  b.invariants <- Some (Option.value b.invariants ~default:[] @ [ inv ])

let directive b lineno toks =
  let err message = Error { line = lineno; message } in
  let lift message = function Ok v -> Ok v | Error _ -> err message in
  ignore lift;
  match toks with
  | [] -> Ok ()
  | [ "checkpoint"; "every"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 ->
          b.checkpoint_every <- k;
          Ok ()
      | _ -> err (Printf.sprintf "bad checkpoint cadence %S" k))
  | [ "checkpoint"; "mode"; m ] -> (
      match m with
      | "full" ->
          b.checkpoint_mode <- Runtime.Ckpt_full;
          Ok ()
      | "delta" ->
          b.checkpoint_mode <- Runtime.Ckpt_delta;
          Ok ()
      | "delta-adaptive" ->
          b.checkpoint_mode <- Runtime.Ckpt_delta_adaptive;
          Ok ()
      | _ -> err (Printf.sprintf "unknown checkpoint mode %S" m))
  | [ "dispatch"; "seq" ] ->
      b.dispatch <- Runtime.Sequential;
      Ok ()
  | [ "dispatch"; "sharded" ] ->
      b.dispatch <- Runtime.default_sharded;
      Ok ()
  | [ "dispatch"; "sharded"; "shards"; s; "batch"; m ] -> (
      match (int_of_string_opt s, int_of_string_opt m) with
      | Some shards, Some max_batch when shards >= 1 && max_batch >= 1 ->
          b.dispatch <- Runtime.Sharded { shards; max_batch };
          Ok ()
      | _ -> err "bad dispatch directive (need shards >= 1, batch >= 1)")
  | [ "trace-cache"; "budget"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
          b.trace_cache_budget <- Some n;
          Ok ()
      | _ -> err (Printf.sprintf "bad trace-cache budget %S (bytes > 0)" n))
  | [ "trace-cache"; "unbounded" ] ->
      b.trace_cache_budget <- None;
      Ok ()
  | [ "intent"; v ] -> (
      match v with
      | "on" ->
          b.intent <- true;
          Ok ()
      | "off" ->
          b.intent <- false;
          Ok ()
      | _ -> err (Printf.sprintf "bad intent directive %S (on|off)" v))
  | [ "workload"; "trace" ] ->
      b.workload <- Some Runtime.default_workload_config;
      Ok ()
  | [
      "workload"; "trace"; "seed"; seed; "rate"; rate; "alpha"; alpha;
      "diurnal"; diurnal; "period"; period; "churn"; churn;
    ] -> (
      match
        ( int_of_string_opt seed,
          float_of_string_opt rate,
          float_of_string_opt alpha,
          float_of_string_opt diurnal,
          float_of_string_opt period,
          float_of_string_opt churn )
      with
      | ( Some w_seed,
          Some w_rate,
          Some w_alpha,
          Some w_diurnal,
          Some w_period,
          Some w_churn )
        when w_rate > 0. && w_alpha > 1. && w_diurnal >= 0.
             && w_diurnal <= 1. && w_period > 0. && w_churn >= 0. ->
          b.workload <-
            Some
              { Runtime.w_seed; w_rate; w_alpha; w_diurnal; w_period; w_churn };
          Ok ()
      | _ ->
          err
            "bad workload directive (need rate > 0, alpha > 1, diurnal in \
             [0,1], period > 0, churn >= 0)")
  | [ "engine"; "netlog" ] ->
      b.engine <- Runtime.Netlog_engine;
      Ok ()
  | [ "engine"; "delay-buffer" ] ->
      b.engine <- Runtime.Delay_buffer_engine;
      Ok ()
  | [ "reliable"; "on" ] ->
      b.reliable <- { b.reliable with Reliable.enabled = true };
      Ok ()
  | [ "reliable"; "off" ] ->
      b.reliable <- { b.reliable with Reliable.enabled = false };
      Ok ()
  | [ "reliable"; onoff; "timeout"; tmo; "retries"; n ]
    when onoff = "on" || onoff = "off" -> (
      match (float_of_string_opt tmo, int_of_string_opt n) with
      | Some base_timeout, Some max_retries
        when base_timeout > 0. && max_retries >= 0 ->
          b.reliable <-
            { Reliable.enabled = onoff = "on"; base_timeout; max_retries };
          Ok ()
      | _ -> err "bad reliable directive")
  | [ "replicas"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 && n mod 2 = 1 ->
          b.cluster <- { b.cluster with Runtime.replicas = n };
          Ok ()
      | Some _ -> err "replicas must be odd (2f+1)"
      | None -> err (Printf.sprintf "bad replica count %S" n))
  | [ "election"; "timeout"; lo; hi ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi) with
      | Some election_lo, Some election_hi
        when election_lo > 0. && election_hi > election_lo ->
          b.cluster <- { b.cluster with Runtime.election_lo; election_hi };
          Ok ()
      | _ -> err "bad election timeout range (need 0 < lo < hi)")
  | [ "nversion"; "off" ] ->
      b.nversion <- None;
      Ok ()
  | [ "nversion"; n ] -> (
      match int_of_string_opt n with
      | Some nv_replicas when nv_replicas >= 2 ->
          b.nversion <-
            Some { Voter.nv_replicas; nv_adaptive = false; nv_shed_after = 0 };
          Ok ()
      | _ -> err (Printf.sprintf "bad nversion panel size %S (need >= 2)" n))
  | [ "nversion"; n; "adaptive"; "shed-after"; k ] -> (
      match (int_of_string_opt n, int_of_string_opt k) with
      | Some nv_replicas, Some nv_shed_after
        when nv_replicas >= 2 && nv_shed_after >= 1 ->
          b.nversion <-
            Some { Voter.nv_replicas; nv_adaptive = true; nv_shed_after };
          Ok ()
      | _ -> err "bad nversion directive (need replicas >= 2, shed-after >= 1)")
  | [ "quarantine"; "threshold"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          b.quarantine_threshold <- Some n;
          Ok ()
      | _ -> err (Printf.sprintf "bad quarantine threshold %S" n))
  | [ "heartbeat"; "interval"; i; "misses"; m ] -> (
      match (float_of_string_opt i, int_of_string_opt m) with
      | Some interval, Some misses when interval > 0. && misses >= 1 ->
          b.timing <-
            {
              b.timing with
              Detector.heartbeat_interval = interval;
              heartbeat_misses = misses;
            };
          Ok ()
      | _ -> err "bad heartbeat directive")
  | [ "rpc"; "timeout"; t ] -> (
      match float_of_string_opt t with
      | Some timeout when timeout > 0. ->
          b.timing <- { b.timing with Detector.rpc_timeout = timeout };
          Ok ()
      | _ -> err (Printf.sprintf "bad rpc timeout %S" t))
  | [ "limit"; "state-bytes"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
          b.limits <- { b.limits with Resources.max_state_bytes = Some n };
          Ok ()
      | _ -> err (Printf.sprintf "bad state-bytes limit %S" n))
  | [ "limit"; "commands-per-event"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
          b.limits <-
            { b.limits with Resources.max_commands_per_event = Some n };
          Ok ()
      | _ -> err (Printf.sprintf "bad commands-per-event limit %S" n))
  | [ "invariant"; "loop-freedom" ] ->
      add_invariant b Checker.Loop_freedom;
      Ok ()
  | [ "invariant"; "black-hole-freedom" ] ->
      add_invariant b Checker.Black_hole_freedom;
      Ok ()
  | [ "invariant"; "no-drop-all" ] ->
      add_invariant b Checker.No_drop_all;
      Ok ()
  | [ "invariant"; "reachability"; pairs ] -> (
      match parse_pairs pairs with
      | Ok pairs ->
          add_invariant b (Checker.Pairwise_reachability pairs);
          Ok ()
      | Error m -> err m)
  | [ "invariant"; "isolation"; groups ] -> (
      match parse_groups groups with
      | Ok (group_a, group_b) ->
          add_invariant b (Checker.Isolation { group_a; group_b });
          Ok ()
      | Error m -> err m)
  | [ "invariant"; "waypoint"; "via"; sid; "pairs"; pairs ] -> (
      match (int_of_string_opt sid, parse_pairs pairs) with
      | Some via, Ok pairs ->
          add_invariant b (Checker.Waypoint { pairs; via });
          Ok ()
      | None, _ -> err (Printf.sprintf "bad waypoint switch %S" sid)
      | _, Error m -> err m)
  | [ "app"; a; "event"; k; "=>"; c ] -> (
      match Recovery_policy.compromise_of_name c with
      | None -> err (Printf.sprintf "unknown compromise %S" c)
      | Some action -> (
          let app = if a = "*" then None else Some a in
          match
            if k = "*" then Ok None
            else
              match kind_of_name k with
              | Some kind -> Ok (Some kind)
              | None -> Error (Printf.sprintf "unknown event kind %S" k)
          with
          | Error m -> err m
          | Ok kind ->
              b.rules <- { Recovery_policy.app; kind; action } :: b.rules;
              Ok ()))
  | [ "default"; "=>"; c ] -> (
      match Recovery_policy.compromise_of_name c with
      | None -> err (Printf.sprintf "unknown compromise %S" c)
      | Some action ->
          if b.default <> None then err "duplicate default directive"
          else begin
            b.default <- Some action;
            Ok ()
          end)
  | _ ->
      err
        (Printf.sprintf "cannot parse directive %S"
           (String.concat " " toks))

let parse text =
  let b = fresh_builder () in
  let lines = String.split_on_char '\n' text in
  let rec scan lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match directive b lineno (tokens line) with
        | Ok () -> scan (lineno + 1) rest
        | Error e -> Error e)
  in
  match scan 1 lines with
  | Error e -> Error e
  | Ok () ->
      Ok
        {
          Runtime.checkpoint_every = b.checkpoint_every;
          checkpoint_mode = b.checkpoint_mode;
          engine = b.engine;
          reliable = b.reliable;
          cluster = b.cluster;
          dispatch = b.dispatch;
          trace_cache_budget = b.trace_cache_budget;
          workload = b.workload;
          nversion = b.nversion;
          crashpad =
            {
              Crashpad.policy =
                Recovery_policy.make ?default:b.default (List.rev b.rules);
              invariants =
                Option.value b.invariants ~default:Checker.default;
              timing = b.timing;
              limits = b.limits;
              quarantine =
                Option.map
                  (fun threshold -> Quarantine.create ~threshold ())
                  b.quarantine_threshold;
              intent = b.intent;
              batched_checkpoints = false;
            };
        }

let parse_exn text =
  match parse text with
  | Ok c -> c
  | Error e -> failwith (Format.asprintf "config: %a" pp_error e)

let print (config : Runtime.config) =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "checkpoint every %d" config.Runtime.checkpoint_every;
  line "checkpoint mode %s"
    (match config.Runtime.checkpoint_mode with
    | Runtime.Ckpt_full -> "full"
    | Runtime.Ckpt_delta -> "delta"
    | Runtime.Ckpt_delta_adaptive -> "delta-adaptive");
  line "engine %s"
    (match config.Runtime.engine with
    | Runtime.Netlog_engine -> "netlog"
    | Runtime.Delay_buffer_engine -> "delay-buffer");
  (match config.Runtime.dispatch with
  | Runtime.Sequential -> line "dispatch seq"
  | Runtime.Sharded { shards; max_batch } ->
      line "dispatch sharded shards %d batch %d" shards max_batch);
  (match config.Runtime.trace_cache_budget with
  | Some n -> line "trace-cache budget %d" n
  | None -> ());
  (match config.Runtime.workload with
  | Some w ->
      line "workload trace seed %d rate %g alpha %g diurnal %g period %g churn %g"
        w.Runtime.w_seed w.Runtime.w_rate w.Runtime.w_alpha
        w.Runtime.w_diurnal w.Runtime.w_period w.Runtime.w_churn
  | None -> ());
  (match config.Runtime.nversion with
  | Some v when v.Voter.nv_adaptive ->
      line "nversion %d adaptive shed-after %d" v.Voter.nv_replicas
        v.Voter.nv_shed_after
  | Some v -> line "nversion %d" v.Voter.nv_replicas
  | None -> ());
  let rel = config.Runtime.reliable in
  line "reliable %s timeout %g retries %d"
    (if rel.Reliable.enabled then "on" else "off")
    rel.Reliable.base_timeout rel.Reliable.max_retries;
  let cl = config.Runtime.cluster in
  line "replicas %d" cl.Runtime.replicas;
  line "election timeout %g %g" cl.Runtime.election_lo cl.Runtime.election_hi;
  let cp = config.Runtime.crashpad in
  if not cp.Crashpad.intent then line "intent off";
  (match cp.Crashpad.quarantine with
  | Some q -> line "quarantine threshold %d" (Quarantine.threshold q)
  | None -> ());
  line "heartbeat interval %g misses %d"
    cp.Crashpad.timing.Detector.heartbeat_interval
    cp.Crashpad.timing.Detector.heartbeat_misses;
  line "rpc timeout %g" cp.Crashpad.timing.Detector.rpc_timeout;
  (match cp.Crashpad.limits.Resources.max_state_bytes with
  | Some n -> line "limit state-bytes %d" n
  | None -> ());
  (match cp.Crashpad.limits.Resources.max_commands_per_event with
  | Some n -> line "limit commands-per-event %d" n
  | None -> ());
  let pairs_str pairs =
    String.concat ","
      (List.map (fun (a, c) -> Printf.sprintf "%d:%d" a c) pairs)
  in
  List.iter
    (function
      | Checker.Loop_freedom -> line "invariant loop-freedom"
      | Checker.Black_hole_freedom -> line "invariant black-hole-freedom"
      | Checker.No_drop_all -> line "invariant no-drop-all"
      | Checker.Pairwise_reachability pairs ->
          line "invariant reachability %s" (pairs_str pairs)
      | Checker.Isolation { group_a; group_b } ->
          line "invariant isolation %s|%s"
            (String.concat "," (List.map string_of_int group_a))
            (String.concat "," (List.map string_of_int group_b))
      | Checker.Waypoint { pairs; via } ->
          line "invariant waypoint via %d pairs %s" via (pairs_str pairs))
    cp.Crashpad.invariants;
  List.iter
    (fun (r : Recovery_policy.rule) ->
      line "app %s event %s => %s"
        (Option.value r.Recovery_policy.app ~default:"*")
        (match r.Recovery_policy.kind with
        | None -> "*"
        | Some k -> Event.kind_name k)
        (Recovery_policy.compromise_name r.Recovery_policy.action))
    (Recovery_policy.rules cp.Crashpad.policy);
  line "default => %s"
    (Recovery_policy.compromise_name (Recovery_policy.default_action cp.Crashpad.policy));
  Buffer.contents b
