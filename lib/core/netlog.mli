(** NetLog: network-wide transactions with inverse-based rollback (§3.2).

    Every state-altering control message is invertible: NetLog captures the
    pre-state a command is about to destroy (the rule an add replaces, the
    rules a modify rewrites, the rules a delete removes — including their
    timeouts and counters) and can therefore undo the whole transaction in
    reverse order. Counter values that OpenFlow cannot re-install are banked
    in a {!Counter_cache} and re-injected into statistics replies.

    Commands are applied to the network eagerly, so the data plane sees
    updates at full speed; an abort walks the undo log. *)

open Openflow

type t

val create :
  ?transport:(Types.switch_id -> Message.t -> Message.t list) ->
  ?xid_base:int ->
  ?metrics:Metrics.t ->
  Netsim.Net.t ->
  t
(** [transport] replaces the raw [Net.send] for every outgoing message —
    the hook by which {!Reliable} interposes barrier-acked retransmission.
    Rollback traffic flows through it too. [xid_base] (default 1) seeds the
    xid counter; a failover controller must pass the predecessor's
    {!next_xid} so switch-side duplicate detection never confuses a fresh
    command with a retransmission. [metrics] receives counter-cache
    eviction counts. *)

val net : t -> Netsim.Net.t
val cache : t -> Counter_cache.t

val set_tracer : t -> Obs.Tracer.t -> unit
(** Record every rollback as a [Txn_rollback] span (app and undo count in
    the attributes). Default: the no-op tracer. *)

val next_xid : t -> int
(** The next xid this instance will assign (for failover hand-off). *)

(** Lifetime statistics. *)
val committed : t -> int
val aborted : t -> int
val ops_applied : t -> int
val ops_rolled_back : t -> int

(** One closed transaction, as the journal remembers it. *)
type journal_entry = {
  je_app : string;
  je_committed : bool;  (** [false] = aborted and rolled back. *)
  je_ops : Controller.Command.t list;  (** In application order. *)
  je_rolled_back : int;  (** Undos executed during the abort; 0 for commits. *)
}

val journal : t -> journal_entry list
(** Every transaction ever closed on this instance, oldest first. This is
    the transaction-atomicity surface the dispatch-engine differential
    tests compare: two engines are only equivalent if they commit and
    abort the same transactions with the same commands, in the same
    order. *)

type txn

val begin_txn : t -> app:string -> txn

val apply : t -> txn -> Controller.Command.t -> Message.t list
(** Execute one command inside the transaction, recording its inverse.
    Statistics replies are counter-cache corrected. Raises
    [Invalid_argument] on a closed transaction. *)

val commit : t -> txn -> unit
(** Seal the transaction; its effects stand. *)

val abort : t -> txn -> unit
(** Undo every applied command, newest first: rules the transaction added
    are removed; rules it removed are restored with their remaining
    timeouts, their counters banked in the cache; rewritten action lists
    are rewritten back. *)

val issued : txn -> Controller.Command.t list
(** Commands applied so far, oldest first. *)

val engine : t -> Txn_engine.t
