open Openflow

type t =
  | Flow of Types.switch_id * Message.flow_mod
  | Packet of Types.switch_id * Message.packet_out
  | Port of Types.switch_id * Message.port_mod
  | Stats of Types.switch_id * Message.stats_request
  | Log of string

let to_message ~xid = function
  | Flow (sid, fm) -> Some (sid, Message.message ~xid (Message.Flow_mod fm))
  | Packet (sid, po) -> Some (sid, Message.message ~xid (Message.Packet_out po))
  | Port (sid, pm) -> Some (sid, Message.message ~xid (Message.Port_mod pm))
  | Stats (sid, sr) ->
      Some (sid, Message.message ~xid (Message.Stats_request sr))
  | Log _ -> None

let install ?idle_timeout ?hard_timeout ?priority ?notify_when_removed sid
    pattern actions =
  Flow
    ( sid,
      Message.flow_add ?idle_timeout ?hard_timeout ?priority
        ?notify_when_removed pattern actions )

let uninstall ?strict ?priority sid pattern =
  Flow (sid, Message.flow_delete ?strict ?priority pattern)

let set_no_flood sid port_no no_flood =
  Port (sid, { Message.pm_port_no = port_no; pm_no_flood = no_flood })

let packet_out ?buffer_id ?in_port sid actions packet =
  Packet
    ( sid,
      {
        Message.po_buffer_id = buffer_id;
        po_in_port = in_port;
        po_actions = actions;
        po_packet = packet;
      } )

let is_state_altering = function
  | Flow _ | Packet _ | Port _ -> true
  | Stats _ | Log _ -> false

let equal a b = a = b

let pp fmt = function
  | Flow (sid, fm) ->
      Format.fprintf fmt "flow(%a, %a)" Types.pp_switch sid Message.pp_payload
        (Message.Flow_mod fm)
  | Packet (sid, po) ->
      Format.fprintf fmt "packet(%a, %a)" Types.pp_switch sid
        Message.pp_payload (Message.Packet_out po)
  | Port (sid, pm) ->
      Format.fprintf fmt "port(%a, %a)" Types.pp_switch sid Message.pp_payload
        (Message.Port_mod pm)
  | Stats (sid, _) -> Format.fprintf fmt "stats(%a)" Types.pp_switch sid
  | Log s -> Format.fprintf fmt "log(%s)" s
