test/t_buf.ml: Alcotest Buf Bytes List Openflow QCheck2 QCheck_alcotest T_util
