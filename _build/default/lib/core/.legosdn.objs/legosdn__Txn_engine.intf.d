lib/core/txn_engine.mli: Controller Message Openflow
