lib/apps/firewall.ml: App_sig Command Controller Event List Message Ofp_match Openflow Packet
