examples/quickstart.mli:
