lib/core/wire.ml: Buf Bytes Codec Controller Format Int64 List Message Openflow String
