open Openflow
open Controller

(* The firewall, restated as intent: the entire behavior lives in the
   declared policy — [handle] never emits a command. The runtime compiles
   the intent to flow tables and keeps them reconciled; Crash-Pad can
   re-derive the full table from [policy] alone after any failure. *)

type state = int  (* events seen, so checkpoints have something to carry *)

let name = "policy_firewall"
let subscriptions = [ Event.K_switch_up; Event.K_packet_in ]
let init () = 0

let blocked_ports = Firewall.blocked_ports

let intent =
  let blocked =
    Policy.conj
      [
        Policy.Test (Policy.Dl_type Packet.ethertype_ip);
        Policy.Test (Policy.Nw_proto Packet.proto_tcp);
        Policy.disj
          (List.map (fun p -> Policy.Test (Policy.Tp_dst p)) blocked_ports);
      ]
  in
  Policy.ite blocked Policy.drop Policy.flood

let handle _ st _ = (st + 1, [])
let policy _ _ = Some intent
