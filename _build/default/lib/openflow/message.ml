type flow_mod_command =
  | Add
  | Modify
  | Modify_strict
  | Delete
  | Delete_strict

type flow_mod = {
  pattern : Ofp_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  buffer_id : int option;
  out_port : Types.port_no option;
  notify_when_removed : bool;
  actions : Action.t list;
}

let default_priority = 32768

let flow_add ?(cookie = 0L) ?(idle_timeout = 0) ?(hard_timeout = 0)
    ?(priority = default_priority) ?(notify_when_removed = false) pattern
    actions =
  {
    pattern;
    cookie;
    command = Add;
    idle_timeout;
    hard_timeout;
    priority;
    buffer_id = None;
    out_port = None;
    notify_when_removed;
    actions;
  }

let flow_delete ?(strict = false) ?(priority = default_priority) pattern =
  {
    pattern;
    cookie = 0L;
    command = (if strict then Delete_strict else Delete);
    idle_timeout = 0;
    hard_timeout = 0;
    priority;
    buffer_id = None;
    out_port = None;
    notify_when_removed = false;
    actions = [];
  }

type packet_in_reason = No_match | Action_to_controller

type flow_removed_reason = Removed_idle | Removed_hard | Removed_delete

type port_desc = {
  port_no : Types.port_no;
  hw_addr : Types.mac;
  name : string;
  up : bool;
  no_flood : bool;
}

type features = {
  datapath_id : Types.switch_id;
  n_buffers : int;
  n_tables : int;
  ports : port_desc list;
}

type packet_in = {
  pi_buffer_id : int option;
  pi_in_port : Types.port_no;
  pi_reason : packet_in_reason;
  pi_packet : Packet.t;
}

type packet_out = {
  po_buffer_id : int option;
  po_in_port : Types.port_no option;
  po_actions : Action.t list;
  po_packet : Packet.t option;
}

type flow_removed = {
  fr_pattern : Ofp_match.t;
  fr_cookie : int64;
  fr_priority : int;
  fr_reason : flow_removed_reason;
  fr_duration : int;
  fr_idle_timeout : int;
  fr_packet_count : int;
  fr_byte_count : int;
}

type port_status_reason = Port_add | Port_delete | Port_modify

type stats_request =
  | Flow_stats_request of Ofp_match.t
  | Aggregate_stats_request of Ofp_match.t
  | Port_stats_request of Types.port_no option
  | Description_request

type flow_stat = {
  fs_pattern : Ofp_match.t;
  fs_priority : int;
  fs_cookie : int64;
  fs_duration : int;
  fs_idle_timeout : int;
  fs_hard_timeout : int;
  fs_packet_count : int;
  fs_byte_count : int;
  fs_actions : Action.t list;
}

type port_stat = {
  ps_port_no : Types.port_no;
  ps_rx_packets : int;
  ps_tx_packets : int;
  ps_rx_bytes : int;
  ps_tx_bytes : int;
  ps_rx_dropped : int;
  ps_tx_dropped : int;
}

type stats_reply =
  | Flow_stats_reply of flow_stat list
  | Aggregate_stats_reply of { packets : int; bytes : int; flows : int }
  | Port_stats_reply of port_stat list
  | Description_reply of string

type port_mod = {
  pm_port_no : Types.port_no;
  pm_no_flood : bool;
}

type error_kind =
  | Bad_request
  | Bad_action
  | Flow_mod_failed
  | Port_mod_failed

type payload =
  | Hello
  | Echo_request of bytes
  | Echo_reply of bytes
  | Features_request
  | Features_reply of features
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Flow_removed of flow_removed
  | Port_status of port_status_reason * port_desc
  | Port_mod of port_mod
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply
  | Error of error_kind * string

type t = { xid : Types.xid; payload : payload }

let message ?(xid = 0) payload = { xid; payload }

let is_state_altering = function
  | Flow_mod _ | Packet_out _ | Port_mod _ -> true
  | Hello | Echo_request _ | Echo_reply _ | Features_request
  | Features_reply _ | Packet_in _ | Flow_removed _ | Port_status _
  | Stats_request _ | Stats_reply _ | Barrier_request | Barrier_reply
  | Error _ ->
      false

let payload_kind = function
  | Hello -> "hello"
  | Echo_request _ -> "echo_request"
  | Echo_reply _ -> "echo_reply"
  | Features_request -> "features_request"
  | Features_reply _ -> "features_reply"
  | Packet_in _ -> "packet_in"
  | Packet_out _ -> "packet_out"
  | Flow_mod _ -> "flow_mod"
  | Flow_removed _ -> "flow_removed"
  | Port_status _ -> "port_status"
  | Port_mod _ -> "port_mod"
  | Stats_request _ -> "stats_request"
  | Stats_reply _ -> "stats_reply"
  | Barrier_request -> "barrier_request"
  | Barrier_reply -> "barrier_reply"
  | Error _ -> "error"

let equal a b = a = b

let pp_command fmt = function
  | Add -> Format.pp_print_string fmt "add"
  | Modify -> Format.pp_print_string fmt "modify"
  | Modify_strict -> Format.pp_print_string fmt "modify_strict"
  | Delete -> Format.pp_print_string fmt "delete"
  | Delete_strict -> Format.pp_print_string fmt "delete_strict"

let pp_payload fmt = function
  | Flow_mod fm ->
      Format.fprintf fmt "flow_mod(%a prio=%d %a -> %a)" pp_command fm.command
        fm.priority Ofp_match.pp fm.pattern Action.pp_list fm.actions
  | Packet_in pi ->
      Format.fprintf fmt "packet_in(port=%a %a)" Types.pp_port pi.pi_in_port
        Packet.pp pi.pi_packet
  | Packet_out po ->
      Format.fprintf fmt "packet_out(%a)" Action.pp_list po.po_actions
  | Port_status (reason, desc) ->
      let r =
        match reason with
        | Port_add -> "add"
        | Port_delete -> "delete"
        | Port_modify -> "modify"
      in
      Format.fprintf fmt "port_status(%s %a up=%b)" r Types.pp_port
        desc.port_no desc.up
  | Flow_removed fr ->
      Format.fprintf fmt "flow_removed(%a)" Ofp_match.pp fr.fr_pattern
  | Port_mod pm ->
      Format.fprintf fmt "port_mod(%a no_flood=%b)" Types.pp_port pm.pm_port_no
        pm.pm_no_flood
  | Error (_, msg) -> Format.fprintf fmt "error(%s)" msg
  | other -> Format.pp_print_string fmt (payload_kind other)

let pp fmt t = Format.fprintf fmt "#%d %a" t.xid pp_payload t.payload
