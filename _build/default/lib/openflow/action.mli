(** OpenFlow 1.0 actions.

    An action list is applied in order to a packet; an empty list means
    drop. *)

type t =
  | Output of Types.port_no
      (** Forward out of a port; reserved ports ([Types.port_flood] etc.)
          keep their OF 1.0 semantics in the data plane. *)
  | Enqueue of Types.port_no * Types.queue_id
  | Set_dl_src of Types.mac
  | Set_dl_dst of Types.mac
  | Set_vlan of int
  | Strip_vlan
  | Set_nw_src of Types.ip
  | Set_nw_dst of Types.ip
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int

val apply : t list -> Packet.t -> Packet.t * Types.port_no list
(** [apply actions pkt] is the rewritten packet and the list of egress
    ports, applying header rewrites in order. Field rewrites that occur
    after an [Output] do not affect the already-emitted copy — matching the
    OF 1.0 sequential action semantics — so the returned packet is the final
    header state while each egress port is paired with the header state at
    emission time by {!apply_staged}. *)

val apply_staged : t list -> Packet.t -> (Packet.t * Types.port_no) list
(** Per-output view: each emitted copy with the headers it carried at the
    moment its [Output] executed. *)

val outputs : t list -> Types.port_no list
(** The output ports named in the list, in order. *)

val is_drop : t list -> bool
(** True when the list emits no packet at all. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

val encode : Buf.writer -> t -> unit
val decode : Buf.reader -> t

val encode_list : Buf.writer -> t list -> unit
val decode_list : Buf.reader -> t list
