(** Operator compromise policies (§3.3 "How much correctness to
    compromise?").

    A policy maps (application, event kind) to one of the paper's three
    compromises. Rules are evaluated first-match-wins; a default applies
    when nothing matches. *)

type compromise =
  | No_compromise
      (** Let the application stay down: correctness over availability. *)
  | Absolute
      (** Ignore the offending event: the app becomes failure-oblivious. *)
  | Equivalence
      (** Replay a transformed, equivalent event (see {!Transform}). *)

type rule = {
  app : string option;  (** [None] matches any application. *)
  kind : Controller.Event.kind option;  (** [None] matches any event. *)
  action : compromise;
}

type t

val make : ?default:compromise -> rule list -> t
(** Default default is [Equivalence] — try hardest to keep both availability
    and fidelity. *)

val rules : t -> rule list
val default_action : t -> compromise

val decide : t -> app:string -> Controller.Event.kind -> compromise

val uniform : compromise -> t
(** The policy that always answers the same thing. *)

val compromise_name : compromise -> string
val compromise_of_name : string -> compromise option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
