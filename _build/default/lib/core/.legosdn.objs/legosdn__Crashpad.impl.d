lib/core/crashpad.ml: App_sig Command Controller Detector Event Invariants List Message Metrics Netsim Openflow Policy Quarantine Resources Sandbox String Ticket Transform Txn_engine Types
