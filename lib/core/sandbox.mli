(** An isolated application container: the AppVisor stub plus its side of
    the proxy.

    The sandbox owns one application instance. Every event in and every
    command out crosses the boundary through {!Wire} serialization, and
    every failure mode of the application — exception, partial-emission
    crash, hang — is converted into an explicit {!verdict}; nothing an
    application does can escape the sandbox. This is the fate-sharing
    breaker. *)

open Controller

type verdict =
  | Done of Command.t list
      (** The handler returned; its state was committed and its commands
          (already re-decoded on the proxy side) are ready for NetLog. *)
  | Crashed of { partial : Command.t list; detail : string }
      (** Fail-stop. [partial] are commands that escaped before the crash
          (non-empty only for [Crash_with_partial]). The app state is
          untouched (the crash threw the new state away — as a dead process
          would). *)
  | Hung
      (** The handler would never return; detection is by heart-beat loss. *)

type t

val create : ?ckpt:Checkpoint.t -> checkpoint_every:int -> App_sig.app -> t
(** [ckpt] substitutes a custom checkpoint store (delta storage, adaptive
    cadence); by default a full-blob store with cadence [checkpoint_every]
    is created. *)

val name : t -> string
val subscribes_to : t -> Event.kind -> bool

val set_scratch : t -> Wire.scratch option -> unit
(** Install ([Some]) or remove ([None]) a reusable codec buffer for the
    RPC boundary: {!Wire.roundtrip_event_scratch} replaces the
    fresh-allocation ship path. Byte-stream and error behaviour are
    identical (see {!Wire.scratch}); only allocation changes. The sharded
    dispatch engine installs one per sandbox. *)

val alive : t -> bool

val disable : t -> unit
(** Take the app out of service (the No-Compromise outcome). *)

val enable : t -> unit

val events_handled : t -> int
val crash_count : t -> int

val rpc_bytes : t -> int
(** Total serialized bytes across the boundary so far (events in + commands
    out), the §3.1 isolation-latency metric. *)

val state_size : t -> int
(** Current serialized application state size. *)

val checkpoint_store : t -> Checkpoint.t

val prepare : ?tracer:Obs.Tracer.t -> t -> unit
(** Take a checkpoint if one is due (call before dispatching an event).
    With a tracer, the take is recorded as a [Ckpt_take] span carrying the
    app name and bytes written. *)

val deliver : t -> App_sig.context -> Event.t -> verdict
(** The full RPC path: serialize the event, hand it to the app, serialize
    and return its commands. On [Done] the state has advanced but the event
    is not yet journaled — the proxy decides the fate of the delivery:
    {!confirm} it once its transaction commits, or {!revert_last} it (e.g.
    byzantine output, resource breach). On failure the state is untouched. *)

val confirm : t -> Event.t -> unit
(** Journal a successfully committed event (enables replay after a later
    checkpoint restore). *)

val revert_last : t -> unit
(** Discard the state advance of the most recent {!deliver} (the proxy
    refused to commit it). *)

val checkpoint_now : t -> unit
(** Unconditionally snapshot the current state as the new baseline. *)

(** Result of a checkpoint-restore recovery. *)
type recovery = {
  replayed : int;  (** Journal events re-applied after the snapshot. *)
  dropped_in_replay : int;
      (** Journal events that crashed again during replay and were skipped
          (their effects are already on the network; only state is lost). *)
}

val recover : ?tracer:Obs.Tracer.t -> t -> App_sig.context -> recovery
(** Restore the latest checkpoint and replay the journal (commands produced
    during replay are discarded: they were committed when first executed).
    With no checkpoint yet, falls back to a reboot ([init] state). With a
    tracer, the restore is recorded as a [Ckpt_restore] span carrying the
    journal depth and replay outcome. *)

val reboot : t -> unit
(** Fresh [init] state, clearing nothing else. *)

val app_module : t -> (module App_sig.APP)
(** The application module inside (for offline analysis on fresh copies). *)

val declared_policy : t -> App_sig.context -> Policy.t option
(** The app's declared forwarding intent evaluated over its current state,
    or [None] if the app is legacy or its hook raised. *)

val intent_tables : t -> Policy.table list
(** Compiled intent as last installed on the network ([[]] initially).
    Survives reboots/restores: it mirrors switch state, not app state. *)

val set_intent_tables : t -> Policy.table list -> unit
(** Record that [tables] are now what the network holds for this app. *)

val snapshot_bytes : t -> bytes
(** A serialized snapshot of the current state (does not touch the
    checkpoint store) — for shipping state elsewhere, e.g. to a standby. *)

val restore_bytes : t -> bytes -> unit
(** Overwrite the application state with a snapshot taken earlier from the
    same module (standby fail-over, external state shipping). The snapshot
    becomes the new checkpoint baseline. *)
