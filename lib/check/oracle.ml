(* The oracle suite: properties the whole system must satisfy at quiescent
   points of a scenario run. [Mid] checks run after every scheduled action
   (faults may still be active, channels lossy); [Final] checks run once
   the runner has healed every channel and switch and let the recovery
   machinery settle, so they can demand full convergence. *)

module Net = Netsim.Net
module Topology = Netsim.Topology
module Checker = Invariants.Checker
module Snapshot = Invariants.Snapshot
module Runtime = Legosdn.Runtime
module Reliable = Legosdn.Reliable
module Metrics = Legosdn.Metrics
module Recovery_policy = Legosdn.Recovery_policy
module Sandbox = Legosdn.Sandbox

type phase = Mid | Final

type ctx = {
  spec : Spec.t;
  rt : Runtime.t;
  net : Net.t;
  cluster : Cluster.t option;
      (* present when the spec runs replicated (replicas > 1) *)
  phase : phase;
  elapsed : float;  (* virtual seconds since the run started *)
}

type verdict = Pass | Fail of string

type t = { name : string; check : ctx -> verdict }

let failf fmt = Format.ksprintf (fun s -> Fail s) fmt

(* (a) Data-plane invariants. Loop freedom and the absence of match-all
   drop rules must hold at every quiescent point: the generator only draws
   acyclic topologies and byzantine output is screened before commit, so
   not even an injected bug may break them. Black-hole freedom is only
   demanded at the end of a clean (traffic-only) run — a mid-run link
   flap legitimately strands rules that point at a dead port.

   The check runs through the runtime's incremental engine — the same one
   screening Crash-Pad transactions — so every quiescent point also
   exercises its cache against live fault sequences; its results are
   proven equal to a full [Checker.check] on a fresh snapshot by the
   equivalence property in the test suite. *)
let invariants =
  {
    name = "invariants";
    check =
      (fun ctx ->
        let invs =
          match ctx.phase with
          | Mid -> [ Checker.Loop_freedom; Checker.No_drop_all ]
          | Final ->
              if Spec.is_clean ctx.spec then
                [
                  Checker.Loop_freedom;
                  Checker.No_drop_all;
                  Checker.Black_hole_freedom;
                ]
              else [ Checker.Loop_freedom; Checker.No_drop_all ]
        in
        match
          Invariants.Incremental.check ~invariants:invs
            (Runtime.incremental ctx.rt)
        with
        | [] -> Pass
        | v :: _ as all ->
            Fail
              (Format.asprintf "%d violation(s), first: %a" (List.length all)
                 Checker.pp_violation v));
  }

(* (b) Shadow intent vs. actual flow tables. Once every channel is healed
   and retransmission has settled, the reliable layer's intent tables and
   the switches' real tables must agree rule-for-rule — this is the
   end-to-end correctness claim of [Reliable]. *)
let convergence =
  {
    name = "convergence";
    check =
      (fun ctx ->
        match (ctx.phase, Runtime.reliable ctx.rt) with
        | Mid, _ | _, None -> Pass
        | Final, Some rel ->
            if not (Reliable.config rel).Reliable.enabled then Pass
            else
              let d = Reliable.divergence rel in
              if d = 0 then Pass
              else failf "%d rule(s) differ between shadow intent and switches" d);
  }

(* (c) Transaction atomicity under loss. Every message NetLog emitted —
   forward operations and rollback compensations alike — must have been
   delivered and barrier-acked by the end of a healed run: nothing may
   stay half-committed in the retransmission queue, and no switch may
   still be written off as unreachable. *)
let atomicity =
  {
    name = "atomicity";
    check =
      (fun ctx ->
        match (ctx.phase, Runtime.reliable ctx.rt) with
        | Mid, _ | _, None -> Pass
        | Final, Some rel ->
            if not (Reliable.config rel).Reliable.enabled then Pass
            else begin
              let pending = Reliable.pending_count rel in
              let degraded =
                List.filter
                  (Reliable.is_degraded rel)
                  (Topology.switches (Net.topology ctx.net))
              in
              if pending > 0 then
                failf "%d un-acked message(s) after heal+settle" pending
              else
                match degraded with
                | [] -> Pass
                | sids ->
                    failf "switch(es) still degraded after heal: %s"
                      (String.concat ","
                         (List.map string_of_int sids))
            end);
  }

(* (d) Metrics self-consistency. Availability is a ratio; downtime can
   only come from detection delays (bounded by the hang timeout per
   failure) plus real disabled time (bounded by the elapsed clock); every
   policy resolution corresponds to a detected failure; and Crashpad files
   exactly one ticket per resolution or resource breach. *)
let metrics =
  {
    name = "metrics";
    check =
      (fun ctx ->
        let m = Runtime.metrics ctx.rt in
        let failures =
          Metrics.crashes m + Metrics.hangs m + Metrics.byzantine_blocked m
          + Metrics.unreachable m
        in
        let resolutions =
          Metrics.ignored m + Metrics.transformed m + Metrics.disabled m
        in
        let max_detection = 0.5 (* > heartbeat_interval * heartbeat_misses *) in
        let bad_app =
          List.find_map
            (fun app ->
              let avail = Metrics.availability m ~app ~until:ctx.elapsed in
              let down = Metrics.app_downtime m ~app ~until:ctx.elapsed in
              let bound =
                ctx.elapsed
                +. (float (Metrics.crashes m + Metrics.hangs m)
                   *. max_detection)
                +. 1e-9
              in
              if avail < 0. || avail > 1. then
                Some
                  (Printf.sprintf "availability(%s)=%f out of [0,1]" app avail)
              else if down > bound then
                Some
                  (Printf.sprintf "downtime(%s)=%.3f exceeds bound %.3f" app
                     down bound)
              else None)
            ctx.spec.Spec.apps
        in
        match bad_app with
        | Some msg -> Fail msg
        | None ->
            if resolutions > failures then
              failf "%d resolutions for only %d detected failures" resolutions
                failures
            else
              let tickets = List.length (Runtime.tickets ctx.rt) in
              let expected = resolutions + Metrics.resource_breaches m in
              if tickets <> expected then
                failf "%d tickets filed but %d resolutions+breaches" tickets
                  expected
              else Pass);
  }

(* (e) The controller outlives every app failure. An exception escaping
   Runtime.step/tick is converted into a failure by the runner before the
   oracles run; here we additionally demand that under any policy other
   than No_compromise, no sandbox ended up disabled — Crashpad must have
   absorbed the failure without giving the app up. *)
let controller_survives =
  {
    name = "controller-survives";
    check =
      (fun ctx ->
        if ctx.spec.Spec.policy = Recovery_policy.No_compromise then Pass
        else
          match
            List.filter
              (fun b -> not (Sandbox.alive b))
              (Runtime.sandboxes ctx.rt)
          with
          | [] -> Pass
          | dead ->
              failf "sandbox(es) dead under %s policy: %s"
                (Recovery_policy.compromise_name ctx.spec.Spec.policy)
                (String.concat "," (List.map Sandbox.name dead)));
  }

(* (f) Fail-over sanity for replicated runs. After healing and settling,
   the cluster must have exactly one live leader, every live replica must
   agree on term and commit index, and — if the armed leader kill actually
   fired — a successor must have taken over. The end-to-end half of the
   property (the kill-run delivers the same packets to their destinations
   as a never-killed run) is a differential check the runner performs,
   reported under this oracle's name. *)
let leader_failover =
  {
    name = "leader-failover";
    check =
      (fun ctx ->
        match (ctx.cluster, ctx.phase) with
        | None, _ | _, Mid -> Pass
        | Some c, Final -> (
            match Cluster.alive_leaders c with
            | [] -> Fail "no live leader after heal+settle"
            | _ :: _ :: _ as ids ->
                failf "%d live leaders after heal+settle: %s"
                  (List.length ids)
                  (String.concat "," (List.map string_of_int ids))
            | [ _ ] ->
                if not (Cluster.converged c) then
                  Fail
                    "live replicas disagree on term/commit after heal+settle"
                else if
                  Cluster.kills c > 0 && Cluster.failovers c = 0
                then Fail "leader was killed but no successor took over"
                else Pass));
  }

(* (g) N-version masking. The panel counters must stay self-consistent on
   every run (a masked event implies at least one outvoted ballot; no
   counter may move on a solo spec), and on the byz-variant plant — a
   seated byzantine variant, lossless channels, guaranteed traffic — the
   run must end with at least one output actually masked: the plant is
   the proof the voting layer screens byzantine output, not just that it
   runs. *)
let nversion_masking =
  {
    name = "nversion-masking";
    check =
      (fun ctx ->
        let m = Runtime.metrics ctx.rt in
        let events = Metrics.nv_events m in
        let masked = Metrics.nv_masked m in
        let outvoted = Metrics.nv_outvoted m in
        if ctx.spec.Spec.nversion <= 1 then
          if events + masked + outvoted > 0 then
            failf "panel counters moved on a solo spec (events=%d)" events
          else Pass
        else if masked > events then
          failf "nv_masked=%d exceeds nv_events=%d" masked events
        else if outvoted < masked then
          failf "nv_outvoted=%d below nv_masked=%d" outvoted masked
        else
          match ctx.phase with
          | Mid -> Pass
          | Final ->
              if
                Spec.has_byz_variant ctx.spec
                && ctx.spec.Spec.base_loss = 0.
                && masked = 0
              then Fail "byzantine variant seated but nothing was ever masked"
              else Pass);
  }

let all =
  [ invariants; convergence; atomicity; metrics; controller_survives;
    leader_failover; nversion_masking ]

let names = List.map (fun o -> o.name) all

let find name = List.find_opt (fun o -> o.name = name) all

(* Select a subset by name; unknown names are an error so a typo in
   --oracles does not silently run nothing. *)
let select names =
  List.map
    (fun n ->
      match find n with
      | Some o -> o
      | None ->
          invalid_arg
            (Printf.sprintf "unknown oracle %S (known: %s)" n
               (String.concat ", " (List.map (fun o -> o.name) all))))
    names
