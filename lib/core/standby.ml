module Net = Netsim.Net
module Clock = Netsim.Clock

type t = {
  network : Net.t;
  modules : (module Controller.App_sig.APP) list;
  config : Runtime.config;
  sync_interval : float;
  mutable active : Runtime.t;
  mutable shipped : (string * bytes) list;  (* app -> latest snapshot *)
  mutable synced_at : float option;
  mutable n_failovers : int;
}

let create ?(config = Runtime.default_config) ?(sync_interval = 1.) network
    modules =
  {
    network;
    modules;
    config;
    sync_interval;
    active = Runtime.create ~config network modules;
    shipped = [];
    synced_at = None;
    n_failovers = 0;
  }

let runtime t = t.active

let now t = Clock.now (Net.clock t.network)

let sync t =
  t.shipped <-
    List.map
      (fun box -> (Sandbox.name box, Sandbox.snapshot_bytes box))
      (Runtime.sandboxes t.active);
  t.synced_at <- Some (now t)

let maybe_sync t =
  let due =
    match t.synced_at with
    | None -> true
    | Some at -> now t -. at >= t.sync_interval
  in
  if due then sync t

let step t =
  Runtime.step t.active;
  maybe_sync t

let last_sync_at t = t.synced_at

let fail_primary t =
  t.n_failovers <- t.n_failovers + 1;
  (* The dead controller's pending switch messages died with it. *)
  ignore (Net.poll t.network);
  (* Switches remember applied xids: the successor must continue the xid
     sequence or its first commands would look like retransmissions. *)
  let xid_base =
    match Runtime.netlog t.active with
    | Some nl -> Netlog.next_xid nl
    | None -> 1
  in
  let fresh = Runtime.create ~config:t.config ~xid_base t.network t.modules in
  List.iter
    (fun box ->
      match List.assoc_opt (Sandbox.name box) t.shipped with
      | Some snapshot -> Sandbox.restore_bytes box snapshot
      | None -> ())
    (Runtime.sandboxes fresh);
  t.active <- fresh;
  (* Take over: re-handshake with every live switch. *)
  Runtime.upgrade_controller fresh;
  t

let failovers t = t.n_failovers
