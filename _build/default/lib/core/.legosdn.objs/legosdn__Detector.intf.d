lib/core/detector.mli: Command Controller Invariants Netsim Sandbox
