lib/core/quarantine.mli: App_sig Controller Event
