type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let mean = function
  | [] -> 0.
  | samples -> List.fold_left ( +. ) 0. samples /. float (List.length samples)

let percentile samples q =
  if samples = [] then invalid_arg "Stats.percentile: empty series";
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q outside [0,1]";
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  (* Nearest-rank: the ceil(q*n)-th smallest (1-based), clamped. *)
  let rank = max 1 (min n (int_of_float (ceil (q *. float n)))) in
  List.nth sorted (rank - 1)

let summarize = function
  | [] -> None
  | samples ->
      let n = List.length samples in
      let m = mean samples in
      let variance =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. samples
        /. float n
      in
      Some
        {
          n;
          mean = m;
          stddev = sqrt variance;
          min = List.fold_left min infinity samples;
          p50 = percentile samples 0.5;
          p90 = percentile samples 0.9;
          p99 = percentile samples 0.99;
          max = List.fold_left max neg_infinity samples;
        }

let histogram ~buckets samples =
  if buckets < 1 then invalid_arg "Stats.histogram: need at least one bucket";
  match samples with
  | [] -> []
  | _ ->
      let lo = List.fold_left min infinity samples in
      let hi = List.fold_left max neg_infinity samples in
      let width = if hi = lo then 1. else (hi -. lo) /. float buckets in
      let counts = Array.make buckets 0 in
      List.iter
        (fun x ->
          let idx = min (buckets - 1) (int_of_float ((x -. lo) /. width)) in
          counts.(idx) <- counts.(idx) + 1)
        samples;
      List.init buckets (fun i ->
          (lo +. (float i *. width), lo +. (float (i + 1) *. width), counts.(i)))

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
