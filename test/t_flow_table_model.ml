(* Model-based testing of Flow_table: a naive, obviously-correct reference
   implementation is driven with the same random operation sequences as the
   real table, and their observable behaviour (lookups, sizes, removals)
   must agree at every step. *)

open Openflow
open Netsim

(* ---- the reference model: a plain list, no cleverness ---- *)

module Model = struct
  type rule = {
    pattern : Ofp_match.t;
    priority : int;
    actions : Action.t list;
    seq : int;  (* insertion order for deterministic ties *)
  }

  type t = { mutable rules : rule list; mutable next_seq : int }

  let create () = { rules = []; next_seq = 0 }

  let add t pattern priority actions =
    t.rules <-
      List.filter
        (fun r -> not (r.priority = priority && Ofp_match.equal r.pattern pattern))
        t.rules;
    t.rules <- { pattern; priority; actions; seq = t.next_seq } :: t.rules;
    t.next_seq <- t.next_seq + 1

  let touches ~strict pattern ~priority r =
    if strict then r.priority = priority && Ofp_match.equal pattern r.pattern
    else Ofp_match.subsumes pattern r.pattern

  let modify t ~strict pattern ~priority actions =
    let hit = ref false in
    t.rules <-
      List.map
        (fun r ->
          if touches ~strict pattern ~priority r then begin
            hit := true;
            { r with actions }
          end
          else r)
        t.rules;
    !hit

  let delete t ~strict pattern ~priority =
    let gone, kept =
      List.partition (touches ~strict pattern ~priority) t.rules
    in
    t.rules <- kept;
    List.length gone

  let size t = List.length t.rules

  (* Highest priority; insertion order (lowest seq) breaks ties. *)
  let lookup t ~in_port pkt =
    t.rules
    |> List.filter (fun r -> Ofp_match.matches r.pattern ~in_port pkt)
    |> List.sort (fun a b ->
           match compare b.priority a.priority with
           | 0 -> compare a.seq b.seq
           | c -> c)
    |> function
    | [] -> None
    | r :: _ -> Some (r.pattern, r.priority, r.actions)
end

(* ---- operations ---- *)

type op =
  | Add of Ofp_match.t * int * Action.t list
  | Modify of bool * Ofp_match.t * int * Action.t list
  | Delete of bool * Ofp_match.t * int

let apply_real table = function
  | Add (pattern, priority, actions) ->
      Flow_table.add table
        (Flow_entry.make ~priority ~now:0. pattern actions)
  | Modify (strict, pattern, priority, actions) ->
      if not (Flow_table.modify table ~strict pattern ~priority actions) then
        Flow_table.add table (Flow_entry.make ~priority ~now:0. pattern actions)
  | Delete (strict, pattern, priority) ->
      ignore (Flow_table.delete table ~strict pattern ~priority)

let apply_model model = function
  | Add (pattern, priority, actions) -> Model.add model pattern priority actions
  | Modify (strict, pattern, priority, actions) ->
      if not (Model.modify model ~strict pattern ~priority actions) then
        Model.add model pattern priority actions
  | Delete (strict, pattern, priority) ->
      ignore (Model.delete model ~strict pattern ~priority)

(* Small domains maximize collisions, which is where the bugs live. *)
let small_pattern =
  QCheck2.Gen.(
    let* tp_dst = opt (oneofl [ 80; 443 ]) in
    let* nw_proto = opt (oneofl [ 6; 17 ]) in
    let* in_port = opt (oneofl [ 1; 2 ]) in
    return (Ofp_match.make ?tp_dst ?nw_proto ?in_port ()))

let op_gen =
  QCheck2.Gen.(
    let* pattern = small_pattern in
    let* priority = oneofl [ 10; 20; 30 ] in
    let* actions =
      map (fun p -> [ Action.Output p ]) (oneofl [ 1; 2; 3 ])
    in
    let* strict = bool in
    oneof
      [
        return (Add (pattern, priority, actions));
        return (Modify (strict, pattern, priority, actions));
        return (Delete (strict, pattern, priority));
      ])

let probe_packets =
  [
    (1, Packet.tcp ~src_host:1 ~dst_host:2 ~dport:80 ());
    (2, Packet.tcp ~src_host:2 ~dst_host:1 ~dport:443 ());
    (1, Packet.make ~nw_proto:17 ~dl_src:(Types.mac_of_host 1)
         ~dl_dst:(Types.mac_of_host 2) ~nw_src:(Types.ip_of_host 1)
         ~nw_dst:(Types.ip_of_host 2) ~tp_dst:53 ());
  ]

let agree table model =
  Model.size model = Flow_table.size table
  && List.for_all
       (fun (in_port, pkt) ->
         let real =
           Flow_table.lookup table ~now:0. ~in_port pkt
           |> Option.map (fun (e : Flow_entry.t) ->
                  (e.pattern, e.priority, e.actions))
         in
         Model.lookup model ~in_port pkt = real)
       probe_packets

let prop_model_agreement =
  QCheck2.Test.make ~name:"flow table agrees with naive reference" ~count:300
    QCheck2.Gen.(list_size (int_range 1 25) op_gen)
    (fun ops ->
      let table = Flow_table.create () in
      let model = Model.create () in
      List.for_all
        (fun op ->
          apply_real table op;
          apply_model model op;
          agree table model)
        ops)

let prop_delete_counts_agree =
  QCheck2.Test.make ~name:"delete removes the same rule count" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 1 15) op_gen) (pair small_pattern bool))
    (fun (ops, (pattern, strict)) ->
      let table = Flow_table.create () in
      let model = Model.create () in
      List.iter
        (fun op ->
          apply_real table op;
          apply_model model op)
        ops;
      let real_gone =
        List.length (Flow_table.delete table ~strict pattern ~priority:20)
      in
      let model_gone = Model.delete model ~strict pattern ~priority:20 in
      real_gone = model_gone)

(* Interning is a representation change only: the same operation sequence
   against a table built with interning on and one built with it off (the
   pre-interning representation — every pattern a private record) must be
   observationally identical, down to delete counts. *)
let with_interning on f =
  let was = Ofp_match.interning_enabled () in
  Ofp_match.set_interning on;
  Fun.protect ~finally:(fun () -> Ofp_match.set_interning was) f

let observe table (in_port, pkt) =
  Flow_table.lookup table ~now:0. ~in_port pkt
  |> Option.map (fun (e : Flow_entry.t) -> (e.pattern, e.priority, e.actions))

let prop_interning_differential =
  QCheck2.Test.make
    ~name:"interned table agrees with non-interned representation" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 1 25) op_gen) (pair small_pattern bool))
    (fun (ops, (del_pattern, del_strict)) ->
      let interned = Flow_table.create () in
      let fresh = Flow_table.create () in
      let agree_step op =
        with_interning true (fun () -> apply_real interned op);
        with_interning false (fun () -> apply_real fresh op);
        Flow_table.size interned = Flow_table.size fresh
        && List.for_all
             (fun probe -> observe interned probe = observe fresh probe)
             probe_packets
      in
      List.for_all agree_step ops
      && (* final delete removes the same rules from both *)
      List.length
        (Flow_table.delete interned ~strict:del_strict del_pattern
           ~priority:20)
      = List.length
          (Flow_table.delete fresh ~strict:del_strict del_pattern
             ~priority:20))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_model_agreement;
    QCheck_alcotest.to_alcotest prop_delete_counts_agree;
    QCheck_alcotest.to_alcotest prop_interning_differential;
  ]
