examples/quickstart.ml: Apps Controller Format Legosdn List Netsim Openflow Printf
