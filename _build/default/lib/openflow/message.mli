(** OpenFlow 1.0 protocol messages (the subset the LegoSDN stack uses, which
    is everything a FloodLight-class controller exchanges with switches). *)

type flow_mod_command =
  | Add
  | Modify
  | Modify_strict
  | Delete
  | Delete_strict

type flow_mod = {
  pattern : Ofp_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;  (** Seconds; 0 means never. *)
  hard_timeout : int;  (** Seconds; 0 means never. *)
  priority : int;
  buffer_id : int option;
  out_port : Types.port_no option;
      (** Delete/Delete_strict filter: only remove flows that output here. *)
  notify_when_removed : bool;  (** OFPFF_SEND_FLOW_REM. *)
  actions : Action.t list;
}

val default_priority : int
(** OFP_DEFAULT_PRIORITY (32768). *)

val flow_add :
  ?cookie:int64 ->
  ?idle_timeout:int ->
  ?hard_timeout:int ->
  ?priority:int ->
  ?notify_when_removed:bool ->
  Ofp_match.t ->
  Action.t list ->
  flow_mod
(** An [Add] flow-mod with priority defaulting to 32768 (OFP_DEFAULT). *)

val flow_delete : ?strict:bool -> ?priority:int -> Ofp_match.t -> flow_mod

type packet_in_reason = No_match | Action_to_controller

type flow_removed_reason = Removed_idle | Removed_hard | Removed_delete

type port_desc = {
  port_no : Types.port_no;
  hw_addr : Types.mac;
  name : string;
  up : bool;
  no_flood : bool;  (** OFPPC_NO_FLOOD: excluded from FLOOD output (STP). *)
}

type features = {
  datapath_id : Types.switch_id;
  n_buffers : int;
  n_tables : int;
  ports : port_desc list;
}

type packet_in = {
  pi_buffer_id : int option;
  pi_in_port : Types.port_no;
  pi_reason : packet_in_reason;
  pi_packet : Packet.t;
}

type packet_out = {
  po_buffer_id : int option;
  po_in_port : Types.port_no option;
  po_actions : Action.t list;
  po_packet : Packet.t option;  (** Required when [po_buffer_id] is [None]. *)
}

type flow_removed = {
  fr_pattern : Ofp_match.t;
  fr_cookie : int64;
  fr_priority : int;
  fr_reason : flow_removed_reason;
  fr_duration : int;  (** Seconds installed. *)
  fr_idle_timeout : int;
  fr_packet_count : int;
  fr_byte_count : int;
}

type port_status_reason = Port_add | Port_delete | Port_modify

type stats_request =
  | Flow_stats_request of Ofp_match.t
  | Aggregate_stats_request of Ofp_match.t
  | Port_stats_request of Types.port_no option
  | Description_request

type flow_stat = {
  fs_pattern : Ofp_match.t;
  fs_priority : int;
  fs_cookie : int64;
  fs_duration : int;
  fs_idle_timeout : int;
  fs_hard_timeout : int;
  fs_packet_count : int;
  fs_byte_count : int;
  fs_actions : Action.t list;
}

type port_stat = {
  ps_port_no : Types.port_no;
  ps_rx_packets : int;
  ps_tx_packets : int;
  ps_rx_bytes : int;
  ps_tx_bytes : int;
  ps_rx_dropped : int;
  ps_tx_dropped : int;
}

type stats_reply =
  | Flow_stats_reply of flow_stat list
  | Aggregate_stats_reply of { packets : int; bytes : int; flows : int }
  | Port_stats_reply of port_stat list
  | Description_reply of string

type port_mod = {
  pm_port_no : Types.port_no;
  pm_no_flood : bool;  (** Desired OFPPC_NO_FLOOD setting. *)
}

type error_kind =
  | Bad_request
  | Bad_action
  | Flow_mod_failed
  | Port_mod_failed

type payload =
  | Hello
  | Echo_request of bytes
  | Echo_reply of bytes
  | Features_request
  | Features_reply of features
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Flow_removed of flow_removed
  | Port_status of port_status_reason * port_desc
  | Port_mod of port_mod
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply
  | Error of error_kind * string

type t = { xid : Types.xid; payload : payload }

val message : ?xid:Types.xid -> payload -> t
(** Wrap a payload with an xid (default 0). *)

val is_state_altering : payload -> bool
(** True for messages that change switch state (flow-mods, packet-outs and
    port-mods): the class NetLog must be able to invert or compensate. *)

val payload_kind : payload -> string
(** Constructor name, for logs and tickets. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_payload : Format.formatter -> payload -> unit
