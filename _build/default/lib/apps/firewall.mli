(** Security enforcement — the BigTap/security category of Table 2.

    A static ACL: destination transport ports on the block list get a
    high-priority drop rule pushed to every switch as it connects, and any
    blocked packet that still reaches the controller gets an exact-match
    drop rule. Drop rules are intentional (the invariant checker treats
    explicit drops as policy, not black holes). *)

include Controller.App_sig.APP

val blocked_ports : int list
(** The default block list: telnet (23) and SMB (445). *)

val with_block_list : int list -> (module Controller.App_sig.APP)

val drops_installed : state -> int
