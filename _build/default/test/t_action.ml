open Openflow

let pkt = Packet.tcp ~src_host:1 ~dst_host:2 ()

let test_rewrites_apply_in_order () =
  let final, outs =
    Action.apply
      [ Action.Set_tp_dst 443; Action.Output 3; Action.Set_tp_dst 8080 ]
      pkt
  in
  Alcotest.(check int) "final header state" 8080 final.Packet.tp_dst;
  Alcotest.(check (list int)) "one output" [ 3 ] outs

let test_staged_semantics () =
  (* The copy emitted before a rewrite must carry the pre-rewrite header. *)
  let staged =
    Action.apply_staged
      [ Action.Output 1; Action.Set_tp_dst 443; Action.Output 2 ]
      pkt
  in
  match staged with
  | [ (p1, 1); (p2, 2) ] ->
      Alcotest.(check int) "first copy unmodified" 80 p1.Packet.tp_dst;
      Alcotest.(check int) "second copy rewritten" 443 p2.Packet.tp_dst
  | _ -> Alcotest.fail "expected exactly two staged outputs"

let test_drop () =
  T_util.checkb "empty list is drop" true (Action.is_drop []);
  T_util.checkb "rewrite-only list is drop" true
    (Action.is_drop [ Action.Set_vlan 5 ]);
  T_util.checkb "output is not drop" false (Action.is_drop [ Action.Output 1 ])

let test_vlan_actions () =
  let tagged, _ = Action.apply [ Action.Set_vlan 99 ] pkt in
  Alcotest.(check (option int)) "tag set" (Some 99) tagged.Packet.dl_vlan;
  let stripped, _ = Action.apply [ Action.Strip_vlan ] tagged in
  Alcotest.(check (option int)) "tag stripped" None stripped.Packet.dl_vlan

let test_outputs_includes_enqueue () =
  Alcotest.(check (list int)) "enqueue counts as output" [ 7; 2 ]
    (Action.outputs [ Action.Enqueue (7, 1); Action.Output 2 ])

let encode_decode a =
  let w = Buf.writer () in
  Action.encode w a;
  Action.decode (Buf.reader (Buf.contents w))

let prop_action_roundtrip =
  QCheck2.Test.make ~name:"action codec roundtrip" ~count:500 T_util.Gen.action
    (fun a -> encode_decode a = a)

let prop_list_roundtrip =
  QCheck2.Test.make ~name:"action list codec roundtrip" ~count:300
    T_util.Gen.actions (fun l ->
      let w = Buf.writer () in
      Action.encode_list w l;
      Action.decode_list (Buf.reader (Buf.contents w)) = l)

let prop_apply_consistent =
  QCheck2.Test.make ~name:"apply and apply_staged agree on outputs" ~count:300
    QCheck2.Gen.(pair T_util.Gen.actions T_util.Gen.packet)
    (fun (actions, p) ->
      snd (Action.apply actions p)
      = List.map snd (Action.apply_staged actions p))

let suite =
  [
    Alcotest.test_case "rewrites apply in order" `Quick test_rewrites_apply_in_order;
    Alcotest.test_case "staged output semantics" `Quick test_staged_semantics;
    Alcotest.test_case "drop detection" `Quick test_drop;
    Alcotest.test_case "vlan set/strip" `Quick test_vlan_actions;
    Alcotest.test_case "enqueue is an output" `Quick test_outputs_includes_enqueue;
    QCheck_alcotest.to_alcotest prop_action_roundtrip;
    QCheck_alcotest.to_alcotest prop_list_roundtrip;
    QCheck_alcotest.to_alcotest prop_apply_consistent;
  ]
