type limits = {
  max_state_bytes : int option;
  max_commands_per_event : int option;
}

type breach =
  | State_too_large of { used : int; limit : int }
  | Too_many_commands of { emitted : int; limit : int }

let unlimited = { max_state_bytes = None; max_commands_per_event = None }

let check limits ~state_bytes ~commands_emitted =
  (* [state_bytes] is a thunk: measuring it means serializing the whole
     application state, so it is only forced when a limit is set. *)
  let state =
    match limits.max_state_bytes with
    | Some limit ->
        let used = state_bytes () in
        if used > limit then [ State_too_large { used; limit } ] else []
    | None -> []
  in
  let commands =
    match limits.max_commands_per_event with
    | Some limit when commands_emitted > limit ->
        [ Too_many_commands { emitted = commands_emitted; limit } ]
    | Some _ | None -> []
  in
  state @ commands

let describe = function
  | State_too_large { used; limit } ->
      Printf.sprintf "state %d bytes exceeds limit %d" used limit
  | Too_many_commands { emitted; limit } ->
      Printf.sprintf "%d commands in one event exceeds limit %d" emitted limit
