(** The LegoSDN runtime: the re-designed controller (paper Figure 1, right
    side).

    Same northbound/southbound behaviour as {!Controller.Monolithic} — same
    services, same dispatch order — but every application runs in an
    AppVisor {!Sandbox}, every (application, event) delivery runs inside a
    transaction, and Crash-Pad screens and recovers failures. The
    controller itself never goes down because of an application: there is
    no [Crashed] state here, by construction. *)

open Controller

type engine_kind = Netlog_engine | Delay_buffer_engine

(** How each sandbox's checkpoint store is configured. *)
type ckpt_mode =
  | Ckpt_full  (** Full snapshot blobs, fixed every-k cadence. *)
  | Ckpt_delta
      (** Content-chunked delta snapshots, same fixed every-k cadence —
          identical scheduling to [Ckpt_full], cheaper writes. *)
  | Ckpt_delta_adaptive
      (** Delta snapshots with the adaptive cadence: checkpoint when the
          estimated journal-replay cost exceeds the estimated write cost,
          with [checkpoint_every] as the floor and [max (8k) 64] as the
          journal ceiling. *)

(** Controller-cluster settings. The runtime itself only carries them (the
    {!Cluster} library consumes them); [replicas = 1] means
    single-controller operation. *)
type cluster_config = {
  replicas : int;  (** Cluster size, 2f+1 for tolerating f kills. *)
  election_lo : float;
      (** Election-timeout range, virtual seconds: each replica draws its
          randomized-but-seeded timeout uniformly from [lo, hi). *)
  election_hi : float;
}

val default_cluster_config : cluster_config
(** 1 replica, timeouts drawn from [0.15, 0.3). *)

(** How {!step} turns polled events into Crash-Pad deliveries.

    [Sequential] is the executable specification: one event at a time,
    each with its own barrier chase and (at k = 1) its own checkpoint.

    [Sharded] partitions events across [shards] FIFO queues by a
    (switch, flow-key) hash and dispatches them in batches of up to
    [max_batch]: the queues are drained by a minimum-arrival-sequence
    merge (so dispatch order is {e exactly} arrival order regardless of
    shard count), flow-mods to fault-free switches are acknowledged by
    one barrier per switch per batch ({!Reliable.begin_batch}),
    checkpoints amortize to one per sandbox per batch when the cadence
    permits, and the sandbox RPC boundary reuses codec buffers
    ({!Sandbox.set_scratch}). [Tick] events act as batch barriers. The
    two modes are observationally equivalent — same final flow tables,
    shadow intent, NetLog journal and semantic metrics on the same event
    stream — which [test/t_dispatch.ml] checks differentially. *)
type dispatch_mode =
  | Sequential
  | Sharded of { shards : int; max_batch : int }

val default_sharded : dispatch_mode
(** [Sharded {shards = 8; max_batch = 64}]. *)

(** Parameters of the trace-driven workload generator
    ([Workload.Trace_gen]). Carried here so scenario configs and
    reproducers can name them without the core depending on the
    generator; the runtime itself treats them as opaque. *)
type workload_config = {
  w_seed : int;  (** Generator RNG stream, independent of other seeds. *)
  w_rate : float;  (** Mean flow arrivals per virtual second at peak. *)
  w_alpha : float;
      (** Pareto shape of flow inter-arrivals; values ≤ 2 give the
          heavy-tailed bursts of real traffic. *)
  w_diurnal : float;  (** Load-curve modulation depth, 0 (flat) to 1. *)
  w_period : float;  (** Diurnal period in virtual seconds. *)
  w_churn : float;  (** Host leave(+rejoin) events per virtual second. *)
}

val default_workload_config : workload_config
(** seed 1, rate 20 flows/s, alpha 1.5, diurnal 0.5 over 60 s, no churn. *)

type config = {
  checkpoint_every : int;  (** k: checkpoint every k events (§5). *)
  checkpoint_mode : ckpt_mode;
  crashpad : Crashpad.config;
  engine : engine_kind;
  reliable : Reliable.config;
      (** Southbound reliable-delivery settings (NetLog engine only). *)
  cluster : cluster_config;
  dispatch : dispatch_mode;
  trace_cache_budget : int option;
      (** Byte budget for the incremental checker's trace cache
          ({!Invariants.Incremental.create}); [None] = unbounded. *)
  workload : workload_config option;
      (** Trace-driven workload parameters, when the scenario uses the
          generator instead of a fixed traffic list. *)
  nversion : Voter.config option;
      (** When set with [nv_replicas > 1], every application runs as an
          N-version {!Voter} panel of variant sandboxes instead of a solo
          sandbox: outputs are held in the transaction until the election
          and only the majority command set is committed. [None] (the
          default) is ordinary solo dispatch. *)
}

val default_config : config
(** k = 1, full checkpoints, Crash-Pad defaults, NetLog engine, reliable
    delivery on, single controller, sequential dispatch, unbounded trace
    cache, no generated workload. *)

type t

val create :
  ?config:config ->
  ?xid_base:int ->
  ?controller_id:int ->
  ?southbound_gate:(Openflow.Types.switch_id -> Openflow.Message.t -> bool) ->
  ?nv_variants:(string -> (App_sig.app * bool) list option) ->
  Netsim.Net.t ->
  App_sig.app list ->
  t
(** [nv_variants] customizes an N-version panel's composition (used only
    when {!config.nversion} is active): given an application name, return
    [Some specs] to run those variants — each paired with its
    {!Voter.create} re-syncability flag — instead of [nv_replicas]
    identical copies. The fuzzer uses it to seat a fault-injected variant
    on a panel.

    [xid_base] seeds the NetLog xid counter; a failover controller passes
    its predecessor's [Netlog.next_xid] so switch-side duplicate detection
    never mistakes its fresh commands for retransmissions.

    [controller_id] stamps every southbound send with this controller's
    identity so switches can enforce master/slave roles.

    [southbound_gate] interposes on the NetLog transport: a send for which
    the gate returns [false] is silently black-holed — the wire behaviour
    of a controller process that died mid-transaction. The cluster layer
    uses it to kill a leader at a precise point without raising through the
    transaction engine. *)

val step : t -> unit
(** Drain southbound notifications and dispatch the resulting events,
    through whichever engine {!config.dispatch} selects. Both engines
    share the poll-round structure and the broadcast-storm guard. *)

val poll_events : t -> Event.t list
(** One poll round of {!step} without the dispatch: drain currently queued
    notifications, feed the reliable layer, and return the translated
    events. The caller is expected to {!dispatch_event} them (possibly
    after replicating them); polling again before doing so is safe but
    yields events that logically follow the undispatched ones. *)

val dispatch_event : t -> Event.t -> unit
(** Deliver one event through the {e sequential} pipeline regardless of
    {!config.dispatch} — this is the per-event specification both engines
    share, and the entry point the cluster layer uses to dispatch
    committed log entries one at a time (commit-gating interposes between
    observation and dispatch, so batching happens upstream of it). *)

val tick : t -> unit
(** Advance the reliable layer and deliver a [Tick] event. Under sharded
    dispatch the [Tick] flows through the engine as a singleton batch —
    a [Tick] is a batch barrier, never grouped with other events. *)

val upgrade_controller : t -> unit
(** Simulate a controller upgrade (§3.4): platform state (services) is torn
    down and rebuilt, switches re-handshake — but the isolated applications
    keep their processes and state, unlike a monolithic restart. *)

val net : t -> Netsim.Net.t
val services : t -> Services.t

val set_context_services : t -> Services.t option -> unit
(** Override the service state applications see through their context
    ([Some s]), or restore the runtime's own ingesting services ([None]).
    The cluster layer installs a replica advanced by
    {!Controller.Services.observe} over the committed log so event
    dispatch is deterministic across leaders: the context an application
    consults depends only on the log prefix before the event, never on
    what the dispatching controller happened to have ingested since. *)

val sandboxes : t -> Sandbox.t list
(** Every sandbox — an N-version panel contributes all its variants. *)

val sandbox : t -> string -> Sandbox.t option
(** First sandbox with this name: a panel's primary variant. *)

val voters : t -> Voter.t list
(** The active N-version panels; [[]] under solo dispatch. *)

val metrics : t -> Metrics.t
val tickets : t -> Ticket.t list
val ticket_store : t -> Ticket.store
val netlog : t -> Netlog.t option
(** The NetLog instance, when the NetLog engine is in use. *)

val reliable : t -> Reliable.t option
(** The reliable-delivery layer, when the NetLog engine is in use. *)

val incremental : t -> Invariants.Incremental.t
(** The incremental invariant checker that screens every transaction's
    flow-mods. Its cache events are mirrored into {!metrics} and published
    on {!hub} as [Inv_cache] events. *)

(** {1 Observability} *)

val hub : t -> Obs.Hub.t
(** The runtime's event hub — the one subscription surface. Every
    dispatched event ([Dispatched]), invariant-cache action ([Inv_cache])
    and southbound delivery step ([Delivery]) is published here. *)

val tracer : t -> Obs.Tracer.t
(** The active tracer; {!Obs.Tracer.noop} until {!set_tracer}. *)

val set_tracer : t -> Obs.Tracer.t -> unit
(** Install a tracer: every event dispatch opens an [Event_root] span with
    nested per-stage spans (app delivery, detection, transaction
    commit/rollback, recovery), and delivery/cache activity is marked as
    instants. The tracer's per-kind latency histograms are registered in
    {!metrics} under ["span.<kind>"]. *)

val events_processed : t -> int

val events_shed : t -> int
(** Notifications dropped by the broadcast-storm guard (see
    {!Controller.Monolithic.events_shed}). *)

val config : t -> config
