(** Proxy-ARP responder: answers ARP requests from the controller.

    Learns IP→MAC bindings from the source fields of every ARP packet it
    sees; known targets are answered directly with a synthesized ARP reply
    out of the ingress port (no flooding at all), unknown targets are
    flooded to be resolved the hard way. Keeps broadcast ARP traffic off
    the fabric — a classic controller-app companion to a learning switch. *)

include Controller.App_sig.APP

val bindings : state -> int
(** IP→MAC bindings currently known. *)

val replies_sent : state -> int
val floods : state -> int
