type t = {
  dl_src : Types.mac;
  dl_dst : Types.mac;
  dl_vlan : int option;
  dl_type : int;
  nw_src : Types.ip;
  nw_dst : Types.ip;
  nw_proto : int;
  nw_tos : int;
  tp_src : int;
  tp_dst : int;
  payload_len : int;
}

let ethertype_ip = 0x0800
let ethertype_arp = 0x0806
let proto_tcp = 6
let proto_udp = 17
let proto_icmp = 1

let make ?(dl_vlan = None) ?(dl_type = ethertype_ip) ?(nw_proto = proto_tcp)
    ?(nw_tos = 0) ?(tp_src = 1024) ?(tp_dst = 80) ?(payload_len = 64) ~dl_src
    ~dl_dst ~nw_src ~nw_dst () =
  {
    dl_src;
    dl_dst;
    dl_vlan;
    dl_type;
    nw_src;
    nw_dst;
    nw_proto;
    nw_tos;
    tp_src;
    tp_dst;
    payload_len;
  }

let tcp ~src_host ~dst_host ?(sport = 1024) ?(dport = 80) () =
  make ~dl_src:(Types.mac_of_host src_host) ~dl_dst:(Types.mac_of_host dst_host)
    ~nw_src:(Types.ip_of_host src_host) ~nw_dst:(Types.ip_of_host dst_host)
    ~tp_src:sport ~tp_dst:dport ()

let arp_request ~src_host ~dst_host =
  make ~dl_type:ethertype_arp ~nw_proto:1 (* ARP request opcode *)
    ~dl_src:(Types.mac_of_host src_host) ~dl_dst:Types.mac_broadcast
    ~nw_src:(Types.ip_of_host src_host) ~nw_dst:(Types.ip_of_host dst_host)
    ~tp_src:0 ~tp_dst:0 ~payload_len:28 ()

(* 14 Ethernet + optional 4 VLAN + 20 IP + 4 transport ports. *)
let header_size p = 14 + (match p.dl_vlan with Some _ -> 4 | None -> 0) + 24

let size p = header_size p + p.payload_len

let equal a b = a = b

let pp fmt p =
  Format.fprintf fmt "%a>%a %s %a:%d>%a:%d/%d len=%d" Types.pp_mac p.dl_src
    Types.pp_mac p.dl_dst
    (if p.dl_type = ethertype_arp then "arp" else "ip")
    Types.pp_ip p.nw_src p.tp_src Types.pp_ip p.nw_dst p.tp_dst p.nw_proto
    (size p)

let to_frame p =
  let w = Buf.writer ~capacity:48 () in
  Buf.u48 w p.dl_dst;
  Buf.u48 w p.dl_src;
  (match p.dl_vlan with
  | Some vid ->
      Buf.u16 w 0x8100;
      Buf.u16 w (vid land 0x0fff)
  | None -> ());
  Buf.u16 w p.dl_type;
  Buf.u8 w p.nw_tos;
  Buf.u8 w p.nw_proto;
  Buf.u32 w p.nw_src;
  Buf.u32 w p.nw_dst;
  Buf.u16 w p.tp_src;
  Buf.u16 w p.tp_dst;
  Buf.u32 w p.payload_len;
  Buf.contents w

let of_frame b =
  try
    let r = Buf.reader b in
    let dl_dst = Buf.read_u48 r in
    let dl_src = Buf.read_u48 r in
    let tag = Buf.read_u16 r in
    let dl_vlan, dl_type =
      if tag = 0x8100 then
        let vid = Buf.read_u16 r in
        (Some vid, Buf.read_u16 r)
      else (None, tag)
    in
    let nw_tos = Buf.read_u8 r in
    let nw_proto = Buf.read_u8 r in
    let nw_src = Buf.read_u32 r in
    let nw_dst = Buf.read_u32 r in
    let tp_src = Buf.read_u16 r in
    let tp_dst = Buf.read_u16 r in
    let payload_len = Buf.read_u32 r in
    {
      dl_src;
      dl_dst;
      dl_vlan;
      dl_type;
      nw_src;
      nw_dst;
      nw_proto;
      nw_tos;
      tp_src;
      tp_dst;
      payload_len;
    }
  with Buf.Underflow -> failwith "Packet.of_frame: truncated frame"
