(** The Hub: every packet handed to the controller is flooded out of every
    other port. One of the three FloodLight applications the paper's
    prototype ports into the AppVisor stub (§4.1). Installs no flows, so
    every packet visits the controller. *)

include Controller.App_sig.APP

val packets_seen : state -> int
