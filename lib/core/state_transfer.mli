(** Incremental replica state transfer, keyed on commit index.

    The shipping side of controller replication, generalized from the
    standby's snapshot shipping so {!Standby} (one warm spare) and the
    cluster layer (2f+1 replicas) share one mechanism: application
    snapshots are content-chunked into a shared {!Checkpoint.Chunk_store},
    so a steady-state ship transfers only the chunks that changed since
    the previous one, and a {!snapshot} records where in the replicated
    event log the shipped state is valid ([commit_index]) together with
    the wire-continuity facts a successor needs ([next_xid], shadow
    tables). *)

module Chunk_store = Checkpoint.Chunk_store

type snapshot = {
  commit_index : int;
      (** Index of the last log entry whose effects the snapshot contains;
          a successor restoring it re-dispatches the log from here. *)
  next_xid : int;
      (** The shipper's NetLog xid counter at ship time: the successor
          seeds its own counter with it so re-dispatched entries
          regenerate byte-identical xids (switch-side dedup then absorbs
          duplicates) and fresh commands never collide. *)
  apps : (string * Chunk_store.manifest) list;
  shadows : (Openflow.Types.switch_id * Netsim.Flow_entry.t list) list;
  pending : (Openflow.Types.switch_id * Openflow.Message.t) list;
      (** The shipper's un-acked send queue (FIFO): commands whose wire
          delivery was still outstanding at ship time. The successor
          re-injects them un-sent under their original xids — without
          this, a command held back by head-of-line blocking when its
          producing entry fell inside the snapshot would be lost. *)
}

type t

val create : unit -> t

val ship : t -> commit_index:int -> Runtime.t -> snapshot
(** Snapshot every sandbox of [rt] into the store (chunk-deduplicated
    against the previous ship) and capture the wire-continuity state.
    Must be called at a transaction boundary — between event dispatches —
    so [next_xid] names a clean resume point. *)

val restore : t -> snapshot -> Runtime.t -> unit
(** Overwrite [rt]'s application states and reliable-layer shadow tables
    with the snapshot's. [rt] should be freshly created with
    [~xid_base:snapshot.next_xid]. *)

val ships : t -> int

val shipped_bytes : t -> int
(** Cumulative bytes actually shipped: new chunk bytes plus manifest
    overhead — the replication-overhead metric. *)

val store : t -> Chunk_store.t
(** The shared chunk store (hit/miss/dedup accounting). *)
