lib/openflow/action.ml: Buf Format List Packet Types
