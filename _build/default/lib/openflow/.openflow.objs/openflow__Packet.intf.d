lib/openflow/packet.mli: Format Types
