lib/workload/stats.ml: Array Format List
