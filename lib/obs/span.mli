(** Spans: the unit of the tracing subsystem.

    One span covers one stage of the runtime event lifecycle. Spans nest
    (every span records its parent), carry two timebases — the virtual
    {!Netsim.Clock} instant of the simulation, and a strictly-monotonic
    "wall" time that is either real time (when the host supplies a clock)
    or a deterministic logical tick counter — and a small list of string
    attributes (app name, failure kind, compromise policy, ...). *)

(** The closed set of span kinds: one per instrumented stage. *)
type kind =
  | Event_root  (** One runtime event dispatched to the sandboxes. *)
  | App_handle  (** One (app, event) delivery inside the AppVisor. *)
  | Detection  (** Byzantine screening of proposed commands. *)
  | Txn_commit  (** Applying and committing a transaction's commands. *)
  | Txn_rollback  (** Undoing an aborted transaction (NetLog §3.2). *)
  | Recovery  (** Crash-Pad repair: restore+replay, or policy application. *)
  | Delivery  (** One reliable southbound send, barrier chase included. *)
  | Retransmit  (** A retransmission attempt (instant). *)
  | Resync  (** Replaying intent into a reconnected switch. *)
  | Inv_cache_hit  (** Incremental checker reused a cached trace (instant). *)
  | Inv_cache_miss  (** Incremental checker traced from scratch (instant). *)
  | Ckpt_take  (** Taking an application checkpoint (full or delta). *)
  | Ckpt_restore  (** Materializing a snapshot and replaying the journal. *)
  | Election  (** One leader-election round in the controller cluster. *)
  | Replicate  (** Majority-commit of one replicated log entry. *)
  | State_transfer  (** Incremental replica state transfer (chunk shipping). *)
  | Failover  (** A standby taking over as leader after a kill. *)
  | Batch_root  (** One batch through the sharded dispatch engine. *)
  | Shard_dispatch
      (** A contiguous run of same-shard events inside a batch. *)
  | Vote  (** One N-version panel election over a delivered event. *)
  | Outvoted
      (** A variant's output lost an election and was discarded (instant). *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable names, used by the Chrome-trace codec and metrics registry. *)

val kind_of_name : string -> kind option

type t = {
  id : int;  (** Unique within one tracer, dense from 1. *)
  parent : int;  (** Enclosing span id, or [-1] for a root. *)
  kind : kind;
  vt : float;  (** Virtual time at start (seconds). *)
  vt_end : float;  (** Virtual time at finish. *)
  t0 : float;  (** Wall/logical time at start (seconds). *)
  t1 : float;  (** Wall/logical time at finish. *)
  attrs : (string * string) list;  (** In recording order. *)
}

val duration : t -> float
(** [t1 -. t0]: the wall/logical duration. *)

val is_instant : t -> bool
(** Zero wall duration — recorded with {!Tracer.instant}. *)

val pp : Format.formatter -> t -> unit
