lib/core/runtime.mli: App_sig Controller Crashpad Event Metrics Netlog Netsim Sandbox Services Ticket
