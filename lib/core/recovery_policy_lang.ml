module Event = Controller.Event

type error = { line : int; message : string }

let kind_of_name name =
  List.find_opt (fun k -> Event.kind_name k = name) Event.all_kinds

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_compromise lineno word =
  match Recovery_policy.compromise_of_name word with
  | Some c -> Ok c
  | None ->
      Error { line = lineno; message = Printf.sprintf "unknown compromise %S" word }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno rules default = function
    | [] -> Ok (Recovery_policy.make ?default:(Option.map Fun.id default) (List.rev rules))
    | line :: rest -> (
        match tokens line with
        | [] -> go (lineno + 1) rules default rest
        | [ "default"; "=>"; c ] -> (
            match parse_compromise lineno c with
            | Error e -> Error e
            | Ok c ->
                if default <> None then
                  Error { line = lineno; message = "duplicate default directive" }
                else go (lineno + 1) rules (Some c) rest)
        | [ "app"; a; "event"; k; "=>"; c ] -> (
            match parse_compromise lineno c with
            | Error e -> Error e
            | Ok action -> (
                let app = if a = "*" then None else Some a in
                match if k = "*" then Ok None else
                  (match kind_of_name k with
                  | Some kind -> Ok (Some kind)
                  | None ->
                      Error
                        { line = lineno; message = Printf.sprintf "unknown event kind %S" k })
                with
                | Error e -> Error e
                | Ok kind ->
                    go (lineno + 1)
                      ({ Recovery_policy.app; kind; action } :: rules)
                      default rest))
        | _ ->
            Error
              {
                line = lineno;
                message =
                  Printf.sprintf "cannot parse directive %S" (String.trim line);
              })
  in
  go 1 [] None lines

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

let parse_exn text =
  match parse text with
  | Ok p -> p
  | Error e -> failwith (Format.asprintf "policy: %a" pp_error e)

let print policy =
  let b = Buffer.create 128 in
  List.iter
    (fun (r : Recovery_policy.rule) ->
      Buffer.add_string b
        (Printf.sprintf "app %s event %s => %s\n"
           (Option.value r.app ~default:"*")
           (match r.kind with None -> "*" | Some k -> Event.kind_name k)
           (Recovery_policy.compromise_name r.action)))
    (Recovery_policy.rules policy);
  Buffer.add_string b
    (Printf.sprintf "default => %s\n"
       (Recovery_policy.compromise_name (Recovery_policy.default_action policy)));
  Buffer.contents b
