lib/controller/event.ml: Format List Message Ofp_match Openflow Packet Types
