let printable c = if c >= ' ' && c <= '~' then c else '.'

let of_bytes b =
  let len = Bytes.length b in
  let buf = Buffer.create (len * 4) in
  let rec line offset =
    if offset < len then begin
      Buffer.add_string buf (Printf.sprintf "%08x  " offset);
      let row = min 16 (len - offset) in
      for i = 0 to 15 do
        if i = 8 then Buffer.add_char buf ' ';
        if i < row then
          Buffer.add_string buf
            (Printf.sprintf "%02x " (Char.code (Bytes.get b (offset + i))))
        else Buffer.add_string buf "   "
      done;
      Buffer.add_string buf " |";
      for i = 0 to row - 1 do
        Buffer.add_char buf (printable (Bytes.get b (offset + i)))
      done;
      Buffer.add_string buf "|\n";
      line (offset + 16)
    end
  in
  line 0;
  Buffer.contents buf

let of_message msg = of_bytes (Codec.encode msg)

let pp fmt b = Format.pp_print_string fmt (of_bytes b)
