(** A spanning-tree application: prunes flooding on redundant links.

    Computes a BFS tree over the live inter-switch links (rooted at the
    lowest switch id, the "root bridge") and sets OFPPC_NO_FLOOD on every
    inter-switch port that is not on the tree. FLOOD outputs then reach
    every host exactly once even on cyclic topologies — the broadcast
    storms that flooding apps (hub, flooder, learning switch) otherwise
    cause on rings become impossible. Recomputes on every topology change
    and emits only the port-mod deltas. *)

include Controller.App_sig.APP

val blocked_ports : state -> (Openflow.Types.switch_id * Openflow.Types.port_no) list
(** Ports currently pruned (no_flood set), sorted. *)
