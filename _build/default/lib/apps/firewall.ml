open Openflow
open Controller

type state = int  (* drop rules installed *)

let name = "firewall"
let subscriptions = [ Event.K_switch_up; Event.K_packet_in ]
let init () = 0

let blocked_ports = [ 23; 445 ]

let drops_installed st = st

let acl_priority = Message.default_priority + 100

let make ~blocks =
  fun (_ctx : App_sig.context) (st : state) event ->
    match event with
    | Event.Switch_up (sid, _features) ->
        let rules =
          List.map
            (fun tp_dst ->
              Command.install ~priority:acl_priority sid
                (Ofp_match.make ~dl_type:Packet.ethertype_ip
                   ~nw_proto:Packet.proto_tcp ~tp_dst ())
                [])
            blocks
        in
        (st + List.length rules, rules)
    | Event.Packet_in (sid, pi) ->
        let pkt = pi.Message.pi_packet in
        if
          pkt.Packet.dl_type = Packet.ethertype_ip
          && pkt.Packet.nw_proto = Packet.proto_tcp
          && List.mem pkt.Packet.tp_dst blocks
        then
          (* Blocked traffic leaked to the controller (e.g. rules lost in a
             switch reboot): drop it and re-pin the exact flow. *)
          ( st + 1,
            [
              Command.install ~priority:acl_priority sid
                (Ofp_match.exact ~in_port:pi.Message.pi_in_port pkt)
                [];
            ] )
        else (st, [])
    | _ -> (st, [])

let handle = make ~blocks:blocked_ports

let with_block_list blocks : (module App_sig.APP) =
  (module struct
    type nonrec state = state

    let name = "firewall"
    let subscriptions = subscriptions
    let init = init
    let handle ctx st ev = make ~blocks ctx st ev
  end)
