lib/core/counter_cache.ml: Hashtbl List Message Ofp_match Openflow Option Types
