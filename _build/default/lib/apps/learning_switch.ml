open Openflow
open Controller

module Mac_table = Map.Make (struct
  type t = Types.switch_id * Types.mac

  let compare = compare
end)

type state = Types.port_no Mac_table.t

let name = "learning_switch"

let subscriptions = [ Event.K_packet_in; Event.K_switch_down ]

let init () = Mac_table.empty

let macs_learned st = Mac_table.cardinal st

let lookup st sid mac = Mac_table.find_opt (sid, mac) st

let make ~idle_timeout =
  let handle _ctx st event =
    match event with
    | Event.Packet_in (sid, pi) ->
        let pkt = pi.Message.pi_packet in
        let in_port = pi.Message.pi_in_port in
        (* Learn where the source lives (unless it is a broadcast echo). *)
        let st =
          if Types.mac_is_broadcast pkt.Packet.dl_src then st
          else Mac_table.add (sid, pkt.Packet.dl_src) in_port st
        in
        let commands =
          match
            if Types.mac_is_broadcast pkt.Packet.dl_dst then None
            else Mac_table.find_opt (sid, pkt.Packet.dl_dst) st
          with
          | Some out_port when out_port <> in_port ->
              (* Destination known: pin the flow and release the packet. *)
              let pattern = Ofp_match.exact ~in_port pkt in
              [
                Command.install ~idle_timeout ~notify_when_removed:true sid
                  pattern
                  [ Action.Output out_port ];
                Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
                  ~in_port sid
                  [ Action.Output out_port ]
                  (match pi.Message.pi_buffer_id with
                  | Some _ -> None
                  | None -> Some pkt);
              ]
          | Some _ | None ->
              [
                Command.packet_out ?buffer_id:pi.Message.pi_buffer_id ~in_port
                  sid
                  [ Action.Output Types.port_flood ]
                  (match pi.Message.pi_buffer_id with
                  | Some _ -> None
                  | None -> Some pkt);
              ]
        in
        (st, commands)
    | Event.Switch_down sid ->
        (* Forget everything learned at the dead switch. *)
        let st =
          Mac_table.filter (fun (owner, _) _ -> owner <> sid) st
        in
        (st, [])
    | _ -> (st, [])
  in
  handle

let handle = (make ~idle_timeout:60 : App_sig.context -> state -> Event.t -> state * Command.t list)

let with_idle_timeout idle_timeout : (module App_sig.APP) =
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "learning_switch(idle=%d)" idle_timeout
    let subscriptions = subscriptions
    let init = init
    let handle ctx st ev = make ~idle_timeout ctx st ev
  end)
