(** The SDN application interface and its runtime instances.

    An application is a module with pure, explicit state: [handle] consumes
    one event and returns the new state plus the commands to issue. Keeping
    state explicit and closure-free is what makes the AppVisor checkpoints
    ({!snapshot}/{!restore}) possible — it is the CRIU-checkpoint analogue
    of this reproduction.

    Since PR 9 an application may also declare forwarding *intent*: an
    {!INTENT_APP} exports [policy], mapping its current state to a
    {!Policy.t} the runtime compiles to flow tables and keeps reconciled.
    Intent is what lets Crash-Pad *derive* Equivalence-Compromise
    candidates instead of relying only on hand-coded event transforms.
    Legacy {!APP} modules lift with {!app} (or the {!Of_legacy} functor)
    and keep compiling unchanged. *)

open Openflow

(** Read-only controller services available to an application while it
    handles an event (the northbound API the AppVisor stub proxies).

    Use the accessor functions below rather than reading the closure
    fields directly — the record layout is an implementation detail kept
    public only for construction (e.g. test harnesses building contexts
    by hand) and will eventually become private. *)
type context = {
  now : unit -> float;
  switches : unit -> Types.switch_id list;  (** Connected switches. *)
  switch_ports : Types.switch_id -> Types.port_no list;
  links : unit -> Event.link list;  (** Live inter-switch links, both directions. *)
  host_location : Types.mac -> (Types.switch_id * Types.port_no) option;
      (** Device-manager lookup: last learned attachment of a MAC. *)
}

(** {1 Context accessors} *)

val now : context -> float
val switches : context -> Types.switch_id list
val switch_ports : context -> Types.switch_id -> Types.port_no list
val links : context -> Event.link list

val host_location :
  context -> Types.mac -> (Types.switch_id * Types.port_no) option

val flood_ports :
  context -> sw:Types.switch_id -> in_port:Types.port_no -> Types.port_no list
(** The ports a FLOOD from [in_port] egresses on — [switch_ports] minus the
    ingress. Also the [ports] function to hand {!Policy.denotation} and
    {!Policy.compile} consumers. *)

module type APP = sig
  type state

  val name : string
  val subscriptions : Event.kind list

  val init : unit -> state

  val handle : context -> state -> Event.t -> state * Command.t list
  (** Process one event. May raise — that is a fail-stop application crash,
      and containing it is the whole point of LegoSDN. *)
end

(** An application that additionally declares forwarding intent. *)
module type INTENT_APP = sig
  include APP

  val policy : context -> state -> Policy.t option
  (** The forwarding relation this state intends, or [None] when the app
      has nothing declarative to say (imperative commands only). Must be
      pure: the runtime calls it after every handled event to reconcile
      the compiled tables, and Crash-Pad calls it during recovery to
      derive verified-equivalent compromises. May raise; a raise during
      recovery only disables derivation, it is not a new crash. *)
end

(** Lift a legacy application: same behavior, no declared intent. *)
module Of_legacy (A : APP) : INTENT_APP with type state = A.state

type app = (module INTENT_APP)
(** The packaged form every runtime entry point (sandboxes, runtimes,
    monolithic controller, cluster replicas, the fuzzer suite) accepts. *)

val app : (module APP) -> app
(** Package a legacy application ({!Of_legacy} under the hood). *)

val intent : (module INTENT_APP) -> app
(** Package an intent-declaring application. *)

val app_name : app -> string

val to_legacy : app -> (module APP)
(** Forget the intent hook — for legacy consumers (STS minimization,
    quarantine oracles, n-version functors) that only need [APP]. *)

exception Crash_with_partial of Command.t list
(** A fail-stop crash that happened after some commands were already issued
    to the controller: the carried prefix reached the network before the
    crash. This models FloodLight applications that call controller APIs
    mid-handler, the case NetLog's transactions exist for. *)

exception App_hang
(** The handler would never return. Runtimes translate this into heart-beat
    loss (AppVisor) or a wedged controller (monolithic). *)

(** A running application: a packaged module paired with its current
    state. *)
type instance

val instantiate : app -> instance

val instantiate_legacy : (module APP) -> instance
(** [instantiate (app m)]. *)

val module_of : instance -> (module APP)
(** The application module behind an instance (for re-instantiation —
    e.g. replaying a trace against a fresh copy during STS analysis). *)

val app_of : instance -> app
(** Like {!module_of} but keeps the intent hook. *)

val name : instance -> string
val subscriptions : instance -> Event.kind list
val subscribes_to : instance -> Event.kind -> bool

val handle : instance -> context -> Event.t -> instance * Command.t list
(** Functional step: the returned instance carries the new state; the input
    instance is unchanged (so a runtime can keep the old one as a
    snapshot). Exceptions from the app propagate. *)

val policy_of : instance -> context -> Policy.t option
(** The instance's declared intent for its current state ([None] for
    legacy apps). Exceptions from the app propagate. *)

val reboot : instance -> instance
(** A fresh instance of the same module with [init] state — what a
    monolithic controller restart does to an app (all state lost). *)

val snapshot : instance -> bytes
(** Serialize the current state ([Marshal]; state must be closure-free). *)

val restore : instance -> bytes -> instance
(** The instance with state replaced by a previously taken snapshot. The
    snapshot must come from the same application module. *)

val state_size : instance -> int
(** Byte size of a snapshot, the checkpoint-cost metric. *)
