(** Network invariants and their checker — the policy-checker role VeriFlow
    plays in the paper ([20]): Crash-Pad consults it to detect byzantine
    application failures before faulty rules are committed, and operators
    use it to define "No-Compromise" invariants. *)

open Openflow

type violation =
  | Forwarding_loop of {
      src : Netsim.Topology.host;
      dst : Netsim.Topology.host;
      path : (Types.switch_id * Types.port_no) list;
    }
  | Black_hole of {
      src : Netsim.Topology.host;
      dst : Netsim.Topology.host;
      at : Types.switch_id list;
    }
  | Unreachable of { src : Netsim.Topology.host; dst : Netsim.Topology.host }
  | Drop_all_rule of { sw : Types.switch_id; priority : int }
  | Waypoint_bypassed of {
      src : Netsim.Topology.host;
      dst : Netsim.Topology.host;
      waypoint : Types.switch_id;
    }
  | Isolation_breached of {
      src : Netsim.Topology.host;
      dst : Netsim.Topology.host;
    }

type invariant =
  | Loop_freedom
      (** No canonical host-pair packet may revisit forwarding state. *)
  | Black_hole_freedom
      (** No matched packet may be forwarded into a dead end (an explicit
          drop rule is fine; silently losing traffic is not). *)
  | Pairwise_reachability of (Netsim.Topology.host * Netsim.Topology.host) list
      (** These (src, dst) pairs must be deliverable using installed rules
          only. *)
  | No_drop_all
      (** No match-everything rule with empty actions at or above default
          priority. *)
  | Waypoint of {
      pairs : (Netsim.Topology.host * Netsim.Topology.host) list;
      via : Types.switch_id;
    }
      (** Traffic between each listed (src, dst) pair, when it is delivered
          at all using installed rules, must traverse switch [via] — the
          classic middlebox/firewall waypointing property. *)
  | Isolation of {
      group_a : Netsim.Topology.host list;
      group_b : Netsim.Topology.host list;
    }
      (** No packet may be deliverable between the two host groups (in
          either direction): a "No-Compromise" security invariant in the
          paper's sense. *)

val default : invariant list
(** [Loop_freedom; Black_hole_freedom; No_drop_all] — the safety properties
    the paper names (black-holes and network-loops). *)

val canonical_packet :
  Netsim.Topology.host -> Netsim.Topology.host -> Packet.t
(** The representative packet used to probe a (src, dst) pair — a
    VeriFlow-style equivalence-class approximation: one canonical TCP
    packet per ordered pair. Any cache of traces must key on the same
    packet the checker probes with. *)

val check : ?invariants:invariant list -> Snapshot.t -> violation list
(** Violations in the snapshot, probing every ordered host pair with
    {!canonical_packet}. Traces are memoized within one call, so several
    invariants probing the same pair cost one trace. *)

val check_with :
  ?invariants:invariant list ->
  trace:(Netsim.Topology.host -> Netsim.Topology.host -> Snapshot.probe) ->
  Snapshot.t ->
  violation list
(** Like {!check} but probing through [trace] instead of tracing the
    snapshot directly. Violations and their order are identical to
    {!check} whenever [trace src dst] agrees with
    [Snapshot.trace snap src (canonical_packet src dst)] — this is how the
    incremental engine substitutes cached probes without changing
    results. *)

val diff_new : before:violation list -> violation list -> violation list
(** The violations of the second list that are new relative to [before],
    keyed by violation kind and endpoints (not full structural equality,
    so pre-existing damage that merely shifts location is not counted as
    new). Order of the second list is preserved. *)

val check_flow_mods :
  ?invariants:invariant list ->
  Snapshot.t ->
  (Types.switch_id * Message.flow_mod) list ->
  violation list
(** Violations that the hypothetical flow-mods would introduce: violations
    present after applying them minus those already present before — so
    pre-existing damage is not pinned on the app under test. *)

val violation_kind : violation -> string
val pp_violation : Format.formatter -> violation -> unit
