module App_sig = Controller.App_sig
module Event = Controller.Event

module Chunk_store = struct
  (* Keys are (content digest, probe). The probe index separates distinct
     contents that share a digest: lookups walk probes until a byte-equal
     chunk is found or a slot is free, so a collision can cost a few extra
     probes but never corrupts a snapshot. *)
  type key = int64 * int

  type chunk = { data : bytes; mutable refs : int }

  type t = {
    size : int;
    table : (key, chunk) Hashtbl.t;
    mutable n_hits : int;
    mutable n_misses : int;
    mutable n_deduped : int;
    mutable n_written : int;
    mutable n_stored : int;
    mutable n_evicted : int;
  }

  type manifest = { total : int; keys : key array }

  type write = {
    hits : int;
    misses : int;
    deduped_bytes : int;
    written_bytes : int;
  }

  let create ?(chunk_size = 64) () =
    if chunk_size < 1 then
      invalid_arg "Chunk_store.create: chunk_size must be >= 1";
    {
      size = chunk_size;
      table = Hashtbl.create 256;
      n_hits = 0;
      n_misses = 0;
      n_deduped = 0;
      n_written = 0;
      n_stored = 0;
      n_evicted = 0;
    }

  let chunk_size t = t.size

  (* FNV-1a, 64-bit. *)
  let digest b =
    let h = ref 0xcbf29ce484222325L in
    for i = 0 to Bytes.length b - 1 do
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
          0x100000001b3L
    done;
    !h

  (* Serialized-manifest cost model: a small header (length + chunk count)
     plus one chunk reference (digest + probe + length) per chunk. *)
  let manifest_overhead nchunks = 16 + (10 * nchunks)

  let intern t data =
    let d = digest data in
    let rec probe p =
      match Hashtbl.find_opt t.table (d, p) with
      | Some c when Bytes.equal c.data data ->
          c.refs <- c.refs + 1;
          ((d, p), true)
      | Some _ -> probe (p + 1)
      | None ->
          Hashtbl.replace t.table (d, p) { data; refs = 1 };
          t.n_stored <- t.n_stored + Bytes.length data;
          ((d, p), false)
    in
    probe 0

  let store t blob =
    let len = Bytes.length blob in
    let n = (len + t.size - 1) / t.size in
    let keys = Array.make n (0L, 0) in
    let hits = ref 0 and misses = ref 0 in
    let deduped = ref 0 and written = ref 0 in
    for i = 0 to n - 1 do
      let off = i * t.size in
      let clen = min t.size (len - off) in
      let key, hit = intern t (Bytes.sub blob off clen) in
      keys.(i) <- key;
      if hit then begin
        incr hits;
        deduped := !deduped + clen
      end
      else begin
        incr misses;
        written := !written + clen
      end
    done;
    let written_bytes = !written + manifest_overhead n in
    t.n_hits <- t.n_hits + !hits;
    t.n_misses <- t.n_misses + !misses;
    t.n_deduped <- t.n_deduped + !deduped;
    t.n_written <- t.n_written + written_bytes;
    ( { total = len; keys },
      {
        hits = !hits;
        misses = !misses;
        deduped_bytes = !deduped;
        written_bytes;
      } )

  let release t m =
    Array.iter
      (fun key ->
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some c ->
            c.refs <- c.refs - 1;
            if c.refs <= 0 then begin
              Hashtbl.remove t.table key;
              t.n_stored <- t.n_stored - Bytes.length c.data;
              t.n_evicted <- t.n_evicted + 1
            end)
      m.keys

  let materialize t m =
    let out = Bytes.create m.total in
    Array.iteri
      (fun i key ->
        match Hashtbl.find_opt t.table key with
        | None -> invalid_arg "Chunk_store.materialize: released manifest"
        | Some c ->
            Bytes.blit c.data 0 out (i * t.size) (Bytes.length c.data))
      m.keys;
    out

  let manifest_bytes m = m.total
  let hits t = t.n_hits
  let misses t = t.n_misses
  let bytes_deduped t = t.n_deduped
  let bytes_written t = t.n_written
  let chunk_count t = Hashtbl.length t.table
  let stored_bytes t = t.n_stored
  let evicted_chunks t = t.n_evicted
end

type cadence =
  | Every of int
  | Adaptive of {
      replay_cost_per_event : int;
      min_events : int;
      max_events : int;
    }

type notification =
  | Took of {
      delta : bool;
      logical : int;
      written : int;
      chunk_hits : int;
      chunk_misses : int;
      deduped : int;
    }
  | Materialized of { bytes : int; journal : int }

type stored = Blob of bytes | Chunked of Chunk_store.manifest

type t = {
  when_due : cadence;
  store : Chunk_store.t option;  (* None = full-blob storage *)
  observer : (notification -> unit) option;
  mutable latest : stored option;
  mutable journal : Event.t list;  (* newest first *)
  mutable journal_len : int;
  mutable taken : int;
  mutable total_bytes : int;
  mutable last_bytes : int;
  mutable last_write : int;
  mutable est_write : float;  (* EWMA of per-take written bytes *)
}

let check_cadence = function
  | Every k -> if k < 1 then invalid_arg "Checkpoint.create: every must be >= 1"
  | Adaptive { replay_cost_per_event; min_events; max_events } ->
      if replay_cost_per_event < 1 || min_events < 1 || max_events < 1 then
        invalid_arg "Checkpoint: adaptive cadence parameters must be >= 1";
      if min_events > max_events then
        invalid_arg "Checkpoint: min_events > max_events"

let make ?observer ~store when_due =
  check_cadence when_due;
  {
    when_due;
    store;
    observer;
    latest = None;
    journal = [];
    journal_len = 0;
    taken = 0;
    total_bytes = 0;
    last_bytes = 0;
    last_write = 0;
    est_write = 0.;
  }

let create ~every = make ~store:None (Every every)
let create_full ?observer ~every () = make ?observer ~store:None (Every every)

let create_delta ?chunk_size ?observer ~cadence () =
  make ?observer ~store:(Some (Chunk_store.create ?chunk_size ())) cadence

let cadence t = t.when_due

let every t =
  match t.when_due with Every k -> k | Adaptive { max_events; _ } -> max_events

let is_delta t = t.store <> None

let notify t n = match t.observer with None -> () | Some f -> f n

let due t =
  match t.latest with
  | None -> true
  | Some _ -> (
      match t.when_due with
      | Every k -> t.journal_len >= k
      | Adaptive { replay_cost_per_event; min_events; max_events } ->
          t.journal_len >= max_events
          || t.journal_len >= min_events
             && float_of_int (t.journal_len * replay_cost_per_event)
                >= t.est_write)

let take t inst =
  let snap = App_sig.snapshot inst in
  let logical = Bytes.length snap in
  (match t.store with
  | None ->
      t.latest <- Some (Blob snap);
      t.last_write <- logical;
      notify t
        (Took
           {
             delta = false;
             logical;
             written = logical;
             chunk_hits = 0;
             chunk_misses = 0;
             deduped = 0;
           })
  | Some store ->
      let manifest, w = Chunk_store.store store snap in
      (* Store the new snapshot before releasing the old one: chunks the
         two share must keep a reference across the swap, or the store
         would evict and immediately re-write them. *)
      let previous = t.latest in
      t.latest <- Some (Chunked manifest);
      (match previous with
      | Some (Chunked m) -> Chunk_store.release store m
      | Some (Blob _) | None -> ());
      t.last_write <- w.Chunk_store.written_bytes;
      notify t
        (Took
           {
             delta = true;
             logical;
             written = w.Chunk_store.written_bytes;
             chunk_hits = w.Chunk_store.hits;
             chunk_misses = w.Chunk_store.misses;
             deduped = w.Chunk_store.deduped_bytes;
           }));
  t.journal <- [];
  t.journal_len <- 0;
  t.taken <- t.taken + 1;
  t.last_bytes <- logical;
  t.total_bytes <- t.total_bytes + t.last_write;
  t.est_write <-
    (if t.taken = 1 then float_of_int t.last_write
     else (0.5 *. t.est_write) +. (0.5 *. float_of_int t.last_write))

let record_applied t ev =
  t.journal <- ev :: t.journal;
  t.journal_len <- t.journal_len + 1

let restore_point t =
  match t.latest with
  | None -> None
  | Some (Blob snap) -> Some (snap, List.rev t.journal)
  | Some (Chunked m) ->
      let snap =
        match t.store with
        | Some store -> Chunk_store.materialize store m
        | None -> assert false
      in
      notify t
        (Materialized { bytes = Bytes.length snap; journal = t.journal_len });
      Some (snap, List.rev t.journal)

let journal_length t = t.journal_len
let snapshots_taken t = t.taken
let bytes_written t = t.total_bytes
let last_snapshot_bytes t = t.last_bytes
let last_write_bytes t = t.last_write

let chunk_hits t =
  match t.store with None -> 0 | Some s -> Chunk_store.hits s

let chunk_misses t =
  match t.store with None -> 0 | Some s -> Chunk_store.misses s

let chunk_bytes_deduped t =
  match t.store with None -> 0 | Some s -> Chunk_store.bytes_deduped s
