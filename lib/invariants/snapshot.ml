open Openflow
module Topology = Netsim.Topology
module Flow_entry = Netsim.Flow_entry
module Flow_table = Netsim.Flow_table
module Sw = Netsim.Sw
module Net = Netsim.Net

module Sid_map = Map.Make (Int)

type sw_state = {
  rules : Flow_entry.t list;  (* priority order, as Flow_table.entries *)
  alive : bool;
  ports_down : (Types.port_no, unit) Hashtbl.t;
  port_nos : Types.port_no list;
}

type t = {
  frozen_at : float;
  topo : Topology.t;
  switches : sw_state Sid_map.t;
}

let capture_switch net sid =
  let sw = Net.switch net sid in
  let ports_down = Hashtbl.create 4 in
  let port_nos =
    List.map
      (fun (p : Sw.port_state) ->
        if not p.port_up then Hashtbl.replace ports_down p.port_no ();
        p.port_no)
      (Sw.port_list sw)
  in
  {
    rules = Flow_table.entries sw.Sw.table;
    alive = sw.Sw.up;
    ports_down;
    port_nos;
  }

let of_net net =
  let topo = Net.topology net in
  let switches =
    List.fold_left
      (fun acc sid -> Sid_map.add sid (capture_switch net sid) acc)
      Sid_map.empty (Topology.switches topo)
  in
  {
    frozen_at = Netsim.Clock.now (Net.clock net);
    topo;
    switches;
  }

(* Re-capture only the dirty switches; every other per-switch state (and its
   memoized rules list) is shared structurally with the previous snapshot.
   The incremental engine decides dirtiness from {!Netsim.Sw.version}. *)
let refresh t net ~dirty =
  let switches =
    List.fold_left
      (fun acc sid -> Sid_map.add sid (capture_switch net sid) acc)
      t.switches dirty
  in
  { t with frozen_at = Netsim.Clock.now (Net.clock net); switches }

let now t = t.frozen_at
let topology t = t.topo

let entries t sid =
  match Sid_map.find_opt sid t.switches with
  | Some s -> s.rules
  | None -> []

let switch_up t sid =
  match Sid_map.find_opt sid t.switches with
  | Some s -> s.alive
  | None -> false

let port_up t sid port =
  match Sid_map.find_opt sid t.switches with
  | Some s -> not (Hashtbl.mem s.ports_down port)
  | None -> false

(* Apply a flow-mod functionally as an overlay on the rule list itself —
   entries are immutable for our purposes (counters are irrelevant to
   invariants), so one list pass replaces the old rebuild-a-scratch-table
   approach, and untouched switches stay fully shared. The semantics mirror
   Flow_table exactly: priority-descending order, insertion order within a
   priority (append on add). *)
let insert_sorted entry rules =
  let rec go = function
    | [] -> [ entry ]
    | (e : Flow_entry.t) :: rest as all ->
        if entry.Flow_entry.priority > e.priority then entry :: all
        else e :: go rest
  in
  go rules

let touches ~strict pattern ~priority (e : Flow_entry.t) =
  if strict then priority = e.priority && Ofp_match.equal pattern e.pattern
  else Ofp_match.subsumes pattern e.pattern

let apply_flow_mod t sid fm =
  match Sid_map.find_opt sid t.switches with
  | None -> t
  | Some s ->
      let open Message in
      let rules =
        match fm.command with
        | Add ->
            let entry = Flow_entry.of_flow_mod ~now:t.frozen_at fm in
            insert_sorted entry
              (List.filter
                 (fun e -> not (Flow_entry.same_rule e entry))
                 s.rules)
        | Modify | Modify_strict ->
            let strict = fm.command = Modify_strict in
            let hit = ref false in
            let mapped =
              List.map
                (fun (e : Flow_entry.t) ->
                  if touches ~strict fm.pattern ~priority:fm.priority e then begin
                    hit := true;
                    { e with actions = fm.actions }
                  end
                  else e)
                s.rules
            in
            if !hit then mapped
            else
              insert_sorted (Flow_entry.of_flow_mod ~now:t.frozen_at fm) s.rules
        | Delete | Delete_strict ->
            let strict = fm.command = Delete_strict in
            let port_ok (e : Flow_entry.t) =
              match fm.out_port with
              | None -> true
              | Some p -> List.mem p (Action.outputs e.actions)
            in
            List.filter
              (fun e ->
                not
                  (touches ~strict fm.pattern ~priority:fm.priority e
                  && port_ok e))
              s.rules
      in
      { t with switches = Sid_map.add sid { s with rules } t.switches }

let apply_flow_mods t mods =
  List.fold_left (fun acc (sid, fm) -> apply_flow_mod acc sid fm) t mods

type probe = {
  reached : Topology.host list;
  punted_at : Types.switch_id list;
  blackholed_at : Types.switch_id list;
  looped : bool;
  path : (Types.switch_id * Types.port_no) list;
}

let lookup t sid ~in_port pkt =
  match Sid_map.find_opt sid t.switches with
  | None -> None
  | Some s ->
      List.find_opt
        (fun (e : Flow_entry.t) ->
          Flow_entry.expiry_reason e ~now:t.frozen_at = None
          && Flow_entry.matches e ~in_port pkt)
        s.rules

let resolve t sid ~in_port (pkt, out) =
  let s = Sid_map.find sid t.switches in
  let up_ports_except skip =
    List.filter
      (fun p -> (not (Hashtbl.mem s.ports_down p)) && p <> skip)
      s.port_nos
  in
  if out = Types.port_flood || out = Types.port_all then
    List.map (fun p -> (pkt, p)) (up_ports_except in_port)
  else if out = Types.port_in_port then [ (pkt, in_port) ]
  else if
    out = Types.port_controller || out = Types.port_local
    || out = Types.port_none
  then []
  else if List.mem out s.port_nos && not (Hashtbl.mem s.ports_down out) then
    [ (pkt, out) ]
  else []

let hop_limit = 64

let trace t h pkt =
  let reached = ref [] in
  let punted = ref [] in
  let blackholed = ref [] in
  let looped = ref false in
  let path = ref [] in
  let seen = Hashtbl.create 32 in
  let rec visit sid in_port pkt hops =
    path := (sid, in_port) :: !path;
    let key = (sid, in_port, pkt) in
    if Hashtbl.mem seen key || hops >= hop_limit then looped := true
    else begin
      Hashtbl.replace seen key ();
      if not (switch_up t sid) then blackholed := sid :: !blackholed
      else
        match lookup t sid ~in_port pkt with
        | None -> punted := sid :: !punted
        | Some entry ->
            let staged = Action.apply_staged entry.actions pkt in
            let copies = List.concat_map (resolve t sid ~in_port) staged in
            if copies = [] && Action.is_drop entry.actions then ()
            else if copies = [] then blackholed := sid :: !blackholed
            else
              List.iter
                (fun (pkt', out_port) ->
                  match Topology.peer t.topo (Topology.Switch sid) out_port with
                  | Some { node = Topology.Host h'; _ } ->
                      reached := h' :: !reached
                  | Some { node = Topology.Switch sid'; port = port' } ->
                      visit sid' port' pkt' (hops + 1)
                  | None -> blackholed := sid :: !blackholed)
                copies
    end
  in
  (match Topology.host_attachment t.topo h with
  | Some (sid, port) when Topology.peer t.topo (Topology.Host h) 1 <> None ->
      visit sid port pkt 0
  | Some _ | None -> ());
  {
    reached = List.sort_uniq compare !reached;
    punted_at = List.sort_uniq compare !punted;
    blackholed_at = List.sort_uniq compare !blackholed;
    looped = !looped;
    path = List.rev !path;
  }
