open Openflow
module Event = Controller.Event
module Command = Controller.Command
module Wire = Legosdn.Wire

let pkt = T_util.tcp_packet 1 2

let sample_events =
  [
    Event.Switch_up
      ( 4,
        {
          Message.datapath_id = 4;
          n_buffers = 256;
          n_tables = 1;
          ports =
            [ { Message.port_no = 1; hw_addr = 77; name = "eth1"; up = true; no_flood = false } ];
        } );
    Event.Switch_down 9;
    Event.Port_status
      ( 2,
        Message.Port_modify,
        { Message.port_no = 3; hw_addr = 5; name = "eth3"; up = false; no_flood = false } );
    Event.Link_up
      { Event.src_switch = 1; src_port = 2; dst_switch = 3; dst_port = 4 };
    Event.Link_down
      { Event.src_switch = 3; src_port = 4; dst_switch = 1; dst_port = 2 };
    Event.Packet_in
      ( 7,
        {
          Message.pi_buffer_id = Some 12;
          pi_in_port = 3;
          pi_reason = Message.No_match;
          pi_packet = pkt;
        } );
    Event.Flow_removed
      ( 2,
        {
          Message.fr_pattern = Ofp_match.make ~tp_dst:80 ();
          fr_cookie = 1L;
          fr_priority = 5;
          fr_reason = Message.Removed_idle;
          fr_duration = 3;
          fr_idle_timeout = 60;
          fr_packet_count = 4;
          fr_byte_count = 400;
        } );
    Event.Stats_reply
      (1, 42, Message.Aggregate_stats_reply { packets = 1; bytes = 2; flows = 3 });
    Event.Tick 12.5;
  ]

let sample_commands =
  [
    Command.install 3 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 2 ];
    Command.uninstall ~strict:true 1 Ofp_match.any;
    Command.packet_out ~buffer_id:9 2 [ Action.Output Types.port_flood ] None;
    Command.Stats (4, Message.Port_stats_request None);
    Command.Log "hello from the stub";
  ]

let test_event_roundtrips () =
  List.iter
    (fun ev ->
      Alcotest.check T_util.event_t "event roundtrip" ev (Wire.roundtrip_event ev))
    sample_events

let test_command_roundtrips () =
  List.iter
    (fun cmd ->
      Alcotest.check T_util.command_t "command roundtrip" cmd
        (Wire.decode_command (Wire.encode_command cmd)))
    sample_commands

let test_command_list_roundtrip () =
  Alcotest.(check (list T_util.command_t)) "list roundtrip" sample_commands
    (Wire.roundtrip_commands sample_commands);
  Alcotest.(check (list T_util.command_t)) "empty list" []
    (Wire.roundtrip_commands [])

let test_sizes_are_positive () =
  List.iter
    (fun ev -> T_util.checkb "positive size" true (Wire.event_size ev > 0))
    sample_events

let test_garbage_rejected () =
  T_util.checkb "garbage event rejected" true
    (try
       ignore (Wire.decode_event (Bytes.of_string "\xff\x00"));
       false
     with Wire.Decode_error _ -> true);
  T_util.checkb "empty command list vs truncation" true
    (try
       ignore (Wire.decode_commands (Bytes.of_string "\x00"));
       false
     with Wire.Decode_error _ -> true)

let prop_packet_in_roundtrip =
  QCheck2.Test.make ~name:"packet_in events roundtrip for any packet" ~count:300
    T_util.Gen.packet (fun p ->
      let ev =
        Event.Packet_in
          ( 1,
            {
              Message.pi_buffer_id = None;
              pi_in_port = 2;
              pi_reason = Message.Action_to_controller;
              pi_packet = p;
            } )
      in
      Wire.roundtrip_event ev = ev)

(* ------------------------------------------------------------------ *)
(* The reusable-buffer (scratch) path: the sharded engine's RPC
   boundary. Must be byte-identical to the fresh-allocation path for
   every message kind, on a buffer deliberately dirtied by previous
   encodes — and must reject torn frames at every truncation boundary
   exactly as the fresh path does. *)

let test_scratch_bytes_equal_fresh () =
  let s = Wire.scratch ~capacity:8 () in
  (* One scratch across the whole sample set, so each encode runs on a
     buffer still holding the previous event's bytes. *)
  List.iter
    (fun ev ->
      let got, n = Wire.roundtrip_event_scratch s ev in
      Alcotest.check T_util.event_t "scratch roundtrip value" ev got;
      T_util.checki "scratch size = fresh size" (Wire.event_size ev) n;
      T_util.checkb "scratch bytes = fresh bytes" true
        (Bytes.equal (Wire.scratch_contents s) (Wire.encode_event ev)))
    sample_events;
  let got, n = Wire.roundtrip_commands_scratch s sample_commands in
  Alcotest.(check (list T_util.command_t)) "scratch command list" sample_commands got;
  T_util.checkb "scratch command bytes = fresh bytes" true
    (Bytes.equal (Wire.scratch_contents s) (Wire.encode_commands sample_commands));
  T_util.checki "scratch command size = fresh size"
    (Bytes.length (Wire.encode_commands sample_commands))
    n;
  let _, n_empty = Wire.roundtrip_commands_scratch s [] in
  T_util.checkb "empty command list encodes" true (n_empty > 0)

let decode_error f =
  try
    ignore (f ());
    false
  with Wire.Decode_error _ -> true

let test_torn_frames_equal_fresh () =
  (* Truncate every event's encoding at every byte boundary: both decode
     paths must reject every prefix (short read / torn frame) and accept
     only the full frame. *)
  List.iter
    (fun ev ->
      let full = Wire.encode_event ev in
      for cut = 0 to Bytes.length full - 1 do
        let torn = Bytes.sub full 0 cut in
        let fresh_rejects = decode_error (fun () -> Wire.decode_event torn) in
        let windowed_rejects =
          decode_error (fun () -> Wire.decode_event_at (Buf.reader torn))
        in
        T_util.checkb
          (Printf.sprintf "cut at %d/%d rejected by both paths" cut
             (Bytes.length full))
          true
          (fresh_rejects && windowed_rejects)
      done;
      T_util.checkb "full frame accepted by windowed path" true
        (Wire.decode_event_at (Buf.reader full) = ev))
    sample_events;
  let full = Wire.encode_commands sample_commands in
  for cut = 0 to Bytes.length full - 1 do
    let torn = Bytes.sub full 0 cut in
    T_util.checkb "torn command list rejected by both paths" true
      (decode_error (fun () -> Wire.decode_commands torn)
      && decode_error (fun () -> Wire.decode_commands_at (Buf.reader torn)))
  done

let prop_scratch_equals_fresh =
  (* One shared scratch across all cases: every case reuses the dirty
     buffer of the previous one. *)
  let s = Wire.scratch () in
  QCheck2.Test.make ~name:"scratch path == fresh path for any packet_in"
    ~count:300 T_util.Gen.packet (fun p ->
      let ev =
        Event.Packet_in
          ( 3,
            {
              Message.pi_buffer_id = Some 7;
              pi_in_port = 5;
              pi_reason = Message.No_match;
              pi_packet = p;
            } )
      in
      let got, n = Wire.roundtrip_event_scratch s ev in
      got = ev
      && n = Wire.event_size ev
      && Bytes.equal (Wire.scratch_contents s) (Wire.encode_event ev))

let prop_flow_commands_roundtrip =
  QCheck2.Test.make ~name:"flow commands roundtrip for any flow_mod" ~count:300
    T_util.Gen.flow_mod (fun fm ->
      let cmd = Command.Flow (2, fm) in
      Wire.decode_command (Wire.encode_command cmd) = cmd)

let suite =
  [
    Alcotest.test_case "event roundtrips" `Quick test_event_roundtrips;
    Alcotest.test_case "command roundtrips" `Quick test_command_roundtrips;
    Alcotest.test_case "command list roundtrip" `Quick test_command_list_roundtrip;
    Alcotest.test_case "sizes positive" `Quick test_sizes_are_positive;
    Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
    Alcotest.test_case "scratch bytes equal fresh" `Quick
      test_scratch_bytes_equal_fresh;
    Alcotest.test_case "torn frames equal fresh" `Quick
      test_torn_frames_equal_fresh;
    QCheck_alcotest.to_alcotest prop_packet_in_roundtrip;
    QCheck_alcotest.to_alcotest prop_scratch_equals_fresh;
    QCheck_alcotest.to_alcotest prop_flow_commands_roundtrip;
  ]
