open Openflow
module Nversion = Legosdn.Nversion
module Clone_runner = Legosdn.Clone_runner
module Sts = Legosdn.Sts
module Event = Controller.Event
module Command = Controller.Command
module App_sig = Controller.App_sig

let packet_in ?(sid = 1) src dst =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = 100;
        pi_reason = Message.No_match;
        pi_packet = T_util.tcp_packet src dst;
      } )

let ctx = T_util.null_context

(* Tiny deterministic voters for the diversity tests. *)
let voter name out : (module App_sig.APP) =
  (module struct
    type state = int

    let name = name
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    let handle _ st = function
      | Event.Packet_in (sid, _) ->
          (st + 1, [ Command.install sid (Ofp_match.make ~tp_dst:80 ()) [ Action.Output out ] ])
      | _ -> (st, [])
  end)

let crasher name : (module App_sig.APP) =
  (module struct
    type state = int

    let name = name
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0
    let handle _ _ _ : int * Command.t list = failwith (name ^ " dies")
  end)

let run_app (module A : App_sig.APP) events =
  let _final_state, commands =
    List.fold_left
      (fun (st, acc) ev ->
        let st', cmds = A.handle ctx st ev in
        (st', acc @ cmds))
      (A.init (), [])
      events
  in
  commands

let flows_only cmds =
  List.filter (function Command.Flow _ -> true | _ -> false) cmds

let test_majority_outvotes_divergent () =
  let module V =
    (val (module Nversion.Make3
                   ((val voter "v1" 2)) ((val voter "v2" 2)) ((val voter "v3" 9))
           : App_sig.APP))
  in
  let cmds = run_app (module V) [ packet_in 1 2 ] in
  match flows_only cmds with
  | [ Command.Flow (_, fm) ] ->
      Alcotest.(check (list int)) "majority output (port 2) wins" [ 2 ]
        (Action.outputs fm.Message.actions)
  | _ -> Alcotest.fail "one voted flow command expected"

let test_crashed_version_loses_vote () =
  let module V =
    (val (module Nversion.Make3
                   ((val voter "v1" 2)) ((val crasher "v2")) ((val voter "v3" 2))
           : App_sig.APP))
  in
  let cmds = run_app (module V) [ packet_in 1 2 ] in
  T_util.checkb "bundle survives one crash" true (flows_only cmds <> []);
  T_util.checkb "crash was logged" true
    (List.exists (function Command.Log _ -> true | _ -> false) cmds)

let test_all_versions_crashing_escapes () =
  let module V =
    (val (module Nversion.Make3
                   ((val crasher "v1")) ((val crasher "v2")) ((val crasher "v3"))
           : App_sig.APP))
  in
  T_util.checkb "bundle crash escapes to Crash-Pad" true
    (try
       ignore (V.handle ctx (V.init ()) (packet_in 1 2));
       false
     with _ -> true)

let test_two_version_divergence_flagged () =
  let module V =
    (val (module Nversion.Make2 ((val voter "v1" 2)) ((val voter "v2" 3))
           : App_sig.APP))
  in
  let cmds = run_app (module V) [ packet_in 1 2 ] in
  T_util.checkb "divergence logged" true
    (List.exists
       (function Command.Log s -> s = "nversion(v1|v2): versions diverged" | _ -> false)
       cmds)

(* Clone runner: a seeded probabilistic crasher. Distinct instances draw
   distinct coins, so the clone usually survives the primary's crash. *)
let test_clone_masks_nondeterministic_crash () =
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.With_probability (0.4, 7))
      Apps.Bug_model.Crash
  in
  let module C =
    (val (module Clone_runner.Make
                   ((val Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Hub)))))
       : App_sig.APP)
  in
  let crashes = ref 0 in
  let st = ref (C.init ()) in
  for i = 1 to 100 do
    match C.handle ctx !st (packet_in (1 + (i mod 3)) 2) with
    | st', _ -> st := st'
    | exception _ -> incr crashes
  done;
  (* Unmasked, p=0.4 over 100 events crashes ~40 times; through the clone
     both replicas must fail on the same event (~16%). Assert a big win. *)
  T_util.checkb "most crashes masked" true (!crashes < 30)

let test_clone_switchover_logged () =
  let module Always = struct
    type state = int

    let name = "always_dies_once"
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    (* Crashes iff the state counter is even: primary (even) dies, clone
       advanced differently... to keep it deterministic, die on count 0
       only: primary dies on its first event; the clone — same state —
       would too. So instead: die when count = 0, and the wrapper feeds
       the clone only after the primary: both at 0. Not maskable. Use a
       global to make only the first call die. *)
    let fuse = ref true

    let handle _ st = function
      | Event.Packet_in _ ->
          if !fuse then begin
            fuse := false;
            failwith "first call dies"
          end
          else (st + 1, [])
      | _ -> (st, [])
  end in
  let module C = (val (module Clone_runner.Make (Always)) : App_sig.APP) in
  let cmds = run_app (module C) [ packet_in 1 2 ] in
  T_util.checkb "switchover logged" true
    (List.exists
       (function Command.Log s -> s = "always_dies_once+clone: switched over to clone" | _ -> false)
       cmds)

(* STS / delta debugging. *)

(* Crashes iff it has seen packets to both port 80 and port 443 — a
   cumulative, order-insensitive two-event bug. *)
module Two_event_bug = struct
  type state = { saw80 : bool; saw443 : bool }

  let name = "two_event_bug"
  let subscriptions = [ Event.K_packet_in ]
  let init () = { saw80 = false; saw443 = false }

  let handle _ st = function
    | Event.Packet_in (_, pi) ->
        let st =
          match pi.Message.pi_packet.Packet.tp_dst with
          | 80 -> { st with saw80 = true }
          | 443 -> { st with saw443 = true }
          | _ -> st
        in
        if st.saw80 && st.saw443 then failwith "cumulative bug";
        (st, [])
    | _ -> (st, [])
end

let pkt_to dport =
  Event.Packet_in
    ( 1,
      {
        Message.pi_buffer_id = None;
        pi_in_port = 100;
        pi_reason = Message.No_match;
        pi_packet = Packet.tcp ~src_host:1 ~dst_host:2 ~dport ();
      } )

let noisy_trace =
  [ pkt_to 22; pkt_to 80; pkt_to 8080; pkt_to 53; pkt_to 443; pkt_to 25 ]

let test_crashes_on_detects () =
  T_util.checkb "full trace crashes" true
    (Sts.crashes_on (module Two_event_bug) ctx noisy_trace);
  T_util.checkb "benign trace does not" false
    (Sts.crashes_on (module Two_event_bug) ctx [ pkt_to 22; pkt_to 80 ])

let test_minimize_finds_the_pair () =
  let minimal, calls = Sts.minimize (module Two_event_bug) ctx noisy_trace in
  Alcotest.(check (list T_util.event_t)) "exactly the causal pair"
    [ pkt_to 80; pkt_to 443 ] minimal;
  T_util.checkb "oracle effort bounded" true (calls < 50)

let test_minimize_single_event_bug () =
  let module One = struct
    type state = unit

    let name = "one"
    let subscriptions = [ Event.K_packet_in ]
    let init () = ()

    let handle _ () = function
      | Event.Packet_in (_, pi) when pi.Message.pi_packet.Packet.tp_dst = 443 ->
          failwith "boom"
      | _ -> ((), [])
  end in
  let minimal, _ = Sts.minimize (module One) ctx noisy_trace in
  Alcotest.(check (list T_util.event_t)) "single culprit" [ pkt_to 443 ] minimal

let test_minimize_rejects_benign_trace () =
  Alcotest.check_raises "benign trace rejected"
    (Invalid_argument "Sts.minimize: the full trace does not crash the application")
    (fun () -> ignore (Sts.minimize (module Two_event_bug) ctx [ pkt_to 22 ]))

let test_checkpoint_selection () =
  let minimal = [ pkt_to 80 ] in
  T_util.checki "k=1: checkpoint right before the culprit" 1
    (Sts.checkpoint_to_roll_back_to ~trace:noisy_trace ~minimal ~checkpoint_every:1);
  T_util.checki "k=4: aligned snapshot" 0
    (Sts.checkpoint_to_roll_back_to ~trace:noisy_trace ~minimal ~checkpoint_every:4)

let prop_minimal_still_fails =
  QCheck2.Test.make ~name:"ddmin result still triggers the oracle" ~count:100
    QCheck2.Gen.(list_size (int_range 2 20) (int_range 0 9))
    (fun trace ->
      (* Oracle: fails iff the trace contains a 3 and a 7. *)
      let failing l = List.mem 3 l && List.mem 7 l in
      if not (failing trace) then true
      else begin
        let minimal, _ = Sts.minimize_with_oracle failing trace in
        failing minimal && List.length minimal <= List.length trace
      end)

let prop_minimal_is_1_minimal =
  QCheck2.Test.make ~name:"ddmin result is 1-minimal" ~count:100
    QCheck2.Gen.(list_size (int_range 2 15) (int_range 0 5))
    (fun trace ->
      let failing l = List.mem 3 l && List.mem 4 l in
      if not (failing trace) then true
      else begin
        let minimal, _ = Sts.minimize_with_oracle failing trace in
        (* Removing any single element stops the failure. *)
        List.for_all
          (fun i -> not (failing (List.filteri (fun j _ -> j <> i) minimal)))
          (List.init (List.length minimal) Fun.id)
      end)

let suite =
  [
    Alcotest.test_case "majority outvotes divergent" `Quick test_majority_outvotes_divergent;
    Alcotest.test_case "crashed version loses vote" `Quick test_crashed_version_loses_vote;
    Alcotest.test_case "all versions crashing escapes" `Quick test_all_versions_crashing_escapes;
    Alcotest.test_case "2-version divergence flagged" `Quick test_two_version_divergence_flagged;
    Alcotest.test_case "clone masks nondeterministic bug" `Quick
      test_clone_masks_nondeterministic_crash;
    Alcotest.test_case "clone switchover logged" `Quick test_clone_switchover_logged;
    Alcotest.test_case "crashes_on oracle" `Quick test_crashes_on_detects;
    Alcotest.test_case "ddmin finds causal pair" `Quick test_minimize_finds_the_pair;
    Alcotest.test_case "ddmin single event" `Quick test_minimize_single_event_bug;
    Alcotest.test_case "ddmin rejects benign trace" `Quick test_minimize_rejects_benign_trace;
    Alcotest.test_case "checkpoint selection" `Quick test_checkpoint_selection;
    QCheck_alcotest.to_alcotest prop_minimal_still_fails;
    QCheck_alcotest.to_alcotest prop_minimal_is_1_minimal;
  ]
