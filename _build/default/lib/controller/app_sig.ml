open Openflow

type context = {
  now : unit -> float;
  switches : unit -> Types.switch_id list;
  switch_ports : Types.switch_id -> Types.port_no list;
  links : unit -> Event.link list;
  host_location : Types.mac -> (Types.switch_id * Types.port_no) option;
}

module type APP = sig
  type state

  val name : string
  val subscriptions : Event.kind list
  val init : unit -> state
  val handle : context -> state -> Event.t -> state * Command.t list
end

exception Crash_with_partial of Command.t list
exception App_hang

type instance =
  | Instance : (module APP with type state = 's) * 's -> instance

let instantiate (module A : APP) =
  Instance ((module A : APP with type state = A.state), A.init ())

let module_of (Instance ((module A), _)) = (module A : APP)

let name (Instance ((module A), _)) = A.name
let subscriptions (Instance ((module A), _)) = A.subscriptions
let subscribes_to inst kind = List.mem kind (subscriptions inst)

let handle (Instance ((module A), st)) ctx event =
  let st', commands = A.handle ctx st event in
  (Instance ((module A), st'), commands)

let reboot (Instance ((module A), _)) = Instance ((module A), A.init ())

let snapshot (Instance ((module A), st)) = Marshal.to_bytes st []

let restore (Instance ((module A), _)) bytes =
  (* The state type is fixed by the module; a snapshot taken from the same
     module unmarshals to exactly that type. *)
  Instance ((module A), (Marshal.from_bytes bytes 0 : A.state))

let state_size inst = Bytes.length (snapshot inst)
