let span_to_json (s : Span.t) =
  Json.Obj
    [
      ("name", Json.Str (Span.kind_name s.kind));
      ("cat", Json.Str "legosdn");
      ("ph", Json.Str "X");
      ("pid", Json.Num 1.);
      ("tid", Json.Num 1.);
      ("ts", Json.Num (s.t0 *. 1e6));
      ("dur", Json.Num ((s.t1 -. s.t0) *. 1e6));
      ( "args",
        Json.Obj
          [
            ("id", Json.Num (float s.id));
            ("parent", Json.Num (float s.parent));
            ("vt", Json.Num s.vt);
            ("vt_end", Json.Num s.vt_end);
            ("t0", Json.Num s.t0);
            ("t1", Json.Num s.t1);
            ( "attrs",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs) );
          ] );
    ]

let to_chrome spans =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map span_to_json spans));
         ("displayTimeUnit", Json.Str "ms");
       ])

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j ~what =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %S in %s" name what)

let span_of_json j =
  let what = "trace event" in
  let* name = field "name" Json.to_str j ~what in
  let* kind =
    match Span.kind_of_name name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown span kind %S" name)
  in
  let* args =
    match Json.member "args" j with
    | Some (Json.Obj _ as a) -> Ok a
    | _ -> Error "missing args object"
  in
  let what = "args" in
  let* id = field "id" Json.to_float args ~what in
  let* parent = field "parent" Json.to_float args ~what in
  let* vt = field "vt" Json.to_float args ~what in
  let* vt_end = field "vt_end" Json.to_float args ~what in
  let* t0 = field "t0" Json.to_float args ~what in
  let* t1 = field "t1" Json.to_float args ~what in
  let* attrs =
    match Json.member "attrs" args with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Json.to_str v with
            | Some s -> Ok ((k, s) :: acc)
            | None -> Error (Printf.sprintf "attr %S is not a string" k))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "missing attrs object"
  in
  Ok
    {
      Span.id = int_of_float id;
      parent = int_of_float parent;
      kind;
      vt;
      vt_end;
      t0;
      t1;
      attrs;
    }

let of_chrome text =
  let* doc = Json.parse text in
  let* events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> Ok l
    | None -> Error "no traceEvents array"
  in
  List.fold_left
    (fun acc ev ->
      let* acc = acc in
      let* s = span_of_json ev in
      Ok (s :: acc))
    (Ok []) events
  |> Result.map List.rev

let validate spans =
  let by_id = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | (s : Span.t) :: rest ->
        if s.id <= 0 then Error (Printf.sprintf "span id %d not positive" s.id)
        else if Hashtbl.mem by_id s.id then
          Error (Printf.sprintf "duplicate span id %d" s.id)
        else if s.t1 < s.t0 then
          Error (Printf.sprintf "span #%d ends before it starts (wall)" s.id)
        else if s.vt_end < s.vt then
          Error
            (Printf.sprintf "span #%d ends before it starts (virtual)" s.id)
        else if s.parent >= s.id then
          Error
            (Printf.sprintf "span #%d opened before its parent #%d" s.id
               s.parent)
        else begin
          (match Hashtbl.find_opt by_id s.parent with
          | Some (p : Span.t) when s.t0 < p.t0 || s.t1 > p.t1 ->
              Error
                (Printf.sprintf "span #%d escapes its parent #%d interval"
                   s.id s.parent)
          | _ ->
              (* A parent missing from the list was evicted by ring
                 wraparound (or the span is a root): nothing to check. *)
              Ok ())
          |> function
          | Error _ as e -> e
          | Ok () ->
              Hashtbl.replace by_id s.id s;
              go rest
        end
  in
  go spans

let kinds spans =
  List.filter
    (fun k -> List.exists (fun (s : Span.t) -> s.kind = k) spans)
    Span.all_kinds

let save path spans =
  let oc = open_out_bin path in
  output_string oc (to_chrome spans);
  output_char oc '\n';
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_chrome text
