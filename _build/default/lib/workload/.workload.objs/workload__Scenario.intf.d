lib/workload/scenario.mli: Controller Failure_schedule Format Legosdn Netsim Traffic
