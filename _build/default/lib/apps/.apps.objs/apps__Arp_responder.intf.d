lib/apps/arp_responder.mli: Controller
