(* Durable reproducers for failing seeds. A reproducer file bundles the
   (minimized) scenario spec, which oracle failed and why, the exact event
   trace of the failing run in Trace_io's wire format, and (version 2) the
   run's structured span trace as Chrome-trace JSON — so a reproducer is
   replayable (re-run the spec, expect the same oracle to fail), auditable
   (the recorded trace can be inspected or diffed byte-for-byte against
   the replay), and now *explainable*: the span timeline shows what the
   runtime was doing when the oracle tripped. Version 3 adds the spec's
   cluster fields (replicas, election-timeout range) and the Kill_leader
   element; version 4 adds the N-version panel size and the Byz_variant
   element. Version-1 (no spans), version-2 (single-controller spec
   layout) and version-3 (solo-sandbox layout) files still load. *)

open Openflow
module Trace_io = Workload.Trace_io
module Event = Controller.Event

let magic = "LSDNREP4"
let magic_v3 = "LSDNREP3"
let magic_v2 = "LSDNREP2"
let magic_v1 = "LSDNREP1"

type t = {
  spec : Spec.t;
  oracle : string;
  detail : string;
  trace : Event.t list;
  spans : Obs.Span.t list;
}

let put_block w b =
  Buf.u32 w (Bytes.length b);
  Buf.raw w b

let get_block r =
  let n = Buf.read_u32 r in
  Buf.read_raw r n

let encode t =
  let w = Buf.writer ~capacity:1024 () in
  Buf.raw w (Bytes.of_string magic);
  Spec.encode_into w t.spec;
  Spec.put_string w t.oracle;
  Spec.put_string w t.detail;
  put_block w (Trace_io.encode t.trace);
  (* Spans travel as Chrome-trace JSON: the same bytes a --trace-out file
     holds, so any reproducer's timeline opens in chrome://tracing too. *)
  put_block w (Bytes.of_string (Obs.Export.to_chrome t.spans));
  Buf.contents w

let decode b =
  let r = Buf.reader b in
  let m = Bytes.to_string (Buf.read_raw r (String.length magic)) in
  let version =
    if m = magic then 4
    else if m = magic_v3 then 3
    else if m = magic_v2 then 2
    else if m = magic_v1 then 1
    else raise (Spec.Decode_error (Printf.sprintf "bad reproducer magic %S" m))
  in
  let spec = Spec.decode_from ~version r in
  let oracle = Spec.get_string r in
  let detail = Spec.get_string r in
  let trace = Trace_io.decode (get_block r) in
  let spans =
    if m = magic_v1 then []
    else
      match Obs.Export.of_chrome (Bytes.to_string (get_block r)) with
      | Ok spans -> spans
      | Error e ->
          raise (Spec.Decode_error (Printf.sprintf "bad span trace: %s" e))
  in
  { spec; oracle; detail; trace; spans }

let save path t =
  let oc = open_out_bin path in
  output_bytes oc (encode t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  decode b

type replay_result = {
  reproduced : bool;  (* the recorded oracle failed again *)
  same_trace : bool;  (* replay's event stream is byte-identical *)
  outcome : Runner.result;
}

(* Replay is a fresh run of the embedded spec: determinism means the same
   oracle must fail and the dispatched event stream must re-encode to the
   same bytes as the recorded one. [dispatch] is an execution parameter,
   not part of the file format: a reproducer recorded under one engine
   must replay identically under the other — the determinism constraint
   the dispatch differential enforces. *)
let replay ?oracles ?dispatch t =
  let outcome = Runner.run ?oracles ?dispatch t.spec in
  let reproduced =
    match outcome.Runner.failure with
    | Some f -> f.Runner.oracle = t.oracle
    | None -> false
  in
  let same_trace =
    Bytes.equal (Trace_io.encode outcome.Runner.trace)
      (Trace_io.encode t.trace)
  in
  { reproduced; same_trace; outcome }
