open Openflow
open Netsim
module Netlog = Legosdn.Netlog
module Counter_cache = Legosdn.Counter_cache
module Command = Controller.Command

let setup () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  let nl = Netlog.create net in
  (clock, net, nl)

(* Structural view of a flow table for equality checks, ignoring install
   times and counters. *)
let table_shape net sid =
  Flow_table.entries (Net.switch net sid).Sw.table
  |> List.map (fun (e : Flow_entry.t) ->
         (e.pattern, e.priority, e.actions, e.cookie, e.idle_timeout,
          e.hard_timeout, e.notify_when_removed))
  |> List.sort compare

let network_shape net =
  List.map (fun sid -> table_shape net sid) [ 1; 2; 3 ]

let flow_cmd sid fm = Command.Flow (sid, fm)

let test_abort_undoes_add () =
  let _, net, nl = setup () in
  let before = network_shape net in
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn
       (flow_cmd 1 (Message.flow_add (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ])));
  T_util.checki "rule installed eagerly" 1 (Flow_table.size (Net.switch net 1).Sw.table);
  Netlog.abort nl txn;
  T_util.checkb "network restored" true (network_shape net = before)

let test_abort_undoes_delete () =
  let _, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~idle_timeout:60 (Ofp_match.make ~tp_dst:80 ())
                [ Action.Output 1 ]))));
  let before = network_shape net in
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn (flow_cmd 1 (Message.flow_delete (Ofp_match.make ~tp_dst:80 ()))));
  T_util.checki "rule gone" 0 (Flow_table.size (Net.switch net 1).Sw.table);
  Netlog.abort nl txn;
  T_util.checkb "rule restored with its parameters" true (network_shape net = before)

let test_abort_undoes_modify () =
  let _, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ]))));
  let before = network_shape net in
  let txn = Netlog.begin_txn nl ~app:"t" in
  let modify =
    {
      (Message.flow_add (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 3 ]) with
      Message.command = Message.Modify;
    }
  in
  ignore (Netlog.apply nl txn (flow_cmd 1 modify));
  (match Flow_table.entries (Net.switch net 1).Sw.table with
  | [ e ] ->
      Alcotest.(check (list int)) "modified" [ 3 ] (Action.outputs e.Flow_entry.actions)
  | _ -> Alcotest.fail "one entry expected");
  Netlog.abort nl txn;
  T_util.checkb "actions restored" true (network_shape net = before)

let test_abort_undoes_add_that_replaced () =
  let _, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~priority:7 ~cookie:11L
                (Ofp_match.make ~tp_dst:80 ())
                [ Action.Output 1 ]))));
  let before = network_shape net in
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn
       (flow_cmd 1
          (Message.flow_add ~priority:7 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 9 ])));
  Netlog.abort nl txn;
  T_util.checkb "replaced rule resurrected" true (network_shape net = before)

let test_multi_switch_transaction_rollback () =
  let _, net, nl = setup () in
  let before = network_shape net in
  let txn = Netlog.begin_txn nl ~app:"router" in
  List.iter
    (fun sid ->
      ignore
        (Netlog.apply nl txn
           (flow_cmd sid
              (Message.flow_add
                 (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ())
                 [ Action.Output 1 ]))))
    [ 1; 2; 3 ];
  T_util.checki "three rules live" 3
    (List.length (List.concat_map (fun s -> table_shape net s) [ 1; 2; 3 ]));
  Netlog.abort nl txn;
  T_util.checkb "all three rolled back" true (network_shape net = before);
  T_util.checki "rollback op count" 3 (Netlog.ops_rolled_back nl)

let test_commit_keeps_changes () =
  let _, net, nl = setup () in
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn
       (flow_cmd 2 (Message.flow_add Ofp_match.any [ Action.Output 1 ])));
  Netlog.commit nl txn;
  T_util.checki "rule survives commit" 1 (Flow_table.size (Net.switch net 2).Sw.table);
  T_util.checki "committed count" 1 (Netlog.committed nl)

let test_closed_txn_rejected () =
  let _, _, nl = setup () in
  let txn = Netlog.begin_txn nl ~app:"t" in
  Netlog.commit nl txn;
  Alcotest.check_raises "apply after close"
    (Invalid_argument "Netlog.apply: transaction already closed") (fun () ->
      ignore (Netlog.apply nl txn (Command.Log "x")));
  (* Abort after commit is a no-op, not an error. *)
  Netlog.abort nl txn;
  T_util.checki "no abort recorded" 0 (Netlog.aborted nl)

let test_restore_preserves_remaining_hard_timeout () =
  let clock, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~hard_timeout:100 (Ofp_match.make ~tp_dst:80 ())
                [ Action.Output 1 ]))));
  Clock.advance_to clock 40.;
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn (flow_cmd 1 (Message.flow_delete (Ofp_match.make ~tp_dst:80 ()))));
  Netlog.abort nl txn;
  match Flow_table.entries (Net.switch net 1).Sw.table with
  | [ e ] ->
      T_util.checki "remaining lifetime, not a fresh lease" 60
        e.Flow_entry.hard_timeout
  | _ -> Alcotest.fail "rule should be restored"

let test_effectively_expired_rule_not_resurrected () =
  let clock, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add ~hard_timeout:10 (Ofp_match.make ~tp_dst:80 ())
                [ Action.Output 1 ]))));
  Clock.advance_to clock 10.;
  Net.tick net;
  ignore (Net.poll net);
  T_util.checki "expired naturally" 0 (Flow_table.size (Net.switch net 1).Sw.table);
  (* A delete of an already-gone rule has nothing to restore. *)
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn (flow_cmd 1 (Message.flow_delete (Ofp_match.make ~tp_dst:80 ()))));
  Netlog.abort nl txn;
  T_util.checki "nothing resurrected" 0 (Flow_table.size (Net.switch net 1).Sw.table)

let test_counter_cache_corrects_stats () =
  let _, net, nl = setup () in
  (* Install a rule and push traffic through it so counters are non-zero. *)
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add
                (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ())
                [ Action.Output 1 ]))));
  Net.inject net 1 (T_util.tcp_packet 1 2);
  ignore (Net.poll net);
  (* Delete it inside a transaction, then roll back: the restored rule has
     zeroed hardware counters, banked in the cache. *)
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn
       (flow_cmd 1 (Message.flow_delete (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ()))));
  Netlog.abort nl txn;
  (match Flow_table.entries (Net.switch net 1).Sw.table with
  | [ e ] -> T_util.checki "hardware counters zeroed" 0 e.Flow_entry.packet_count
  | _ -> Alcotest.fail "rule restored");
  T_util.checkb "cache banked the counters" true (Counter_cache.entries (Netlog.cache nl) > 0);
  (* A stats read through NetLog sees the corrected value. *)
  let txn2 = Netlog.begin_txn nl ~app:"monitor" in
  let replies =
    Netlog.apply nl txn2
      (Command.Stats (1, Message.Flow_stats_request Ofp_match.any))
  in
  Netlog.commit nl txn2;
  match replies with
  | [ { Message.payload = Message.Stats_reply (Message.Flow_stats_reply [ fs ]); _ } ] ->
      T_util.checki "corrected packet count" 1 fs.Message.fs_packet_count
  | _ -> Alcotest.fail "flow stats reply expected"

let test_aggregate_stats_corrected () =
  let _, net, nl = setup () in
  ignore
    (Net.send net 1
       (Message.message
          (Message.Flow_mod
             (Message.flow_add
                (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ())
                [ Action.Output 1 ]))));
  Net.inject net 1 (T_util.tcp_packet 1 2);
  ignore (Net.poll net);
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn
       (flow_cmd 1 (Message.flow_delete (Ofp_match.make ~dl_dst:(Types.mac_of_host 2) ()))));
  Netlog.abort nl txn;
  let txn2 = Netlog.begin_txn nl ~app:"monitor" in
  let replies =
    Netlog.apply nl txn2
      (Command.Stats (1, Message.Aggregate_stats_request Ofp_match.any))
  in
  Netlog.commit nl txn2;
  match replies with
  | [ { Message.payload = Message.Stats_reply (Message.Aggregate_stats_reply agg); _ } ] ->
      T_util.checki "aggregate packets corrected" 1 agg.packets
  | _ -> Alcotest.fail "aggregate reply expected"

let test_issued_order () =
  let _, _, nl = setup () in
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore (Netlog.apply nl txn (Command.Log "a"));
  ignore (Netlog.apply nl txn (Command.Log "b"));
  Alcotest.(check (list T_util.command_t)) "oldest first"
    [ Command.Log "a"; Command.Log "b" ]
    (Netlog.issued txn)

(* Property: for a random batch of flow-mods applied in one transaction,
   abort restores the exact structural network state. *)
let small_pattern =
  QCheck2.Gen.(
    let* tp_dst = opt (oneofl [ 80; 443 ]) in
    let* dl_dst = opt (oneofl [ Types.mac_of_host 1; Types.mac_of_host 2 ]) in
    return (Ofp_match.make ?tp_dst ?dl_dst ()))

let random_flow_mod =
  QCheck2.Gen.(
    let* pattern = small_pattern in
    let* priority = oneofl [ 10; 20 ] in
    let* kind = int_bound 3 in
    let* port = oneofl [ 1; 2; 100 ] in
    return
      (match kind with
      | 0 -> Message.flow_add ~priority pattern [ Action.Output port ]
      | 1 -> Message.flow_delete ~priority pattern
      | 2 -> Message.flow_delete ~strict:true ~priority pattern
      | _ ->
          {
            (Message.flow_add ~priority pattern [ Action.Output port ]) with
            Message.command = Message.Modify;
          }))

let prop_rollback_identity =
  QCheck2.Test.make ~name:"apply;abort is identity on network state" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6) (pair (int_range 1 3) random_flow_mod))
        (list_size (int_range 0 4) (pair (int_range 1 3) random_flow_mod)))
    (fun (pre, ops) ->
      let _, net, nl = setup () in
      (* Arbitrary pre-existing rules, committed. *)
      let setup_txn = Netlog.begin_txn nl ~app:"setup" in
      List.iter
        (fun (sid, fm) -> ignore (Netlog.apply nl setup_txn (flow_cmd sid fm)))
        pre;
      Netlog.commit nl setup_txn;
      let before = network_shape net in
      let txn = Netlog.begin_txn nl ~app:"t" in
      List.iter
        (fun (sid, fm) -> ignore (Netlog.apply nl txn (flow_cmd sid fm)))
        ops;
      Netlog.abort nl txn;
      network_shape net = before)

(* An application reinstalling a rule is a legitimate counter reset: the
   Add must consume the banked base — and an abort must re-bank it. *)
let test_add_consumes_bank_and_abort_recredits () =
  let _, _net, nl = setup () in
  let pattern = Ofp_match.make ~tp_dst:80 () in
  let cache = Netlog.cache nl in
  Counter_cache.credit cache 1 pattern ~priority:32768 ~packets:9 ~bytes:900;
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn (flow_cmd 1 (Message.flow_add pattern [ Action.Output 1 ])));
  Alcotest.(check (pair int int)) "bank consumed by the reinstall" (0, 0)
    (Counter_cache.base cache 1 pattern ~priority:32768);
  Netlog.abort nl txn;
  Alcotest.(check (pair int int)) "abort re-banked the credit" (9, 900)
    (Counter_cache.base cache 1 pattern ~priority:32768)

let test_committed_add_drops_bank () =
  let _, _net, nl = setup () in
  let pattern = Ofp_match.make ~tp_dst:80 () in
  let cache = Netlog.cache nl in
  Counter_cache.credit cache 1 pattern ~priority:32768 ~packets:9 ~bytes:900;
  let txn = Netlog.begin_txn nl ~app:"t" in
  ignore
    (Netlog.apply nl txn (flow_cmd 1 (Message.flow_add pattern [ Action.Output 1 ])));
  Netlog.commit nl txn;
  Alcotest.(check (pair int int)) "bank stays consumed after commit" (0, 0)
    (Counter_cache.base cache 1 pattern ~priority:32768)

let suite =
  [
    Alcotest.test_case "abort undoes add" `Quick test_abort_undoes_add;
    Alcotest.test_case "abort undoes delete" `Quick test_abort_undoes_delete;
    Alcotest.test_case "abort undoes modify" `Quick test_abort_undoes_modify;
    Alcotest.test_case "abort undoes replacing add" `Quick test_abort_undoes_add_that_replaced;
    Alcotest.test_case "multi-switch rollback" `Quick test_multi_switch_transaction_rollback;
    Alcotest.test_case "commit keeps changes" `Quick test_commit_keeps_changes;
    Alcotest.test_case "closed transaction rejected" `Quick test_closed_txn_rejected;
    Alcotest.test_case "remaining hard timeout" `Quick test_restore_preserves_remaining_hard_timeout;
    Alcotest.test_case "expired rule stays dead" `Quick test_effectively_expired_rule_not_resurrected;
    Alcotest.test_case "counter cache corrects flow stats" `Quick test_counter_cache_corrects_stats;
    Alcotest.test_case "counter cache corrects aggregates" `Quick test_aggregate_stats_corrected;
    Alcotest.test_case "issued order" `Quick test_issued_order;
    Alcotest.test_case "add consumes bank, abort re-credits" `Quick
      test_add_consumes_bank_and_abort_recredits;
    Alcotest.test_case "committed add drops bank" `Quick
      test_committed_add_drops_bank;
    QCheck_alcotest.to_alcotest prop_rollback_identity;
  ]
