open Openflow
open Controller

type state = (Types.switch_id * Ofp_match.t) list  (* installed route rules *)

let name = "router"

let subscriptions =
  [
    Event.K_packet_in;
    Event.K_link_down;
    Event.K_switch_down;
    Event.K_link_up;
  ]

let init () = []

let routes_installed st = List.length st

let route_priority = Message.default_priority + 10
let route_idle_timeout = 300

(* BFS over live links from [src] to [dst]; returns the hop list as
   (switch, egress port) pairs, excluding the final host port. *)
let shortest_path ~reverse_neighbors links src dst =
  if src = dst then Some []
  else begin
    let adjacency = Hashtbl.create 16 in
    List.iter
      (fun (l : Event.link) ->
        let existing =
          Option.value (Hashtbl.find_opt adjacency l.src_switch) ~default:[]
        in
        Hashtbl.replace adjacency l.src_switch
          ((l.src_port, l.dst_switch) :: existing))
      links;
    let neighbors sid =
      let ns =
        Option.value (Hashtbl.find_opt adjacency sid) ~default:[]
        |> List.sort compare
      in
      if reverse_neighbors then List.rev ns else ns
    in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src ();
    (* queue holds (switch, path-so-far in reverse) *)
    let queue = Queue.create () in
    Queue.push (src, []) queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let sid, path = Queue.pop queue in
      List.iter
        (fun (port, next) ->
          if !result = None && not (Hashtbl.mem visited next) then begin
            Hashtbl.replace visited next ();
            let path' = (sid, port) :: path in
            if next = dst then result := Some (List.rev path')
            else Queue.push (next, path') queue
          end)
        (neighbors sid)
    done;
    !result
  end

let flood_out sid (pi : Message.packet_in) =
  Command.packet_out ?buffer_id:pi.pi_buffer_id ~in_port:pi.pi_in_port sid
    [ Action.Output Types.port_flood ]
    (match pi.pi_buffer_id with
    | Some _ -> None
    | None -> Some pi.pi_packet)

let make ~reverse_neighbors =
  fun (ctx : App_sig.context) (st : state) event ->
    match event with
    | Event.Packet_in (sid, pi) -> (
        let pkt = pi.Message.pi_packet in
        match
          if Types.mac_is_broadcast pkt.Packet.dl_dst then None
          else App_sig.host_location ctx pkt.Packet.dl_dst
        with
        | None -> (st, [ flood_out sid pi ])
        | Some (dst_sid, dst_port) -> (
            match
              shortest_path ~reverse_neighbors (App_sig.links ctx) sid
                dst_sid
            with
            | None -> (st, [ flood_out sid pi ])
            | Some hops ->
                let pattern = Ofp_match.make ~dl_dst:pkt.Packet.dl_dst () in
                (* One rule per transit switch, plus the egress rule at the
                   destination switch — all in a single transaction. *)
                let transit =
                  List.map
                    (fun (hop_sid, out_port) ->
                      Command.install ~idle_timeout:route_idle_timeout
                        ~priority:route_priority hop_sid pattern
                        [ Action.Output out_port ])
                    hops
                in
                let egress =
                  Command.install ~idle_timeout:route_idle_timeout
                    ~priority:route_priority dst_sid pattern
                    [ Action.Output dst_port ]
                in
                let first_hop_action =
                  match hops with
                  | (_, port) :: _ -> Action.Output port
                  | [] -> Action.Output dst_port
                in
                let release =
                  Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
                    ~in_port:pi.Message.pi_in_port sid [ first_hop_action ]
                    (match pi.Message.pi_buffer_id with
                    | Some _ -> None
                    | None -> Some pkt)
                in
                let newly =
                  (dst_sid, pattern)
                  :: List.map (fun (hop_sid, _) -> (hop_sid, pattern)) hops
                in
                (newly @ st, transit @ [ egress; release ])))
    | Event.Link_down _ | Event.Switch_down _ | Event.Link_up _ ->
        (* Topology changed: routes may be stale. Tear everything down and
           let traffic re-install — a conservative RouteFlow-ish strategy
           that produces the multi-switch delete transactions NetLog must
           also be able to roll back. *)
        let deletes =
          List.map
            (fun (sid, pattern) ->
              Command.uninstall ~priority:route_priority sid pattern)
            st
        in
        ([], deletes)
    | _ -> (st, [])

let handle = make ~reverse_neighbors:false

let variant ?(prefer_high_ports = false) variant_name : (module App_sig.APP) =
  (module struct
    type nonrec state = state

    let name = variant_name
    let subscriptions = subscriptions
    let init = init
    let handle ctx st ev = make ~reverse_neighbors:prefer_high_ports ctx st ev
  end)
