lib/core/config_lang.mli: Format Runtime
