test/t_hexdump_equiv.ml: Alcotest Apps Bytes Controller Hexdump Legosdn List Message Openflow QCheck2 QCheck_alcotest String T_util
