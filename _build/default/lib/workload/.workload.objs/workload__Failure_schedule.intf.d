lib/workload/failure_schedule.mli: Netsim Openflow
