(* Wall-clock micro-benchmarks, one cluster per experiment of
   EXPERIMENTS.md. Absolute numbers depend on the host; the experiments
   care about the *relative* shape (e.g. isolation costs a serialization
   roundtrip per hop; checkpoint cost grows with state size; recovery cost
   grows with transaction size). *)

open Bechamel
open Toolkit
open Netsim
module Event = Controller.Event
module Command = Controller.Command
module App_sig = Controller.App_sig
module Monolithic = Controller.Monolithic
module Runtime = Legosdn.Runtime
module Recovery_policy = Legosdn.Recovery_policy
module Crashpad = Legosdn.Crashpad

let null_context : App_sig.context =
  {
    now = (fun () -> 0.);
    switches = (fun () -> []);
    switch_ports = (fun _ -> []);
    links = (fun () -> []);
    host_location = (fun _ -> None);
  }

let packet_in_event ?(sid = 1) ?(in_port = 100) src dst =
  Event.Packet_in
    ( sid,
      {
        Openflow.Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Openflow.Message.No_match;
        pi_packet = Openflow.Packet.tcp ~src_host:src ~dst_host:dst ();
      } )

let absolute_policy_config =
  {
    Runtime.default_config with
    Runtime.crashpad =
      {
        Crashpad.default_config with
        Crashpad.policy = Recovery_policy.uniform Recovery_policy.Absolute;
      };
  }

(* ------------------------------------------------------------------ *)
(* E4 — isolation latency: one event through the control loop,
   monolithic direct call vs AppVisor RPC + checkpoint. *)

let bench_isolation () =
  let mono_net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3)
  in
  let mono = Monolithic.create mono_net [ (App_sig.app (module Apps.Hub)) ] in
  Monolithic.step mono;
  let lego_net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3)
  in
  let lego = Runtime.create lego_net [ (App_sig.app (module Apps.Hub)) ] in
  Runtime.step lego;
  let ev = packet_in_event 1 2 in
  let cmds =
    [
      Command.install 1 Openflow.Ofp_match.any [ Openflow.Action.Output 1 ];
      Command.packet_out 1
        [ Openflow.Action.Output 2 ]
        (Some (Openflow.Packet.tcp ~src_host:1 ~dst_host:2 ()));
    ]
  in
  [
    Test.make ~name:"monolithic-dispatch"
      (Staged.stage (fun () ->
           Monolithic.dispatch_event mono ev;
           ignore (Net.poll mono_net)));
    Test.make ~name:"legosdn-dispatch"
      (Staged.stage (fun () ->
           Runtime.dispatch_event lego ev;
           ignore (Net.poll lego_net)));
    Test.make ~name:"wire-event-roundtrip"
      (Staged.stage (fun () -> ignore (Legosdn.Wire.roundtrip_event ev)));
    Test.make ~name:"wire-commands-roundtrip"
      (Staged.stage (fun () -> ignore (Legosdn.Wire.roundtrip_commands cmds)));
  ]

(* ------------------------------------------------------------------ *)
(* E5 — checkpoint cost vs application state size. *)

let learning_switch_with_macs n =
  let inst = ref (App_sig.instantiate (App_sig.app (module Apps.Learning_switch))) in
  for i = 1 to n do
    let ev =
      packet_in_event ~sid:1 ~in_port:(1 + (i mod 40)) i ((i mod 97) + 1)
    in
    let inst', _ = App_sig.handle !inst null_context ev in
    inst := inst'
  done;
  !inst

let bench_checkpoint () =
  List.map
    (fun n ->
      let inst = learning_switch_with_macs n in
      Test.make
        ~name:(Printf.sprintf "snapshot-%d-macs" n)
        (Staged.stage (fun () -> ignore (App_sig.snapshot inst))))
    [ 100; 1_000; 10_000 ]
  @ [
      (let inst = learning_switch_with_macs 1_000 in
       let snap = App_sig.snapshot inst in
       Test.make ~name:"restore-1000-macs"
         (Staged.stage (fun () -> ignore (App_sig.restore inst snap))));
    ]

(* ------------------------------------------------------------------ *)
(* E6 — crash recovery cost vs transaction size: the app emits [n]
   installs and dies mid-emission; Crash-Pad rolls all of them back,
   restores the snapshot and applies the (Absolute) policy. *)

let partial_crasher n : App_sig.app =
  App_sig.app
  (module struct
    type state = int

    let name = Printf.sprintf "partial_crasher_%d" n
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    let handle _ st = function
      | Event.Packet_in _ ->
          let cmds =
            List.init n (fun i ->
                Command.install 1
                  (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
                  [ Openflow.Action.Output 1 ])
          in
          raise (App_sig.Crash_with_partial cmds)
      | _ -> (st, [])
  end)

let bench_recovery () =
  List.map
    (fun n ->
      let net =
        Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
      in
      let rt =
        Runtime.create ~config:absolute_policy_config net [ partial_crasher n ]
      in
      Runtime.step rt;
      let ev = packet_in_event 1 2 in
      Test.make
        ~name:(Printf.sprintf "recover-txn-%d-ops" n)
        (Staged.stage (fun () -> Runtime.dispatch_event rt ev)))
    [ 1; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E8/E9 — NetLog eager apply + rollback vs the delay-buffer ablation. *)

let txn_commands n =
  List.init n (fun i ->
      Command.Flow
        ( 1,
          Openflow.Message.flow_add
            (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
            [ Openflow.Action.Output 1 ] ))

let engine_bench name engine n finish =
  let cmds = txn_commands n in
  Test.make ~name
    (Staged.stage (fun () ->
         let txn = engine.Legosdn.Txn_engine.begin_txn ~app:"bench" in
         List.iter (fun c -> ignore (txn.Legosdn.Txn_engine.apply c)) cmds;
         match finish with
         | `Commit ->
             txn.Legosdn.Txn_engine.commit ();
             (* Leave the table as found so iterations stay uniform. *)
             let cleanup = engine.Legosdn.Txn_engine.begin_txn ~app:"clean" in
             ignore
               (cleanup.Legosdn.Txn_engine.apply
                  (Command.Flow
                     (1, Openflow.Message.flow_delete Openflow.Ofp_match.any)));
             cleanup.Legosdn.Txn_engine.commit ()
         | `Abort -> txn.Legosdn.Txn_engine.abort ()))

let bench_netlog () =
  List.concat_map
    (fun n ->
      let net =
        Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
      in
      ignore (Net.poll net);
      let netlog = Legosdn.Netlog.engine (Legosdn.Netlog.create net) in
      let buffer = Legosdn.Delay_buffer.engine (Legosdn.Delay_buffer.create net) in
      [
        engine_bench (Printf.sprintf "netlog-commit-%d" n) netlog n `Commit;
        engine_bench (Printf.sprintf "netlog-abort-%d" n) netlog n `Abort;
        engine_bench (Printf.sprintf "buffer-commit-%d" n) buffer n `Commit;
        engine_bench (Printf.sprintf "buffer-abort-%d" n) buffer n `Abort;
      ])
    [ 1; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Substrate costs: codec, data plane, invariant checker. *)

let bench_substrate () =
  let fm =
    Openflow.Message.message
      (Openflow.Message.Flow_mod
         (Openflow.Message.flow_add
            (Openflow.Ofp_match.make ~tp_dst:80 ())
            [ Openflow.Action.Output 2 ]))
  in
  let fm_bytes = Openflow.Codec.encode fm in
  let net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 8)
  in
  ignore (Net.poll net);
  (* Program the chain for h1 -> h8. *)
  let dst_mac = Openflow.Types.mac_of_host 8 in
  for sid = 1 to 7 do
    ignore
      (Net.send net sid
         (Openflow.Message.message
            (Openflow.Message.Flow_mod
               (Openflow.Message.flow_add
                  (Openflow.Ofp_match.make ~dl_dst:dst_mac ())
                  [ Openflow.Action.Output (if sid = 1 then 1 else 2) ]))))
  done;
  ignore
    (Net.send net 8
       (Openflow.Message.message
          (Openflow.Message.Flow_mod
             (Openflow.Message.flow_add
                (Openflow.Ofp_match.make ~dl_dst:dst_mac ())
                [ Openflow.Action.Output 100 ]))));
  let pkt = Openflow.Packet.tcp ~src_host:1 ~dst_host:8 () in
  [
    Test.make ~name:"codec-encode-flow-mod"
      (Staged.stage (fun () -> ignore (Openflow.Codec.encode fm)));
    Test.make ~name:"codec-decode-flow-mod"
      (Staged.stage (fun () -> ignore (Openflow.Codec.decode fm_bytes)));
    Test.make ~name:"dataplane-8-hop-delivery"
      (Staged.stage (fun () ->
           Net.inject net 1 pkt;
           ignore (Net.poll net)));
    Test.make ~name:"invariant-check-linear-8"
      (Staged.stage (fun () ->
           ignore (Invariants.Checker.check (Invariants.Snapshot.of_net net))));
  ]

(* ------------------------------------------------------------------ *)
(* Crash-Pad machinery: policy decisions, transformations, quarantine
   lookups — all on every dispatch, so their unit cost matters. *)

let bench_crashpad_machinery () =
  let policy =
    Legosdn.Recovery_policy.make ~default:Legosdn.Recovery_policy.Equivalence
      [
        { Legosdn.Recovery_policy.app = Some "firewall"; kind = None;
          action = Legosdn.Recovery_policy.No_compromise };
        { Legosdn.Recovery_policy.app = None; kind = Some Event.K_switch_down;
          action = Legosdn.Recovery_policy.Equivalence };
        { Legosdn.Recovery_policy.app = Some "lb"; kind = Some Event.K_packet_in;
          action = Legosdn.Recovery_policy.Absolute };
      ]
  in
  let links_of _ =
    List.init 8 (fun i ->
        { Event.src_switch = 1; src_port = i + 1; dst_switch = i + 2; dst_port = 1 })
  in
  let quarantine = Legosdn.Quarantine.create () in
  let ev = packet_in_event 1 2 in
  for i = 1 to 50 do
    Legosdn.Quarantine.add quarantine ~app:"app" (packet_in_event i (i + 1))
  done;
  [
    Test.make ~name:"policy-decide"
      (Staged.stage (fun () ->
           ignore (Legosdn.Recovery_policy.decide policy ~app:"router" Event.K_packet_in)));
    Test.make ~name:"transform-switch-down"
      (Staged.stage (fun () ->
           ignore (Legosdn.Transform.equivalents ~links_of (Event.Switch_down 1))));
    Test.make ~name:"quarantine-miss-lookup-50-entries"
      (Staged.stage (fun () ->
           ignore (Legosdn.Quarantine.blocked quarantine ~app:"app" ev)));
  ]

(* Topology-sized costs: STP recompute and invariant checks on a fat-tree. *)

let bench_topology_scale () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree 4) in
  let rt = Runtime.create net [ (App_sig.app (module Apps.Spanning_tree)) ] in
  Runtime.step rt;
  let services_links =
    Controller.Services.context
      (Runtime.services rt)
  in
  let snap = Invariants.Snapshot.of_net net in
  [
    Test.make ~name:"stp-recompute-fat-tree-k4"
      (Staged.stage (fun () ->
           ignore
             (Apps.Spanning_tree.handle services_links
                (Apps.Spanning_tree.init ())
                (Event.Link_up
                   { Event.src_switch = 1; src_port = 1; dst_switch = 5; dst_port = 1 }))));
    Test.make ~name:"invariant-check-fat-tree-k4"
      (Staged.stage (fun () -> ignore (Invariants.Checker.check snap)));
    Test.make ~name:"snapshot-of-fat-tree-k4"
      (Staged.stage (fun () -> ignore (Invariants.Snapshot.of_net net)));
  ]

(* End-to-end scenario throughput: one full 10-virtual-second availability
   run per iteration (the unit of work behind E7). *)

let bench_scenario () =
  let scenario =
    Workload.Scenario.make
      ~make_topology:(fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
      ~duration:10.
      ~traffic:
        (Workload.Traffic.schedule
           (Workload.Traffic.uniform_pairs ~seed:3 ~hosts:[ 1; 2; 3 ] ~flows:30
              ~duration:10. ()))
      ~tick_interval:1. ()
  in
  [
    Test.make ~name:"scenario-10s-legosdn"
      (Staged.stage (fun () ->
           ignore
             (Workload.Scenario.run scenario ~make_driver:(fun net ->
                  Workload.Scenario.legosdn_driver
                    (Runtime.create net [ (App_sig.app (module Apps.Learning_switch)) ])))));
    Test.make ~name:"scenario-10s-monolithic"
      (Staged.stage (fun () ->
           ignore
             (Workload.Scenario.run scenario ~make_driver:(fun net ->
                  Workload.Scenario.monolithic_driver
                    (Monolithic.create net [ (App_sig.app (module Apps.Learning_switch)) ])))));
  ]

(* ------------------------------------------------------------------ *)
(* E20 — the control-channel fault model and the reliable-delivery layer:
   verdict draw cost, the barrier-chasing overhead on a perfect channel,
   and a full send+drain cycle over 10% loss. Each iteration installs and
   then deletes one rule so tables stay small and uniform. *)

let bench_channel () =
  let next_xid = ref 1 in
  let fresh () =
    let x = !next_xid in
    next_xid := x + 1;
    x
  in
  let pattern = Openflow.Ofp_match.make ~tp_src:1 () in
  let add () =
    Openflow.Message.message ~xid:(fresh ())
      (Openflow.Message.Flow_mod
         (Openflow.Message.flow_add ~priority:10 pattern
            [ Openflow.Action.Output 1 ]))
  in
  let delete () =
    Openflow.Message.message ~xid:(fresh ())
      (Openflow.Message.Flow_mod
         (Openflow.Message.flow_delete ~strict:true ~priority:10 pattern))
  in
  let ch = Channel.create ~config:(Channel.lossy 0.1) ~seed:3 () in
  let direct_net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll direct_net);
  let perfect_net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll perfect_net);
  let perfect_rel = Legosdn.Reliable.create perfect_net in
  let lossy_clock = Clock.create () in
  let lossy_net =
    Net.create ~channel:(Channel.lossy 0.1) ~channel_seed:7 lossy_clock
      (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll lossy_net);
  let lossy_rel = Legosdn.Reliable.create lossy_net in
  [
    Test.make ~name:"channel-verdict-10pct-loss"
      (Staged.stage (fun () -> ignore (Channel.forward ch)));
    Test.make ~name:"install+delete-direct"
      (Staged.stage (fun () ->
           ignore (Net.send direct_net 1 (add ()));
           ignore (Net.send direct_net 1 (delete ()))));
    Test.make ~name:"install+delete-reliable-perfect"
      (Staged.stage (fun () ->
           ignore (Legosdn.Reliable.send perfect_rel 1 (add ()));
           ignore (Legosdn.Reliable.send perfect_rel 1 (delete ()))));
    Test.make ~name:"install+delete-reliable-10pct-loss"
      (Staged.stage (fun () ->
           ignore (Legosdn.Reliable.send lossy_rel 1 (add ()));
           ignore (Legosdn.Reliable.send lossy_rel 1 (delete ()));
           while Legosdn.Reliable.pending_count lossy_rel > 0 do
             Clock.advance_by lossy_clock 0.1;
             Legosdn.Reliable.tick lossy_rel
           done));
  ]

(* ------------------------------------------------------------------ *)
(* The incremental invariant checker on the Crash-Pad hot path: a k=4
   fat-tree whose tables were populated by a learning switch (exact-match
   rules — the flow-table hash fast path), checked repeatedly.

   - "full" freezes the world and traces every pair, every iteration —
     the pre-incremental behaviour.
   - "warm" is the steady state between transactions: nothing changed, so
     the check is version scans plus cache reads.
   - "cold" builds a fresh engine per iteration — the price of the first
     check, which must stay close to "full".
   - "check-flow-mods-*" screen a 3-rule hypothetical batch, the exact
     call Crash-Pad makes per transaction. *)

let bench_incremental () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree 4) in
  let mono = Monolithic.create net [ (App_sig.app (module Apps.Learning_switch)) ] in
  Monolithic.step mono;
  let hosts = Topology.hosts (Net.topology net) in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            Clock.advance_by clock 0.001;
            Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
            Monolithic.step mono
          end)
        hosts)
    hosts;
  let warm_engine = Invariants.Incremental.create net in
  ignore (Invariants.Incremental.check warm_engine);
  let mods =
    List.init 3 (fun i ->
        ( i + 1,
          Openflow.Message.flow_add
            (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
            [ Openflow.Action.Output 1 ] ))
  in
  let mods_engine = Invariants.Incremental.create net in
  ignore (Invariants.Incremental.check mods_engine);
  [
    Test.make ~name:"invariant-check-fat-tree-k4-full"
      (Staged.stage (fun () ->
           ignore (Invariants.Checker.check (Invariants.Snapshot.of_net net))));
    Test.make ~name:"invariant-check-fat-tree-k4-warm"
      (Staged.stage (fun () ->
           ignore (Invariants.Incremental.check warm_engine)));
    Test.make ~name:"invariant-check-fat-tree-k4-cold"
      (Staged.stage (fun () ->
           ignore
             (Invariants.Incremental.check (Invariants.Incremental.create net))));
    Test.make ~name:"check-flow-mods-full"
      (Staged.stage (fun () ->
           ignore
             (Invariants.Checker.check_flow_mods
                (Invariants.Snapshot.of_net net)
                mods)));
    Test.make ~name:"check-flow-mods-incremental"
      (Staged.stage (fun () ->
           ignore (Invariants.Incremental.check_flow_mods mods_engine mods)));
  ]

(* ------------------------------------------------------------------ *)
(* E23 — delta checkpointing: take cost (full blob vs chunked delta) on a
   warmed learning switch, restore latency across journal depths
   (materialize + replay), and a deterministic steady-state byte-accounting
   experiment. The byte numbers are not timed — they are exact counters
   from the checkpoint store, surfaced through the JSON "derived" section
   so CI can assert the delta-vs-full reduction without rerunning. *)

module Checkpoint = Legosdn.Checkpoint

let ckpt_stats : (string * float) list ref = ref []

(* One availability-style run: warm the app on an 8-host pair mix, then
   keep replaying the same pairs (steady state — learned state no longer
   changes), checkpointing with k=1 so every event pays a snapshot. Only
   steady-state bytes are reported; the warm-up is charged to neither. *)
let steady_state_bytes make_ckpt =
  let c = make_ckpt () in
  let live = ref (App_sig.instantiate (App_sig.app (module Apps.Learning_switch))) in
  let feed src dst =
    if Checkpoint.due c then Checkpoint.take c !live;
    let ev = packet_in_event ~sid:1 ~in_port:src src dst in
    let updated, _ = App_sig.handle !live null_context ev in
    live := updated;
    Checkpoint.record_applied c ev
  in
  let sweep () =
    for src = 1 to 16 do
      for dst = 1 to 16 do
        if src <> dst then feed src dst
      done
    done
  in
  sweep ();
  let base = Checkpoint.bytes_written c in
  for _round = 1 to 10 do
    sweep ()
  done;
  (float_of_int (Checkpoint.bytes_written c - base), c)

let bench_ckpt () =
  let full_bytes, _ = steady_state_bytes (fun () -> Checkpoint.create ~every:1) in
  let delta_bytes, delta_c =
    steady_state_bytes (fun () ->
        Checkpoint.create_delta ~cadence:(Checkpoint.Every 1) ())
  in
  ckpt_stats :=
    [
      ("ckpt-steady-full-bytes-written", full_bytes);
      ("ckpt-steady-delta-bytes-written", delta_bytes);
      ( "ckpt-bytes-ratio-full-over-delta",
        if delta_bytes > 0. then full_bytes /. delta_bytes else nan );
      ("ckpt-chunk-hits", float_of_int (Checkpoint.chunk_hits delta_c));
      ("ckpt-chunk-misses", float_of_int (Checkpoint.chunk_misses delta_c));
      ( "ckpt-bytes-deduped",
        float_of_int (Checkpoint.chunk_bytes_deduped delta_c) );
    ];
  let inst = learning_switch_with_macs 1_000 in
  let full = Checkpoint.create ~every:1 in
  Checkpoint.take full inst;
  let delta = Checkpoint.create_delta ~cadence:(Checkpoint.Every 1) () in
  Checkpoint.take delta inst;
  let restore_test n =
    let c = Checkpoint.create_delta ~cadence:(Checkpoint.Every 100_000) () in
    Checkpoint.take c inst;
    for i = 1 to n do
      Checkpoint.record_applied c
        (packet_in_event ~sid:1 ~in_port:(1 + (i mod 40)) ((i mod 97) + 1)
           (((i + 13) mod 97) + 1))
    done;
    Test.make
      ~name:(Printf.sprintf "restore-journal-%d" n)
      (Staged.stage (fun () ->
           match Checkpoint.restore_point c with
           | None -> ()
           | Some (snap, journal) ->
               let restored = ref (App_sig.restore inst snap) in
               List.iter
                 (fun ev ->
                   let updated, _ = App_sig.handle !restored null_context ev in
                   restored := updated)
                 journal))
  in
  [
    Test.make ~name:"take-full-1000-macs"
      (Staged.stage (fun () -> Checkpoint.take full inst));
    (* Steady state for the delta store: every chunk hits, so this measures
       the chunking + digest walk rather than storage. *)
    Test.make ~name:"take-delta-1000-macs"
      (Staged.stage (fun () -> Checkpoint.take delta inst));
  ]
  @ List.map restore_test [ 0; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E22 — observability overhead: the same control-loop hot paths with the
   no-op tracer vs a live ring-buffer tracer, plus the tracer's unit
   costs. The derived "obs-*-overhead" ratios are the acceptance numbers:
   tracing on must stay within a few percent of tracing off on the
   dispatch path, and the no-op tracer is a single branch. *)

let bench_obs () =
  let make_rt () =
    let net =
      Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 3)
    in
    let rt = Runtime.create net [ (App_sig.app (module Apps.Hub)) ] in
    Runtime.step rt;
    (net, rt)
  in
  let off_net, off_rt = make_rt () in
  let on_net, on_rt = make_rt () in
  (* A modest ring reaches wraparound (steady state) during warm-up, so
     the measured slope is the tracer's per-span work rather than the
     live-heap growth of a still-filling 65536-slot ring. *)
  let ring = 8192 in
  Runtime.set_tracer on_rt
    (Obs.Tracer.create ~capacity:ring
       ~now:(fun () -> Clock.now (Net.clock on_net))
       ());
  let ev = packet_in_event 1 2 in
  (* The per-transaction screening call (E21's hot path), traced vs not. *)
  let screen_net = Net.create (Clock.create ()) (Topo_gen.fat_tree 4) in
  ignore (Net.poll screen_net);
  let screen_engine = Invariants.Incremental.create screen_net in
  ignore (Invariants.Incremental.check screen_engine);
  let screen_tracer =
    Obs.Tracer.create ~capacity:ring
      ~now:(fun () -> Clock.now (Net.clock screen_net))
      ()
  in
  let mods =
    List.init 3 (fun i ->
        Command.Flow
          ( (i mod 4) + 1,
            Openflow.Message.flow_add
              (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
              [ Openflow.Action.Output 1 ] ))
  in
  let screen tracer =
    ignore
      (Legosdn.Detector.check_byzantine ~tracer ~engine:screen_engine
         ~invariants:Invariants.Checker.default screen_net mods)
  in
  let prim = Obs.Tracer.create ~capacity:4096 ~now:(fun () -> 0.) () in
  let hist = Obs.Histogram.create () in
  [
    Test.make ~name:"dispatch-tracing-off"
      (Staged.stage (fun () ->
           Runtime.dispatch_event off_rt ev;
           ignore (Net.poll off_net)));
    Test.make ~name:"dispatch-tracing-on"
      (Staged.stage (fun () ->
           Runtime.dispatch_event on_rt ev;
           ignore (Net.poll on_net)));
    Test.make ~name:"screen-tracing-off"
      (Staged.stage (fun () -> screen Obs.Tracer.noop));
    Test.make ~name:"screen-tracing-on"
      (Staged.stage (fun () -> screen screen_tracer));
    Test.make ~name:"span-start-finish"
      (Staged.stage (fun () ->
           Obs.Tracer.finish prim (Obs.Tracer.start prim Obs.Span.App_handle)));
    Test.make ~name:"tracer-instant"
      (Staged.stage (fun () -> Obs.Tracer.instant prim Obs.Span.Inv_cache_hit));
    Test.make ~name:"histogram-observe"
      (Staged.stage (fun () -> Obs.Histogram.observe hist 3.2e-6));
  ]

(* ------------------------------------------------------------------ *)

(* E24: replicated-cluster fail-over. Two acceptance numbers: the
   virtual-time gap between a leader kill and its successor serving
   traffic (an exact counter from one scripted kill run, surfaced via the
   derived section), and the wall-clock overhead of driving a 3-replica
   cluster versus a single controller on the same fat-tree workload (the
   derived "failover-replication-overhead" ratio, budget <= 2x). *)

let failover_stats : (string * float) list ref = ref []

let bench_failover () =
  let cluster_config =
    {
      Runtime.default_config with
      Runtime.cluster =
        { Runtime.replicas = 3; election_lo = 0.15; election_hi = 0.3 };
    }
  in
  let fat_tree_world () =
    let clock = Clock.create () in
    let topo = Topo_gen.fat_tree 4 in
    let net = Net.create clock topo in
    let hosts = Array.of_list (Topology.hosts topo) in
    let n = Array.length hosts in
    let counter = ref 0 in
    let inject () =
      incr counter;
      let src = hosts.(!counter mod n)
      and dst = hosts.((!counter + 3) mod n) in
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ())
    in
    (clock, net, inject)
  in
  (* Exact counters from one scripted kill run: traffic, a kill at the
     midpoint, traffic to the end. *)
  let clock, net, inject = fat_tree_world () in
  let apps : App_sig.app list =
    (* STP prunes the fat-tree's loops before learning-switch floods, so
       the drive reaches a steady state instead of a broadcast storm. *)
    [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Learning_switch)) ]
  in
  let killed = Cluster.create ~config:cluster_config ~seed:11 net apps in
  for i = 1 to 40 do
    Clock.advance_by clock 0.5;
    Net.tick net;
    inject ();
    if i = 20 then Cluster.arm_kill killed;
    Cluster.tick killed
  done;
  failover_stats :=
    [
      ( "failover-latency-virtual-s",
        match Cluster.failover_latencies killed with
        | d :: _ -> d
        | [] -> Float.nan );
      ( "failover-replication-bytes",
        float_of_int (Cluster.replication_bytes killed) );
      ( "failover-state-transfers",
        float_of_int (Cluster.transfers_shipped killed) );
    ];
  (* Wall-clock cost of one driver tick, replicated vs solo, in steady
     state: both sides are warmed through the learning storm first, so
     the slope compares replication machinery, not first-contact
     flooding. The solo thunk pairs [tick] with [step] — the cluster's
     tick polls and dispatches internally, the bare runtime needs both. *)
  let cl_clock, cl_net, cl_inject = fat_tree_world () in
  let cluster =
    Cluster.create ~config:cluster_config ~seed:12 cl_net apps
  in
  let drive_cluster () =
    Clock.advance_by cl_clock 0.5;
    Net.tick cl_net;
    cl_inject ();
    Cluster.tick cluster
  in
  let solo_clock, solo_net, solo_inject = fat_tree_world () in
  let solo = Runtime.create solo_net apps in
  let drive_solo () =
    Clock.advance_by solo_clock 0.5;
    Net.tick solo_net;
    solo_inject ();
    Runtime.tick solo;
    Runtime.step solo
  in
  for _ = 1 to 60 do
    drive_cluster ();
    drive_solo ()
  done;
  [
    Test.make ~name:"drive-tick-cluster-3-fat-tree-k4"
      (Staged.stage drive_cluster);
    Test.make ~name:"drive-tick-solo-fat-tree-k4"
      (Staged.stage drive_solo);
  ]

(* ------------------------------------------------------------------ *)

(* E25 — sharded, batched event dispatch. A packet-in flood on a fat-tree
   k=8 against an ARP responder warmed with a directory-scale binding set
   (16k entries), so the sequential engine's per-event obligations — a
   full-state checkpoint at the default k=1 cadence plus a barrier per
   state-altering message — dominate the per-event cost. The sharded
   engine amortizes both across a batch (one checkpoint per app per
   batch, one barrier per touched switch) and reuses codec buffers, which
   is exactly the claimed >=10x. Both drives process the same burst of
   events per step, so the ns/run ratio is the events/sec ratio. *)

let dispatch_stats : (string * float) list ref = ref []

let bench_dispatch () =
  let burst = 32 in
  let bindings = 16_384 in
  let world dispatch =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.fat_tree 8) in
    let hosts = Array.of_list (Topology.hosts (Net.topology net)) in
    let nh = Array.length hosts in
    let config = { Runtime.default_config with Runtime.dispatch } in
    let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Arp_responder)) ] in
    Runtime.step rt;
    (* Teach the responder its directory with gratuitous replies: ARP
       *requests* for unknown addresses would flood, and a fat-tree's
       loops turn one flood into a broadcast storm. *)
    let gratuitous j =
      Openflow.Packet.make ~dl_type:Openflow.Packet.ethertype_arp ~nw_proto:2
        ~dl_src:(Openflow.Types.mac_of_host j)
        ~dl_dst:Openflow.Types.mac_broadcast
        ~nw_src:(Openflow.Types.ip_of_host j)
        ~nw_dst:(Openflow.Types.ip_of_host j) ~tp_src:0 ~tp_dst:0
        ~payload_len:28 ()
    in
    Array.iter
      (fun src ->
        Net.inject net src (gratuitous src);
        Runtime.step rt)
      hosts;
    (* Chunked below the storm-guard budget so nothing is shed. *)
    let chunk = 1024 in
    for base = 0 to (bindings / chunk) - 1 do
      for j = (base * chunk) + 1 to (base + 1) * chunk do
        Net.inject net hosts.(j mod nh) (gratuitous (1000 + j))
      done;
      Runtime.step rt
    done;
    let counter = ref 0 in
    let drive () =
      (* A burst of ARP requests for known addresses: every packet-in
         draws a unicast packet-out reply, no data-plane amplification. *)
      incr counter;
      for i = 0 to burst - 1 do
        let src = hosts.((!counter + i) mod nh) in
        let dst = 1001 + (((!counter * burst) + i) mod bindings) in
        Net.inject net src
          (Openflow.Packet.arp_request ~src_host:src ~dst_host:dst)
      done;
      Runtime.step rt
    in
    (rt, drive)
  in
  let seq_rt, drive_seq = world Runtime.Sequential in
  let sh_rt, drive_sh = world Runtime.default_sharded in
  for _ = 1 to 3 do
    drive_seq ();
    drive_sh ()
  done;
  let seq_before = Runtime.events_processed seq_rt in
  let sh_before = Runtime.events_processed sh_rt in
  drive_seq ();
  drive_sh ();
  dispatch_stats :=
    [
      ( "dispatch-flood-events-per-step-seq",
        float_of_int (Runtime.events_processed seq_rt - seq_before) );
      ( "dispatch-flood-events-per-step-sharded",
        float_of_int (Runtime.events_processed sh_rt - sh_before) );
      ("dispatch-flood-shed-seq", float_of_int (Runtime.events_shed seq_rt));
      ("dispatch-flood-shed-sharded", float_of_int (Runtime.events_shed sh_rt));
    ];
  [
    Test.make ~name:"flood-step-seq-fat-tree-k8" (Staged.stage drive_seq);
    Test.make ~name:"flood-step-sharded-fat-tree-k8" (Staged.stage drive_sh);
  ]

(* ------------------------------------------------------------------ *)

(* E26 — scale to fat-tree k=16. Three sub-experiments:

   - match-storage interning: install one dl_dst rule per (switch, host)
     pair of a k=16 fabric (320 x 1024 entries sharing 1024 distinct
     patterns) through the production path (Flow_entry.make ->
     Flow_table.add), then measure the heap reachable from the stored
     patterns with interning on vs off. The ratio is the fabric-wide
     match-storage saving (budget: >= 4x).
   - bounded trace cache: a trace-driven learning-switch campaign on a
     k=4 fat-tree with a deliberately tiny [trace_cache_budget], sampling
     the inv-trace-cache-bytes gauge after every step. Evictions > 0 and
     peak <= budget show the cache holds memory flat under load.
   - trace-driven flood throughput at k = 4 / 8 / 16: the ARP-responder
     harness of E25 (gratuitous warm-up, no data-plane amplification),
     but with the request order drawn from a Trace_gen plan — heavy-tailed
     bursts over a diurnal curve, the load shape big fabrics actually see.
     Live-words deltas per world and events-per-step counters land in the
     derived section; events/sec per k is computed from the fitted
     ns/run. *)

let scale_stats : (string * float) list ref = ref []

let match_storage_words ~interned k =
  let was = Openflow.Ofp_match.interning_enabled () in
  Openflow.Ofp_match.set_interning interned;
  Fun.protect
    ~finally:(fun () -> Openflow.Ofp_match.set_interning was)
    (fun () ->
      let topo = Topo_gen.fat_tree k in
      let switches = Topology.switches topo in
      let hosts = Topology.hosts topo in
      let tables =
        List.map
          (fun _ ->
            let table = Flow_table.create () in
            List.iter
              (fun h ->
                Flow_table.add table
                  (Flow_entry.make ~priority:10 ~now:0.
                     (Openflow.Ofp_match.make
                        ~dl_dst:(Openflow.Types.mac_of_host h)
                        ())
                     [ Openflow.Action.Output 1 ]))
              hosts;
            table)
          switches
      in
      let patterns =
        Array.of_list
          (List.concat_map
             (fun table ->
               List.map
                 (fun e -> e.Flow_entry.pattern)
                 (Flow_table.entries table))
             tables)
      in
      (* [reachable_words] counts shared blocks once, so interned tables
         charge each distinct pattern a single time. *)
      (Array.length patterns, Obj.reachable_words (Obj.repr patterns)))

let bounded_cache_campaign () =
  let budget = 65_536 in
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree 4) in
  let hosts = Topology.hosts (Net.topology net) in
  let config =
    {
      Runtime.default_config with
      Runtime.trace_cache_budget = Some budget;
      Runtime.dispatch = Runtime.default_sharded;
    }
  in
  (* STP first so the learning switch works on a loop-free overlay. *)
  let rt =
    Runtime.create ~config net
      [ (App_sig.app (module Apps.Spanning_tree)); (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.step rt;
  let w =
    {
      Runtime.default_workload_config with
      Runtime.w_seed = 42;
      Runtime.w_rate = 60.;
      Runtime.w_churn = 0.1;
    }
  in
  let injections =
    Workload.Trace_gen.injections ~config:w ~hosts ~duration:8. ()
  in
  let m = Runtime.metrics rt in
  let peak = ref 0 in
  List.iter
    (fun i ->
      Clock.advance_by clock
        (Float.max 0. (i.Workload.Traffic.at -. Clock.now clock));
      Net.tick net;
      Net.inject net i.Workload.Traffic.src i.Workload.Traffic.packet;
      Runtime.step rt;
      peak := max !peak (Legosdn.Metrics.inv_cache_bytes m))
    injections;
  [
    ("scale-trace-cache-budget-bytes", float_of_int budget);
    ("scale-trace-cache-peak-bytes", float_of_int !peak);
    ( "scale-trace-cache-evictions",
      float_of_int (Legosdn.Metrics.inv_evictions m) );
  ]

let scale_world k =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.fat_tree k) in
  let hosts = Array.of_list (Topology.hosts (Net.topology net)) in
  let config =
    { Runtime.default_config with Runtime.dispatch = Runtime.default_sharded }
  in
  let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Arp_responder)) ] in
  Runtime.step rt;
  (* Gratuitous replies teach the responder every binding without the
     broadcast storm an unknown-address request would start (see E25). *)
  let gratuitous j =
    Openflow.Packet.make ~dl_type:Openflow.Packet.ethertype_arp ~nw_proto:2
      ~dl_src:(Openflow.Types.mac_of_host j)
      ~dl_dst:Openflow.Types.mac_broadcast
      ~nw_src:(Openflow.Types.ip_of_host j)
      ~nw_dst:(Openflow.Types.ip_of_host j) ~tp_src:0 ~tp_dst:0
      ~payload_len:28 ()
  in
  Array.iter
    (fun src ->
      Net.inject net src (gratuitous src);
      Runtime.step rt)
    hosts;
  (* The drive replays a Trace_gen plan as ARP requests for known
     addresses: heavy-tailed src/dst bursts, every packet-in answered by
     one unicast packet-out. *)
  let w =
    {
      Runtime.default_workload_config with
      Runtime.w_seed = k;
      Runtime.w_rate = 200.;
    }
  in
  let plan =
    Workload.Trace_gen.plan ~config:w ~hosts:(Array.to_list hosts)
      ~duration:30. ()
  in
  let flows = Array.of_list plan.Workload.Trace_gen.flows in
  let nf = Array.length flows in
  assert (nf > 0);
  let burst = 32 in
  let cursor = ref 0 in
  let drive () =
    for _ = 1 to burst do
      let f = flows.(!cursor mod nf) in
      incr cursor;
      Net.inject net f.Workload.Traffic.src_host
        (Openflow.Packet.arp_request ~src_host:f.Workload.Traffic.src_host
           ~dst_host:f.Workload.Traffic.dst_host)
    done;
    Runtime.step rt
  in
  (rt, drive)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let bench_scale () =
  scale_stats := [];
  let entries, interned_words = match_storage_words ~interned:true 16 in
  let _, fresh_words = match_storage_words ~interned:false 16 in
  scale_stats :=
    [
      ("scale-match-entries", float_of_int entries);
      ("scale-match-words-interned", float_of_int interned_words);
      ("scale-match-words-fresh", float_of_int fresh_words);
      ( "scale-match-intern-ratio",
        float_of_int fresh_words /. float_of_int interned_words );
    ]
    @ bounded_cache_campaign ();
  List.map
    (fun k ->
      let before = live_words () in
      let rt, drive = scale_world k in
      let after = live_words () in
      for _ = 1 to 3 do
        drive ()
      done;
      let ev_before = Runtime.events_processed rt in
      drive ();
      scale_stats :=
        !scale_stats
        @ [
            ( Printf.sprintf "scale-live-words-k%d" k,
              float_of_int (after - before) );
            ( Printf.sprintf "scale-flood-events-per-step-k%d" k,
              float_of_int (Runtime.events_processed rt - ev_before) );
          ];
      Test.make
        ~name:(Printf.sprintf "trace-step-fat-tree-k%d" k)
        (Staged.stage drive))
    [ 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E27 — declarative policy compiler: compile throughput, plus the full
   pipeline a policy-derived compromise pays (recompile against the
   post-failure topology, diff against installed intent, differential
   agreement on a probe set, invariant check over the flow-mods),
   against the hand-coded transform it subsumes. *)

let policy_stats : (string * float) list ref = ref []

let bench_policy () =
  policy_stats := [];
  let switches n = List.init n (fun i -> i + 1) in
  (* Bidirectional chain matching [Topo_gen.linear]'s port plan: port 1
     faces down-chain, port 2 up-chain, port 100 attaches the host. *)
  let chain_links n =
    List.concat_map
      (fun i ->
        [
          { Event.src_switch = i; src_port = 2; dst_switch = i + 1; dst_port = 1 };
          { Event.src_switch = i + 1; src_port = 1; dst_switch = i; dst_port = 2 };
        ])
      (List.init (n - 1) (fun i -> i + 1))
  in
  (* The policy_router shape: one Dl_dst route bundle per destination,
     every switch forwarding along the chain towards it. *)
  let routes ~fabric:n ~dests:m =
    Policy.union_all
      (List.init m (fun h ->
           let mac = Openflow.Types.mac_of_host (h + 1) in
           let dst = (h mod n) + 1 in
           Policy.union_all
             (List.map
                (fun sw ->
                  let out =
                    if sw = dst then 100 else if sw < dst then 2 else 1
                  in
                  Policy.at sw
                    (Policy.seq
                       (Policy.filter (Policy.Test (Policy.Dl_dst mac)))
                       (Policy.forward out)))
                (switches n))))
  in
  let firewall = Apps.Policy_firewall.intent in
  let routes_16x64 = routes ~fabric:16 ~dests:64 in
  policy_stats :=
    [
      ( "policy-rows-firewall-16sw",
        float_of_int
          (Policy.table_rows (Policy.compile ~switches:(switches 16) firewall))
      );
      ( "policy-rows-routes-16sw-64dst",
        float_of_int
          (Policy.table_rows
             (Policy.compile ~switches:(switches 16) routes_16x64)) );
    ];
  (* The compromise pipeline on a live fabric, exactly the work
     [Crashpad.sync_intent] does per candidate rule-set: switch 4 has
     died, so the intent is recompiled over the survivors, diffed against
     the tables installed before the failure, checked against the
     reference denotation on a derived probe set, and finally screened by
     the safety invariants. *)
  let net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 8)
  in
  let live = switches 8 in
  let survivors = List.filter (fun s -> s <> 4) live in
  let ports _ = [ 100; 1; 2 ] in
  let pol = Policy.union firewall (routes ~fabric:8 ~dests:8) in
  let installed = Policy.compile ~switches:live pol in
  let verified_compromise () =
    let next = Policy.compile ~switches:survivors pol in
    let mods = Policy.flow_mods ~prev:installed ~next in
    let probes = Policy.probes ~ports next in
    let agreed = Policy.agrees ~ports ~switches:survivors pol next ~probes in
    let snap = Invariants.Snapshot.of_net net in
    let violations = Invariants.Checker.check_flow_mods snap mods in
    ignore agreed;
    ignore violations
  in
  let links_of _ = chain_links 8 in
  [
    Test.make ~name:"compile-firewall-16sw"
      (Staged.stage (fun () ->
           ignore (Policy.compile ~switches:(switches 16) firewall)));
    Test.make ~name:"compile-routes-16sw-64dst"
      (Staged.stage (fun () ->
           ignore (Policy.compile ~switches:(switches 16) routes_16x64)));
    Test.make ~name:"verified-compromise-linear-8"
      (Staged.stage verified_compromise);
    Test.make ~name:"transform-baseline-switch-down"
      (Staged.stage (fun () ->
           ignore (Legosdn.Transform.equivalents ~links_of (Event.Switch_down 4))));
  ]

(* ------------------------------------------------------------------ *)
(* E28 — N-version voting panels. One punted packet against a hub (every
   event votes: the hub never installs rules, so steady state is one
   election per injection) under three shapes: solo sandbox, a full
   3-variant panel, and an adaptive panel that has shed to its primary.
   The panel pays 3 deliveries + an election per event; the shed panel
   must be nearly indistinguishable from solo — that ratio is the MORPH
   claim, and CI budgets it. *)

let nversion_stats : (string * float) list ref = ref []

let bench_nversion () =
  let world nversion =
    let clock = Clock.create () in
    let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:2 4) in
    let hosts = Array.of_list (Topology.hosts (Net.topology net)) in
    let nh = Array.length hosts in
    let config = { Runtime.default_config with Runtime.nversion } in
    let rt = Runtime.create ~config net [ (App_sig.app (module Apps.Hub)) ] in
    Runtime.step rt;
    let counter = ref 0 in
    let drive () =
      incr counter;
      Clock.advance_by clock 0.05;
      let src = hosts.(!counter mod nh)
      and dst = hosts.((!counter + 1) mod nh) in
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      Runtime.step rt
    in
    (rt, drive)
  in
  let _, drive_solo = world None in
  let _, drive_panel =
    world
      (Some
         {
           Legosdn.Voter.nv_replicas = 3;
           nv_adaptive = false;
           nv_shed_after = 8;
         })
  in
  let shed_rt, drive_shed =
    world
      (Some
         {
           Legosdn.Voter.nv_replicas = 3;
           nv_adaptive = true;
           nv_shed_after = 4;
         })
  in
  (* Warm all three past the adaptive panel's shed point so the "shed"
     drive measures single-variant dispatch, not elections. *)
  for _ = 1 to 40 do
    drive_solo ();
    drive_panel ();
    drive_shed ()
  done;
  nversion_stats :=
    [
      ( "nversion-sheds-before-measure",
        float_of_int (Legosdn.Metrics.nv_sheds (Runtime.metrics shed_rt)) );
    ];
  [
    Test.make ~name:"event-solo-hub-linear-4" (Staged.stage drive_solo);
    Test.make ~name:"event-panel3-hub-linear-4" (Staged.stage drive_panel);
    Test.make ~name:"event-shed3-hub-linear-4" (Staged.stage drive_shed);
  ]

(* ------------------------------------------------------------------ *)

type row = { group : string; test : string; ns_per_run : float; r2 : float }

(* All measurement progress goes to stderr so that stdout carries nothing
   but the JSON when [--json -] is used (and so that [--json FILE] runs
   can be piped or captured without interleaved progress lines). *)
let measure_group ~quota (experiment, tests) =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:experiment (tests ()))
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols_result) ->
         let estimate =
           match Analyze.OLS.estimates ols_result with
           | Some [ e ] -> e
           | _ -> nan
         in
         let r2 =
           match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
         in
         (* Bechamel reports "<group>/<test>"; keep the bare test name so
            consumers can address tests without knowing their cluster. *)
         let prefix = experiment ^ "/" in
         let test =
           if String.length name > String.length prefix
              && String.sub name 0 (String.length prefix) = prefix
           then
             String.sub name (String.length prefix)
               (String.length name - String.length prefix)
           else name
         in
         { group = experiment; test; ns_per_run = estimate; r2 })

(* A noisy OLS fit (low r²) means the reported slope is not trustworthy:
   re-measure the whole group with a doubled quota (more samples damp
   scheduler noise and GC jitter) and keep the best fit per test, up to
   three attempts. Groups that still miss [min_r2] are reported with a
   warning — the JSON carries the honest r² either way, and CI asserts on
   it for the groups it consumes. *)
let run_group ~quota ~min_r2 (experiment, title, tests) =
  Printf.eprintf "\n### %s — %s\n%!" experiment title;
  let acceptable r = Float.is_nan r.r2 || r.r2 >= min_r2 in
  let better a b = if Float.is_nan b.r2 || a.r2 >= b.r2 then a else b in
  let merge best rows =
    List.map
      (fun r ->
        match List.find_opt (fun b -> b.test = r.test) best with
        | Some b -> better r b
        | None -> r)
      rows
  in
  let rec attempt q tries best =
    let rows = measure_group ~quota:q (experiment, tests) in
    let best = merge best rows in
    if List.for_all acceptable best || tries >= 3 then best
    else begin
      Printf.eprintf
        "  (noisy fit: r² < %.2f — re-measuring with quota %.2fs)\n%!" min_r2
        (q *. 2.);
      attempt (q *. 2.) (tries + 1) best
    end
  in
  let rows = attempt quota 1 [] in
  List.iter
    (fun r ->
      Printf.eprintf "  %-42s %14.1f ns/run   (r²=%.3f)%s\n%!"
        (r.group ^ "/" ^ r.test) r.ns_per_run r.r2
        (if acceptable r then "" else "   [below --min-r2]"))
    rows;
  rows

(* Hand-rolled JSON (no json library in the tree): the grammar here is
   numbers and [A-Za-z0-9._+-] names, so escaping is just strings. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.1f" f

let find_ns rows name =
  List.find_map
    (fun r -> if r.test = name then Some r.ns_per_run else None)
    rows

let ratio rows ~num ~den =
  match (find_ns rows num, find_ns rows den) with
  | Some n, Some d when d > 0. && not (Float.is_nan n || Float.is_nan d) ->
      Some (n /. d)
  | _ -> None

let write_json path rows =
  let oc = if path = "-" then stdout else open_out path in
  output_string oc "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"group\": \"%s\", \"test\": \"%s\", \"ns_per_run\": %s, \
         \"r_square\": %s}%s\n"
        (json_escape r.group) (json_escape r.test)
        (json_float r.ns_per_run)
        (if Float.is_nan r.r2 then "null" else Printf.sprintf "%.3f" r.r2)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ],\n  \"derived\": {\n";
  let derived =
    List.filter_map
      (fun (key, num, den) ->
        Option.map
          (fun v -> Printf.sprintf "    \"%s\": %.2f" key v)
          (ratio rows ~num ~den))
      [
        ( "full-over-warm-speedup",
          "invariant-check-fat-tree-k4-full",
          "invariant-check-fat-tree-k4-warm" );
        ( "cold-over-full-overhead",
          "invariant-check-fat-tree-k4-cold",
          "invariant-check-fat-tree-k4-full" );
        ( "flow-mods-full-over-incremental-speedup",
          "check-flow-mods-full",
          "check-flow-mods-incremental" );
        ("obs-dispatch-overhead", "dispatch-tracing-on", "dispatch-tracing-off");
        ("obs-screen-overhead", "screen-tracing-on", "screen-tracing-off");
        ("ckpt-take-full-over-delta", "take-full-1000-macs",
         "take-delta-1000-macs");
        ( "failover-replication-overhead",
          "drive-tick-cluster-3-fat-tree-k4",
          "drive-tick-solo-fat-tree-k4" );
        ( "dispatch-seq-over-sharded-speedup",
          "flood-step-seq-fat-tree-k8",
          "flood-step-sharded-fat-tree-k8" );
        ( "policy-compromise-over-transform",
          "verified-compromise-linear-8",
          "transform-baseline-switch-down" );
        ( "nversion-panel-overhead",
          "event-panel3-hub-linear-4",
          "event-solo-hub-linear-4" );
        ( "nversion-shed-overhead",
          "event-shed3-hub-linear-4",
          "event-solo-hub-linear-4" );
      ]
  in
  (* Exact counters from the ckpt cluster's byte-accounting experiment
     (empty unless that cluster ran). *)
  let derived =
    derived
    @ List.filter_map
        (fun k ->
          match
            ( find_ns rows (Printf.sprintf "trace-step-fat-tree-k%d" k),
              List.assoc_opt
                (Printf.sprintf "scale-flood-events-per-step-k%d" k)
                !scale_stats )
          with
          | Some ns, Some ev when ns > 0. && not (Float.is_nan ns) ->
              Some
                (Printf.sprintf "    \"scale-events-per-sec-k%d\": %.2f" k
                   (ev *. 1e9 /. ns))
          | _ -> None)
        [ 4; 8; 16 ]
    (* Compile throughput in rows/second, from the policy cluster's
       row-count stats (empty unless that cluster ran). *)
    @ List.filter_map
        (fun (test, stat, key) ->
          match (find_ns rows test, List.assoc_opt stat !policy_stats) with
          | Some ns, Some nrows when ns > 0. && not (Float.is_nan ns) ->
              Some
                (Printf.sprintf "    \"%s\": %.2f" key (nrows *. 1e9 /. ns))
          | _ -> None)
        [
          ( "compile-firewall-16sw",
            "policy-rows-firewall-16sw",
            "policy-compile-rows-per-sec-firewall" );
          ( "compile-routes-16sw-64dst",
            "policy-rows-routes-16sw-64dst",
            "policy-compile-rows-per-sec-routes" );
        ]
    @ List.map
        (fun (key, v) ->
          Printf.sprintf "    \"%s\": %.2f" (json_escape key) v)
        (!ckpt_stats @ !failover_stats @ !dispatch_stats @ !scale_stats
       @ !policy_stats @ !nversion_stats)
  in
  output_string oc (String.concat ",\n" derived);
  output_string oc "\n  }\n}\n";
  if path = "-" then flush oc
  else begin
    close_out oc;
    Printf.eprintf "\nwrote %s\n%!" path
  end

(* Test lists are thunks so that [--only] skips the setup work (traffic
   population, scenario builds) of every unselected cluster. *)
let groups () =
  [
    ("E4", "isolation / control-loop latency", bench_isolation);
    ("E5", "checkpoint cost vs state size", bench_checkpoint);
    ("E6", "crash-recovery cost vs transaction size", bench_recovery);
    ("E8-E9", "NetLog vs delay-buffer transactions", bench_netlog);
    ("substrate", "codec / data plane / invariant checker", bench_substrate);
    ("crashpad", "policy / transform / quarantine unit costs",
     bench_crashpad_machinery);
    ("topology-scale", "STP + invariants on a fat-tree", bench_topology_scale);
    ("E20", "control-channel model + reliable delivery", bench_channel);
    ("scenario", "end-to-end 10-virtual-second scenario runs", bench_scenario);
    ("invariants", "incremental vs full invariant checking", bench_incremental);
    ("obs", "tracing overhead on the hot paths (E22)", bench_obs);
    ("ckpt", "delta checkpointing: take/restore cost + bytes (E23)", bench_ckpt);
    ("failover", "replicated cluster: fail-over + replication cost (E24)",
     bench_failover);
    ("dispatch", "sequential vs sharded/batched event dispatch (E25)",
     bench_dispatch);
    ("scale", "fat-tree k=16: interned matches, bounded cache, trace load (E26)",
     bench_scale);
    ("policy", "declarative intent: compile + verified compromise (E27)",
     bench_policy);
    ("nversion", "N-version voting panels: solo vs panel vs shed (E28)",
     bench_nversion);
  ]

let () =
  let json_path = ref "" in
  let only = ref "" in
  let quota = ref 0.25 in
  let min_r2 = ref 0.95 in
  Arg.parse
    [
      ("--json", Arg.Set_string json_path,
       "FILE  also write results as JSON to FILE ('-' for stdout)");
      ("--only", Arg.Set_string only,
       "GROUP  run only the named cluster (e.g. invariants, E4)");
      ("--quota", Arg.Set_float quota,
       "SECONDS  per-test measurement budget (default 0.25)");
      ("--min-r2", Arg.Set_float min_r2,
       "R  re-measure groups whose OLS fit has r-square below R \
        (default 0.95; 0 disables)");
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench [--only GROUP] [--quota SECONDS] [--min-r2 R] [--json FILE]";
  Printf.eprintf "LegoSDN benchmark harness (see EXPERIMENTS.md for the index)\n";
  let selected =
    if !only = "" then groups ()
    else
      match List.filter (fun (g, _, _) -> g = !only) (groups ()) with
      | [] ->
          Printf.eprintf "unknown group %S (known: %s)\n" !only
            (String.concat ", " (List.map (fun (g, _, _) -> g) (groups ())));
          exit 2
      | gs -> gs
  in
  let rows =
    List.concat_map (run_group ~quota:!quota ~min_r2:!min_r2) selected
  in
  if !json_path <> "" then write_json !json_path rows
