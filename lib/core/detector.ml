open Controller
module Checker = Invariants.Checker
module Snapshot = Invariants.Snapshot

type failure =
  | Fail_stop of { detail : string; partial : Command.t list }
  | Hang
  | Byzantine of Checker.violation list
  | Unreachable of { switch : Openflow.Types.switch_id }

type timing = {
  rpc_timeout : float;
  heartbeat_interval : float;
  heartbeat_misses : int;
}

let default_timing =
  { rpc_timeout = 0.05; heartbeat_interval = 0.1; heartbeat_misses = 3 }

let detection_delay timing = function
  | Fail_stop _ -> timing.rpc_timeout
  | Hang -> timing.heartbeat_interval *. float timing.heartbeat_misses
  | Byzantine _ -> 0.
  | Unreachable _ -> timing.rpc_timeout

let of_verdict = function
  | Sandbox.Done _ -> None
  | Sandbox.Crashed { partial; detail } -> Some (Fail_stop { detail; partial })
  | Sandbox.Hung -> Some Hang

let flow_mods_of commands =
  List.filter_map
    (function Command.Flow (sid, fm) -> Some (sid, fm) | _ -> None)
    commands

let check_byzantine ?(tracer = Obs.Tracer.noop) ?engine ~invariants net
    commands =
  match flow_mods_of commands with
  | [] -> None
  | mods ->
      let attrs =
        if Obs.Tracer.enabled tracer then
          [ ("mods", string_of_int (List.length mods)) ]
        else []
      in
      Obs.Tracer.with_span tracer ~attrs Obs.Span.Detection (fun () ->
          let violations =
            match engine with
            | Some eng ->
                Invariants.Incremental.check_flow_mods ~invariants eng mods
            | None ->
                Checker.check_flow_mods ~invariants (Snapshot.of_net net) mods
          in
          match violations with
          | [] -> None
          | violations -> Some (Byzantine violations))

let describe = function
  | Fail_stop { detail; partial } ->
      if partial = [] then Printf.sprintf "fail-stop: %s" detail
      else
        Printf.sprintf "fail-stop: %s (%d commands already issued)" detail
          (List.length partial)
  | Hang -> "hang (heart-beat loss)"
  | Byzantine violations ->
      Format.asprintf "byzantine: %a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
           Checker.pp_violation)
        violations
  | Unreachable { switch } ->
      Printf.sprintf "unreachable: switch %d control channel down" switch
