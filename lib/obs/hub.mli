(** The unified subscription surface.

    One hub per runtime; everything that used to have its own callback
    hook — the event tap, the incremental-checker observer, reliable
    delivery notifications — publishes typed events here, and any number
    of subscribers listen. Subscribers are invoked synchronously in
    subscription order; an exception in one subscriber propagates to the
    publisher (as the old single-callback hooks did). *)

type delivery =
  | Sent of { sw : Openflow.Types.switch_id; xid : int }
      (** A state-altering message was put on the wire. *)
  | Queued of { sw : Openflow.Types.switch_id; xid : int }
      (** Held back behind an unacknowledged message to the same switch. *)
  | Retransmitted of { sw : Openflow.Types.switch_id; xid : int; attempt : int }
  | Acked of { sw : Openflow.Types.switch_id; xid : int }
  | Degraded of { sw : Openflow.Types.switch_id }
      (** Retry budget exhausted; switch declared degraded. *)
  | Resynced of { sw : Openflow.Types.switch_id; rules : int }
      (** Shadow-table replay after reconnection, [rules] rules replayed. *)

type event =
  | Dispatched of Controller.Event.t
      (** A network event entered the runtime dispatch loop. *)
  | Inv_cache of Invariants.Incremental.event
      (** Incremental-checker cache activity. *)
  | Delivery of delivery  (** Southbound reliable-delivery activity. *)

type t
type subscription

val create : unit -> t

val subscribe : t -> (event -> unit) -> subscription
(** Subscribers fire in subscription order. *)

val unsubscribe : t -> subscription -> unit
(** Unknown or already-cancelled subscriptions are ignored. *)

val emit : t -> event -> unit
val subscriber_count : t -> int

val pp_delivery : Format.formatter -> delivery -> unit
