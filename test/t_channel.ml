(* The control-channel fault model: seeded determinism, loss/duplication/
   delay/partition behaviour, and its wiring into Net.send. *)

open Openflow
open Netsim

let flow_msg ?(xid = 7) () =
  Message.message ~xid
    (Message.Flow_mod (Message.flow_add Ofp_match.any [ Action.Output 2 ]))

let test_perfect_channel_is_transparent () =
  let ch = Channel.create ~seed:1 () in
  for _ = 1 to 100 do
    (match Channel.forward ch with
    | Some [ 0. ] -> ()
    | _ -> Alcotest.fail "perfect channel must deliver one immediate copy");
    T_util.checkb "reply passes" true (Channel.reverse ch)
  done;
  let st = Channel.stats ch in
  T_util.checki "all sent" 100 st.Channel.sent;
  T_util.checki "none lost" 0 st.Channel.lost

let test_same_seed_same_sequence () =
  let cfg = { (Channel.lossy 0.3) with Channel.duplicate = 0.2 } in
  let a = Channel.create ~config:cfg ~seed:42 () in
  let b = Channel.create ~config:cfg ~seed:42 () in
  for _ = 1 to 500 do
    T_util.checkb "forward verdicts agree" true
      (Channel.forward a = Channel.forward b);
    T_util.checkb "reverse verdicts agree" true
      (Channel.reverse a = Channel.reverse b)
  done;
  (* A different seed diverges somewhere in 500 draws. *)
  let c = Channel.create ~config:cfg ~seed:43 () in
  let d = Channel.create ~config:cfg ~seed:42 () in
  let diverged = ref false in
  for _ = 1 to 500 do
    if Channel.forward c <> Channel.forward d then diverged := true
  done;
  T_util.checkb "different seed diverges" true !diverged

let test_loss_extremes () =
  let total = Channel.create ~config:(Channel.lossy 1.0) ~seed:3 () in
  for _ = 1 to 50 do
    T_util.checkb "loss 1.0 drops everything" true (Channel.forward total = None);
    T_util.checkb "loss 1.0 drops replies" false (Channel.reverse total)
  done;
  let none = Channel.create ~config:(Channel.lossy 0.) ~seed:3 () in
  for _ = 1 to 50 do
    T_util.checkb "loss 0 delivers everything" true (Channel.forward none <> None)
  done

let test_partition_and_heal () =
  let ch = Channel.create ~seed:9 () in
  Channel.set_partitioned ch true;
  T_util.checkb "partitioned forward drops" true (Channel.forward ch = None);
  T_util.checkb "partitioned reverse drops" false (Channel.reverse ch);
  Channel.set_partitioned ch false;
  T_util.checkb "healed forward passes" true (Channel.forward ch <> None);
  T_util.checkb "healed reverse passes" true (Channel.reverse ch);
  let st = Channel.stats ch in
  T_util.checki "loss counted" 1 st.Channel.lost;
  T_util.checki "reply loss counted" 1 st.Channel.replies_lost

let test_duplication_and_delay () =
  let dup =
    Channel.create ~config:{ Channel.perfect with Channel.duplicate = 1.0 }
      ~seed:5 ()
  in
  (match Channel.forward dup with
  | Some [ _; _ ] -> ()
  | _ -> Alcotest.fail "duplicate 1.0 must deliver two copies");
  T_util.checki "duplication counted" 1 (Channel.stats dup).Channel.duplicated;
  let slow =
    Channel.create
      ~config:{ Channel.perfect with Channel.delay = Channel.Fixed 0.25 }
      ~seed:5 ()
  in
  (match Channel.forward slow with
  | Some [ d ] -> Alcotest.(check (float 1e-9)) "fixed delay" 0.25 d
  | _ -> Alcotest.fail "one delayed copy expected");
  T_util.checki "delay counted" 1 (Channel.stats slow).Channel.delayed

(* Probability zero must not consume a random draw: perturbing one channel
   cannot shift another's sequence, and a perfect channel stays on the
   seed's behaviour byte for byte. *)
let test_zero_probability_draws_nothing () =
  let a = Channel.create ~config:(Channel.lossy 0.5) ~seed:11 () in
  let b = Channel.create ~config:(Channel.lossy 0.5) ~seed:11 () in
  (* Interleave no-op perfect sends into [b]'s life via a config flip. *)
  let verdicts ch flips =
    List.map
      (fun flip ->
        if flip then begin
          Channel.set_loss ch 0.;
          ignore (Channel.forward ch);
          Channel.set_loss ch 0.5
        end;
        Channel.forward ch <> None)
      flips
  in
  let pattern = [ false; false; false; false; false; false ] in
  let with_noise = [ true; false; true; false; true; false ] in
  T_util.checkb "zero-probability sends leave the sequence alone" true
    (verdicts a pattern = verdicts b with_noise)

let test_net_send_through_lossy_channel_is_deterministic () =
  let run () =
    let clock = Clock.create () in
    let net =
      Net.create ~channel:(Channel.lossy 0.4) ~channel_seed:21 clock
        (Topo_gen.linear ~hosts_per_switch:1 2)
    in
    ignore (Net.poll net);
    let outcomes = ref [] in
    for xid = 1 to 40 do
      let replies =
        Net.send net 1
          (Message.message ~xid (Message.Echo_request (Bytes.of_string "p")))
      in
      outcomes := (replies <> []) :: !outcomes
    done;
    (!outcomes, (Net.channel_totals net).Channel.lost)
  in
  let a = run () and b = run () in
  T_util.checkb "identical runs" true (a = b);
  T_util.checkb "some loss at 40%" true (snd a > 0)

let test_net_delayed_delivery () =
  let clock = Clock.create () in
  let net =
    Net.create
      ~channel:{ Channel.perfect with Channel.delay = Channel.Fixed 0.5 }
      clock
      (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll net);
  let replies = Net.send net 1 (flow_msg ()) in
  T_util.checkb "no synchronous effect" true (replies = []);
  T_util.checki "rule not yet installed" 0 (Flow_table.size (Net.switch net 1).Sw.table);
  Clock.advance_by clock 0.6;
  ignore (Net.poll net);
  T_util.checki "rule installed after the delay" 1
    (Flow_table.size (Net.switch net 1).Sw.table)

let test_per_switch_channels_independent () =
  let clock = Clock.create () in
  let net =
    Net.create ~channel_seed:2 clock (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  ignore (Net.poll net);
  Channel.set_loss (Net.channel net 1) 1.0;
  T_util.checkb "switch 1 unreachable" true (Net.send net 1 (flow_msg ()) = []);
  T_util.checkb "switch 2 still fine" true
    (Net.send net 2 (Message.message ~xid:8 Message.Barrier_request) <> [])

let suite =
  [
    Alcotest.test_case "perfect channel is transparent" `Quick
      test_perfect_channel_is_transparent;
    Alcotest.test_case "same seed, same sequence" `Quick test_same_seed_same_sequence;
    Alcotest.test_case "loss extremes" `Quick test_loss_extremes;
    Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "duplication and delay" `Quick test_duplication_and_delay;
    Alcotest.test_case "zero probability draws nothing" `Quick
      test_zero_probability_draws_nothing;
    Alcotest.test_case "lossy Net.send deterministic" `Quick
      test_net_send_through_lossy_channel_is_deterministic;
    Alcotest.test_case "delayed delivery" `Quick test_net_delayed_delivery;
    Alcotest.test_case "per-switch channels independent" `Quick
      test_per_switch_channels_independent;
  ]
