module Checkpoint = Legosdn.Checkpoint
module App_sig = Controller.App_sig
module Event = Controller.Event

let instance () = App_sig.instantiate (module Apps.Learning_switch)

let tick t = Event.Tick t

let test_due_before_first_event () =
  let c = Checkpoint.create ~every:5 in
  T_util.checkb "due initially" true (Checkpoint.due c);
  Checkpoint.take c (instance ());
  T_util.checkb "not due right after" false (Checkpoint.due c)

let test_every_one () =
  let c = Checkpoint.create ~every:1 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  T_util.checkb "due after each event with k=1" true (Checkpoint.due c)

let test_every_k () =
  let c = Checkpoint.create ~every:3 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  T_util.checkb "not due after 1 of 3" false (Checkpoint.due c);
  Checkpoint.record_applied c (tick 2.);
  Checkpoint.record_applied c (tick 3.);
  T_util.checkb "due after 3 of 3" true (Checkpoint.due c)

let test_restore_point_carries_journal () =
  let c = Checkpoint.create ~every:10 in
  T_util.checkb "no restore point yet" true (Checkpoint.restore_point c = None);
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  Checkpoint.record_applied c (tick 2.);
  match Checkpoint.restore_point c with
  | Some (_, journal) ->
      Alcotest.(check (list T_util.event_t)) "journal order oldest-first"
        [ tick 1.; tick 2. ] journal
  | None -> Alcotest.fail "restore point expected"

let test_take_clears_journal () =
  let c = Checkpoint.create ~every:2 in
  Checkpoint.take c (instance ());
  Checkpoint.record_applied c (tick 1.);
  Checkpoint.take c (instance ());
  T_util.checki "journal cleared" 0 (Checkpoint.journal_length c);
  T_util.checki "two snapshots accounted" 2 (Checkpoint.snapshots_taken c)

let test_bytes_accounting () =
  let c = Checkpoint.create ~every:1 in
  Checkpoint.take c (instance ());
  let first = Checkpoint.bytes_written c in
  T_util.checkb "bytes counted" true (first > 0);
  T_util.checki "last snapshot size" first (Checkpoint.last_snapshot_bytes c);
  Checkpoint.take c (instance ());
  T_util.checki "bytes accumulate" (2 * first) (Checkpoint.bytes_written c)

let test_invalid_k () =
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Checkpoint.create: every must be >= 1") (fun () ->
      ignore (Checkpoint.create ~every:0))

let suite =
  [
    Alcotest.test_case "due before first event" `Quick test_due_before_first_event;
    Alcotest.test_case "k=1 cadence" `Quick test_every_one;
    Alcotest.test_case "k=3 cadence" `Quick test_every_k;
    Alcotest.test_case "restore point journal" `Quick test_restore_point_carries_journal;
    Alcotest.test_case "take clears journal" `Quick test_take_clears_journal;
    Alcotest.test_case "byte accounting" `Quick test_bytes_accounting;
    Alcotest.test_case "invalid k" `Quick test_invalid_k;
  ]
