open Openflow
open Netsim
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox
module Crashpad = Legosdn.Crashpad
module Recovery_policy = Legosdn.Recovery_policy
module Metrics = Legosdn.Metrics
module Ticket = Legosdn.Ticket
module Resources = Legosdn.Resources
module Event = Controller.Event
module Command = Controller.Command
module App_sig = Controller.App_sig

let packet_in_event ?(sid = 1) ?(in_port = 100) src dst =
  Event.Packet_in
    ( sid,
      {
        Message.pi_buffer_id = None;
        pi_in_port = in_port;
        pi_reason = Message.No_match;
        pi_packet = T_util.tcp_packet src dst;
      } )

let fresh ?(topo = Topo_gen.linear ~hosts_per_switch:1 3) ?config apps =
  let clock = Clock.create () in
  let net = Net.create clock topo in
  let rt = Runtime.create ?config net apps in
  Runtime.step rt;
  (net, rt)

let with_policy policy =
  {
    Runtime.default_config with
    Runtime.crashpad = { Crashpad.default_config with Crashpad.policy };
  }

(* A test app that cannot survive switch-down but handles the equivalent
   link-downs fine, leaving observable marker rules. *)
module Transformable = struct
  type state = int

  let name = "transformable"
  let subscriptions = [ Event.K_switch_down; Event.K_link_down ]
  let init () = 0

  let handle _ctx st = function
    | Event.Switch_down _ -> failwith "cannot cope with switch loss"
    | Event.Link_down l ->
        ( st + 1,
          [
            Command.install ~priority:50 l.Event.dst_switch
              (Ofp_match.make ~dl_type:0x7777 ~tp_src:l.Event.src_port ())
              [];
          ] )
    | _ -> (st, [])
end

let test_failstop_recovered_and_sibling_unaffected () =
  let _, rt =
    fresh
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.Absolute))
      [
        Apps.Faulty.wrap
          ~bug:(Apps.Bug_model.crash_on Event.K_packet_in)
          (App_sig.app (module Apps.Learning_switch));
        (App_sig.app (module Apps.Firewall));
      ]
  in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  let m = Runtime.metrics rt in
  T_util.checki "crash recorded" 1 (Metrics.crashes m);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "app alive after recovery" true (Sandbox.alive ls);
  (* Firewall still sees traffic. *)
  Runtime.dispatch_event rt (packet_in_event ~sid:2 3 1);
  let fw = Option.get (Runtime.sandbox rt "firewall") in
  T_util.checkb "sibling kept processing" true (Sandbox.events_handled fw >= 2);
  (* Both packet-ins hit the every-packet_in bug: one ticket each. *)
  T_util.checki "one ticket per policy application" 2
    (List.length (Ticket.by_app (Runtime.ticket_store rt) "learning_switch"))

let test_partial_crash_rolled_back () =
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_nth_of_kind (Event.K_packet_in, 2))
      (Apps.Bug_model.Crash_partial 0.5)
  in
  let net, rt = fresh [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Flooder)) ] in
  Runtime.dispatch_event rt (packet_in_event ~sid:1 1 2);
  T_util.checki "event 1 installed its rule" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  Runtime.dispatch_event rt (packet_in_event ~sid:2 2 1);
  (* The escaped install on s2 must have been rolled back. *)
  T_util.checki "partial install rolled back" 0
    (Flow_table.size (Net.switch net 2).Sw.table);
  let tickets = Runtime.tickets rt in
  T_util.checkb "rollback recorded in ticket" true
    (List.exists (fun t -> t.Ticket.rolled_back_ops > 0) tickets)

let test_byzantine_loop_blocked () =
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_kind Event.K_packet_in)
      Apps.Bug_model.Byzantine_loop
  in
  let net, rt =
    fresh ~topo:(Topo_gen.ring 3)
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.Absolute))
      [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (packet_in_event ~sid:1 1 2);
  T_util.checki "byzantine output blocked" 1 (Metrics.byzantine_blocked (Runtime.metrics rt));
  List.iter
    (fun sid ->
      T_util.checki "no loop rules committed" 0
        (Flow_table.size (Net.switch net sid).Sw.table))
    [ 1; 2; 3 ]

let test_byzantine_blackhole_blocked () =
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_kind Event.K_packet_in)
      Apps.Bug_model.Byzantine_blackhole
  in
  let net, rt =
    fresh
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.Absolute))
      [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  T_util.checki "blocked" 1 (Metrics.byzantine_blocked (Runtime.metrics rt));
  T_util.checki "no black-hole rule" 0 (Flow_table.size (Net.switch net 1).Sw.table)

let test_hang_recovered () =
  let bug =
    Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
      Apps.Bug_model.Hang
  in
  let _, rt =
    fresh
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.Absolute))
      [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  let m = Runtime.metrics rt in
  T_util.checki "hang detected" 1 (Metrics.hangs m);
  (* Hang detection is slower than crash detection: charged as downtime. *)
  T_util.checkb "downtime charged" true
    (Metrics.app_downtime m ~app:"learning_switch" ~until:10. > 0.)

let test_no_compromise_disables () =
  let bug = Apps.Bug_model.crash_on Event.K_packet_in in
  let _, rt =
    fresh
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.No_compromise))
      [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "app taken out of service" false (Sandbox.alive ls);
  T_util.checki "disabled metric" 1 (Metrics.disabled (Runtime.metrics rt));
  (* Further events are not delivered to a disabled app. *)
  Runtime.dispatch_event rt (packet_in_event 2 1);
  T_util.checki "no more crashes" 1 (Sandbox.crash_count ls)

let test_absolute_ignores () =
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 1 in
  let _, rt =
    fresh
      ~config:(with_policy (Recovery_policy.uniform Recovery_policy.Absolute))
      [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ]
  in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  let m = Runtime.metrics rt in
  T_util.checki "ignored" 1 (Metrics.ignored m);
  T_util.checki "not transformed" 0 (Metrics.transformed m);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "app continues" true (Sandbox.alive ls)

let test_equivalence_transforms_switch_down () =
  let net, rt = fresh (App_sig.app (module Transformable : App_sig.APP) :: []) in
  (* Synthetic switch-down for s2 (the controller's view still has its
     links): the app crashes on it, Crash-Pad replays it as link-downs. *)
  Runtime.dispatch_event rt (Event.Switch_down 2);
  let m = Runtime.metrics rt in
  T_util.checki "transformed once" 1 (Metrics.transformed m);
  T_util.checki "one crash behind it" 1 (Metrics.crashes m);
  (* The link-down handler left marker rules: proof the alternative ran
     and committed. s2 had two links (to s1 and s3). *)
  let markers =
    List.length (Flow_table.entries (Net.switch net 1).Sw.table)
    + List.length (Flow_table.entries (Net.switch net 3).Sw.table)
  in
  T_util.checki "marker rules from both link-downs" 2 markers;
  match Runtime.tickets rt with
  | [ t ] ->
      T_util.checkb "ticket records the transformation" true
        (match t.Ticket.resolution with Ticket.Transformed _ -> true | _ -> false)
  | _ -> Alcotest.fail "one ticket expected"

let test_equivalence_falls_back_to_ignore () =
  (* Crash on every subscribed kind: the alternative crashes too, so the
     policy falls back to Absolute. *)
  let module Hopeless = struct
    type state = unit

    let name = "hopeless"
    let subscriptions = [ Event.K_switch_down; Event.K_link_down ]
    let init () = ()
    let handle _ _ _ : state * Command.t list = failwith "always dies"
  end in
  let _, rt = fresh [ App_sig.app (module Hopeless : App_sig.APP) ] in
  Runtime.dispatch_event rt (Event.Switch_down 2);
  let m = Runtime.metrics rt in
  T_util.checki "fell back to ignoring" 1 (Metrics.ignored m);
  T_util.checki "not recorded as transformed" 0 (Metrics.transformed m);
  T_util.checkb "multiple crashes burned trying" true (Metrics.crashes m >= 2)

let test_checkpoint_every_k_replays () =
  let config =
    {
      (with_policy (Recovery_policy.uniform Recovery_policy.Absolute)) with
      Runtime.checkpoint_every = 4;
    }
  in
  let bug = Apps.Bug_model.crash_on_nth Event.K_packet_in 4 in
  let _, rt = fresh ~config [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  Runtime.dispatch_event rt (packet_in_event 2 1);
  Runtime.dispatch_event rt (packet_in_event 3 1);
  Runtime.dispatch_event rt (packet_in_event 1 3);
  let m = Runtime.metrics rt in
  T_util.checki "crashed on 4th" 1 (Metrics.crashes m);
  T_util.checki "journal replayed (3 events since snapshot)" 3 (Metrics.replayed m);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "alive" true (Sandbox.alive ls)

let test_resource_limit_contains_leak () =
  let bug =
    Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
      (Apps.Bug_model.Leak 100_000)
  in
  let config =
    {
      Runtime.default_config with
      Runtime.crashpad =
        {
          Crashpad.default_config with
          Crashpad.limits =
            { Resources.max_state_bytes = Some 50_000; max_commands_per_event = None };
        };
    }
  in
  let _, rt = fresh ~config [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  let m = Runtime.metrics rt in
  T_util.checki "breach detected" 1 (Metrics.resource_breaches m);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "app restarted, not dead" true (Sandbox.alive ls);
  T_util.checkb "state shrunk back under the limit" true
    (Sandbox.state_size ls < 50_000)

let test_command_limit () =
  let config =
    {
      Runtime.default_config with
      Runtime.crashpad =
        {
          Crashpad.default_config with
          Crashpad.limits =
            { Resources.max_state_bytes = None; max_commands_per_event = Some 0 };
        };
    }
  in
  let net, rt = fresh ~config [ (App_sig.app (module Apps.Flooder)) ] in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  T_util.checki "breach" 1 (Metrics.resource_breaches (Runtime.metrics rt));
  T_util.checki "commands never committed" 0
    (Flow_table.size (Net.switch net 1).Sw.table)

let test_upgrade_preserves_app_state () =
  let net, rt = fresh [ (App_sig.app (module Apps.Learning_switch)) ] in
  (* Learn something. *)
  Clock.advance_by (Net.clock net) 0.1;
  Net.inject net 1 (T_util.tcp_packet 1 2);
  Runtime.step rt;
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  let state_before = Sandbox.state_size ls in
  T_util.checkb "learned something" true (Sandbox.events_handled ls > 0);
  Runtime.upgrade_controller rt;
  let ls_after = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checkb "same sandbox object" true (ls == ls_after);
  T_util.checki "state preserved across upgrade" state_before
    (Sandbox.state_size ls_after)

let test_stats_replies_routed_to_requester () =
  let _, rt = fresh [ (App_sig.app (module Apps.Monitor)); (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.tick rt;
  let monitor = Option.get (Runtime.sandbox rt "monitor") in
  (* Tick + 3 stats replies = at least 4 events into the monitor. *)
  T_util.checkb "monitor received its replies" true
    (Sandbox.events_handled monitor >= 4);
  let ls = Option.get (Runtime.sandbox rt "learning_switch") in
  T_util.checki "learning switch saw none of it" 0 (Sandbox.events_handled ls)

let test_runtime_never_dies () =
  (* Throw every failure mode at the runtime at once. *)
  let apps : App_sig.app list =
    [
      Apps.Faulty.wrap
        ~bug:(Apps.Bug_model.crash_on Event.K_packet_in)
        (App_sig.app (module Apps.Learning_switch));
      Apps.Faulty.wrap
        ~bug:(Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
                Apps.Bug_model.Hang)
        (App_sig.app (module Apps.Hub));
      Apps.Faulty.wrap
        ~bug:(Apps.Bug_model.make (Apps.Bug_model.On_kind Event.K_packet_in)
                Apps.Bug_model.Byzantine_blackhole)
        (App_sig.app (module Apps.Flooder));
      (App_sig.app (module Apps.Firewall));
    ]
  in
  let net, rt = fresh apps in
  for i = 1 to 10 do
    Clock.advance_by (Net.clock net) 0.05;
    Runtime.dispatch_event rt (packet_in_event (1 + (i mod 3)) (1 + ((i + 1) mod 3)))
  done;
  let m = Runtime.metrics rt in
  T_util.checkb "crashes happened" true (Metrics.crashes m > 0);
  T_util.checkb "hangs happened" true (Metrics.hangs m > 0);
  T_util.checkb "byzantine happened" true (Metrics.byzantine_blocked m > 0);
  let fw = Option.get (Runtime.sandbox rt "firewall") in
  (* 3 switch_up handshakes + 10 packet_ins. *)
  T_util.checki "the healthy app processed everything" 13
    (Sandbox.events_handled fw)

let test_delay_buffer_engine_end_to_end () =
  (* The whole runtime on the prototype's §4.1 engine: a partial crash
     leaves nothing behind (the buffer never flushed), and healthy events
     commit at transaction end. *)
  let config =
    {
      (with_policy (Recovery_policy.uniform Recovery_policy.Absolute)) with
      Runtime.engine = Runtime.Delay_buffer_engine;
    }
  in
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_nth_of_kind (Event.K_packet_in, 2))
      (Apps.Bug_model.Crash_partial 1.0)
  in
  let net, rt = fresh ~config [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Flooder)) ] in
  T_util.checkb "no netlog instance under the buffer engine" true
    (Runtime.netlog rt = None);
  Runtime.dispatch_event rt (packet_in_event ~sid:1 1 2);
  T_util.checki "healthy event committed at flush" 1
    (Flow_table.size (Net.switch net 1).Sw.table);
  Runtime.dispatch_event rt (packet_in_event ~sid:2 2 1);
  T_util.checki "partial emission discarded, never installed" 0
    (Flow_table.size (Net.switch net 2).Sw.table);
  T_util.checki "crash still recovered" 1 (Metrics.crashes (Runtime.metrics rt));
  let box = Option.get (Runtime.sandbox rt "flooder") in
  T_util.checkb "app alive" true (Sandbox.alive box)

let test_byzantine_blocked_under_delay_buffer () =
  (* The pre-commit invariant screen works on the buffer engine too (it is
     hypothetical, not read-from-network). *)
  let config =
    {
      (with_policy (Recovery_policy.uniform Recovery_policy.Absolute)) with
      Runtime.engine = Runtime.Delay_buffer_engine;
    }
  in
  let bug =
    Apps.Bug_model.make
      (Apps.Bug_model.On_kind Event.K_packet_in)
      Apps.Bug_model.Byzantine_blackhole
  in
  let net, rt = fresh ~config [ Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch)) ] in
  Runtime.dispatch_event rt (packet_in_event 1 2);
  T_util.checki "blocked" 1 (Metrics.byzantine_blocked (Runtime.metrics rt));
  T_util.checki "nothing installed" 0 (Flow_table.size (Net.switch net 1).Sw.table)

(* Robustness: any event stream — valid, stale or nonsensical — must flow
   through the runtime without an exception escaping, whatever the app
   does with it. *)
let random_event_gen =
  QCheck2.Gen.(
    let desc up =
      { Message.port_no = 1; hw_addr = 0; name = "eth1"; up; no_flood = false }
    in
    let* sid = int_range 0 9 in
    oneof
      [
        map (fun dst -> packet_in_event ~sid 1 dst) (int_range 0 9);
        return (Event.Switch_down sid);
        map (fun up -> Event.Port_status (sid, Message.Port_modify, desc up)) bool;
        return
          (Event.Link_down
             { Event.src_switch = sid; src_port = 1; dst_switch = sid + 1; dst_port = 1 });
        map (fun t -> Event.Tick t) (float_bound_exclusive 100.);
        return
          (Event.Flow_removed
             ( sid,
               {
                 Message.fr_pattern = Ofp_match.any;
                 fr_cookie = 0L;
                 fr_priority = 0;
                 fr_reason = Message.Removed_idle;
                 fr_duration = 0;
                 fr_idle_timeout = 0;
                 fr_packet_count = 0;
                 fr_byte_count = 0;
               } ));
      ])

let prop_runtime_total =
  QCheck2.Test.make ~name:"runtime absorbs arbitrary event streams" ~count:60
    QCheck2.Gen.(pair (int_bound 4) (list_size (int_range 1 25) random_event_gen))
    (fun (bug_choice, events) ->
      let bug =
        let open Apps.Bug_model in
        match bug_choice with
        | 0 -> make (On_kind Event.K_packet_in) Crash
        | 1 -> make (On_kind Event.K_switch_down) Hang
        | 2 -> make (On_kind Event.K_packet_in) Byzantine_blackhole
        | 3 -> make (After_events 5) Crash
        | _ -> make Never Crash
      in
      let _, rt =
        fresh
          [
            Apps.Faulty.wrap ~bug (App_sig.app (module Apps.Learning_switch));
            (App_sig.app (module Apps.Firewall));
            (App_sig.app (module Apps.Monitor));
          ]
      in
      List.iter (Runtime.dispatch_event rt) events;
      (* Every sandbox still answers; the runtime accounted for every
         delivered event. *)
      List.for_all (fun box -> Sandbox.crash_count box >= 0) (Runtime.sandboxes rt)
      && Runtime.events_processed rt >= List.length events)

let suite =
  [
    Alcotest.test_case "fail-stop recovered, sibling unaffected" `Quick
      test_failstop_recovered_and_sibling_unaffected;
    Alcotest.test_case "partial crash rolled back" `Quick test_partial_crash_rolled_back;
    Alcotest.test_case "byzantine loop blocked" `Quick test_byzantine_loop_blocked;
    Alcotest.test_case "byzantine black hole blocked" `Quick test_byzantine_blackhole_blocked;
    Alcotest.test_case "hang recovered" `Quick test_hang_recovered;
    Alcotest.test_case "no-compromise disables" `Quick test_no_compromise_disables;
    Alcotest.test_case "absolute ignores" `Quick test_absolute_ignores;
    Alcotest.test_case "equivalence transforms switch-down" `Quick
      test_equivalence_transforms_switch_down;
    Alcotest.test_case "equivalence falls back" `Quick test_equivalence_falls_back_to_ignore;
    Alcotest.test_case "checkpoint every k + replay" `Quick test_checkpoint_every_k_replays;
    Alcotest.test_case "resource limit contains leak" `Quick test_resource_limit_contains_leak;
    Alcotest.test_case "command limit" `Quick test_command_limit;
    Alcotest.test_case "upgrade preserves app state" `Quick test_upgrade_preserves_app_state;
    Alcotest.test_case "stats replies routed" `Quick test_stats_replies_routed_to_requester;
    Alcotest.test_case "runtime never dies" `Quick test_runtime_never_dies;
    Alcotest.test_case "delay-buffer engine end to end" `Quick
      test_delay_buffer_engine_end_to_end;
    Alcotest.test_case "byzantine blocked under delay buffer" `Quick
      test_byzantine_blocked_under_delay_buffer;
    QCheck_alcotest.to_alcotest prop_runtime_total;
  ]
