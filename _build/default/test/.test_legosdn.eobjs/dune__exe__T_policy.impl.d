test/t_policy.ml: Alcotest Controller Legosdn List QCheck2 QCheck_alcotest String T_util
