open Openflow

let pkt = Packet.tcp ~src_host:1 ~dst_host:2 ~sport:1000 ~dport:80 ()

let test_any_matches_everything () =
  T_util.checkb "any matches" true (Ofp_match.matches Ofp_match.any ~in_port:7 pkt)

let test_exact_matches_only_itself () =
  let m = Ofp_match.exact ~in_port:3 pkt in
  T_util.checkb "matches original" true (Ofp_match.matches m ~in_port:3 pkt);
  T_util.checkb "wrong in_port" false (Ofp_match.matches m ~in_port:4 pkt);
  let other = { pkt with Packet.tp_dst = 81 } in
  T_util.checkb "wrong field" false (Ofp_match.matches m ~in_port:3 other)

let test_single_field () =
  let m = Ofp_match.make ~tp_dst:80 () in
  T_util.checkb "matches port 80" true (Ofp_match.matches m ~in_port:1 pkt);
  let p81 = { pkt with Packet.tp_dst = 81 } in
  T_util.checkb "rejects port 81" false (Ofp_match.matches m ~in_port:1 p81)

let test_vlan_semantics () =
  let untagged_only = Ofp_match.make ~dl_vlan:None () in
  T_util.checkb "explicit-untagged matches untagged" true
    (Ofp_match.matches untagged_only ~in_port:1 pkt);
  let tagged = { pkt with Packet.dl_vlan = Some 5 } in
  T_util.checkb "explicit-untagged rejects tagged" false
    (Ofp_match.matches untagged_only ~in_port:1 tagged);
  let vlan5 = Ofp_match.make ~dl_vlan:(Some 5) () in
  T_util.checkb "vlan 5 matches" true (Ofp_match.matches vlan5 ~in_port:1 tagged)

let test_subsumes () =
  let wide = Ofp_match.make ~dl_type:Packet.ethertype_ip () in
  let narrow = Ofp_match.make ~dl_type:Packet.ethertype_ip ~tp_dst:80 () in
  T_util.checkb "wide subsumes narrow" true (Ofp_match.subsumes wide narrow);
  T_util.checkb "narrow does not subsume wide" false
    (Ofp_match.subsumes narrow wide);
  T_util.checkb "any subsumes all" true (Ofp_match.subsumes Ofp_match.any narrow);
  T_util.checkb "self subsumption" true (Ofp_match.subsumes narrow narrow)

let test_overlaps () =
  let a = Ofp_match.make ~tp_dst:80 () in
  let b = Ofp_match.make ~nw_proto:6 () in
  let c = Ofp_match.make ~tp_dst:443 () in
  T_util.checkb "orthogonal fields overlap" true (Ofp_match.overlaps a b);
  T_util.checkb "conflicting values do not" false (Ofp_match.overlaps a c)

let test_wildcard_count () =
  T_util.checki "any has 11 wildcards" 11 (Ofp_match.wildcard_count Ofp_match.any);
  T_util.checki "exact has none" 0
    (Ofp_match.wildcard_count (Ofp_match.exact ~in_port:1 pkt))

let encode_decode m =
  let w = Buf.writer () in
  Ofp_match.encode w m;
  Ofp_match.decode (Buf.reader (Buf.contents w))

let test_codec_roundtrip_corners () =
  List.iter
    (fun m -> Alcotest.check T_util.match_t "roundtrip" m (encode_decode m))
    [
      Ofp_match.any;
      Ofp_match.exact ~in_port:5 pkt;
      Ofp_match.make ~dl_vlan:None ();
      Ofp_match.make ~dl_vlan:(Some 100) ();
      Ofp_match.make ~in_port:1 ~tp_dst:443 ();
    ]

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"match codec roundtrip" ~count:500 T_util.Gen.ofp_match
    (fun m -> encode_decode m = m)

let prop_subsumes_implies_matches =
  QCheck2.Test.make ~name:"subsumption is sound w.r.t. matching" ~count:500
    QCheck2.Gen.(pair T_util.Gen.ofp_match (pair T_util.Gen.packet (int_range 1 8)))
    (fun (m, (p, in_port)) ->
      (* Any packet matched by exact(p) is matched by every pattern that
         subsumes exact(p). *)
      let e = Ofp_match.exact ~in_port p in
      if Ofp_match.subsumes m e then Ofp_match.matches m ~in_port p else true)

let prop_exact_matches_self =
  QCheck2.Test.make ~name:"exact pattern matches its packet" ~count:500
    QCheck2.Gen.(pair T_util.Gen.packet (int_range 1 8))
    (fun (p, in_port) ->
      Ofp_match.matches (Ofp_match.exact ~in_port p) ~in_port p)

(* Hash-consing must be a pure representation change: the interned
   representative of a pattern is behaviorally indistinguishable from the
   fresh record it replaced, and the codec round-trip of any pattern
   re-interns to the very same shared block. *)
let prop_intern_behavioral =
  QCheck2.Test.make ~name:"interned match is behaviorally identical"
    ~count:500
    QCheck2.Gen.(
      pair T_util.Gen.ofp_match (pair T_util.Gen.packet (int_range 1 8)))
    (fun (m, (p, in_port)) ->
      let i = Ofp_match.intern m in
      Ofp_match.equal i m && Ofp_match.equal m i
      && Ofp_match.hash i = Ofp_match.hash m
      && Ofp_match.subsumes i m && Ofp_match.subsumes m i
      && Ofp_match.matches i ~in_port p = Ofp_match.matches m ~in_port p
      && encode_decode i = encode_decode m
      (* decode yields a fresh record; interning it finds [i] again *)
      && Ofp_match.intern (encode_decode m) == i)

let test_intern_sharing () =
  let fresh () = Ofp_match.make ~tp_dst:8080 ~nw_proto:6 () in
  let a = Ofp_match.intern (fresh ()) in
  let b = Ofp_match.intern (fresh ()) in
  T_util.checkb "structurally equal patterns share one block" true (a == b);
  T_util.checkb "re-interning the representative is the identity" true
    (Ofp_match.intern a == a);
  let was = Ofp_match.interning_enabled () in
  Ofp_match.set_interning false;
  let c = fresh () in
  T_util.checkb "disabled interning returns its argument" true
    (Ofp_match.intern c == c);
  Ofp_match.set_interning was

let prop_overlap_symmetric =
  QCheck2.Test.make ~name:"overlap is symmetric" ~count:300
    QCheck2.Gen.(pair T_util.Gen.ofp_match T_util.Gen.ofp_match)
    (fun (a, b) -> Ofp_match.overlaps a b = Ofp_match.overlaps b a)

let suite =
  [
    Alcotest.test_case "wildcard matches everything" `Quick test_any_matches_everything;
    Alcotest.test_case "exact match is exact" `Quick test_exact_matches_only_itself;
    Alcotest.test_case "single-field match" `Quick test_single_field;
    Alcotest.test_case "vlan three-state semantics" `Quick test_vlan_semantics;
    Alcotest.test_case "subsumption" `Quick test_subsumes;
    Alcotest.test_case "overlap" `Quick test_overlaps;
    Alcotest.test_case "wildcard count" `Quick test_wildcard_count;
    Alcotest.test_case "codec corner cases" `Quick test_codec_roundtrip_corners;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_subsumes_implies_matches;
    QCheck_alcotest.to_alcotest prop_exact_matches_self;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_intern_behavioral;
    Alcotest.test_case "intern shares and toggles" `Quick test_intern_sharing;
  ]
