(* legosdn_cli — run a LegoSDN (or monolithic baseline) scenario from the
   command line.

   Examples:
     dune exec bin/legosdn_cli.exe -- run --topo ring:5 --apps learning_switch,firewall
     dune exec bin/legosdn_cli.exe -- run --arch monolithic \
        --bug crash:packet_in --duration 30
     dune exec bin/legosdn_cli.exe -- run --policy-file my.policy --verbose
     dune exec bin/legosdn_cli.exe -- check-policy my.policy *)

open Netsim
module Event = Controller.Event
module App_sig = Controller.App_sig
module Runtime = Legosdn.Runtime
module Recovery_policy = Legosdn.Recovery_policy
module Crashpad = Legosdn.Crashpad
module Scenario = Workload.Scenario
module Traffic = Workload.Traffic

(* ---------------- parsers for the small CLI DSLs ---------------- *)

let parse_topology s =
  let fail () =
    `Error
      (false,
       Printf.sprintf
         "cannot parse topology %S (expected linear:N, ring:N, star:N, \
          tree:D:F, mesh:N, fat-tree:K or random:SEED:N:EXTRA)"
         s)
  in
  match String.split_on_char ':' s with
  | [ "linear"; n ] -> `Ok (fun () -> Topo_gen.linear ~hosts_per_switch:1 (int_of_string n))
  | [ "ring"; n ] -> `Ok (fun () -> Topo_gen.ring ~hosts_per_switch:1 (int_of_string n))
  | [ "star"; n ] -> `Ok (fun () -> Topo_gen.star ~hosts_per_switch:1 (int_of_string n))
  | [ "tree"; d; f ] ->
      `Ok
        (fun () ->
          Topo_gen.tree ~hosts_per_leaf:1 ~depth:(int_of_string d)
            ~fanout:(int_of_string f) ())
  | [ "mesh"; n ] -> `Ok (fun () -> Topo_gen.mesh ~hosts_per_switch:1 (int_of_string n))
  | [ "fat-tree"; k ] -> `Ok (fun () -> Topo_gen.fat_tree (int_of_string k))
  | [ "random"; seed; n; extra ] ->
      `Ok
        (fun () ->
          Topo_gen.random ~hosts_per_switch:1 ~seed:(int_of_string seed)
            ~switches:(int_of_string n) ~extra_links:(int_of_string extra) ())
  | _ -> fail ()

let app_of_name = Apps.Suite.find

let kind_of_name name =
  List.find_opt (fun k -> Event.kind_name k = name) Event.all_kinds

let parse_bug s =
  (* EFFECT:TRIGGER, e.g. crash:packet_in, hang:switch_down,
     crash-nth:packet_in:5, byz-loop:packet_in, leak:packet_in:4096 *)
  let trigger_of k =
    match kind_of_name k with
    | Some kind -> Ok (Apps.Bug_model.On_kind kind)
    | None -> Error (Printf.sprintf "unknown event kind %S" k)
  in
  let open Apps.Bug_model in
  let result =
    match String.split_on_char ':' s with
    | [ "crash"; k ] -> Result.map (fun t -> make t Crash) (trigger_of k)
    | [ "hang"; k ] -> Result.map (fun t -> make t Hang) (trigger_of k)
    | [ "crash-nth"; k; n ] -> (
        match kind_of_name k with
        | Some kind -> Ok (crash_on_nth kind (int_of_string n))
        | None -> Error (Printf.sprintf "unknown event kind %S" k))
    | [ "byz-loop"; k ] -> Result.map (fun t -> make t Byzantine_loop) (trigger_of k)
    | [ "byz-blackhole"; k ] ->
        Result.map (fun t -> make t Byzantine_blackhole) (trigger_of k)
    | [ "leak"; k; bytes ] ->
        Result.map (fun t -> make t (Leak (int_of_string bytes))) (trigger_of k)
    | _ ->
        Error
          "expected EFFECT:EVENT_KIND (crash|hang|byz-loop|byz-blackhole), \
           crash-nth:KIND:N or leak:KIND:BYTES"
  in
  match result with Ok bug -> `Ok bug | Error e -> `Error (false, e)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- the run command ---------------- *)

let run_scenario make_topology arch app_names bug policy_file config_file
    workload_flag duration trace_out trace_buffer delta_ckpt nversion verbose =
  let apps =
    List.filter_map
      (fun name ->
        match app_of_name name with
        | Some m -> Some (name, m)
        | None ->
            Printf.eprintf "warning: unknown app %S skipped\n" name;
            None)
      app_names
  in
  if apps = [] then begin
    Printf.eprintf "error: no valid applications selected\n";
    exit 2
  end;
  let apps =
    match (bug, apps) with
    | None, _ -> List.map snd apps
    | Some bug, (first_name, first) :: rest ->
        if verbose then
          Printf.printf "injecting bug [%s] into %s\n"
            (Apps.Bug_model.describe bug)
            first_name;
        Apps.Faulty.wrap ~bug first :: List.map snd rest
    | Some _, [] -> []
  in
  let policy =
    match policy_file with
    | None -> Recovery_policy.uniform Recovery_policy.Equivalence
    | Some path -> (
        match Legosdn.Recovery_policy_lang.parse (read_file path) with
        | Ok p -> p
        | Error e ->
            Printf.eprintf "error: %s: %s\n" path
              (Format.asprintf "%a" Legosdn.Recovery_policy_lang.pp_error e);
            exit 2)
  in
  let config =
    match config_file with
    | Some path -> (
        match Legosdn.Config_lang.parse (read_file path) with
        | Ok c -> c
        | Error e ->
            Printf.eprintf "error: %s: %s\n" path
              (Format.asprintf "%a" Legosdn.Config_lang.pp_error e);
            exit 2)
    | None ->
        {
          Runtime.default_config with
          Runtime.crashpad = { Crashpad.default_config with Crashpad.policy };
        }
  in
  let config =
    if delta_ckpt then
      { config with Runtime.checkpoint_mode = Runtime.Ckpt_delta_adaptive }
    else config
  in
  let config =
    (* --nversion overrides the config file; 1 turns panels off. *)
    match nversion with
    | None -> config
    | Some n when n <= 1 -> { config with Runtime.nversion = None }
    | Some n ->
        {
          config with
          Runtime.nversion =
            Some { Legosdn.Voter.default_config with Legosdn.Voter.nv_replicas = n };
        }
  in
  let probe_topo = make_topology () in
  let hosts = Topology.hosts probe_topo in
  (* --workload overrides the config file; absent both, the classic
     all-pairs + uniform mix. Trace-driven load is the only mix that
     scales to big fabrics: all-pairs is quadratic in hosts (a fat-tree
     k=16 has 1024 hosts, i.e. ~10^6 pairs). *)
  let workload_cfg =
    match (workload_flag, config.Runtime.workload) with
    | Some `Trace, Some w -> Some w
    | Some `Trace, None -> Some Runtime.default_workload_config
    | Some `Pairs, _ -> None
    | None, w -> w
  in
  let traffic =
    match workload_cfg with
    | Some w ->
        Workload.Trace_gen.injections ~config:w ~hosts ~duration ()
    | None ->
        Traffic.schedule
          (Traffic.all_pairs_once ~hosts ~start:0.3 ~spacing:0.1
          @ Traffic.uniform_pairs ~seed:7 ~hosts
              ~flows:(10 * List.length hosts) ~duration ())
  in
  if verbose then
    Printf.printf "traffic: %d injection(s) (%s workload)\n"
      (List.length traffic)
      (match workload_cfg with Some _ -> "trace-driven" | None -> "all-pairs");
  let scenario =
    Scenario.make ~make_topology ~duration ~traffic ~tick_interval:1.
      ~restart_delay:10. ()
  in
  if trace_out <> None && arch = "monolithic" then
    Printf.eprintf
      "warning: --trace-out is ignored for the monolithic baseline (no \
       runtime to trace)\n";
  let runtime_holder = ref None in
  let report =
    match arch with
    | "monolithic" ->
        Scenario.run scenario ~make_driver:(fun net ->
            Scenario.monolithic_driver (Controller.Monolithic.create net apps))
    | _ ->
        Scenario.run scenario ~make_driver:(fun net ->
            let rt = Runtime.create ~config net apps in
            if trace_out <> None then
              (* Virtual time for span placement; the host's real clock for
                 durations, so the exported timeline carries genuine
                 per-stage latencies (experiment E22). *)
              Runtime.set_tracer rt
                (Obs.Tracer.create ~capacity:trace_buffer
                   ~wall:Unix.gettimeofday
                   ~now:(fun () -> Clock.now (Net.clock net))
                   ());
            runtime_holder := Some rt;
            Scenario.legosdn_driver rt)
  in
  Format.printf "%a@." Scenario.pp_report report;
  (match (!runtime_holder, trace_out) with
  | Some rt, Some path ->
      let tracer = Runtime.tracer rt in
      let spans = Obs.Tracer.spans tracer in
      Obs.Export.save path spans;
      Printf.printf "trace: %d span(s) written to %s (%d recorded, %d \
                     dropped by the ring)\n"
        (List.length spans) path
        (Obs.Tracer.recorded tracer)
        (Obs.Tracer.dropped tracer);
      if verbose then
        Format.printf "span latencies:@.%a@." Obs.Tracer.pp_summary tracer
  | _ -> ());
  (match !runtime_holder with
  | Some rt when verbose ->
      Format.printf "@.metrics: %a@." Legosdn.Metrics.pp (Runtime.metrics rt);
      let net = Runtime.net rt in
      let ch = Netsim.Net.channel_totals net in
      Format.printf
        "channel: sent=%d lost=%d duplicated=%d delayed=%d replies-lost=%d \
         dups-suppressed=%d@."
        ch.Netsim.Channel.sent ch.Netsim.Channel.lost
        ch.Netsim.Channel.duplicated ch.Netsim.Channel.delayed
        ch.Netsim.Channel.replies_lost
        (Netsim.Net.dups_suppressed net);
      (match Runtime.reliable rt with
      | Some rel ->
          Format.printf "reliable: pending=%d divergence=%d degraded=%d@."
            (Legosdn.Reliable.pending_count rel)
            (Legosdn.Reliable.divergence rel)
            (Legosdn.Reliable.degraded_count rel)
      | None -> ());
      List.iter
        (fun box ->
          let c = Legosdn.Sandbox.checkpoint_store box in
          Format.printf
            "checkpoint[%s]: %s snapshots=%d written=%dB last=%dB journal=%d \
             chunk-hits=%d chunk-misses=%d deduped=%dB@."
            (Legosdn.Sandbox.name box)
            (if Legosdn.Checkpoint.is_delta c then "delta" else "full")
            (Legosdn.Checkpoint.snapshots_taken c)
            (Legosdn.Checkpoint.bytes_written c)
            (Legosdn.Checkpoint.last_snapshot_bytes c)
            (Legosdn.Checkpoint.journal_length c)
            (Legosdn.Checkpoint.chunk_hits c)
            (Legosdn.Checkpoint.chunk_misses c)
            (Legosdn.Checkpoint.chunk_bytes_deduped c))
        (Runtime.sandboxes rt);
      let tickets = Runtime.tickets rt in
      Format.printf "tickets: %d@." (List.length tickets);
      List.iter (fun t -> Format.printf "%a@." Legosdn.Ticket.pp t) tickets
  | _ -> ());
  `Ok ()

(* ---------------- record / minimize: the trace workflow ---------------- *)

(* An observer app that records every event it is shown; a CLI-side tool,
   so a module-level recorder is fine. *)
let cli_recorder = Workload.Trace_io.recorder ()

module Recorder_app = struct
  type state = int

  let name = "trace_recorder"
  let subscriptions = Event.all_kinds
  let init () = 0

  let handle _ st ev =
    Workload.Trace_io.record cli_recorder ev;
    (st + 1, [])
end

let record_trace make_topology app_names duration out_path =
  let apps =
    List.filter_map app_of_name app_names
    @ [ App_sig.app (module Recorder_app : App_sig.APP) ]
  in
  let probe_topo = make_topology () in
  let hosts = Topology.hosts probe_topo in
  let traffic =
    Traffic.schedule
      (Traffic.all_pairs_once ~hosts ~start:0.3 ~spacing:0.1
      @ Traffic.uniform_pairs ~seed:7 ~hosts ~flows:(10 * List.length hosts)
          ~duration ())
  in
  let scenario =
    Scenario.make ~make_topology ~duration ~traffic ~tick_interval:1. ()
  in
  let _ =
    Scenario.run scenario ~make_driver:(fun net ->
        Scenario.legosdn_driver (Runtime.create net apps))
  in
  let events = Workload.Trace_io.recorded cli_recorder in
  Workload.Trace_io.save out_path events;
  Printf.printf "recorded %d events to %s\n" (List.length events) out_path;
  `Ok ()

let minimize_trace trace_path app_name bug =
  match app_of_name app_name with
  | None ->
      Printf.eprintf "error: unknown app %S\n" app_name;
      exit 2
  | Some base ->
      let faulty = Apps.Faulty.wrap ~bug base in
      let trace = Workload.Trace_io.load trace_path in
      Printf.printf "loaded %d events from %s\n" (List.length trace) trace_path;
      let ctx : App_sig.context =
        {
          now = (fun () -> 0.);
          switches = (fun () -> []);
          switch_ports = (fun _ -> []);
          links = (fun () -> []);
          host_location = (fun _ -> None);
        }
      in
      if not (Legosdn.Sts.crashes_on (App_sig.to_legacy faulty) ctx trace) then begin
        Printf.printf "the trace does not crash %s with bug [%s]\n" app_name
          (Apps.Bug_model.describe bug);
        `Ok ()
      end
      else begin
        let minimal, calls = Legosdn.Sts.minimize (App_sig.to_legacy faulty) ctx trace in
        Printf.printf
          "minimal causal sequence: %d of %d events (%d oracle calls)\n"
          (List.length minimal) (List.length trace) calls;
        List.iter
          (fun ev -> Format.printf "  %a@." Controller.Event.pp ev)
          minimal;
        `Ok ()
      end

(* ---------------- the validate-trace command ---------------- *)

let validate_trace path =
  match Obs.Export.load path with
  | Error e ->
      Printf.eprintf "%s: cannot decode: %s\n" path e;
      exit 1
  | Ok spans -> (
      match Obs.Export.validate spans with
      | Error e ->
          Printf.eprintf "%s: ill-formed trace: %s\n" path e;
          exit 1
      | Ok () ->
          let kinds = Obs.Export.kinds spans in
          Printf.printf "%s: OK — %d span(s), kinds: %s\n" path
            (List.length spans)
            (if kinds = [] then "(none)"
             else String.concat ", " (List.map Obs.Span.kind_name kinds));
          (* Per-kind latency digest, recomputed from the file itself. *)
          List.iter
            (fun kind ->
              let hist = Obs.Histogram.create () in
              List.iter
                (fun (s : Obs.Span.t) ->
                  if s.kind = kind && not (Obs.Span.is_instant s) then
                    Obs.Histogram.observe hist (Obs.Span.duration s))
                spans;
              if Obs.Histogram.count hist > 0 then
                Format.printf "  %-10s %a@." (Obs.Span.kind_name kind)
                  Obs.Histogram.pp hist)
            kinds;
          `Ok ())

(* ---------------- the check-policy command ---------------- *)

let check_config path =
  match Legosdn.Config_lang.parse (read_file path) with
  | Ok c ->
      Printf.printf "%s: OK\n%s" path (Legosdn.Config_lang.print c);
      `Ok ()
  | Error e ->
      Printf.eprintf "%s: %s\n" path
        (Format.asprintf "%a" Legosdn.Config_lang.pp_error e);
      exit 1

let check_policy path =
  match Legosdn.Recovery_policy_lang.parse (read_file path) with
  | Ok p ->
      Printf.printf "%s: OK (%d rules)\n%s" path
        (List.length (Recovery_policy.rules p))
        (Legosdn.Recovery_policy_lang.print p);
      `Ok ()
  | Error e ->
      Printf.eprintf "%s: %s\n" path
        (Format.asprintf "%a" Legosdn.Recovery_policy_lang.pp_error e);
      exit 1

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

let topo_conv = Arg.conv ((fun s -> parse_topology s |> function
  | `Ok v -> Ok v
  | `Error (_, msg) -> Error (`Msg msg)),
  fun fmt _ -> Format.pp_print_string fmt "<topology>")

let bug_conv = Arg.conv ((fun s -> parse_bug s |> function
  | `Ok v -> Ok v
  | `Error (_, msg) -> Error (`Msg msg)),
  fun fmt bug -> Format.pp_print_string fmt (Apps.Bug_model.describe bug))

let topo_arg =
  Arg.(value
       & opt topo_conv (fun () -> Topo_gen.linear ~hosts_per_switch:1 3)
       & info [ "topo" ] ~docv:"TOPO"
           ~doc:"Topology: linear:N, ring:N, star:N, tree:D:F, mesh:N, \
                 fat-tree:K, random:SEED:N:EXTRA.")

let workload_arg =
  Arg.(value
       & opt (some (enum [ ("pairs", `Pairs); ("trace", `Trace) ])) None
       & info [ "workload" ] ~docv:"KIND"
           ~doc:"Traffic mix: $(b,pairs) (every host pair once plus uniform \
                 random flows; quadratic in hosts) or $(b,trace) \
                 (trace-driven heavy-tailed load with diurnal shape and \
                 host churn; the only mix that scales to fat-tree:16). \
                 Overrides the $(b,workload) directive of \
                 $(b,--config-file); defaults to that directive, else \
                 pairs.")

let arch_arg =
  Arg.(value
       & opt (enum [ ("legosdn", "legosdn"); ("monolithic", "monolithic") ]) "legosdn"
       & info [ "arch" ] ~docv:"ARCH" ~doc:"Controller architecture.")

let apps_arg =
  Arg.(value
       & opt (list string) [ "learning_switch" ]
       & info [ "apps" ] ~docv:"APPS"
           ~doc:(Printf.sprintf
        "Comma-separated applications (%s). A bug, if any, is injected \
         into the first one."
        (String.concat ", " Apps.Suite.names)))

let bug_arg =
  Arg.(value
       & opt (some bug_conv) None
       & info [ "bug" ] ~docv:"BUG"
           ~doc:"Inject a bug into the first app, e.g. crash:packet_in, crash-nth:packet_in:5, hang:switch_down, byz-loop:packet_in, leak:packet_in:4096.")

let policy_arg =
  Arg.(value
       & opt (some file) None
       & info [ "policy-file" ] ~docv:"FILE"
           ~doc:"Compromise policy in the Crash-Pad policy language.")

let config_arg =
  Arg.(value
       & opt (some file) None
       & info [ "config-file" ] ~docv:"FILE"
           ~doc:"Full runtime configuration in the operator config language \
                 (supersedes $(b,--policy-file)).")

let duration_arg =
  Arg.(value & opt float 20. & info [ "duration" ] ~docv:"SECONDS"
         ~doc:"Virtual scenario duration.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print metrics and tickets.")

let delta_ckpt_arg =
  Arg.(value & flag
       & info [ "delta-ckpt" ]
           ~doc:"Use content-chunked delta checkpoints with the adaptive \
                 cadence (overrides the checkpoint mode of \
                 $(b,--config-file)).")

let nversion_arg =
  Arg.(value
       & opt (some int) None
       & info [ "nversion" ] ~docv:"N"
           ~doc:"Run every app as an N-variant voting panel (paper §3.4): \
                 each event's command sets are voted on, divergent variants \
                 are outvoted and re-synced from the majority snapshot, and \
                 MORPH-style adaptive shedding drops to a single variant \
                 while the panel stays clean. 1 disables panels; overrides \
                 $(b,--config-file).")

let trace_out_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the run's span trace as Chrome-trace JSON (open in \
                 chrome://tracing or validate with $(b,validate-trace)).")

let trace_buffer_arg =
  Arg.(value & opt int 65536
       & info [ "trace-buffer" ] ~docv:"N"
           ~doc:"Span ring-buffer capacity; the oldest spans are dropped \
                 once it wraps.")

let run_cmd =
  let doc = "Run a traffic scenario against a controller architecture" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret
            (const run_scenario $ topo_arg $ arch_arg $ apps_arg $ bug_arg
             $ policy_arg $ config_arg $ workload_arg $ duration_arg
             $ trace_out_arg $ trace_buffer_arg $ delta_ckpt_arg
             $ nversion_arg $ verbose_arg))

let check_policy_cmd =
  let doc = "Parse and echo a Crash-Pad policy file" in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "check-policy" ~doc) Term.(ret (const check_policy $ path))

let out_arg =
  Arg.(value & opt string "events.trace"
       & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace output file.")

let check_config_cmd =
  let doc = "Parse and echo an operator configuration file" in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "check-config" ~doc) Term.(ret (const check_config $ path))

let record_cmd =
  let doc = "Run a scenario and record the controller event stream to a file" in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(ret (const record_trace $ topo_arg $ apps_arg $ duration_arg $ out_arg))

let trace_pos =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")

let app_pos =
  Arg.(value & opt string "learning_switch"
       & info [ "app" ] ~docv:"APP" ~doc:"Application to analyse.")

let bug_required =
  Arg.(required & opt (some bug_conv) None
       & info [ "bug" ] ~docv:"BUG" ~doc:"Bug to inject (e.g. crash:packet_in).")

let minimize_cmd =
  let doc =
    "Delta-debug a recorded trace: find the minimal causal event sequence \
     that crashes an app with the given bug (STS, paper §5)"
  in
  Cmd.v (Cmd.info "minimize" ~doc)
    Term.(ret (const minimize_trace $ trace_pos $ app_pos $ bug_required))

let validate_trace_cmd =
  let doc =
    "Decode a Chrome-trace JSON file produced by $(b,run --trace-out) (or \
     embedded in a fuzzer reproducer), check its structural \
     well-formedness, and print a per-stage latency digest"
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "validate-trace" ~doc) Term.(ret (const validate_trace $ path))

let () =
  let doc = "LegoSDN command-line playground" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "legosdn_cli" ~doc)
          [
            run_cmd; check_policy_cmd; check_config_cmd; record_cmd;
            minimize_cmd; validate_trace_cmd;
          ]))
