(** Destination-MAC shortest-path routing as declared intent. The handler
    only records observed source MACs (and floods the trigger packet); the
    declared policy compiles to one forwarding rule per (switch, known
    destination) pair, recomputed from the device manager and live links
    on every reconciliation. *)

include Controller.App_sig.INTENT_APP

val hosts_known : state -> int
(** Distinct source MACs observed so far. *)
