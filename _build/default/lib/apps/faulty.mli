(** Fault injection: wrap any application with a {!Bug_model} bug.

    The wrapper is transparent until the trigger fires; then it produces
    the configured failure exactly as a buggy application would — raising
    through the handler, raising with partially emitted commands, "hanging"
    (raising {!Controller.App_sig.App_hang}, which runtimes interpret as
    heart-beat loss), emitting byzantine rules, or leaking state. *)

val wrap :
  bug:Bug_model.t ->
  (module Controller.App_sig.APP) ->
  (module Controller.App_sig.APP)
(** The wrapped application keeps the inner application's name and
    subscriptions, so runtimes and policies are none the wiser. *)

exception Injected_crash of string
(** The exception thrown by [Crash]-effect bugs. *)
