lib/openflow/codec.mli: Buf Message
