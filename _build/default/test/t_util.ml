(* Shared helpers for the test suites. *)

open Openflow

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A context backed by nothing: apps that only need packet semantics. *)
let null_context : Controller.App_sig.context =
  {
    now = (fun () -> 0.);
    switches = (fun () -> []);
    switch_ports = (fun _ -> []);
    links = (fun () -> []);
    host_location = (fun _ -> None);
  }

(* A context over a live network's services. *)
let context_of_services services = Controller.Services.context services

(* Fresh (clock, net) over a generated topology, with initial switch
   handshakes still pending in the notification queue. *)
let fresh_net topo =
  let clock = Netsim.Clock.create () in
  let net = Netsim.Net.create clock topo in
  (clock, net)

(* Build net + services and consume the initial handshake notifications so
   the services know the switches. Returns the events produced. *)
let net_with_services topo =
  let clock, net = fresh_net topo in
  let services =
    Controller.Services.create clock (Netsim.Net.topology net)
  in
  let events =
    Netsim.Net.poll net
    |> List.concat_map (Controller.Services.ingest services)
  in
  (clock, net, services, events)

let tcp_packet src dst = Packet.tcp ~src_host:src ~dst_host:dst ()

(* Alcotest testables. *)
let match_t = Alcotest.testable Ofp_match.pp Ofp_match.equal
let message_t = Alcotest.testable Message.pp Message.equal
let packet_t = Alcotest.testable Packet.pp Packet.equal
let event_t =
  Alcotest.testable Controller.Event.pp Controller.Event.equal
let command_t =
  Alcotest.testable Controller.Command.pp Controller.Command.equal

(* QCheck generators for protocol types. *)
module Gen = struct
  open QCheck2.Gen

  let mac = map (fun i -> i land 0xFFFFFFFFFFFF) (int_bound 0xFFFFFF)
  let ip = map (fun i -> i land 0xFFFFFFFF) (int_bound 0xFFFFFFF)
  let port_no = int_range 1 64
  let small_int16 = int_bound 0xFFFF

  let packet =
    let* dl_src = mac and* dl_dst = mac in
    let* vlan = opt (int_bound 4094) in
    let* dl_type =
      oneofl [ Packet.ethertype_ip; Packet.ethertype_arp; 0x86dd ]
    in
    let* nw_src = ip and* nw_dst = ip in
    let* nw_proto = oneofl [ 1; 6; 17 ] in
    let* nw_tos = int_bound 255 in
    let* tp_src = small_int16 and* tp_dst = small_int16 in
    let* payload_len = int_bound 1500 in
    return
      (Packet.make ~dl_vlan:vlan ~dl_type ~nw_proto ~nw_tos ~tp_src ~tp_dst
         ~payload_len ~dl_src ~dl_dst ~nw_src ~nw_dst ())

  let field g = opt g

  let ofp_match =
    let* in_port = field port_no in
    let* dl_src = field mac and* dl_dst = field mac in
    let* dl_vlan = field (opt (int_bound 4094)) in
    let* dl_type = field (oneofl [ Packet.ethertype_ip; Packet.ethertype_arp ]) in
    let* nw_src = field ip and* nw_dst = field ip in
    let* nw_proto = field (oneofl [ 1; 6; 17 ]) in
    let* nw_tos = field (int_bound 255) in
    let* tp_src = field small_int16 and* tp_dst = field small_int16 in
    return
      {
        Ofp_match.in_port;
        dl_src;
        dl_dst;
        dl_vlan;
        dl_type;
        nw_src;
        nw_dst;
        nw_proto;
        nw_tos;
        tp_src;
        tp_dst;
      }

  let action =
    let open Action in
    oneof
      [
        map (fun p -> Output p) port_no;
        map (fun m -> Set_dl_src m) mac;
        map (fun m -> Set_dl_dst m) mac;
        map (fun v -> Set_vlan v) (int_bound 4094);
        return Strip_vlan;
        map (fun i -> Set_nw_src i) ip;
        map (fun i -> Set_nw_dst i) ip;
        map (fun v -> Set_nw_tos v) (int_bound 255);
        map (fun v -> Set_tp_src v) small_int16;
        map (fun v -> Set_tp_dst v) small_int16;
        map2 (fun p q -> Enqueue (p, q)) port_no (int_bound 7);
      ]

  let actions = list_size (int_bound 4) action

  let flow_mod =
    let* pattern = ofp_match in
    let* command =
      oneofl
        Message.[ Add; Modify; Modify_strict; Delete; Delete_strict ]
    in
    let* idle_timeout = int_bound 300 and* hard_timeout = int_bound 300 in
    let* priority = int_range 0 0xFFFF in
    let* notify = bool in
    let* acts = actions in
    let* cookie = map Int64.of_int (int_bound 1_000_000) in
    return
      {
        Message.pattern;
        cookie;
        command;
        idle_timeout;
        hard_timeout;
        priority;
        buffer_id = None;
        out_port = None;
        notify_when_removed = notify;
        actions = acts;
      }
end
