lib/openflow/ofp_match.mli: Buf Format Packet Types
