open Openflow

let test_tcp_defaults () =
  let p = Packet.tcp ~src_host:1 ~dst_host:2 () in
  Alcotest.(check int) "ethertype" Packet.ethertype_ip p.Packet.dl_type;
  Alcotest.(check int) "proto" Packet.proto_tcp p.Packet.nw_proto;
  T_util.checkb "src mac derived from host" true
    (p.Packet.dl_src = Types.mac_of_host 1);
  T_util.checkb "dst ip derived from host" true
    (p.Packet.nw_dst = Types.ip_of_host 2)

let test_arp_is_broadcast () =
  let p = Packet.arp_request ~src_host:1 ~dst_host:2 in
  T_util.checkb "broadcast dst" true (Types.mac_is_broadcast p.Packet.dl_dst);
  Alcotest.(check int) "arp ethertype" Packet.ethertype_arp p.Packet.dl_type

let test_frame_roundtrip_plain () =
  let p = Packet.tcp ~src_host:3 ~dst_host:9 ~sport:555 ~dport:8080 () in
  Alcotest.check T_util.packet_t "roundtrip" p (Packet.of_frame (Packet.to_frame p))

let test_frame_roundtrip_vlan () =
  let p =
    Packet.make ~dl_vlan:(Some 42) ~dl_src:(Types.mac_of_host 1)
      ~dl_dst:(Types.mac_of_host 2) ~nw_src:(Types.ip_of_host 1)
      ~nw_dst:(Types.ip_of_host 2) ()
  in
  Alcotest.check T_util.packet_t "vlan roundtrip" p
    (Packet.of_frame (Packet.to_frame p))

let test_size_counts_vlan () =
  let bare = Packet.tcp ~src_host:1 ~dst_host:2 () in
  let tagged = { bare with Packet.dl_vlan = Some 7 } in
  T_util.checki "vlan adds 4 bytes" (Packet.size bare + 4) (Packet.size tagged)

let test_garbage_frame () =
  Alcotest.check_raises "truncated frame fails cleanly"
    (Failure "Packet.of_frame: truncated frame") (fun () ->
      ignore (Packet.of_frame (Bytes.of_string "too short")))

let prop_frame_roundtrip =
  QCheck2.Test.make ~name:"any packet roundtrips through its frame" ~count:500
    T_util.Gen.packet (fun p -> Packet.of_frame (Packet.to_frame p) = p)

let prop_size_positive =
  QCheck2.Test.make ~name:"frame size is positive and >= headers" ~count:200
    T_util.Gen.packet (fun p -> Packet.size p >= 38)

let suite =
  [
    Alcotest.test_case "tcp helper defaults" `Quick test_tcp_defaults;
    Alcotest.test_case "arp helper broadcasts" `Quick test_arp_is_broadcast;
    Alcotest.test_case "frame roundtrip (plain)" `Quick test_frame_roundtrip_plain;
    Alcotest.test_case "frame roundtrip (vlan)" `Quick test_frame_roundtrip_vlan;
    Alcotest.test_case "size counts vlan tag" `Quick test_size_counts_vlan;
    Alcotest.test_case "garbage frame rejected" `Quick test_garbage_frame;
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    QCheck_alcotest.to_alcotest prop_size_positive;
  ]
