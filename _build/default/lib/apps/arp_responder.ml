open Openflow
open Controller

module Ip_map = Map.Make (Int)

type state = {
  table : Types.mac Ip_map.t;  (* ip -> mac *)
  n_replies : int;
  n_floods : int;
}

let name = "arp_responder"
let subscriptions = [ Event.K_packet_in ]

let init () = { table = Ip_map.empty; n_replies = 0; n_floods = 0 }

let bindings st = Ip_map.cardinal st.table
let replies_sent st = st.n_replies
let floods st = st.n_floods

let arp_request_op = 1
let arp_reply_op = 2

let handle _ctx st = function
  | Event.Packet_in (sid, pi) -> (
      let pkt = pi.Message.pi_packet in
      if pkt.Packet.dl_type <> Packet.ethertype_arp then (st, [])
      else begin
        (* Gratuitous learning from any ARP packet's source fields. *)
        let st =
          { st with table = Ip_map.add pkt.Packet.nw_src pkt.Packet.dl_src st.table }
        in
        if pkt.Packet.nw_proto <> arp_request_op then (st, [])
        else
          match Ip_map.find_opt pkt.Packet.nw_dst st.table with
          | Some target_mac ->
              (* Answer on behalf of the target, straight back out of the
                 ingress port. *)
              let reply =
                Packet.make ~dl_type:Packet.ethertype_arp
                  ~nw_proto:arp_reply_op ~dl_src:target_mac
                  ~dl_dst:pkt.Packet.dl_src ~nw_src:pkt.Packet.nw_dst
                  ~nw_dst:pkt.Packet.nw_src ~tp_src:0 ~tp_dst:0
                  ~payload_len:28 ()
              in
              ( { st with n_replies = st.n_replies + 1 },
                [
                  Command.packet_out sid
                    [ Action.Output pi.Message.pi_in_port ]
                    (Some reply);
                ] )
          | None ->
              ( { st with n_floods = st.n_floods + 1 },
                [
                  Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
                    ~in_port:pi.Message.pi_in_port sid
                    [ Action.Output Types.port_flood ]
                    (match pi.Message.pi_buffer_id with
                    | Some _ -> None
                    | None -> Some pkt);
                ] )
      end)
  | _ -> (st, [])
