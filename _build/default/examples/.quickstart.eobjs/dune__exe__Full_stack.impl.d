examples/full_stack.ml: Apps Clock Controller Legosdn List Net Netsim Openflow Printf Topo_gen Topology
