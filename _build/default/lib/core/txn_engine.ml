open Openflow

type txn = {
  apply : Controller.Command.t -> Message.t list;
  commit : unit -> unit;
  abort : unit -> unit;
  issued : unit -> Controller.Command.t list;
}

type t = {
  engine_name : string;
  begin_txn : app:string -> txn;
}
