lib/workload/traffic.mli: Netsim Openflow Packet
