open Controller
module Net = Netsim.Net
module Clock = Netsim.Clock

type engine_kind = Netlog_engine | Delay_buffer_engine
type ckpt_mode = Ckpt_full | Ckpt_delta | Ckpt_delta_adaptive

type cluster_config = {
  replicas : int;
  election_lo : float;
  election_hi : float;
}

let default_cluster_config =
  { replicas = 1; election_lo = 0.15; election_hi = 0.3 }

type dispatch_mode =
  | Sequential
  | Sharded of { shards : int; max_batch : int }

let default_sharded = Sharded { shards = 8; max_batch = 64 }

(* Parameters of the trace-driven workload generator (lib/workload's
   [Trace_gen]). They live here — not in lib/workload — so scenario
   configs ([Config_lang]) and reproducers can carry them without the core
   depending on the generator. *)
type workload_config = {
  w_seed : int;  (* generator stream, independent of other seeds *)
  w_rate : float;  (* mean flow arrivals per virtual second at peak load *)
  w_alpha : float;  (* Pareto shape of inter-arrivals; <=2 is heavy-tailed *)
  w_diurnal : float;  (* modulation depth, 0 (flat) .. 1 (full trough) *)
  w_period : float;  (* diurnal period, virtual seconds *)
  w_churn : float;  (* host leave(+rejoin) events per virtual second *)
}

let default_workload_config =
  {
    w_seed = 1;
    w_rate = 20.;
    w_alpha = 1.5;
    w_diurnal = 0.5;
    w_period = 60.;
    w_churn = 0.;
  }

type config = {
  checkpoint_every : int;
  checkpoint_mode : ckpt_mode;
  crashpad : Crashpad.config;
  engine : engine_kind;
  reliable : Reliable.config;
  cluster : cluster_config;
  dispatch : dispatch_mode;
  trace_cache_budget : int option;
  workload : workload_config option;
  nversion : Voter.config option;
}

let default_config =
  {
    checkpoint_every = 1;
    checkpoint_mode = Ckpt_full;
    crashpad = Crashpad.default_config;
    engine = Netlog_engine;
    reliable = Reliable.default_config;
    cluster = default_cluster_config;
    dispatch = Sequential;
    trace_cache_budget = None;
    workload = None;
    nversion = None;
  }

(* One dispatch unit: a solo sandboxed app, or an N-version voting panel
   of variant sandboxes behind one application name. *)
type unit_ = Solo of Sandbox.t | Panel of Voter.t

let unit_name = function
  | Solo box -> Sandbox.name box
  | Panel v -> Voter.name v

type t = {
  network : Net.t;
  mutable services_state : Services.t;
  mutable context_services : Services.t option;
  units : unit_ list;
  boxes : Sandbox.t list;  (* every sandbox, panel variants included *)
  netlog_instance : Netlog.t option;
  reliable_layer : Reliable.t option;
  engine : Txn_engine.t;
  incremental_checker : Invariants.Incremental.t;
  metrics_store : Metrics.t;
  ticket_store : Ticket.store;
  cfg : config;
  mutable reply_backlog : (string * Event.t) list;
  mutable n_events : int;
  mutable n_shed : int;
  queue : Dispatch.t option;  (* Some iff cfg.dispatch is Sharded *)
  obs_hub : Obs.Hub.t;
  tracer_cell : Obs.Tracer.t ref;
}

(* Delivery activity becomes instant marks in the trace, so a Chrome
   timeline shows retransmissions and resyncs against the spans of the
   transactions that provoked them. *)
let bridge_delivery_to_tracer tracer_cell = function
  | Obs.Hub.Delivery d ->
      let tracer = !tracer_cell in
      if Obs.Tracer.enabled tracer then begin
        let i = string_of_int in
        match d with
        | Obs.Hub.Sent { sw; xid } ->
            Obs.Tracer.instant tracer
              ~attrs:[ ("sw", i sw); ("xid", i xid) ]
              Obs.Span.Delivery
        | Obs.Hub.Acked { sw; xid } ->
            Obs.Tracer.instant tracer
              ~attrs:[ ("sw", i sw); ("xid", i xid); ("acked", "true") ]
              Obs.Span.Delivery
        | Obs.Hub.Retransmitted { sw; xid; attempt } ->
            Obs.Tracer.instant tracer
              ~attrs:[ ("sw", i sw); ("xid", i xid); ("attempt", i attempt) ]
              Obs.Span.Retransmit
        | Obs.Hub.Resynced { sw; rules } ->
            Obs.Tracer.instant tracer
              ~attrs:[ ("sw", i sw); ("rules", i rules) ]
              Obs.Span.Resync
        | Obs.Hub.Queued _ | Obs.Hub.Degraded _ -> ()
      end
  | Obs.Hub.Dispatched _ | Obs.Hub.Inv_cache _ -> ()

let create ?(config = default_config) ?xid_base ?controller_id
    ?southbound_gate ?nv_variants network modules =
  let metrics_store = Metrics.create () in
  let obs_hub = Obs.Hub.create () in
  let tracer_cell = ref Obs.Tracer.noop in
  ignore (Obs.Hub.subscribe obs_hub (bridge_delivery_to_tracer tracer_cell));
  let reliable_layer, netlog_instance, engine =
    match config.engine with
    | Netlog_engine ->
        (* NetLog speaks to switches through the reliable layer, so every
           transaction command — rollback traffic included — is
           barrier-acked and retransmitted over a lossy channel. *)
        let rel =
          Reliable.create ~config:config.reliable ?controller_id
            ~metrics:metrics_store
            ~notify:(fun d -> Obs.Hub.emit obs_hub (Obs.Hub.Delivery d))
            network
        in
        let transport =
          match southbound_gate with
          | None -> Reliable.send rel
          | Some gate ->
              (* The cluster's controlled-kill hook: a closed gate
                 black-holes the send (as a crashed process would) without
                 raising — an exception here would unwind through the
                 transaction engine and be misread as an app failure. *)
              fun sid msg ->
                if gate sid msg then Reliable.send rel sid msg else []
        in
        let nl =
          Netlog.create ~transport ?xid_base ~metrics:metrics_store network
        in
        (Some rel, Some nl, Netlog.engine nl)
    | Delay_buffer_engine ->
        (None, None, Delay_buffer.engine (Delay_buffer.create network))
  in
  let incremental_checker =
    let observer ev =
      (match ev with
      | Invariants.Incremental.Trace_hit ->
          Metrics.incr_inv_trace_hit metrics_store;
          Obs.Tracer.instant !tracer_cell Obs.Span.Inv_cache_hit
      | Invariants.Incremental.Trace_miss ->
          Metrics.incr_inv_trace_miss metrics_store;
          Obs.Tracer.instant !tracer_cell Obs.Span.Inv_cache_miss
      | Invariants.Incremental.Trace_invalidated ->
          Metrics.incr_inv_invalidation metrics_store
      | Invariants.Incremental.Switch_recaptured _ ->
          Metrics.incr_inv_recapture metrics_store
      | Invariants.Incremental.Check_memoized ->
          Metrics.incr_inv_memoized metrics_store
      | Invariants.Incremental.Trace_evicted { bytes } ->
          Metrics.incr_inv_eviction metrics_store;
          Metrics.set_inv_cache_bytes metrics_store bytes);
      Obs.Hub.emit obs_hub (Obs.Hub.Inv_cache ev)
    in
    Invariants.Incremental.create ~observer
      ?trace_cache_budget:config.trace_cache_budget network
  in
  let ckpt_observer = function
    | Checkpoint.Took { written; chunk_hits; chunk_misses; deduped; _ } ->
        Metrics.incr_checkpoint metrics_store;
        Metrics.add_ckpt_bytes_written metrics_store written;
        Metrics.add_ckpt_chunk_hits metrics_store chunk_hits;
        Metrics.add_ckpt_chunk_misses metrics_store chunk_misses;
        Metrics.add_ckpt_bytes_deduped metrics_store deduped
    | Checkpoint.Materialized _ -> Metrics.incr_ckpt_restore metrics_store
  in
  let make_ckpt () =
    let k = config.checkpoint_every in
    match config.checkpoint_mode with
    | Ckpt_full -> Checkpoint.create_full ~observer:ckpt_observer ~every:k ()
    | Ckpt_delta ->
        Checkpoint.create_delta ~observer:ckpt_observer
          ~cadence:(Checkpoint.Every k) ()
    | Ckpt_delta_adaptive ->
        (* A journaled event replays in microseconds while a full snapshot
           write is ~the state size; 64 write-byte units per event keeps
           the journal short for big states and long for small ones. The
           fixed k survives as the floor; the ceiling bounds replay. *)
        Checkpoint.create_delta ~observer:ckpt_observer
          ~cadence:
            (Checkpoint.Adaptive
               {
                 replay_cost_per_event = 64;
                 min_events = k;
                 max_events = max (8 * k) 64;
               })
          ()
  in
  let units =
    match config.nversion with
    | Some vcfg when vcfg.Voter.nv_replicas > 1 ->
        List.map
          (fun m ->
            let specs =
              let default () =
                List.init vcfg.Voter.nv_replicas (fun _ -> (m, true))
              in
              match nv_variants with
              | None -> default ()
              | Some hook -> (
                  let module M = (val m : App_sig.INTENT_APP) in
                  match hook M.name with
                  | Some specs -> specs
                  | None -> default ())
            in
            Panel
              (Voter.create ~config:vcfg ~make_ckpt
                 ~checkpoint_every:config.checkpoint_every specs))
          modules
    | Some _ | None ->
        List.map
          (fun m ->
            Solo
              (Sandbox.create ~ckpt:(make_ckpt ())
                 ~checkpoint_every:config.checkpoint_every m))
          modules
  in
  let boxes =
    List.concat_map
      (function Solo box -> [ box ] | Panel v -> Voter.sandboxes v)
      units
  in
  let queue =
    match config.dispatch with
    | Sequential -> None
    | Sharded { shards; max_batch } ->
        if shards <= 0 then invalid_arg "Runtime.create: shards <= 0";
        if max_batch <= 0 then invalid_arg "Runtime.create: max_batch <= 0";
        (* The sharded engine also switches the RPC boundary to the
           reusable codec buffers; the sequential engine keeps the
           fresh-allocation path as the executable specification. *)
        List.iter
          (fun b -> Sandbox.set_scratch b (Some (Wire.scratch ())))
          boxes;
        Some (Dispatch.create ~shards)
  in
  {
    network;
    services_state = Services.create (Net.clock network) (Net.topology network);
    context_services = None;
    units;
    boxes;
    netlog_instance;
    reliable_layer;
    engine;
    incremental_checker;
    metrics_store;
    ticket_store = Ticket.store ();
    cfg = config;
    reply_backlog = [];
    n_events = 0;
    n_shed = 0;
    queue;
    obs_hub;
    tracer_cell;
  }

let net t = t.network
let services t = t.services_state
let sandboxes t = t.boxes
let sandbox t name = List.find_opt (fun b -> Sandbox.name b = name) t.boxes
let voters t = List.filter_map (function Panel v -> Some v | Solo _ -> None) t.units
let unit_for t name = List.find_opt (fun u -> unit_name u = name) t.units
let metrics t = t.metrics_store
let tickets t = Ticket.all t.ticket_store
let ticket_store t = t.ticket_store
let netlog t = t.netlog_instance
let reliable t = t.reliable_layer
let incremental t = t.incremental_checker
let events_processed t = t.n_events
let events_shed t = t.n_shed
let config t = t.cfg

let now t = Clock.now (Net.clock t.network)
let hub t = t.obs_hub
let tracer t = !(t.tracer_cell)

let set_tracer t tracer =
  t.tracer_cell := tracer;
  (match t.netlog_instance with
  | Some nl -> Netlog.set_tracer nl tracer
  | None -> ());
  (* Per-stage latency distributions become first-class metrics, so one
     [Metrics.pp_registry] shows counters and span latencies together. *)
  List.iter
    (fun (kind, hist) ->
      Metrics.attach_histogram t.metrics_store
        ("span." ^ Obs.Span.kind_name kind)
        hist)
    (Obs.Tracer.histograms tracer)

(* The service state applications see through their context. Normally the
   ingesting services; the cluster layer overrides it with a replica built
   by [Services.observe] over the committed log, so a fail-over leader
   re-dispatching an old entry hands apps the context the original leader
   had at that entry — not the (later) ingest-time state. *)
let ctx_services t =
  match t.context_services with Some s -> s | None -> t.services_state

let set_context_services t s = t.context_services <- s

let links_of t sid =
  Services.live_links (ctx_services t)
  |> List.filter (fun (l : Event.link) -> l.src_switch = sid)

let deps t : Crashpad.deps =
  {
    engine = t.engine;
    incremental = Some t.incremental_checker;
    net = t.network;
    context = (fun () -> Services.context (ctx_services t));
    links_of = (fun sid -> links_of t sid);
    metrics = t.metrics_store;
    tickets = t.ticket_store;
    now = (fun () -> now t);
    enqueue_reply =
      (fun app ev -> t.reply_backlog <- t.reply_backlog @ [ (app, ev) ]);
    unreachable =
      (fun sid ->
        match t.reliable_layer with
        | Some rel -> Reliable.is_degraded rel sid
        | None -> false);
    tracer = !(t.tracer_cell);
  }

let rec drain_replies ?cfg t =
  let cfg = match cfg with Some c -> c | None -> t.cfg.crashpad in
  match t.reply_backlog with
  | [] -> ()
  | (app, ev) :: rest ->
      t.reply_backlog <- rest;
      (match unit_for t app with
      | Some (Solo box) -> Crashpad.dispatch cfg (deps t) box ev
      | Some (Panel v) -> Voter.dispatch cfg (deps t) v ev
      | None -> ());
      drain_replies ~cfg t

(* The per-event delivery pipeline, shared verbatim by both engines:
   everything inside the [Event_root] span is what "dispatch one event"
   means. The engines differ only in what surrounds it — per-event
   barrier chases and checkpoints (sequential) versus per-batch ones
   (sharded). *)
let dispatch_with t cfg deps event =
  t.n_events <- t.n_events + 1;
  let tracer = !(t.tracer_cell) in
  let attrs =
    if Obs.Tracer.enabled tracer then
      [ ("kind", Event.kind_name (Event.kind_of event)) ]
    else []
  in
  Obs.Tracer.with_span tracer ~attrs Obs.Span.Event_root (fun () ->
      Obs.Hub.emit t.obs_hub (Obs.Hub.Dispatched event);
      Metrics.incr_events t.metrics_store;
      List.iter
        (function
          | Solo box -> Crashpad.dispatch cfg deps box event
          | Panel v -> Voter.dispatch cfg deps v event)
        t.units;
      drain_replies ~cfg t)

let dispatch_event t event = dispatch_with t t.cfg.crashpad (deps t) event

(* Checkpoints may be amortized to one per batch only when the cadence is
   deterministic per event (Every 1): then the sequential engine's journal
   is provably empty at every delivery, the batched journal only ever
   spans the current batch, and — because services never ingest while a
   batch is dispatching — replaying that journal under the frozen context
   reproduces the original state transitions exactly. Both engines
   therefore recover precisely the state before the crashing event. With
   k > 1 or the adaptive cadence the journal may span polls, where
   sequential replay already runs under a context the events were not
   delivered under; the sharded engine then mirrors the per-event
   [Sandbox.prepare] to stay byte-equivalent. *)
let batch_amortizes_checkpoints t =
  t.cfg.checkpoint_every = 1 && t.cfg.checkpoint_mode <> Ckpt_delta_adaptive

(* Dispatch one batch (arrival order, shard-annotated). One
   [Reliable] batch brackets the whole thing, so flow-mods to a
   fault-free switch share a single barrier; contiguous same-shard runs
   get a [Shard_dispatch] span under the [Batch_root]. *)
let dispatch_batch t batch =
  match batch with
  | [] -> ()
  | _ ->
      (match t.reliable_layer with
      | Some rel -> Reliable.begin_batch rel
      | None -> ());
      let tracer = !(t.tracer_cell) in
      let attrs =
        if Obs.Tracer.enabled tracer then
          [ ("events", string_of_int (List.length batch)) ]
        else []
      in
      Obs.Tracer.with_span tracer ~attrs Obs.Span.Batch_root (fun () ->
          let cfg =
            if batch_amortizes_checkpoints t then begin
              List.iter (fun box -> Sandbox.prepare ~tracer box) t.boxes;
              { t.cfg.crashpad with Crashpad.batched_checkpoints = true }
            end
            else t.cfg.crashpad
          in
          let deps = deps t in
          let rec runs = function
            | [] -> ()
            | (shard, ev) :: rest ->
                let same, rest =
                  let rec split acc = function
                    | (s, e) :: tl when s = shard -> split (e :: acc) tl
                    | tl -> (List.rev acc, tl)
                  in
                  split [ ev ] rest
                in
                let attrs =
                  if Obs.Tracer.enabled tracer then
                    [
                      ("shard", string_of_int shard);
                      ("events", string_of_int (List.length same));
                    ]
                  else []
                in
                Obs.Tracer.with_span tracer ~attrs Obs.Span.Shard_dispatch
                  (fun () -> List.iter (dispatch_with t cfg deps) same);
                runs rest
          in
          runs batch);
      (match t.reliable_layer with
      | Some rel -> Reliable.end_batch rel
      | None -> ())

(* Drain-until-quiet with a broadcast-storm guard, mirroring
   Monolithic.step so the two architectures process identical event
   streams: when a step's event budget runs out (an app flooding a cyclic
   topology can multiply packet-ins exponentially), the excess is shed the
   way an overloaded controller connection would shed it. *)
let storm_guard_events = 2048

let observe_reliable t notifications =
  match t.reliable_layer with
  | None -> ()
  | Some rel -> List.iter (Reliable.observe rel) notifications

(* One poll round: drain the network's notification queue, feed the
   reliable layer, and translate to controller events — without
   dispatching them. The cluster layer uses this to interpose log
   replication between "event observed" and "event dispatched". *)
(* A switch that disconnects takes its flow table with it: prune its
   entries from every sandbox's installed-intent record so that when it
   returns, reconciliation re-derives and re-installs its rules from
   declared policy instead of concluding [`Noop]. (The reliable layer's
   shadow resync also replays its rules on reconnect; the re-adds are
   idempotent, and pruning here keeps intent correct even with the
   reliable layer disabled.) *)
let forget_switch_intent t events =
  List.iter
    (function
      | Event.Switch_down sid ->
          List.iter
            (fun box ->
              match Sandbox.intent_tables box with
              | [] -> ()
              | tables ->
                  Sandbox.set_intent_tables box
                    (List.filter
                       (fun (tbl : Policy.table) -> tbl.Policy.t_sw <> sid)
                       tables))
            t.boxes
      | _ -> ())
    events

let poll_events t =
  match Net.poll t.network with
  | [] -> []
  | notifications ->
      observe_reliable t notifications;
      let events =
        List.concat_map (Services.ingest t.services_state) notifications
      in
      forget_switch_intent t events;
      events

let step_sequential t =
  let budget = ref storm_guard_events in
  let rec go () =
    match poll_events t with
    | [] -> ()
    | events ->
        List.iter
          (fun ev ->
            if !budget > 0 then begin
              decr budget;
              dispatch_event t ev
            end
            else t.n_shed <- t.n_shed + 1)
          events;
        if !budget > 0 then go ()
        else t.n_shed <- t.n_shed + List.length (Net.poll t.network)
  in
  go ()

(* Identical poll-round structure and shedding arithmetic as
   [step_sequential]: each poll round's events are enqueued, then drained
   to empty before polling again — so batches never mix poll rounds'
   descendants out of order, and the budget decrements once per
   dispatched event exactly as the sequential loop does. *)
let step_sharded t q max_batch =
  let budget = ref storm_guard_events in
  let rec drain () =
    if Dispatch.length q > 0 then
      if !budget > 0 then begin
        let batch = Dispatch.next_batch q ~max_batch:(min max_batch !budget) in
        dispatch_batch t batch;
        budget := !budget - List.length batch;
        drain ()
      end
      else begin
        t.n_shed <- t.n_shed + Dispatch.length q;
        Dispatch.clear q
      end
  in
  let rec go () =
    match poll_events t with
    | [] -> ()
    | events ->
        List.iter (Dispatch.push q) events;
        drain ();
        if !budget > 0 then go ()
        else t.n_shed <- t.n_shed + List.length (Net.poll t.network)
  in
  go ()

let step t =
  (match t.reliable_layer with
  | Some rel -> Reliable.tick rel
  | None -> ());
  match (t.queue, t.cfg.dispatch) with
  | Some q, Sharded { max_batch; _ } -> step_sharded t q max_batch
  | _ -> step_sequential t

let tick t =
  (match t.reliable_layer with
  | Some rel -> Reliable.tick rel
  | None -> ());
  let ev = Event.Tick (now t) in
  match t.queue with
  | None -> dispatch_event t ev
  | Some q ->
      (* Through the engine, so the Tick is subject to the same
         batch-barrier rule as a queued one. The queue is empty here
         ([step] always drains it), so the Tick forms a singleton batch —
         the sequential dispatch, batched. *)
      Dispatch.push q ev;
      let rec drain () =
        match Dispatch.next_batch q ~max_batch:max_int with
        | [] -> ()
        | batch ->
            dispatch_batch t batch;
            drain ()
      in
      drain ()

let upgrade_controller t =
  (* Platform restart: controller-side state is rebuilt from the network;
     sandboxed applications are untouched and keep their state. *)
  t.services_state <- Services.create (Net.clock t.network) (Net.topology t.network);
  t.reply_backlog <- [];
  let topo = Net.topology t.network in
  List.iter
    (fun sid ->
      let sw = Net.switch t.network sid in
      if sw.Netsim.Sw.up then
        let events =
          Services.ingest t.services_state
            (Net.Switch_connected (sid, Netsim.Sw.features sw))
        in
        List.iter (dispatch_event t) events)
    (Netsim.Topology.switches topo)
