(** A small NetKAT-style network policy language and its compiler.

    Applications describe forwarding *intent* — predicates over the eleven
    OpenFlow 1.0 header fields combined with forward/flood/drop/modify
    actions, composed by union and sequencing — and the compiler turns the
    intent into prioritized flow tables (one per switch) whose patterns are
    interned {!Openflow.Ofp_match.t} values, emitted as ordinary flow-mods.

    Two independent semantics are exposed and kept in agreement:

    - {!denotation} is the reference evaluator: the forwarding relation of a
      policy, packet by packet, defined directly on the syntax tree.
    - {!eval_table} evaluates a compiled table the way the simulated switch
      would (first match wins, OF 1.0 action-list staging, FLOOD expansion).

    The qcheck differential in [test/t_policy.ml] proves the two agree over
    random policies × random packets; Crash-Pad uses the same agreement
    check (plus the incremental invariant engine) to verify that a derived
    compromise preserves the forwarding relation before replaying it.

    Processing model: [Forward]/[Flood] {e tee} a copy of the packet to the
    port(s) and pass the packet on to the rest of a sequence; [Drop] (and a
    failed [Filter]) ends processing. [Seq (Modify m, p)] applies [p] to the
    rewritten packet. [Union] runs both branches on the same packet. *)

open Openflow

(** {1 Syntax} *)

(** An exact test on one OpenFlow 1.0 header field. [Dl_vlan None] matches
    untagged packets, mirroring [Ofp_match]'s [Some None]. *)
type hv =
  | In_port of Types.port_no
  | Dl_src of Types.mac
  | Dl_dst of Types.mac
  | Dl_vlan of int option
  | Dl_type of int
  | Nw_src of Types.ip
  | Nw_dst of Types.ip
  | Nw_proto of int
  | Nw_tos of int
  | Tp_src of int
  | Tp_dst of int

type pred =
  | True
  | False
  | Test of hv
  | And of pred * pred
  | Or of pred * pred
  | Neg of pred

(** A header rewrite. Only the fields OpenFlow 1.0 can set are listed —
    there is no action for [dl_type], [nw_proto] or [in_port]. *)
type update =
  | To_dl_src of Types.mac
  | To_dl_dst of Types.mac
  | To_vlan of int
  | To_no_vlan  (** strip the VLAN tag *)
  | To_nw_src of Types.ip
  | To_nw_dst of Types.ip
  | To_nw_tos of int
  | To_tp_src of int
  | To_tp_dst of int

type t =
  | Filter of pred
  | Forward of Types.port_no
  | Flood
  | Drop
  | Modify of update
  | Union of t * t
  | Seq of t * t
  | At of Types.switch_id * t
      (** [At (sw, p)]: behave as [p] on switch [sw], drop elsewhere. *)

(** {1 Constructors} *)

val filter : pred -> t
val forward : Types.port_no -> t
val flood : t
val drop : t
val modify : update -> t
val union : t -> t -> t
val seq : t -> t -> t
val at : Types.switch_id -> t -> t
val union_all : t list -> t
(** Union of a list; [Drop] when empty. *)

val seq_all : t list -> t
(** Sequence of a list; [Filter True] (pass) when empty. *)

val ite : pred -> t -> t -> t
(** [ite b p q] = [Union (Seq (Filter b, p), Seq (Filter (Neg b), q))]. *)

val conj : pred list -> pred
val disj : pred list -> pred

val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit

(** {1 Reference semantics} *)

val eval_pred : pred -> in_port:Types.port_no -> Packet.t -> bool

val denotation :
  ports:(Types.switch_id -> Types.port_no list) ->
  t ->
  sw:Types.switch_id ->
  in_port:Types.port_no ->
  Packet.t ->
  (Packet.t * Types.port_no) list
(** The forwarding relation: the set of (header state, egress port)
    transmissions the policy produces for one located packet, sorted and
    deduplicated. [ports sw] must list the flood-eligible (up, non-NO_FLOOD)
    ports of [sw]; flood copies exclude the ingress port, matching the
    simulated switch. Punts and un-transmitted continuations are not part
    of the relation. *)

(** {1 Compilation} *)

exception Uncompilable of string
(** Raised when a policy has no OpenFlow 1.0 action-list realization — the
    classic case is a multicast whose copies need rewrites that cannot be
    sequenced (each copy's headers would have to diverge from every
    serialization of the rewrite chain, e.g. two copies modifying the same
    wildcarded field differently with no pinned value to restore). *)

type row = {
  r_priority : int;
  r_pattern : Ofp_match.t;  (** interned *)
  r_actions : Action.t list;
}

type table = { t_sw : Types.switch_id; t_rows : row list }
(** Rows are listed highest-priority first and have pairwise-distinct
    (pattern, priority) keys. A packet matching no row is not part of the
    compiled forwarding relation (the switch punts it to the controller). *)

val compile :
  ?priority_base:int -> switches:Types.switch_id list -> t -> table list
(** Compile a policy to one prioritized table per switch. All priorities
    are strictly above [priority_base] (default
    [Message.default_priority]), so compiled intent outranks rules
    installed at the default priority by imperative apps. Trailing
    drop-everything rows are omitted — an unmatched packet punts, which
    transmits nothing, so the forwarding relation is unchanged and the
    [No_drop_all] invariant is never tripped.

    Raises {!Uncompilable} if some row has no action-list realization. *)

val eval_table :
  ports:(Types.switch_id -> Types.port_no list) ->
  table ->
  in_port:Types.port_no ->
  Packet.t ->
  (Packet.t * Types.port_no) list
(** First-match evaluation of one compiled table with OF 1.0 action
    staging; FLOOD outputs expand through [ports] minus the ingress port.
    Sorted and deduplicated like {!denotation}. *)

val agrees :
  ports:(Types.switch_id -> Types.port_no list) ->
  switches:Types.switch_id list ->
  t ->
  table list ->
  probes:(Types.switch_id * Types.port_no * Packet.t) list ->
  bool
(** Does the compiled forwarding relation match {!denotation} on every
    probe? A switch with no table forwards nothing. *)

val probes :
  ports:(Types.switch_id -> Types.port_no list) ->
  table list ->
  (Types.switch_id * Types.port_no * Packet.t) list
(** A deterministic probe set derived from a compiled table: for every row
    a witness packet matching its pattern (wildcards filled with canonical
    values), injected at the pattern's in_port (or every flood-eligible
    port when wildcarded), plus one all-default background packet per
    switch. *)

(** {1 Reconciliation} *)

val flow_mods :
  prev:table list ->
  next:table list ->
  (Types.switch_id * Message.flow_mod) list
(** The flow-mods that take a fabric from [prev] to [next]: adds (which
    also replace a changed action list under OF 1.0 identical
    match+priority semantics) followed by strict deletes of disappeared
    rows. An empty list means the tables already agree. *)

val empty_tables : table list
val table_rows : table list -> int
val pp_table : Format.formatter -> table -> unit
