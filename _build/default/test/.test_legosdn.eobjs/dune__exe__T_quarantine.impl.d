test/t_quarantine.ml: Alcotest Apps Clock Controller Legosdn List Message Net Netsim Openflow Option Packet T_util Topo_gen
