lib/core/standby.ml: Controller List Netsim Runtime Sandbox
