(** The Learning Switch: learns source MAC locations per switch from
    packet-ins, installs exact-match forwarding rules once both ends are
    known, floods otherwise. The third ported application (§4.1) and the
    main stateful workhorse of the experiments: its MAC table is the state
    that checkpointing, restore and replay must preserve. *)

include Controller.App_sig.APP

val macs_learned : state -> int
(** Total (switch, MAC) entries currently known. *)

val lookup : state -> Openflow.Types.switch_id -> Openflow.Types.mac
  -> Openflow.Types.port_no option

val with_idle_timeout : int -> (module Controller.App_sig.APP)
(** A variant whose installed flows use the given idle timeout (default
    60 s); useful for timeout-sensitive NetLog tests. *)
