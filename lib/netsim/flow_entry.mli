(** One entry of a switch flow table, with the mutable counters and timeout
    bookkeeping OF 1.0 attaches to it. *)

open Openflow

type t = {
  pattern : Ofp_match.t;
  priority : int;
  actions : Action.t list;
  cookie : int64;
  idle_timeout : int;  (** Seconds; 0 disables. *)
  hard_timeout : int;  (** Seconds; 0 disables. *)
  notify_when_removed : bool;
  installed_at : float;
  mutable last_used : float;
  mutable packet_count : int;
  mutable byte_count : int;
}

val of_flow_mod : now:float -> Message.flow_mod -> t
(** Entry created by an [Add] (or add-semantics [Modify]) flow-mod. The
    pattern is {!Ofp_match.intern}ed (as in [make]), so identical patterns
    across all entries and tables share one heap block. *)

val make :
  ?cookie:int64 ->
  ?idle_timeout:int ->
  ?hard_timeout:int ->
  ?priority:int ->
  ?notify_when_removed:bool ->
  now:float ->
  Ofp_match.t ->
  Action.t list ->
  t

val matches : t -> in_port:Types.port_no -> Packet.t -> bool

val account : t -> now:float -> Packet.t -> unit
(** Record one matched packet: bumps counters and refreshes idle time. *)

val expiry_reason : t -> now:float -> Message.flow_removed_reason option
(** [Some Removed_hard]/[Some Removed_idle] when the entry has timed out at
    [now], [None] while it is still live. Hard timeout wins ties. *)

val duration : t -> now:float -> int
(** Whole seconds since installation. *)

val to_flow_stat : now:float -> t -> Message.flow_stat
val to_flow_removed : now:float -> Message.flow_removed_reason -> t
  -> Message.flow_removed

val same_rule : t -> t -> bool
(** Equal match and priority — the OF identity for strict operations. *)

val restore :
  t ->
  remaining_idle:int ->
  remaining_hard:int ->
  now:float ->
  packet_count:int ->
  byte_count:int ->
  t
(** A copy of the entry re-installed at [now] whose timeouts are shortened
    to the remaining lifetime and whose counters continue from the given
    values. This is NetLog's flow-restore primitive: undoing a delete must
    not grant the flow a fresh lease on life. *)

val pp : Format.formatter -> t -> unit
