lib/netsim/clock.mli:
