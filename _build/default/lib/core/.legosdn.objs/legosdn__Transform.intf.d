lib/core/transform.mli: Controller Event Openflow
