(** OpenFlow 1.0 flow match structure (ofp_match).

    Each field is either a wildcard ([None]) or an exact value ([Some v]).
    This is the OF 1.0 subset without CIDR-prefix IP masks: exact-or-wild per
    field, which is what the LegoSDN applications and experiments need. *)

type t = {
  in_port : Types.port_no option;
  dl_src : Types.mac option;
  dl_dst : Types.mac option;
  dl_vlan : int option option;  (** [Some None] matches untagged explicitly. *)
  dl_type : int option;
  nw_src : Types.ip option;
  nw_dst : Types.ip option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

val any : t
(** The all-wildcard match. *)

val make :
  ?in_port:Types.port_no ->
  ?dl_src:Types.mac ->
  ?dl_dst:Types.mac ->
  ?dl_vlan:int option ->
  ?dl_type:int ->
  ?nw_src:Types.ip ->
  ?nw_dst:Types.ip ->
  ?nw_proto:int ->
  ?nw_tos:int ->
  ?tp_src:int ->
  ?tp_dst:int ->
  unit ->
  t
(** A match with the given exact fields; everything omitted is wildcarded. *)

val exact : in_port:Types.port_no -> Packet.t -> t
(** The fully-specified match extracted from a packet, as a learning switch
    would install it. *)

val matches : t -> in_port:Types.port_no -> Packet.t -> bool
(** Does the packet arriving on [in_port] satisfy this match? *)

val subsumes : t -> t -> bool
(** [subsumes pat m] is true when every packet matched by [m] is also
    matched by [pat] — the OF 1.0 non-strict delete/modify semantics:
    [pat] must be equal or strictly wilder on every field. *)

val overlaps : t -> t -> bool
(** Two matches overlap when some packet could satisfy both (fields conflict
    nowhere). Used for overlap checking on flow insertion. *)

val wildcard_count : t -> int
(** Number of wildcarded fields; 0 means fully exact. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val encode : Buf.writer -> t -> unit
val decode : Buf.reader -> t
