open Controller

(* ---------------- elections ---------------- *)

(* Log commands are diagnostics, not forwarding behaviour: two variants
   that differ only in what they log cast the same vote. *)
let canonical cmds =
  List.filter (function Command.Log _ -> false | _ -> true) cmds

type 'v ballot = { voter : 'v; commands : Command.t list }

type 'v election = {
  winners : 'v ballot list;
  losers : 'v ballot list;
  majority : bool;
}

let elect = function
  | [] -> None
  | ballots ->
      (* Group by canonical command set, preserving first-arrival order of
         both the groups and their members. *)
      let groups =
        List.fold_left
          (fun acc b ->
            let key = canonical b.commands in
            let rec add = function
              | [] -> [ (key, [ b ]) ]
              | (k, members) :: rest when k = key -> (k, b :: members) :: rest
              | g :: rest -> g :: add rest
            in
            add acc)
          [] ballots
        |> List.map (fun (k, members) -> (k, List.rev members))
      in
      (* Largest group wins; a tie goes to the earliest-arrived group (the
         strict [>] below never replaces an equal-sized earlier group). *)
      let _, winners =
        List.fold_left
          (fun ((best_n, _) as best) (k, members) ->
            let n = List.length members in
            if n > best_n then (n, (k, members)) else best)
          (0, ([], []))
          groups
        |> snd
      in
      let losers =
        List.filter (fun b -> not (List.memq b winners)) ballots
      in
      Some
        {
          winners;
          losers;
          majority = 2 * List.length winners > List.length ballots;
        }

(* ---------------- the sandboxed panel ---------------- *)

type config = { nv_replicas : int; nv_adaptive : bool; nv_shed_after : int }

let default_config = { nv_replicas = 3; nv_adaptive = true; nv_shed_after = 8 }

type variant = { box : Sandbox.t; resyncable : bool }

type t = {
  vname : string;
  variants : variant list;  (* primary first *)
  vcfg : config;
  ship_store : Checkpoint.Chunk_store.t;
  mutable last_ship : Checkpoint.Chunk_store.manifest option;
      (* Kept across events so consecutive majority snapshots dedup
         against each other in the chunk store. *)
  mutable panel : bool;  (* full panel, or shed to the primary alone *)
  mutable quiet : int;  (* consecutive clean unanimous elections *)
}

let create ?(config = default_config) ~make_ckpt ~checkpoint_every specs =
  if specs = [] then invalid_arg "Voter.create: no variants";
  let variants =
    List.map
      (fun (app, resyncable) ->
        {
          box = Sandbox.create ~ckpt:(make_ckpt ()) ~checkpoint_every app;
          resyncable;
        })
      specs
  in
  let vname = Sandbox.name (List.hd variants).box in
  List.iter
    (fun v ->
      if Sandbox.name v.box <> vname then
        invalid_arg
          (Printf.sprintf "Voter.create: variant %s does not share name %s"
             (Sandbox.name v.box) vname))
    variants;
  {
    vname;
    variants;
    vcfg = config;
    ship_store = Checkpoint.Chunk_store.create ();
    last_ship = None;
    panel = true;
    quiet = 0;
  }

let replicate ?(config = default_config) ~make_ckpt ~checkpoint_every app =
  let n = max 1 config.nv_replicas in
  create ~config ~make_ckpt ~checkpoint_every
    (List.init n (fun _ -> (app, true)))

let name t = t.vname
let config t = t.vcfg
let sandboxes t = List.map (fun v -> v.box) t.variants
let primary_variant t = List.hd t.variants
let primary t = (primary_variant t).box
let panel_active t = t.panel

(* Ship the donor's snapshot to every re-syncable recipient through the
   chunk store — the same manifest mechanism a standby's state transfer
   uses, so repeated re-syncs of a persistently-divergent variant pay only
   for the chunks that changed. *)
let ship (deps : Crashpad.deps) t ~donor recipients =
  let recipients =
    List.filter (fun r -> r.resyncable && r.box != donor.box) recipients
  in
  if donor.resyncable && recipients <> [] then begin
    let snap = Sandbox.snapshot_bytes donor.box in
    let manifest, _write = Checkpoint.Chunk_store.store t.ship_store snap in
    let logical = Checkpoint.Chunk_store.manifest_bytes manifest in
    List.iter
      (fun r ->
        let bytes = Checkpoint.Chunk_store.materialize t.ship_store manifest in
        Sandbox.restore_bytes r.box bytes;
        Metrics.incr_nv_resyncs deps.Crashpad.metrics;
        Metrics.add_nv_resync_bytes deps.Crashpad.metrics logical;
        Obs.Tracer.instant deps.Crashpad.tracer
          ~attrs:[ ("app", t.vname); ("bytes", string_of_int logical) ]
          Obs.Span.State_transfer)
      recipients;
    (match t.last_ship with
    | Some prev -> Checkpoint.Chunk_store.release t.ship_store prev
    | None -> ());
    t.last_ship <- Some manifest
  end

let failure_of_verdict = function
  | Sandbox.Crashed { partial; detail } -> Detector.Fail_stop { detail; partial }
  | Sandbox.Hung -> Detector.Hang
  | Sandbox.Done _ -> invalid_arg "Voter.failure_of_verdict: Done"

(* Every subscribed variant died on the event: the panel could not mask,
   so the bundle fails exactly once — one counted failure, one downtime
   charge, one compromise, one ticket — and every variant is repaired. *)
let bundle_failure (cfg : Crashpad.config) (deps : Crashpad.deps) t event
    results txn =
  let failure =
    match results with
    | (_, verdict) :: _ -> failure_of_verdict verdict
    | [] -> Detector.Hang (* unreachable: the gate checked a live primary *)
  in
  txn.Txn_engine.abort ();
  let attrs =
    if Obs.Tracer.enabled deps.tracer then
      [ ("phase", "replay"); ("app", t.vname) ]
    else []
  in
  Obs.Tracer.with_span deps.tracer ~attrs Obs.Span.Recovery (fun () ->
      Crashpad.count_failure deps failure;
      Metrics.add_app_downtime deps.metrics ~app:t.vname
        (Detector.detection_delay cfg.timing failure);
      List.iter
        (fun (v, _) ->
          let r = Sandbox.recover ~tracer:deps.tracer v.box (deps.context ()) in
          Metrics.incr_replayed deps.metrics r.Sandbox.replayed;
          Metrics.incr_dropped_in_replay deps.metrics r.Sandbox.dropped_in_replay)
        results);
  Crashpad.note_quarantine cfg deps (primary t) event;
  Crashpad.apply_policy cfg deps (primary t) event failure ~rolled_back:0;
  t.quiet <- 0;
  (* Re-converge the family on whatever state the compromise left the
     primary in. *)
  ship deps t ~donor:(primary_variant t) (List.tl t.variants)

(* The majority output failed Crash-Pad's screening (byzantine or aimed at
   an unreachable switch): the vote could not mask it, so treat it as a
   solo failure of the bundle. *)
let majority_failure (cfg : Crashpad.config) (deps : Crashpad.deps) t event
    ballots txn failure =
  txn.Txn_engine.abort ();
  List.iter (fun b -> Sandbox.revert_last b.voter.box) ballots;
  Crashpad.count_failure deps failure;
  Crashpad.note_quarantine cfg deps (primary t) event;
  Crashpad.apply_policy cfg deps (primary t) event failure ~rolled_back:0;
  t.quiet <- 0;
  ship deps t ~donor:(primary_variant t) (List.tl t.variants)

let panel_dispatch (cfg : Crashpad.config) (deps : Crashpad.deps) t event =
  Metrics.incr_nv_events deps.metrics;
  let tracer = deps.tracer in
  let live =
    List.filter
      (fun v ->
        Sandbox.alive v.box
        && Sandbox.subscribes_to v.box (Event.kind_of event))
      t.variants
  in
  if not cfg.batched_checkpoints then
    List.iter (fun v -> Sandbox.prepare ~tracer v.box) live;
  let attrs =
    if Obs.Tracer.enabled tracer then
      [ ("app", t.vname); ("live", string_of_int (List.length live)) ]
    else []
  in
  Obs.Tracer.with_span tracer ~attrs Obs.Span.Vote @@ fun () ->
  (* The transaction is opened before any delivery and commands are held
     in it only after the election: nothing a variant emits can reach the
     network before the vote. *)
  let txn = deps.engine.Txn_engine.begin_txn ~app:t.vname in
  let results =
    List.map
      (fun v ->
        let attrs =
          if Obs.Tracer.enabled tracer then [ ("app", t.vname) ] else []
        in
        let verdict =
          Obs.Tracer.with_span tracer ~attrs Obs.Span.App_handle (fun () ->
              Sandbox.deliver v.box (deps.context ()) event)
        in
        (v, verdict))
      live
  in
  let ballots =
    List.filter_map
      (function
        | v, Sandbox.Done cmds -> Some { voter = v; commands = cmds }
        | _, (Sandbox.Crashed _ | Sandbox.Hung) -> None)
      results
  in
  let casualties =
    List.filter
      (fun (_, verdict) ->
        match verdict with Sandbox.Done _ -> false | _ -> true)
      results
  in
  match elect ballots with
  | None -> bundle_failure cfg deps t event results txn
  | Some e -> (
      if not e.majority then Metrics.incr_nv_no_majority deps.metrics;
      let winner = List.hd e.winners in
      let wbox = winner.voter.box in
      let commands = winner.commands in
      (* Screen the elected output exactly as Crash-Pad screens a solo
         app: resource limits, byzantine check, unreachable switches. *)
      let breaches =
        Resources.check cfg.limits
          ~state_bytes:(fun () -> Sandbox.state_size wbox)
          ~commands_emitted:(List.length commands)
      in
      if breaches <> [] then begin
        txn.Txn_engine.abort ();
        List.iter (fun b -> Sandbox.revert_last b.voter.box) ballots;
        Metrics.incr_resource_breach deps.metrics;
        ignore
          (Ticket.file deps.tickets ~now:(deps.now ()) ~app:t.vname ~event
             ~diagnosis:
               (String.concat "; " (List.map Resources.describe breaches))
             ~resolution:Ticket.Blocked ~rolled_back_ops:0 ());
        (* The majority breached together: contain the family. *)
        List.iter
          (fun v ->
            Sandbox.reboot v.box;
            Sandbox.checkpoint_now v.box)
          live;
        t.quiet <- 0
      end
      else
        match
          Detector.check_byzantine ~tracer ?engine:deps.incremental
            ~invariants:cfg.invariants deps.net commands
        with
        | Some failure -> majority_failure cfg deps t event ballots txn failure
        | None -> (
            match
              List.find_map
                (fun cmd ->
                  match Crashpad.switch_of_command cmd with
                  | Some sid when deps.unreachable sid -> Some sid
                  | Some _ | None -> None)
                commands
            with
            | Some sid ->
                majority_failure cfg deps t event ballots txn
                  (Detector.Unreachable { switch = sid })
            | None ->
                let attrs =
                  if Obs.Tracer.enabled tracer then
                    [
                      ("app", t.vname);
                      ("commands", string_of_int (List.length commands));
                    ]
                  else []
                in
                Obs.Tracer.with_span tracer ~attrs Obs.Span.Txn_commit
                  (fun () ->
                    List.iter
                      (fun cmd ->
                        let replies = txn.Txn_engine.apply cmd in
                        match Crashpad.switch_of_command cmd with
                        | Some sid -> Crashpad.route_replies deps wbox sid replies
                        | None -> ())
                      commands;
                    txn.Txn_engine.commit ());
                List.iter (fun b -> Sandbox.confirm b.voter.box event) e.winners;
                Crashpad.reconcile_intent cfg deps wbox;
                (* Out-voted variants: output discarded, state reverted,
                   then rebuilt from the majority snapshot. *)
                List.iter
                  (fun b ->
                    Sandbox.revert_last b.voter.box;
                    Metrics.incr_nv_outvoted deps.metrics;
                    Obs.Tracer.instant tracer
                      ~attrs:[ ("app", t.vname) ]
                      Obs.Span.Outvoted)
                  e.losers;
                if e.losers <> [] then Metrics.incr_nv_masked deps.metrics;
                List.iter
                  (fun (v, _) ->
                    Metrics.incr_nv_variant_crashes deps.metrics;
                    ignore
                      (Sandbox.recover ~tracer v.box (deps.context ())))
                  casualties;
                ship deps t ~donor:winner.voter
                  (List.map (fun b -> b.voter) e.losers
                  @ List.map fst casualties);
                if e.losers = [] && casualties = [] && e.majority then begin
                  t.quiet <- t.quiet + 1;
                  if
                    t.vcfg.nv_adaptive
                    && t.quiet >= t.vcfg.nv_shed_after
                    && List.length t.variants > 1
                  then begin
                    t.panel <- false;
                    Metrics.incr_nv_sheds deps.metrics
                  end
                end
                else t.quiet <- 0))

(* Shed mode: the primary runs alone under ordinary Crash-Pad dispatch.
   Any failure re-spins the full panel, re-synchronised from whatever
   state recovery left the primary in. *)
let shed_dispatch (cfg : Crashpad.config) (deps : Crashpad.deps) t event =
  match Crashpad.attempt cfg deps (primary t) event with
  | Ok () -> ()
  | Error (failure, rolled_back) ->
      Crashpad.note_quarantine cfg deps (primary t) event;
      Crashpad.apply_policy cfg deps (primary t) event failure ~rolled_back;
      if t.vcfg.nv_adaptive && List.length t.variants > 1 then begin
        t.panel <- true;
        t.quiet <- 0;
        Metrics.incr_nv_grows deps.metrics;
        ship deps t ~donor:(primary_variant t) (List.tl t.variants)
      end

let dispatch cfg deps t event =
  let p = primary t in
  if
    Sandbox.alive p
    && Sandbox.subscribes_to p (Event.kind_of event)
    && not (Crashpad.quarantine_blocked cfg deps p event)
  then
    if t.panel then panel_dispatch cfg deps t event
    else shed_dispatch cfg deps t event
