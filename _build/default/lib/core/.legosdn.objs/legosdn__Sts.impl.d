lib/core/sts.ml: App_sig Controller Event List
