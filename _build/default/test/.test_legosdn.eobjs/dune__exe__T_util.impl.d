test/t_util.ml: Action Alcotest Controller Int64 List Message Netsim Ofp_match Openflow Packet QCheck2
