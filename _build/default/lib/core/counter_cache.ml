open Openflow

type key = Types.switch_id * Ofp_match.t * int

type t = (key, int * int) Hashtbl.t

let create () : t = Hashtbl.create 32

let credit t sid pattern ~priority ~packets ~bytes =
  let key = (sid, pattern, priority) in
  let p0, b0 = Option.value (Hashtbl.find_opt t key) ~default:(0, 0) in
  Hashtbl.replace t key (p0 + packets, b0 + bytes)

let base t sid pattern ~priority =
  Option.value (Hashtbl.find_opt t (sid, pattern, priority)) ~default:(0, 0)

let adjust_reply t sid ~request reply =
  match reply with
  | Message.Flow_stats_reply stats ->
      Message.Flow_stats_reply
        (List.map
           (fun (fs : Message.flow_stat) ->
             let p, b = base t sid fs.fs_pattern ~priority:fs.fs_priority in
             {
               fs with
               fs_packet_count = fs.fs_packet_count + p;
               fs_byte_count = fs.fs_byte_count + b;
             })
           stats)
  | Message.Aggregate_stats_reply agg ->
      let pattern =
        match request with
        | Message.Aggregate_stats_request m | Message.Flow_stats_request m -> m
        | Message.Port_stats_request _ | Message.Description_request ->
            Ofp_match.any
      in
      let extra_p, extra_b =
        Hashtbl.fold
          (fun (s, m, _prio) (p, b) (ap, ab) ->
            if s = sid && Ofp_match.subsumes pattern m then (ap + p, ab + b)
            else (ap, ab))
          t (0, 0)
      in
      Message.Aggregate_stats_reply
        {
          packets = agg.packets + extra_p;
          bytes = agg.bytes + extra_b;
          flows = agg.flows;
        }
  | Message.Port_stats_reply _ | Message.Description_reply _ -> reply

let entries t = Hashtbl.length t
