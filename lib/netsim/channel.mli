(** Per-switch control-channel fault model.

    The seed repository treated the southbound channel as a perfect
    function call: {!Net.send} never lost, delayed or duplicated a
    message. This module makes the channel an explicit, failable component
    so the transaction engine's atomicity claims can be exercised on a
    degraded network (Rama-style exactly-once delivery is then built on
    top of it by {!Legosdn.Reliable}).

    Every switch gets its own channel with its own seeded RNG, so runs are
    deterministic for a given [(seed, config)] pair regardless of how many
    switches share the network. *)

(** Latency applied to delivered controller-to-switch copies. *)
type delay =
  | No_delay
  | Fixed of float  (** Constant delay, in virtual seconds. *)
  | Uniform of float * float  (** Uniform in [lo, hi). *)

type config = {
  loss : float;  (** P(drop) per controller-to-switch copy, in [0, 1]. *)
  reply_loss : float;  (** P(drop) per switch-to-controller message. *)
  duplicate : float;
      (** P(a delivered controller-to-switch message arrives twice). *)
  delay : delay;
}

val perfect : config
(** No loss, no duplication, no delay — the seed's behaviour. *)

val lossy : float -> config
(** [lossy p] drops each message in either direction with probability [p];
    no delay, no duplication. *)

type stats = {
  mutable sent : int;  (** Controller-to-switch messages offered. *)
  mutable lost : int;  (** Dropped by loss or partition, forward path. *)
  mutable duplicated : int;  (** Extra copies created. *)
  mutable delayed : int;  (** Copies scheduled for later delivery. *)
  mutable replies_sent : int;  (** Switch-to-controller messages offered. *)
  mutable replies_lost : int;  (** Dropped on the reverse path. *)
}

type t

val create : ?config:config -> seed:int -> unit -> t

val config : t -> config
val set_config : t -> config -> unit
val set_loss : t -> float -> unit
(** Set [loss] and [reply_loss] together (a symmetric loss burst). *)

val partitioned : t -> bool
val set_partitioned : t -> bool -> unit
(** A partitioned channel silently drops everything in both directions —
    the switch is alive and forwarding, only the control session is cut. *)

val stats : t -> stats

val forward : t -> float list option
(** Verdict for one controller-to-switch message: [None] means the message
    is lost; [Some delays] means one copy is delivered per list element,
    each after the given delay (0. = immediately). Duplication yields a
    two-element list. *)

val reverse : t -> bool
(** Verdict for one switch-to-controller message: [false] means lost. *)
