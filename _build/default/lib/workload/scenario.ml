module Net = Netsim.Net
module Clock = Netsim.Clock
module Event_queue = Netsim.Event_queue
module Monolithic = Controller.Monolithic
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox

type driver = {
  label : string;
  step : unit -> unit;
  tick : unit -> unit;
  controller_up : unit -> bool;
  restart_controller : unit -> unit;
  app_alive : string -> bool;
  app_names : string list;
}

let monolithic_driver controller =
  {
    label = "monolithic";
    step = (fun () -> Monolithic.step controller);
    tick = (fun () -> Monolithic.tick controller);
    controller_up =
      (fun () -> Monolithic.status controller = Monolithic.Running);
    restart_controller = (fun () -> Monolithic.restart controller);
    app_alive =
      (fun name ->
        (* Fate-sharing: an app is in service iff the whole stack is. *)
        Monolithic.status controller = Monolithic.Running
        && List.exists
             (fun inst -> Controller.App_sig.name inst = name)
             (Monolithic.apps controller));
    app_names =
      List.map Controller.App_sig.name (Monolithic.apps controller);
  }

let legosdn_driver runtime =
  {
    label = "legosdn";
    step = (fun () -> Runtime.step runtime);
    tick = (fun () -> Runtime.tick runtime);
    controller_up = (fun () -> true);
    restart_controller = (fun () -> ());
    app_alive =
      (fun name ->
        match Runtime.sandbox runtime name with
        | Some box -> Sandbox.alive box
        | None -> false);
    app_names = List.map Sandbox.name (Runtime.sandboxes runtime);
  }

type t = {
  make_topology : unit -> Netsim.Topology.t;
  duration : float;
  traffic : Traffic.injection list;
  faults : Failure_schedule.timed_fault list;
  tick_interval : float option;
  sample_interval : float;
  restart_delay : float;
}

let make ?(faults = []) ?tick_interval ?(sample_interval = 0.5)
    ?(restart_delay = 10.) ~make_topology ~duration ~traffic () =
  {
    make_topology;
    duration;
    traffic;
    faults;
    tick_interval;
    sample_interval;
    restart_delay;
  }

type report = {
  label : string;
  duration : float;
  controller_downtime : float;
  controller_availability : float;
  controller_crashes : int;
  app_availability : (string * float) list;
  mean_connectivity : float;
  min_connectivity : float;
  events_delivered : int;
  packets_injected : int;
  samples : (float * float) list;
}

type action =
  | Inject of Traffic.injection
  | Fault of Net.fault
  | Do_tick
  | Sample
  | Restart

let run scenario ~make_driver =
  let clock = Clock.create () in
  let topo = scenario.make_topology () in
  let net = Net.create clock topo in
  let driver = make_driver net in
  let queue = Event_queue.create () in
  List.iter
    (fun (inj : Traffic.injection) ->
      Event_queue.push queue ~time:inj.at (Inject inj))
    scenario.traffic;
  List.iter
    (fun (at, fault) -> Event_queue.push queue ~time:at (Fault fault))
    scenario.faults;
  (match scenario.tick_interval with
  | None -> ()
  | Some interval ->
      let rec go t =
        if t < scenario.duration then begin
          Event_queue.push queue ~time:t Do_tick;
          go (t +. interval)
        end
      in
      go interval);
  let rec go t =
    if t < scenario.duration then begin
      Event_queue.push queue ~time:t Sample;
      go (t +. scenario.sample_interval)
    end
  in
  go scenario.sample_interval;
  (* Bookkeeping. *)
  let downtime = ref 0. in
  let down_since = ref None in
  let crashes = ref 0 in
  let injected = ref 0 in
  let connectivity_samples = ref [] in
  let liveness : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let sample_liveness () =
    List.iter
      (fun name ->
        let alive, total =
          Option.value (Hashtbl.find_opt liveness name) ~default:(0, 0)
        in
        let alive = if driver.app_alive name then alive + 1 else alive in
        Hashtbl.replace liveness name (alive, total + 1))
      driver.app_names
  in
  (* Initial handshake. *)
  driver.step ();
  let handle_action = function
    | Inject inj ->
        incr injected;
        Net.inject net inj.Traffic.src inj.Traffic.packet
    | Fault fault -> Net.apply_fault net fault
    | Do_tick -> if driver.controller_up () then driver.tick ()
    | Sample ->
        connectivity_samples :=
          (Clock.now clock, Net.connectivity net) :: !connectivity_samples;
        sample_liveness ()
    | Restart ->
        (* Notifications that arrived while the controller was dead were
           lost with its switch connections. *)
        ignore (Net.poll net);
        driver.restart_controller ();
        (match !down_since with
        | Some since ->
            downtime := !downtime +. (Clock.now clock -. since);
            down_since := None
        | None -> ())
  in
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, action) ->
        if time <= scenario.duration then begin
          Clock.advance_to clock (max time (Clock.now clock));
          Net.tick net;
          handle_action action;
          if driver.controller_up () then driver.step ()
          else if !down_since = None then begin
            (* Transition to dead: start the outage and summon the
               operator. *)
            down_since := Some (Clock.now clock);
            incr crashes;
            Event_queue.push queue
              ~time:(Clock.now clock +. scenario.restart_delay)
              Restart
          end;
          (* The action itself may have killed the controller (dispatch
             happens inside step). *)
          if (not (driver.controller_up ())) && !down_since = None then begin
            down_since := Some (Clock.now clock);
            incr crashes;
            Event_queue.push queue
              ~time:(Clock.now clock +. scenario.restart_delay)
              Restart
          end;
          loop ()
        end
  in
  loop ();
  Clock.advance_to clock (max scenario.duration (Clock.now clock));
  (match !down_since with
  | Some since -> downtime := !downtime +. (scenario.duration -. since)
  | None -> ());
  let samples = List.rev !connectivity_samples in
  let connectivities = List.map snd samples in
  let mean l =
    if l = [] then 0. else List.fold_left ( +. ) 0. l /. float (List.length l)
  in
  {
    label = driver.label;
    duration = scenario.duration;
    controller_downtime = !downtime;
    controller_availability = 1. -. (!downtime /. scenario.duration);
    controller_crashes = !crashes;
    app_availability =
      driver.app_names
      |> List.map (fun name ->
             let alive, total =
               Option.value (Hashtbl.find_opt liveness name) ~default:(0, 0)
             in
             (name, if total = 0 then 1. else float alive /. float total));
    mean_connectivity = mean connectivities;
    min_connectivity =
      List.fold_left min 1. connectivities;
    events_delivered = (Net.stats net).Net.delivered;
    packets_injected = !injected;
    samples;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: duration=%.1fs controller-availability=%.4f (downtime=%.2fs, crashes=%d)@,\
     mean-connectivity=%.3f min=%.3f injected=%d delivered=%d@,apps: %a@]"
    r.label r.duration r.controller_availability r.controller_downtime
    r.controller_crashes r.mean_connectivity r.min_connectivity
    r.packets_injected r.events_delivered
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f (name, a) -> Format.fprintf f "%s=%.4f" name a))
    r.app_availability
