open Openflow
module Topology = Netsim.Topology
module Flow_entry = Netsim.Flow_entry
module Sw = Netsim.Sw
module Net = Netsim.Net
module Clock = Netsim.Clock

type event =
  | Trace_hit
  | Trace_miss
  | Trace_invalidated
  | Switch_recaptured of Types.switch_id
  | Check_memoized

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  recaptures : int;
  memoized_checks : int;
}

(* A cached probe is valid while every switch it depended on still has the
   epoch it had when the trace ran. Deps are the switches the packet
   visited (plus the src/dst attachment switches, which decide whether the
   trace starts or delivers at all): a trace is built hop by hop from the
   state of exactly those switches, so if none was re-captured, re-tracing
   would retread the same hops and produce the same probe. *)
type cached_trace = {
  probe : Snapshot.probe;
  deps : (Types.switch_id * int) list;
}

type t = {
  net : Net.t;
  mutable snap : Snapshot.t;
  versions : (Types.switch_id, int) Hashtbl.t;
      (* last-seen Sw.version per switch *)
  epochs : (Types.switch_id, int) Hashtbl.t;
      (* bumped on every re-capture; what cache lines key validity on *)
  horizons : (Types.switch_id, float) Hashtbl.t;
      (* earliest future instant a flow entry of the switch could expire *)
  cache : (Topology.host * Topology.host, cached_trace) Hashtbl.t;
  mutable memo_check : (Checker.invariant list * Checker.violation list) option;
      (* last full-check result; valid until any switch is re-captured *)
  observer : event -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable recaptures : int;
  mutable memoized : int;
}

(* Earliest instant at which the entry could expire. [last_used] only ever
   moves forward (live traffic refreshing an idle timeout), so a horizon
   computed from it is at worst conservative: the switch gets re-captured
   no later than the true first expiry. Entries already expired are
   excluded — they cannot revive (the live table filters expired entries
   before accounting matches), so they would otherwise pin the horizon in
   the past and keep the switch permanently dirty. *)
let deadline (e : Flow_entry.t) =
  let idle =
    if e.idle_timeout > 0 then e.last_used +. float e.idle_timeout
    else infinity
  in
  let hard =
    if e.hard_timeout > 0 then e.installed_at +. float e.hard_timeout
    else infinity
  in
  min idle hard

let horizon_of ~now rules =
  List.fold_left
    (fun acc e ->
      let d = deadline e in
      if d > now then min acc d else acc)
    infinity rules

let bump_epoch t sid =
  Hashtbl.replace t.epochs sid
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.epochs sid))

let record t sid ~now =
  Hashtbl.replace t.versions sid (Sw.version (Net.switch t.net sid));
  Hashtbl.replace t.horizons sid (horizon_of ~now (Snapshot.entries t.snap sid))

let create ?(observer = fun _ -> ()) net =
  let t =
    {
      net;
      snap = Snapshot.of_net net;
      versions = Hashtbl.create 32;
      epochs = Hashtbl.create 32;
      horizons = Hashtbl.create 32;
      cache = Hashtbl.create 256;
      memo_check = None;
      observer;
      hits = 0;
      misses = 0;
      invalidations = 0;
      recaptures = 0;
      memoized = 0;
    }
  in
  let now = Clock.now (Net.clock net) in
  List.iter
    (fun sid ->
      Hashtbl.replace t.epochs sid 0;
      record t sid ~now)
    (Topology.switches (Net.topology net));
  t

(* A switch is dirty when its forwarding-state version moved (rules, port
   or liveness changes) or when the clock crossed its expiry horizon, in
   which case some entry may have timed out with no version change. Both
   re-capture the switch into the persistent snapshot and bump its epoch,
   invalidating (lazily) every cached trace that visited it. *)
let refresh t =
  let now = Clock.now (Net.clock t.net) in
  let dirty =
    List.filter
      (fun sid ->
        let version_moved =
          match Hashtbl.find_opt t.versions sid with
          | Some v -> v <> Sw.version (Net.switch t.net sid)
          | None -> true
        in
        version_moved
        ||
        match Hashtbl.find_opt t.horizons sid with
        | Some h -> now >= h
        | None -> true)
      (Topology.switches (Net.topology t.net))
  in
  (* Even with nothing dirty the snapshot's clock must advance: no entry of
     a clean switch crosses its deadline before the horizon, so moving
     [frozen_at] to [now] changes no lookup there. *)
  t.snap <- Snapshot.refresh t.snap t.net ~dirty;
  if dirty <> [] then t.memo_check <- None;
  List.iter
    (fun sid ->
      bump_epoch t sid;
      record t sid ~now;
      t.recaptures <- t.recaptures + 1;
      t.observer (Switch_recaptured sid))
    dirty

let snapshot t = t.snap

let valid t deps =
  List.for_all
    (fun (sid, ep) -> Hashtbl.find_opt t.epochs sid = Some ep)
    deps

let attachment topo h =
  match Topology.host_attachment topo h with
  | Some (sid, _) -> [ sid ]
  | None -> []

let deps_of t probe src dst =
  let topo = Snapshot.topology t.snap in
  let sids =
    List.map fst probe.Snapshot.path
    @ attachment topo src @ attachment topo dst
  in
  List.map
    (fun sid -> (sid, Option.value ~default:0 (Hashtbl.find_opt t.epochs sid)))
    (List.sort_uniq compare sids)

let trace_cached t src dst =
  match Hashtbl.find_opt t.cache (src, dst) with
  | Some line when valid t line.deps ->
      t.hits <- t.hits + 1;
      t.observer Trace_hit;
      line.probe
  | stale ->
      if stale <> None then begin
        t.invalidations <- t.invalidations + 1;
        t.observer Trace_invalidated
      end;
      t.misses <- t.misses + 1;
      t.observer Trace_miss;
      let probe = Snapshot.trace t.snap src (Checker.canonical_packet src dst) in
      Hashtbl.replace t.cache (src, dst) { probe; deps = deps_of t probe src dst };
      probe

(* The steady-state fast path: when refresh re-captured nothing, every
   switch is bit-identical to the previous check, so the previous violation
   list — not just the traces behind it — is still the answer. A clean
   back-to-back check is then one version scan over the switches. Several
   invariants request the same pair, so live checks also wrap the
   persistent cache in a per-call memo: each pair is validated once per
   check, not once per invariant. *)
let full_check ?invariants t =
  refresh t;
  let invs = Option.value ~default:Checker.default invariants in
  match t.memo_check with
  | Some (invs', result) when invs' = invs ->
      t.memoized <- t.memoized + 1;
      t.observer Check_memoized;
      result
  | _ ->
      let memo = Hashtbl.create 64 in
      let trace src dst =
        match Hashtbl.find_opt memo (src, dst) with
        | Some probe -> probe
        | None ->
            let probe = trace_cached t src dst in
            Hashtbl.replace memo (src, dst) probe;
            probe
      in
      let result = Checker.check_with ~invariants:invs ~trace t.snap in
      t.memo_check <- Some (invs, result);
      result

let check ?invariants t = full_check ?invariants t

let check_flow_mods ?invariants t mods =
  (* The "before" set is mostly cache (or whole-result memo) reads — and
     misses it takes warm the persistent cache for both the "after" pass
     and future checks. *)
  let before = full_check ?invariants t in
  let overlay = Snapshot.apply_flow_mods t.snap mods in
  let modified = List.sort_uniq compare (List.map fst mods) in
  let memo = Hashtbl.create 64 in
  (* A trace whose visited switches exclude every modified one is identical
     under the overlay, so the (just-warmed) persistent line is reused.
     Anything else is traced against the overlay and memoized only for this
     call — hypothetical state never enters the persistent cache. *)
  let trace_after src dst =
    match Hashtbl.find_opt memo (src, dst) with
    | Some probe -> probe
    | None ->
        let probe =
          match Hashtbl.find_opt t.cache (src, dst) with
          | Some line
            when valid t line.deps
                 && not
                      (List.exists
                         (fun (sid, _) -> List.mem sid modified)
                         line.deps) ->
              t.hits <- t.hits + 1;
              t.observer Trace_hit;
              line.probe
          | _ ->
              t.misses <- t.misses + 1;
              t.observer Trace_miss;
              Snapshot.trace overlay src (Checker.canonical_packet src dst)
        in
        Hashtbl.replace memo (src, dst) probe;
        probe
  in
  let after = Checker.check_with ?invariants ~trace:trace_after overlay in
  Checker.diff_new ~before after

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    recaptures = t.recaptures;
    memoized_checks = t.memoized;
  }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "trace cache: %d hits, %d misses (%d after invalidation); %d switch \
     re-captures; %d whole-check memo hits"
    s.hits s.misses s.invalidations s.recaptures s.memoized_checks
