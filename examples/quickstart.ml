module App_sig = Controller.App_sig
(* Quickstart: the paper's core claim in one run.

   A learning switch with an injected deterministic bug (it crashes on the
   3rd packet-in) runs alongside a firewall, first on a monolithic
   FloodLight-style controller, then under LegoSDN. The monolithic stack
   dies with the app; LegoSDN rolls back, restores the app from its
   checkpoint, transforms/ignores the poisoned event, files a ticket, and
   everything keeps running.

   Run with: dune exec examples/quickstart.exe *)

module Clock = Netsim.Clock
module Net = Netsim.Net
module Topo_gen = Netsim.Topo_gen
module Monolithic = Controller.Monolithic
module Runtime = Legosdn.Runtime
module Sandbox = Legosdn.Sandbox

let buggy_learning_switch () =
  Apps.Faulty.wrap
    ~bug:(Apps.Bug_model.crash_on_nth Controller.Event.K_packet_in 3)
    (App_sig.app (module Apps.Learning_switch))

let apps () : Controller.App_sig.app list =
  [ buggy_learning_switch (); (App_sig.app (module Apps.Firewall)) ]

(* Drive some host-pair traffic through a controller, stepping after each
   injection so packet-ins are dispatched. *)
let send_traffic net step =
  let pairs = [ (1, 2); (2, 1); (1, 3); (3, 1); (2, 3) ] in
  List.iter
    (fun (src, dst) ->
      Clock.advance_by (Net.clock net) 0.1;
      Net.inject net src (Openflow.Packet.tcp ~src_host:src ~dst_host:dst ());
      step ())
    pairs

let () =
  Printf.printf "=== LegoSDN quickstart ===\n\n";

  (* 1. Monolithic baseline: fate sharing in action. *)
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let mono = Monolithic.create net (apps ()) in
  Monolithic.step mono;
  send_traffic net (fun () -> Monolithic.step mono);
  (match Monolithic.status mono with
  | Monolithic.Crashed info ->
      Printf.printf
        "monolithic: controller CRASHED at t=%.1fs — culprit %s (%s)\n"
        info.Monolithic.at info.Monolithic.culprit info.Monolithic.detail;
      Printf.printf
        "monolithic: the firewall died too, though it has no bug.\n\n"
  | Monolithic.Running ->
      Printf.printf "monolithic: unexpectedly survived?!\n\n");

  (* 2. LegoSDN: same apps, same traffic, same bug. *)
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  let lego = Runtime.create net (apps ()) in
  Runtime.step lego;
  send_traffic net (fun () -> Runtime.step lego);

  Printf.printf "legosdn: controller still RUNNING.\n";
  List.iter
    (fun box ->
      Printf.printf "legosdn: app %-16s alive=%b events=%d crashes=%d\n"
        (Sandbox.name box) (Sandbox.alive box) (Sandbox.events_handled box)
        (Sandbox.crash_count box))
    (Runtime.sandboxes lego);
  let m = Runtime.metrics lego in
  Printf.printf
    "legosdn: recovered %d crash(es); %d event(s) transformed, %d ignored\n"
    (Legosdn.Metrics.crashes m)
    (Legosdn.Metrics.transformed m)
    (Legosdn.Metrics.ignored m);
  Printf.printf "\nProblem tickets filed for the developer:\n";
  List.iter
    (fun t -> Format.printf "%a@." Legosdn.Ticket.pp t)
    (Runtime.tickets lego);
  Printf.printf "\nNetwork connectivity right now: %.0f%% of host pairs\n"
    (100. *. Net.connectivity net)
