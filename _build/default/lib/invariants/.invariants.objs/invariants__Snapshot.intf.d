lib/invariants/snapshot.mli: Message Netsim Openflow Packet Types
