lib/core/policy.mli: Controller Format
