(** Incremental invariant checking for the Crash-Pad hot path.

    A full check freezes the whole network ({!Snapshot.of_net}) and traces
    every host pair from scratch — O(switches + pairs × path length) per
    transaction even when the app touched one switch. This engine keeps a
    persistent snapshot and a trace cache between checks and re-does only
    the work invalidated since the last call:

    - each switch carries a monotonic {!Netsim.Sw.version}; the engine
      re-captures (and re-shares everything else of) a switch only when its
      version moved or a flow-entry timeout may have fired;
    - each cached trace records the switches it visited; it is reused
      verbatim while none of them was re-captured.

    Results are exactly those of the full {!Checker.check} on a fresh
    snapshot — the equivalence is exercised property-style in the test
    suite. *)

open Openflow

type t

(** Cache activity, exposed so the host (Runtime metrics, benches, tests)
    can count without this library depending on them. *)
type event =
  | Trace_hit  (** A cached trace was reused. *)
  | Trace_miss  (** A pair was traced from scratch (no valid cache line). *)
  | Trace_invalidated
      (** A cached trace existed but a visited switch had changed. *)
  | Switch_recaptured of Types.switch_id
      (** A switch's state was re-frozen into the persistent snapshot. *)
  | Check_memoized
      (** A whole check was answered from the previous result: no switch
          had changed at all, so neither had the violation list. *)
  | Trace_evicted of { bytes : int }
      (** A cached trace was evicted to enforce the byte budget; [bytes]
          is the cache's resident size after the eviction (an up-to-date
          gauge value for the host). *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** A subset of [misses]. *)
  recaptures : int;
  memoized_checks : int;
  evictions : int;  (** Lines dropped by the byte budget (LRU order). *)
}

val create :
  ?observer:(event -> unit) -> ?trace_cache_budget:int -> Netsim.Net.t -> t
(** An engine bound to [net]. The initial snapshot is taken eagerly so the
    first check starts warm on topology capture (traces still miss).

    [trace_cache_budget] bounds the trace cache's resident heap footprint
    in bytes (default: unbounded, the pre-budget behavior). When an insert
    pushes the cache over budget, least-recently-used lines are evicted
    until it fits again; the newest line is never evicted, so one
    oversized trace parks rather than thrashes. Eviction never changes
    results — an evicted pair is simply re-traced on next use — so the
    incremental-vs-full equivalence holds under any budget. *)

val check : ?invariants:Checker.invariant list -> t -> Checker.violation list
(** Equal to [Checker.check ~invariants (Snapshot.of_net net)] at the
    network's current instant, reusing every trace whose visited switches
    are unchanged since the previous call. *)

val check_flow_mods :
  ?invariants:Checker.invariant list ->
  t ->
  (Types.switch_id * Message.flow_mod) list ->
  Checker.violation list
(** Equal to [Checker.check_flow_mods] on a fresh snapshot. The "before"
    pass reads (and warms) the persistent cache; the "after" pass overlays
    the hypothetical mods and re-traces only pairs whose cached trace
    visited a modified switch. Hypothetical results never enter the
    persistent cache. *)

val refresh : t -> unit
(** Bring the persistent snapshot up to date with the network without
    checking anything (both [check] functions do this implicitly). *)

val snapshot : t -> Snapshot.t
(** The engine's current persistent snapshot (as of the last refresh). *)

val stats : t -> stats
(** Cumulative cache activity since [create]. *)

val cache_bytes : t -> int
(** Resident trace-cache footprint in bytes (what the byte budget bounds). *)

val cache_lines : t -> int
(** Number of cached (src, dst) trace lines currently resident. *)

val pp_stats : Format.formatter -> stats -> unit
