(** Crash-Pad's failure detector (§3.3 "How to detect a bug?").

    Fail-stop failures surface as sandbox verdicts (the proxy's RPC fails);
    hangs surface as heart-beat loss; byzantine failures are found by
    running the application's proposed flow-mods through the network
    invariant checker before they are committed. *)

open Controller

type failure =
  | Fail_stop of { detail : string; partial : Command.t list }
  | Hang
  | Byzantine of Invariants.Checker.violation list
  | Unreachable of { switch : Openflow.Types.switch_id }
      (** The reliable-delivery layer exhausted its retry budget against
          this switch: transactions touching it must abort, not
          half-commit. *)

(** Detection-latency model, in virtual seconds. *)
type timing = {
  rpc_timeout : float;
      (** A broken stub connection is noticed within this bound. *)
  heartbeat_interval : float;
  heartbeat_misses : int;  (** Missed beats before declaring a hang. *)
}

val default_timing : timing
(** 50 ms RPC timeout; 100 ms heart-beats, 3 misses. *)

val detection_delay : timing -> failure -> float
(** Virtual time between the failure and Crash-Pad learning about it:
    [rpc_timeout] for fail-stop, [interval * misses] for hangs, 0 for
    byzantine failures (caught synchronously at commit). *)

val of_verdict : Sandbox.verdict -> failure option
(** [None] for a successful verdict. *)

val check_byzantine :
  ?tracer:Obs.Tracer.t ->
  ?engine:Invariants.Incremental.t ->
  invariants:Invariants.Checker.invariant list ->
  Netsim.Net.t ->
  Command.t list ->
  failure option
(** Would committing these commands introduce an invariant violation?
    Evaluated on a snapshot; the live network is untouched. With [engine]
    the snapshot and per-pair traces are served incrementally from the
    engine's caches (this is the Crash-Pad hot path — one call per
    transaction); without it a full snapshot is taken and checked. The
    verdict is the same either way. [tracer] records the screening as a
    [Detection] span. *)

val describe : failure -> string
