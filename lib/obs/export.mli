(** Chrome-trace export and re-import.

    The export is the Chrome Trace Event JSON object format (load it in
    [chrome://tracing] / Perfetto): one complete ("ph":"X") event per
    span, [ts]/[dur] in microseconds of the wall/logical timebase, with
    the exact span fields duplicated under [args] so {!of_chrome} can
    reconstruct the span list byte-for-byte (floats are printed with 17
    significant digits). *)

val to_chrome : Span.t list -> string

val of_chrome : string -> (Span.t list, string) result
(** Inverse of {!to_chrome}: [of_chrome (to_chrome spans) = Ok spans]. *)

val validate : Span.t list -> (unit, string) result
(** Structural well-formedness: ids unique and positive, every span's end
    at or after its start (both timebases), every span opened after its
    parent, and — when the parent is present in the list — the child's
    wall interval contained in the parent's. Spans whose parent was
    evicted by ring wraparound are treated as roots. *)

val kinds : Span.t list -> Span.kind list
(** Distinct kinds present, in {!Span.all_kinds} order. *)

val save : string -> Span.t list -> unit
(** Write [to_chrome] to a file. *)

val load : string -> (Span.t list, string) result
