lib/invariants/checker.mli: Format Message Netsim Openflow Snapshot Types
