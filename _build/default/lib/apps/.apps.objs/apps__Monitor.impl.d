lib/apps/monitor.ml: App_sig Command Controller Event Int List Map Message Ofp_match Openflow Option
