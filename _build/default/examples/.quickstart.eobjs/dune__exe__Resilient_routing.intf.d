examples/resilient_routing.mli:
