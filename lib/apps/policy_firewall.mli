(** The firewall restated as declared intent: [handle] is a no-op and the
    whole behavior is the compiled {!Policy.t} — TCP to the blocked ports
    is dropped, everything else floods. The reference case for
    policy-derived Equivalence compromises. *)

include Controller.App_sig.INTENT_APP

val intent : Policy.t
(** The declared policy itself, for tests and benchmarks. *)

val blocked_ports : int list
