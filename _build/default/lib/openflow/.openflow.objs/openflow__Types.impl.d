lib/openflow/types.ml: Format
