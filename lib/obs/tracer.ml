type open_span = {
  o_id : int;
  o_parent : int;
  o_kind : Span.kind;
  o_vt : float;
  o_t0 : float;
  o_attrs : (string * string) list;
}

type state = {
  now : unit -> float;
  wall : unit -> float;
  ring : Span.t option array;
  mutable w : int;  (* next write slot *)
  mutable n_recorded : int;
  mutable n_dropped : int;
  mutable next_id : int;
  mutable stack : open_span list;  (* innermost first *)
  hists : Histogram.t array;  (* indexed like Span.all_kinds *)
}

type t = Noop | On of state

let noop = Noop

(* Indexed like [Span.all_kinds]; a direct match keeps [push_completed]
   off the polymorphic hash on the per-span hot path. *)
let kind_index : Span.kind -> int = function
  | Span.Event_root -> 0
  | Span.App_handle -> 1
  | Span.Detection -> 2
  | Span.Txn_commit -> 3
  | Span.Txn_rollback -> 4
  | Span.Recovery -> 5
  | Span.Delivery -> 6
  | Span.Retransmit -> 7
  | Span.Resync -> 8
  | Span.Inv_cache_hit -> 9
  | Span.Inv_cache_miss -> 10
  | Span.Ckpt_take -> 11
  | Span.Ckpt_restore -> 12
  | Span.Election -> 13
  | Span.Replicate -> 14
  | Span.State_transfer -> 15
  | Span.Failover -> 16
  | Span.Batch_root -> 17
  | Span.Shard_dispatch -> 18
  | Span.Vote -> 19
  | Span.Outvoted -> 20

let create ?(capacity = 65536) ?wall ~now () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity <= 0";
  let wall =
    match wall with
    | Some f -> f
    | None ->
        (* Logical time: one microsecond per tracer operation. Strictly
           monotonic and fully deterministic. *)
        let ticks = ref 0 in
        fun () ->
          incr ticks;
          float !ticks *. 1e-6
  in
  On
    {
      now;
      wall;
      ring = Array.make capacity None;
      w = 0;
      n_recorded = 0;
      n_dropped = 0;
      next_id = 1;
      stack = [];
      hists =
        Array.of_list (List.map (fun _ -> Histogram.create ()) Span.all_kinds);
    }

let enabled = function Noop -> false | On _ -> true

let push_completed st (span : Span.t) =
  if st.ring.(st.w) <> None then st.n_dropped <- st.n_dropped + 1;
  st.ring.(st.w) <- Some span;
  st.w <- (st.w + 1) mod Array.length st.ring;
  st.n_recorded <- st.n_recorded + 1;
  Histogram.observe st.hists.(kind_index span.kind) (Span.duration span)

let start t ?(attrs = []) kind =
  match t with
  | Noop -> -1
  | On st ->
      let id = st.next_id in
      st.next_id <- id + 1;
      let parent = match st.stack with [] -> -1 | o :: _ -> o.o_id in
      st.stack <-
        {
          o_id = id;
          o_parent = parent;
          o_kind = kind;
          o_vt = st.now ();
          o_t0 = st.wall ();
          o_attrs = attrs;
        }
        :: st.stack;
      id

let close st ?(attrs = []) (o : open_span) ~vt_end ~t1 =
  push_completed st
    {
      Span.id = o.o_id;
      parent = o.o_parent;
      kind = o.o_kind;
      vt = o.o_vt;
      vt_end;
      t0 = o.o_t0;
      t1;
      attrs = o.o_attrs @ attrs;
    }

let finish t ?(attrs = []) id =
  match t with
  | Noop -> ()
  | On st ->
      if List.exists (fun o -> o.o_id = id) st.stack then begin
        let vt_end = st.now () in
        let t1 = st.wall () in
        let rec pop () =
          match st.stack with
          | [] -> ()
          | o :: rest ->
              st.stack <- rest;
              if o.o_id = id then close st ~attrs o ~vt_end ~t1
              else begin
                (* An abandoned child: close it at the same instant so the
                   trace stays well-nested. *)
                close st o ~vt_end ~t1;
                pop ()
              end
        in
        pop ()
      end

let with_span t ?attrs kind f =
  match t with
  | Noop -> f ()
  | On _ ->
      let id = start t ?attrs kind in
      let r =
        try f ()
        with exn ->
          finish t id;
          raise exn
      in
      finish t id;
      r

let instant t ?(attrs = []) kind =
  match t with
  | Noop -> ()
  | On st ->
      let id = st.next_id in
      st.next_id <- id + 1;
      let parent = match st.stack with [] -> -1 | o :: _ -> o.o_id in
      let vt = st.now () in
      let w = st.wall () in
      push_completed st
        {
          Span.id;
          parent;
          kind;
          vt;
          vt_end = vt;
          t0 = w;
          t1 = w;
          attrs;
        }

let spans = function
  | Noop -> []
  | On st ->
      let n = Array.length st.ring in
      let out = ref [] in
      (* Oldest-first: slots [w .. w+n-1] mod n, skipping empties. *)
      for i = n - 1 downto 0 do
        match st.ring.((st.w + i) mod n) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      !out

let open_count = function Noop -> 0 | On st -> List.length st.stack
let recorded = function Noop -> 0 | On st -> st.n_recorded
let dropped = function Noop -> 0 | On st -> st.n_dropped

let histogram t kind =
  match t with Noop -> None | On st -> Some st.hists.(kind_index kind)

let histograms = function
  | Noop -> []
  | On st -> List.map (fun k -> (k, st.hists.(kind_index k))) Span.all_kinds

let clear = function
  | Noop -> ()
  | On st ->
      Array.fill st.ring 0 (Array.length st.ring) None;
      st.w <- 0;
      st.n_recorded <- 0;
      st.n_dropped <- 0;
      st.stack <- [];
      Array.iter Histogram.clear st.hists

let pp_summary fmt t =
  match t with
  | Noop -> Format.fprintf fmt "tracing disabled"
  | On st ->
      Format.fprintf fmt "@[<v>";
      List.iter
        (fun k ->
          let h = st.hists.(kind_index k) in
          if Histogram.count h > 0 then
            Format.fprintf fmt "%-10s %a@," (Span.kind_name k) Histogram.pp h)
        Span.all_kinds;
      Format.fprintf fmt "recorded=%d dropped=%d@]" st.n_recorded st.n_dropped
