(** The LegoSDN runtime: the re-designed controller (paper Figure 1, right
    side).

    Same northbound/southbound behaviour as {!Controller.Monolithic} — same
    services, same dispatch order — but every application runs in an
    AppVisor {!Sandbox}, every (application, event) delivery runs inside a
    transaction, and Crash-Pad screens and recovers failures. The
    controller itself never goes down because of an application: there is
    no [Crashed] state here, by construction. *)

open Controller

type engine_kind = Netlog_engine | Delay_buffer_engine

(** How each sandbox's checkpoint store is configured. *)
type ckpt_mode =
  | Ckpt_full  (** Full snapshot blobs, fixed every-k cadence. *)
  | Ckpt_delta
      (** Content-chunked delta snapshots, same fixed every-k cadence —
          identical scheduling to [Ckpt_full], cheaper writes. *)
  | Ckpt_delta_adaptive
      (** Delta snapshots with the adaptive cadence: checkpoint when the
          estimated journal-replay cost exceeds the estimated write cost,
          with [checkpoint_every] as the floor and [max (8k) 64] as the
          journal ceiling. *)

type config = {
  checkpoint_every : int;  (** k: checkpoint every k events (§5). *)
  checkpoint_mode : ckpt_mode;
  crashpad : Crashpad.config;
  engine : engine_kind;
  reliable : Reliable.config;
      (** Southbound reliable-delivery settings (NetLog engine only). *)
}

val default_config : config
(** k = 1, full checkpoints, Crash-Pad defaults, NetLog engine, reliable
    delivery on. *)

type t

val create :
  ?config:config -> ?xid_base:int -> Netsim.Net.t ->
  (module App_sig.APP) list -> t
(** [xid_base] seeds the NetLog xid counter; a failover controller passes
    its predecessor's [Netlog.next_xid] so switch-side duplicate detection
    never mistakes its fresh commands for retransmissions. *)

val step : t -> unit
(** Drain southbound notifications and dispatch the resulting events. *)

val dispatch_event : t -> Event.t -> unit
val tick : t -> unit

val upgrade_controller : t -> unit
(** Simulate a controller upgrade (§3.4): platform state (services) is torn
    down and rebuilt, switches re-handshake — but the isolated applications
    keep their processes and state, unlike a monolithic restart. *)

val net : t -> Netsim.Net.t
val services : t -> Services.t
val sandboxes : t -> Sandbox.t list
val sandbox : t -> string -> Sandbox.t option
val metrics : t -> Metrics.t
val tickets : t -> Ticket.t list
val ticket_store : t -> Ticket.store
val netlog : t -> Netlog.t option
(** The NetLog instance, when the NetLog engine is in use. *)

val reliable : t -> Reliable.t option
(** The reliable-delivery layer, when the NetLog engine is in use. *)

val incremental : t -> Invariants.Incremental.t
(** The incremental invariant checker that screens every transaction's
    flow-mods. Its cache events are mirrored into {!metrics} and published
    on {!hub} as [Inv_cache] events. *)

(** {1 Observability} *)

val hub : t -> Obs.Hub.t
(** The runtime's event hub — the one subscription surface. Every
    dispatched event ([Dispatched]), invariant-cache action ([Inv_cache])
    and southbound delivery step ([Delivery]) is published here. *)

val tracer : t -> Obs.Tracer.t
(** The active tracer; {!Obs.Tracer.noop} until {!set_tracer}. *)

val set_tracer : t -> Obs.Tracer.t -> unit
(** Install a tracer: every event dispatch opens an [Event_root] span with
    nested per-stage spans (app delivery, detection, transaction
    commit/rollback, recovery), and delivery/cache activity is marked as
    instants. The tracer's per-kind latency histograms are registered in
    {!metrics} under ["span.<kind>"]. *)

val events_processed : t -> int

val events_shed : t -> int
(** Notifications dropped by the broadcast-storm guard (see
    {!Controller.Monolithic.events_shed}). *)

val set_event_tap : t -> (Event.t -> unit) -> unit
(** Deprecated — thin wrapper over [Obs.Hub.subscribe (hub t)] filtered to
    [Dispatched] events; prefer subscribing to {!hub} directly. Observes
    every event exactly as it is dispatched to the sandboxes; the tap must
    not mutate runtime state. At most one tap is active; setting
    replaces. *)

val clear_event_tap : t -> unit
(** Deprecated — cancels the {!set_event_tap} subscription. *)

val config : t -> config
