lib/netsim/flow_table.mli: Action Flow_entry Format Message Ofp_match Openflow Packet Types
