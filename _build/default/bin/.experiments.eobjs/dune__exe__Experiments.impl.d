bin/experiments.ml: Apps Arg Clock Cmd Cmdliner Controller Flow_entry Flow_table Format Legosdn List Net Netsim Openflow Option Printf Random String Sw Term Topo_gen Workload
