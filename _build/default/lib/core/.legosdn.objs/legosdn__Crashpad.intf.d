lib/core/crashpad.mli: App_sig Controller Detector Event Invariants Metrics Netsim Openflow Policy Quarantine Resources Sandbox Ticket Txn_engine Types
