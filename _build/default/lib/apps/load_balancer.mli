(** Traffic-engineering load balancer — the FlowScale-category application
    of Table 2.

    Spreads flows entering a switch across its inter-switch uplinks
    round-robin, installing an exact-match rule per flow. Stateful (the
    per-switch round-robin cursor and the flow→uplink assignment table),
    so crash recovery fidelity is observable. *)

include Controller.App_sig.APP

val flows_assigned : state -> int
