lib/openflow/action.mli: Buf Format Packet Types
