open Topology

(* Builder tracking the next free inter-switch and host-facing port of each
   switch; inter-switch ports count up from 1, host ports from 100. *)
type builder = {
  topo : Topology.t;
  inter : (int, int) Hashtbl.t;
  hostp : (int, int) Hashtbl.t;
  mutable next_host : int;
}

let builder () =
  {
    topo = Topology.create ();
    inter = Hashtbl.create 16;
    hostp = Hashtbl.create 16;
    next_host = 1;
  }

let fresh_port table sid start =
  let p = try Hashtbl.find table sid with Not_found -> start in
  Hashtbl.replace table sid (p + 1);
  p

let add_switches b n =
  for sid = 1 to n do
    Topology.add_switch b.topo sid
  done

let link_switches b s1 s2 =
  let p1 = fresh_port b.inter s1 1 in
  let p2 = fresh_port b.inter s2 1 in
  ignore
    (Topology.connect b.topo
       { node = Switch s1; port = p1 }
       { node = Switch s2; port = p2 })

let add_hosts b sid count =
  for _ = 1 to count do
    let h = b.next_host in
    b.next_host <- b.next_host + 1;
    Topology.add_host b.topo h;
    let port = fresh_port b.hostp sid 100 in
    ignore (Topology.attach_host b.topo h sid port)
  done

let linear ?(hosts_per_switch = 1) n =
  if n < 1 then invalid_arg "Topo_gen.linear: need at least one switch";
  let b = builder () in
  add_switches b n;
  for s = 1 to n - 1 do
    link_switches b s (s + 1)
  done;
  for s = 1 to n do
    add_hosts b s hosts_per_switch
  done;
  b.topo

let ring ?(hosts_per_switch = 1) n =
  if n < 3 then invalid_arg "Topo_gen.ring: need at least three switches";
  let b = builder () in
  add_switches b n;
  for s = 1 to n - 1 do
    link_switches b s (s + 1)
  done;
  link_switches b n 1;
  for s = 1 to n do
    add_hosts b s hosts_per_switch
  done;
  b.topo

let star ?(hosts_per_switch = 1) n =
  if n < 1 then invalid_arg "Topo_gen.star: need at least one leaf";
  let b = builder () in
  add_switches b (n + 1);
  for leaf = 2 to n + 1 do
    link_switches b 1 leaf
  done;
  for leaf = 2 to n + 1 do
    add_hosts b leaf hosts_per_switch
  done;
  b.topo

let tree ?(hosts_per_leaf = 1) ~depth ~fanout () =
  if depth < 0 then invalid_arg "Topo_gen.tree: negative depth";
  if fanout < 1 then invalid_arg "Topo_gen.tree: fanout must be positive";
  let b = builder () in
  (* Count nodes level by level; ids are assigned breadth-first from 1. *)
  let level_size = Array.make (depth + 1) 1 in
  for d = 1 to depth do
    level_size.(d) <- level_size.(d - 1) * fanout
  done;
  let total = Array.fold_left ( + ) 0 level_size in
  add_switches b total;
  let first_of_level = Array.make (depth + 1) 1 in
  for d = 1 to depth do
    first_of_level.(d) <- first_of_level.(d - 1) + level_size.(d - 1)
  done;
  for d = 0 to depth - 1 do
    for i = 0 to level_size.(d) - 1 do
      let parent = first_of_level.(d) + i in
      for c = 0 to fanout - 1 do
        let child = first_of_level.(d + 1) + (i * fanout) + c in
        link_switches b parent child
      done
    done
  done;
  let first_leaf = first_of_level.(depth) in
  for leaf = first_leaf to first_leaf + level_size.(depth) - 1 do
    add_hosts b leaf hosts_per_leaf
  done;
  b.topo

let mesh ?(hosts_per_switch = 1) n =
  if n < 2 then invalid_arg "Topo_gen.mesh: need at least two switches";
  let b = builder () in
  add_switches b n;
  for s1 = 1 to n do
    for s2 = s1 + 1 to n do
      link_switches b s1 s2
    done
  done;
  for s = 1 to n do
    add_hosts b s hosts_per_switch
  done;
  b.topo

let fat_tree k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topo_gen.fat_tree: k must be even and >= 2";
  (* Port-numbering bound: edge switches carry k/2 inter-switch links on
     ports 1.. and k/2 hosts on ports 100.., so the two ranges collide at
     k = 200. Cap well below that — k = 128 is already 20,480 switches and
     524,288 hosts, past anything the simulator can hold. *)
  if k > 128 then
    invalid_arg "Topo_gen.fat_tree: k must be <= 128 (port-range limit)";
  let half = k / 2 in
  let n_core = half * half in
  let b = builder () in
  (* Ids: cores 1..n_core, then per pod: aggs then edges. *)
  let agg p i = n_core + (p * k) + i + 1 in
  let edge p i = n_core + (p * k) + half + i + 1 in
  add_switches b (n_core + (k * k));
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* Each aggregation switch connects to the cores of its "column". *)
      for c = 0 to half - 1 do
        link_switches b (agg p a) ((a * half) + c + 1)
      done;
      (* ... and to every edge switch in its pod. *)
      for e = 0 to half - 1 do
        link_switches b (agg p a) (edge p e)
      done
    done;
    for e = 0 to half - 1 do
      add_hosts b (edge p e) half
    done
  done;
  b.topo

let jellyfish ?(hosts_per_switch = 1) ~seed ~switches ~degree () =
  if switches < 3 then invalid_arg "Topo_gen.jellyfish: need >= 3 switches";
  if degree < 2 then invalid_arg "Topo_gen.jellyfish: degree must be >= 2";
  let rng = Random.State.make [| seed |] in
  let b = builder () in
  add_switches b switches;
  let deg = Array.make (switches + 1) 0 in
  let edge_exists s1 s2 =
    Topology.link_between b.topo (Switch s1) (Switch s2) <> None
  in
  let wire s1 s2 =
    link_switches b s1 s2;
    deg.(s1) <- deg.(s1) + 1;
    deg.(s2) <- deg.(s2) + 1
  in
  (* A ring guarantees connectivity; random chords fill the degree budget. *)
  for s = 1 to switches - 1 do
    wire s (s + 1)
  done;
  wire switches 1;
  let attempts = ref 0 in
  let budget = switches * degree * 10 in
  while
    !attempts < budget
    && Array.exists (fun d -> d < degree) (Array.sub deg 1 switches)
  do
    incr attempts;
    let s1 = 1 + Random.State.int rng switches in
    let s2 = 1 + Random.State.int rng switches in
    if s1 <> s2 && deg.(s1) < degree && deg.(s2) < degree
       && not (edge_exists s1 s2)
    then wire s1 s2
  done;
  for s = 1 to switches do
    add_hosts b s hosts_per_switch
  done;
  b.topo

let random ?(hosts_per_switch = 1) ~seed ~switches ~extra_links () =
  if switches < 1 then invalid_arg "Topo_gen.random: need switches";
  let rng = Random.State.make [| seed |] in
  let b = builder () in
  add_switches b switches;
  (* Random spanning tree: attach each new switch to a uniformly chosen
     earlier one, guaranteeing connectivity. *)
  for s = 2 to switches do
    let parent = 1 + Random.State.int rng (s - 1) in
    link_switches b parent s
  done;
  let edge_exists s1 s2 =
    Topology.link_between b.topo (Switch s1) (Switch s2) <> None
  in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_links && !attempts < extra_links * 20 do
    incr attempts;
    let s1 = 1 + Random.State.int rng switches in
    let s2 = 1 + Random.State.int rng switches in
    if s1 <> s2 && not (edge_exists s1 s2) then begin
      link_switches b s1 s2;
      incr added
    end
  done;
  for s = 1 to switches do
    add_hosts b s hosts_per_switch
  done;
  b.topo
