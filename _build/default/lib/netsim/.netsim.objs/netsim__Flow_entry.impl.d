lib/netsim/flow_entry.ml: Action Format Message Ofp_match Openflow Packet
