test/t_standby.ml: Alcotest Apps Clock Legosdn List Net Netsim Option T_util Topo_gen
