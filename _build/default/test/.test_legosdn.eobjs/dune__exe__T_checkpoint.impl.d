test/t_checkpoint.ml: Alcotest Apps Controller Legosdn T_util
