(** The end-to-end experiment driver.

    A scenario is a topology, a traffic workload, a fault schedule and a
    duration; it can be run against any controller architecture through the
    {!driver} interface, which is implemented for both the monolithic
    baseline and the LegoSDN runtime. The report captures the
    paper-relevant outcomes: controller availability, per-application
    availability, and network connectivity over time. *)

type driver = {
  label : string;
  step : unit -> unit;  (** Drain and dispatch southbound notifications. *)
  tick : unit -> unit;
  controller_up : unit -> bool;
  restart_controller : unit -> unit;  (** Operator reboot (fate-sharing). *)
  app_alive : string -> bool;
  app_names : string list;
}

val monolithic_driver : Controller.Monolithic.t -> driver
val legosdn_driver : Legosdn.Runtime.t -> driver

type t = {
  make_topology : unit -> Netsim.Topology.t;
  duration : float;
  traffic : Traffic.injection list;
  faults : Failure_schedule.timed_fault list;
  tick_interval : float option;
  sample_interval : float;
      (** Connectivity / liveness sampling cadence. *)
  restart_delay : float;
      (** How long an operator takes to reboot a dead monolithic
          controller (the paper cites ~10 s outages for restarts). *)
}

val make :
  ?faults:Failure_schedule.timed_fault list ->
  ?tick_interval:float ->
  ?sample_interval:float ->
  ?restart_delay:float ->
  make_topology:(unit -> Netsim.Topology.t) ->
  duration:float ->
  traffic:Traffic.injection list ->
  unit ->
  t

type report = {
  label : string;
  duration : float;
  controller_downtime : float;
  controller_availability : float;
  controller_crashes : int;  (** Whole-stack deaths (monolithic only). *)
  app_availability : (string * float) list;
      (** Fraction of samples at which the app was in service. *)
  mean_connectivity : float;
      (** Mean over samples of the fraction of reachable host pairs. *)
  min_connectivity : float;
  events_delivered : int;  (** Packets that reached their destination NIC. *)
  packets_injected : int;
  samples : (float * float) list;  (** (time, connectivity) series. *)
}

val run : t -> make_driver:(Netsim.Net.t -> driver) -> report
(** Build a fresh network from the scenario's topology, attach the
    controller via [make_driver], and play traffic, faults, ticks and
    samples in virtual-time order. Deterministic. *)

val pp_report : Format.formatter -> report -> unit
