test/t_misc.ml: Action Alcotest Apps Clock Controller Format Legosdn List Message Net Netsim Ofp_match Openflow String T_util Topo_gen Topology Types Workload
