(** A minimal JSON value type, printer and parser.

    The tree has no JSON library; this is just enough for the Chrome-trace
    exporter and its decoder. Printing escapes every byte outside
    printable ASCII as [\u00XX], so arbitrary OCaml strings round-trip
    byte-for-byte. Numbers print with 17 significant digits, so floats
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** The error string carries a byte offset. Trailing whitespace is
    allowed; trailing garbage is an error. *)

(** {1 Accessors} — shallow, total *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing key. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
