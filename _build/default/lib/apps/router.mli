(** Shortest-path routing — the RouteFlow-category application of Table 2.

    On a packet-in it locates the destination host through the controller's
    device manager, computes a shortest switch path over the live links
    (BFS) and installs a rule on {e every} switch along the path in one go —
    the multi-switch policy whose atomicity NetLog transactions exist to
    protect. On topology changes it tears its routes down and lets traffic
    re-trigger installation. *)

include Controller.App_sig.APP

val routes_installed : state -> int
(** Rules this app believes are currently installed. *)

val variant : ?prefer_high_ports:bool -> string -> (module Controller.App_sig.APP)
(** An independently-built "team" version for the diversity experiment
    (§3.4): same specification, different tie-breaking in path selection.
    [prefer_high_ports] reverses neighbor exploration order. *)
