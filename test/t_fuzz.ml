(* Bounded smoke tests for the scenario fuzzer: a small clean seed range
   must produce no findings (determinism makes this a regression test,
   not a flake source); a planted defect must be found, shrunk small, and
   emitted as a reproducer that replays byte-for-byte. *)

module Spec = Check.Spec
module Gen = Check.Gen
module Runner = Check.Runner
module Fuzz = Check.Fuzz
module Repro = Check.Repro

let seeds lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let test_spec_codec_roundtrip () =
  List.iter
    (fun seed ->
      let spec = Gen.scenario seed in
      T_util.checkb
        (Printf.sprintf "seed %d spec roundtrips" seed)
        true
        (Spec.equal spec (Spec.decode (Spec.encode spec))))
    (seeds 0 20)

let test_generation_is_deterministic () =
  List.iter
    (fun seed ->
      T_util.checkb
        (Printf.sprintf "seed %d generates identically twice" seed)
        true
        (Spec.equal (Gen.scenario seed) (Gen.scenario seed)))
    (seeds 0 20)

let test_clean_seed_range_has_no_findings () =
  let result = Fuzz.campaign (seeds 0 25) in
  T_util.checki "seeds run" 26 result.Fuzz.seeds_run;
  (match result.Fuzz.findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "unexpected finding: seed %d oracle %s: %s"
        f.Fuzz.seed f.Fuzz.oracle f.Fuzz.detail);
  T_util.checki "no findings" 0 (List.length result.Fuzz.findings)

let test_run_is_deterministic () =
  let spec = Gen.scenario 5 in
  let a = Runner.run spec and b = Runner.run spec in
  T_util.checkb "same verdict" true (a.Runner.failure = b.Runner.failure);
  T_util.checkb "same event trace" true (a.Runner.trace = b.Runner.trace)

let find_planted () =
  match
    (Fuzz.campaign ~plant:Fuzz.No_retransmit ~max_findings:1 (seeds 0 10))
      .Fuzz.findings
  with
  | f :: _ -> f
  | [] -> Alcotest.fail "planted no-retransmit defect not found in seeds 0-10"

let test_planted_bug_found_and_shrunk () =
  let f = find_planted () in
  T_util.checkb "caught by a reliable-delivery oracle" true
    (f.Fuzz.oracle = "convergence" || f.Fuzz.oracle = "atomicity");
  T_util.checkb
    (Printf.sprintf "shrunk to <= 5 elements (got %d)"
       (List.length f.Fuzz.minimal))
    true
    (List.length f.Fuzz.minimal <= 5);
  T_util.checkb "minimal is a sublist of the original" true
    (List.length f.Fuzz.minimal
    <= List.length (Gen.scenario f.Fuzz.seed).Spec.elements)

let test_reproducer_roundtrip_and_replay () =
  let f = find_planted () in
  let repro = Fuzz.reproducer_of f in
  (* Disk format roundtrips... *)
  let loaded = Repro.decode (Repro.encode repro) in
  T_util.checkb "spec survives the reproducer file" true
    (Spec.equal repro.Repro.spec loaded.Repro.spec);
  T_util.checkb "trace survives the reproducer file" true
    (repro.Repro.trace = loaded.Repro.trace);
  (* ...and the loaded reproducer replays byte-for-byte. *)
  let r = Repro.replay loaded in
  T_util.checkb "same oracle fails on replay" true r.Repro.reproduced;
  T_util.checkb "replay trace byte-identical" true r.Repro.same_trace

(* Dispatch mode is an execution parameter, not part of the reproducer
   format: a reproducer recorded under the sequential engine must replay
   byte-for-byte under the sharded engine, and vice versa — determinism
   across engines, not merely within one. *)
let test_reproducer_replays_across_engines () =
  let sharded = Legosdn.Runtime.default_sharded in
  (* Recorded sequential, replayed sharded... *)
  let f = find_planted () in
  let repro = Repro.decode (Repro.encode (Fuzz.reproducer_of f)) in
  let r = Repro.replay ~dispatch:sharded repro in
  T_util.checkb "seq-recorded reproduces under sharded" true
    r.Repro.reproduced;
  T_util.checkb "seq-recorded trace identical under sharded" true
    r.Repro.same_trace;
  (* ...and recorded sharded, replayed sequential. *)
  match
    (Fuzz.campaign ~plant:Fuzz.No_retransmit ~dispatch:sharded
       ~max_findings:1 (seeds 0 10))
      .Fuzz.findings
  with
  | [] -> Alcotest.fail "planted defect not found under sharded dispatch"
  | f :: _ ->
      let repro = Repro.decode (Repro.encode (Fuzz.reproducer_of f)) in
      let r = Repro.replay repro in
      T_util.checkb "sharded-recorded reproduces under seq" true
        r.Repro.reproduced;
      T_util.checkb "sharded-recorded trace identical under seq" true
        r.Repro.same_trace

let suite =
  [
    Alcotest.test_case "spec codec roundtrip" `Quick test_spec_codec_roundtrip;
    Alcotest.test_case "generation deterministic" `Quick
      test_generation_is_deterministic;
    Alcotest.test_case "clean seeds 0-25 have no findings" `Slow
      test_clean_seed_range_has_no_findings;
    Alcotest.test_case "run deterministic" `Quick test_run_is_deterministic;
    Alcotest.test_case "planted bug found and shrunk" `Slow
      test_planted_bug_found_and_shrunk;
    Alcotest.test_case "reproducer roundtrip and replay" `Slow
      test_reproducer_roundtrip_and_replay;
    Alcotest.test_case "reproducer replays across engines" `Slow
      test_reproducer_replays_across_engines;
  ]
