(* A whole-system fuzz scenario: a fixed configuration (topology, apps,
   channel fault model, recovery knobs) plus an ordered list of *elements*
   — the schedulable pieces (traffic, faults, bug injections) that the
   shrinker is allowed to remove one by one. Everything an element refers
   to (hosts, switches, links, bugs) is an *index* resolved modulo the
   size of the target set, so any sublist of elements is still a valid
   scenario and delta debugging never produces a dangling reference. *)

open Openflow
module Recovery_policy = Legosdn.Recovery_policy

type topo =
  | Linear of int
  | Star of int
  | Tree of { depth : int; fanout : int }
  | Ring of int
  | Fat_tree of int

type element =
  | Flow of { src : int; dst : int; start : float; packets : int; dport : int }
  | Link_flap of { link : int; down_at : float; downtime : float }
  | Switch_reboot of { sw : int; down_at : float; downtime : float }
  | Partition of { sw : int; start : float; duration : float }
  | Loss_burst of { sw : int; loss : float; start : float; duration : float }
  | Inject_bug of { slot : int; bug : int }
  | Kill_leader of { at : float }
  | Byz_variant of { slot : int }
      (* Seat a byzantine fault-injected variant on app slot [slot]'s
         N-version panel (meaningful only when [nversion > 1]). *)

type t = {
  seed : int;
  topo : topo;
  apps : string list;
  base_loss : float;  (* both directions of every control channel *)
  duplicate : float;
  delay : float;  (* 0 = no channel delay; otherwise a fixed delay *)
  reliable : bool;
  base_timeout : float;  (* Reliable retransmission timer *)
  max_retries : int;
  checkpoint_every : int;
  policy : Recovery_policy.compromise;
  duration : float;
  replicas : int;  (* 1 = single controller, no cluster layer *)
  election_lo : float;  (* election-timeout draw range, virtual seconds *)
  election_hi : float;
  nversion : int;  (* 1 = solo sandboxes; >1 = N-version voting panels *)
  elements : element list;
}

(* A scenario whose only elements are traffic carries stricter oracle
   expectations (e.g. black-hole freedom at the end of the run): nothing
   was injected that could legitimately disturb forwarding. *)
let is_clean t =
  List.for_all (function Flow _ -> true | _ -> false) t.elements

let has_bug t =
  List.exists (function Inject_bug _ -> true | _ -> false) t.elements

let has_byz_variant t =
  List.exists (function Byz_variant _ -> true | _ -> false) t.elements

(* ---------------- pretty printing ---------------- *)

let topo_name = function
  | Linear n -> Printf.sprintf "linear:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Tree { depth; fanout } -> Printf.sprintf "tree:%d:%d" depth fanout
  | Ring n -> Printf.sprintf "ring:%d" n
  | Fat_tree k -> Printf.sprintf "fat-tree:%d" k

let element_summary = function
  | Flow { src; dst; start; packets; dport } ->
      Printf.sprintf "flow host[%d]->host[%d] at %.2fs (%d pkts, dport %d)"
        src dst start packets dport
  | Link_flap { link; down_at; downtime } ->
      Printf.sprintf "link-flap link[%d] at %.2fs for %.2fs" link down_at
        downtime
  | Switch_reboot { sw; down_at; downtime } ->
      Printf.sprintf "switch-reboot sw[%d] at %.2fs for %.2fs" sw down_at
        downtime
  | Partition { sw; start; duration } ->
      Printf.sprintf "channel-partition sw[%d] at %.2fs for %.2fs" sw start
        duration
  | Loss_burst { sw; loss; start; duration } ->
      Printf.sprintf "loss-burst sw[%d] %.0f%% at %.2fs for %.2fs" sw
        (loss *. 100.) start duration
  | Inject_bug { slot; bug } ->
      Printf.sprintf "inject-bug corpus[%d] into app-slot %d" bug slot
  | Kill_leader { at } -> Printf.sprintf "kill-leader at %.2fs" at
  | Byz_variant { slot } ->
      Printf.sprintf "byz-variant on app-slot %d" slot

let summary t =
  Printf.sprintf
    "seed=%d topo=%s apps=[%s] loss=%.2f dup=%.2f delay=%.3f reliable=%b \
     retries=%d ckpt=%d policy=%s duration=%.1fs replicas=%d nversion=%d \
     elements=%d"
    t.seed (topo_name t.topo)
    (String.concat "," t.apps)
    t.base_loss t.duplicate t.delay t.reliable t.max_retries
    t.checkpoint_every
    (Recovery_policy.compromise_name t.policy)
    t.duration t.replicas t.nversion
    (List.length t.elements)

let pp fmt t =
  Format.fprintf fmt "@[<v>%s" (summary t);
  List.iter
    (fun el -> Format.fprintf fmt "@,  %s" (element_summary el))
    t.elements;
  Format.fprintf fmt "@]"

(* ---------------- binary codec (reproducer files) ---------------- *)

exception Decode_error of string

let fail fmt = Format.ksprintf (fun s -> raise (Decode_error s)) fmt

let put_float w v = Buf.u64 w (Int64.bits_of_float v)
let get_float r = Int64.float_of_bits (Buf.read_u64 r)

let put_string w s =
  Buf.u16 w (String.length s);
  Buf.raw w (Bytes.of_string s)

let get_string r =
  let n = Buf.read_u16 r in
  Bytes.to_string (Buf.read_raw r n)

let put_topo w = function
  | Linear n ->
      Buf.u8 w 0;
      Buf.u16 w n
  | Star n ->
      Buf.u8 w 1;
      Buf.u16 w n
  | Tree { depth; fanout } ->
      Buf.u8 w 2;
      Buf.u16 w depth;
      Buf.u16 w fanout
  | Ring n ->
      Buf.u8 w 3;
      Buf.u16 w n
  | Fat_tree k ->
      Buf.u8 w 4;
      Buf.u16 w k

let get_topo r =
  match Buf.read_u8 r with
  | 0 -> Linear (Buf.read_u16 r)
  | 1 -> Star (Buf.read_u16 r)
  | 2 ->
      let depth = Buf.read_u16 r in
      let fanout = Buf.read_u16 r in
      Tree { depth; fanout }
  | 3 -> Ring (Buf.read_u16 r)
  | 4 -> Fat_tree (Buf.read_u16 r)
  | k -> fail "unknown topology tag %d" k

let put_element w = function
  | Flow { src; dst; start; packets; dport } ->
      Buf.u8 w 0;
      Buf.u16 w src;
      Buf.u16 w dst;
      put_float w start;
      Buf.u16 w packets;
      Buf.u16 w dport
  | Link_flap { link; down_at; downtime } ->
      Buf.u8 w 1;
      Buf.u16 w link;
      put_float w down_at;
      put_float w downtime
  | Switch_reboot { sw; down_at; downtime } ->
      Buf.u8 w 2;
      Buf.u16 w sw;
      put_float w down_at;
      put_float w downtime
  | Partition { sw; start; duration } ->
      Buf.u8 w 3;
      Buf.u16 w sw;
      put_float w start;
      put_float w duration
  | Loss_burst { sw; loss; start; duration } ->
      Buf.u8 w 4;
      Buf.u16 w sw;
      put_float w loss;
      put_float w start;
      put_float w duration
  | Inject_bug { slot; bug } ->
      Buf.u8 w 5;
      Buf.u16 w slot;
      Buf.u16 w bug
  | Kill_leader { at } ->
      Buf.u8 w 6;
      put_float w at
  | Byz_variant { slot } ->
      Buf.u8 w 7;
      Buf.u16 w slot

let get_element r =
  match Buf.read_u8 r with
  | 0 ->
      let src = Buf.read_u16 r in
      let dst = Buf.read_u16 r in
      let start = get_float r in
      let packets = Buf.read_u16 r in
      let dport = Buf.read_u16 r in
      Flow { src; dst; start; packets; dport }
  | 1 ->
      let link = Buf.read_u16 r in
      let down_at = get_float r in
      let downtime = get_float r in
      Link_flap { link; down_at; downtime }
  | 2 ->
      let sw = Buf.read_u16 r in
      let down_at = get_float r in
      let downtime = get_float r in
      Switch_reboot { sw; down_at; downtime }
  | 3 ->
      let sw = Buf.read_u16 r in
      let start = get_float r in
      let duration = get_float r in
      Partition { sw; start; duration }
  | 4 ->
      let sw = Buf.read_u16 r in
      let loss = get_float r in
      let start = get_float r in
      let duration = get_float r in
      Loss_burst { sw; loss; start; duration }
  | 5 ->
      let slot = Buf.read_u16 r in
      let bug = Buf.read_u16 r in
      Inject_bug { slot; bug }
  | 6 ->
      let at = get_float r in
      Kill_leader { at }
  | 7 ->
      let slot = Buf.read_u16 r in
      Byz_variant { slot }
  | k -> fail "unknown element tag %d" k

let policy_tag = function
  | Recovery_policy.No_compromise -> 0
  | Recovery_policy.Absolute -> 1
  | Recovery_policy.Equivalence -> 2

let policy_of_tag = function
  | 0 -> Recovery_policy.No_compromise
  | 1 -> Recovery_policy.Absolute
  | 2 -> Recovery_policy.Equivalence
  | k -> fail "unknown policy tag %d" k

let encode_into w t =
  Buf.u32 w t.seed;
  put_topo w t.topo;
  Buf.u16 w (List.length t.apps);
  List.iter (put_string w) t.apps;
  put_float w t.base_loss;
  put_float w t.duplicate;
  put_float w t.delay;
  Buf.u8 w (if t.reliable then 1 else 0);
  put_float w t.base_timeout;
  Buf.u16 w t.max_retries;
  Buf.u16 w t.checkpoint_every;
  Buf.u8 w (policy_tag t.policy);
  put_float w t.duration;
  Buf.u16 w t.replicas;
  put_float w t.election_lo;
  put_float w t.election_hi;
  Buf.u16 w t.nversion;
  Buf.u16 w (List.length t.elements);
  List.iter (put_element w) t.elements

(* [version] is the spec-layout version implied by the enclosing file's
   magic (reproducers): 1 and 2 predate the cluster fields and decode as
   single-controller scenarios; 3 predates the N-version panel size and
   decodes as solo sandboxes. *)
let decode_from ?(version = 4) r =
  let seed = Buf.read_u32 r in
  let topo = get_topo r in
  let n_apps = Buf.read_u16 r in
  let apps = List.init n_apps (fun _ -> get_string r) in
  let base_loss = get_float r in
  let duplicate = get_float r in
  let delay = get_float r in
  let reliable = Buf.read_u8 r = 1 in
  let base_timeout = get_float r in
  let max_retries = Buf.read_u16 r in
  let checkpoint_every = Buf.read_u16 r in
  let policy = policy_of_tag (Buf.read_u8 r) in
  let duration = get_float r in
  let replicas, election_lo, election_hi =
    if version >= 3 then
      let replicas = Buf.read_u16 r in
      let lo = get_float r in
      let hi = get_float r in
      (replicas, lo, hi)
    else (1, 0.15, 0.3)
  in
  let nversion = if version >= 4 then Buf.read_u16 r else 1 in
  let n_elements = Buf.read_u16 r in
  let elements = List.init n_elements (fun _ -> get_element r) in
  {
    seed;
    topo;
    apps;
    base_loss;
    duplicate;
    delay;
    reliable;
    base_timeout;
    max_retries;
    checkpoint_every;
    policy;
    duration;
    replicas;
    election_lo;
    election_hi;
    nversion;
    elements;
  }

let encode t =
  let w = Buf.writer ~capacity:256 () in
  encode_into w t;
  Buf.contents w

let decode b = decode_from (Buf.reader b)

let equal a b = a = b
