bin/experiments.mli:
