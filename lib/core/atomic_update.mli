(** Atomic network updates (§3.4, after Katta et al. [19]).

    A policy that spans multiple devices must be installed with
    all-or-nothing semantics, without requiring support from the
    application developer. This module wraps a batch of flow-mods in a
    transaction, verifies the post-state against network invariants before
    sealing it, and rolls everything back if any switch rejects an update
    or an invariant breaks — resolving exactly the ambiguity the paper
    describes ("when an application crashes after installing a few rules,
    it is not clear whether the few rules issued were part of a larger
    set"). *)

open Openflow

type failure =
  | Switch_rejected of Types.switch_id * string
      (** A switch answered one of the updates with an error. *)
  | Invariant_broken of Invariants.Checker.violation list
      (** The fully-applied update violates a network invariant. *)

type outcome = Committed | Rolled_back of failure

val apply :
  ?tracer:Obs.Tracer.t ->
  ?invariants:Invariants.Checker.invariant list ->
  ?checker:Invariants.Incremental.t ->
  net:Netsim.Net.t ->
  engine:Txn_engine.t ->
  app:string ->
  (Types.switch_id * Message.flow_mod) list ->
  outcome
(** Apply the batch atomically: on [Committed] every flow-mod is live; on
    [Rolled_back] none is (the network is byte-identical to before).
    Invariants are checked on the applied state just before commit
    (default: {!Invariants.Checker.default}); with [checker] the screening
    runs through the incremental engine's caches instead of a fresh full
    snapshot, with the same verdict. [tracer] records the screening as a
    [Detection] span and the transactional phase as a [Txn_commit] span
    (with a nested [Txn_rollback] from the engine when it aborts). *)

val describe : outcome -> string
