test/t_monolithic.ml: Alcotest Apps Clock Controller Flow_table List Net Netsim Openflow Sw T_util Topo_gen
