module Policy = Legosdn.Policy
module Policy_lang = Legosdn.Policy_lang
module Event = Controller.Event

let test_default_policy () =
  let p = Policy.make [] in
  T_util.checkb "default is equivalence" true
    (Policy.decide p ~app:"x" Event.K_packet_in = Policy.Equivalence)

let test_first_match_wins () =
  let p =
    Policy.make
      [
        { Policy.app = Some "fw"; kind = None; action = Policy.No_compromise };
        { Policy.app = Some "fw"; kind = Some Event.K_tick; action = Policy.Absolute };
      ]
  in
  T_util.checkb "earlier rule shadows later" true
    (Policy.decide p ~app:"fw" Event.K_tick = Policy.No_compromise)

let test_wildcards () =
  let p =
    Policy.make ~default:Policy.Absolute
      [
        { Policy.app = None; kind = Some Event.K_switch_down; action = Policy.No_compromise };
        { Policy.app = Some "lb"; kind = None; action = Policy.Equivalence };
      ]
  in
  T_util.checkb "kind wildcard matches any app" true
    (Policy.decide p ~app:"whatever" Event.K_switch_down = Policy.No_compromise);
  T_util.checkb "app rule" true
    (Policy.decide p ~app:"lb" Event.K_packet_in = Policy.Equivalence);
  T_util.checkb "fallthrough to default" true
    (Policy.decide p ~app:"other" Event.K_packet_in = Policy.Absolute)

let test_uniform () =
  let p = Policy.uniform Policy.No_compromise in
  List.iter
    (fun kind ->
      T_util.checkb "uniform answers the same" true
        (Policy.decide p ~app:"any" kind = Policy.No_compromise))
    Event.all_kinds

let example_text =
  {|
# security apps must never be compromised
app firewall event * => no-compromise
app * event switch_down => equivalence
app learning_switch event packet_in => absolute   # drop poisoned packets
default => equivalence
|}

let test_parse_example () =
  match Policy_lang.parse example_text with
  | Error e -> Alcotest.failf "parse error: %a" Policy_lang.pp_error e
  | Ok p ->
      T_util.checki "three rules" 3 (List.length (Policy.rules p));
      T_util.checkb "firewall protected" true
        (Policy.decide p ~app:"firewall" Event.K_packet_in = Policy.No_compromise);
      T_util.checkb "switch_down transformed for others" true
        (Policy.decide p ~app:"router" Event.K_switch_down = Policy.Equivalence);
      T_util.checkb "ls packet_in dropped" true
        (Policy.decide p ~app:"learning_switch" Event.K_packet_in = Policy.Absolute)

let test_parse_errors () =
  (match Policy_lang.parse "app x => nope" with
  | Error e -> T_util.checki "error on line 1" 1 e.Policy_lang.line
  | Ok _ -> Alcotest.fail "should not parse");
  (match Policy_lang.parse "app x event packet_in => sorta" with
  | Error e ->
      T_util.checkb "names the bad compromise" true
        (String.length e.Policy_lang.message > 0)
  | Ok _ -> Alcotest.fail "bad compromise accepted");
  (match Policy_lang.parse "app x event nonsense_kind => absolute" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted");
  match Policy_lang.parse "default => absolute\ndefault => equivalence" with
  | Error e -> T_util.checki "duplicate default flagged" 2 e.Policy_lang.line
  | Ok _ -> Alcotest.fail "duplicate default accepted"

let test_print_parse_roundtrip () =
  let p = Policy_lang.parse_exn example_text in
  let p2 = Policy_lang.parse_exn (Policy_lang.print p) in
  T_util.checkb "roundtrip equality" true (Policy.equal p p2)

let policy_gen =
  QCheck2.Gen.(
    let compromise =
      oneofl [ Policy.No_compromise; Policy.Absolute; Policy.Equivalence ]
    in
    let rule =
      let* app = opt (oneofl [ "a"; "b"; "router" ]) in
      let* kind = opt (oneofl Event.all_kinds) in
      let* action = compromise in
      return { Policy.app; kind; action }
    in
    let* rules = list_size (int_bound 6) rule in
    let* default = compromise in
    return (Policy.make ~default rules))

let prop_lang_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip for any policy" ~count:300
    policy_gen (fun p ->
      Policy.equal p (Policy_lang.parse_exn (Policy_lang.print p)))

let suite =
  [
    Alcotest.test_case "default policy" `Quick test_default_policy;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "wildcards" `Quick test_wildcards;
    Alcotest.test_case "uniform policy" `Quick test_uniform;
    Alcotest.test_case "parse example" `Quick test_parse_example;
    Alcotest.test_case "parse errors located" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_lang_roundtrip;
  ]
