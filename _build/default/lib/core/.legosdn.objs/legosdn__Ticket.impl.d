lib/core/ticket.ml: Controller Format List Option Printf
