open Openflow
open Netsim
module Snapshot = Invariants.Snapshot
module Checker = Invariants.Checker

let setup () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 3) in
  ignore (Net.poll net);
  net

let install net sid ?(priority = Message.default_priority) pattern actions =
  ignore
    (Net.send net sid
       (Message.message
          (Message.Flow_mod (Message.flow_add ~priority pattern actions))))

let mac h = Types.mac_of_host h

let test_clean_network_has_no_violations () =
  let net = setup () in
  Alcotest.(check (list string)) "no violations" []
    (List.map Checker.violation_kind (Checker.check (Snapshot.of_net net)))

let test_loop_detected () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.ring 3) in
  ignore (Net.poll net);
  install net 1 Ofp_match.any [ Action.Output 1 ];
  install net 2 Ofp_match.any [ Action.Output 2 ];
  install net 3 Ofp_match.any [ Action.Output 2 ];
  let violations = Checker.check ~invariants:[ Checker.Loop_freedom ] (Snapshot.of_net net) in
  T_util.checkb "loop found" true
    (List.exists
       (function Checker.Forwarding_loop _ -> true | _ -> false)
       violations)

let test_blackhole_detected () =
  let net = setup () in
  (* Forward h1->h2 traffic into an unwired port on s1. *)
  install net 1 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 77 ];
  let violations =
    Checker.check ~invariants:[ Checker.Black_hole_freedom ] (Snapshot.of_net net)
  in
  T_util.checkb "black hole found" true
    (List.exists
       (function Checker.Black_hole { at = [ 1 ]; _ } -> true | _ -> false)
       violations)

let test_explicit_drop_is_not_blackhole () =
  let net = setup () in
  (* A firewall-style drop rule for a specific pair, below default prio. *)
  install net 1 ~priority:10 (Ofp_match.make ~dl_dst:(mac 2) ()) [];
  Alcotest.(check (list string)) "explicit drop tolerated" []
    (List.map Checker.violation_kind
       (Checker.check
          ~invariants:[ Checker.Black_hole_freedom; Checker.No_drop_all ]
          (Snapshot.of_net net)))

let test_drop_all_detected () =
  let net = setup () in
  install net 2 ~priority:65000 Ofp_match.any [];
  let violations =
    Checker.check ~invariants:[ Checker.No_drop_all ] (Snapshot.of_net net)
  in
  T_util.checkb "drop-all flagged" true
    (List.exists
       (function Checker.Drop_all_rule { sw = 2; _ } -> true | _ -> false)
       violations)

let test_reachability_invariant () =
  let net = setup () in
  let inv = [ Checker.Pairwise_reachability [ (1, 2) ] ] in
  T_util.checkb "unprogrammed: unreachable" true
    (Checker.check ~invariants:inv (Snapshot.of_net net)
     |> List.exists (function Checker.Unreachable _ -> true | _ -> false));
  install net 1 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 1 ];
  install net 2 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 100 ];
  Alcotest.(check (list string)) "programmed: fine" []
    (List.map Checker.violation_kind
       (Checker.check ~invariants:inv (Snapshot.of_net net)))

let test_check_flow_mods_is_differential () =
  let net = setup () in
  (* Pre-existing damage... *)
  install net 1 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 77 ];
  let snap = Snapshot.of_net net in
  T_util.checkb "pre-existing violation visible to check" true
    (Checker.check snap <> []);
  (* ...is not pinned on new, harmless mods. *)
  let harmless =
    [ (3, Message.flow_add (Ofp_match.make ~dl_dst:(mac 3) ()) [ Action.Output 100 ]) ]
  in
  Alcotest.(check (list string)) "differential check is clean" []
    (List.map Checker.violation_kind (Checker.check_flow_mods snap harmless));
  (* New damage is caught. *)
  let harmful =
    [ (3, Message.flow_add (Ofp_match.make ~dl_dst:(mac 1) ()) [ Action.Output 88 ]) ]
  in
  T_util.checkb "new damage caught" true (Checker.check_flow_mods snap harmful <> [])

let test_snapshot_apply_is_pure () =
  let net = setup () in
  let snap = Snapshot.of_net net in
  let fm = Message.flow_add Ofp_match.any [ Action.Output 1 ] in
  let snap2 = Snapshot.apply_flow_mod snap 1 fm in
  T_util.checki "original snapshot unchanged" 0 (List.length (Snapshot.entries snap 1));
  T_util.checki "new snapshot has the rule" 1 (List.length (Snapshot.entries snap2 1));
  T_util.checki "live network unchanged" 0
    (Flow_table.size (Net.switch net 1).Sw.table)

let test_snapshot_delete_mod () =
  let net = setup () in
  install net 1 (Ofp_match.make ~tp_dst:80 ()) [ Action.Output 1 ];
  let snap = Snapshot.of_net net in
  let snap2 =
    Snapshot.apply_flow_mod snap 1 (Message.flow_delete (Ofp_match.make ~tp_dst:80 ()))
  in
  T_util.checki "rule deleted in snapshot" 0 (List.length (Snapshot.entries snap2 1));
  T_util.checki "live rule still present" 1
    (Flow_table.size (Net.switch net 1).Sw.table)

let test_trace_agrees_with_net_probe () =
  let net = setup () in
  install net 1 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 1 ];
  install net 2 (Ofp_match.make ~dl_dst:(mac 2) ()) [ Action.Output 100 ];
  let snap = Snapshot.of_net net in
  let t = Snapshot.trace snap 1 (T_util.tcp_packet 1 2) in
  let p = Net.probe net 1 (T_util.tcp_packet 1 2) in
  Alcotest.(check (list int)) "same hosts reached" p.Net.reached t.Snapshot.reached;
  T_util.checkb "same loop flag" true (p.Net.looped = t.Snapshot.looped)

let suite =
  [
    Alcotest.test_case "clean network" `Quick test_clean_network_has_no_violations;
    Alcotest.test_case "loop detection" `Quick test_loop_detected;
    Alcotest.test_case "black hole detection" `Quick test_blackhole_detected;
    Alcotest.test_case "explicit drop tolerated" `Quick test_explicit_drop_is_not_blackhole;
    Alcotest.test_case "drop-all detection" `Quick test_drop_all_detected;
    Alcotest.test_case "reachability invariant" `Quick test_reachability_invariant;
    Alcotest.test_case "differential check" `Quick test_check_flow_mods_is_differential;
    Alcotest.test_case "snapshot apply is pure" `Quick test_snapshot_apply_is_pure;
    Alcotest.test_case "snapshot delete" `Quick test_snapshot_delete_mod;
    Alcotest.test_case "trace agrees with live probe" `Quick test_trace_agrees_with_net_probe;
  ]
