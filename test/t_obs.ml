(* The observability subsystem: tracer nesting discipline (including
   under injected crashes that unwind past open spans), ring-buffer
   wraparound accounting, Chrome-trace JSON round-trips, the hub's
   subscription semantics, the metrics registry, and — as a qcheck
   property — the histogram's quantile bounds. *)

open Netsim
module Event = Controller.Event
module App_sig = Controller.App_sig
module Runtime = Legosdn.Runtime
module Crashpad = Legosdn.Crashpad
module Recovery_policy = Legosdn.Recovery_policy
module Metrics = Legosdn.Metrics

let checkb = T_util.checkb
let checki = T_util.checki

let packet_in src dst =
  Event.Packet_in
    ( 1,
      {
        Openflow.Message.pi_buffer_id = None;
        pi_in_port = 100;
        pi_reason = Openflow.Message.No_match;
        pi_packet = Openflow.Packet.tcp ~src_host:src ~dst_host:dst ();
      } )

(* ---------------- tracer: nesting and wraparound ---------------- *)

let fresh_tracer ?(capacity = 1024) () =
  let vt = ref 0. in
  Obs.Tracer.create ~capacity
    ~now:(fun () ->
      vt := !vt +. 0.001;
      !vt)
    ()

let test_nesting_and_autoclose () =
  let tr = fresh_tracer () in
  let root = Obs.Tracer.start tr Obs.Span.Event_root in
  let child = Obs.Tracer.start tr Obs.Span.App_handle in
  let _grandchild = Obs.Tracer.start tr Obs.Span.Txn_commit in
  checki "three open" 3 (Obs.Tracer.open_count tr);
  (* Finishing the root must close the abandoned child and grandchild —
     the unwound-past-open-spans case a crash produces. *)
  Obs.Tracer.finish tr root;
  checki "all closed" 0 (Obs.Tracer.open_count tr);
  let spans = Obs.Tracer.spans tr in
  checki "three recorded" 3 (List.length spans);
  (match Obs.Export.validate spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  let by_id id = List.find (fun (s : Obs.Span.t) -> s.id = id) spans in
  checki "child's parent is root" root (by_id child).Obs.Span.parent;
  let r = by_id root and c = by_id child in
  checkb "child wall interval inside root" true
    (c.Obs.Span.t0 >= r.Obs.Span.t0 && c.Obs.Span.t1 <= r.Obs.Span.t1);
  (* Unknown and double finishes are ignored. *)
  Obs.Tracer.finish tr root;
  Obs.Tracer.finish tr 9999;
  checki "still three" 3 (List.length (Obs.Tracer.spans tr))

let test_ring_wraparound () =
  let tr = fresh_tracer ~capacity:8 () in
  for i = 1 to 20 do
    Obs.Tracer.instant tr
      ~attrs:[ ("i", string_of_int i) ]
      Obs.Span.Inv_cache_hit
  done;
  checki "recorded counts evictions too" 20 (Obs.Tracer.recorded tr);
  checki "dropped" 12 (Obs.Tracer.dropped tr);
  let spans = Obs.Tracer.spans tr in
  checki "ring holds capacity" 8 (List.length spans);
  (* Oldest-first, and the survivors are exactly the last eight. *)
  List.iteri
    (fun idx (s : Obs.Span.t) ->
      checki "survivor order" (13 + idx) (int_of_string (List.assoc "i" s.attrs)))
    spans;
  (match Obs.Export.validate spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "wrapped trace invalid: %s" e);
  Obs.Tracer.clear tr;
  checki "clear empties the ring" 0 (List.length (Obs.Tracer.spans tr))

(* ---------------- tracer under an injected crash ---------------- *)

let crasher : App_sig.app =
  App_sig.app
  (module struct
    type state = int

    let name = "crasher"
    let subscriptions = [ Event.K_packet_in ]
    let init () = 0

    let handle _ st = function
      | Event.Packet_in _ ->
          let cmds =
            List.init 4 (fun i ->
                Controller.Command.install 1
                  (Openflow.Ofp_match.make ~tp_src:(i + 1) ())
                  [ Openflow.Action.Output 1 ])
          in
          raise (App_sig.Crash_with_partial cmds)
      | _ -> (st, [])
  end)

let absolute_config =
  {
    Runtime.default_config with
    Runtime.crashpad =
      {
        Crashpad.default_config with
        Crashpad.policy = Recovery_policy.uniform Recovery_policy.Absolute;
      };
  }

let test_spans_under_injected_crash () =
  let net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  let rt = Runtime.create ~config:absolute_config net [ crasher ] in
  Runtime.step rt;
  let tracer =
    Obs.Tracer.create ~capacity:1024
      ~now:(fun () -> Clock.now (Net.clock net))
      ()
  in
  Runtime.set_tracer rt tracer;
  Runtime.dispatch_event rt (packet_in 1 2);
  (* The crash unwound through the app-handle span; nothing may leak. *)
  checki "no open spans after crash" 0 (Obs.Tracer.open_count tracer);
  let spans = Obs.Tracer.spans tracer in
  (match Obs.Export.validate spans with
  | Ok () -> ()
  | Error e -> Alcotest.failf "crash trace invalid: %s" e);
  let kinds = Obs.Export.kinds spans in
  checkb "event span" true (List.mem Obs.Span.Event_root kinds);
  checkb "app span" true (List.mem Obs.Span.App_handle kinds);
  checkb "rollback span" true (List.mem Obs.Span.Txn_rollback kinds);
  checkb "recovery span" true (List.mem Obs.Span.Recovery kinds);
  (* The partial commands were really rolled back. *)
  let rb =
    List.find (fun (s : Obs.Span.t) -> s.kind = Obs.Span.Txn_rollback) spans
  in
  checkb "rollback undid the partial writes" true
    (int_of_string (List.assoc "undos" rb.Obs.Span.attrs) > 0)

(* ---------------- Chrome-trace JSON round-trip ---------------- *)

let test_chrome_roundtrip () =
  let tr = fresh_tracer () in
  Obs.Tracer.with_span tr
    ~attrs:[ ("kind", "packet_in"); ("quote", "a\"b\\c"); ("nl", "x\ny") ]
    Obs.Span.Event_root
    (fun () ->
      Obs.Tracer.instant tr ~attrs:[ ("sw", "3") ] Obs.Span.Delivery;
      Obs.Tracer.with_span tr Obs.Span.App_handle (fun () -> ()));
  let spans = Obs.Tracer.spans tr in
  let json = Obs.Export.to_chrome spans in
  (match Obs.Export.of_chrome json with
  | Error e -> Alcotest.failf "re-import failed: %s" e
  | Ok spans' ->
      checkb "spans survive the round-trip" true (spans = spans');
      Alcotest.(check string)
        "bytes survive the round-trip" json
        (Obs.Export.to_chrome spans'));
  (* And through a file, the way --trace-out writes it. *)
  let path = Filename.temp_file "t_obs" ".trace.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.save path spans;
      match Obs.Export.load path with
      | Ok spans' -> checkb "file round-trip" true (spans = spans')
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_chrome_rejects_garbage () =
  checkb "not json" true (Result.is_error (Obs.Export.of_chrome "not json"));
  checkb "wrong shape" true
    (Result.is_error (Obs.Export.of_chrome "{\"traceEvents\": 3}"))

(* ---------------- the hub ---------------- *)

let test_hub_subscribe_order_and_unsubscribe () =
  let hub = Obs.Hub.create () in
  let log = ref [] in
  let sub tag = Obs.Hub.subscribe hub (fun _ -> log := tag :: !log) in
  let a = sub "a" in
  let b = sub "b" in
  let c = sub "c" in
  checki "three subscribers" 3 (Obs.Hub.subscriber_count hub);
  Obs.Hub.emit hub (Obs.Hub.Delivery (Obs.Hub.Degraded { sw = 1 }));
  Alcotest.(check (list string))
    "subscription order" [ "a"; "b"; "c" ] (List.rev !log);
  Obs.Hub.unsubscribe hub b;
  log := [];
  Obs.Hub.emit hub (Obs.Hub.Delivery (Obs.Hub.Degraded { sw = 1 }));
  Alcotest.(check (list string)) "b gone" [ "a"; "c" ] (List.rev !log);
  Obs.Hub.unsubscribe hub b;
  (* idempotent *)
  Obs.Hub.unsubscribe hub a;
  Obs.Hub.unsubscribe hub c;
  checki "all gone" 0 (Obs.Hub.subscriber_count hub)

(* What the deprecated [Runtime.set_event_tap] wrapper used to provide,
   done the one remaining way: a hub subscription filtered to
   [Dispatched] events sees the dispatch stream exactly as the sandboxes
   do, and unsubscribing silences it. *)
let test_runtime_dispatch_stream_via_hub () =
  let net =
    Net.create (Clock.create ()) (Topo_gen.linear ~hosts_per_switch:1 2)
  in
  let rt = Runtime.create net [ App_sig.app (module Apps.Hub) ] in
  Runtime.step rt;
  let tapped = ref 0 in
  let tap =
    Obs.Hub.subscribe (Runtime.hub rt) (function
      | Obs.Hub.Dispatched _ -> incr tapped
      | Obs.Hub.Inv_cache _ | Obs.Hub.Delivery _ -> ())
  in
  Runtime.dispatch_event rt (packet_in 1 2);
  checki "subscriber saw the dispatch" 1 !tapped;
  Obs.Hub.unsubscribe (Runtime.hub rt) tap;
  Runtime.dispatch_event rt (packet_in 2 1);
  checki "unsubscribed tap is silent" 1 !tapped

(* ---------------- the metrics registry ---------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "my.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter value" 5 (Metrics.value c);
  let c' = Metrics.counter m "my.counter" in
  Metrics.incr c';
  checki "find-or-register shares state" 6 (Metrics.value c);
  (match Metrics.counter m "events" with
  | c -> checkb "legacy counter reachable by name" true (Metrics.value c = 0));
  Metrics.incr_events m;
  checki "legacy incr and registry agree" 1 (Metrics.events m);
  (match Metrics.find m "events" with
  | Some (Metrics.Counter c) -> checki "via find" 1 (Metrics.value c)
  | _ -> Alcotest.fail "events not registered as a counter");
  let g = Metrics.gauge m "my.gauge" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  checkb "type clash raises" true
    (match Metrics.gauge m "my.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let h = Obs.Histogram.create () in
  Obs.Histogram.observe h 1e-6;
  Metrics.attach_histogram m "span.event" h;
  (match Metrics.find m "span.event" with
  | Some (Metrics.Histogram h') ->
      checki "attached histogram is shared" 1 (Obs.Histogram.count h')
  | _ -> Alcotest.fail "span.event not registered as a histogram");
  (* Registration order: pre-registered legacy counters first, then ours. *)
  (match Metrics.names m with
  | "events" :: _ -> ()
  | other ->
      Alcotest.failf "expected events first, got %s"
        (String.concat "," other));
  checkb "our names present, in order" true
    (let names = Metrics.names m in
     let pos x = Option.get (List.find_index (( = ) x) names) in
     pos "my.counter" < pos "my.gauge" && pos "my.gauge" < pos "span.event")

let test_metrics_pp_format_unchanged () =
  let m = Metrics.create () in
  Metrics.incr_events m;
  Metrics.incr_crash m;
  let s = Format.asprintf "%a" Metrics.pp m in
  checkb "summary line starts as before" true
    (String.length s >= 8 && String.sub s 0 8 = "events=1");
  checkb "crash counter in the line" true
    (let re = "crashes=1" in
     let n = String.length s and k = String.length re in
     let rec scan i = i + k <= n && (String.sub s i k = re || scan (i + 1)) in
     scan 0)

(* ---------------- histogram quantile bounds (qcheck) ---------------- *)

let prop_quantile_bounds =
  QCheck2.Test.make ~name:"histogram quantiles bound the true sample quantiles"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (float_range 1e-8 10.0))
        (float_range 0.01 1.0))
    (fun (samples, q) ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) samples;
      let bound = Obs.Histogram.quantile h q in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (Float.ceil (q *. float n))) in
      let true_q = List.nth sorted (rank - 1) in
      (* Upper bound on the true quantile, and at most one factor-2 bucket
         above it (samples sit above min_bound by construction). *)
      true_q <= bound && bound <= (2.0 *. true_q) +. 1e-12)

let suite =
  [
    Alcotest.test_case "nesting and auto-close" `Quick
      test_nesting_and_autoclose;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "spans under injected crash" `Quick
      test_spans_under_injected_crash;
    Alcotest.test_case "chrome-trace round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "chrome-trace rejects garbage" `Quick
      test_chrome_rejects_garbage;
    Alcotest.test_case "hub order and unsubscribe" `Quick
      test_hub_subscribe_order_and_unsubscribe;
    Alcotest.test_case "runtime dispatch stream via hub" `Quick
      test_runtime_dispatch_stream_via_hub;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics pp format unchanged" `Quick
      test_metrics_pp_format_unchanged;
    QCheck_alcotest.to_alcotest prop_quantile_bounds;
  ]
