test/t_net.ml: Action Alcotest Clock Flow_entry Flow_table List Message Net Netsim Ofp_match Openflow Sw T_util Topo_gen Topology Types
