test/t_soak.ml: Alcotest Apps Controller Legosdn List Net Netsim Openflow Option Printf T_util Topo_gen Topology Workload
