lib/netsim/sw.mli: Flow_table Format Hashtbl Message Openflow Packet Types
