open Openflow
open Controller

type state = int  (* rules installed *)

let name = "flooder"
let subscriptions = [ Event.K_packet_in ]
let init () = 0
let rules_installed st = st

let flow_idle_timeout = 60

let handle _ctx st = function
  | Event.Packet_in (sid, pi) ->
      let pattern =
        Ofp_match.make ~in_port:pi.Message.pi_in_port
          ~dl_dst:pi.Message.pi_packet.Packet.dl_dst ()
      in
      let install =
        Command.install ~idle_timeout:flow_idle_timeout sid pattern
          [ Action.Output Types.port_flood ]
      in
      let release =
        Command.packet_out ?buffer_id:pi.Message.pi_buffer_id
          ~in_port:pi.Message.pi_in_port sid
          [ Action.Output Types.port_flood ]
          (match pi.Message.pi_buffer_id with
          | Some _ -> None
          | None -> Some pi.Message.pi_packet)
      in
      (st + 1, [ install; release ])
  | _ -> (st, [])
