type delivery =
  | Sent of { sw : Openflow.Types.switch_id; xid : int }
  | Queued of { sw : Openflow.Types.switch_id; xid : int }
  | Retransmitted of { sw : Openflow.Types.switch_id; xid : int; attempt : int }
  | Acked of { sw : Openflow.Types.switch_id; xid : int }
  | Degraded of { sw : Openflow.Types.switch_id }
  | Resynced of { sw : Openflow.Types.switch_id; rules : int }

type event =
  | Dispatched of Controller.Event.t
  | Inv_cache of Invariants.Incremental.event
  | Delivery of delivery

type subscription = int

type t = {
  mutable subs : (subscription * (event -> unit)) list;  (* oldest first *)
  mutable next : subscription;
}

let create () = { subs = []; next = 1 }

let subscribe t f =
  let id = t.next in
  t.next <- id + 1;
  t.subs <- t.subs @ [ (id, f) ];
  id

let unsubscribe t id = t.subs <- List.filter (fun (id', _) -> id' <> id) t.subs

let emit t ev =
  (* Snapshot so a subscriber that (un)subscribes mid-emit doesn't
     perturb this delivery round. *)
  let subs = t.subs in
  List.iter (fun (_, f) -> f ev) subs

let subscriber_count t = List.length t.subs

let pp_delivery fmt = function
  | Sent { sw; xid } -> Format.fprintf fmt "sent sw=%d xid=%d" sw xid
  | Queued { sw; xid } -> Format.fprintf fmt "queued sw=%d xid=%d" sw xid
  | Retransmitted { sw; xid; attempt } ->
      Format.fprintf fmt "retransmit sw=%d xid=%d attempt=%d" sw xid attempt
  | Acked { sw; xid } -> Format.fprintf fmt "acked sw=%d xid=%d" sw xid
  | Degraded { sw } -> Format.fprintf fmt "degraded sw=%d" sw
  | Resynced { sw; rules } ->
      Format.fprintf fmt "resynced sw=%d rules=%d" sw rules
