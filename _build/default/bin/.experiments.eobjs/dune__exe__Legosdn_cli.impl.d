bin/legosdn_cli.ml: Apps Arg Cmd Cmdliner Controller Format Legosdn List Netsim Printf Result String Term Topo_gen Topology Workload
