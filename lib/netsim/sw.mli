(** A simulated OpenFlow 1.0 switch: one flow table, a set of ports with
    counters, a packet buffer store, and a message handler implementing the
    controller-facing protocol. *)

open Openflow

type port_state = {
  port_no : Types.port_no;
  hw_addr : Types.mac;
  mutable port_up : bool;
  mutable no_flood : bool;
      (** OFPPC_NO_FLOOD: set via [Port_mod]; FLOOD outputs skip the port. *)
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
  mutable rx_dropped : int;
  mutable tx_dropped : int;
}

type t = {
  id : Types.switch_id;
  table : Flow_table.t;
  mutable up : bool;
  ports : (int, port_state) Hashtbl.t;
  buffers : (int, Packet.t * Types.port_no) Hashtbl.t;
  mutable next_buffer_id : int;
  seen_xids : (Types.xid, unit) Hashtbl.t;
      (** Dedup window for state-altering messages (bounded). *)
  seen_order : Types.xid Queue.t;
  mutable dups_suppressed : int;
      (** Retransmitted state-altering messages whose effects were
          suppressed by the dedup window. *)
  mutable cfg_gen : int;
      (** Port/liveness change counter; see {!version}. *)
  mutable master : int option;
      (** Designated master controller id, if the cluster set one. *)
  mutable slave_rejected : int;
      (** State-altering messages rejected because the sender was not the
          designated master. *)
}

val create : id:Types.switch_id -> port_nos:Types.port_no list -> t
(** A switch with the given wired ports, all initially up. *)

val version : t -> int
(** Monotonic forwarding-state version: changes whenever the flow table,
    a port's up/down state or the switch's liveness changes. Equal
    versions at two instants guarantee identical forwarding behaviour,
    which is what the incremental invariant checker keys its caches on. *)

val set_up : t -> up:bool -> unit
(** Change switch liveness, bumping {!version} on a real transition. The
    network layer uses this instead of writing the [up] field directly. *)

val reset_dedup : t -> unit
(** Forget the xid dedup window (reboot semantics: a rebooted switch has
    no memory of what it applied). *)

val set_master : t -> int option -> unit
(** Designate a master controller (or clear the role with [None]). While a
    master is set, state-altering messages attributed to any other
    controller are answered with an error and not applied — the OF 1.2
    master/slave role contract, reduced to its write-exclusion core. *)

val has_seen_xid : t -> Types.xid -> bool
(** Whether a state-altering message with this xid has been processed
    (and is still inside the dedup window). A barrier reply means "I
    processed everything you delivered before it"; this is the per-xid
    receive record that lets a controller turn that into a selective
    acknowledgement. *)

val port : t -> Types.port_no -> port_state option
val port_list : t -> port_state list
(** Ports ascending by number. *)

val set_port : t -> Types.port_no -> up:bool -> bool
(** Returns [false] if the port does not exist. *)

val features : t -> Message.features
val port_desc : port_state -> Message.port_desc

(** Result of pushing one packet through the pipeline. *)
type forward_result = {
  transmits : (Packet.t * Types.port_no) list;
      (** Concrete egress copies, reserved ports already expanded. *)
  punts : Message.packet_in list;
      (** Packet-ins raised (table miss or output-to-controller). *)
  matched : bool;  (** Whether some flow entry matched. *)
}

val empty_forward : forward_result

val process_packet :
  t -> now:float -> in_port:Types.port_no -> Packet.t -> forward_result
(** Run the packet through the flow table, updating entry and port rx
    counters. A table miss buffers the packet and raises a [No_match]
    packet-in carrying the buffer id. *)

val account_tx : t -> Types.port_no -> Packet.t -> unit
(** Record an actual transmission out of a port (the network layer calls
    this once per copy it propagates). *)

val handle_message :
  ?from:int -> t -> now:float -> Message.t -> Message.t list * forward_result
(** Process one controller-to-switch message; returns the direct protocol
    replies (echo/barrier/stats/features/flow-removed/error, with the
    request's xid) and any data-plane transmissions it triggered
    (packet-out, or a flow-mod applied to a buffered packet). [from]
    identifies the sending controller for the master/slave role check;
    omitting it bypasses the check (single-controller deployments). *)

val expire_flows : t -> now:float -> Message.t list
(** Remove timed-out entries; returns the [Flow_removed] notifications for
    entries that asked for them. *)

val pp : Format.formatter -> t -> unit
