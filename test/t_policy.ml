(* The network-policy language and its compiler.

   The core property is the differential: over random policies × random
   located packets, the compiled prioritized flow table produces exactly
   the forwarding relation defined by [Policy.denotation]. Policies that
   have no OF 1.0 action-list serialization raise [Uncompilable] and are
   skipped (but must stay a small minority of the generated space). *)

open Openflow

(* ---------------- a small deterministic world ---------------- *)

let switches = [ 1; 2 ]
let ports _sw = [ 1; 2; 3 ]
let macs = [| Types.mac_of_host 0; Types.mac_of_host 1; Types.mac_of_host 2 |]
let ips = [| Types.ip_of_host 0; Types.ip_of_host 1 |]

(* ---------------- generators ---------------- *)

let gen_hv =
  QCheck.Gen.(
    oneof
      [
        map (fun p -> Policy.In_port (1 + (p mod 3))) small_nat;
        map (fun i -> Policy.Dl_src macs.(i mod 3)) small_nat;
        map (fun i -> Policy.Dl_dst macs.(i mod 3)) small_nat;
        oneofl
          [
            Policy.Dl_vlan None;
            Policy.Dl_vlan (Some 10);
            Policy.Dl_vlan (Some 20);
          ];
        oneofl
          [
            Policy.Dl_type Packet.ethertype_ip;
            Policy.Dl_type Packet.ethertype_arp;
          ];
        map (fun i -> Policy.Nw_src ips.(i mod 2)) small_nat;
        map (fun i -> Policy.Nw_dst ips.(i mod 2)) small_nat;
        oneofl
          [ Policy.Nw_proto Packet.proto_tcp; Policy.Nw_proto Packet.proto_udp ];
        oneofl [ Policy.Nw_tos 0; Policy.Nw_tos 46 ];
        oneofl [ Policy.Tp_src 1024; Policy.Tp_src 2048 ];
        oneofl [ Policy.Tp_dst 80; Policy.Tp_dst 23; Policy.Tp_dst 445 ];
      ])

let rec gen_pred depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          return Policy.True;
          return Policy.False;
          map (fun h -> Policy.Test h) gen_hv;
        ]
    else
      frequency
        [
          (2, map (fun h -> Policy.Test h) gen_hv);
          (1, return Policy.True);
          (1, return Policy.False);
          ( 2,
            map2
              (fun a b -> Policy.And (a, b))
              (gen_pred (depth - 1))
              (gen_pred (depth - 1)) );
          ( 2,
            map2
              (fun a b -> Policy.Or (a, b))
              (gen_pred (depth - 1))
              (gen_pred (depth - 1)) );
          (1, map (fun a -> Policy.Neg a) (gen_pred (depth - 1)));
        ])

let gen_update =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Policy.To_dl_src macs.(i mod 3)) small_nat;
        map (fun i -> Policy.To_dl_dst macs.(i mod 3)) small_nat;
        oneofl [ Policy.To_vlan 10; Policy.To_vlan 20; Policy.To_no_vlan ];
        map (fun i -> Policy.To_nw_src ips.(i mod 2)) small_nat;
        map (fun i -> Policy.To_nw_dst ips.(i mod 2)) small_nat;
        oneofl [ Policy.To_nw_tos 0; Policy.To_nw_tos 46 ];
        oneofl [ Policy.To_tp_src 1024; Policy.To_tp_src 2048 ];
        oneofl [ Policy.To_tp_dst 80; Policy.To_tp_dst 8080 ];
      ])

let rec gen_policy depth =
  QCheck.Gen.(
    if depth = 0 then
      frequency
        [
          (3, map (fun p -> Policy.Filter p) (gen_pred 1));
          (3, map (fun p -> Policy.Forward (1 + (p mod 3))) small_nat);
          (1, return Policy.Flood);
          (1, return Policy.Drop);
          (2, map (fun u -> Policy.Modify u) gen_update);
        ]
    else
      frequency
        [
          (2, map (fun p -> Policy.Filter p) (gen_pred (min depth 2)));
          (2, map (fun p -> Policy.Forward (1 + (p mod 3))) small_nat);
          (1, return Policy.Flood);
          (2, map (fun u -> Policy.Modify u) gen_update);
          ( 3,
            map2
              (fun a b -> Policy.Union (a, b))
              (gen_policy (depth - 1))
              (gen_policy (depth - 1)) );
          ( 3,
            map2
              (fun a b -> Policy.Seq (a, b))
              (gen_policy (depth - 1))
              (gen_policy (depth - 1)) );
          ( 1,
            map2
              (fun sw p -> Policy.At (1 + (sw mod 2), p))
              small_nat
              (gen_policy (depth - 1)) );
        ])

let gen_packet =
  QCheck.Gen.(
    let* src = int_bound 2 in
    let* dst = int_bound 2 in
    let* vlan = oneofl [ None; Some 10; Some 20 ] in
    let* dl_type = oneofl [ Packet.ethertype_ip; Packet.ethertype_arp ] in
    let* proto = oneofl [ Packet.proto_tcp; Packet.proto_udp ] in
    let* tos = oneofl [ 0; 46 ] in
    let* sport = oneofl [ 1024; 2048 ] in
    let* dport = oneofl [ 80; 23; 445; 8080 ] in
    return
      (Packet.make ~dl_vlan:vlan ~dl_type ~nw_proto:proto ~nw_tos:tos
         ~tp_src:sport ~tp_dst:dport ~dl_src:macs.(src) ~dl_dst:macs.(dst)
         ~nw_src:ips.(src mod 2) ~nw_dst:ips.(dst mod 2) ()))

let gen_located =
  QCheck.Gen.(
    let* sw = oneofl switches in
    let* in_port = oneofl (ports sw) in
    let* pkt = gen_packet in
    return (sw, in_port, pkt))

let gen_case =
  QCheck.Gen.(
    let* pol = gen_policy 3 in
    let* located = list_size (int_range 1 6) gen_located in
    return (pol, located))

let print_case (pol, located) =
  Format.asprintf "@[<v>policy: %a@,packets: %d@]" Policy.pp pol
    (List.length located)

let pp_rel =
  Fmt.Dump.list (Fmt.Dump.pair Packet.pp (Fmt.fmt "port %d"))

let forwarding tables pol sw in_port pkt =
  let want = Policy.denotation ~ports pol ~sw ~in_port pkt in
  let got =
    match List.find_opt (fun t -> t.Policy.t_sw = sw) tables with
    | None -> []
    | Some tbl -> Policy.eval_table ~ports tbl ~in_port pkt
  in
  (want, got)

let uncompilable = ref 0
let compiled = ref 0

let differential_prop (pol, located) =
  match Policy.compile ~switches pol with
  | exception Policy.Uncompilable _ ->
      incr uncompilable;
      true
  | tables ->
      incr compiled;
      List.for_all
        (fun (sw, in_port, pkt) ->
          let want, got = forwarding tables pol sw in_port pkt in
          if want = got then true
          else
            QCheck.Test.fail_reportf
              "@[<v>policy: %a@,sw=%d in_port=%d@,pkt: %a@,denotation: %a@,table: %a@]"
              Policy.pp pol sw in_port Packet.pp pkt pp_rel want pp_rel got)
        located

let test_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"compiled table == denotation"
       (QCheck.make ~print:print_case gen_case)
       differential_prop)

(* Runs after the differential: Uncompilable policies must be a small
   minority or the property above would be vacuous. *)
let test_compilable_majority () =
  Alcotest.(check bool)
    (Printf.sprintf "compiled %d, uncompilable %d" !compiled !uncompilable)
    true
    (!compiled > 3 * !uncompilable)

(* ---------------- units ---------------- *)

let probe_agreement pol =
  let tables = Policy.compile ~switches pol in
  let probes = Policy.probes ~ports tables in
  Policy.agrees ~ports ~switches pol tables ~probes

let blocked_pred =
  Policy.(
    conj
      [
        Test (Dl_type Packet.ethertype_ip);
        Test (Nw_proto Packet.proto_tcp);
        disj [ Test (Tp_dst 23); Test (Tp_dst 445) ];
      ])

let firewall_policy = Policy.(ite blocked_pred drop flood)

let telnet =
  Packet.make ~tp_dst:23 ~dl_src:macs.(0) ~dl_dst:macs.(1) ~nw_src:ips.(0)
    ~nw_dst:ips.(1) ()

let test_firewall_shape () =
  let tables = Policy.compile ~switches firewall_policy in
  Alcotest.(check int) "one table per switch" 2 (List.length tables);
  let tbl = List.hd tables in
  Alcotest.(check int)
    "telnet dropped" 0
    (List.length (Policy.eval_table ~ports tbl ~in_port:1 telnet));
  Alcotest.(check int)
    "web flooded to the two other ports" 2
    (List.length
       (Policy.eval_table ~ports tbl ~in_port:1 { telnet with tp_dst = 80 }));
  Alcotest.(check bool) "probe agreement" true (probe_agreement firewall_policy)

let test_priorities_above_default () =
  let tables = Policy.compile ~switches firewall_policy in
  List.iter
    (fun t ->
      List.iter
        (fun r ->
          Alcotest.(check bool)
            "compiled rows outrank default-priority rules" true
            (r.Policy.r_priority > Message.default_priority))
        t.Policy.t_rows)
    tables

let test_seq_modify () =
  (* rewrite then forward: the emitted copy carries the rewritten header *)
  let pol = Policy.(seq (modify (To_nw_tos 46)) (forward 2)) in
  let tables = Policy.compile ~switches pol in
  let tbl = List.find (fun t -> t.Policy.t_sw = 1) tables in
  match Policy.eval_table ~ports tbl ~in_port:1 telnet with
  | [ (pkt, 2) ] -> Alcotest.(check int) "tos rewritten" 46 pkt.Packet.nw_tos
  | other ->
      Alcotest.failf "unexpected relation: %a" pp_rel other

let test_at_scopes_to_switch () =
  let pol = Policy.(at 2 (forward 3)) in
  let tables = Policy.compile ~switches pol in
  Alcotest.(check bool)
    "no table for switch 1" true
    (not (List.exists (fun t -> t.Policy.t_sw = 1) tables));
  let t2 = List.find (fun t -> t.Policy.t_sw = 2) tables in
  Alcotest.(check int)
    "switch 2 forwards" 1
    (List.length (Policy.eval_table ~ports t2 ~in_port:1 telnet))

let test_uncompilable_multicast () =
  (* Two copies that diverge on an unpinned field with no serialization:
     copy A keeps the original dl_src, copy B rewrites it — and vice versa
     for nw_tos — so neither order works without a pinned original. *)
  let pol =
    Policy.(
      union
        (seq (modify (To_nw_tos 46)) (forward 1))
        (seq (modify (To_dl_src macs.(2))) (forward 2)))
  in
  Alcotest.check_raises "no OF 1.0 serialization"
    (Policy.Uncompilable
       "no OF 1.0 serialization: 2 copies need divergent rewrites of \
        unpinned fields")
    (fun () -> ignore (Policy.compile ~switches pol))

let test_pinned_field_restores () =
  (* The same divergent multicast compiles once the pattern pins the
     fields, because the original values can be restored. *)
  let pol =
    Policy.(
      seq
        (filter (conj [ Test (Nw_tos 0); Test (Dl_src macs.(0)) ]))
        (union
           (seq (modify (To_nw_tos 46)) (forward 1))
           (seq (modify (To_dl_src macs.(2))) (forward 2))))
  in
  let tables = Policy.compile ~switches pol in
  Alcotest.(check bool) "compiles" true (tables <> []);
  Alcotest.(check bool) "probe agreement" true (probe_agreement pol)

let test_flow_mods_diff () =
  let prev = Policy.compile ~switches firewall_policy in
  (* same policy: no mods *)
  let next = Policy.compile ~switches firewall_policy in
  Alcotest.(check int)
    "identical tables need no mods" 0
    (List.length (Policy.flow_mods ~prev ~next));
  (* drop the policy entirely: every row is deleted, strictly *)
  let mods = Policy.flow_mods ~prev ~next:Policy.empty_tables in
  Alcotest.(check int)
    "teardown deletes every row" (Policy.table_rows prev) (List.length mods);
  List.iter
    (fun (_, fm) ->
      match fm.Message.command with
      | Message.Delete_strict -> ()
      | _ -> Alcotest.fail "expected strict delete")
    mods;
  (* a changed policy replaces changed rows via Add *)
  let next = Policy.compile ~switches Policy.(ite blocked_pred drop (forward 2)) in
  let mods = Policy.flow_mods ~prev ~next in
  Alcotest.(check bool) "transition emits mods" true (mods <> [])

let test_patterns_interned () =
  let tables = Policy.compile ~switches firewall_policy in
  List.iter
    (fun t ->
      List.iter
        (fun r ->
          Alcotest.(check bool)
            "pattern is the canonical interned block" true
            (Ofp_match.intern r.Policy.r_pattern == r.Policy.r_pattern))
        t.Policy.t_rows)
    tables

let suite =
  [
    test_differential;
    Alcotest.test_case "compilable majority" `Quick test_compilable_majority;
    Alcotest.test_case "firewall shape" `Quick test_firewall_shape;
    Alcotest.test_case "priorities above default" `Quick
      test_priorities_above_default;
    Alcotest.test_case "seq modify rewrites the copy" `Quick test_seq_modify;
    Alcotest.test_case "at scopes to one switch" `Quick test_at_scopes_to_switch;
    Alcotest.test_case "divergent multicast is uncompilable" `Quick
      test_uncompilable_multicast;
    Alcotest.test_case "pinned fields restore" `Quick test_pinned_field_restores;
    Alcotest.test_case "flow-mod diff" `Quick test_flow_mods_diff;
    Alcotest.test_case "patterns interned" `Quick test_patterns_interned;
  ]
