(* Execute one scenario spec under the full LegoSDN runtime and evaluate
   the oracle suite at every quiescent point. The run has two phases: the
   scheduled phase replays the spec's elements on the virtual clock with
   Mid-phase oracles after every action, then the heal phase restores
   every channel, link and switch and lets the recovery machinery settle
   (long enough for the deepest retransmission backoff and the degraded
   probe interval) before the Final-phase oracles demand convergence.

   A spec with [replicas > 1] runs replicated: the controllers live in a
   {!Cluster.t} (perfect controller-to-controller channels — southbound
   faults are the subject under test), the [Kill_leader] element arms the
   mid-transaction leader kill, and a clean kill run ends with a
   differential check against the same spec minus the kill. *)

module Net = Netsim.Net
module Clock = Netsim.Clock
module Channel = Netsim.Channel
module Topology = Netsim.Topology
module Topo_gen = Netsim.Topo_gen
module Sw = Netsim.Sw
module Event_queue = Netsim.Event_queue
module Event = Controller.Event
module Runtime = Legosdn.Runtime
module Crashpad = Legosdn.Crashpad
module Reliable = Legosdn.Reliable
module Recovery_policy = Legosdn.Recovery_policy
module Traffic = Workload.Traffic
module Bug_corpus = Workload.Bug_corpus

type failure = { oracle : string; detail : string; at : float }

(* The equivalence surface of the dispatch-engine differential: everything
   two engines must agree on after running the same spec. Deliberately
   excludes protocol-mechanics counters (barriers, acks, checkpoints,
   replays) that legitimately differ under batching. *)
type final_state = {
  tables : (Openflow.Types.switch_id * Netsim.Flow_entry.t list) list;
      (* actual switch flow tables, sorted by switch id *)
  shadows : (Openflow.Types.switch_id * Netsim.Flow_entry.t list) list;
      (* controller intent (Reliable shadow tables) *)
  journal : Legosdn.Netlog.journal_entry list;
      (* every transaction, its commands and its fate, in order *)
  f_events : int;  (* events dispatched (semantic metric) *)
  f_crashes : int;  (* app crashes observed *)
  f_committed : int;  (* NetLog transactions committed *)
  f_aborted : int;  (* NetLog transactions rolled back *)
  f_policy_compromises : int;
      (* Equivalence compromises satisfied by recompiling declared intent *)
}

type result = {
  spec : Spec.t;
  failure : failure option;
  trace : Event.t list;  (* every event dispatched to the sandboxes *)
  checks : int;  (* individual oracle evaluations performed *)
  events_dispatched : int;
  delivered_to_dst : int;
      (* packets delivered to their destination host — the quantity the
         fail-over differential compares across runs *)
  spans : Obs.Span.t list;
      (* the run's structured trace; empty unless [trace_buffer] was given *)
  final : final_state;
}

let build_topology = function
  | Spec.Linear n -> Topo_gen.linear ~hosts_per_switch:1 (max 1 n)
  | Spec.Star n -> Topo_gen.star ~hosts_per_switch:1 (max 1 n)
  | Spec.Tree { depth; fanout } ->
      Topo_gen.tree ~hosts_per_leaf:1 ~depth:(max 0 depth)
        ~fanout:(max 1 fanout) ()
  | Spec.Ring n -> Topo_gen.ring ~hosts_per_switch:1 (max 3 n)
  | Spec.Fat_tree k ->
      (* Clamp to an even k within Topo_gen's port-range cap so a decoded
         spec can never abort the run. *)
      let k = min 128 (max 2 (k land lnot 1)) in
      Topo_gen.fat_tree k

(* Index resolution: every element reference is taken modulo the size of
   the set it names, so shrinking (or hand-editing) a spec can never
   produce a dangling reference. *)
let resolve idx lst =
  match lst with
  | [] -> None
  | _ -> Some (List.nth lst (idx mod List.length lst))

let executable_bugs = Bug_corpus.executable_bugs Bug_corpus.flowscale_like

let resolve_apps spec =
  let base =
    List.map
      (fun name ->
        match Apps.Suite.find name with
        | Some m -> m
        | None -> invalid_arg (Printf.sprintf "unknown app %S in spec" name))
      spec.Spec.apps
  in
  let n = List.length base in
  if n = 0 then invalid_arg "spec has no apps";
  let wrapped = Array.of_list base in
  List.iter
    (function
      | Spec.Inject_bug { slot; bug } -> (
          match resolve bug executable_bugs with
          | None -> ()
          | Some b ->
              let i = slot mod n in
              wrapped.(i) <- Apps.Faulty.wrap ~bug:b wrapped.(i))
      | _ -> ())
    spec.Spec.elements;
  Array.to_list wrapped

type action = Inject of Traffic.injection | Fault of Net.fault | Do_tick | Arm_kill

let schedule_of spec topo =
  let hosts = Topology.hosts topo in
  let switches = Topology.switches topo in
  let links = Workload.Failure_schedule.inter_switch_links topo in
  let queue = Event_queue.create () in
  let push_fault at f = Event_queue.push queue ~time:at (Fault f) in
  let ends (l : Topology.link) =
    match (l.a.node, l.b.node) with
    | Topology.Switch a, Topology.Switch b -> (Topology.Switch a, Topology.Switch b)
    | _ -> assert false (* inter_switch_links filtered already *)
  in
  List.iter
    (function
      | Spec.Flow { src; dst; start; packets; dport } -> (
          match (resolve src hosts, hosts) with
          | None, _ | _, [] -> ()
          | Some src_host, _ ->
              let n = List.length hosts in
              if n >= 2 then begin
                let dst_host =
                  let d = List.nth hosts (dst mod n) in
                  if d = src_host then List.nth hosts ((dst + 1) mod n) else d
                in
                List.iter
                  (fun (inj : Traffic.injection) ->
                    Event_queue.push queue ~time:inj.at (Inject inj))
                  (Traffic.flow_injections
                     {
                       Traffic.src_host;
                       dst_host;
                       start;
                       packets;
                       interval = 0.05;
                       dport;
                     })
              end)
      | Spec.Link_flap { link; down_at; downtime } -> (
          match resolve link links with
          | None -> ()
          | Some l ->
              let a, b = ends l in
              push_fault down_at (Net.Link_down (a, b));
              push_fault (down_at +. downtime) (Net.Link_up (a, b)))
      | Spec.Switch_reboot { sw; down_at; downtime } -> (
          match resolve sw switches with
          | None -> ()
          | Some sid ->
              push_fault down_at (Net.Switch_down sid);
              push_fault (down_at +. downtime) (Net.Switch_up sid))
      | Spec.Partition { sw; start; duration } -> (
          match resolve sw switches with
          | None -> ()
          | Some sid ->
              push_fault start (Net.Channel_partition sid);
              push_fault (start +. duration) (Net.Channel_heal sid))
      | Spec.Loss_burst { sw; loss; start; duration } -> (
          match resolve sw switches with
          | None -> ()
          | Some sid ->
              push_fault start (Net.Channel_loss (sid, loss));
              (* Restore the scenario's ambient loss, not a perfect
                 channel: the burst is an excursion, not a heal. *)
              push_fault (start +. duration)
                (Net.Channel_loss (sid, spec.Spec.base_loss)))
      | Spec.Kill_leader { at } ->
          (* Arm only: the kill itself fires on the leader's next
             state-altering send, so it always lands mid-transaction. On a
             single-controller spec the element is inert. *)
          Event_queue.push queue ~time:at Arm_kill
      | Spec.Inject_bug _ -> () (* consumed by resolve_apps *)
      | Spec.Byz_variant _ -> () (* consumed at panel-seating time *))
    spec.Spec.elements;
  let rec ticks t =
    if t < spec.Spec.duration then begin
      Event_queue.push queue ~time:t Do_tick;
      ticks (t +. 0.5)
    end
  in
  ticks 0.5;
  queue

(* The settle phase after healing must outlast the worst-case recovery
   lag: the deepest retransmission backoff (base_timeout * 2^max_retries)
   plus one degraded-probe interval. Capped at 30 virtual seconds so a
   pathological timer configuration (e.g. the no-retransmit plant) cannot
   stall the run, and so settling stays well inside the shortest app
   idle-timeout (60s) — rules must not expire under the oracles. *)
let settle_time spec =
  let worst_backoff =
    spec.Spec.base_timeout *. (2. ** float spec.Spec.max_retries)
  in
  Float.min 30.0
    (Float.max 4.0 (worst_backoff +. (spec.Spec.base_timeout *. 16.)))

let config_of ?(dispatch = Runtime.Sequential) spec =
  {
    Runtime.dispatch;
    Runtime.checkpoint_every = max 1 spec.Spec.checkpoint_every;
    (* Delta storage with the spec's fixed cadence: identical event
       scheduling to full blobs, but every fuzz run exercises the
       chunked store/materialize path. *)
    checkpoint_mode = Runtime.Ckpt_delta;
    crashpad =
      {
        Crashpad.default_config with
        Crashpad.policy = Recovery_policy.uniform spec.Spec.policy;
      };
    engine = Runtime.Netlog_engine;
    reliable =
      {
        Reliable.enabled = spec.Spec.reliable;
        base_timeout = spec.Spec.base_timeout;
        max_retries = spec.Spec.max_retries;
      };
    cluster =
      {
        Runtime.replicas = max 1 spec.Spec.replicas;
        election_lo = spec.Spec.election_lo;
        election_hi = spec.Spec.election_hi;
      };
    (* Execution parameters, like [dispatch]: a reproducer's verdict must
       not depend on them. The budget only changes cache residency, and
       generated workloads are expanded into concrete Flow elements before
       a spec is ever serialized. *)
    trace_cache_budget = None;
    workload = None;
    (* Adaptive shedding is pinned off under the fuzzer: a shed panel
       masks nothing, which would make the masking oracle depend on how
       many clean events happened to precede the byzantine one. *)
    nversion =
      (if spec.Spec.nversion > 1 then
         Some
           {
             Legosdn.Voter.nv_replicas = spec.Spec.nversion;
             nv_adaptive = false;
             nv_shed_after = 8;
           }
       else None);
  }

let has_kill spec =
  List.exists
    (function Spec.Kill_leader _ -> true | _ -> false)
    spec.Spec.elements

let without_kill spec =
  {
    spec with
    Spec.elements =
      List.filter
        (function Spec.Kill_leader _ -> false | _ -> true)
        spec.Spec.elements;
  }

(* [trace_buffer]: ring-buffer capacity for span tracing; [None] runs with
   the no-op tracer. The tracer's timebases are the scenario's virtual
   clock plus the deterministic logical tick counter, so traced runs stay
   byte-for-byte replayable. [dispatch] selects the event-dispatch engine
   — an execution parameter, not part of the spec, so one recorded spec
   replays under either engine. *)
let rec run ?(oracles = Oracle.all) ?trace_buffer
    ?(dispatch = Runtime.Sequential) spec =
  let clock = Clock.create () in
  let topo = build_topology spec.Spec.topo in
  let channel_config =
    {
      Channel.loss = spec.Spec.base_loss;
      reply_loss = spec.Spec.base_loss;
      duplicate = spec.Spec.duplicate;
      delay =
        (if spec.Spec.delay > 0. then Channel.Fixed spec.Spec.delay
         else Channel.No_delay);
    }
  in
  let net =
    Net.create ~channel:channel_config
      ~channel_seed:((spec.Spec.seed * 131) + 17)
      clock topo
  in
  let config = config_of ~dispatch spec in
  let tracer =
    match trace_buffer with
    | None -> Obs.Tracer.noop
    | Some capacity ->
        Obs.Tracer.create ~capacity ~now:(fun () -> Clock.now clock) ()
  in
  let trace = ref [] in
  let taps = ref [] in
  (* Runs once for a single controller; once per elected leader in a
     replicated run — each leader builds a fresh runtime, so the tracer
     and the dispatch tap must follow it. *)
  let attach rt =
    Runtime.set_tracer rt tracer;
    let tap =
      Obs.Hub.subscribe (Runtime.hub rt) (function
        | Obs.Hub.Dispatched ev -> trace := ev :: !trace
        | Obs.Hub.Inv_cache _ | Obs.Hub.Delivery _ -> ())
    in
    taps := (Runtime.hub rt, tap) :: !taps
  in
  let apps = resolve_apps spec in
  (* Byz_variant elements seat one fault-injected variant on the named
     slot's voting panel: nversion - 1 copies of the (possibly already
     Inject_bug-wrapped) base app plus one byzantine-blackhole variant,
     seated last. The byzantine copy is marked non-resyncable: its Faulty
     wrapper changes the sandbox state type, so a majority snapshot can
     never be restored into it. Panels exist only on the solo path — the
     byz-variant plant pins [replicas = 1]. *)
  let nv_variants =
    let n_apps = List.length apps in
    let byz_slots =
      List.filter_map
        (function
          | Spec.Byz_variant { slot } -> Some (slot mod n_apps) | _ -> None)
        spec.Spec.elements
      |> List.sort_uniq compare
    in
    if spec.Spec.nversion <= 1 || byz_slots = [] then None
    else begin
      let arr = Array.of_list apps in
      let byz_bug =
        Apps.Bug_model.make
          (Apps.Bug_model.On_kind Event.K_packet_in)
          Apps.Bug_model.Byzantine_blackhole
      in
      let seats =
        List.map
          (fun i ->
            let base = arr.(i) in
            let module M = (val base : Controller.App_sig.INTENT_APP) in
            ( M.name,
              List.init (spec.Spec.nversion - 1) (fun _ -> (base, true))
              @ [ (Apps.Faulty.wrap ~bug:byz_bug base, false) ] ))
          byz_slots
      in
      Some (fun name -> List.assoc_opt name seats)
    end
  in
  let cluster, solo_rt =
    if spec.Spec.replicas > 1 then begin
      let c =
        Cluster.create ~config ~on_runtime:attach ~seed:spec.Spec.seed net
          apps
      in
      Cluster.set_tracer c tracer;
      (Some c, None)
    end
    else begin
      let rt = Runtime.create ~config ?nv_variants net apps in
      attach rt;
      (None, Some rt)
    end
  in
  let current_rt () =
    match cluster with Some c -> Cluster.active_runtime c | None -> solo_rt
  in
  let failure = ref None in
  let checks = ref 0 in
  let fail ~oracle detail =
    if !failure = None then
      failure := Some { oracle; detail; at = Clock.now clock }
  in
  let check_oracles phase =
    (* Until the first election a replicated run has no runtime to judge;
       the cluster is still in its pre-handshake state, so there is
       nothing the oracles could meaningfully check. *)
    match current_rt () with
    | None -> ()
    | Some rt ->
        if !failure = None then
          List.iter
            (fun (o : Oracle.t) ->
              if !failure = None then begin
                incr checks;
                match
                  o.Oracle.check
                    {
                      Oracle.spec;
                      rt;
                      net;
                      cluster;
                      phase;
                      elapsed = Clock.now clock;
                    }
                with
                | Oracle.Pass -> ()
                | Oracle.Fail detail -> fail ~oracle:o.Oracle.name detail
              end)
            oracles
  in
  let guarded_step () =
    try
      match cluster with
      | Some c -> Cluster.step c
      | None -> ( match solo_rt with Some rt -> Runtime.step rt | None -> ())
    with exn ->
      fail ~oracle:"controller-survives"
        (Printf.sprintf "exception escaped step: %s" (Printexc.to_string exn))
  in
  let guarded_tick () =
    try
      match cluster with
      | Some c -> Cluster.tick c
      | None -> ( match solo_rt with Some rt -> Runtime.tick rt | None -> ())
    with exn ->
      fail ~oracle:"controller-survives"
        (Printf.sprintf "exception escaped tick: %s" (Printexc.to_string exn))
  in
  (* Initial handshake: switch features reach the apps before traffic (in
     a replicated run they wait in the network queue for the first
     elected leader to poll them). *)
  guarded_step ();
  let queue = schedule_of spec topo in
  let rec loop () =
    if !failure = None then
      match Event_queue.pop queue with
      | None -> ()
      | Some (time, action) ->
          Clock.advance_to clock (Float.max time (Clock.now clock));
          Net.tick net;
          (match action with
          | Inject inj -> Net.inject net inj.Traffic.src inj.Traffic.packet
          | Fault f -> Net.apply_fault net f
          | Do_tick -> guarded_tick ()
          | Arm_kill -> (
              match cluster with Some c -> Cluster.arm_kill c | None -> ()));
          guarded_step ();
          check_oracles Oracle.Mid;
          loop ()
  in
  loop ();
  (* Heal phase: perfect channels, every switch and link back up. *)
  if !failure = None then begin
    List.iter
      (fun sid ->
        let ch = Net.channel net sid in
        Channel.set_config ch Channel.perfect;
        Channel.set_partitioned ch false)
      (Topology.switches topo);
    List.iter
      (fun sid ->
        if not (Net.switch net sid).Sw.up then
          Net.apply_fault net (Net.Switch_up sid))
      (Topology.switches topo);
    List.iter
      (fun (l : Topology.link) ->
        if not l.Topology.up then
          match (l.a.node, l.b.node) with
          | Topology.Switch a, Topology.Switch b ->
              Net.apply_fault net (Net.Link_up (Topology.Switch a, Topology.Switch b))
          | _ -> ())
      (Workload.Failure_schedule.inter_switch_links topo);
    guarded_step ();
    (* Settle: drive only the clock and the recovery machinery — no new
       app activity — until every retransmission and probe has fired (and,
       replicated, until any pending election and fail-over completes). *)
    let budget = settle_time spec in
    let step_size = 0.25 in
    let steps = int_of_float (Float.ceil (budget /. step_size)) in
    for _ = 1 to steps do
      if !failure = None then begin
        Clock.advance_by clock step_size;
        Net.tick net;
        guarded_step ()
      end
    done;
    check_oracles Oracle.Final
  end;
  (* Differential half of the fail-over oracle: a clean kill run must
     deliver exactly the packets a never-killed run of the same spec
     (same replicas, same seeds) delivers to their destinations. Sound
     because the kill-leader plant pins loss/duplication to zero and uses
     traffic-only elements: every injected packet reaches its destination
     exactly once in both runs, whatever controller-side paths differ. *)
  if
    !failure = None && cluster <> None && has_kill spec
    && spec.Spec.base_loss = 0. && spec.Spec.duplicate = 0.
    && Spec.is_clean (without_kill spec)
  then begin
    let baseline = run ~oracles ~dispatch (without_kill spec) in
    match baseline.failure with
    | Some f ->
        fail ~oracle:"leader-failover"
          (Printf.sprintf "baseline (kill removed) run failed %s: %s" f.oracle
             f.detail)
    | None ->
        let mine = (Net.stats net).Net.delivered_to_dst in
        if mine <> baseline.delivered_to_dst then
          fail ~oracle:"leader-failover"
            (Printf.sprintf
               "kill run delivered %d packet(s) to destinations, baseline %d"
               mine baseline.delivered_to_dst)
  end;
  List.iter (fun (hub, tap) -> Obs.Hub.unsubscribe hub tap) !taps;
  let final =
    let tables =
      Topology.switches topo |> List.sort compare
      |> List.map (fun sid ->
             (sid, Netsim.Flow_table.entries (Net.switch net sid).Sw.table))
    in
    match current_rt () with
    | None ->
        {
          tables;
          shadows = [];
          journal = [];
          f_events = 0;
          f_crashes = 0;
          f_committed = 0;
          f_aborted = 0;
          f_policy_compromises = 0;
        }
    | Some rt ->
        let m = Runtime.metrics rt in
        {
          tables;
          shadows =
            (match Runtime.reliable rt with
            | Some rel -> Reliable.export_shadows rel
            | None -> []);
          journal =
            (match Runtime.netlog rt with
            | Some nl -> Legosdn.Netlog.journal nl
            | None -> []);
          f_events = Legosdn.Metrics.events m;
          f_crashes = Legosdn.Metrics.crashes m;
          f_committed =
            (match Runtime.netlog rt with
            | Some nl -> Legosdn.Netlog.committed nl
            | None -> 0);
          f_aborted =
            (match Runtime.netlog rt with
            | Some nl -> Legosdn.Netlog.aborted nl
            | None -> 0);
          f_policy_compromises = Legosdn.Metrics.policy_compromises m;
        }
  in
  {
    spec;
    failure = !failure;
    trace = List.rev !trace;
    checks = !checks;
    events_dispatched =
      (match (cluster, solo_rt) with
      | Some c, _ -> Cluster.commit_index c
      | None, Some rt -> Runtime.events_processed rt
      | None, None -> 0);
    delivered_to_dst = (Net.stats net).Net.delivered_to_dst;
    spans = Obs.Tracer.spans tracer;
    final;
  }
