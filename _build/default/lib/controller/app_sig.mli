(** The SDN application interface and its runtime instances.

    An application is a module with pure, explicit state: [handle] consumes
    one event and returns the new state plus the commands to issue. Keeping
    state explicit and closure-free is what makes the AppVisor checkpoints
    ({!snapshot}/{!restore}) possible — it is the CRIU-checkpoint analogue
    of this reproduction. *)

open Openflow

(** Read-only controller services available to an application while it
    handles an event (the northbound API the AppVisor stub proxies). *)
type context = {
  now : unit -> float;
  switches : unit -> Types.switch_id list;  (** Connected switches. *)
  switch_ports : Types.switch_id -> Types.port_no list;
  links : unit -> Event.link list;  (** Live inter-switch links, both directions. *)
  host_location : Types.mac -> (Types.switch_id * Types.port_no) option;
      (** Device-manager lookup: last learned attachment of a MAC. *)
}

module type APP = sig
  type state

  val name : string
  val subscriptions : Event.kind list

  val init : unit -> state

  val handle : context -> state -> Event.t -> state * Command.t list
  (** Process one event. May raise — that is a fail-stop application crash,
      and containing it is the whole point of LegoSDN. *)
end

exception Crash_with_partial of Command.t list
(** A fail-stop crash that happened after some commands were already issued
    to the controller: the carried prefix reached the network before the
    crash. This models FloodLight applications that call controller APIs
    mid-handler, the case NetLog's transactions exist for. *)

exception App_hang
(** The handler would never return. Runtimes translate this into heart-beat
    loss (AppVisor) or a wedged controller (monolithic). *)

(** A running application: an APP module paired with its current state. *)
type instance

val instantiate : (module APP) -> instance

val module_of : instance -> (module APP)
(** The application module behind an instance (for re-instantiation —
    e.g. replaying a trace against a fresh copy during STS analysis). *)

val name : instance -> string
val subscriptions : instance -> Event.kind list
val subscribes_to : instance -> Event.kind -> bool

val handle : instance -> context -> Event.t -> instance * Command.t list
(** Functional step: the returned instance carries the new state; the input
    instance is unchanged (so a runtime can keep the old one as a
    snapshot). Exceptions from the app propagate. *)

val reboot : instance -> instance
(** A fresh instance of the same module with [init] state — what a
    monolithic controller restart does to an app (all state lost). *)

val snapshot : instance -> bytes
(** Serialize the current state ([Marshal]; state must be closure-free). *)

val restore : instance -> bytes -> instance
(** The instance with state replaced by a previously taken snapshot. The
    snapshot must come from the same application module. *)

val state_size : instance -> int
(** Byte size of a snapshot, the checkpoint-cost metric. *)
