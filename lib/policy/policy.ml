(* NetKAT-style network policies: syntax, reference denotation, and a
   classifier-based compiler to prioritized OpenFlow 1.0 flow tables.

   The compiler works per switch. Every policy constructor maps to a
   *classifier*: an ordered, complete (first-match, catch-all-terminated)
   list of (pattern, action-set) rows. Composition is classifier algebra:

   - [And]/[Or]/[Union] take the pairwise pattern intersection of two
     classifiers in lexicographic order (the first matching product row is
     the product of each operand's first matching row);
   - [Seq] pulls the second classifier's patterns back through the header
     rewrites of the first (a test on a field set to a constant either
     becomes vacuous or kills the row);
   - [Neg] flips the booleans of a predicate classifier.

   A row's action set is realized as an OF 1.0 action list by ordering its
   emissions so each copy's header state is reachable by sequential
   rewrites; a field can be restored to its original value only when the
   row's pattern pins it, which is exactly the OF 1.0 expressiveness limit
   surfaced as [Uncompilable]. *)

open Openflow

type hv =
  | In_port of Types.port_no
  | Dl_src of Types.mac
  | Dl_dst of Types.mac
  | Dl_vlan of int option
  | Dl_type of int
  | Nw_src of Types.ip
  | Nw_dst of Types.ip
  | Nw_proto of int
  | Nw_tos of int
  | Tp_src of int
  | Tp_dst of int

type pred =
  | True
  | False
  | Test of hv
  | And of pred * pred
  | Or of pred * pred
  | Neg of pred

type update =
  | To_dl_src of Types.mac
  | To_dl_dst of Types.mac
  | To_vlan of int
  | To_no_vlan
  | To_nw_src of Types.ip
  | To_nw_dst of Types.ip
  | To_nw_tos of int
  | To_tp_src of int
  | To_tp_dst of int

type t =
  | Filter of pred
  | Forward of Types.port_no
  | Flood
  | Drop
  | Modify of update
  | Union of t * t
  | Seq of t * t
  | At of Types.switch_id * t

let filter p = Filter p
let forward p = Forward p
let flood = Flood
let drop = Drop
let modify u = Modify u
let union a b = Union (a, b)
let seq a b = Seq (a, b)
let at sw p = At (sw, p)

let union_all = function
  | [] -> Drop
  | p :: ps -> List.fold_left union p ps

let seq_all = function
  | [] -> Filter True
  | p :: ps -> List.fold_left seq p ps

let ite b p q = Union (Seq (Filter b, p), Seq (Filter (Neg b), q))

let conj = function [] -> True | p :: ps -> List.fold_left (fun a b -> And (a, b)) p ps
let disj = function [] -> False | p :: ps -> List.fold_left (fun a b -> Or (a, b)) p ps

(* ---------------- pretty printing ---------------- *)

let pp_hv fmt = function
  | In_port p -> Format.fprintf fmt "in_port=%a" Types.pp_port p
  | Dl_src m -> Format.fprintf fmt "dl_src=%a" Types.pp_mac m
  | Dl_dst m -> Format.fprintf fmt "dl_dst=%a" Types.pp_mac m
  | Dl_vlan None -> Format.fprintf fmt "dl_vlan=none"
  | Dl_vlan (Some v) -> Format.fprintf fmt "dl_vlan=%d" v
  | Dl_type t -> Format.fprintf fmt "dl_type=0x%04x" t
  | Nw_src ip -> Format.fprintf fmt "nw_src=%a" Types.pp_ip ip
  | Nw_dst ip -> Format.fprintf fmt "nw_dst=%a" Types.pp_ip ip
  | Nw_proto p -> Format.fprintf fmt "nw_proto=%d" p
  | Nw_tos t -> Format.fprintf fmt "nw_tos=%d" t
  | Tp_src p -> Format.fprintf fmt "tp_src=%d" p
  | Tp_dst p -> Format.fprintf fmt "tp_dst=%d" p

let rec pp_pred fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Test hv -> pp_hv fmt hv
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp_pred a pp_pred b
  | Neg a -> Format.fprintf fmt "not %a" pp_pred a

let pp_update fmt = function
  | To_dl_src m -> Format.fprintf fmt "dl_src:=%a" Types.pp_mac m
  | To_dl_dst m -> Format.fprintf fmt "dl_dst:=%a" Types.pp_mac m
  | To_vlan v -> Format.fprintf fmt "vlan:=%d" v
  | To_no_vlan -> Format.fprintf fmt "strip-vlan"
  | To_nw_src ip -> Format.fprintf fmt "nw_src:=%a" Types.pp_ip ip
  | To_nw_dst ip -> Format.fprintf fmt "nw_dst:=%a" Types.pp_ip ip
  | To_nw_tos t -> Format.fprintf fmt "nw_tos:=%d" t
  | To_tp_src p -> Format.fprintf fmt "tp_src:=%d" p
  | To_tp_dst p -> Format.fprintf fmt "tp_dst:=%d" p

let rec pp fmt = function
  | Filter p -> Format.fprintf fmt "filter %a" pp_pred p
  | Forward p -> Format.fprintf fmt "fwd %a" Types.pp_port p
  | Flood -> Format.pp_print_string fmt "flood"
  | Drop -> Format.pp_print_string fmt "drop"
  | Modify u -> pp_update fmt u
  | Union (a, b) -> Format.fprintf fmt "(%a | %a)" pp a pp b
  | Seq (a, b) -> Format.fprintf fmt "(%a ; %a)" pp a pp b
  | At (sw, p) -> Format.fprintf fmt "at %a (%a)" Types.pp_switch sw pp p

(* ---------------- reference semantics ---------------- *)

let eval_hv hv ~in_port (p : Packet.t) =
  match hv with
  | In_port q -> q = in_port
  | Dl_src m -> p.dl_src = m
  | Dl_dst m -> p.dl_dst = m
  | Dl_vlan v -> p.dl_vlan = v
  | Dl_type t -> p.dl_type = t
  | Nw_src ip -> p.nw_src = ip
  | Nw_dst ip -> p.nw_dst = ip
  | Nw_proto pr -> p.nw_proto = pr
  | Nw_tos t -> p.nw_tos = t
  | Tp_src q -> p.tp_src = q
  | Tp_dst q -> p.tp_dst = q

let rec eval_pred pr ~in_port pkt =
  match pr with
  | True -> true
  | False -> false
  | Test hv -> eval_hv hv ~in_port pkt
  | And (a, b) -> eval_pred a ~in_port pkt && eval_pred b ~in_port pkt
  | Or (a, b) -> eval_pred a ~in_port pkt || eval_pred b ~in_port pkt
  | Neg a -> not (eval_pred a ~in_port pkt)

let apply_update u (p : Packet.t) : Packet.t =
  match u with
  | To_dl_src m -> { p with dl_src = m }
  | To_dl_dst m -> { p with dl_dst = m }
  | To_vlan v -> { p with dl_vlan = Some v }
  | To_no_vlan -> { p with dl_vlan = None }
  | To_nw_src ip -> { p with nw_src = ip }
  | To_nw_dst ip -> { p with nw_dst = ip }
  | To_nw_tos t -> { p with nw_tos = t }
  | To_tp_src q -> { p with tp_src = q }
  | To_tp_dst q -> { p with tp_dst = q }

(* Expansion of one staged (packet, out-port) pair into concrete
   transmissions — shared by [denotation] and [eval_table] so the two
   semantics cannot disagree about reserved ports. Mirrors
   [Netsim.Sw.resolve_output]: FLOOD/ALL fan out over the flood-eligible
   ports minus the ingress, IN_PORT hairpins, CONTROLLER/LOCAL/NONE
   transmit nothing. *)
let expand_out ~ports ~sw ~in_port (pkt, out) =
  if out = Types.port_flood || out = Types.port_all then
    ports sw
    |> List.filter (fun q -> q <> in_port)
    |> List.map (fun q -> (pkt, q))
  else if out = Types.port_in_port then [ (pkt, in_port) ]
  else if
    out = Types.port_controller || out = Types.port_local
    || out = Types.port_none
  then []
  else [ (pkt, out) ]

let denotation ~ports pol ~sw ~in_port pkt =
  (* A policy maps one packet to (transmissions, continuations): forward and
     flood tee copies out and pass the packet on; drop and a failed filter
     end processing; modify rewrites the continuation. *)
  let rec eval pol pkt =
    match pol with
    | Filter pr -> ([], if eval_pred pr ~in_port pkt then [ pkt ] else [])
    | Forward q -> (expand_out ~ports ~sw ~in_port (pkt, q), [ pkt ])
    | Flood ->
        (expand_out ~ports ~sw ~in_port (pkt, Types.port_flood), [ pkt ])
    | Drop -> ([], [])
    | Modify u -> ([], [ apply_update u pkt ])
    | At (s, p) -> if s = sw then eval p pkt else ([], [])
    | Union (a, b) ->
        let ea, ca = eval a pkt in
        let eb, cb = eval b pkt in
        (ea @ eb, ca @ cb)
    | Seq (a, b) ->
        let ea, ca = eval a pkt in
        List.fold_left
          (fun (es, cs) pk ->
            let eb, cb = eval b pk in
            (es @ eb, cs @ cb))
          (ea, []) ca
  in
  let es, _ = eval pol pkt in
  List.sort_uniq compare es

(* ---------------- compilation ---------------- *)

exception Uncompilable of string

let uncompilable fmt = Format.ksprintf (fun s -> raise (Uncompilable s)) fmt

type row = {
  r_priority : int;
  r_pattern : Ofp_match.t;
  r_actions : Action.t list;
}

type table = { t_sw : Types.switch_id; t_rows : row list }

let empty_tables = []
let table_rows ts = List.fold_left (fun n t -> n + List.length t.t_rows) 0 ts

let pp_table fmt t =
  Format.fprintf fmt "@[<v>table %a" Types.pp_switch t.t_sw;
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  %5d %a -> %a" r.r_priority Ofp_match.pp
        r.r_pattern Action.pp_list r.r_actions)
    t.t_rows;
  Format.fprintf fmt "@]"

(* -- pattern algebra -- *)

let pat_of_hv = function
  | In_port p -> Ofp_match.make ~in_port:p ()
  | Dl_src m -> Ofp_match.make ~dl_src:m ()
  | Dl_dst m -> Ofp_match.make ~dl_dst:m ()
  | Dl_vlan v -> Ofp_match.make ~dl_vlan:v ()
  | Dl_type t -> Ofp_match.make ~dl_type:t ()
  | Nw_src ip -> Ofp_match.make ~nw_src:ip ()
  | Nw_dst ip -> Ofp_match.make ~nw_dst:ip ()
  | Nw_proto p -> Ofp_match.make ~nw_proto:p ()
  | Nw_tos t -> Ofp_match.make ~nw_tos:t ()
  | Tp_src p -> Ofp_match.make ~tp_src:p ()
  | Tp_dst p -> Ofp_match.make ~tp_dst:p ()

(* Conjunction of two exact-or-wild patterns; [None] when they conflict on
   some field (no packet can match both). *)
let inter (a : Ofp_match.t) (b : Ofp_match.t) : Ofp_match.t option =
  let exception Conflict in
  let f x y =
    match (x, y) with
    | None, z | z, None -> z
    | Some u, Some v -> if u = v then Some u else raise Conflict
  in
  try
    Some
      {
        Ofp_match.in_port = f a.Ofp_match.in_port b.Ofp_match.in_port;
        dl_src = f a.dl_src b.dl_src;
        dl_dst = f a.dl_dst b.dl_dst;
        dl_vlan =
          (match (a.dl_vlan, b.dl_vlan) with
          | None, z | z, None -> z
          | Some u, Some v -> if u = v then Some u else raise Conflict);
        dl_type = f a.dl_type b.dl_type;
        nw_src = f a.nw_src b.nw_src;
        nw_dst = f a.nw_dst b.nw_dst;
        nw_proto = f a.nw_proto b.nw_proto;
        nw_tos = f a.nw_tos b.nw_tos;
        tp_src = f a.tp_src b.tp_src;
        tp_dst = f a.tp_dst b.tp_dst;
      }
  with Conflict -> None

(* -- action sets -- *)

(* Pending header rewrites relative to the original packet: [None] means
   "still the original value". [m_dl_vlan = Some None] is a strip. *)
type mods = {
  m_dl_src : Types.mac option;
  m_dl_dst : Types.mac option;
  m_dl_vlan : int option option;
  m_nw_src : Types.ip option;
  m_nw_dst : Types.ip option;
  m_nw_tos : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

let id_mods =
  {
    m_dl_src = None;
    m_dl_dst = None;
    m_dl_vlan = None;
    m_nw_src = None;
    m_nw_dst = None;
    m_nw_tos = None;
    m_tp_src = None;
    m_tp_dst = None;
  }

let mods_of_update = function
  | To_dl_src m -> { id_mods with m_dl_src = Some m }
  | To_dl_dst m -> { id_mods with m_dl_dst = Some m }
  | To_vlan v -> { id_mods with m_dl_vlan = Some (Some v) }
  | To_no_vlan -> { id_mods with m_dl_vlan = Some None }
  | To_nw_src ip -> { id_mods with m_nw_src = Some ip }
  | To_nw_dst ip -> { id_mods with m_nw_dst = Some ip }
  | To_nw_tos t -> { id_mods with m_nw_tos = Some t }
  | To_tp_src p -> { id_mods with m_tp_src = Some p }
  | To_tp_dst p -> { id_mods with m_tp_dst = Some p }

(* [compose m1 m2]: apply [m1] first, then [m2]. *)
let compose m1 m2 =
  let f a b = match b with Some _ -> b | None -> a in
  {
    m_dl_src = f m1.m_dl_src m2.m_dl_src;
    m_dl_dst = f m1.m_dl_dst m2.m_dl_dst;
    m_dl_vlan = f m1.m_dl_vlan m2.m_dl_vlan;
    m_nw_src = f m1.m_nw_src m2.m_nw_src;
    m_nw_dst = f m1.m_nw_dst m2.m_nw_dst;
    m_nw_tos = f m1.m_nw_tos m2.m_nw_tos;
    m_tp_src = f m1.m_tp_src m2.m_tp_src;
    m_tp_dst = f m1.m_tp_dst m2.m_tp_dst;
  }

(* Pull a pattern back through pending rewrites: [pb'] matches the original
   packet iff [pb] matches the rewritten one. A test on a field set to the
   same constant becomes vacuous; on a different constant, the row is
   unreachable ([None]). Fields no rewrite can touch pass through. *)
let pullback (pb : Ofp_match.t) (m : mods) : Ofp_match.t option =
  let exception Dead in
  let f test written =
    match (test, written) with
    | t, None -> Ok t
    | None, Some _ -> Ok None
    | Some t, Some w -> if t = w then Ok None else raise Dead
  in
  let ok = function Ok x -> x | Error _ -> assert false in
  try
    Some
      {
        pb with
        Ofp_match.dl_src = ok (f pb.Ofp_match.dl_src m.m_dl_src);
        dl_dst = ok (f pb.dl_dst m.m_dl_dst);
        dl_vlan =
          (match (pb.dl_vlan, m.m_dl_vlan) with
          | t, None -> t
          | None, Some _ -> None
          | Some t, Some w -> if t = w then None else raise Dead);
        nw_src = ok (f pb.nw_src m.m_nw_src);
        nw_dst = ok (f pb.nw_dst m.m_nw_dst);
        nw_tos = ok (f pb.nw_tos m.m_nw_tos);
        tp_src = ok (f pb.tp_src m.m_tp_src);
        tp_dst = ok (f pb.tp_dst m.m_tp_dst);
      }
  with Dead -> None

type out = Phys of Types.port_no | Flood_out

type emit = { e_mods : mods; e_out : out }

type acts = { emits : emit list; conts : mods list }

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let pass = { emits = []; conts = [ id_mods ] }
let dead = { emits = []; conts = [] }

let union_acts a b =
  { emits = dedup (a.emits @ b.emits); conts = dedup (a.conts @ b.conts) }

(* -- classifiers -- *)

(* A classifier is an ordered, complete list of (pattern, payload) rows:
   every packet matches some row (the constructions below always keep a
   catch-all), and the payload of the *first* matching row applies. *)

let product xs ys f =
  List.concat_map
    (fun (px, ax) ->
      List.filter_map
        (fun (py, ay) ->
          match inter px py with Some p -> Some (p, f ax ay) | None -> None)
        ys)
    xs

let rec pred_classifier (pr : pred) : (Ofp_match.t * bool) list =
  match pr with
  | True -> [ (Ofp_match.any, true) ]
  | False -> [ (Ofp_match.any, false) ]
  | Test hv -> [ (pat_of_hv hv, true); (Ofp_match.any, false) ]
  | And (a, b) ->
      product (pred_classifier a) (pred_classifier b) (fun x y -> x && y)
  | Or (a, b) ->
      product (pred_classifier a) (pred_classifier b) (fun x y -> x || y)
  | Neg a -> List.map (fun (p, b) -> (p, not b)) (pred_classifier a)

(* Remove rows shadowed by an earlier (thus higher-priority) row whose
   pattern subsumes them — they can never be the first match. *)
let prune rows =
  let rec go kept = function
    | [] -> List.rev kept
    | (p, a) :: rest ->
        if List.exists (fun (q, _) -> Ofp_match.subsumes q p) kept then
          go kept rest
        else go ((p, a) :: kept) rest
  in
  go [] rows

let shift_acts m a =
  {
    emits =
      List.map (fun e -> { e with e_mods = compose m e.e_mods }) a.emits;
    conts = List.map (fun c -> compose m c) a.conts;
  }

let rec classifier sw (pol : t) : (Ofp_match.t * acts) list =
  let rows =
    match pol with
    | Filter pr ->
        List.map
          (fun (p, b) -> (p, if b then pass else dead))
          (pred_classifier pr)
    | Forward q ->
        [
          ( Ofp_match.any,
            { emits = [ { e_mods = id_mods; e_out = Phys q } ]; conts = [ id_mods ] }
          );
        ]
    | Flood ->
        [
          ( Ofp_match.any,
            { emits = [ { e_mods = id_mods; e_out = Flood_out } ]; conts = [ id_mods ] }
          );
        ]
    | Drop -> [ (Ofp_match.any, dead) ]
    | Modify u ->
        [ (Ofp_match.any, { emits = []; conts = [ mods_of_update u ] }) ]
    | At (s, p) ->
        if s = sw then classifier sw p else [ (Ofp_match.any, dead) ]
    | Union (a, b) -> product (classifier sw a) (classifier sw b) union_acts
    | Seq (a, b) ->
        let rb = classifier sw b in
        List.concat_map (fun (pa, aa) -> seq_row rb pa aa) (classifier sw a)
  in
  prune rows

(* One [Seq] row: within the region of [pa], every continuation of [aa]
   independently flows through [rb]'s rows pulled back through that
   continuation's rewrites; the results for all continuations are crossed
   (a packet takes every continuation at once) and their action sets
   unioned with [aa]'s own emissions. *)
and seq_row rb pa aa =
  if aa.conts = [] then [ (pa, aa) ]
  else
    let through m =
      List.filter_map
        (fun (pb, ab) ->
          match pullback pb m with
          | Some pb' -> Some (pb', shift_acts m ab)
          | None -> None)
        rb
    in
    let crossed =
      List.fold_left
        (fun rows m -> product rows (through m) union_acts)
        [ (Ofp_match.any, { emits = aa.emits; conts = [] }) ]
        aa.conts
    in
    List.filter_map
      (fun (p, a) ->
        match inter pa p with Some p' -> Some (p', a) | None -> None)
      crossed

(* -- realizing a row's action set as an OF 1.0 action list -- *)

(* Actions taking header state [cur] (pending rewrites relative to the
   original packet) to [target], restoring original values from the row's
   pattern where possible. [None] when a field would need an original value
   the pattern does not pin. *)
let transition (pat : Ofp_match.t) cur target : Action.t list option =
  let acc = ref [] in
  let exception Stuck in
  let field cur_v target_v pinned (set : 'a -> Action.t) =
    match (cur_v, target_v) with
    | a, b when a = b -> ()
    | _, Some v -> acc := set v :: !acc
    | Some _, None -> (
        (* restore the original value *)
        match pinned with Some v -> acc := set v :: !acc | None -> raise Stuck)
    | None, None -> ()
  in
  try
    field cur.m_dl_src target.m_dl_src pat.Ofp_match.dl_src (fun v ->
        Action.Set_dl_src v);
    field cur.m_dl_dst target.m_dl_dst pat.dl_dst (fun v -> Action.Set_dl_dst v);
    (match (cur.m_dl_vlan, target.m_dl_vlan) with
    | a, b when a = b -> ()
    | _, Some (Some v) -> acc := Action.Set_vlan v :: !acc
    | _, Some None -> acc := Action.Strip_vlan :: !acc
    | Some _, None -> (
        match pat.dl_vlan with
        | Some (Some v) -> acc := Action.Set_vlan v :: !acc
        | Some None -> acc := Action.Strip_vlan :: !acc
        | None -> raise Stuck)
    | None, None -> ());
    field cur.m_nw_src target.m_nw_src pat.nw_src (fun v -> Action.Set_nw_src v);
    field cur.m_nw_dst target.m_nw_dst pat.nw_dst (fun v -> Action.Set_nw_dst v);
    field cur.m_nw_tos target.m_nw_tos pat.nw_tos (fun v -> Action.Set_nw_tos v);
    field cur.m_tp_src target.m_tp_src pat.tp_src (fun v -> Action.Set_tp_src v);
    field cur.m_tp_dst target.m_tp_dst pat.tp_dst (fun v -> Action.Set_tp_dst v);
    Some (List.rev !acc)
  with Stuck -> None

let out_action = function
  | Phys p -> Action.Output p
  | Flood_out -> Action.Output Types.port_flood

let max_emits = 8

(* Order the emissions so every copy's headers are reachable by sequential
   rewrites (backtracking over orderings; emission counts are tiny). *)
let realize (pat : Ofp_match.t) (a : acts) : Action.t list =
  let emits = dedup a.emits in
  if emits = [] then []
  else if List.length emits > max_emits then
    uncompilable "row multicasts %d copies (max %d)" (List.length emits)
      max_emits
  else
    let rec remove x = function
      | [] -> []
      | y :: ys -> if x = y then ys else y :: remove x ys
    in
    let rec search cur remaining rev_acts =
      match remaining with
      | [] -> Some (List.rev rev_acts)
      | _ ->
          List.find_map
            (fun e ->
              match transition pat cur e.e_mods with
              | None -> None
              | Some acts ->
                  search e.e_mods (remove e remaining)
                    (out_action e.e_out :: List.rev_append acts rev_acts))
            remaining
    in
    match search id_mods emits [] with
    | Some acts -> acts
    | None ->
        uncompilable
          "no OF 1.0 serialization: %d copies need divergent rewrites of \
           unpinned fields"
          (List.length emits)

(* -- tables -- *)

let compile ?(priority_base = Message.default_priority) ~switches pol =
  List.filter_map
    (fun sw ->
      let rows = classifier sw pol in
      let realized = List.map (fun (p, a) -> (p, realize p a)) rows in
      (* Trailing all-drop rows transmit nothing and shadow nothing below
         them: omit them so a pure-drop region punts instead of installing
         a drop-everything rule. *)
      let realized =
        List.rev
          (let rec strip = function
             | (_, []) :: rest -> strip rest
             | rows -> rows
           in
           strip (List.rev realized))
      in
      match realized with
      | [] -> None
      | rows ->
          let n = List.length rows in
          if n > 30000 then
            uncompilable "policy compiles to %d rows on switch %d" n sw;
          let rows =
            List.mapi
              (fun i (p, acts) ->
                {
                  r_priority = priority_base + n - i;
                  r_pattern = Ofp_match.intern p;
                  r_actions = acts;
                })
              rows
          in
          Some { t_sw = sw; t_rows = rows })
    switches

let eval_table ~ports tbl ~in_port pkt =
  match
    List.find_opt
      (fun r -> Ofp_match.matches r.r_pattern ~in_port pkt)
      tbl.t_rows
  with
  | None -> []
  | Some r ->
      Action.apply_staged r.r_actions pkt
      |> List.concat_map (expand_out ~ports ~sw:tbl.t_sw ~in_port)
      |> List.sort_uniq compare

let agrees ~ports ~switches:_ pol tables ~probes =
  List.for_all
    (fun (sw, in_port, pkt) ->
      let want = denotation ~ports pol ~sw ~in_port pkt in
      let got =
        match List.find_opt (fun t -> t.t_sw = sw) tables with
        | None -> []
        | Some tbl -> eval_table ~ports tbl ~in_port pkt
      in
      want = got)
    probes

(* A canonical packet matching [pat], wildcards filled with defaults. *)
let witness (pat : Ofp_match.t) : Packet.t =
  let dfl d = function Some v -> v | None -> d in
  Packet.make
    ~dl_vlan:(dfl None pat.Ofp_match.dl_vlan)
    ~dl_type:(dfl Packet.ethertype_ip pat.dl_type)
    ~nw_proto:(dfl Packet.proto_tcp pat.nw_proto)
    ~nw_tos:(dfl 0 pat.nw_tos) ~tp_src:(dfl 1024 pat.tp_src)
    ~tp_dst:(dfl 80 pat.tp_dst)
    ~dl_src:(dfl (Types.mac_of_host 0) pat.dl_src)
    ~dl_dst:(dfl (Types.mac_of_host 1) pat.dl_dst)
    ~nw_src:(dfl (Types.ip_of_host 0) pat.nw_src)
    ~nw_dst:(dfl (Types.ip_of_host 1) pat.nw_dst)
    ()

let probes ~ports tables =
  let background = witness Ofp_match.any in
  List.concat_map
    (fun tbl ->
      let inject pat =
        match pat.Ofp_match.in_port with
        | Some p -> [ p ]
        | None -> (
            match ports tbl.t_sw with [] -> [ 1 ] | ps -> ps)
      in
      let row_probes =
        List.concat_map
          (fun r ->
            List.map
              (fun p -> (tbl.t_sw, p, witness r.r_pattern))
              (inject r.r_pattern))
          tbl.t_rows
      in
      let bg =
        match ports tbl.t_sw with
        | [] -> [ (tbl.t_sw, 1, background) ]
        | p :: _ -> [ (tbl.t_sw, p, background) ]
      in
      row_probes @ bg)
    tables
  |> List.sort_uniq compare

(* -- reconciliation -- *)

let flow_mods ~prev ~next =
  let rows_of sw tables =
    match List.find_opt (fun t -> t.t_sw = sw) tables with
    | None -> []
    | Some t -> t.t_rows
  in
  let switches =
    List.sort_uniq compare
      (List.map (fun t -> t.t_sw) prev @ List.map (fun t -> t.t_sw) next)
  in
  List.concat_map
    (fun sw ->
      let old_rows = rows_of sw prev in
      let new_rows = rows_of sw next in
      let key r = (r.r_priority, r.r_pattern) in
      let adds =
        List.filter_map
          (fun r ->
            match List.find_opt (fun o -> key o = key r) old_rows with
            | Some o when o.r_actions = r.r_actions -> None
            | _ ->
                Some
                  ( sw,
                    Message.flow_add ~priority:r.r_priority r.r_pattern
                      r.r_actions ))
          new_rows
      in
      let dels =
        List.filter_map
          (fun o ->
            if List.exists (fun r -> key r = key o) new_rows then None
            else
              Some
                ( sw,
                  Message.flow_delete ~strict:true ~priority:o.r_priority
                    o.r_pattern ))
          old_rows
      in
      adds @ dels)
    switches
