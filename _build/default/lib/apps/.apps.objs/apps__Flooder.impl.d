lib/apps/flooder.ml: Action Command Controller Event Message Ofp_match Openflow Packet Types
