lib/apps/spanning_tree.mli: Controller Openflow
