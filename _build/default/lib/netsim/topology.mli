(** Network topology: switches, hosts and the links wiring them together.

    Nodes are identified by {!node}; every link joins two (node, port)
    endpoints and carries an up/down state. Hosts attach to switches through
    ordinary links (host side always port 1). All accessors iterate in
    deterministic (sorted) order. *)

open Openflow

type host = int

type node = Switch of Types.switch_id | Host of host

type endpoint = { node : node; port : Types.port_no }

type link = {
  link_id : int;
  a : endpoint;
  b : endpoint;
  mutable up : bool;
}

type t

val create : unit -> t

val add_switch : t -> Types.switch_id -> unit
(** Declare a switch. Raises [Invalid_argument] on duplicates. *)

val add_host : t -> host -> unit

val connect : t -> endpoint -> endpoint -> link
(** Wire two endpoints together. Raises [Invalid_argument] if either
    (node, port) is already wired or a node is undeclared. *)

val attach_host : t -> host -> Types.switch_id -> Types.port_no -> link
(** Convenience: declare nothing, just [connect] host port 1 to the switch
    port. *)

val switches : t -> Types.switch_id list
(** All switch ids, ascending. *)

val hosts : t -> host list

val links : t -> link list
(** All links, in creation order. *)

val peer : t -> node -> Types.port_no -> endpoint option
(** The far end of the live link at (node, port); [None] if unwired or the
    link is down. *)

val peer_even_if_down : t -> node -> Types.port_no -> endpoint option

val link_at : t -> node -> Types.port_no -> link option

val link_between : t -> node -> node -> link option
(** The first link joining the two nodes, regardless of state. *)

val switch_ports : t -> Types.switch_id -> (Types.port_no * link) list
(** Wired ports of a switch, ascending by port number. *)

val host_attachment : t -> host -> (Types.switch_id * Types.port_no) option
(** Where a host plugs into the fabric (via a live or dead link). *)

val hosts_on : t -> Types.switch_id -> (host * Types.port_no) list
(** Hosts attached to the switch, with the switch-side port. *)

val neighbor_switches :
  t -> Types.switch_id
  -> (Types.switch_id * Types.port_no * Types.port_no) list
(** Adjacent switches over live links as
    (neighbor, local port, remote port), ascending by neighbor id. *)

val set_link : link -> up:bool -> unit

val pp : Format.formatter -> t -> unit
val pp_node : Format.formatter -> node -> unit
