(** The span recorder: a fixed-size ring buffer of completed spans plus a
    stack of open ones.

    A tracer is either {!noop} — every operation is a single branch, so an
    uninstrumented run pays (almost) nothing — or a live recorder created
    with {!create}. Completed spans go into a ring buffer (the oldest are
    dropped once it is full, counted in {!dropped}) and their wall/logical
    durations feed one {!Histogram} per {!Span.kind}.

    Timebases: [now] is the virtual simulation clock ({!Netsim.Clock} in
    the runtime). [wall] orders and times spans within one virtual
    instant; when the host does not supply one, a deterministic logical
    clock is used that advances one microsecond per tracer operation —
    strictly monotonic, so nesting is always well-defined and fuzzer
    reproducers stay byte-for-byte replayable. *)

type t

val noop : t
(** The disabled tracer: records nothing, allocates nothing. *)

val create :
  ?capacity:int -> ?wall:(unit -> float) -> now:(unit -> float) -> unit -> t
(** [capacity] (default 65536) bounds the completed-span ring. [now] is
    the virtual clock. [wall], if given, must be monotone non-decreasing
    (e.g. [Unix.gettimeofday]); omitted, the logical tick clock is used. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. *)

val start : t -> ?attrs:(string * string) list -> Span.kind -> int
(** Open a span nested under the currently-open one (if any) and return
    its id. On {!noop}: returns [-1], does nothing. *)

val finish : t -> ?attrs:(string * string) list -> int -> unit
(** Close the span with this id, appending [attrs]. Any spans opened under
    it and not yet finished are closed with it — so an abandoned child
    (e.g. a rolled-back transaction unwound past its span) can never leak
    an open span. Unknown or already-closed ids are ignored. *)

val with_span :
  t -> ?attrs:(string * string) list -> Span.kind -> (unit -> 'a) -> 'a
(** [start]/[finish] around a thunk, exception-safe. *)

val instant : t -> ?attrs:(string * string) list -> Span.kind -> unit
(** Record a zero-duration span (cache hit, retransmission, ...). *)

val spans : t -> Span.t list
(** Completed spans, oldest first. [[]] on {!noop}. *)

val open_count : t -> int
(** Currently-open spans — 0 at any quiescent point. *)

val recorded : t -> int
(** Spans completed since creation (dropped ones included). *)

val dropped : t -> int
(** Completed spans evicted by ring wraparound. *)

val histogram : t -> Span.kind -> Histogram.t option
(** Wall/logical duration histogram for one kind; [None] on {!noop}. *)

val histograms : t -> (Span.kind * Histogram.t) list
(** All kinds, in {!Span.all_kinds} order. [[]] on {!noop}. *)

val clear : t -> unit
(** Drop completed and open spans and histogram contents; ids keep
    counting from where they were. *)

val pp_summary : Format.formatter -> t -> unit
(** Per-kind table: spans recorded, p50/p95/p99 wall duration. *)
