lib/openflow/buf.ml: Bytes Char Int64
