lib/core/wire.mli: Controller
