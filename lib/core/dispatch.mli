(** Sharded event queues for the batched dispatch engine.

    Events are partitioned across [shards] FIFO queues by a (switch,
    flow-key) hash — [Packet_in] additionally keys on the packet's
    (dl_src, dl_dst) so one flow's packets always share a shard; link
    events key on their endpoints; [Tick] (and other switch-less events)
    pin to shard 0.

    Sharding changes {e grouping}, never {e order}: each event carries a
    global arrival sequence number and {!next_batch} drains the queues by
    a k-way minimum-sequence merge across the shard heads, which
    reconstructs exact arrival order for any shard count. The shard
    assignment is surfaced purely as batching/observability structure
    (per-shard spans, per-shard runs). A [Tick] acts as a batch barrier:
    it never shares a batch with earlier events and is returned as a
    singleton batch. *)

type t

val create : shards:int -> t
(** Raises [Invalid_argument] if [shards <= 0]. *)

val shards : t -> int

val shard_of : t -> Controller.Event.t -> int
(** The shard this event would be (or was) queued on. Deterministic per
    event value and shard count. *)

val push : t -> Controller.Event.t -> unit
(** Append to the owning shard's queue, stamping the next global arrival
    sequence number. *)

val length : t -> int
(** Total queued events across all shards. *)

val clear : t -> unit
(** Discard every queued event (the storm guard shedding the backlog).
    Sequence numbering continues from where it was. *)

val next_batch : t -> max_batch:int -> (int * Controller.Event.t) list
(** Pop up to [max_batch] events in global arrival order, each paired
    with its shard. Cuts before a [Tick] (unless the [Tick] is first, in
    which case the batch is exactly [[(0, Tick _)]]). Empty list when no
    events are queued. Raises [Invalid_argument] if [max_batch <= 0]. *)
