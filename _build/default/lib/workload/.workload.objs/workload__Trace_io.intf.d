lib/workload/trace_io.mli: Controller
