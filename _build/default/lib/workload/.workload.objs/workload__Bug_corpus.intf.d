lib/workload/bug_corpus.mli: Apps
