(** A synthetic bug corpus calibrated to the paper's §2.1 observation:
    examining the public FlowScale bug tracker, 16 % of reported bugs
    resulted in catastrophic exceptions.

    The real tracker is long gone; this corpus reproduces its shape — 50
    reports, 8 catastrophic (16 %) — with each catastrophic entry carrying
    an executable {!Apps.Bug_model} bug so experiments can actually inject
    it. *)

type severity = Catastrophic | Degraded | Cosmetic

type entry = {
  id : int;
  summary : string;
  severity : severity;
  bug : Apps.Bug_model.t option;
      (** Executable model; present for every catastrophic entry. *)
}

val flowscale_like : entry list
(** The 50-entry corpus. *)

val stats : entry list -> (severity * int) list
val catastrophic_fraction : entry list -> float
val severity_name : severity -> string

val executable_bugs : entry list -> Apps.Bug_model.t list
