open Openflow
module Topology = Netsim.Topology
module Flow_entry = Netsim.Flow_entry
module Sw = Netsim.Sw
module Net = Netsim.Net
module Clock = Netsim.Clock

type event =
  | Trace_hit
  | Trace_miss
  | Trace_invalidated
  | Switch_recaptured of Types.switch_id
  | Check_memoized
  | Trace_evicted of { bytes : int }

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  recaptures : int;
  memoized_checks : int;
  evictions : int;
}

(* A cached probe is valid while every switch it depended on still has the
   epoch it had when the trace ran. Deps are the switches the packet
   visited (plus the src/dst attachment switches, which decide whether the
   trace starts or delivers at all): a trace is built hop by hop from the
   state of exactly those switches, so if none was re-captured, re-tracing
   would retread the same hops and produce the same probe. *)
type cached_trace = {
  probe : Snapshot.probe;
  deps : (Types.switch_id * int) list;
  words : int;  (* heap footprint of the line, for the byte budget *)
  mutable tick : int;  (* last-use stamp; smallest tick is evicted first *)
}

type t = {
  net : Net.t;
  mutable snap : Snapshot.t;
  versions : (Types.switch_id, int) Hashtbl.t;
      (* last-seen Sw.version per switch *)
  epochs : (Types.switch_id, int) Hashtbl.t;
      (* bumped on every re-capture; what cache lines key validity on *)
  horizons : (Types.switch_id, float) Hashtbl.t;
      (* earliest future instant a flow entry of the switch could expire *)
  cache : (Topology.host * Topology.host, cached_trace) Hashtbl.t;
  budget_words : int option;
      (* trace-cache byte budget expressed in words; None = unbounded *)
  mutable cache_words : int;  (* summed [words] of all resident lines *)
  mutable clock : int;  (* monotonic use counter feeding [tick] *)
  mutable memo_check : (Checker.invariant list * Checker.violation list) option;
      (* last full-check result; valid until any switch is re-captured *)
  observer : event -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable recaptures : int;
  mutable memoized : int;
  mutable evictions : int;
}

let bytes_per_word = Sys.word_size / 8

(* Earliest instant at which the entry could expire. [last_used] only ever
   moves forward (live traffic refreshing an idle timeout), so a horizon
   computed from it is at worst conservative: the switch gets re-captured
   no later than the true first expiry. Entries already expired are
   excluded — they cannot revive (the live table filters expired entries
   before accounting matches), so they would otherwise pin the horizon in
   the past and keep the switch permanently dirty. *)
let deadline (e : Flow_entry.t) =
  let idle =
    if e.idle_timeout > 0 then e.last_used +. float e.idle_timeout
    else infinity
  in
  let hard =
    if e.hard_timeout > 0 then e.installed_at +. float e.hard_timeout
    else infinity
  in
  min idle hard

let horizon_of ~now rules =
  List.fold_left
    (fun acc e ->
      let d = deadline e in
      if d > now then min acc d else acc)
    infinity rules

let bump_epoch t sid =
  Hashtbl.replace t.epochs sid
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.epochs sid))

let record t sid ~now =
  Hashtbl.replace t.versions sid (Sw.version (Net.switch t.net sid));
  Hashtbl.replace t.horizons sid (horizon_of ~now (Snapshot.entries t.snap sid))

let create ?(observer = fun _ -> ()) ?trace_cache_budget net =
  let t =
    {
      net;
      snap = Snapshot.of_net net;
      versions = Hashtbl.create 32;
      epochs = Hashtbl.create 32;
      horizons = Hashtbl.create 32;
      cache = Hashtbl.create 256;
      budget_words =
        Option.map
          (fun b -> max 1 (b / bytes_per_word))
          trace_cache_budget;
      cache_words = 0;
      clock = 0;
      memo_check = None;
      observer;
      hits = 0;
      misses = 0;
      invalidations = 0;
      recaptures = 0;
      memoized = 0;
      evictions = 0;
    }
  in
  let now = Clock.now (Net.clock net) in
  List.iter
    (fun sid ->
      Hashtbl.replace t.epochs sid 0;
      record t sid ~now)
    (Topology.switches (Net.topology net));
  t

(* A switch is dirty when its forwarding-state version moved (rules, port
   or liveness changes) or when the clock crossed its expiry horizon, in
   which case some entry may have timed out with no version change. Both
   re-capture the switch into the persistent snapshot and bump its epoch,
   invalidating (lazily) every cached trace that visited it. *)
let refresh t =
  let now = Clock.now (Net.clock t.net) in
  let dirty =
    List.filter
      (fun sid ->
        let version_moved =
          match Hashtbl.find_opt t.versions sid with
          | Some v -> v <> Sw.version (Net.switch t.net sid)
          | None -> true
        in
        version_moved
        ||
        match Hashtbl.find_opt t.horizons sid with
        | Some h -> now >= h
        | None -> true)
      (Topology.switches (Net.topology t.net))
  in
  (* Even with nothing dirty the snapshot's clock must advance: no entry of
     a clean switch crosses its deadline before the horizon, so moving
     [frozen_at] to [now] changes no lookup there. *)
  t.snap <- Snapshot.refresh t.snap t.net ~dirty;
  if dirty <> [] then t.memo_check <- None;
  List.iter
    (fun sid ->
      bump_epoch t sid;
      record t sid ~now;
      t.recaptures <- t.recaptures + 1;
      t.observer (Switch_recaptured sid))
    dirty

let snapshot t = t.snap

let valid t deps =
  List.for_all
    (fun (sid, ep) -> Hashtbl.find_opt t.epochs sid = Some ep)
    deps

let attachment topo h =
  match Topology.host_attachment topo h with
  | Some (sid, _) -> [ sid ]
  | None -> []

let deps_of t probe src dst =
  let topo = Snapshot.topology t.snap in
  let sids =
    List.map fst probe.Snapshot.path
    @ attachment topo src @ attachment topo dst
  in
  List.map
    (fun sid -> (sid, Option.value ~default:0 (Hashtbl.find_opt t.epochs sid)))
    (List.sort_uniq compare sids)

let touch_line t line =
  t.clock <- t.clock + 1;
  line.tick <- t.clock

let cache_bytes t = t.cache_words * bytes_per_word
let cache_lines t = Hashtbl.length t.cache

(* Evict least-recently-used lines until the budget holds again, never
   touching [keep] (the line just inserted): a single oversized line parks
   in the cache rather than thrashing. The victim scan is O(lines), but a
   budget small enough to evict also keeps the resident line count small,
   so the scan stays cheap exactly when it runs. Eviction is
   correctness-preserving by construction — a future access simply misses
   and re-traces current state. *)
let enforce_budget t ~keep =
  match t.budget_words with
  | None -> ()
  | Some budget ->
      let continue = ref (t.cache_words > budget && Hashtbl.length t.cache > 1) in
      while !continue do
        let victim = ref None in
        Hashtbl.iter
          (fun k line ->
            if k <> keep then
              match !victim with
              | Some (_, best) when best.tick <= line.tick -> ()
              | _ -> victim := Some (k, line))
          t.cache;
        (match !victim with
        | None -> continue := false
        | Some (k, line) ->
            Hashtbl.remove t.cache k;
            t.cache_words <- t.cache_words - line.words;
            t.evictions <- t.evictions + 1;
            t.observer (Trace_evicted { bytes = cache_bytes t }));
        if t.cache_words <= budget || Hashtbl.length t.cache <= 1 then
          continue := false
      done

let store_line t key probe deps =
  (match Hashtbl.find_opt t.cache key with
  | Some old -> t.cache_words <- t.cache_words - old.words
  | None -> ());
  (* +4 ≈ the line record itself (header + 3 boxed-or-immediate fields
     beyond the measured payload tuple); the payload tuple's own 3 words
     stand in for it. Exactness is irrelevant — the budget only has to
     track growth faithfully. *)
  let words = Obj.reachable_words (Obj.repr (probe, deps)) + 4 in
  let line = { probe; deps; words; tick = 0 } in
  touch_line t line;
  Hashtbl.replace t.cache key line;
  t.cache_words <- t.cache_words + words;
  enforce_budget t ~keep:key

let trace_cached t src dst =
  match Hashtbl.find_opt t.cache (src, dst) with
  | Some line when valid t line.deps ->
      t.hits <- t.hits + 1;
      touch_line t line;
      t.observer Trace_hit;
      line.probe
  | stale ->
      if stale <> None then begin
        t.invalidations <- t.invalidations + 1;
        t.observer Trace_invalidated
      end;
      t.misses <- t.misses + 1;
      t.observer Trace_miss;
      let probe = Snapshot.trace t.snap src (Checker.canonical_packet src dst) in
      store_line t (src, dst) probe (deps_of t probe src dst);
      probe

(* The steady-state fast path: when refresh re-captured nothing, every
   switch is bit-identical to the previous check, so the previous violation
   list — not just the traces behind it — is still the answer. A clean
   back-to-back check is then one version scan over the switches. Several
   invariants request the same pair, so live checks also wrap the
   persistent cache in a per-call memo: each pair is validated once per
   check, not once per invariant. *)
let full_check ?invariants t =
  refresh t;
  let invs = Option.value ~default:Checker.default invariants in
  match t.memo_check with
  | Some (invs', result) when invs' = invs ->
      t.memoized <- t.memoized + 1;
      t.observer Check_memoized;
      result
  | _ ->
      let memo = Hashtbl.create 64 in
      let trace src dst =
        match Hashtbl.find_opt memo (src, dst) with
        | Some probe -> probe
        | None ->
            let probe = trace_cached t src dst in
            Hashtbl.replace memo (src, dst) probe;
            probe
      in
      let result = Checker.check_with ~invariants:invs ~trace t.snap in
      t.memo_check <- Some (invs, result);
      result

let check ?invariants t = full_check ?invariants t

let check_flow_mods ?invariants t mods =
  (* The "before" set is mostly cache (or whole-result memo) reads — and
     misses it takes warm the persistent cache for both the "after" pass
     and future checks. *)
  let before = full_check ?invariants t in
  let overlay = Snapshot.apply_flow_mods t.snap mods in
  let modified = List.sort_uniq compare (List.map fst mods) in
  let memo = Hashtbl.create 64 in
  (* A trace whose visited switches exclude every modified one is identical
     under the overlay, so the (just-warmed) persistent line is reused.
     Anything else is traced against the overlay and memoized only for this
     call — hypothetical state never enters the persistent cache. *)
  let trace_after src dst =
    match Hashtbl.find_opt memo (src, dst) with
    | Some probe -> probe
    | None ->
        let probe =
          match Hashtbl.find_opt t.cache (src, dst) with
          | Some line
            when valid t line.deps
                 && not
                      (List.exists
                         (fun (sid, _) -> List.mem sid modified)
                         line.deps) ->
              t.hits <- t.hits + 1;
              touch_line t line;
              t.observer Trace_hit;
              line.probe
          | _ ->
              t.misses <- t.misses + 1;
              t.observer Trace_miss;
              Snapshot.trace overlay src (Checker.canonical_packet src dst)
        in
        Hashtbl.replace memo (src, dst) probe;
        probe
  in
  let after = Checker.check_with ?invariants ~trace:trace_after overlay in
  Checker.diff_new ~before after

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    recaptures = t.recaptures;
    memoized_checks = t.memoized;
    evictions = t.evictions;
  }

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "trace cache: %d hits, %d misses (%d after invalidation); %d switch \
     re-captures; %d whole-check memo hits; %d evictions"
    s.hits s.misses s.invalidations s.recaptures s.memoized_checks s.evictions
