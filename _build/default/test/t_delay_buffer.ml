open Openflow
open Netsim
module Delay_buffer = Legosdn.Delay_buffer
module Txn_engine = Legosdn.Txn_engine
module Command = Controller.Command

let setup () =
  let clock = Clock.create () in
  let net = Net.create clock (Topo_gen.linear ~hosts_per_switch:1 2) in
  ignore (Net.poll net);
  let db = Delay_buffer.create net in
  (net, db, Delay_buffer.engine db)

let add_cmd sid =
  Command.Flow (sid, Message.flow_add Ofp_match.any [ Action.Output 1 ])

let test_writes_delayed_until_commit () =
  let net, _, engine = setup () in
  let txn = engine.Txn_engine.begin_txn ~app:"t" in
  ignore (txn.Txn_engine.apply (add_cmd 1));
  T_util.checki "nothing installed before commit" 0
    (Flow_table.size (Net.switch net 1).Sw.table);
  txn.Txn_engine.commit ();
  T_util.checki "installed at commit" 1 (Flow_table.size (Net.switch net 1).Sw.table)

let test_abort_discards () =
  let net, db, engine = setup () in
  let txn = engine.Txn_engine.begin_txn ~app:"t" in
  ignore (txn.Txn_engine.apply (add_cmd 1));
  ignore (txn.Txn_engine.apply (add_cmd 2));
  txn.Txn_engine.abort ();
  T_util.checki "nothing ever reached the network" 0
    (Flow_table.size (Net.switch net 1).Sw.table
     + Flow_table.size (Net.switch net 2).Sw.table);
  T_util.checki "discards counted" 2 (Delay_buffer.ops_discarded db)

let test_commit_preserves_order () =
  let net, _, engine = setup () in
  let txn = engine.Txn_engine.begin_txn ~app:"t" in
  (* Install then delete: if order were reversed the rule would survive. *)
  ignore (txn.Txn_engine.apply (add_cmd 1));
  ignore
    (txn.Txn_engine.apply (Command.Flow (1, Message.flow_delete Ofp_match.any)));
  txn.Txn_engine.commit ();
  T_util.checki "delete executed after add" 0
    (Flow_table.size (Net.switch net 1).Sw.table)

let test_reads_bypass_buffer () =
  (* The prototype flaw the paper admits: a read inside the transaction
     does not see the transaction's own buffered writes. *)
  let _, _, engine = setup () in
  let txn = engine.Txn_engine.begin_txn ~app:"t" in
  ignore (txn.Txn_engine.apply (add_cmd 1));
  let replies =
    txn.Txn_engine.apply (Command.Stats (1, Message.Flow_stats_request Ofp_match.any))
  in
  (match replies with
  | [ { Message.payload = Message.Stats_reply (Message.Flow_stats_reply stats); _ } ]
    ->
      T_util.checki "own write invisible to read" 0 (List.length stats)
  | _ -> Alcotest.fail "stats reply expected");
  txn.Txn_engine.abort ()

let test_issued_tracks_everything () =
  let _, _, engine = setup () in
  let txn = engine.Txn_engine.begin_txn ~app:"t" in
  ignore (txn.Txn_engine.apply (add_cmd 1));
  ignore (txn.Txn_engine.apply (Command.Log "note"));
  T_util.checki "both commands recorded" 2 (List.length (txn.Txn_engine.issued ()))

let suite =
  [
    Alcotest.test_case "writes delayed until commit" `Quick test_writes_delayed_until_commit;
    Alcotest.test_case "abort discards buffer" `Quick test_abort_discards;
    Alcotest.test_case "commit preserves order" `Quick test_commit_preserves_order;
    Alcotest.test_case "reads bypass buffer" `Quick test_reads_bypass_buffer;
    Alcotest.test_case "issued tracking" `Quick test_issued_tracks_everything;
  ]
