lib/invariants/checker.ml: Action Format List Message Netsim Ofp_match Openflow Packet Snapshot Types
